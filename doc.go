// Package repro is a Go reproduction of "Streaming Message Interface:
// High-Performance Distributed Memory Programming on Reconfigurable
// Hardware" (De Matteis, de Fine Licht, Beránek, Hoefler; SC 2019).
//
// The SMI library itself lives in internal/core; the cycle-driven
// multi-FPGA simulator it runs on is internal/sim with its substrates
// (packet, topology, routing, link, transport, fpga). The benchmark
// harness regenerating every table and figure of the paper's evaluation
// is internal/bench, driven by cmd/smibench and by the benchmarks in
// bench_test.go. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
