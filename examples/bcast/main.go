// Broadcast: the paper's Listing 2 — an SPMD program where a
// dynamically chosen root rank broadcasts locally produced elements to
// every other rank in the communicator. The same program binary runs on
// all ranks ("only one instance of the code is generated"), and the
// root is picked at run time without rebuilding anything.
//
// Run with:
//
//	go run ./examples/bcast
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	smi "repro/internal/core"
	"repro/internal/topology"
)

const (
	n    = 512
	root = 2
)

func main() {
	// Eight FPGAs in the 2x4 torus of the paper's testbed.
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program: smi.ProgramSpec{Ports: []smi.PortSpec{
			{Port: 0, Kind: smi.Bcast, Type: smi.Float},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	var received atomic.Int64
	cluster.SPMD("app", func(x *smi.Ctx) {
		comm := x.CommWorld()
		ch, err := x.OpenBcastChannel(n, smi.Float, 0, root, comm)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			var data float32
			if ch.Root() {
				data = float32(i) * 0.5 // create or load interesting data
			}
			data = ch.BcastFloat(data)
			// ...do something useful with data...
			if data != float32(i)*0.5 {
				log.Fatalf("rank %d: element %d corrupted: %g", x.Rank(), i, data)
			}
		}
		received.Add(n)
	})

	stats, err := cluster.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("root %d broadcast %d floats to %d ranks (%d elements verified)\n",
		root, n, cluster.Size(), received.Load())
	fmt.Printf("completed in %.2f us; %d network packets\n", stats.Micros, stats.PacketsDelivered)
}
