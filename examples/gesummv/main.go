// GESUMMV: the paper's §5.4.1 distributed linear algebra application.
// Computes y = alpha*A*x + beta*B*x twice — on a single FPGA, and
// functionally decomposed over two FPGAs where the intermediate vector
// streams across the network during computation — and reports the
// speedup from doubling the available memory bandwidth (paper Fig 13).
//
// Run with:
//
//	go run ./examples/gesummv [-n 4096]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
)

func main() {
	n := flag.Int("n", 4096, "matrix dimension (N x N)")
	verify := flag.Bool("verify", false, "compute real values and check against a sequential reference")
	flag.Parse()

	cfg := apps.GesummvConfig{Rows: *n, Cols: *n, Alpha: 1.5, Beta: -0.5, Verify: *verify}

	single, err := apps.GesummvSingle(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := apps.GesummvDistributed(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GESUMMV %dx%d (y = aAx + bBx)\n", *n, *n)
	fmt.Printf("  single FPGA (2 banks per GEMV): %8.3f ms\n", single.Micros/1e3)
	fmt.Printf("  two FPGAs   (4 banks per GEMV): %8.3f ms\n", dist.Micros/1e3)
	fmt.Printf("  speedup: %.2fx (paper Fig 13: ~2x)\n", float64(single.Cycles)/float64(dist.Cycles))

	if *verify {
		want := apps.GesummvReference(cfg)
		for i := range want {
			if single.Y[i] != want[i] || dist.Y[i] != want[i] {
				log.Fatalf("verification failed at element %d", i)
			}
		}
		fmt.Printf("  verified: both versions match the sequential reference exactly\n")
	}
}
