// Stencil: the paper's §5.4.2 SPMD application — a 4-point 2D stencil
// with the domain decomposed spatially over a grid of FPGAs. Halo
// regions are exchanged through transient SMI channels opened per
// timestep on four ports (one per neighbor), fully overlapped with the
// pipelined sweep (paper Listing 3, Figs 14-16).
//
// Run with:
//
//	go run ./examples/stencil [-n 2048] [-steps 16] [-rx 2 -ry 2] [-banks 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
)

func main() {
	n := flag.Int("n", 2048, "global grid edge (N x N)")
	steps := flag.Int("steps", 16, "timesteps")
	rx := flag.Int("rx", 2, "rank grid rows")
	ry := flag.Int("ry", 2, "rank grid columns")
	banks := flag.Int("banks", 4, "memory banks used per FPGA")
	verify := flag.Bool("verify", false, "compute real values and check against a sequential reference (small grids)")
	flag.Parse()

	cfg := apps.StencilConfig{
		N: *n, Timesteps: *steps,
		RanksX: *rx, RanksY: *ry,
		Banks: *banks, Verify: *verify,
	}
	res, err := apps.Stencil(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stencil %dx%d, %d timesteps on %dx%d FPGAs (%d banks each)\n",
		*n, *n, *steps, *rx, *ry, *banks)
	fmt.Printf("  time: %.3f ms (%.3f ns per point per timestep)\n", res.Micros/1e3, res.NsPerPoint)

	if *verify {
		want := apps.StencilReference(*n, *steps)
		for i := range want {
			for j := range want[i] {
				if res.Grid[i][j] != want[i][j] {
					log.Fatalf("verification failed at (%d,%d): %g != %g", i, j, res.Grid[i][j], want[i][j])
				}
			}
		}
		fmt.Println("  verified: matches the sequential reference exactly")
	}
}
