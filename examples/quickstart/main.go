// Quickstart: the paper's Listing 1 — an MPMD program with two ranks,
// where rank 0 streams N integers to rank 1 over a transient channel
// during pipelined computation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	smi "repro/internal/core"
	"repro/internal/topology"
)

const n = 1000

func main() {
	// Two FPGAs joined by a serial cable.
	topo, err := topology.Bus(2)
	if err != nil {
		log.Fatal(err)
	}

	// The program declares its communication endpoints up front: one
	// point-to-point port carrying 32-bit integers. This is the
	// information the paper's code generator extracts from user code to
	// lay down the transport hardware.
	cluster, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program:  smi.ProgramSpec{Ports: []smi.PortSpec{{Port: 0, Type: smi.Int}}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Rank 0: open a send channel to rank 1 and push one element per
	// loop iteration — the channel integrates into the pipeline like any
	// intra-FPGA stream.
	cluster.OnRank(0, "rank0", func(x *smi.Ctx) {
		ch, err := x.OpenSend(smi.ChannelOpts{Count: n, Type: smi.Int, Dst: 1, Port: 0})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			data := int32(i * i) // create or load interesting data
			smi.Push(ch, data)
		}
	})

	// Rank 1: open a receive channel from rank 0 and consume elements as
	// they stream in. The deadline bounds each pop: if the network cannot
	// deliver within 100k cycles, PopE returns a ChannelError instead of
	// the run tripping deadlock detection.
	var sum int64
	cluster.OnRank(1, "rank1", func(x *smi.Ctx) {
		ch, err := x.OpenRecv(smi.ChannelOpts{
			Count: n, Type: smi.Int, Src: 0, Port: 0,
			Opts: []smi.ChannelOption{smi.WithDeadline(100_000)},
		})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			v, err := smi.PopE[int32](ch)
			if err != nil {
				log.Fatalf("rank 1 pop %d: %v", i, err)
			}
			sum += int64(v) // ...do something useful with data...
		}
	})

	stats, err := cluster.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d integers from rank 0 to rank 1 (checksum %d)\n", n, sum)
	fmt.Printf("completed in %d cycles = %.2f us at %.0f MHz; %d network packets\n",
		stats.Cycles, stats.Micros, cluster.Clock().Hz/1e6, stats.PacketsDelivered)
}
