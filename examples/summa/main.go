// SUMMA: distributed dense matrix multiply C = A x B over SMI streaming
// broadcasts (1-D SUMMA decomposition: each rank owns a block column; in
// step k rank k broadcasts its block column of A while every rank
// multiplies it against its resident B block). Demonstrates collective-
// driven application kernels and the tree-based broadcast extension.
//
// Run with:
//
//	go run ./examples/summa [-n 512] [-ranks 8] [-tree]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
)

func main() {
	n := flag.Int("n", 512, "matrix dimension (N x N)")
	ranks := flag.Int("ranks", 8, "number of FPGAs (block columns)")
	tree := flag.Bool("tree", false, "use binomial-tree broadcasts")
	verify := flag.Bool("verify", false, "compute real values and check against a sequential reference (small N)")
	flag.Parse()

	res, err := apps.Summa(apps.SummaConfig{N: *n, Ranks: *ranks, Tree: *tree, Verify: *verify})
	if err != nil {
		log.Fatal(err)
	}
	scheme := "linear"
	if *tree {
		scheme = "binomial-tree"
	}
	fmt.Printf("SUMMA %dx%d on %d FPGAs (%s broadcast)\n", *n, *n, *ranks, scheme)
	fmt.Printf("  time: %.3f ms (%.2f us per broadcast step)\n",
		res.Micros/1e3, res.Micros/float64(*ranks))

	if *verify {
		want := apps.SummaReference(*n)
		for i := range want {
			for j := range want[i] {
				if res.C[i][j] != want[i][j] {
					log.Fatalf("verification failed at (%d,%d)", i, j)
				}
			}
		}
		fmt.Println("  verified: matches the sequential reference exactly")
	}
}
