package repro

import (
	"io"
	"testing"

	"repro/internal/bench"
)

// runExperiment executes one of the paper's tables/figures as a Go
// benchmark. Each iteration regenerates the full table; headline numbers
// surface as custom benchmark metrics. `go test -bench . -short` runs
// the trimmed sweeps.
func runExperiment(b *testing.B, id string) {
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.Options{Quick: testing.Short()}
	var report *bench.Report
	for i := 0; i < b.N; i++ {
		report, err = e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	report.Print(io.Discard)
	for name, v := range report.Metrics {
		b.ReportMetric(v, name)
	}
}

// BenchmarkTable1Resources regenerates Table 1 (SMI resource usage for
// one and four QSFPs).
func BenchmarkTable1Resources(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2CollectiveResources regenerates Table 2 (collective
// support kernel resources).
func BenchmarkTable2CollectiveResources(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Latency regenerates Table 3 (ping-pong latency, SMI at
// 1/4/7 hops vs MPI+OpenCL).
func BenchmarkTable3Latency(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Injection regenerates Table 4 (injection rate vs the
// polling factor R).
func BenchmarkTable4Injection(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig9Bandwidth regenerates Fig 9 (bandwidth vs message size at
// 1/4/7 hops vs the host path).
func BenchmarkFig9Bandwidth(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Bcast regenerates Fig 10 (broadcast time vs size on
// torus and bus, 4 and 8 ranks, vs MPI+OpenCL).
func BenchmarkFig10Bcast(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Reduce regenerates Fig 11 (reduce time vs size, same
// series as Fig 10).
func BenchmarkFig11Reduce(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig13Gesummv regenerates Fig 13 (GESUMMV distributed speedup
// for square and rectangular matrices).
func BenchmarkFig13Gesummv(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig15StencilStrong regenerates Fig 15 (stencil strong
// scaling across banks and FPGAs).
func BenchmarkFig15StencilStrong(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16StencilWeak regenerates Fig 16 (stencil weak scaling,
// time per point vs grid size).
func BenchmarkFig16StencilWeak(b *testing.B) { runExperiment(b, "fig16") }

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblateR sweeps the CK polling factor R (bandwidth vs
// injection latency trade-off).
func BenchmarkAblateR(b *testing.B) { runExperiment(b, "ablate-r") }

// BenchmarkAblateCredit sweeps the Reduce flow-control tile size C.
func BenchmarkAblateCredit(b *testing.B) { runExperiment(b, "ablate-credit") }

// BenchmarkAblateRouting compares shortest-path and up*/down* routing.
func BenchmarkAblateRouting(b *testing.B) { runExperiment(b, "ablate-routing") }

// BenchmarkAblateBuffer sweeps the endpoint buffer (asynchronicity k).
func BenchmarkAblateBuffer(b *testing.B) { runExperiment(b, "ablate-buffer") }

// BenchmarkAblateTree compares linear and binomial-tree collectives.
func BenchmarkAblateTree(b *testing.B) { runExperiment(b, "ablate-tree") }

// BenchmarkAblateFlowControl compares eager and credit-based
// point-to-point flow control under shared-transport contention.
func BenchmarkAblateFlowControl(b *testing.B) { runExperiment(b, "ablate-flowcontrol") }

// BenchmarkAblateArbiter compares the round-robin poller and skip-idle
// arbiter (deviation D1 of EXPERIMENTS.md).
func BenchmarkAblateArbiter(b *testing.B) { runExperiment(b, "ablate-arbiter") }

// BenchmarkAblateSwitching compares packet switching against circuit
// switching (the two §4.2 transmission approaches).
func BenchmarkAblateSwitching(b *testing.B) { runExperiment(b, "ablate-switching") }

// BenchmarkExtScatterGather times the Scatter and Gather collectives the
// paper defines but does not evaluate.
func BenchmarkExtScatterGather(b *testing.B) { runExperiment(b, "ext-scattergather") }
