package repro

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// runTool runs one of the repository's commands via `go run`, feeding it
// stdin and returning stdout.
func runTool(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	cmd.Stdin = strings.NewReader(stdin)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%v failed: %v\nstderr: %s", args, err, errb.String())
	}
	return out.String()
}

func TestWorkflowToolchain(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	// topogen -> routegen mirrors the paper's Fig 8 workflow.
	topo := runTool(t, "", "./cmd/topogen", "-kind", "torus", "-rows", "2", "-cols", "4")
	if !strings.Contains(topo, `"devices": 8`) {
		t.Fatalf("topogen output unexpected:\n%s", topo)
	}
	routes := runTool(t, topo, "./cmd/routegen", "-policy", "updown")
	if !strings.Contains(routes, `"next"`) {
		t.Fatalf("routegen output unexpected:\n%s", routes)
	}
	verify := runTool(t, topo, "./cmd/routegen", "-policy", "updown", "-verify")
	if !strings.Contains(verify, "deadlock-free: yes") {
		t.Fatalf("updown routes must verify deadlock-free:\n%s", verify)
	}
}

func TestSmigenPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	ops := `{"ifaces": 4, "ports": [
		{"port": 0, "kind": "p2p", "type": "float"},
		{"port": 1, "kind": "reduce", "type": "float", "op": "add"}
	]}`
	out := runTool(t, ops, "./cmd/smigen")
	for _, want := range []string{"4 CKS + 4 CKR", "port 0", "reduce support kernel", "estimated resources"} {
		if !strings.Contains(out, want) {
			t.Fatalf("smigen plan missing %q:\n%s", want, out)
		}
	}
}

func TestSmibenchQuickTable(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := runTool(t, "", "./cmd/smibench", "-quick", "table4")
	if !strings.Contains(out, "== table4") || !strings.Contains(out, "cycles/msg") {
		t.Fatalf("smibench output unexpected:\n%s", out)
	}
}

func TestSmibenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := runTool(t, "", "./cmd/smibench", "-list")
	for _, id := range []string{"table1", "table2", "table3", "table4",
		"fig9", "fig10", "fig11", "fig13", "fig15", "fig16",
		"ablate-r", "ablate-credit", "ablate-routing", "ablate-buffer",
		"scaling", "service", "workloads"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %s missing from list:\n%s", id, out)
		}
	}
}

// TestSmibenchJSON checks that -json emits the machine-readable form on
// stdout, carrying the same per-workload Result schema smid serves.
func TestSmibenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := runTool(t, "", "./cmd/smibench", "-json", "-quick", "workloads")
	var doc []struct {
		ID   string `json:"id"`
		Data []struct {
			Workload     string         `json:"workload"`
			Cycles       int64          `json:"cycles"`
			OutputDigest string         `json:"output_digest"`
			Stats        map[string]any `json:"stats"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, out)
	}
	if len(doc) != 1 || doc[0].ID != "workloads" || len(doc[0].Data) == 0 {
		t.Fatalf("-json document unexpected:\n%s", out)
	}
	for _, res := range doc[0].Data {
		if res.Cycles <= 0 || res.OutputDigest == "" {
			t.Fatalf("result %q incomplete: %+v", res.Workload, res)
		}
		if _, ok := res.Stats["packets_delivered"]; res.Workload == "bandwidth" && !ok {
			t.Fatalf("bandwidth result missing cluster stats:\n%s", out)
		}
	}
}

func TestSmitraceWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	for _, w := range []string{"pingpong", "reduce"} {
		out := dir + "/" + w + ".json"
		res := runTool(t, "", "./cmd/smitrace", "-workload", w, "-out", out)
		if !strings.Contains(res, "traced "+w) {
			t.Fatalf("unexpected smitrace output: %s", res)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var parsed map[string]any
		if err := json.Unmarshal(data, &parsed); err != nil {
			t.Fatalf("%s trace not valid JSON: %v", w, err)
		}
		if _, ok := parsed["traceEvents"]; !ok {
			t.Fatalf("%s trace missing traceEvents", w)
		}
	}
}
