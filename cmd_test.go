package repro

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// runTool runs one of the repository's commands via `go run`, feeding it
// stdin and returning stdout.
func runTool(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	cmd.Stdin = strings.NewReader(stdin)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%v failed: %v\nstderr: %s", args, err, errb.String())
	}
	return out.String()
}

func TestWorkflowToolchain(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	// topogen -> routegen mirrors the paper's Fig 8 workflow.
	topo := runTool(t, "", "./cmd/topogen", "-kind", "torus", "-rows", "2", "-cols", "4")
	if !strings.Contains(topo, `"devices": 8`) {
		t.Fatalf("topogen output unexpected:\n%s", topo)
	}
	routes := runTool(t, topo, "./cmd/routegen", "-policy", "updown")
	if !strings.Contains(routes, `"next"`) {
		t.Fatalf("routegen output unexpected:\n%s", routes)
	}
	verify := runTool(t, topo, "./cmd/routegen", "-policy", "updown", "-verify")
	if !strings.Contains(verify, "deadlock-free: yes") {
		t.Fatalf("updown routes must verify deadlock-free:\n%s", verify)
	}
}

func TestSmigenPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	ops := `{"ifaces": 4, "ports": [
		{"port": 0, "kind": "p2p", "type": "float"},
		{"port": 1, "kind": "reduce", "type": "float", "op": "add"}
	]}`
	out := runTool(t, ops, "./cmd/smigen")
	for _, want := range []string{"4 CKS + 4 CKR", "port 0", "reduce support kernel", "estimated resources"} {
		if !strings.Contains(out, want) {
			t.Fatalf("smigen plan missing %q:\n%s", want, out)
		}
	}
}

func TestSmibenchQuickTable(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := runTool(t, "", "./cmd/smibench", "-quick", "table4")
	if !strings.Contains(out, "== table4") || !strings.Contains(out, "cycles/msg") {
		t.Fatalf("smibench output unexpected:\n%s", out)
	}
}

func TestSmibenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := runTool(t, "", "./cmd/smibench", "-list")
	for _, id := range []string{"table1", "table2", "table3", "table4",
		"fig9", "fig10", "fig11", "fig13", "fig15", "fig16",
		"ablate-r", "ablate-credit", "ablate-routing", "ablate-buffer"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %s missing from list:\n%s", id, out)
		}
	}
}

func TestSmitraceWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	for _, w := range []string{"pingpong", "reduce"} {
		out := dir + "/" + w + ".json"
		res := runTool(t, "", "./cmd/smitrace", "-workload", w, "-out", out)
		if !strings.Contains(res, "traced "+w) {
			t.Fatalf("unexpected smitrace output: %s", res)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var parsed map[string]any
		if err := json.Unmarshal(data, &parsed); err != nil {
			t.Fatalf("%s trace not valid JSON: %v", w, err)
		}
		if _, ok := parsed["traceEvents"]; !ok {
			t.Fatalf("%s trace missing traceEvents", w)
		}
	}
}
