// Command smid runs the SMI simulation service: a long-running HTTP
// server that packs simulation jobs onto a bounded worker pool, keeps
// routing tables warm across identical-topology jobs, streams per-job
// progress, and deterministically replays any completed job.
//
// Quick start:
//
//	smid -addr :8080 &
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"workload":"stencil","ranks":16,"verify":true}'
//	curl -s localhost:8080/v1/jobs/j0001
//	curl -s -X POST localhost:8080/v1/jobs/j0001/replay
//	curl -sN localhost:8080/v1/jobs/j0002/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS, max 8)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default 64)")
	cache := flag.Int("cache", 0, "routing-table cache capacity (0 = default 32)")
	progress := flag.Int64("progress-every", 0, "cycles between progress events (0 = default 250000, negative disables)")
	drain := flag.Duration("drain", 30*time.Second, "max time to drain running jobs on shutdown")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheCapacity: *cache,
		ProgressEvery: *progress,
	})
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("smid: listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("smid: shutting down; draining for up to %v", *drain)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "smid: serve: %v\n", err)
		os.Exit(1)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job pool so
	// in-flight simulations finish and queued ones are canceled cleanly.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("smid: http shutdown: %v", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("smid: %v", err)
		os.Exit(1)
	}
	log.Printf("smid: drained cleanly")
}
