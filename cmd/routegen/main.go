// Command routegen is the route generator of the SMI workflow (paper
// §4.3 and Fig 8): it reads a cluster topology (JSON, from topogen or
// handwritten), computes static routing tables under a chosen policy,
// verifies deadlock freedom, and writes the tables as JSON. Routes can
// be regenerated for a new topology or rank count without touching the
// compiled program — the paper's "you can change the routes without
// recompiling the bitstream".
//
// Usage:
//
//	routegen -policy updown < torus.json > routes.json
//	routegen -verify < torus.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	policy := flag.String("policy", "shortest", "routing policy: shortest or updown")
	verifyOnly := flag.Bool("verify", false, "only check deadlock freedom, print a summary")
	flag.Parse()

	topo, err := topology.ReadJSON(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routegen:", err)
		os.Exit(1)
	}
	var pol routing.Policy
	switch *policy {
	case "shortest":
		pol = routing.ShortestPath
	case "updown":
		pol = routing.UpDown
	default:
		fmt.Fprintf(os.Stderr, "routegen: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	routes, err := routing.Compute(topo, pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routegen:", err)
		os.Exit(1)
	}
	verr := routing.VerifyDeadlockFree(routes)
	if *verifyOnly {
		maxHops := 0
		for s := 0; s < topo.Devices; s++ {
			for d := 0; d < topo.Devices; d++ {
				if h := routes.Hops(s, d); h > maxHops {
					maxHops = h
				}
			}
		}
		fmt.Printf("topology: %s (%d devices)\npolicy: %s\ndiameter: %d hops\n",
			topo.Name, topo.Devices, pol, maxHops)
		if verr != nil {
			fmt.Printf("deadlock-free: NO (%v)\n", verr)
			os.Exit(1)
		}
		fmt.Println("deadlock-free: yes")
		return
	}
	if verr != nil {
		fmt.Fprintf(os.Stderr, "routegen: warning: %v\n", verr)
	}
	if err := routes.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "routegen:", err)
		os.Exit(1)
	}
}
