// Command smigen is the analog of the paper's code generator (§4.5,
// Fig 8): it takes the description of the SMI operations a program uses
// — its ports, with their kinds and datatypes — and reports the
// communication hardware that will be laid down for each rank: endpoint
// FIFOs, CKS/CKR communication kernels, collective support kernels, and
// the estimated resource cost.
//
// The input is a JSON operations file, the artifact the paper's
// metadata extractor produces from user code:
//
//	{
//	  "ifaces": 4,
//	  "ports": [
//	    {"port": 0, "kind": "p2p", "type": "float"},
//	    {"port": 1, "kind": "reduce", "type": "float", "op": "add"}
//	  ]
//	}
//
// Usage:
//
//	smigen < ops.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	smi "repro/internal/core"
	"repro/internal/packet"
	"repro/internal/resources"
	"repro/internal/topology"
)

type opsFile struct {
	Ifaces int      `json:"ifaces"`
	Ports  []opSpec `json:"ports"`
}

type opSpec struct {
	Port        int    `json:"port"`
	Kind        string `json:"kind"`
	Type        string `json:"type"`
	Op          string `json:"op,omitempty"`
	BufferElems int    `json:"buffer_elems,omitempty"`
	VecWidth    int    `json:"vec_width,omitempty"`
	CreditElems int    `json:"credit_elems,omitempty"`
}

var kinds = map[string]smi.PortKind{
	"p2p": smi.P2P, "bcast": smi.Bcast, "reduce": smi.Reduce,
	"scatter": smi.Scatter, "gather": smi.Gather,
}

var types = map[string]smi.Datatype{
	"char": smi.Char, "short": smi.Short, "int": smi.Int,
	"float": smi.Float, "double": smi.Double,
}

var ops = map[string]smi.Op{"add": smi.Add, "max": smi.Max, "min": smi.Min}

func main() {
	flag.Parse()
	var in opsFile
	if err := json.NewDecoder(os.Stdin).Decode(&in); err != nil {
		fmt.Fprintln(os.Stderr, "smigen: parsing operations file:", err)
		os.Exit(1)
	}
	if in.Ifaces <= 0 {
		in.Ifaces = topology.DefaultIfaces
	}

	var specs []smi.PortSpec
	for _, p := range in.Ports {
		kind, ok := kinds[p.Kind]
		if !ok && p.Kind != "" {
			fmt.Fprintf(os.Stderr, "smigen: port %d: unknown kind %q\n", p.Port, p.Kind)
			os.Exit(1)
		}
		dt, ok := types[p.Type]
		if !ok && p.Type != "" {
			fmt.Fprintf(os.Stderr, "smigen: port %d: unknown type %q\n", p.Port, p.Type)
			os.Exit(1)
		}
		op, ok := ops[p.Op]
		if !ok && p.Op != "" {
			fmt.Fprintf(os.Stderr, "smigen: port %d: unknown op %q\n", p.Port, p.Op)
			os.Exit(1)
		}
		specs = append(specs, smi.PortSpec{
			Port: p.Port, Kind: kind, Type: dt, ReduceOp: op,
			BufferElems: p.BufferElems, VecWidth: p.VecWidth, CreditElems: p.CreditElems,
		})
	}

	// Instantiate a representative rank to derive the generated plan.
	topo := &topology.Topology{Devices: 2, Ifaces: in.Ifaces, Name: "smigen-probe"}
	for i := 0; i < in.Ifaces; i++ {
		topo.Connections = append(topo.Connections, topology.Connection{
			A: topology.Endpoint{Device: 0, Iface: i},
			B: topology.Endpoint{Device: 1, Iface: i},
		})
	}
	c, err := smi.NewCluster(smi.Config{Topology: topo, Program: smi.ProgramSpec{Ports: specs}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "smigen:", err)
		os.Exit(1)
	}

	fmt.Printf("SMI generated communication layer (per rank, %d network interfaces)\n\n", in.Ifaces)
	fmt.Printf("communication kernels: %d CKS + %d CKR (one pair per interface)\n", in.Ifaces, in.Ifaces)
	fmt.Println("endpoints:")
	for i, p := range in.Ports {
		spec := specs[i]
		iface := spec.Iface
		if iface < 0 || iface >= in.Ifaces {
			iface = i % in.Ifaces
		}
		dt := spec.Type
		if dt == packet.Invalid {
			dt = smi.Int
		}
		kindName := p.Kind
		if kindName == "" {
			kindName = "p2p"
		}
		fmt.Printf("  port %d: %-7s %-10s -> CKS/CKR pair %d", p.Port, kindName, dt, iface)
		if kindName != "p2p" {
			fmt.Printf(" (+ %s support kernel)", kindName)
		}
		fmt.Println()
	}

	rr := c.RankResources(0)
	fmt.Println("\nestimated resources per rank:")
	fmt.Printf("  interconnect:    %v\n", rr.Interconnect)
	fmt.Printf("  comm kernels:    %v\n", rr.Kernels)
	fmt.Printf("  support kernels: %v\n", rr.Supports)
	lut, ff, m20k, dsp := rr.Total().Percent(resources.StratixGX2800())
	fmt.Printf("  total: %v (%.2f%% LUTs, %.2f%% FFs, %.2f%% M20Ks, %.2f%% DSPs of a Stratix 10 GX2800)\n",
		rr.Total(), lut, ff, m20k, dsp)
}
