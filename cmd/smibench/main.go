// Command smibench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	smibench -list
//	smibench [-quick] all
//	smibench [-quick] table3 fig9 ...
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "trim sweeps for a fast run")
	list := flag.Bool("list", false, "list available experiments")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: smibench [-quick] [-list] <experiment>... | all\n\nexperiments:\n")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var exps []bench.Experiment
	if len(args) == 1 && args[0] == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range args {
			e, err := bench.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	opts := bench.Options{Quick: *quick}
	for _, e := range exps {
		start := time.Now()
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		report.Print(os.Stdout)
		fmt.Printf("  (%s regenerated in %.1fs wall time)\n\n", e.ID, time.Since(start).Seconds())
	}
}
