// Command smibench regenerates the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	smibench -list
//	smibench [-quick] all
//	smibench [-quick] table3 fig9 ...
//	smibench -ranks 8,64 -workload stencil scaling
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "trim sweeps for a fast run")
	list := flag.Bool("list", false, "list available experiments")
	jsonOut := flag.Bool("json", false, "write machine-readable JSON to stdout instead of tables (the stats schema matches what smid serves)")
	ranks := flag.String("ranks", "", "comma-separated rank counts for rank sweeps (e.g. 8,16,32,64)")
	workload := flag.String("workload", "", "restrict multi-workload experiments to one workload (e.g. stencil, bcast)")
	shards := flag.Int("shards", 0, "shard count for the sharded-scheduler rows of rank sweeps (0 = experiment default)")
	transportFlag := flag.String("transport", "", "restrict the transport ablation to one transport (sender-driven, receiver-driven; empty = both)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the experiment runs to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: smibench [-quick] [-list] <experiment>... | all\n\nexperiments:\n")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var exps []bench.Experiment
	if len(args) == 1 && args[0] == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range args {
			e, err := bench.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	opts := bench.Options{Quick: *quick, Workload: *workload, Shards: *shards, Transport: *transportFlag}
	if *ranks != "" {
		for _, part := range strings.Split(*ranks, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -ranks value %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Ranks = append(opts.Ranks, n)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // profile live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	// jsonReport is one element of the -json stdout document.
	type jsonReport struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		WallSec float64            `json:"wall_sec"`
		Metrics map[string]float64 `json:"metrics,omitempty"`
		// Data is the experiment's machine-readable document — for
		// workload-level experiments, the same Result/Stats schema the
		// smid service serves per job.
		Data json.RawMessage `json:"data,omitempty"`
	}
	var jsonDoc []jsonReport

	for _, e := range exps {
		start := time.Now()
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *jsonOut {
			jsonDoc = append(jsonDoc, jsonReport{
				ID: e.ID, Title: report.Title,
				WallSec: time.Since(start).Seconds(),
				Metrics: report.Metrics,
				Data:    json.RawMessage(report.JSON),
			})
			continue
		}
		report.Print(os.Stdout)
		fmt.Printf("  (%s regenerated in %.1fs wall time)\n\n", e.ID, time.Since(start).Seconds())
		if report.JSON != nil {
			path := "BENCH_" + e.ID + ".json"
			if report.JSONName != "" {
				path = report.JSONName
			}
			if err := os.WriteFile(path, report.JSON, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing %s: %v\n", e.ID, path, err)
				os.Exit(1)
			}
			fmt.Printf("  (machine-readable copy written to %s)\n\n", path)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonDoc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
