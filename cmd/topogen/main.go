// Command topogen emits cluster topology descriptions in the JSON
// interchange format consumed by routegen and the SMI cluster builder —
// the "topology provided as a JSON file" of the paper's workflow
// (Fig 8).
//
// Usage:
//
//	topogen -kind torus -rows 2 -cols 4 > torus.json
//	topogen -kind bus -n 8 > bus.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
)

func main() {
	kind := flag.String("kind", "torus", "topology kind: torus, bus, ring, star, full")
	rows := flag.Int("rows", 2, "torus rows")
	cols := flag.Int("cols", 4, "torus columns")
	n := flag.Int("n", 8, "device count for bus/ring/star/full")
	flag.Parse()

	var (
		topo *topology.Topology
		err  error
	)
	switch *kind {
	case "torus":
		topo, err = topology.Torus2D(*rows, *cols)
	case "bus":
		topo, err = topology.Bus(*n)
	case "ring":
		topo, err = topology.Ring(*n)
	case "star":
		topo, err = topology.Star(*n)
	case "full":
		topo, err = topology.FullyConnected(*n)
	default:
		err = fmt.Errorf("unknown topology kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	if err := topo.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}
