// Command smitrace runs a demo SMI workload on the simulated cluster
// and writes a Chrome trace-event file showing, cycle by cycle, what
// every application kernel and hardware kernel was doing. Load the
// output in chrome://tracing or https://ui.perfetto.dev (one trace
// microsecond equals one simulated clock cycle).
//
// Usage:
//
//	smitrace -workload reduce -out trace.json
//	smitrace -workload stencil -out trace.json
//	smitrace -workload pingpong -out trace.json
//	smitrace -workload stencil -faults spec.json -out trace.json
//
// With -faults, the JSON fault schedule (see internal/fault.Spec) is
// replayed into the run: links retransmit through drops and flaps, and
// every injected fault and failover phase appears as an instant marker
// on a "fault:" lane of the trace.
package main

import (
	"flag"
	"fmt"
	"os"

	smi "repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	workload := flag.String("workload", "reduce", "workload to trace: pingpong, reduce, stencil")
	out := flag.String("out", "trace.json", "output trace file")
	faultsPath := flag.String("faults", "", "JSON fault schedule to replay into the run (fault.Spec)")
	flag.Parse()

	var spec *fault.Spec
	if *faultsPath != "" {
		sf, err := os.Open(*faultsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smitrace:", err)
			os.Exit(1)
		}
		spec, err = fault.ReadJSON(sf)
		sf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "smitrace:", err)
			os.Exit(1)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smitrace:", err)
		os.Exit(1)
	}
	defer f.Close()

	var stats smi.Stats
	switch *workload {
	case "pingpong":
		stats, err = tracePingPong(f, spec)
	case "reduce":
		stats, err = traceReduce(f, spec)
	case "stencil":
		stats, err = traceStencil(f, spec)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smitrace:", err)
		os.Exit(1)
	}
	fmt.Printf("traced %s: %d cycles (%.2f us) -> %s\n", *workload, stats.Cycles, stats.Micros, *out)
	if spec != nil {
		fmt.Printf("faults: %d dropped, %d corrupted, %d lost to down links, %d retransmits, %d failovers\n",
			stats.FaultsInjected.Dropped, stats.FaultsInjected.Corrupted, stats.FaultsInjected.FlapLost,
			stats.Retransmits, stats.Failovers)
	}
}

func tracePingPong(f *os.File, spec *fault.Spec) (smi.Stats, error) {
	topo, err := topology.Bus(4)
	if err != nil {
		return smi.Stats{}, err
	}
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program: smi.ProgramSpec{Ports: []smi.PortSpec{
			{Port: 0, Type: smi.Int}, {Port: 1, Type: smi.Int},
		}},
		ChromeTrace:   f,
		Faults:        spec,
		RoutingPolicy: routing.UpDown,
	})
	if err != nil {
		return smi.Stats{}, err
	}
	c.OnRank(0, "ping", func(x *smi.Ctx) {
		for r := 0; r < 4; r++ {
			s, _ := x.OpenSendChannel(1, smi.Int, 3, 0, x.CommWorld())
			s.PushInt(int32(r))
			v, _ := x.OpenRecvChannel(1, smi.Int, 3, 1, x.CommWorld())
			v.PopInt()
		}
	})
	c.OnRank(3, "pong", func(x *smi.Ctx) {
		for r := 0; r < 4; r++ {
			v, _ := x.OpenRecvChannel(1, smi.Int, 0, 0, x.CommWorld())
			got := v.PopInt()
			s, _ := x.OpenSendChannel(1, smi.Int, 0, 1, x.CommWorld())
			s.PushInt(got)
		}
	})
	return c.Run()
}

func traceReduce(f *os.File, spec *fault.Spec) (smi.Stats, error) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		return smi.Stats{}, err
	}
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program: smi.ProgramSpec{Ports: []smi.PortSpec{
			{Port: 0, Kind: smi.Reduce, Type: smi.Float, ReduceOp: smi.Add, CreditElems: 128},
		}},
		ChromeTrace:   f,
		Faults:        spec,
		RoutingPolicy: routing.UpDown,
	})
	if err != nil {
		return smi.Stats{}, err
	}
	const n = 2048
	c.SPMD("reduce", func(x *smi.Ctx) {
		ch, err := x.OpenReduceChannel(n, smi.Float, smi.Add, 0, 0, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			ch.ReduceFloat(float32(x.Rank()))
		}
	})
	return c.Run()
}

func traceStencil(f *os.File, spec *fault.Spec) (smi.Stats, error) {
	topo, err := topology.Torus2D(2, 2)
	if err != nil {
		return smi.Stats{}, err
	}
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program: smi.ProgramSpec{Ports: []smi.PortSpec{
			{Port: 1, Type: smi.Float, BufferElems: 264},
			{Port: 2, Type: smi.Float, BufferElems: 264},
			{Port: 3, Type: smi.Float, BufferElems: 264},
			{Port: 4, Type: smi.Float, BufferElems: 264},
		}},
		ChromeTrace:   f,
		Faults:        spec,
		RoutingPolicy: routing.UpDown,
	})
	if err != nil {
		return smi.Stats{}, err
	}
	// A compact halo-exchange pattern (2x2 rank grid, 3 timesteps):
	// every rank trades a 256-element boundary with its grid neighbors.
	const halo, steps = 256, 3
	c.SPMD("halo", func(x *smi.Ctx) {
		rx, ry := x.Rank()/2, x.Rank()%2
		for t := 0; t < steps; t++ {
			type edge struct {
				neighbor int
				sendPort int
				recvPort int
			}
			var edges []edge
			if rx == 0 {
				edges = append(edges, edge{x.Rank() + 2, 1, 2}) // south neighbor
			} else {
				edges = append(edges, edge{x.Rank() - 2, 2, 1}) // north neighbor
			}
			if ry == 0 {
				edges = append(edges, edge{x.Rank() + 1, 3, 4}) // east neighbor
			} else {
				edges = append(edges, edge{x.Rank() - 1, 4, 3}) // west neighbor
			}
			for _, e := range edges {
				s, err := x.OpenSendChannel(halo, smi.Float, e.neighbor, e.sendPort, x.CommWorld())
				if err != nil {
					panic(err)
				}
				for i := 0; i < halo; i++ {
					s.PushFloat(float32(i))
				}
			}
			for _, e := range edges {
				r, err := x.OpenRecvChannel(halo, smi.Float, e.neighbor, e.recvPort, x.CommWorld())
				if err != nil {
					panic(err)
				}
				for i := 0; i < halo; i++ {
					r.PopFloat()
				}
			}
			x.Sleep(2000) // the compute sweep between exchanges
		}
	})
	return c.Run()
}
