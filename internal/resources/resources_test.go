package resources

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/transport"
)

// shapeFor builds the structural shape of the paper's Table 1 scenarios:
// q QSFP interfaces, one application endpoint per CKS/CKR pair.
func shapeFor(q int) (transport.Shape, int) {
	// Internal FIFOs: 2q network ports + 2q pair FIFOs + 2q(q-1) crossbars.
	fifos := 2*q + 2*q + 2*q*(q-1)
	var ports []int
	// CKS: inputs = 1 app + 1 pair + (q-1) others; outputs = net + pair +
	// (q-1) others. CKR is symmetric.
	for i := 0; i < 2*q; i++ {
		ports = append(ports, (1+1+(q-1))+(1+1+(q-1)))
	}
	return transport.Shape{Fifos: fifos, CKPorts: ports}, 2 * q // app fifos
}

func TestTable1OneQSFP(t *testing.T) {
	shape, app := shapeFor(1)
	inter, ck := Transport(shape, app)
	// Paper: Interconn. 144 LUTs, 4872 FFs, 0 M20Ks.
	if inter.LUTs != 144 || inter.FFs != 4872 || inter.M20Ks != 0 {
		t.Fatalf("1-QSFP interconnect = %v, want 144/4872/0 (Table 1)", inter)
	}
	// Paper: C.K. 6186 LUTs, 7189 FFs, 10 M20Ks.
	if ck.LUTs != 6186 || ck.M20Ks != 10 {
		t.Fatalf("1-QSFP CK = %v, want 6186 LUTs / 10 M20Ks (Table 1)", ck)
	}
	if ck.FFs < 7000 || ck.FFs > 7400 {
		t.Fatalf("1-QSFP CK FFs = %d, want ~7189 (Table 1)", ck.FFs)
	}
}

func TestTable1FourQSFPs(t *testing.T) {
	shape, app := shapeFor(4)
	inter, ck := Transport(shape, app)
	// Paper: Interconn. 1152 LUTs, 39264 FFs, 0 M20Ks.
	if inter.LUTs != 1152 || inter.M20Ks != 0 {
		t.Fatalf("4-QSFP interconnect = %v, want 1152 LUTs / 0 M20Ks (Table 1)", inter)
	}
	if inter.FFs < 38000 || inter.FFs > 40500 {
		t.Fatalf("4-QSFP interconnect FFs = %d, want ~39264 (Table 1)", inter.FFs)
	}
	// Paper: C.K. 30960 LUTs, 31072 FFs, 40 M20Ks.
	if ck.LUTs != 30960 || ck.FFs != 31072 || ck.M20Ks != 40 {
		t.Fatalf("4-QSFP CK = %v, want 30960/31072/40 (Table 1)", ck)
	}
}

func TestTable1OverheadUnderTwoPercent(t *testing.T) {
	// "In all cases, the resource overhead of SMI is insignificant,
	// amounting to less than 2% of the total chip resources."
	shape, app := shapeFor(4)
	inter, ck := Transport(shape, app)
	lut, ff, m20k, _ := inter.Add(ck).Percent(StratixGX2800())
	if lut >= 2 || ff >= 2 || m20k >= 2 {
		t.Fatalf("4-QSFP overhead %.2f%%/%.2f%%/%.2f%% exceeds 2%%", lut, ff, m20k)
	}
}

func TestSuperlinearGrowth(t *testing.T) {
	// "The number of used resources grows slightly faster than linear"
	// with the QSFP count, because each kernel's port count grows too.
	s1, a1 := shapeFor(1)
	s4, a4 := shapeFor(4)
	i1, k1 := Transport(s1, a1)
	i4, k4 := Transport(s4, a4)
	if i4.LUTs <= 4*i1.LUTs || i4.FFs <= 4*i1.FFs {
		t.Fatalf("interconnect growth not superlinear: %v -> %v", i1, i4)
	}
	if k4.LUTs <= 4*k1.LUTs {
		t.Fatalf("CK LUT growth should exceed 4x: %d -> %d", k1.LUTs, k4.LUTs)
	}
}

func TestTable2CollectiveKernels(t *testing.T) {
	b := BcastSupport()
	if b.LUTs != 2560 || b.FFs != 3593 || b.DSPs != 0 || b.M20Ks != 0 {
		t.Fatalf("Bcast support = %v, want 2560/3593/0/0 (Table 2)", b)
	}
	r := ReduceSupport(packet.Float)
	// Paper: 10268 LUTs, 14648 FFs, 0 M20Ks, 6 DSPs for FP32 SUM.
	if r.DSPs != 6 {
		t.Fatalf("FP32 reduce DSPs = %d, want 6 (Table 2)", r.DSPs)
	}
	if r.LUTs < 9700 || r.LUTs > 10800 {
		t.Fatalf("FP32 reduce LUTs = %d, want ~10268 (Table 2)", r.LUTs)
	}
	if r.FFs < 13900 || r.FFs > 15400 {
		t.Fatalf("FP32 reduce FFs = %d, want ~14648 (Table 2)", r.FFs)
	}
}

func TestReduceSupportVariants(t *testing.T) {
	// Integer reductions need no DSPs; doubles need more than floats.
	if ReduceSupport(packet.Int).DSPs != 0 {
		t.Error("integer reduce should use no DSPs")
	}
	if ReduceSupport(packet.Double).DSPs <= ReduceSupport(packet.Float).DSPs {
		t.Error("double reduce should use more DSPs than float")
	}
	for _, dt := range []packet.Datatype{packet.Char, packet.Short, packet.Int, packet.Float, packet.Double} {
		u := ReduceSupport(dt)
		if u.LUTs <= 0 || u.FFs <= 0 {
			t.Errorf("%v reduce usage not positive: %v", dt, u)
		}
	}
}

func TestUsageArithmetic(t *testing.T) {
	a := Usage{1, 2, 3, 4}
	b := Usage{10, 20, 30, 40}
	if got := a.Add(b); got != (Usage{11, 22, 33, 44}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Scale(3); got != (Usage{3, 6, 9, 12}) {
		t.Fatalf("Scale = %v", got)
	}
	lut, _, _, dsp := b.Percent(Usage{100, 100, 100, 100})
	if lut != 10 || dsp != 40 {
		t.Fatalf("Percent = %v, %v", lut, dsp)
	}
	// Division by zero capacity is defined as 0%.
	if _, _, _, d := a.Percent(Usage{}); d != 0 {
		t.Fatal("Percent with zero capacity should be 0")
	}
}
