// Package resources estimates the FPGA resource consumption (lookup
// tables, flip-flops, M20K memory blocks, DSPs) of an SMI design.
//
// Synthesizing for silicon is outside the scope of this reproduction, so
// the package provides an analytic cost model derived from the structure
// a design actually instantiates — FIFOs, communication kernels with
// their port counts, and collective support kernels — with per-unit
// constants calibrated to the two design points the paper measured
// (Table 1: one and four QSFPs; Table 2: Bcast and FP32-SUM Reduce
// support kernels). The calibration falls out remarkably cleanly: the
// interconnect numbers in Table 1 are an exact multiple of the FIFO
// count (24 LUTs and ~812 FFs per FIFO), and the communication kernel
// numbers fit a linear model in the kernel's port count.
package resources

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/transport"
)

// Usage is a resource vector.
type Usage struct {
	LUTs  int
	FFs   int
	M20Ks int
	DSPs  int
}

// Add returns the element-wise sum.
func (u Usage) Add(v Usage) Usage {
	return Usage{u.LUTs + v.LUTs, u.FFs + v.FFs, u.M20Ks + v.M20Ks, u.DSPs + v.DSPs}
}

// Scale returns the usage multiplied by n.
func (u Usage) Scale(n int) Usage {
	return Usage{u.LUTs * n, u.FFs * n, u.M20Ks * n, u.DSPs * n}
}

// Percent returns the fraction of a chip's capacity, per resource class,
// in percent.
func (u Usage) Percent(chip Usage) (lut, ff, m20k, dsp float64) {
	pct := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	return pct(u.LUTs, chip.LUTs), pct(u.FFs, chip.FFs), pct(u.M20Ks, chip.M20Ks), pct(u.DSPs, chip.DSPs)
}

func (u Usage) String() string {
	return fmt.Sprintf("%d LUTs, %d FFs, %d M20Ks, %d DSPs", u.LUTs, u.FFs, u.M20Ks, u.DSPs)
}

// StratixGX2800 returns the capacity of the Stratix 10 GX2800 chip on
// the Nallatech 520N.
func StratixGX2800() Usage {
	return Usage{LUTs: 1_866_240, FFs: 3_732_480, M20Ks: 11_721, DSPs: 5_760}
}

// Calibrated per-unit constants (see package comment).
const (
	fifoLUTs = 24
	fifoFFs  = 812

	// CK costs are linear in the port count; the constants are stored
	// scaled (halves for LUTs, quarters for FFs) to keep the arithmetic
	// exact: LUTs = 2575 + 129.5*ports, FFs = 3401.5 + 48.25*ports.
	ckBaseLUTsX2    = 5150
	ckPerPortLUTsX2 = 259
	ckBaseFFsX4     = 13606
	ckPerPortFFsX4  = 193
	ckM20Ks         = 5 // CKS and CKR routing tables
)

// FIFO returns the cost of one inter-kernel FIFO (shallow, held in
// logic: no M20K blocks, matching Table 1's zero M20K interconnect).
func FIFO() Usage { return Usage{LUTs: fifoLUTs, FFs: fifoFFs} }

// CK returns the cost of one communication kernel (CKS or CKR) with the
// given total port count (inputs + outputs).
func CK(ports int) Usage {
	return Usage{
		LUTs:  (ckBaseLUTsX2 + ckPerPortLUTsX2*ports) / 2,
		FFs:   (ckBaseFFsX4 + ckPerPortFFsX4*ports) / 4,
		M20Ks: ckM20Ks,
	}
}

// BcastSupport returns the cost of one broadcast support kernel
// (Table 2 measures 2560 LUTs, 3593 FFs).
func BcastSupport() Usage { return Usage{LUTs: 2560, FFs: 3593} }

// ScatterSupport returns the cost of one scatter support kernel: a
// broadcast-style streamer plus per-chunk bookkeeping.
func ScatterSupport() Usage { return Usage{LUTs: 2810, FFs: 3950} }

// GatherSupport returns the cost of one gather support kernel: grant
// sequencing plus in-order merge logic.
func GatherSupport() Usage { return Usage{LUTs: 2980, FFs: 4180} }

// ReduceSupport returns the cost of one reduce support kernel for the
// given element type. The accumulator buffer and the vectorized
// element-wise ALU dominate; Table 2 measures 10268 LUTs, 14648 FFs and
// 6 DSPs for 32-bit floating point SUM.
func ReduceSupport(dt packet.Datatype) Usage {
	base := Usage{LUTs: 4100, FFs: 6500}
	lanes := dt.ElemsPerPacket() // ALU lanes, one per payload element
	switch dt {
	case packet.Float:
		return base.Add(Usage{LUTs: 881 * lanes, FFs: 1164 * lanes, DSPs: 6})
	case packet.Double:
		return base.Add(Usage{LUTs: 1850 * lanes, FFs: 2300 * lanes, DSPs: 8})
	case packet.Int:
		return base.Add(Usage{LUTs: 230 * lanes, FFs: 310 * lanes})
	case packet.Short:
		return base.Add(Usage{LUTs: 120 * lanes, FFs: 160 * lanes})
	case packet.Char:
		return base.Add(Usage{LUTs: 60 * lanes, FFs: 85 * lanes})
	default:
		return base
	}
}

// Transport estimates a device's transport layer from its structural
// shape, split into interconnect (FIFOs) and communication kernels, the
// two rows of Table 1.
func Transport(shape transport.Shape, appFifos int) (interconnect, kernels Usage) {
	interconnect = FIFO().Scale(shape.Fifos + appFifos)
	for _, ports := range shape.CKPorts {
		kernels = kernels.Add(CK(ports))
	}
	return interconnect, kernels
}
