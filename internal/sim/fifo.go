package sim

// fifoCore holds the type-independent bookkeeping of a FIFO: occupancy,
// capacity, and the procs and kernels blocked on it.
type fifoCore struct {
	name      string
	eng       *Engine
	index     int32 // registration index in the engine's FIFO list
	capacity  int
	size      int // committed (reader-visible) occupancy
	pendingIn int // writes performed this cycle, not yet visible

	spaceWaiters []*Proc
	dataWaiters  []*Proc
	kernWaiters  []KernelID // parked kernels to wake on pops and commits

	dirty   bool // on the engine's dirty list this cycle
	stalled bool // inside a blocked-push window (stall accounting)

	// statistics
	pushes    uint64
	maxSize   int
	stallHint uint64 // blocked-push windows (backpressure events)
}

// wake transitions procs blocked on this FIFO back to runnable once the
// condition they wait for holds. Called at the end of each cycle, after
// commits; woken procs run no earlier than the following cycle.
func (c *fifoCore) wake(e *Engine) {
	if c.size > 0 && len(c.dataWaiters) > 0 {
		for _, p := range c.dataWaiters {
			p.status = procRunnable
			p.runAt = e.now + 1
			e.scheduleProc(p, p.runAt)
		}
		c.dataWaiters = c.dataWaiters[:0]
	}
	if c.size+c.pendingIn < c.capacity && len(c.spaceWaiters) > 0 {
		for _, p := range c.spaceWaiters {
			p.status = procRunnable
			p.runAt = e.now + 1
			e.scheduleProc(p, p.runAt)
		}
		c.spaceWaiters = c.spaceWaiters[:0]
	}
}

// Fifo is a bounded queue with registered writes: an element pushed
// during cycle t becomes visible to readers at cycle t+1, mirroring the
// one-cycle output latency of an on-chip FIFO. Pops take effect
// immediately (the freed slot is reusable in the same cycle).
//
// A Fifo supports one logical reader and one logical writer, matching
// the single-reader/single-writer restriction of Intel OpenCL channels
// that the paper's reference implementation works within.
type Fifo[T any] struct {
	fifoCore
	buf     []T // ring buffer of committed elements
	head    int
	pending []T // writes awaiting commit
}

// NewFifo creates a FIFO of the given capacity (minimum 1) and registers
// it with the engine for end-of-cycle commits.
func NewFifo[T any](e *Engine, name string, capacity int) *Fifo[T] {
	if e.started {
		panic("sim: NewFifo after Run")
	}
	if capacity < 1 {
		capacity = 1
	}
	f := &Fifo[T]{
		fifoCore: fifoCore{name: name, eng: e, index: int32(len(e.fifos)), capacity: capacity},
		buf:      make([]T, capacity),
	}
	e.fifos = append(e.fifos, fifoRef{commit: f.commit, core: &f.fifoCore})
	return f
}

// WakesKernel attaches a kernel as a wake target of this FIFO: commits
// and pops on the FIFO wake the kernel if it is parked (see IdleUntiler).
// Attach every kernel that reads from or writes to the FIFO and may park
// while waiting for its state to change.
func (f *Fifo[T]) WakesKernel(id KernelID) {
	f.kernWaiters = append(f.kernWaiters, id)
}

// Stalls returns the number of blocked-push windows observed: a window
// opens on the first failed push attempt and closes on the next success,
// so a producer retrying for many cycles counts once.
func (f *Fifo[T]) Stalls() uint64 { return f.stallHint }

// Name returns the FIFO's registered name.
func (f *Fifo[T]) Name() string { return f.fifoCore.name }

// Cap returns the FIFO's capacity.
func (f *Fifo[T]) Cap() int { return f.capacity }

// Len returns the committed (reader-visible) occupancy.
func (f *Fifo[T]) Len() int { return f.size }

// Pushes returns the total number of elements ever pushed.
func (f *Fifo[T]) Pushes() uint64 { return f.pushes }

// PushesCommitted returns the cumulative count of elements that have
// become reader-visible: Pushes minus this cycle's pending registered
// writes. Unlike Pushes it is phase-stable — a kernel reading it mid-
// cycle sees the same value whether or not another kernel already pushed
// this cycle — which is what cross-kernel accounting (the
// receiver-driven transport's arrival counters) needs for scheduler
// parity.
func (f *Fifo[T]) PushesCommitted() uint64 { return f.pushes - uint64(f.pendingIn) }

// MaxLen returns the high-water mark of committed occupancy.
func (f *Fifo[T]) MaxLen() int { return f.maxSize }

// CanPush reports whether a push would be accepted this cycle.
func (f *Fifo[T]) CanPush() bool { return f.size+f.pendingIn < f.capacity }

// CanPop reports whether committed data is available.
func (f *Fifo[T]) CanPop() bool { return f.size > 0 }

// TryPush enqueues v if space is available, reporting success. The
// element becomes visible to readers next cycle.
func (f *Fifo[T]) TryPush(v T) bool {
	if !f.CanPush() {
		if !f.stalled {
			f.stalled = true
			f.stallHint++
		}
		return false
	}
	f.stalled = false
	f.pending = append(f.pending, v)
	f.pendingIn++
	f.pushes++
	f.markDirty()
	return true
}

// TryPop dequeues the oldest committed element, reporting success.
func (f *Fifo[T]) TryPop() (T, bool) {
	var zero T
	if f.size == 0 {
		return zero, false
	}
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) % f.capacity
	f.size--
	// A pop frees space immediately, so the end-of-cycle wake pass must
	// visit this FIFO, and parked producer kernels may resume.
	f.markDirty()
	if len(f.kernWaiters) > 0 {
		f.wakeKernels()
	}
	return v, true
}

// Peek returns the oldest committed element without removing it.
func (f *Fifo[T]) Peek() (T, bool) {
	var zero T
	if f.size == 0 {
		return zero, false
	}
	return f.buf[f.head], true
}

// PushProc pushes v on behalf of proc p, blocking (consuming cycles)
// while the FIFO is full. A successful push consumes one cycle,
// preserving the initiation-interval-one contract of pipelined loops.
func (f *Fifo[T]) PushProc(p *Proc, v T) {
	for !f.CanPush() {
		p.waitCond(&f.fifoCore, true)
	}
	f.TryPush(v)
	p.Tick()
}

// PopProc pops an element on behalf of proc p, blocking while empty.
// A successful pop consumes one cycle.
func (f *Fifo[T]) PopProc(p *Proc) T {
	for !f.CanPop() {
		p.waitCond(&f.fifoCore, false)
	}
	v, _ := f.TryPop()
	p.Tick()
	return v
}

// PopProcPaired pops an element on behalf of proc p, blocking while
// empty, but a successful pop consumes no cycle of its own: it models
// the second port of a dual-port operation that already paid its cycle
// (e.g. SMI_Reduce at the root pushes a contribution and pops a result
// in one pipelined loop iteration). Use sparingly — at most one paired
// pop per cycle-consuming operation keeps the model honest.
func (f *Fifo[T]) PopProcPaired(p *Proc) T {
	for !f.CanPop() {
		p.waitCond(&f.fifoCore, false)
	}
	v, _ := f.TryPop()
	return v
}

// PushProcE is PushProc with a cancellable wait: it blocks at most until
// the absolute deadline cycle (Never for no deadline) and unblocks early
// if the engine cancels waits (Engine.CancelWaits). On WaitOK the
// element was pushed and one cycle consumed; on WaitTimeout/WaitAborted
// nothing was pushed and no cycle was consumed by the failed attempt.
func (f *Fifo[T]) PushProcE(p *Proc, v T, deadline int64) WaitResult {
	for !f.CanPush() {
		if r := p.waitCondCancel(&f.fifoCore, true, deadline); r != WaitOK {
			return r
		}
	}
	f.TryPush(v)
	p.Tick()
	return WaitOK
}

// PopProcE is PopProc with a cancellable wait (see PushProcE). On WaitOK
// the element is returned and one cycle consumed; otherwise the zero
// value is returned and the FIFO is untouched.
func (f *Fifo[T]) PopProcE(p *Proc, deadline int64) (T, WaitResult) {
	for !f.CanPop() {
		if r := p.waitCondCancel(&f.fifoCore, false, deadline); r != WaitOK {
			var zero T
			return zero, r
		}
	}
	v, _ := f.TryPop()
	p.Tick()
	return v, WaitOK
}

// PopProcPairedE is PopProcPaired with a cancellable wait (see
// PushProcE): a successful pop consumes no cycle of its own.
func (f *Fifo[T]) PopProcPairedE(p *Proc, deadline int64) (T, WaitResult) {
	for !f.CanPop() {
		if r := p.waitCondCancel(&f.fifoCore, false, deadline); r != WaitOK {
			var zero T
			return zero, r
		}
	}
	v, _ := f.TryPop()
	return v, WaitOK
}

// PushAtBarrier enqueues v with every engine stopped at a group barrier,
// making it visible immediately (no registered-output delay) and waking
// attached kernels and blocked procs at the engine's current clock.
// With the engines stopped at clock c+1, this reproduces exactly what a
// dense-mode kernel pushing at cycle c would produce: the element
// commits in c's phase 3 and wakes everything for cycle c+1. Only group
// coordinators (e.g. the failover manager's packet rescue) may call it;
// from inside a running window it would break the registered-write
// contract.
func (f *Fifo[T]) PushAtBarrier(v T) bool {
	if !f.CanPush() {
		if !f.stalled {
			f.stalled = true
			f.stallHint++
		}
		return false
	}
	f.stalled = false
	f.buf[(f.head+f.size)%f.capacity] = v
	f.size++
	f.pushes++
	if f.size > f.maxSize {
		f.maxSize = f.size
	}
	e := f.eng
	e.fifoCommits++
	for _, id := range f.kernWaiters {
		e.wakeKernelAt(id, e.now)
	}
	if len(f.dataWaiters) > 0 {
		for _, p := range f.dataWaiters {
			p.status = procRunnable
			p.runAt = e.now
			e.scheduleProc(p, p.runAt)
		}
		f.dataWaiters = f.dataWaiters[:0]
	}
	return true
}

// commit publishes this cycle's writes to readers.
func (f *Fifo[T]) commit() bool {
	if f.pendingIn == 0 {
		return false
	}
	for _, v := range f.pending {
		f.buf[(f.head+f.size)%f.capacity] = v
		f.size++
	}
	f.pending = f.pending[:0]
	f.pendingIn = 0
	if f.size > f.maxSize {
		f.maxSize = f.size
	}
	return true
}
