package sim

import "fmt"

// Boundary is the one legal channel for state to cross between engine
// shards: a single-producer single-consumer queue of timestamped
// entries with a fixed minimum latency. The producing engine Puts
// entries during its window; the consuming engine sees an entry only
// once its readyAt cycle is due. Entries become visible to the consumer
//
//   - immediately (gated by readyAt) when both halves live on the same
//     engine, exactly like an in-kernel delay line, or
//   - at the next group barrier when the halves live on different
//     engines. Because every entry's readyAt lies at least `latency`
//     cycles after its Put and windows are no longer than the smallest
//     boundary latency, a barrier flush always publishes entries before
//     the consumer's clock can reach them — the conservative-lookahead
//     invariant that makes sharded runs bit-identical to the dense scan.
//
// A Boundary wakes the consumer kernel (wakeKernelAt) when entries
// become visible, so parked consumers resume exactly at readyAt.
type Boundary[T any] struct {
	src, dst *Engine
	dstK     KernelID
	latency  int64

	head []boundaryEntry[T] // visible to the consumer
	tail []boundaryEntry[T] // produced this window, not yet flushed
}

type boundaryEntry[T any] struct {
	v       T
	readyAt int64
}

// boundaryFlusher is the untyped view of a Boundary the Group drives at
// barriers.
type boundaryFlusher interface {
	flush()
	Latency() int64
}

// boundaryInlet is the consumer-side untyped view the destination
// engine's earliestEvent merges: pending arrivals are future work even
// when every local proc and kernel is quiescent. The adaptive group
// driver additionally reads the producing engine and the crossing
// latency to compute the consumer's per-boundary safe horizon.
type boundaryInlet interface {
	NextReadyAt() int64
	srcEngine() *Engine
	Latency() int64
}

// NewBoundary creates a boundary whose producer runs on src and whose
// consumer is kernel dstK on dst. Entries Put at cycle t become
// consumable at t+latency. The boundary registers itself with the
// source engine so a Group covering both engines flushes it at every
// barrier; when src == dst no flushing is needed and Puts land in head
// directly.
func NewBoundary[T any](src, dst *Engine, dstK KernelID, latency int64) *Boundary[T] {
	if latency < 1 {
		latency = 1
	}
	b := &Boundary[T]{src: src, dst: dst, dstK: dstK, latency: latency}
	if src != dst {
		src.boundaries = append(src.boundaries, b)
		dst.inBoundaries = append(dst.inBoundaries, b)
	}
	return b
}

// Latency returns the boundary's minimum crossing latency in cycles.
func (b *Boundary[T]) Latency() int64 { return b.latency }

// srcEngine returns the producing engine (boundaryInlet view).
func (b *Boundary[T]) srcEngine() *Engine { return b.src }

// Crossing reports whether the boundary connects two distinct engines.
func (b *Boundary[T]) Crossing() bool { return b.src != b.dst }

// Put appends v with readyAt = now+latency. Must be called from the
// source engine's thread (its kernel or proc phases).
func (b *Boundary[T]) Put(now int64, v T) {
	ent := boundaryEntry[T]{v: v, readyAt: now + b.latency}
	if b.src == b.dst {
		b.head = append(b.head, ent)
		// The consumer may be parked waiting for exactly this arrival.
		b.src.wakeKernelAt(b.dstK, ent.readyAt)
		return
	}
	b.tail = append(b.tail, ent)
}

// flush publishes the producer's window output to the consumer and
// schedules the consumer kernel at the first new entry's ready cycle.
// Called by the Group at barriers, with all engines stopped. The
// readyAt check is the conservative-lookahead safety invariant: an
// entry published after the consumer's clock passed its ready cycle
// would change simulated history, so a violation is a scheduler bug
// (a window horizon exceeded the per-boundary safe bound), never a
// recoverable condition.
func (b *Boundary[T]) flush() {
	if len(b.tail) == 0 {
		return
	}
	if b.tail[0].readyAt < b.dst.now {
		panic(fmt.Sprintf("sim: boundary flush violates lookahead: entry ready at %d, consumer already at %d (latency %d)",
			b.tail[0].readyAt, b.dst.now, b.latency))
	}
	b.head = append(b.head, b.tail...)
	b.dst.wakeKernelAt(b.dstK, b.tail[0].readyAt)
	b.tail = b.tail[:0]
}

// Clear drops every entry on both sides of the boundary. Used when the
// attached hardware is parked for repair (e.g. a failed cable): in-flight
// traffic is lost, exactly like the monolithic wire model it replaces.
func (b *Boundary[T]) Clear() {
	b.head = b.head[:0]
	b.tail = b.tail[:0]
}

// Len returns the number of entries visible to the consumer.
func (b *Boundary[T]) Len() int { return len(b.head) }

// Pending returns the number of unflushed (produced this window)
// entries; consumer-side callers must treat it as zero.
func (b *Boundary[T]) Pending() int { return len(b.tail) }

// PeekReady returns the oldest entry if its readyAt is due.
func (b *Boundary[T]) PeekReady(now int64) (T, bool) {
	var zero T
	if len(b.head) == 0 || b.head[0].readyAt > now {
		return zero, false
	}
	return b.head[0].v, true
}

// PopReady removes and returns the oldest entry if its readyAt is due.
func (b *Boundary[T]) PopReady(now int64) (T, bool) {
	v, ok := b.PeekReady(now)
	if ok {
		b.head = b.head[1:]
	}
	return v, ok
}

// NextReadyAt returns the readyAt of the oldest visible entry, or Never
// if none is visible — the consumer's IdleUntil contribution.
func (b *Boundary[T]) NextReadyAt() int64 {
	if len(b.head) == 0 {
		return Never
	}
	return b.head[0].readyAt
}
