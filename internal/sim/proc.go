package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
)

type procStatus uint8

const (
	procRunnable procStatus = iota
	procBlocked             // waiting on a FIFO condition
	procSleeping            // waiting for a specific cycle
	procFinished
)

// errKilled is thrown (via panic) into a proc goroutine when the engine
// aborts; it unwinds the proc body and is swallowed by the runner.
var errKilled = errors.New("sim: proc killed")

// WaitResult reports how a cancellable FIFO wait ended.
type WaitResult uint8

const (
	// WaitOK: the awaited FIFO condition holds; the operation proceeded.
	WaitOK WaitResult = iota
	// WaitTimeout: the wait's deadline cycle arrived first.
	WaitTimeout
	// WaitAborted: the engine cancelled the wait (Engine.CancelWaits).
	WaitAborted
)

func (r WaitResult) String() string {
	switch r {
	case WaitOK:
		return "ok"
	case WaitTimeout:
		return "timeout"
	default:
		return "aborted"
	}
}

// schedNone marks a proc with no live wake-heap entry (event scheduler).
const schedNone = int64(-1)

// Proc is a cooperative process driven by the engine. A proc models a
// pipelined hardware kernel written as ordinary sequential Go code; every
// cycle-consuming operation (Tick, Sleep, blocking FIFO access) yields
// control back to the engine.
//
// Proc methods must only be called from within the proc's own body
// function, never from other goroutines or from Kernel.Tick.
type Proc struct {
	name string
	eng  *Engine
	idx  int32 // registration index; ties in the wake heap break on it
	body func(*Proc)

	resume  chan struct{}
	yielded chan struct{}
	quit    chan struct{}

	status    procStatus
	runAt     int64  // earliest cycle a runnable proc may run
	wakeAt    int64  // wake cycle while sleeping
	blockedOn string // description of the blocking condition
	err       error

	// Cancellable-wait state. A blocked proc whose wait was armed with a
	// deadline owns exactly one live wake-heap entry at that cycle; the
	// entry fires the timeout if the FIFO wake has not already won.
	schedAt     int64      // cycle of the live wake-heap entry (schedNone if none)
	deadline    int64      // absolute timeout cycle while blocked (Never if none)
	cancellable bool       // current wait may be cancelled (timeout/abort)
	waitFifo    *fifoCore  // FIFO the proc is blocked on, for waiter removal
	waitSpace   bool       // blocked on space (true) or data (false)
	waitRes     WaitResult // outcome of the last cancellable wait
}

// NewProc registers a process with the engine. The body runs when the
// engine's Run is called. Procs run once per cycle in registration order.
func NewProc(e *Engine, name string, body func(*Proc)) *Proc {
	if e.started {
		panic("sim: NewProc after Run")
	}
	p := &Proc{
		name:     name,
		eng:      e,
		idx:      int32(len(e.procs)),
		body:     body,
		resume:   make(chan struct{}),
		yielded:  make(chan struct{}),
		quit:     make(chan struct{}),
		schedAt:  schedNone,
		deadline: Never,
	}
	e.procs = append(e.procs, p)
	return p
}

// Name returns the proc's registered name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current cycle.
func (p *Proc) Now() int64 { return p.eng.now }

func (p *Proc) start() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); !ok || !errors.Is(err, errKilled) {
					p.err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
				}
			}
			p.status = procFinished
			p.yielded <- struct{}{}
		}()
		<-p.resume
		p.body(p)
	}()
}

func (p *Proc) kill() {
	close(p.quit)
	select {
	case p.resume <- struct{}{}:
		<-p.yielded
	default:
	}
}

// pause yields control to the engine and blocks until resumed.
func (p *Proc) pause() {
	p.yielded <- struct{}{}
	<-p.resume
	select {
	case <-p.quit:
		panic(errKilled)
	default:
	}
}

// Tick consumes exactly one clock cycle.
func (p *Proc) Tick() {
	p.status = procSleeping
	p.wakeAt = p.eng.now + 1
	p.eng.scheduleProc(p, p.wakeAt)
	p.pause()
}

// Sleep consumes n clock cycles (n <= 0 consumes none). Sleeping models
// a span of pipelined computation with no externally visible events; the
// engine fast-forwards over fully idle spans, so long sleeps are cheap.
func (p *Proc) Sleep(n int64) {
	if n <= 0 {
		return
	}
	p.status = procSleeping
	p.wakeAt = p.eng.now + n
	p.eng.scheduleProc(p, p.wakeAt)
	p.pause()
}

// waitCond blocks the proc on a FIFO condition. The FIFO's wake pass
// marks the proc runnable again.
func (p *Proc) waitCond(c *fifoCore, space bool) {
	p.status = procBlocked
	if space {
		p.blockedOn = fmt.Sprintf("space in fifo %s", c.name)
		c.spaceWaiters = append(c.spaceWaiters, p)
	} else {
		p.blockedOn = fmt.Sprintf("data in fifo %s", c.name)
		c.dataWaiters = append(c.dataWaiters, p)
	}
	p.pause()
}

// waitCondCancel blocks the proc on a FIFO condition like waitCond, but
// the wait can end three ways: the FIFO wake (WaitOK), the absolute
// deadline cycle arriving first (WaitTimeout), or an engine-wide cancel
// (WaitAborted). Pass Never for no deadline; the wait then stays
// cancellable by Engine.CancelWaits only.
//
// A deadline is a scheduled wake, not a per-cycle poll: in the event
// scheduler it is one wake-heap entry at the deadline cycle, which the
// FIFO wake turns stale by re-scheduling the proc. An armed deadline
// that never fires is therefore invisible to the cycle count.
func (p *Proc) waitCondCancel(c *fifoCore, space bool, deadline int64) WaitResult {
	if deadline <= p.eng.now {
		return WaitTimeout
	}
	p.status = procBlocked
	p.cancellable = true
	p.deadline = deadline
	p.waitFifo = c
	p.waitSpace = space
	p.waitRes = WaitOK
	if space {
		p.blockedOn = fmt.Sprintf("space in fifo %s", c.name)
		c.spaceWaiters = append(c.spaceWaiters, p)
	} else {
		p.blockedOn = fmt.Sprintf("data in fifo %s", c.name)
		c.dataWaiters = append(c.dataWaiters, p)
	}
	if deadline < Never {
		p.eng.scheduleProc(p, deadline)
	}
	p.pause()
	res := p.waitRes
	p.cancellable = false
	p.deadline = Never
	p.waitFifo = nil
	return res
}

// cancelWait removes a blocked proc from its FIFO waiter list and stamps
// the wait outcome. The caller transitions the proc back to runnable.
func (p *Proc) cancelWait(res WaitResult) {
	if c := p.waitFifo; c != nil {
		if p.waitSpace {
			c.spaceWaiters = removeProc(c.spaceWaiters, p)
		} else {
			c.dataWaiters = removeProc(c.dataWaiters, p)
		}
	}
	p.waitRes = res
}

// removeProc deletes p from a waiter list, preserving order.
func removeProc(list []*Proc, p *Proc) []*Proc {
	for i, q := range list {
		if q == p {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
