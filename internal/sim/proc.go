package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
)

type procStatus uint8

const (
	procRunnable procStatus = iota
	procBlocked             // waiting on a FIFO condition
	procSleeping            // waiting for a specific cycle
	procFinished
)

// errKilled is thrown (via panic) into a proc goroutine when the engine
// aborts; it unwinds the proc body and is swallowed by the runner.
var errKilled = errors.New("sim: proc killed")

// Proc is a cooperative process driven by the engine. A proc models a
// pipelined hardware kernel written as ordinary sequential Go code; every
// cycle-consuming operation (Tick, Sleep, blocking FIFO access) yields
// control back to the engine.
//
// Proc methods must only be called from within the proc's own body
// function, never from other goroutines or from Kernel.Tick.
type Proc struct {
	name string
	eng  *Engine
	idx  int32 // registration index; ties in the wake heap break on it
	body func(*Proc)

	resume  chan struct{}
	yielded chan struct{}
	quit    chan struct{}

	status    procStatus
	runAt     int64  // earliest cycle a runnable proc may run
	wakeAt    int64  // wake cycle while sleeping
	blockedOn string // description of the blocking condition
	err       error
}

// NewProc registers a process with the engine. The body runs when the
// engine's Run is called. Procs run once per cycle in registration order.
func NewProc(e *Engine, name string, body func(*Proc)) *Proc {
	if e.started {
		panic("sim: NewProc after Run")
	}
	p := &Proc{
		name:    name,
		eng:     e,
		idx:     int32(len(e.procs)),
		body:    body,
		resume:  make(chan struct{}),
		yielded: make(chan struct{}),
		quit:    make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	return p
}

// Name returns the proc's registered name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current cycle.
func (p *Proc) Now() int64 { return p.eng.now }

func (p *Proc) start() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); !ok || !errors.Is(err, errKilled) {
					p.err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
				}
			}
			p.status = procFinished
			p.yielded <- struct{}{}
		}()
		<-p.resume
		p.body(p)
	}()
}

func (p *Proc) kill() {
	close(p.quit)
	select {
	case p.resume <- struct{}{}:
		<-p.yielded
	default:
	}
}

// pause yields control to the engine and blocks until resumed.
func (p *Proc) pause() {
	p.yielded <- struct{}{}
	<-p.resume
	select {
	case <-p.quit:
		panic(errKilled)
	default:
	}
}

// Tick consumes exactly one clock cycle.
func (p *Proc) Tick() {
	p.status = procSleeping
	p.wakeAt = p.eng.now + 1
	p.eng.scheduleProc(p, p.wakeAt)
	p.pause()
}

// Sleep consumes n clock cycles (n <= 0 consumes none). Sleeping models
// a span of pipelined computation with no externally visible events; the
// engine fast-forwards over fully idle spans, so long sleeps are cheap.
func (p *Proc) Sleep(n int64) {
	if n <= 0 {
		return
	}
	p.status = procSleeping
	p.wakeAt = p.eng.now + n
	p.eng.scheduleProc(p, p.wakeAt)
	p.pause()
}

// waitCond blocks the proc on a FIFO condition. The FIFO's wake pass
// marks the proc runnable again.
func (p *Proc) waitCond(c *fifoCore, space bool) {
	p.status = procBlocked
	if space {
		p.blockedOn = fmt.Sprintf("space in fifo %s", c.name)
		c.spaceWaiters = append(c.spaceWaiters, p)
	} else {
		p.blockedOn = fmt.Sprintf("data in fifo %s", c.name)
		c.dataWaiters = append(c.dataWaiters, p)
	}
	p.pause()
}
