package sim

// Event-driven scheduler. The engine supports two scheduling modes that
// are required to be cycle-for-cycle equivalent:
//
//   - SchedDense is the reference implementation: every proc, kernel,
//     and FIFO is visited on every executed cycle.
//   - SchedEvent visits only components with work: procs live in a
//     min-heap keyed by wake cycle, kernels that declare an idle horizon
//     (IdleUntil) are parked until a scheduled deadline or an explicit
//     wake, and FIFO commits are driven by a dirty list.
//
// Determinism contract (see DESIGN.md): whenever several components are
// due on the same cycle, they are drained in registration-index order,
// which is exactly the order the dense scan visits them. Parked kernels
// promise via IdleUntil that ticking them before their horizon would
// observe no state change and perform none, so skipping those ticks is
// unobservable.

// SchedulerKind selects the engine's scheduling mode.
type SchedulerKind uint8

const (
	// SchedEvent is the activity-set scheduler (the default).
	SchedEvent SchedulerKind = iota
	// SchedDense is the reference dense-scan scheduler.
	SchedDense
	// SchedShard is the conservative parallel scheduler: the cluster is
	// partitioned into per-rank shards (one Engine each) that advance
	// independently up to the link-latency lookahead horizon and exchange
	// link traffic only at boundary synchronizations (see Group). A
	// single engine given SchedShard behaves exactly like SchedEvent;
	// the parallelism lives in the Group driver.
	SchedShard
	// SchedShardAdaptive is the adaptive-lookahead parallel scheduler:
	// instead of one global barrier cadence derived from the smallest
	// boundary latency, every engine advances to its own horizon — the
	// minimum over its incoming boundaries of the producer's lower-bound
	// clock plus that boundary's latency (a per-edge null-message bound).
	// Engines are owned by a worker pool that rebalances ownership at
	// round boundaries with a deterministic work-stealing rule (see
	// Group). A single engine given SchedShardAdaptive behaves exactly
	// like SchedEvent.
	SchedShardAdaptive
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedDense:
		return "dense"
	case SchedShard:
		return "shard"
	case SchedShardAdaptive:
		return "shard-adaptive"
	default:
		return "event"
	}
}

// Never is the IdleUntil sentinel meaning "idle until an external wake":
// the kernel is parked with no scheduled deadline and resumes only when
// an attached FIFO or an explicit WakeKernel call wakes it.
const Never = int64(1<<63 - 1)

// kernUnscheduled marks a parked kernel with no live heap entry.
const kernUnscheduled = int64(-1)

// KernelID identifies a registered kernel; AddKernel returns it and
// WakeKernel / Fifo.WakesKernel accept it.
type KernelID int32

// IdleUntiler is optionally implemented by kernels. After Tick returns
// false, the engine may call IdleUntil(now); the returned cycle w is a
// promise that every Tick in (now, w) would return false without
// changing any observable state, so the engine may skip those ticks.
// Returning now+1 (or smaller) keeps the kernel in the every-cycle tick
// set; returning Never parks it until an external wake. A parked kernel
// is woken early by commits and pops on FIFOs attached via WakesKernel,
// and by WakeKernel; early or duplicate ticks must be harmless.
type IdleUntiler interface {
	IdleUntil(now int64) int64
}

// SchedStats summarizes scheduler effort for benchmarking. The JSON
// form is part of the stats schema smid serves and smibench -json
// emits.
type SchedStats struct {
	Scheduler      string `json:"scheduler"`       // "dense", "event", "shard", or "shard-adaptive"
	Cycles         int64  `json:"cycles"`          // final simulated cycle count
	CyclesExecuted int64  `json:"cycles_executed"` // cycles the engine actually iterated
	CyclesSkipped  int64  `json:"cycles_skipped"`  // cycles fast-forwarded over
	ProcSteps      int64  `json:"proc_steps"`      // proc resumptions
	KernelTicks    int64  `json:"kernel_ticks"`    // Kernel.Tick invocations
	FifoCommits    int64  `json:"fifo_commits"`    // commit calls that published writes
	// Shards is the number of engine shards the run used (0 or 1 for a
	// single-engine run), and Syncs the number of boundary
	// synchronizations the shard group performed.
	Shards int   `json:"shards,omitempty"`
	Syncs  int64 `json:"syncs,omitempty"`
	// Windows counts engine-window executions across the run (adaptive
	// runs execute one window per engine with pending work per round;
	// fixed-window runs execute one window per shard per sync). Steals
	// counts rank-engine ownership moves performed by the deterministic
	// work-stealing rebalancer (shard-adaptive only).
	Windows int64 `json:"windows,omitempty"`
	Steals  int64 `json:"steals,omitempty"`
	// PerShard breaks the effort counters down by shard for sharded
	// runs (shard-local work is the load-balance signal). Under
	// shard-adaptive scheduling a "shard" is a worker slot and the row
	// aggregates the engines it owned when the run ended.
	PerShard []ShardEffort `json:"per_shard,omitempty"`
}

// ShardEffort is one shard's slice of the group effort counters.
type ShardEffort struct {
	Shard          int   `json:"shard"`
	Procs          int   `json:"procs"` // simulated processes hosted by this shard
	CyclesExecuted int64 `json:"cycles_executed"`
	CyclesSkipped  int64 `json:"cycles_skipped"`
	ProcSteps      int64 `json:"proc_steps"`
	KernelTicks    int64 `json:"kernel_ticks"`
	FifoCommits    int64 `json:"fifo_commits"`
	Syncs          int64 `json:"syncs"`
	// Windows counts engine windows this shard executed; Steals counts
	// engines stolen into this worker slot (shard-adaptive only).
	Windows int64 `json:"windows,omitempty"`
	Steals  int64 `json:"steals,omitempty"`
}

// engine phases, used to time same-cycle kernel wakes the way the dense
// scan would observe them.
type enginePhase uint8

const (
	phaseIdle enginePhase = iota
	phaseProcs
	phaseKernels
	phaseCommit
	// phaseBarrier marks an engine stopped at a group barrier with its
	// current cycle not yet executed: an effect applied now is observed
	// by kernels this very cycle, so WakeKernel wakes at e.now — the
	// timing a dense-mode kernel registered before them would produce.
	phaseBarrier
)

// schedEntry is a heap element: a component index due at cycle `at`.
// Entries with equal `at` order by index, which makes same-cycle heap
// drains match registration order.
type schedEntry struct {
	at  int64
	idx int32
}

type schedHeap struct {
	h []schedEntry
}

func (q *schedHeap) len() int        { return len(q.h) }
func (q *schedHeap) top() schedEntry { return q.h[0] }
func (q *schedHeap) less(a, b int) bool {
	if q.h[a].at != q.h[b].at {
		return q.h[a].at < q.h[b].at
	}
	return q.h[a].idx < q.h[b].idx
}

func (q *schedHeap) push(at int64, idx int32) {
	q.h = append(q.h, schedEntry{at, idx})
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *schedHeap) pop() schedEntry {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.h) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.h) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}

// intHeap is a min-heap of kernel indices used for same-cycle due sets.
type intHeap []int32

func (q *intHeap) push(v int32) {
	*q = append(*q, v)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[i] >= h[parent] {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *intHeap) pop() int32 {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l] < h[smallest] {
			smallest = l
		}
		if r < len(h) && h[r] < h[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	*q = h
	return top
}

// SetScheduler selects the scheduling mode. Must be called before Run.
func (e *Engine) SetScheduler(k SchedulerKind) {
	if e.started {
		panic("sim: SetScheduler after Run")
	}
	e.sched = k
}

// Scheduler returns the selected scheduling mode.
func (e *Engine) Scheduler() SchedulerKind { return e.sched }

// ExecutedCycles returns the number of cycles the engine has iterated
// (excluding fast-forwarded spans). Kernels that mirror per-cycle side
// effects of the dense scan (e.g. round-robin poll pointers) use this to
// catch up after being parked.
func (e *Engine) ExecutedCycles() int64 { return e.executed }

// SchedStats returns scheduler effort counters for the run so far.
func (e *Engine) SchedStats() SchedStats {
	return SchedStats{
		Scheduler:      e.sched.String(),
		Cycles:         e.now,
		CyclesExecuted: e.executed,
		CyclesSkipped:  e.skipped,
		ProcSteps:      e.procSteps,
		KernelTicks:    e.kernelTicks,
		FifoCommits:    e.fifoCommits,
	}
}

// WakeKernel asks the engine to tick kernel id at the earliest cycle the
// dense scan would have it observe the caller's effect: during the proc
// phase, the same cycle; during the kernel phase, the same cycle if id
// ticks after the currently ticking kernel, else the next cycle; at a
// group barrier (engine stopped, current cycle not yet executed), the
// same cycle; during commits (and outside Run), the next cycle. Waking a
// kernel that is not parked is a no-op, so callers need not track
// parking state.
func (e *Engine) WakeKernel(id KernelID) {
	at := e.now + 1
	switch e.phase {
	case phaseProcs, phaseBarrier:
		at = e.now
	case phaseKernels:
		if int32(id) > e.curKernel {
			at = e.now
		}
	}
	e.wakeKernelAt(id, at)
}

// wakeKernelAt schedules a tick for a parked kernel at cycle `at` unless
// an earlier or equal tick is already scheduled.
func (e *Engine) wakeKernelAt(id KernelID, at int64) {
	j := int32(id)
	if !e.kernParked[j] {
		return
	}
	if w := e.kernWhen[j]; w != kernUnscheduled && w <= at {
		return
	}
	e.kernWhen[j] = at
	e.kq.push(at, j)
}

// scheduleProc records a proc wake for the event scheduler. Each proc
// has at most one live heap entry — the one matching p.schedAt: procs
// enter the heap when they sleep, arm a wait deadline, or are woken from
// a FIFO wait, and leave it when stepped. Re-scheduling (e.g. a FIFO
// wake beating an armed deadline) strands the older entry, which the pop
// and fast-forward paths recognize as stale and discard.
func (e *Engine) scheduleProc(p *Proc, at int64) {
	if e.sched != SchedDense {
		p.schedAt = at
		e.pq.push(at, p.idx)
	}
}

// setHot moves kernel j into the every-cycle tick set.
func (e *Engine) setHot(j int32) {
	e.kernParked[j] = false
	e.kernWhen[j] = kernUnscheduled
	if !e.isHot[j] {
		e.isHot[j] = true
		e.hotDirty = true
	}
}

// parkKernel removes kernel j from the tick set until cycle w (or an
// external wake if w is Never).
func (e *Engine) parkKernel(j int32, w int64) {
	e.kernParked[j] = true
	if e.isHot[j] {
		e.isHot[j] = false
		e.hotDirty = true
	}
	if w < Never {
		e.kernWhen[j] = w
		e.kq.push(w, j)
	} else {
		e.kernWhen[j] = kernUnscheduled
	}
}

// rebuildHot regenerates the sorted hot-kernel snapshot from isHot.
func (e *Engine) rebuildHot() {
	e.hotK = e.hotK[:0]
	for j := range e.isHot {
		if e.isHot[j] {
			e.hotK = append(e.hotK, int32(j))
		}
	}
	e.hotDirty = false
}

// kernNextDeadline returns the earliest live scheduled kernel wake,
// discarding stale heap entries.
func (e *Engine) kernNextDeadline() (int64, bool) {
	for e.kq.len() > 0 {
		top := e.kq.top()
		if e.kernWhen[top.idx] != top.at {
			e.kq.pop() // stale: the kernel was rescheduled or woken
			continue
		}
		return top.at, true
	}
	return 0, false
}

// markDirty registers FIFO c for end-of-cycle processing on its first
// push or pop of the cycle. Pops matter too: they free space, and the
// wake pass must observe that.
func (c *fifoCore) markDirty() {
	if c.dirty || c.eng == nil || c.eng.sched == SchedDense {
		return
	}
	c.dirty = true
	c.eng.dirtyFifos = append(c.eng.dirtyFifos, c.index)
}

// wakeKernels wakes the kernels attached to this FIFO. Attached kernels
// are consumers or producers parked while the FIFO had no data (or no
// space) for them; a pop or commit may flip that condition.
func (c *fifoCore) wakeKernels() {
	for _, id := range c.kernWaiters {
		c.eng.WakeKernel(id)
	}
}

// ensureEventInit seeds the wake heap and hot set once per run. Windowed
// runs (see Group) call runEvent once per window, so the seeding is
// guarded rather than inlined in the loop entry.
func (e *Engine) ensureEventInit() {
	if e.eventInit {
		return
	}
	e.eventInit = true
	// All procs start runnable at cycle 0, in registration order.
	for _, p := range e.procs {
		p.schedAt = 0
		e.pq.push(0, p.idx)
	}
	for j := range e.kernels {
		e.isHot[j] = true
		e.hotK = append(e.hotK, int32(j))
	}
}

// nextProcEvent returns the earliest live proc wake in the event heap,
// discarding stale entries along the way.
func (e *Engine) nextProcEvent() int64 {
	for e.pq.len() > 0 {
		top := e.pq.top()
		p := e.procs[top.idx]
		if p.status == procFinished || p.schedAt != top.at {
			e.pq.pop() // stale: superseded by a later (re)schedule
			continue
		}
		return top.at
	}
	return Never
}

// runEvent is the activity-set scheduler loop. It must produce exactly
// the cycle-by-cycle behavior of runDense. In windowed mode it runs the
// clock up to (and stops exactly at) e.horizon; termination, deadlock,
// and cycle-limit decisions then belong to the Group driver.
func (e *Engine) runEvent() error {
	e.ensureEventInit()
	for {
		if e.windowed {
			if e.now >= e.horizon {
				return nil
			}
		} else {
			if e.finished == len(e.procs) && len(e.procs) > 0 {
				return e.drain()
			}
			if e.now >= e.maxCycles {
				e.stopProcs()
				return maxCyclesErr(e.maxCycles)
			}
			e.maybeProgress()
		}
		e.executed++
		active := false

		// Phase 1: run procs due this cycle, in registration order
		// (equal-cycle heap entries pop in index order). Entries whose
		// cycle no longer matches the proc's live schedule are stale —
		// a FIFO wake or cancel superseded them — and are discarded.
		// A live entry for a still-blocked proc is an armed deadline
		// firing: the wait is cancelled with WaitTimeout.
		e.phase = phaseProcs
		for e.pq.len() > 0 && e.pq.top().at <= e.now {
			ent := e.pq.pop()
			p := e.procs[ent.idx]
			if p.status == procFinished || p.schedAt != ent.at {
				continue // stale entry
			}
			p.schedAt = schedNone
			if p.status == procBlocked {
				p.cancelWait(WaitTimeout)
			}
			p.status = procRunnable
			active = true
			if err := e.step(p); err != nil {
				e.stopProcs()
				return err
			}
		}

		// Phase 2: tick hot kernels and due parked kernels, merged in
		// index order. Same-cycle wakes land in dueK mid-pass.
		e.phase = phaseKernels
		if e.hotDirty {
			e.rebuildHot()
		}
		if e.recorder != nil {
			if cap(e.kernWasBuf) < len(e.kernels) {
				e.kernWasBuf = make([]bool, len(e.kernels))
			}
			e.kernWasBuf = e.kernWasBuf[:len(e.kernels)]
			for i := range e.kernWasBuf {
				e.kernWasBuf[i] = false
			}
		}
		e.dueK = e.dueK[:0]
		drainDue := func() {
			for e.kq.len() > 0 {
				top := e.kq.top()
				if top.at > e.now {
					if e.kernWhen[top.idx] != top.at {
						e.kq.pop() // stale
						continue
					}
					break
				}
				e.kq.pop()
				if e.kernWhen[top.idx] != top.at {
					continue // stale
				}
				e.kernWhen[top.idx] = kernUnscheduled
				e.kernParked[top.idx] = false
				e.dueK.push(top.idx)
			}
		}
		drainDue()
		hi := 0
		for {
			var j int32 = -1
			if hi < len(e.hotK) {
				j = e.hotK[hi]
			}
			if len(e.dueK) > 0 && (j < 0 || e.dueK[0] < j) {
				j = e.dueK.pop()
			} else if j >= 0 {
				hi++
			} else {
				break
			}
			e.curKernel = j
			did := e.kernels[j].Tick(e.now)
			e.kernelTicks++
			if e.recorder != nil {
				e.kernWasBuf[j] = did
			}
			if did {
				active = true
				e.setHot(j)
			} else if iu := e.kernIdle[j]; iu != nil {
				// Any future horizon becomes a scheduled park — even
				// now+1 — so phase 4 sees every pending wake in the
				// heap and never mistakes a waiting kernel for
				// quiescence.
				if w := iu.IdleUntil(e.now); w > e.now {
					e.parkKernel(j, w)
				} else {
					e.setHot(j)
				}
			} else {
				e.setHot(j)
			}
			drainDue() // pick up same-cycle wakes issued by this tick
		}
		e.curKernel = int32(len(e.kernels))

		// Phase 3: commit dirty FIFOs in registration order, wake their
		// attached kernels, then wake blocked procs.
		e.phase = phaseCommit
		if len(e.dirtyFifos) > 1 {
			sortInt32(e.dirtyFifos)
		}
		for _, fi := range e.dirtyFifos {
			f := e.fifos[fi]
			if f.commit() {
				active = true
				e.fifoCommits++
				f.core.wakeKernels()
			}
		}
		for _, fi := range e.dirtyFifos {
			e.fifos[fi].core.wake(e)
		}
		for _, fi := range e.dirtyFifos {
			e.fifos[fi].core.dirty = false
		}
		e.dirtyFifos = e.dirtyFifos[:0]
		if e.recorder != nil {
			e.record(e.kernWasBuf)
		}

		// Phase 4: termination and fast-forward.
		e.phase = phaseIdle
		e.windowIdleUntil = e.now + 1
		if !active {
			next := e.nextProcEvent()
			if kd, ok := e.kernNextDeadline(); ok && kd < next {
				next = kd
			}
			e.windowIdleUntil = next
			if e.windowed && next > e.horizon {
				// Quiescent through the window boundary; whether anything
				// happens later (boundary traffic, other shards' procs) is
				// the group's call, so jump to the horizon and return.
				next = e.horizon
			}
			if next == Never {
				if e.finished == len(e.procs) {
					// Kernel-only (or empty) quiescence: nothing is
					// scheduled and no proc is waiting — a clean end.
					return e.drain()
				}
				err := e.deadlock()
				e.stopProcs()
				return err
			}
			if next > e.now+1 {
				e.skipped += next - e.now - 1
				e.now = next
				continue
			}
		}
		e.now++
	}
}

// sortInt32 is an insertion sort: dirty lists are short and nearly
// sorted (components touch FIFOs roughly in registration order).
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
