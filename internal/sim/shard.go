package sim

// Conservative parallel simulation driver. A Group owns several engine
// shards that share no mutable state except Boundary queues. Because
// every boundary imposes at least `window` cycles of latency, a shard
// advancing through the window [t, t+window) can only produce boundary
// entries whose readyAt lies at or beyond t+window — so shards may run
// the window concurrently, synchronize once, exchange boundary traffic,
// and repeat, while remaining cycle-for-cycle identical to a serial run.
//
// Determinism contract (see DESIGN.md "Shard scheduler"): shard-local
// execution is the unmodified engine loop; barriers flush boundaries in
// engine/registration order with all shards stopped; completion cycles
// are quoted from per-proc finish cycles (procsDoneAt), which makes the
// reported cycle count and every application-visible output invariant
// under the shard count. Effort counters (executed/skipped/ticks) and
// link tail traffic after the last proc finishes are quantized to the
// window and therefore compared at fixed shard counts only.

import (
	"sort"
	"sync"
)

// Group runs a set of engine shards under barrier synchronization.
type Group struct {
	engines   []*Engine
	window    int64 // lookahead: min latency over crossing boundaries
	maxCycles int64
	parallel  bool // worker goroutines per window (SchedShard) or serial

	base   int64 // current barrier cycle
	syncs  int64
	cycles int64 // final quoted cycle count (set when Run returns)

	progressEvery int64
	progressFn    func(now int64)
	nextProgress  int64
}

// NewGroup assembles a shard group. Call after every engine is fully
// built (kernels, FIFOs, boundaries): the lookahead window is derived
// from the smallest cross-engine boundary latency. parallel selects
// worker goroutines per window (SchedShard) versus serial shard
// execution (the exact comparator used by SchedDense/SchedEvent runs of
// a sharded cluster).
func NewGroup(engines []*Engine, maxCycles int64, parallel bool) *Group {
	g := &Group{engines: engines, maxCycles: maxCycles, parallel: parallel}
	g.window = maxCycles
	for _, e := range engines {
		for _, bf := range e.boundaries {
			if w := bf.Latency(); w < g.window {
				g.window = w
			}
		}
	}
	if g.window < 1 {
		g.window = 1
	}
	return g
}

// Window returns the lookahead window in cycles.
func (g *Group) Window() int64 { return g.window }

// Syncs returns the number of barrier synchronizations performed.
func (g *Group) Syncs() int64 { return g.syncs }

// Cycles returns the run's quoted cycle count: the completion cycle of
// the slowest proc on clean runs (invariant under the shard count), or
// the cycle the run stopped at on error.
func (g *Group) Cycles() int64 { return g.cycles }

// SetProgress installs a progress observer fired at barriers whenever
// the group clock reaches or crosses a multiple of `every` cycles —
// purely observational, like Engine.SetProgress.
func (g *Group) SetProgress(every int64, fn func(now int64)) {
	if every <= 0 || fn == nil {
		g.progressEvery, g.progressFn = 0, nil
		return
	}
	g.progressEvery, g.progressFn = every, fn
	g.nextProgress = every
}

func (g *Group) maybeProgress() {
	if g.progressFn == nil || g.base < g.nextProgress {
		return
	}
	g.progressFn(g.base)
	g.nextProgress = g.base - g.base%g.progressEvery + g.progressEvery
}

// SchedStats aggregates scheduler effort over the shards. kind is the
// cluster-level scheduling mode the stats are reported under.
func (g *Group) SchedStats(kind SchedulerKind) SchedStats {
	st := SchedStats{
		Scheduler: kind.String(),
		Cycles:    g.cycles,
		Shards:    len(g.engines),
		Syncs:     g.syncs,
	}
	for i, e := range g.engines {
		st.CyclesExecuted += e.executed
		st.CyclesSkipped += e.skipped
		st.ProcSteps += e.procSteps
		st.KernelTicks += e.kernelTicks
		st.FifoCommits += e.fifoCommits
		st.PerShard = append(st.PerShard, ShardEffort{
			Shard:          i,
			Procs:          len(e.procs),
			CyclesExecuted: e.executed,
			CyclesSkipped:  e.skipped,
			ProcSteps:      e.procSteps,
			KernelTicks:    e.kernelTicks,
			FifoCommits:    e.fifoCommits,
			Syncs:          g.syncs,
		})
	}
	return st
}

func (g *Group) totals() (done, total int) {
	for _, e := range g.engines {
		done += e.finished
		total += len(e.procs)
	}
	return done, total
}

func (g *Group) maxProcsDoneAt() int64 {
	var at int64
	for _, e := range g.engines {
		if e.procsDoneAt > at {
			at = e.procsDoneAt
		}
	}
	return at
}

// earliest returns the earliest cycle any shard would do work at given
// no further boundary traffic (boundaries already flushed).
func (g *Group) earliest() int64 {
	at := Never
	for _, e := range g.engines {
		if w := e.earliestEvent(); w < at {
			at = w
		}
	}
	return at
}

func (g *Group) stopAll() {
	for _, e := range g.engines {
		e.stopProcs()
	}
}

// flushAll publishes every boundary's window output, in deterministic
// engine/registration order, with all shards stopped.
func (g *Group) flushAll() {
	for _, e := range g.engines {
		for _, b := range e.boundaries {
			b.flush()
		}
	}
}

// deadlockAll merges per-shard blocked-proc reports into one group
// deadlock error. The reported cycle is the barrier the group quiesced
// at (window-quantized; a single-engine run pins the exact cycle).
func (g *Group) deadlockAll() error {
	var blocked []string
	for _, e := range g.engines {
		blocked = append(blocked, e.blockedProcs()...)
	}
	sort.Strings(blocked)
	return &DeadlockError{Cycle: g.base, Blocked: blocked}
}

// Run executes all shards to completion. Completion, deadlock, and
// cycle-limit decisions are made at barriers: a run completes when every
// proc of every shard has finished, deadlocks when no shard has any
// scheduled event and no boundary traffic is pending, and fails with
// ErrMaxCycles when the barrier clock reaches the limit first.
func (g *Group) Run() error {
	for _, e := range g.engines {
		e.startAll()
		if e.sched != SchedDense {
			// Seed the event heaps before the first earliest() query.
			e.ensureEventInit()
		}
	}
	for {
		if done, total := g.totals(); total > 0 && done == total {
			g.cycles = g.maxProcsDoneAt()
			return nil
		}
		if g.base >= g.maxCycles {
			g.cycles = g.maxCycles
			g.stopAll()
			return maxCyclesErr(g.maxCycles)
		}
		minE := g.earliest()
		if minE == Never {
			g.cycles = g.base
			err := g.deadlockAll()
			g.stopAll()
			return err
		}
		horizon := g.base + g.window
		if minE >= horizon {
			// Every shard is idle until minE: skip the empty span in one
			// hop instead of spinning barriers through it. No shard can
			// produce boundary traffic in a span it never executes, so
			// the jump preserves the lookahead invariant.
			to := minE
			if to > g.maxCycles {
				to = g.maxCycles
			}
			for _, e := range g.engines {
				e.jumpTo(to)
			}
			g.base = to
			g.maybeProgress()
			continue
		}
		if horizon > g.maxCycles {
			horizon = g.maxCycles
		}
		errs := make([]error, len(g.engines))
		if g.parallel && len(g.engines) > 1 {
			var wg sync.WaitGroup
			for i, e := range g.engines {
				wg.Add(1)
				go func(i int, e *Engine) {
					defer wg.Done()
					errs[i] = e.runWindow(horizon)
				}(i, e)
			}
			wg.Wait()
		} else {
			for i, e := range g.engines {
				errs[i] = e.runWindow(horizon)
			}
		}
		g.syncs++
		if err := g.firstError(errs); err != nil {
			g.stopAll()
			return err
		}
		g.flushAll()
		g.base = horizon
		g.maybeProgress()
	}
}

// firstError picks the error the serial (dense) run would have hit
// first: smallest failure cycle, ties broken by shard index (shards are
// ordered by rank, matching dense proc registration order).
func (g *Group) firstError(errs []error) error {
	best := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if best < 0 || g.engines[i].now < g.engines[best].now {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	g.cycles = g.engines[best].now
	return errs[best]
}
