package sim

// Conservative parallel simulation driver. A Group owns several engine
// shards that share no mutable state except Boundary queues, and runs
// them in one of two modes:
//
//   - Fixed window (SchedShard): every boundary imposes at least
//     `window` cycles of latency, so all shards advance through the
//     common window [t, t+window), synchronize once, exchange boundary
//     traffic, and repeat — cycle-for-cycle identical to a serial run.
//   - Adaptive lookahead (SchedShardAdaptive): each engine advances to
//     its own horizon, the minimum over its *incoming* boundaries of the
//     producer's lower-bound clock plus that boundary's latency. The
//     lower bounds come from a bounded null-message fixpoint (see
//     lowerBounds), so an engine whose neighbors are provably idle runs
//     far past the global minimum latency, and engines with nothing
//     scheduled jump their whole horizon in one hop.
//
// Determinism contract (see DESIGN.md "Shard scheduler"): shard-local
// execution is the unmodified engine loop; rounds flush boundaries in
// engine/registration order with all shards stopped; completion cycles
// are quoted from per-proc finish cycles (procsDoneAt), which makes the
// reported cycle count and every application-visible output invariant
// under the shard count and the scheduling mode. Effort counters
// (executed/skipped/ticks) and link tail traffic after the last proc
// finishes are quantized to the round structure and therefore compared
// at fixed shard counts only.
//
// Adaptive runs own engines through a worker pool with deterministic
// work stealing: ownership moves only at round boundaries, driven by
// simulation-derived effort counters (proc steps + kernel ticks), so a
// rebalance is cycle-invisible and identical across replays regardless
// of host scheduling.

import (
	"sort"
	"sync"
)

// Coordinator is a cluster-level control agent driven at group barriers
// instead of being ticked as a kernel (which would couple every engine
// through shared state). The group asks NextAction for the next cycle
// the coordinator may need to act at — no engine's clock passes it —
// and calls AtBarrier with all engines stopped at a common clock c+1,
// where the coordinator reproduces exactly what its dense-mode kernel
// tick at cycle c would have done. Quiescent reports whether the
// coordinator is inert when no engine has work (true means a globally
// idle group is a deadlock, not a pending repair).
type Coordinator interface {
	NextAction(base int64) int64
	AtBarrier(clock int64)
	Quiescent() bool
}

// Group runs a set of engine shards under barrier synchronization.
type Group struct {
	engines   []*Engine
	engIdx    map[*Engine]int
	window    int64 // min latency over crossing boundaries
	maxCycles int64
	parallel  bool // worker goroutines per window or serial
	adaptive  bool // per-engine horizons + work stealing
	workers   int  // worker slots (adaptive mode)

	co Coordinator

	base    int64 // barrier cycle (fixed) / min engine clock (adaptive)
	syncs   int64
	cycles  int64 // final quoted cycle count (set when Run returns)
	windows int64 // engine-window executions
	steals  int64 // ownership moves (adaptive)

	// adaptive per-engine state
	engErr   []error
	next     []int64 // earliestEvent per engine, per round
	lb       []int64 // null-message lower bounds
	horizon  []int64 // per-engine window end, exclusive
	runSet   []bool  // engines executing a real window this round
	engWins  []int64 // windows executed per engine
	owner    []int   // engine -> worker slot
	recent   []int64 // decayed recent work per engine (steal signal)
	lastWork []int64 // procSteps+kernelTicks snapshot per engine
	wSteals  []int64 // engines stolen into each worker slot
	wWins    []int64 // windows executed by each worker slot
	order    []int   // scratch: engine indices for LPT sort
	load     []int64 // scratch: per-worker load sums

	progressEvery int64
	progressFn    func(now int64)
	nextProgress  int64
}

// NewGroup assembles a fixed-window shard group. Call after every engine
// is fully built (kernels, FIFOs, boundaries): the lookahead window is
// derived from the smallest cross-engine boundary latency. parallel
// selects worker goroutines per window (SchedShard) versus serial shard
// execution (the exact comparator used by SchedDense/SchedEvent runs of
// a sharded cluster).
func NewGroup(engines []*Engine, maxCycles int64, parallel bool) *Group {
	g := &Group{engines: engines, maxCycles: maxCycles, parallel: parallel}
	g.engIdx = make(map[*Engine]int, len(engines))
	for i, e := range engines {
		g.engIdx[e] = i
	}
	g.window = maxCycles
	for _, e := range engines {
		for _, bf := range e.boundaries {
			if w := bf.Latency(); w < g.window {
				g.window = w
			}
		}
	}
	if g.window < 1 {
		g.window = 1
	}
	g.engWins = make([]int64, len(engines))
	return g
}

// NewAdaptiveGroup assembles an adaptive-lookahead group: one engine per
// rank, owned by `workers` worker slots with deterministic stealing.
// workers <= 1 runs rounds serially (still with per-engine horizons).
func NewAdaptiveGroup(engines []*Engine, maxCycles int64, workers int) *Group {
	g := NewGroup(engines, maxCycles, workers > 1)
	g.adaptive = true
	if workers < 1 {
		workers = 1
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	g.workers = workers
	n := len(engines)
	g.engErr = make([]error, n)
	g.next = make([]int64, n)
	g.lb = make([]int64, n)
	g.horizon = make([]int64, n)
	g.runSet = make([]bool, n)
	g.owner = make([]int, n)
	g.recent = make([]int64, n)
	g.lastWork = make([]int64, n)
	g.wSteals = make([]int64, workers)
	g.wWins = make([]int64, workers)
	g.order = make([]int, n)
	g.load = make([]int64, workers)
	// Initial placement: contiguous rank ranges, like the fixed sharding.
	for i := range g.owner {
		g.owner[i] = i * workers / n
	}
	return g
}

// SetCoordinator installs the barrier-time control agent (the reliable
// cluster's failover manager). Must be called before Run.
func (g *Group) SetCoordinator(co Coordinator) { g.co = co }

// Window returns the lookahead window in cycles (fixed mode; the floor
// of per-engine horizons in adaptive mode).
func (g *Group) Window() int64 { return g.window }

// Syncs returns the number of barrier synchronizations performed.
func (g *Group) Syncs() int64 { return g.syncs }

// Steals returns the number of engine-ownership moves the deterministic
// rebalancer performed (adaptive mode).
func (g *Group) Steals() int64 { return g.steals }

// Cycles returns the run's quoted cycle count: the completion cycle of
// the slowest proc on clean runs (invariant under the shard count), or
// the cycle the run stopped at on error.
func (g *Group) Cycles() int64 { return g.cycles }

// SetProgress installs a progress observer fired at barriers whenever
// the group clock reaches or crosses a multiple of `every` cycles —
// purely observational, like Engine.SetProgress.
func (g *Group) SetProgress(every int64, fn func(now int64)) {
	if every <= 0 || fn == nil {
		g.progressEvery, g.progressFn = 0, nil
		return
	}
	g.progressEvery, g.progressFn = every, fn
	g.nextProgress = every
}

func (g *Group) maybeProgress() {
	if g.progressFn == nil || g.base < g.nextProgress {
		return
	}
	g.progressFn(g.base)
	g.nextProgress = g.base - g.base%g.progressEvery + g.progressEvery
}

// SchedStats aggregates scheduler effort over the shards. kind is the
// cluster-level scheduling mode the stats are reported under. Fixed
// groups report one row per engine shard; adaptive groups report one
// row per worker slot, aggregating the engines it owned at the end.
func (g *Group) SchedStats(kind SchedulerKind) SchedStats {
	st := SchedStats{
		Scheduler: kind.String(),
		Cycles:    g.cycles,
		Shards:    len(g.engines),
		Syncs:     g.syncs,
		Windows:   g.windows,
		Steals:    g.steals,
	}
	for _, e := range g.engines {
		st.CyclesExecuted += e.executed
		st.CyclesSkipped += e.skipped
		st.ProcSteps += e.procSteps
		st.KernelTicks += e.kernelTicks
		st.FifoCommits += e.fifoCommits
	}
	if g.adaptive {
		st.Shards = g.workers
		rows := make([]ShardEffort, g.workers)
		for w := range rows {
			rows[w] = ShardEffort{Shard: w, Syncs: g.syncs, Windows: g.wWins[w], Steals: g.wSteals[w]}
		}
		for i, e := range g.engines {
			r := &rows[g.owner[i]]
			r.Procs += len(e.procs)
			r.CyclesExecuted += e.executed
			r.CyclesSkipped += e.skipped
			r.ProcSteps += e.procSteps
			r.KernelTicks += e.kernelTicks
			r.FifoCommits += e.fifoCommits
		}
		st.PerShard = rows
		return st
	}
	for i, e := range g.engines {
		st.PerShard = append(st.PerShard, ShardEffort{
			Shard:          i,
			Procs:          len(e.procs),
			CyclesExecuted: e.executed,
			CyclesSkipped:  e.skipped,
			ProcSteps:      e.procSteps,
			KernelTicks:    e.kernelTicks,
			FifoCommits:    e.fifoCommits,
			Syncs:          g.syncs,
			Windows:        g.engWins[i],
		})
	}
	return st
}

func (g *Group) totals() (done, total int) {
	for _, e := range g.engines {
		done += e.finished
		total += len(e.procs)
	}
	return done, total
}

func (g *Group) maxProcsDoneAt() int64 {
	var at int64
	for _, e := range g.engines {
		if e.procsDoneAt > at {
			at = e.procsDoneAt
		}
	}
	return at
}

// earliest returns the earliest cycle any shard would do work at given
// no further boundary traffic (boundaries already flushed).
func (g *Group) earliest() int64 {
	at := Never
	for _, e := range g.engines {
		if w := e.earliestEvent(); w < at {
			at = w
		}
	}
	return at
}

func (g *Group) minNow() int64 {
	at := Never
	for _, e := range g.engines {
		if e.now < at {
			at = e.now
		}
	}
	return at
}

func (g *Group) stopAll() {
	for _, e := range g.engines {
		e.stopProcs()
	}
}

// flushAll publishes every boundary's window output, in deterministic
// engine/registration order, with all shards stopped.
func (g *Group) flushAll() {
	for _, e := range g.engines {
		for _, b := range e.boundaries {
			b.flush()
		}
	}
}

// capAt returns the exclusive clock bound imposed by the coordinator:
// no engine may advance past it before the coordinator acted at it.
func (g *Group) capAt(base int64) int64 {
	if g.co == nil {
		return Never
	}
	c := g.co.NextAction(base)
	if c <= base {
		c = base + 1
	}
	return c
}

func (g *Group) quiescentCo() bool {
	return g.co == nil || g.co.Quiescent()
}

// deadlockAll merges per-shard blocked-proc reports into one group
// deadlock error. The reported cycle is the barrier the group quiesced
// at (round-quantized; a single-engine run pins the exact cycle).
func (g *Group) deadlockAll(cycle int64) error {
	var blocked []string
	for _, e := range g.engines {
		blocked = append(blocked, e.blockedProcs()...)
	}
	sort.Strings(blocked)
	return &DeadlockError{Cycle: cycle, Blocked: blocked}
}

// Run executes all shards to completion. Completion, deadlock, and
// cycle-limit decisions are made at barriers: a run completes when every
// proc of every shard has finished, deadlocks when no shard has any
// scheduled event, no boundary traffic is pending, and the coordinator
// is quiescent, and fails with ErrMaxCycles when the group clock reaches
// the limit first.
func (g *Group) Run() error {
	for _, e := range g.engines {
		e.startAll()
		if e.sched != SchedDense {
			// Seed the event heaps before the first earliest() query.
			e.ensureEventInit()
		}
	}
	if g.adaptive {
		return g.runAdaptive()
	}
	return g.runFixed()
}

// runFixed is the common-window driver (SchedShard and the serial
// comparator for dense/event sharded runs).
func (g *Group) runFixed() error {
	for {
		if done, total := g.totals(); total > 0 && done == total {
			g.cycles = g.maxProcsDoneAt()
			return nil
		}
		if g.base >= g.maxCycles {
			g.cycles = g.maxCycles
			g.stopAll()
			return maxCyclesErr(g.maxCycles)
		}
		coCap := g.capAt(g.base)
		minE := g.earliest()
		if minE == Never && g.quiescentCo() {
			g.cycles = g.base
			err := g.deadlockAll(g.base)
			g.stopAll()
			return err
		}
		horizon := g.base + g.window
		if horizon > coCap {
			horizon = coCap
		}
		if horizon > g.maxCycles {
			horizon = g.maxCycles
		}
		if minE >= horizon {
			// Every shard is idle until minE: skip the empty span in one
			// hop instead of spinning barriers through it. No shard can
			// produce boundary traffic in a span it never executes, so
			// the jump preserves the lookahead invariant. The jump stops
			// at the coordinator's next action cycle: what happens there
			// may reschedule everything.
			to := minE
			if to > coCap {
				to = coCap
			}
			if to > g.maxCycles {
				to = g.maxCycles
			}
			for _, e := range g.engines {
				e.jumpTo(to)
			}
			g.base = to
			g.atBarrier()
			g.maybeProgress()
			continue
		}
		errs := make([]error, len(g.engines))
		if g.parallel && len(g.engines) > 1 {
			var wg sync.WaitGroup
			for i, e := range g.engines {
				wg.Add(1)
				go func(i int, e *Engine) {
					defer wg.Done()
					errs[i] = e.runWindow(horizon)
				}(i, e)
			}
			wg.Wait()
		} else {
			for i, e := range g.engines {
				errs[i] = e.runWindow(horizon)
			}
		}
		g.syncs++
		g.windows += int64(len(g.engines))
		for i := range g.engines {
			g.engWins[i]++
		}
		if err := g.firstError(errs); err != nil {
			g.stopAll()
			return err
		}
		g.flushAll()
		g.base = horizon
		g.atBarrier()
		g.maybeProgress()
	}
}

// atBarrier hands the stopped group to the coordinator. With every
// engine at clock c+1 the coordinator reproduces its dense kernel tick
// at cycle c; in fixed mode all engines share g.base, in adaptive mode
// the caller guarantees the clocks have converged. Engines are placed in
// phaseBarrier for the duration so coordinator-issued WakeKernel calls
// land this cycle — the cycle the stopped engines have not executed yet
// — exactly when a dense-mode kernel running before them would be
// observed.
func (g *Group) atBarrier() {
	if g.co == nil {
		return
	}
	for _, e := range g.engines {
		e.phase = phaseBarrier
	}
	g.co.AtBarrier(g.base)
	for _, e := range g.engines {
		e.phase = phaseIdle
	}
}

// firstError picks the error the serial (dense) run would have hit
// first: smallest failure cycle, ties broken by shard index (shards are
// ordered by rank, matching dense proc registration order).
func (g *Group) firstError(errs []error) error {
	best := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if best < 0 || g.engines[i].now < g.engines[best].now {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	g.cycles = g.engines[best].now
	return errs[best]
}

// satAdd is a+b saturating at Never.
func satAdd(a, b int64) int64 {
	if a >= Never-b {
		return Never
	}
	return a + b
}

// lbPasses bounds the null-message fixpoint: each pass lets one more hop
// of provable idleness propagate, lengthening horizons at O(edges) cost.
const lbPasses = 4

// adaptiveChunk bounds a round's span in units of the minimum boundary
// latency, keeping termination checks, coordinator caps, and steal
// rebalances flowing even when the bounds would allow huge windows.
const adaptiveChunk = 16

// lowerBounds computes, per engine, a conservative lower bound on the
// next cycle the engine could perform any work, folding in idleness of
// upstream producers (a bounded Gauss-Seidel iteration of the classic
// null-message recurrence lb[e] = max(now, min(next[e],
// min_in(lb[src]+lat)))). Starting from lb = now and applying the
// monotone recurrence keeps every intermediate value a valid lower
// bound, so any pass count is safe; more passes only lengthen horizons.
func (g *Group) lowerBounds() {
	for i, e := range g.engines {
		if g.engErr[i] != nil {
			// A failed engine executes nothing further; its unflushed
			// output (produced before the failure) was already published.
			g.lb[i] = Never
			continue
		}
		g.lb[i] = e.now
	}
	for pass := 0; pass < lbPasses; pass++ {
		for i, e := range g.engines {
			if g.engErr[i] != nil {
				continue
			}
			bound := g.next[i]
			for _, inb := range e.inBoundaries {
				if b := satAdd(g.lb[g.engIdx[inb.srcEngine()]], inb.Latency()); b < bound {
					bound = b
				}
			}
			if bound < e.now {
				bound = e.now
			}
			g.lb[i] = bound
		}
	}
}

// horizons derives each engine's exclusive window end for this round:
// the per-boundary safe bound min over incoming edges of lb[src]+lat,
// clamped to the coordinator cap, the cycle limit, and the round chunk.
// The minimum-clock engine always receives a horizon at least one
// boundary latency ahead, so every round makes progress.
func (g *Group) horizons(coCap, chunk int64) {
	for i, e := range g.engines {
		if g.engErr[i] != nil {
			g.horizon[i] = e.now
			continue
		}
		h := Never
		for _, inb := range e.inBoundaries {
			if b := satAdd(g.lb[g.engIdx[inb.srcEngine()]], inb.Latency()); b < h {
				h = b
			}
		}
		if h > coCap {
			h = coCap
		}
		if h > g.maxCycles {
			h = g.maxCycles
		}
		if h > chunk {
			h = chunk
		}
		if h < e.now {
			h = e.now
		}
		g.horizon[i] = h
	}
}

// runAdaptive is the per-boundary adaptive-lookahead driver.
func (g *Group) runAdaptive() error {
	var failErr error
	failMin := Never
	for {
		g.base = g.minNow()
		if failErr == nil {
			if done, total := g.totals(); total > 0 && done == total {
				g.cycles = g.maxProcsDoneAt()
				return nil
			}
			if g.base >= g.maxCycles {
				g.cycles = g.maxCycles
				g.stopAll()
				return maxCyclesErr(g.maxCycles)
			}
		} else {
			// Error drain: run surviving engines up to the earliest
			// failure cycle so a failure on a behind-clock engine can
			// still claim precedence, exactly like the dense serial order.
			drained := true
			for i, e := range g.engines {
				if g.engErr[i] == nil && e.now < failMin {
					drained = false
					break
				}
			}
			if drained {
				c, err := g.earliestFailure()
				g.cycles = c
				g.stopAll()
				return err
			}
		}
		anyEvent := false
		for i, e := range g.engines {
			if g.engErr[i] != nil {
				g.next[i] = Never
				continue
			}
			g.next[i] = e.earliestEvent()
			if g.next[i] != Never {
				anyEvent = true
			}
		}
		if !anyEvent && failErr == nil && g.quiescentCo() {
			g.cycles = g.base
			err := g.deadlockAll(g.base)
			g.stopAll()
			return err
		}
		coCap := g.capAt(g.base)
		if failErr != nil && coCap > failMin {
			coCap = failMin
		}
		chunk := satAdd(g.base, adaptiveChunk*g.window)
		g.lowerBounds()
		g.horizons(coCap, chunk)

		// Partition: engines with no event before their horizon jump it
		// in one hop (they provably execute nothing in the span); the
		// rest run real windows on the worker pool. The run set is fixed
		// before dispatch so workers only touch their owned engines.
		ran := false
		for i, e := range g.engines {
			run := false
			if g.engErr[i] == nil && g.horizon[i] > e.now {
				if g.next[i] >= g.horizon[i] {
					e.jumpTo(g.horizon[i])
				} else {
					run = true
					ran = true
				}
			}
			g.runSet[i] = run
		}
		if ran {
			if g.parallel && g.workers > 1 {
				var wg sync.WaitGroup
				for w := 0; w < g.workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i, e := range g.engines {
							if g.runSet[i] && g.owner[i] == w {
								g.engErr[i] = e.runWindow(g.horizon[i])
							}
						}
					}(w)
				}
				wg.Wait()
			} else {
				for i, e := range g.engines {
					if g.runSet[i] {
						g.engErr[i] = e.runWindow(g.horizon[i])
					}
				}
			}
			for i := range g.engines {
				if g.runSet[i] {
					g.windows++
					g.wWins[g.owner[i]]++
				}
			}
		}
		g.syncs++
		if c, err := g.earliestFailure(); err != nil {
			if c < failMin {
				failMin = c
			}
			failErr = err
		}
		g.flushAll()
		g.base = g.minNow()
		if g.co != nil && g.base == coCap && g.liveConverged(coCap) {
			g.atBarrier()
		}
		g.rebalance()
		g.maybeProgress()
	}
}

// earliestFailure returns the smallest failure cycle among errored
// engines (ties by engine index, matching dense proc order).
func (g *Group) earliestFailure() (int64, error) {
	best := -1
	for i := range g.engines {
		if g.engErr[i] == nil {
			continue
		}
		if best < 0 || g.engines[i].now < g.engines[best].now {
			best = i
		}
	}
	if best < 0 {
		return Never, nil
	}
	return g.engines[best].now, g.engErr[best]
}

// liveConverged reports whether every non-failed engine's clock sits
// exactly at the given cycle — the adaptive-mode barrier condition for
// coordinator actions, which mutate cross-engine state and therefore
// need the same all-stopped common clock the fixed mode gets for free.
func (g *Group) liveConverged(at int64) bool {
	for i, e := range g.engines {
		if g.engErr[i] == nil && e.now != at {
			return false
		}
	}
	return true
}

// stealPeriod is the rebalance cadence in rounds.
const stealPeriod = 8

// rebalance runs the deterministic work-stealing rule: every
// stealPeriod rounds, if the busiest worker carries more than 4/3 the
// load of the idlest, engines are re-assigned greedily (longest
// processing time first) by decayed recent effort. The inputs are
// simulation-derived counters and the rule runs between rounds with all
// engines stopped, so placement is replay-stable and cycle-invisible.
func (g *Group) rebalance() {
	for i, e := range g.engines {
		cur := e.procSteps + e.kernelTicks
		g.recent[i] = g.recent[i]/2 + (cur - g.lastWork[i])
		g.lastWork[i] = cur
	}
	if g.workers <= 1 || g.syncs%stealPeriod != 0 {
		return
	}
	for w := range g.load {
		g.load[w] = 0
	}
	for i := range g.engines {
		g.load[g.owner[i]] += g.recent[i]
	}
	minL, maxL := g.load[0], g.load[0]
	for _, l := range g.load[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if maxL*3 <= minL*4 {
		return
	}
	for i := range g.order {
		g.order[i] = i
	}
	sort.SliceStable(g.order, func(a, b int) bool {
		ia, ib := g.order[a], g.order[b]
		if g.recent[ia] != g.recent[ib] {
			return g.recent[ia] > g.recent[ib]
		}
		return ia < ib
	})
	for w := range g.load {
		g.load[w] = 0
	}
	for _, i := range g.order {
		best := 0
		for w := 1; w < g.workers; w++ {
			if g.load[w] < g.load[best] {
				best = w
			}
		}
		g.load[best] += g.recent[i]
		if g.owner[i] != best {
			g.owner[i] = best
			g.steals++
			g.wSteals[best]++
		}
	}
}
