package sim

import "time"

// Clock converts cycle counts to wall-clock durations at a fixed
// frequency. The default SMI transport clock is 156.25 MHz: at 32 bytes
// per cycle this yields the 40 Gbit/s raw rate of one QSFP link.
type Clock struct {
	Hz float64
}

// DefaultClockHz is the frequency used throughout the reproduction
// unless overridden: 156.25 MHz.
const DefaultClockHz = 156.25e6

// Duration converts a cycle count to simulated time.
func (c Clock) Duration(cycles int64) time.Duration {
	if c.Hz <= 0 {
		c.Hz = DefaultClockHz
	}
	return time.Duration(float64(cycles) / c.Hz * 1e9)
}

// Seconds converts a cycle count to simulated seconds.
func (c Clock) Seconds(cycles int64) float64 {
	if c.Hz <= 0 {
		c.Hz = DefaultClockHz
	}
	return float64(cycles) / c.Hz
}

// Micros converts a cycle count to simulated microseconds.
func (c Clock) Micros(cycles int64) float64 { return c.Seconds(cycles) * 1e6 }

// Cycles converts a duration to the nearest whole cycle count.
func (c Clock) Cycles(d time.Duration) int64 {
	if c.Hz <= 0 {
		c.Hz = DefaultClockHz
	}
	return int64(d.Seconds()*c.Hz + 0.5)
}
