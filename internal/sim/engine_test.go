package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyEngineRunsNoProcs(t *testing.T) {
	// An engine with no procs quiesces cleanly once nothing is
	// scheduled, instead of spinning to the cycle limit.
	for _, sched := range []SchedulerKind{SchedEvent, SchedDense} {
		e := NewEngine()
		e.SetScheduler(sched)
		e.SetMaxCycles(10)
		if err := e.Run(); err != nil {
			t.Fatalf("%v: expected clean quiescence, got %v", sched, err)
		}
	}
}

func TestKernelOnlyQuiescence(t *testing.T) {
	// A kernel-only engine (zero procs) terminates once its kernels go
	// idle with no scheduled wake, in both scheduling modes.
	for _, sched := range []SchedulerKind{SchedEvent, SchedDense} {
		e := NewEngine()
		e.SetScheduler(sched)
		e.SetMaxCycles(1_000_000)
		f := NewFifo[int](e, "sink", 32)
		k := &countingKernel{budget: 25, f: f}
		e.AddKernel(k)
		if err := e.Run(); err != nil {
			t.Fatalf("%v: expected clean quiescence, got %v", sched, err)
		}
		if k.ticks < 25 {
			t.Fatalf("%v: kernel should tick through its budget, got %d", sched, k.ticks)
		}
		if got := e.Now(); got > 30 {
			t.Fatalf("%v: run should end shortly after the kernel quiesces, ended at %d", sched, got)
		}
	}
}

func TestSingleProcTicks(t *testing.T) {
	e := NewEngine()
	var end int64
	NewProc(e, "ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Tick()
		}
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 10 {
		t.Fatalf("10 ticks should land on cycle 10, got %d", end)
	}
}

func TestSleepFastForward(t *testing.T) {
	// A multi-billion-cycle sleep must complete near-instantly: the
	// engine fast-forwards over fully idle spans instead of iterating.
	e := NewEngine()
	e.SetMaxCycles(5_000_000_000)
	var woke int64
	NewProc(e, "sleeper", func(p *Proc) {
		p.Sleep(4_000_000_000)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 4_000_000_000 {
		t.Fatalf("expected wake at cycle 4e9, got %d", woke)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	e := NewEngine()
	NewProc(e, "p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("non-positive sleeps must not consume cycles, at %d", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFifoRegisteredVisibility(t *testing.T) {
	e := NewEngine()
	f := NewFifo[int](e, "f", 4)
	var sawAt int64
	NewProc(e, "writer", func(p *Proc) {
		f.PushProc(p, 42) // pushed at cycle 0
	})
	NewProc(e, "reader", func(p *Proc) {
		v := f.PopProc(p)
		if v != 42 {
			t.Errorf("got %d, want 42", v)
		}
		sawAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Write commits at end of cycle 0; reader can pop at cycle 1 at the
	// earliest (pop consumes that cycle, finishing at 2).
	if sawAt < 2 {
		t.Fatalf("registered write visible too early: reader finished at %d", sawAt)
	}
}

func TestFifoOrderPreserved(t *testing.T) {
	const n = 500
	e := NewEngine()
	f := NewFifo[int](e, "f", 3)
	NewProc(e, "writer", func(p *Proc) {
		for i := 0; i < n; i++ {
			f.PushProc(p, i)
		}
	})
	var got []int
	NewProc(e, "reader", func(p *Proc) {
		for i := 0; i < n; i++ {
			got = append(got, f.PopProc(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated at %d: got %d", i, v)
		}
	}
}

func TestFifoBackpressure(t *testing.T) {
	// A capacity-2 FIFO with a slow reader must throttle the writer.
	e := NewEngine()
	f := NewFifo[int](e, "f", 2)
	var writerDone int64
	NewProc(e, "writer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			f.PushProc(p, i)
		}
		writerDone = p.Now()
	})
	NewProc(e, "reader", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(9) // 1 pop per 10 cycles
			f.PopProc(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if writerDone < 70 {
		t.Fatalf("writer finished at %d; backpressure should slow it to reader rate", writerDone)
	}
}

func TestFifoThroughputIIOne(t *testing.T) {
	// With a deep FIFO and matched producer/consumer, one element moves
	// per cycle: 1000 elements must take roughly 1000 cycles.
	const n = 1000
	e := NewEngine()
	f := NewFifo[int](e, "f", 64)
	NewProc(e, "writer", func(p *Proc) {
		for i := 0; i < n; i++ {
			f.PushProc(p, i)
		}
	})
	var done int64
	NewProc(e, "reader", func(p *Proc) {
		for i := 0; i < n; i++ {
			f.PopProc(p)
		}
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done > n+10 {
		t.Fatalf("pipeline not II=1: %d elements took %d cycles", n, done)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	a := NewFifo[int](e, "a", 1)
	b := NewFifo[int](e, "b", 1)
	// Two procs each waiting for the other to send first.
	NewProc(e, "p0", func(p *Proc) {
		a.PopProc(p)
		b.PushProc(p, 1)
	})
	NewProc(e, "p1", func(p *Proc) {
		b.PopProc(p)
		a.PushProc(p, 1)
	})
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("expected 2 blocked procs, got %v", dl.Blocked)
	}
	if !strings.Contains(err.Error(), "waiting on") {
		t.Fatalf("diagnostic should describe blocked ops: %v", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	NewProc(e, "bad", func(p *Proc) {
		p.Tick()
		panic("boom")
	})
	NewProc(e, "idle", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Tick()
		}
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected propagated panic, got %v", err)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	e := NewEngine()
	e.SetMaxCycles(50)
	NewProc(e, "forever", func(p *Proc) {
		for {
			p.Tick()
		}
	})
	if err := e.Run(); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("expected ErrMaxCycles, got %v", err)
	}
}

type countingKernel struct {
	ticks  int64
	budget int64
	f      *Fifo[int]
}

func (k *countingKernel) Name() string { return "counter" }
func (k *countingKernel) Tick(now int64) bool {
	if k.ticks >= k.budget {
		return false
	}
	if k.f.TryPush(int(k.ticks)) {
		k.ticks++
	}
	return true
}

func TestKernelAndProcInterleave(t *testing.T) {
	e := NewEngine()
	f := NewFifo[int](e, "f", 4)
	k := &countingKernel{budget: 100, f: f}
	e.AddKernel(k)
	var got []int
	NewProc(e, "reader", func(p *Proc) {
		for i := 0; i < 100; i++ {
			got = append(got, f.PopProc(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("kernel stream out of order at %d: %d", i, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		e := NewEngine()
		f1 := NewFifo[int](e, "f1", 3)
		f2 := NewFifo[int](e, "f2", 3)
		NewProc(e, "a", func(p *Proc) {
			for i := 0; i < 200; i++ {
				f1.PushProc(p, i)
			}
		})
		NewProc(e, "b", func(p *Proc) {
			for i := 0; i < 200; i++ {
				f2.PushProc(p, f1.PopProc(p)*2)
			}
		})
		var end int64
		NewProc(e, "c", func(p *Proc) {
			for i := 0; i < 200; i++ {
				f2.PopProc(p)
			}
			end = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic completion: run %d gave %d, first gave %d", i, got, first)
		}
	}
}

func TestFifoTryOps(t *testing.T) {
	e := NewEngine()
	f := NewFifo[string](e, "f", 2)
	if _, ok := f.TryPop(); ok {
		t.Fatal("pop from empty FIFO should fail")
	}
	if !f.TryPush("a") || !f.TryPush("b") {
		t.Fatal("pushes within capacity should succeed")
	}
	if f.TryPush("c") {
		t.Fatal("push beyond capacity should fail")
	}
	if _, ok := f.TryPop(); ok {
		t.Fatal("uncommitted writes must not be visible")
	}
	f.commit()
	v, ok := f.TryPop()
	if !ok || v != "a" {
		t.Fatalf("got %q/%v, want a/true", v, ok)
	}
	if got, _ := f.Peek(); got != "b" {
		t.Fatalf("peek got %q, want b", got)
	}
	if f.Len() != 1 {
		t.Fatalf("len=%d, want 1", f.Len())
	}
}

// Property: for any sequence of elements and any FIFO capacity, a
// writer/reader pair preserves content and order exactly.
func TestFifoPreservesSequenceQuick(t *testing.T) {
	prop := func(data []uint32, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		e := NewEngine()
		f := NewFifo[uint32](e, "f", capacity)
		NewProc(e, "w", func(p *Proc) {
			for _, v := range data {
				f.PushProc(p, v)
			}
		})
		got := make([]uint32, 0, len(data))
		NewProc(e, "r", func(p *Proc) {
			for range data {
				got = append(got, f.PopProc(p))
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClockConversions(t *testing.T) {
	c := Clock{Hz: DefaultClockHz}
	if got := c.Micros(15625); got < 99.9 || got > 100.1 {
		t.Fatalf("15625 cycles at 156.25MHz should be 100us, got %g", got)
	}
	if got := c.Cycles(c.Duration(12345)); got != 12345 {
		t.Fatalf("cycle->duration->cycle roundtrip: got %d", got)
	}
	var zero Clock // zero value defaults to 156.25 MHz
	if zero.Seconds(int64(DefaultClockHz)) != 1.0 {
		t.Fatal("zero-value clock should default to DefaultClockHz")
	}
}

func TestPopProcPairedCostsNoCycle(t *testing.T) {
	e := NewEngine()
	f := NewFifo[int](e, "f", 8)
	NewProc(e, "writer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			f.PushProc(p, i)
		}
	})
	var popped int
	var cycles int64
	NewProc(e, "reader", func(p *Proc) {
		// Wait until data is buffered, then paired pops are free.
		p.Sleep(20)
		start := p.Now()
		for i := 0; i < 8; i++ {
			if v := f.PopProcPaired(p); v != i {
				t.Errorf("pop %d = %d", i, v)
			}
			popped++
		}
		cycles = p.Now() - start
		// Drain the rest normally so the writer finishes.
		f.PopProc(p)
		f.PopProc(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if popped != 8 || cycles != 0 {
		t.Fatalf("8 paired pops of buffered data took %d cycles, want 0", cycles)
	}
}

func TestPopProcPairedBlocksWhenEmpty(t *testing.T) {
	e := NewEngine()
	f := NewFifo[int](e, "f", 2)
	var at int64
	NewProc(e, "writer", func(p *Proc) {
		p.Sleep(100)
		f.PushProc(p, 7)
	})
	NewProc(e, "reader", func(p *Proc) {
		if v := f.PopProcPaired(p); v != 7 {
			t.Errorf("got %d", v)
		}
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 100 {
		t.Fatalf("paired pop returned before data existed (cycle %d)", at)
	}
}

func TestTraceDoesNotBreakRuns(t *testing.T) {
	e := NewEngine()
	var buf strings.Builder
	e.SetTrace(&buf)
	f := NewFifo[int](e, "f", 2)
	NewProc(e, "w", func(p *Proc) { f.PushProc(p, 1); e.Tracef("pushed %d", 1) })
	NewProc(e, "r", func(p *Proc) { f.PopProc(p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pushed 1") {
		t.Fatal("trace output missing")
	}
}

func TestFifoStats(t *testing.T) {
	e := NewEngine()
	f := NewFifo[int](e, "f", 4)
	NewProc(e, "w", func(p *Proc) {
		for i := 0; i < 6; i++ {
			f.PushProc(p, i)
		}
	})
	NewProc(e, "r", func(p *Proc) {
		p.Sleep(10)
		for i := 0; i < 6; i++ {
			f.PopProc(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Pushes() != 6 {
		t.Fatalf("pushes = %d", f.Pushes())
	}
	if f.MaxLen() < 3 || f.MaxLen() > 4 {
		t.Fatalf("high-water mark = %d", f.MaxLen())
	}
	if f.Cap() != 4 || f.Name() != "f" {
		t.Fatal("accessors broken")
	}
}
