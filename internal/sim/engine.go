// Package sim implements a deterministic cycle-driven simulator used to
// model multi-FPGA systems at clock-cycle granularity.
//
// The engine advances a single global clock. Three kinds of entities
// participate in every cycle, in a fixed, deterministic order:
//
//  1. Procs: cooperative processes backed by goroutines. A proc models a
//     pipelined HLS kernel written as straight-line code; every blocking
//     FIFO operation costs at least one clock cycle (initiation interval
//     of one).
//  2. Kernels: explicit state machines ticked once per cycle. These model
//     generated hardware such as the SMI transport layer.
//  3. FIFO commits: writes performed during a cycle become visible to
//     readers in the next cycle (registered output), mirroring the
//     semantics of Intel OpenCL channels.
//
// The engine detects global quiescence: if no entity makes progress and
// no future wake-up is scheduled while procs are still blocked, the run
// terminates with a deadlock error describing every blocked operation.
package sim

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kernel is a hardware state machine ticked once per clock cycle.
// Tick reports whether the kernel performed or is holding work; the
// engine uses this to detect quiescence and to fast-forward idle spans.
type Kernel interface {
	Name() string
	Tick(now int64) bool
}

// ErrMaxCycles is returned by Run when the cycle limit is exceeded.
var ErrMaxCycles = errors.New("sim: maximum cycle count exceeded")

// DeadlockError reports a global deadlock: all processes are blocked and
// no hardware activity can ever unblock them.
type DeadlockError struct {
	Cycle   int64
	Blocked []string // one human-readable line per blocked proc
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d: %s", e.Cycle, strings.Join(e.Blocked, "; "))
}

// Engine is a single-clock cycle-driven simulator. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now     int64
	procs   []*Proc
	kernels []Kernel
	fifos   []fifoRef

	maxCycles int64
	trace     io.Writer
	recorder  Recorder

	procState  []procStatus // last state reported to the recorder
	procSince  []int64
	kernActive []bool
	kernSince  []int64
	kernWasBuf []bool // scratch for per-cycle kernel activity

	started  bool
	finished int // number of finished procs

	// Event-driven scheduler state (see sched.go).
	sched      SchedulerKind
	phase      enginePhase
	curKernel  int32         // kernel index being ticked in phaseKernels
	pq         schedHeap     // proc wake heap: (wakeAt, proc index)
	kq         schedHeap     // kernel deadline heap: (wakeAt, kernel index)
	dueK       intHeap       // kernels due this cycle (index order)
	hotK       []int32       // sorted snapshot of every-cycle kernels
	isHot      []bool        // per-kernel hot membership
	hotDirty   bool          // hotK needs rebuilding from isHot
	kernParked []bool        // per-kernel parked flag
	kernWhen   []int64       // per-kernel live scheduled wake (or kernUnscheduled)
	kernIdle   []IdleUntiler // cached IdleUntiler, nil if not implemented
	dirtyFifos []int32       // FIFOs touched this cycle, by registration index

	// effort counters (see SchedStats)
	executed    int64
	skipped     int64
	procSteps   int64
	kernelTicks int64
	fifoCommits int64

	// Windowed (shard-group) state: a Group drives the engine one
	// lookahead window at a time instead of to completion (see shard.go).
	windowed     bool
	horizon      int64             // exclusive window end while windowed
	eventInit    bool              // runEvent seeding done
	procsDoneAt  int64             // max over finished procs of (finish cycle + 1)
	boundaries   []boundaryFlusher // outbound: flushed by the Group at barriers
	inBoundaries []boundaryInlet   // inbound: merged into earliestEvent
	// windowIdleUntil is the loop's own quiescence estimate, maintained
	// every executed cycle: now+1 after an active cycle, the phase-4
	// fast-forward target (pre horizon clamp) after an inactive one, and
	// Never when nothing is scheduled at all. It is what the engine knows
	// about its own future at a window boundary — hot kernels and
	// due-this-cycle work included, which the wake heaps alone are not.
	windowIdleUntil int64

	// progress observer (see SetProgress)
	progressEvery int64
	progressFn    func(now int64)
	nextProgress  int64
}

// Recorder receives activity intervals for offline visualization (see
// internal/vistrace for a Chrome trace-event implementation). Intervals
// are reported as they close; Done closes any still-open intervals.
type Recorder interface {
	// ProcInterval reports that proc name was in the given state
	// ("run", "blocked", "sleep") during [start, end) cycles.
	ProcInterval(name, state string, start, end int64)
	// KernelInterval reports that kernel name was active during
	// [start, end) cycles.
	KernelInterval(name string, start, end int64)
	// Done marks the end of the simulation.
	Done(now int64)
}

type fifoRef struct {
	commit func() bool // returns true if any writes were committed
	core   *fifoCore
}

// NewEngine returns an engine with a default cycle limit of one billion
// cycles (several seconds of simulated time at typical FPGA clocks).
func NewEngine() *Engine {
	return &Engine{maxCycles: 1_000_000_000, sched: SchedEvent}
}

// SetMaxCycles bounds the simulation; Run returns ErrMaxCycles beyond it.
func (e *Engine) SetMaxCycles(n int64) { e.maxCycles = n }

// SetTrace directs a per-event text trace to w. Tracing is expensive and
// intended for tests and debugging; pass nil to disable.
func (e *Engine) SetTrace(w io.Writer) { e.trace = w }

// SetRecorder attaches an activity recorder (see Recorder). Recording
// costs a scan over procs and kernels per simulated cycle.
func (e *Engine) SetRecorder(r Recorder) { e.recorder = r }

// SetProgress installs a progress observer: fn is called at most once
// per executed cycle, whenever the clock reaches or crosses a multiple
// of `every` cycles (fast-forwarded spans fire at the first executed
// cycle past the boundary). The callback is purely observational — it
// runs between cycles and must not touch simulation state — so it never
// perturbs cycle counts under either scheduler.
func (e *Engine) SetProgress(every int64, fn func(now int64)) {
	if every <= 0 || fn == nil {
		e.progressEvery, e.progressFn = 0, nil
		return
	}
	e.progressEvery, e.progressFn = every, fn
	e.nextProgress = every
}

// maybeProgress fires the progress observer if the clock has reached
// the next reporting boundary.
func (e *Engine) maybeProgress() {
	if e.progressFn == nil || e.now < e.nextProgress {
		return
	}
	e.progressFn(e.now)
	e.nextProgress = e.now - e.now%e.progressEvery + e.progressEvery
}

// stateName maps a proc status to its recorder label.
func stateName(s procStatus) string {
	switch s {
	case procRunnable:
		return "run"
	case procBlocked:
		return "blocked"
	case procSleeping:
		return "sleep"
	default:
		return "done"
	}
}

// record samples proc and kernel states at the end of a cycle, closing
// intervals on transitions.
func (e *Engine) record(kernelWasActive []bool) {
	if e.procState == nil {
		e.procState = make([]procStatus, len(e.procs))
		e.procSince = make([]int64, len(e.procs))
		for i, p := range e.procs {
			e.procState[i] = p.status
		}
		e.kernActive = make([]bool, len(e.kernels))
		e.kernSince = make([]int64, len(e.kernels))
	}
	for i, p := range e.procs {
		if p.status != e.procState[i] {
			e.recorder.ProcInterval(p.name, stateName(e.procState[i]), e.procSince[i], e.now)
			e.procState[i] = p.status
			e.procSince[i] = e.now
		}
	}
	for i, k := range e.kernels {
		if kernelWasActive[i] != e.kernActive[i] {
			if e.kernActive[i] {
				e.recorder.KernelInterval(k.Name(), e.kernSince[i], e.now)
			}
			e.kernActive[i] = kernelWasActive[i]
			e.kernSince[i] = e.now
		}
	}
}

// finishRecording closes open intervals at simulation end.
func (e *Engine) finishRecording() {
	if e.recorder == nil || e.procState == nil {
		return
	}
	for i, p := range e.procs {
		if e.procSince[i] < e.now {
			e.recorder.ProcInterval(p.name, stateName(e.procState[i]), e.procSince[i], e.now)
		}
	}
	for i, k := range e.kernels {
		if e.kernActive[i] && e.kernSince[i] < e.now {
			e.recorder.KernelInterval(k.Name(), e.kernSince[i], e.now)
		}
	}
	e.recorder.Done(e.now)
}

// Now returns the current cycle number.
func (e *Engine) Now() int64 { return e.now }

// AddKernel registers a state-machine kernel and returns its ID. Kernels
// tick in registration order, after procs run and before FIFO writes
// commit. The ID is used to attach wake sources (Fifo.WakesKernel) and
// for explicit wakes (Engine.WakeKernel).
func (e *Engine) AddKernel(k Kernel) KernelID {
	if e.started {
		panic("sim: AddKernel after Run")
	}
	id := KernelID(len(e.kernels))
	e.kernels = append(e.kernels, k)
	iu, _ := k.(IdleUntiler)
	e.kernIdle = append(e.kernIdle, iu)
	e.isHot = append(e.isHot, false)
	e.kernParked = append(e.kernParked, false)
	e.kernWhen = append(e.kernWhen, kernUnscheduled)
	return id
}

// Tracef writes a trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...any) {
	if e.trace != nil {
		fmt.Fprintf(e.trace, "[%8d] ", e.now)
		fmt.Fprintf(e.trace, format, args...)
		fmt.Fprintln(e.trace)
	}
}

// maxCyclesErr wraps ErrMaxCycles with the configured limit.
func maxCyclesErr(limit int64) error {
	return fmt.Errorf("%w (limit %d)", ErrMaxCycles, limit)
}

// Run executes the simulation until every proc has finished, the engine
// quiesces with nothing scheduled, a deadlock is detected, a proc fails,
// or the cycle limit is reached. It returns the first error encountered,
// or nil on clean completion. The scheduling mode (SetScheduler) changes
// only wall-clock cost, never simulated behavior.
func (e *Engine) Run() error {
	e.started = true
	for _, p := range e.procs {
		p.start()
	}
	defer e.finishRecording()
	if e.sched == SchedDense {
		return e.runDense()
	}
	// SchedShard on a lone engine is the event scheduler; the
	// parallelism lives in the Group driver (shard.go).
	return e.runEvent()
}

// runDense is the reference scheduler: every proc, kernel, and FIFO is
// visited on every executed cycle. It is kept as the baseline that the
// event scheduler must match cycle for cycle.
func (e *Engine) runDense() error {
	for {
		if e.windowed {
			if e.now >= e.horizon {
				return nil
			}
		} else {
			if e.finished == len(e.procs) && len(e.procs) > 0 {
				return e.drain()
			}
			if e.now >= e.maxCycles {
				e.stopProcs()
				return maxCyclesErr(e.maxCycles)
			}
			e.maybeProgress()
		}
		e.executed++
		active := false

		// Phase 1: run every runnable proc once. A blocked proc whose
		// wait deadline has arrived is woken with WaitTimeout — the
		// dense mirror of the event scheduler's deadline heap entry.
		e.phase = phaseProcs
		for _, p := range e.procs {
			switch p.status {
			case procSleeping:
				if p.wakeAt > e.now {
					continue
				}
				p.status = procRunnable
			case procRunnable:
				if p.runAt > e.now {
					continue
				}
			case procBlocked:
				if p.deadline > e.now {
					continue
				}
				p.cancelWait(WaitTimeout)
				p.status = procRunnable
			default:
				continue
			}
			active = true
			if err := e.step(p); err != nil {
				e.stopProcs()
				return err
			}
		}

		// Phase 2: tick hardware kernels.
		e.phase = phaseKernels
		var kernelWas []bool
		if e.recorder != nil {
			if cap(e.kernWasBuf) < len(e.kernels) {
				e.kernWasBuf = make([]bool, len(e.kernels))
			}
			kernelWas = e.kernWasBuf[:len(e.kernels)]
		}
		for i, k := range e.kernels {
			e.curKernel = int32(i)
			did := k.Tick(e.now)
			e.kernelTicks++
			if did {
				active = true
			}
			if kernelWas != nil {
				kernelWas[i] = did
			}
		}
		e.curKernel = int32(len(e.kernels))

		// Phase 3: commit registered FIFO writes, then wake waiters.
		e.phase = phaseCommit
		for _, f := range e.fifos {
			if f.commit() {
				active = true
				e.fifoCommits++
			}
		}
		for _, f := range e.fifos {
			f.core.wake(e)
		}
		if e.recorder != nil {
			e.record(kernelWas)
		}

		// Phase 4: termination and fast-forward.
		e.phase = phaseIdle
		e.windowIdleUntil = e.now + 1
		if !active {
			next, sleeping := e.nextWake()
			if kd, ok := e.denseKernelDeadline(); ok && (!sleeping || kd < next) {
				next, sleeping = kd, true
			}
			if sleeping {
				e.windowIdleUntil = next
			} else {
				e.windowIdleUntil = Never
			}
			if e.windowed && (!sleeping || next > e.horizon) {
				// Quiescent through the window boundary; resume decisions
				// belong to the group.
				next, sleeping = e.horizon, true
			}
			switch {
			case sleeping:
				// Idle span: jump straight to the next scheduled wake-up.
				if next > e.now+1 {
					e.skipped += next - e.now - 1
					e.now = next
					continue
				}
			case e.finished < len(e.procs):
				err := e.deadlock()
				e.stopProcs()
				return err
			default:
				// Kernel-only (or empty) quiescence: nothing scheduled,
				// no proc waiting — a clean end.
				return e.drain()
			}
		}
		e.now++
	}
}

// denseKernelDeadline returns the earliest scheduled wake among idle
// kernels that declare one. Called only on globally inactive cycles, so
// every kernel's Tick returned false this cycle and IdleUntil is valid
// to query.
func (e *Engine) denseKernelDeadline() (int64, bool) {
	at, ok := Never, false
	for _, iu := range e.kernIdle {
		if iu == nil {
			continue
		}
		w := iu.IdleUntil(e.now)
		if w <= e.now || w >= Never {
			continue
		}
		if w < at {
			at = w
		}
		ok = true
	}
	return at, ok
}

// step resumes proc p and waits for it to yield.
func (e *Engine) step(p *Proc) error {
	e.procSteps++
	p.resume <- struct{}{}
	<-p.yielded
	if p.status == procFinished {
		e.finished++
		// The cycle the dense scan would report if this were the last
		// proc: the finish cycle plus the final clock increment. The
		// shard group quotes max(procsDoneAt) as the run's cycle count so
		// completion cycles stay invariant across shard counts.
		if at := e.now + 1; at > e.procsDoneAt {
			e.procsDoneAt = at
		}
		if p.err != nil {
			return fmt.Errorf("sim: proc %s: %w", p.name, p.err)
		}
	}
	return nil
}

// nextWake returns the earliest future wake-up among sleeping and
// runnable procs, and the armed wait deadlines of blocked procs: a
// blocked proc with a deadline is not deadlocked — its timeout is a
// scheduled wake the fast-forward must not skip.
func (e *Engine) nextWake() (at int64, ok bool) {
	at = Never
	for _, p := range e.procs {
		switch p.status {
		case procSleeping:
			if p.wakeAt < at {
				at = p.wakeAt
			}
			ok = true
		case procRunnable:
			if p.runAt < at {
				at = p.runAt
			}
			ok = true
		case procBlocked:
			if p.deadline < Never {
				if p.deadline < at {
					at = p.deadline
				}
				ok = true
			}
		}
	}
	return at, ok
}

// CancelWaits aborts every proc currently blocked in a cancellable FIFO
// wait: each such wait returns WaitAborted on the next cycle, and the
// proc is removed from its FIFO's waiter list. Procs blocked in plain
// (non-cancellable) waits are untouched. Returns the number of waits
// cancelled. Safe to call from Kernel.Tick; the cancellation takes
// effect with the same timing under both schedulers.
func (e *Engine) CancelWaits() int {
	return e.CancelWaitsAt(e.now + 1)
}

// CancelWaitsAt is CancelWaits with an explicit resumption cycle. Group
// coordinators use it between windows: a dense-mode kernel cancelling at
// cycle c resumes procs at c+1, so a barrier-time coordinator running
// with every engine stopped at clock c+1 passes at = c+1 to reproduce
// the identical resumption timing.
func (e *Engine) CancelWaitsAt(at int64) int {
	n := 0
	for _, p := range e.procs {
		if p.status == procBlocked && p.cancellable {
			p.cancelWait(WaitAborted)
			p.status = procRunnable
			p.runAt = at
			e.scheduleProc(p, p.runAt)
			n++
		}
	}
	return n
}

// WakeKernelAt schedules a tick for a parked kernel at the given cycle
// (waking an unparked kernel is a no-op). Unlike WakeKernel it does not
// infer the cycle from the engine phase: it is meant for barrier-time
// callers — group coordinators and boundary flushes — that know exactly
// which cycle the dense scan would have the kernel observe their effect.
func (e *Engine) WakeKernelAt(id KernelID, at int64) {
	e.wakeKernelAt(id, at)
}

func (e *Engine) deadlock() error {
	var blocked []string
	for _, p := range e.procs {
		if p.status == procBlocked {
			blocked = append(blocked, fmt.Sprintf("%s waiting on %s", p.name, p.blockedOn))
		}
	}
	sort.Strings(blocked)
	return &DeadlockError{Cycle: e.now, Blocked: blocked}
}

// drain lets proc goroutines exit after completion.
func (e *Engine) drain() error { return nil }

// startAll starts every proc goroutine; the Group driver calls it once
// in place of Run's own startup.
func (e *Engine) startAll() {
	e.started = true
	for _, p := range e.procs {
		p.start()
	}
}

// runWindow advances the engine from its current cycle to exactly the
// given horizon (exclusive): on return e.now == horizon unless a proc
// failed. Conservative-parallel contract: the engine must receive no
// external input (boundary flushes, wakes from other engines) while a
// window is running.
func (e *Engine) runWindow(horizon int64) error {
	e.windowed = true
	e.horizon = horizon
	var err error
	if e.sched == SchedDense {
		err = e.runDense()
	} else {
		err = e.runEvent()
	}
	if err == nil && e.now < horizon {
		// A clean early return cannot happen (the loops only return at
		// the horizon), but keep the clock consistent defensively.
		e.now = horizon
	}
	return err
}

// earliestEvent returns the earliest cycle at which this engine would do
// work: its own loop's quiescence estimate (windowIdleUntil, which
// covers hot kernels and scheduled wakes alike) merged with inbound
// boundary arrivals the engine has not yet had a cycle to observe
// (readyAt >= now; older stuck heads need a local event first, which the
// estimate already covers). Never means the engine is quiescent until
// further boundary traffic. Called between windows only
// (single-threaded, boundaries flushed).
func (e *Engine) earliestEvent() int64 {
	next := e.windowIdleUntil
	for _, b := range e.inBoundaries {
		if r := b.NextReadyAt(); r >= e.now && r < next {
			next = r
		}
	}
	if next < e.now {
		next = e.now
	}
	if next >= Never {
		return Never
	}
	return next
}

// jumpTo fast-forwards an idle engine to cycle `at` without executing
// anything; the caller (the Group) guarantees nothing is scheduled
// before it.
func (e *Engine) jumpTo(at int64) {
	if at > e.now {
		e.skipped += at - e.now
		e.now = at
	}
}

// blockedProcs returns one human-readable line per blocked proc, for
// group-level deadlock reports.
func (e *Engine) blockedProcs() []string {
	var blocked []string
	for _, p := range e.procs {
		if p.status == procBlocked {
			blocked = append(blocked, fmt.Sprintf("%s waiting on %s", p.name, p.blockedOn))
		}
	}
	return blocked
}

// stopProcs terminates any still-running proc goroutines so they do not
// leak after an error.
func (e *Engine) stopProcs() {
	for _, p := range e.procs {
		if p.status != procFinished {
			p.kill()
		}
	}
}
