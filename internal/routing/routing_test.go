package routing

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func mustTorus(t *testing.T, r, c int) *topology.Topology {
	t.Helper()
	topo, err := topology.Torus2D(r, c)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func mustBus(t *testing.T, n int) *topology.Topology {
	t.Helper()
	topo, err := topology.Bus(n)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// allPairsReachable checks the paper's guarantee: "a rank is reachable
// from all others, even if there is no physical direct connection
// between them".
func allPairsReachable(t *testing.T, r *Routes) {
	t.Helper()
	for s := 0; s < r.Devices; s++ {
		for d := 0; d < r.Devices; d++ {
			if s == d {
				if r.At(s, d) != Local {
					t.Fatalf("At(%d,%d) should be Local", s, d)
				}
				continue
			}
			if p := r.Path(s, d); p == nil {
				t.Fatalf("no route %d -> %d", s, d)
			}
		}
	}
}

func TestShortestPathBusDistances(t *testing.T) {
	r, err := Compute(mustBus(t, 8), ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	allPairsReachable(t, r)
	// On a bus, hop count equals index distance: the experiment of
	// Fig 9/Table 3 places ranks at 1, 4, and 7 hops this way.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			want := d - s
			if want < 0 {
				want = -want
			}
			if s == d {
				continue
			}
			if got := r.Hops(s, d); got != want {
				t.Fatalf("bus hops %d->%d = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestShortestPathTorusOptimal(t *testing.T) {
	topo := mustTorus(t, 2, 4)
	r, err := Compute(topo, ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	allPairsReachable(t, r)
	// In a 2x4 torus the diameter is 1 (vertical) + 2 (horizontal) = 3.
	maxHops := 0
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d && r.Hops(s, d) > maxHops {
				maxHops = r.Hops(s, d)
			}
		}
	}
	if maxHops != 3 {
		t.Fatalf("2x4 torus diameter via shortest paths = %d, want 3", maxHops)
	}
}

func TestUpDownReachabilityAndLegality(t *testing.T) {
	for _, topo := range []*topology.Topology{
		mustTorus(t, 2, 4), mustTorus(t, 3, 3), mustBus(t, 8),
	} {
		r, err := Compute(topo, UpDown)
		if err != nil {
			t.Fatal(err)
		}
		allPairsReachable(t, r)
		if err := VerifyDeadlockFree(r); err != nil {
			t.Fatalf("%s: up*/down* routes must be deadlock-free: %v", topo.Name, err)
		}
	}
}

func TestUpDownPathsAreUpThenDown(t *testing.T) {
	topo := mustTorus(t, 3, 4)
	r, err := Compute(topo, UpDown)
	if err != nil {
		t.Fatal(err)
	}
	adj := topo.Adjacent()
	level := bfsDistances(adj, 0)
	higher := func(a, b int) bool { // a strictly higher than b
		if level[a] != level[b] {
			return level[a] < level[b]
		}
		return a < b
	}
	for s := 0; s < topo.Devices; s++ {
		for d := 0; d < topo.Devices; d++ {
			if s == d {
				continue
			}
			p := r.Path(s, d)
			wentDown := false
			for i := 0; i+1 < len(p); i++ {
				up := higher(p[i+1], p[i])
				if up && wentDown {
					t.Fatalf("path %v from %d to %d goes up after down", p, s, d)
				}
				if !up {
					wentDown = true
				}
			}
		}
	}
}

func TestBusShortestPathDeadlockFree(t *testing.T) {
	// Acyclic topologies are trivially deadlock-free even under plain
	// shortest-path routing.
	r, _ := Compute(mustBus(t, 8), ShortestPath)
	if err := VerifyDeadlockFree(r); err != nil {
		t.Fatal(err)
	}
}

func TestRingShortestPathHasCycle(t *testing.T) {
	// On a unidirectionally-routed ring, shortest paths wrap around and
	// create the classic channel-dependency cycle.
	topo, err := topology.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := Compute(topo, ShortestPath)
	err = VerifyDeadlockFree(r)
	if err == nil {
		t.Skip("this ring's shortest paths happened to be acyclic (tie-breaking)")
	}
	if _, ok := err.(*CycleError); !ok {
		t.Fatalf("expected CycleError, got %T: %v", err, err)
	}
}

func TestUpDownDilationBounded(t *testing.T) {
	// up*/down* paths can exceed shortest paths but must stay within the
	// tree-height bound: <= 2 * eccentricity of the root.
	topo := mustTorus(t, 2, 4)
	sp, _ := Compute(topo, ShortestPath)
	ud, _ := Compute(topo, UpDown)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			if ud.Hops(s, d) < sp.Hops(s, d) {
				t.Fatalf("up*/down* shorter than shortest path %d->%d", s, d)
			}
			if ud.Hops(s, d) > 6 {
				t.Fatalf("up*/down* path %d->%d dilated to %d hops", s, d, ud.Hops(s, d))
			}
		}
	}
}

func TestRoutesJSONRoundtrip(t *testing.T) {
	topo := mustTorus(t, 2, 4)
	r, _ := Compute(topo, UpDown)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf, topo)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 8; d++ {
		for dst := 0; dst < 8; dst++ {
			if got.At(d, dst) != r.At(d, dst) {
				t.Fatalf("table differs at [%d][%d]", d, dst)
			}
		}
	}
	// Mismatched topology must be rejected.
	other := mustBus(t, 4)
	buf.Reset()
	_ = r.WriteJSON(&buf)
	if _, err := ReadJSON(&buf, other); err == nil {
		t.Fatal("tables for the wrong topology should be rejected")
	}
}

func TestComputeRejectsInvalidTopology(t *testing.T) {
	bad := &topology.Topology{Devices: -1}
	if _, err := Compute(bad, ShortestPath); err == nil {
		t.Fatal("invalid topology should be rejected")
	}
}

// Property: on random tori and buses, both policies route all pairs, and
// up*/down* is always deadlock-free.
func TestRoutingPropertiesQuick(t *testing.T) {
	prop := func(rRaw, cRaw uint8, busRaw uint8, policyRaw bool) bool {
		var topo *topology.Topology
		var err error
		if busRaw%2 == 0 {
			topo, err = topology.Torus2D(int(rRaw%4)+2, int(cRaw%4)+2)
		} else {
			topo, err = topology.Bus(int(busRaw%14) + 2)
		}
		if err != nil {
			return false
		}
		policy := ShortestPath
		if policyRaw {
			policy = UpDown
		}
		r, err := Compute(topo, policy)
		if err != nil {
			return false
		}
		for s := 0; s < topo.Devices; s++ {
			for d := 0; d < topo.Devices; d++ {
				if s != d && r.Path(s, d) == nil {
					return false
				}
			}
		}
		if policy == UpDown && VerifyDeadlockFree(r) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHypercubeRouting(t *testing.T) {
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Compute(topo, ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	// Hypercube shortest-path distance is the Hamming distance.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			want := 0
			for x := s ^ d; x != 0; x >>= 1 {
				want += x & 1
			}
			if got := sp.Hops(s, d); got != want {
				t.Fatalf("hops %d->%d = %d, want Hamming %d", s, d, got, want)
			}
		}
	}
	ud, err := Compute(topo, UpDown)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDeadlockFree(ud); err != nil {
		t.Fatal(err)
	}
	allPairsReachable(t, ud)
}
