package routing

import (
	"fmt"
	"strings"
)

// channel identifies a directed use of a cable: device dev transmitting
// on its local interface iface.
type channel struct {
	dev, iface int
}

func (c channel) String() string { return fmt.Sprintf("%d:%d", c.dev, c.iface) }

// CycleError reports a channel-dependency cycle: a set of directed links
// that can all be waiting for buffer space in each other, i.e. a
// potential routing deadlock.
type CycleError struct {
	Cycle []string // directed channels forming the cycle
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("routing: channel dependency cycle: %s", strings.Join(e.Cycle, " -> "))
}

// VerifyDeadlockFree builds the channel dependency graph induced by the
// routes — for every source/destination pair, each consecutive pair of
// links on the path adds a dependency edge — and searches it for cycles.
// A nil return proves the route set cannot deadlock under wormhole/
// credit-based flow control; a CycleError pinpoints one offending cycle.
func VerifyDeadlockFree(r *Routes) error {
	adj := r.topo.Adjacent()
	// Dependency edges between directed channels.
	deps := make(map[channel]map[channel]bool)
	addDep := func(a, b channel) {
		m := deps[a]
		if m == nil {
			m = make(map[channel]bool)
			deps[a] = m
		}
		m[b] = true
	}
	for src := 0; src < r.Devices; src++ {
		for dst := 0; dst < r.Devices; dst++ {
			if src == dst {
				continue
			}
			dev := src
			var prev *channel
			for dev != dst {
				i := r.Next[dev][dst]
				if i == Unreachable {
					break
				}
				cur := channel{dev, i}
				if prev != nil {
					addDep(*prev, cur)
				}
				prevv := cur
				prev = &prevv
				dev = adj[dev][i].Device
			}
		}
	}

	// Iterative DFS cycle detection with deterministic ordering.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[channel]int)
	var chans []channel
	for d := 0; d < r.Devices; d++ {
		for i := 0; i < r.Ifaces; i++ {
			c := channel{d, i}
			if deps[c] != nil {
				chans = append(chans, c)
			}
		}
	}
	// Sorted successor lists for determinism.
	succ := func(c channel) []channel {
		var out []channel
		for d := 0; d < r.Devices; d++ {
			for i := 0; i < r.Ifaces; i++ {
				n := channel{d, i}
				if deps[c][n] {
					out = append(out, n)
				}
			}
		}
		return out
	}

	var stack []channel
	var dfs func(c channel) *CycleError
	dfs = func(c channel) *CycleError {
		color[c] = gray
		stack = append(stack, c)
		for _, n := range succ(c) {
			switch color[n] {
			case white:
				if err := dfs(n); err != nil {
					return err
				}
			case gray:
				// Extract the cycle from the stack.
				var cyc []string
				start := 0
				for i, s := range stack {
					if s == n {
						start = i
						break
					}
				}
				for _, s := range stack[start:] {
					cyc = append(cyc, s.String())
				}
				cyc = append(cyc, n.String())
				return &CycleError{Cycle: cyc}
			}
		}
		stack = stack[:len(stack)-1]
		color[c] = black
		return nil
	}
	for _, c := range chans {
		if color[c] == white {
			stack = stack[:0]
			if err := dfs(c); err != nil {
				return err
			}
		}
	}
	return nil
}
