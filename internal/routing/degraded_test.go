package routing

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/topology"
)

// degradedTopologies yields every single-cable removal of the given
// topology — the exact inputs the failover controller feeds the route
// generator after a permanent link death.
func degradedTopologies(t *testing.T, base *topology.Topology) []*topology.Topology {
	t.Helper()
	out := make([]*topology.Topology, 0, len(base.Connections))
	for _, conn := range base.Connections {
		d := base.Without(conn)
		if len(d.Connections) != len(base.Connections)-1 {
			t.Fatalf("Without removed %d cables", len(base.Connections)-len(d.Connections))
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("degraded topology invalid: %v", err)
		}
		out = append(out, d)
	}
	return out
}

// TestUpDownSurvivesAnySingleCableLoss: removing any one cable from a
// 2D torus or a hypercube must still yield full reachability and a
// provably deadlock-free up*/down* route set.
func TestUpDownSurvivesAnySingleCableLoss(t *testing.T) {
	bases := map[string]*topology.Topology{}
	if topo, err := topology.Torus2D(2, 4); err == nil {
		bases["torus2x4"] = topo
	} else {
		t.Fatal(err)
	}
	if topo, err := topology.Torus2D(4, 4); err == nil {
		bases["torus4x4"] = topo
	} else {
		t.Fatal(err)
	}
	if topo, err := topology.Hypercube(3); err == nil {
		bases["hypercube3"] = topo
	} else {
		t.Fatal(err)
	}

	for name, base := range bases {
		name, base := name, base
		t.Run(name, func(t *testing.T) {
			for i, d := range degradedTopologies(t, base) {
				if !d.Connected() {
					t.Fatalf("cable %d: single removal disconnected the topology", i)
				}
				r, err := Compute(d, UpDown)
				if err != nil {
					t.Fatalf("cable %d: %v", i, err)
				}
				if err := VerifyDeadlockFree(r); err != nil {
					t.Fatalf("cable %d: degraded up*/down* routes not deadlock-free: %v", i, err)
				}
				for src := 0; src < d.Devices; src++ {
					for dst := 0; dst < d.Devices; dst++ {
						if src == dst {
							continue
						}
						if r.Hops(src, dst) < 0 {
							t.Fatalf("cable %d: no route %d->%d on a connected topology", i, src, dst)
						}
					}
				}
			}
		})
	}
}

// TestDegradedRoutesDeterministic: the tie-breaking of the route
// generator must make repeated computations on the same degraded wiring
// identical — a failover replayed from the same fault spec must produce
// the same tables.
func TestDegradedRoutesDeterministic(t *testing.T) {
	base, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range degradedTopologies(t, base) {
		a, err := Compute(d, UpDown)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compute(d, UpDown)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Next, b.Next) {
			t.Fatalf("cable %d: two computations of the same degraded topology differ", i)
		}
	}
}

// TestCopyFromSwapsTables: CopyFrom must make the destination
// indistinguishable from the source (the in-place "table upload" the
// failover controller performs through the shared pointer).
func TestCopyFromSwapsTables(t *testing.T) {
	base, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Compute(base, UpDown)
	if err != nil {
		t.Fatal(err)
	}
	degraded := base.Without(base.Connections[0])
	repl, err := Compute(degraded, UpDown)
	if err != nil {
		t.Fatal(err)
	}
	orig.CopyFrom(repl)
	if !reflect.DeepEqual(orig.Next, repl.Next) {
		t.Fatal("CopyFrom did not copy the tables")
	}
	// Deep copy: mutating the source afterwards must not leak through.
	repl.Next[0][1] = 99
	if orig.Next[0][1] == 99 {
		t.Fatal("CopyFrom aliased the source rows")
	}
	for src := 0; src < degraded.Devices; src++ {
		for dst := 0; dst < degraded.Devices; dst++ {
			if src != dst && orig.Hops(src, dst) < 0 {
				t.Fatalf("post-swap routes lost %d->%d", src, dst)
			}
		}
	}
	_ = fmt.Sprintf("%v", orig.Policy) // exercise the stringer on the copied policy
}
