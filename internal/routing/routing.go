// Package routing computes static routing tables for an FPGA cluster.
//
// This is the reproduction's route generator (paper §4.3 and Fig 8): it
// consumes the interconnect topology and produces, for every device, the
// exit interface to use for every destination rank. Tables are computed
// offline and "uploaded" to the transport layer at cluster start; the
// program itself never needs recompiling when the topology changes.
//
// Two policies are provided:
//
//   - ShortestPath: breadth-first shortest paths with deterministic
//     tie-breaking. Minimal hop counts, but on cyclic topologies (tori,
//     rings) the resulting channel dependency graph may contain cycles,
//     i.e. the routes are not provably deadlock-free.
//   - UpDown: up*/down* routing over a breadth-first spanning tree. Paths
//     may be longer, but the channel dependency graph is provably
//     acyclic, following the deadlock-free oblivious routing approach the
//     paper adopts from Domke et al.
//
// VerifyDeadlockFree checks any route set by building the channel
// dependency graph and searching for cycles.
package routing

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/topology"
)

// Policy selects a route computation algorithm.
type Policy uint8

const (
	// ShortestPath is plain BFS shortest-path routing.
	ShortestPath Policy = iota
	// UpDown is deadlock-free up*/down* routing.
	UpDown
)

func (p Policy) String() string {
	switch p {
	case ShortestPath:
		return "shortest-path"
	case UpDown:
		return "up*/down*"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Local marks "destination is this device" in a routing table.
const Local = -1

// Unreachable marks a destination with no route.
const Unreachable = -2

// Routes holds per-device forwarding tables: Next[dev][dst] is the local
// interface on which device dev forwards packets destined to rank dst
// (or Local / Unreachable).
type Routes struct {
	Policy  Policy  `json:"policy"`
	Devices int     `json:"devices"`
	Ifaces  int     `json:"ifaces"`
	Next    [][]int `json:"next"`

	topo *topology.Topology
}

// Compute derives routing tables for the topology under the policy.
func Compute(t *topology.Topology, p Policy) (*Routes, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	r := &Routes{
		Policy:  p,
		Devices: t.Devices,
		Ifaces:  t.Ifaces,
		Next:    make([][]int, t.Devices),
		topo:    t,
	}
	for d := range r.Next {
		r.Next[d] = make([]int, t.Devices)
	}
	switch p {
	case ShortestPath:
		r.computeShortest()
	case UpDown:
		r.computeUpDown()
	default:
		return nil, fmt.Errorf("routing: unknown policy %v", p)
	}
	return r, nil
}

// computeShortest fills tables with BFS shortest paths. Ties are broken
// by the smallest local interface index, which makes the result
// deterministic and independent of map iteration order.
func (r *Routes) computeShortest() {
	adj := r.topo.Adjacent()
	for dst := 0; dst < r.Devices; dst++ {
		dist := bfsDistances(adj, dst)
		for dev := 0; dev < r.Devices; dev++ {
			switch {
			case dev == dst:
				r.Next[dev][dst] = Local
			case dist[dev] < 0:
				r.Next[dev][dst] = Unreachable
			default:
				r.Next[dev][dst] = Unreachable
				for i, e := range adj[dev] {
					if e.Device >= 0 && dist[e.Device] == dist[dev]-1 {
						r.Next[dev][dst] = i
						break
					}
				}
			}
		}
	}
}

// bfsDistances returns hop counts from every device to dst (-1 if
// unreachable).
func bfsDistances(adj [][]topology.Endpoint, dst int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		for _, e := range adj[d] {
			if e.Device >= 0 && dist[e.Device] < 0 {
				dist[e.Device] = dist[d] + 1
				queue = append(queue, e.Device)
			}
		}
	}
	return dist
}

// computeUpDown fills tables with up*/down* routes. Devices are ordered
// by (BFS level from device 0, device id); a directed link is "up" when
// it moves strictly earlier in that order. A legal path crosses zero or
// more up links followed by zero or more down links, which provably
// breaks all channel-dependency cycles.
func (r *Routes) computeUpDown() {
	adj := r.topo.Adjacent()
	level := bfsDistances(adj, 0)
	// less reports whether device a is "higher" (closer to the root).
	less := func(a, b int) bool {
		if level[a] != level[b] {
			return level[a] < level[b]
		}
		return a < b
	}

	// For every destination, BFS backwards over legal paths. State is
	// (device, phase) where phase 0 = still allowed to go up, phase 1 =
	// already went down. Searching from the destination along reversed
	// edges: a forward path up...down reversed becomes up...down again
	// (reversing flips each edge's direction and the sequence order), so
	// the same state machine applies.
	for dst := 0; dst < r.Devices; dst++ {
		type state struct{ dev, phase int }
		dist0 := make([]int, r.Devices) // phase 0: reverse path so far is all "down" forward
		dist1 := make([]int, r.Devices)
		for i := range dist0 {
			dist0[i], dist1[i] = -1, -1
		}
		// nextHop[dev][phase] = iface to take at dev (forward direction).
		next := make([][2]int, r.Devices)
		for i := range next {
			next[i] = [2]int{Unreachable, Unreachable}
		}
		dist0[dst] = 0
		dist1[dst] = 0
		queue := []state{{dst, 0}}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			var d int
			if s.phase == 0 {
				d = dist0[s.dev]
			} else {
				d = dist1[s.dev]
			}
			for _, e := range adj[s.dev] {
				if e.Device < 0 {
					continue
				}
				// Forward edge: e.Device --(iface e.Iface)--> s.dev.
				up := less(s.dev, e.Device) // forward edge goes up
				// Reverse BFS: from dst outward. Phase 0 means every
				// forward edge appended so far is a "down" edge (the
				// tail of the path); once we add an "up" forward edge we
				// are in the "up prefix" (phase 1) and may only add more
				// up edges.
				var nphase int
				if s.phase == 0 {
					if up {
						nphase = 1
					} else {
						nphase = 0
					}
				} else {
					if !up {
						continue // down edge before the up prefix ends: illegal
					}
					nphase = 1
				}
				var dp *int
				if nphase == 0 {
					dp = &dist0[e.Device]
				} else {
					dp = &dist1[e.Device]
				}
				if *dp >= 0 {
					continue
				}
				*dp = d + 1
				next[e.Device][nphase] = e.Iface
				queue = append(queue, state{e.Device, nphase})
			}
		}
		for dev := 0; dev < r.Devices; dev++ {
			if dev == dst {
				r.Next[dev][dst] = Local
				continue
			}
			// Forwarding is memoryless (tables key on destination only),
			// so the choice must be self-consistent under hop-by-hop
			// following: whenever a pure down path exists, take it; only
			// climb when no down path exists. Once any device switches
			// to the down phase, every subsequent device also has a pure
			// down path (the suffix) and keeps descending, so greedy
			// concatenation always yields a legal up*-then-down* path.
			d0, d1 := dist0[dev], dist1[dev]
			switch {
			case d0 >= 0:
				r.Next[dev][dst] = next[dev][0]
			case d1 >= 0:
				r.Next[dev][dst] = next[dev][1]
			default:
				r.Next[dev][dst] = Unreachable
			}
		}
	}
}

// At returns the exit interface at device dev for destination dst.
func (r *Routes) At(dev, dst int) int { return r.Next[dev][dst] }

// Key returns a canonical identifier of the routing problem: the exact
// wiring of the topology plus the policy. Two topologies with identical
// device/interface counts and identical connection lists (in order)
// produce the same key; any difference in wiring or policy produces a
// different key. The key is an exact description, not a hash, so
// distinct problems can never collide — which is what makes it safe as
// a cache key for computed routing tables (internal/service reuses
// verified tables across jobs keyed by this string).
func Key(t *topology.Topology, p Policy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1;policy=%d;devices=%d;ifaces=%d;", p, t.Devices, t.Ifaces)
	for _, c := range t.Connections {
		fmt.Fprintf(&b, "%d:%d-%d:%d;", c.A.Device, c.A.Iface, c.B.Device, c.B.Iface)
	}
	return b.String()
}

// Clone returns a deep copy of the route set. Clusters mutate their
// Routes in place during failover (CopyFrom), so any cached or shared
// tables must be cloned before being handed to a cluster.
func (r *Routes) Clone() *Routes {
	out := &Routes{}
	out.CopyFrom(r)
	return out
}

// Equal reports whether two route sets carry bit-identical forwarding
// tables under the same policy and dimensions.
func (r *Routes) Equal(o *Routes) bool {
	if r.Policy != o.Policy || r.Devices != o.Devices || r.Ifaces != o.Ifaces || len(r.Next) != len(o.Next) {
		return false
	}
	for d := range r.Next {
		if len(r.Next[d]) != len(o.Next[d]) {
			return false
		}
		for dst := range r.Next[d] {
			if r.Next[d][dst] != o.Next[d][dst] {
				return false
			}
		}
	}
	return true
}

// CopyFrom overwrites this route set in place with o's tables, policy,
// and topology. The transport layer holds a pointer to its Routes, so an
// in-place copy is how the fault manager atomically "uploads" the
// regenerated tables to every device between cycles after a permanent
// link failure (the paper's host-side table upload of §4.3, without a
// bitstream rebuild).
func (r *Routes) CopyFrom(o *Routes) {
	r.Policy = o.Policy
	r.Devices = o.Devices
	r.Ifaces = o.Ifaces
	r.topo = o.topo
	r.Next = make([][]int, len(o.Next))
	for d := range o.Next {
		r.Next[d] = append([]int(nil), o.Next[d]...)
	}
}

// Path returns the device sequence from src to dst, inclusive, or nil if
// unreachable.
func (r *Routes) Path(src, dst int) []int {
	adj := r.topo.Adjacent()
	path := []int{src}
	dev := src
	for dev != dst {
		i := r.Next[dev][dst]
		if i < 0 {
			return nil
		}
		dev = adj[dev][i].Device
		path = append(path, dev)
		if len(path) > r.Devices*r.Devices+1 {
			return nil // routing loop
		}
	}
	return path
}

// Hops returns the number of link traversals from src to dst, or -1 if
// unreachable.
func (r *Routes) Hops(src, dst int) int {
	p := r.Path(src, dst)
	if p == nil {
		return -1
	}
	return len(p) - 1
}

// WriteJSON serializes the routing tables (the artifact cmd/routegen
// produces and the host program "uploads" to each device).
func (r *Routes) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses routing tables written by WriteJSON. The topology is
// required to restore path reconstruction.
func ReadJSON(rd io.Reader, t *topology.Topology) (*Routes, error) {
	var r Routes
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("routing: parsing JSON: %w", err)
	}
	if r.Devices != t.Devices || r.Ifaces != t.Ifaces {
		return nil, fmt.Errorf("routing: tables are for %d devices/%d ifaces, topology has %d/%d",
			r.Devices, r.Ifaces, t.Devices, t.Ifaces)
	}
	r.topo = t
	return &r, nil
}
