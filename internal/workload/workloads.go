package workload

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"

	"repro/internal/apps"
	"repro/internal/packet"
	"repro/internal/transport"
)

// digest accumulates an FNV-64a hash over a workload's observable
// outputs. Little-endian fixed-width encodings keep it platform-stable.
type digest struct{ h hash.Hash64 }

func newDigest() *digest { return &digest{h: fnv.New64a()} }

func (d *digest) i64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	d.h.Write(b[:])
}

func (d *digest) f32(v float32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
	d.h.Write(b[:])
}

func (d *digest) grid(g [][]float32) {
	d.i64(int64(len(g)))
	for _, row := range g {
		for _, v := range row {
			d.f32(v)
		}
	}
}

func (d *digest) hex() string { return fmt.Sprintf("%016x", d.h.Sum64()) }

// netConfig translates Params into the shared microbenchmark config.
func netConfig(p Params) (apps.NetConfig, error) {
	topo := p.Topology
	if topo == nil {
		var err error
		if topo, err = DefaultTopology(p.Ranks); err != nil {
			return apps.NetConfig{}, err
		}
	}
	tc := transport.DefaultConfig()
	var err error
	if tc.Kind, err = transport.Parse(p.Transport); err != nil {
		return apps.NetConfig{}, fmt.Errorf("workload: %v", err)
	}
	if tc.Arbiter, err = transport.ParseArbiter(p.Arbiter); err != nil {
		return apps.NetConfig{}, fmt.Errorf("workload: %v", err)
	}
	return apps.NetConfig{
		Topology:      topo,
		Transport:     tc,
		RoutingPolicy: p.RoutingPolicy,
		Routes:        p.Routes,
		Faults:        p.Faults,
		Scheduler:     p.Scheduler,
		Shards:        p.Shards,
		MaxCycles:     p.MaxCycles,
		Progress:      p.Progress,
		ProgressEvery: p.ProgressEvery,
	}, nil
}

// ValidateModeKnobs type-checks the transfer-mode knobs against a
// workload. smid's admission path and Run share it, so a malformed
// combination is rejected identically whether it arrives over HTTP or
// through the Go API.
func ValidateModeKnobs(w Workload, p Params) error {
	if p.Mode == "" && p.BufferElems == 0 && p.StreamBatch == 0 {
		return nil
	}
	if !w.SupportsModes {
		return fmt.Errorf("workload: %s does not accept transfer-mode knobs (mode, buffer_elems, stream_batch)", w.Name)
	}
	mode, err := apps.ParseTransferMode(p.Mode)
	if err != nil {
		return fmt.Errorf("workload: %v", err)
	}
	if p.BufferElems < 0 {
		return fmt.Errorf("workload: negative buffer_elems %d", p.BufferElems)
	}
	if p.StreamBatch < 0 || p.StreamBatch > packet.MaxStreamWords {
		return fmt.Errorf("workload: stream_batch %d outside [0, %d]", p.StreamBatch, packet.MaxStreamWords)
	}
	if p.StreamBatch != 0 && mode != apps.ModeStreaming {
		return fmt.Errorf("workload: stream_batch is only valid with mode \"streaming\", got mode %q", p.Mode)
	}
	return nil
}

// ValidateTransportKnobs type-checks the transport selection against a
// workload. Like ValidateModeKnobs it is shared between smid's
// admission path and Run, so a bad combination is rejected identically
// over HTTP and through the Go API. The arbiter knob is accepted by
// every workload (it only reorders CK polling); a non-default transport
// is rejected unless the workload declares SupportsTransport, because a
// workload that ignores the knob would silently measure the wrong
// machinery — the exact fallback the transport ablation exists to rule
// out.
func ValidateTransportKnobs(w Workload, p Params) error {
	kind, err := transport.Parse(p.Transport)
	if err != nil {
		return fmt.Errorf("workload: %v", err)
	}
	if _, err := transport.ParseArbiter(p.Arbiter); err != nil {
		return fmt.Errorf("workload: %v", err)
	}
	if kind != transport.SenderDrivenKind && !w.SupportsTransport {
		return fmt.Errorf("workload: %s does not accept a transport selection (got %q)", w.Name, p.Transport)
	}
	return nil
}

// result fills the normalized fields shared by every workload.
func result(name string, p Params, size, steps int, cycles int64, micros float64) Result {
	return Result{
		Workload: name, Ranks: p.Ranks, Size: size, Steps: steps,
		Cycles: cycles, Micros: micros, Metrics: map[string]float64{},
	}
}

func init() {
	Register(Workload{
		Name:              "bandwidth",
		Description:       "stream Size int32 elements from rank 0 to the last rank (§5.3.1); mode selects packet, credited, circuit, or streaming transfer",
		MinRanks:          2,
		DefaultSize:       16384,
		SupportsFaults:    true,
		SupportsRoutes:    true,
		SupportsModes:     true,
		SupportsTransport: true,
		Run: func(p Params) (Result, error) {
			cfg, err := netConfig(p)
			if err != nil {
				return Result{}, err
			}
			if cfg.Mode, err = apps.ParseTransferMode(p.Mode); err != nil {
				return Result{}, fmt.Errorf("workload: %v", err)
			}
			cfg.BufferElems, cfg.StreamBatch = p.BufferElems, p.StreamBatch
			elems := p.Size
			res, err := apps.Bandwidth(cfg, 0, p.Ranks-1, elems)
			if err != nil {
				return Result{}, err
			}
			out := result("bandwidth", p, elems, 0, res.Cycles, res.Micros)
			out.Stats = res.Net
			out.Metrics["gbps"] = res.Gbps
			out.Metrics["hops"] = float64(res.Hops)
			if cfg.Mode == apps.ModeStreaming {
				out.Metrics["stream_fragments"] = float64(res.Net.StreamFragments)
			}
			d := newDigest()
			d.i64(res.Bytes)
			d.i64(res.Cycles)
			d.i64(int64(res.Net.PacketsDelivered))
			out.OutputDigest = d.hex()
			return out, nil
		},
	})

	Register(Workload{
		Name:           "pingpong",
		Description:    "bounce a one-element message between rank 0 and the last rank for Size rounds (§5.3.2)",
		MinRanks:       2,
		DefaultSize:    64,
		SupportsFaults: true,
		SupportsRoutes: true,
		Run: func(p Params) (Result, error) {
			cfg, err := netConfig(p)
			if err != nil {
				return Result{}, err
			}
			rounds := p.Size
			res, err := apps.PingPong(cfg, 0, p.Ranks-1, rounds)
			if err != nil {
				return Result{}, err
			}
			out := result("pingpong", p, rounds, 0, res.Cycles, 0)
			out.Metrics["latency_us"] = res.LatencyUs
			out.Metrics["hops"] = float64(res.Hops)
			d := newDigest()
			d.i64(int64(res.Rounds))
			d.i64(res.Cycles)
			out.OutputDigest = d.hex()
			return out, nil
		},
	})

	Register(Workload{
		Name:              "bcast",
		Description:       "broadcast Size float32 elements from rank 0 to every rank (Fig 10)",
		MinRanks:          2,
		DefaultSize:       4096,
		SupportsFaults:    true,
		SupportsRoutes:    true,
		SupportsTransport: true,
		Run: func(p Params) (Result, error) {
			cfg, err := netConfig(p)
			if err != nil {
				return Result{}, err
			}
			res, err := apps.BcastTime(cfg, p.Ranks, p.Size)
			if err != nil {
				return Result{}, err
			}
			out := result("bcast", p, p.Size, 0, res.Cycles, res.Micros)
			out.Stats = res.Net
			d := newDigest()
			d.i64(int64(res.Elems))
			d.i64(res.Cycles)
			d.i64(int64(res.Net.PacketsDelivered))
			out.OutputDigest = d.hex()
			return out, nil
		},
	})

	Register(Workload{
		Name:           "reduce",
		Description:    "sum-reduce Size float32 elements from every rank to rank 0 (Fig 11)",
		MinRanks:       2,
		DefaultSize:    2048,
		SupportsFaults: true,
		SupportsRoutes: true,
		Run: func(p Params) (Result, error) {
			cfg, err := netConfig(p)
			if err != nil {
				return Result{}, err
			}
			res, err := apps.ReduceTime(cfg, p.Ranks, p.Size, 0)
			if err != nil {
				return Result{}, err
			}
			out := result("reduce", p, p.Size, 0, res.Cycles, res.Micros)
			d := newDigest()
			d.i64(int64(res.Elems))
			d.i64(res.Cycles)
			out.OutputDigest = d.hex()
			return out, nil
		},
	})

	Register(Workload{
		Name:           "stencil",
		Description:    "4-point stencil over a Size × Size grid for Steps timesteps, ranks in a near-square grid (§5.4.2)",
		MinRanks:       1,
		DefaultSteps:   4,
		SupportsFaults: true,
		SupportsRoutes: true,
		Run: func(p Params) (Result, error) {
			rows, cols := Grid(p.Ranks)
			n := p.Size
			if n == 0 {
				n = 8 * cols
				if n%rows != 0 {
					n = 8 * rows * cols
				}
			}
			steps := p.Steps
			if steps == 0 {
				steps = 4
			}
			res, err := apps.Stencil(apps.StencilConfig{
				N: n, Timesteps: steps, RanksX: rows, RanksY: cols,
				Verify:        p.Verify,
				Topology:      p.Topology,
				RoutingPolicy: p.RoutingPolicy,
				Routes:        p.Routes,
				Faults:        p.Faults,
				Scheduler:     p.Scheduler,
				Shards:        p.Shards,
				MaxCycles:     p.MaxCycles,
				Progress:      p.Progress,
				ProgressEvery: p.ProgressEvery,
			})
			if err != nil {
				return Result{}, err
			}
			out := result("stencil", p, n, steps, res.Cycles, res.Micros)
			out.Stats = res.Net
			out.Metrics["ns_per_point"] = res.NsPerPoint
			d := newDigest()
			d.i64(res.Cycles)
			d.i64(int64(res.Net.PacketsDelivered))
			if p.Verify {
				d.grid(res.Grid)
			}
			out.OutputDigest = d.hex()
			return out, nil
		},
	})

	Register(Workload{
		Name:              "incast",
		Description:       "converge one flow of Size int32 elements from each of ranks 1..N-1 onto rank 0, drained sequentially — the congestion pattern the receiver-driven transport ablates (§3.3)",
		MinRanks:          2,
		DefaultSize:       3000,
		SupportsFaults:    true,
		SupportsRoutes:    true,
		SupportsModes:     true,
		SupportsTransport: true,
		Run: func(p Params) (Result, error) {
			cfg, err := netConfig(p)
			if err != nil {
				return Result{}, err
			}
			if cfg.Mode, err = apps.ParseTransferMode(p.Mode); err != nil {
				return Result{}, fmt.Errorf("workload: %v", err)
			}
			if p.Mode == "" && cfg.Transport.Kind == transport.SenderDrivenKind {
				// Eager sender-driven incast deadlocks on sequential drain
				// (§3.3); the safe default baseline is credited. Receiver-
				// driven pacing keeps the eager default safe, so it stays
				// on ModePacket and an explicit mode always wins.
				cfg.Mode = apps.ModeCredited
			}
			cfg.BufferElems, cfg.StreamBatch = p.BufferElems, p.StreamBatch
			senders := p.Ranks - 1
			res, err := apps.Incast(cfg, senders, p.Size)
			if err != nil {
				return Result{}, err
			}
			out := result("incast", p, p.Size, 0, res.Cycles, 0)
			out.Stats = res.Net
			out.Metrics["tail_cycles"] = float64(res.TailCycles)
			out.Metrics["mean_cycles"] = res.MeanCycles
			out.Metrics["senders"] = float64(senders)
			d := newDigest()
			d.i64(res.Cycles)
			d.i64(int64(res.Net.PacketsDelivered))
			for _, fc := range res.FlowCycles {
				d.i64(fc)
			}
			out.OutputDigest = d.hex()
			return out, nil
		},
	})

	Register(Workload{
		Name:        "summa",
		Description: "1-D SUMMA dense matrix multiply of a Size × Size matrix over the ranks (§5.4)",
		MinRanks:    2,
		Run: func(p Params) (Result, error) {
			n := p.Size
			if n == 0 {
				n = 8 * p.Ranks
			}
			res, err := apps.Summa(apps.SummaConfig{
				N: n, Ranks: p.Ranks, Verify: p.Verify,
				Topology:  p.Topology,
				Scheduler: p.Scheduler,
				Shards:    p.Shards,
				MaxCycles: p.MaxCycles,
			})
			if err != nil {
				return Result{}, err
			}
			out := result("summa", p, n, 0, res.Cycles, res.Micros)
			d := newDigest()
			d.i64(res.Cycles)
			if p.Verify {
				d.grid(res.C)
			}
			out.OutputDigest = d.hex()
			return out, nil
		},
	})
}

// Run resolves and executes a named workload, applying registered
// defaults and guarding unsupported parameters with errors instead of
// silent drops.
func Run(name string, p Params) (Result, error) {
	w, err := Get(name)
	if err != nil {
		return Result{}, err
	}
	if p.Ranks < w.MinRanks {
		return Result{}, fmt.Errorf("workload: %s needs at least %d ranks, got %d", w.Name, w.MinRanks, p.Ranks)
	}
	if p.Size == 0 {
		p.Size = w.DefaultSize
	}
	if p.Steps == 0 {
		p.Steps = w.DefaultSteps
	}
	if p.Faults != nil && !p.Faults.Zero() && !w.SupportsFaults {
		return Result{}, fmt.Errorf("workload: %s does not support fault injection", w.Name)
	}
	if p.Routes != nil && !w.SupportsRoutes {
		return Result{}, fmt.Errorf("workload: %s does not accept precomputed routes", w.Name)
	}
	if err := ValidateModeKnobs(w, p); err != nil {
		return Result{}, err
	}
	if err := ValidateTransportKnobs(w, p); err != nil {
		return Result{}, err
	}
	return w.Run(p)
}
