// Package workload is the named-workload registry: every runnable
// application of the reproduction (the §5.3 microbenchmarks and the
// §5.4 applications) registered under a stable name behind one uniform
// run signature. It extracts the per-workload dispatch that used to be
// hand-rolled inside internal/bench, so the smid service, smibench, and
// tests all resolve workloads the same way and produce the same Result
// schema.
//
// Every workload run is deterministic: the simulator is cycle-exact and
// the inputs are synthetic deterministic values, so the same Params
// (including the fault spec and its seed) always yield a bit-identical
// Result — the property smid's replay endpoint serves and verifies.
package workload

import (
	"fmt"
	"sort"

	smi "repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Params is the uniform knob set a workload run accepts. Workloads
// interpret Size and Steps in their own units (elements, grid edge,
// matrix dimension; timesteps, rounds) and fall back to registered
// defaults when zero.
type Params struct {
	// Ranks is the number of participating devices.
	Ranks int
	// Size is the problem size in workload units (0 = default).
	Size int
	// Steps is the iteration count in workload units (0 = default).
	Steps int
	// Verify enables output verification where the workload supports it.
	Verify bool
	// Topology is the interconnect; nil picks the workload's default
	// wiring for Ranks devices.
	Topology *topology.Topology
	// RoutingPolicy selects the route generator.
	RoutingPolicy routing.Policy
	// Routes supplies precomputed routing tables matching Topology and
	// RoutingPolicy (the smid warm cache); nil recomputes them.
	Routes *routing.Routes
	// Faults attaches a deterministic fault schedule (workloads with
	// SupportsFaults only).
	Faults *fault.Spec
	// Mode names the point-to-point transfer machinery for workloads
	// with SupportsModes: "packet" (default when empty), "credited",
	// "circuit", or "streaming" (the rendezvous large-message path).
	Mode string
	// BufferElems sizes the endpoint buffer in elements (0 = workload
	// default). For "streaming" it doubles as the eager/rendezvous
	// switchover threshold: only messages larger than the buffer stream.
	BufferElems int
	// StreamBatch is the streaming fragment length in wire words
	// ("streaming" mode only; 0 = port default).
	StreamBatch int
	// Transport names the flow-control transport for workloads with
	// SupportsTransport: "sender-driven" (default when empty) or
	// "receiver-driven" (Homa-style grant pacing). Parsed with
	// transport.Parse.
	Transport string
	// Arbiter names the CK input arbiter: "round-robin" (default when
	// empty) or "skip-idle". Parsed with transport.ParseArbiter.
	Arbiter string
	// Scheduler selects the simulator scheduling mode.
	Scheduler sim.SchedulerKind
	// Shards partitions the ranks into engine shards (see
	// smi.Config.Shards); 0 keeps the single-engine build.
	Shards int
	// MaxCycles bounds the simulation (0 = workload default).
	MaxCycles int64
	// Progress/ProgressEvery install a cycle-progress observer.
	Progress      func(cycle int64)
	ProgressEvery int64
}

// Result is the normalized outcome of one workload run — the document
// smid serves for a job and smibench -json prints, so the two are
// directly diffable.
type Result struct {
	Workload string  `json:"workload"`
	Ranks    int     `json:"ranks"`
	Size     int     `json:"size"`
	Steps    int     `json:"steps,omitempty"`
	Cycles   int64   `json:"cycles"`
	Micros   float64 `json:"micros"`
	// OutputDigest is an FNV-64a digest over the workload's observable
	// outputs (verified grids, result matrices, headline measurements).
	// Two runs of the same spec must produce equal digests — the
	// bit-identical replay contract.
	OutputDigest string `json:"output_digest"`
	// Metrics carries workload-specific headline numbers (Gbps,
	// ns/point, latency µs, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Stats is the full cluster execution record.
	Stats smi.Stats `json:"stats"`
}

// Workload is one registered application.
type Workload struct {
	// Name is the registry key.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// MinRanks is the smallest legal rank count.
	MinRanks int
	// DefaultSize and DefaultSteps fill zero Params fields.
	DefaultSize  int
	DefaultSteps int
	// SupportsFaults reports whether Params.Faults is honored.
	SupportsFaults bool
	// SupportsRoutes reports whether Params.Routes (and RoutingPolicy)
	// are honored — the precondition for smid's route-cache reuse.
	SupportsRoutes bool
	// SupportsModes reports whether the transfer-mode knobs
	// (Params.Mode, BufferElems, StreamBatch) are honored.
	SupportsModes bool
	// SupportsTransport reports whether Params.Transport is honored.
	// Params.Arbiter is accepted by every workload (it only retunes the
	// CK polling order), but selecting a non-default transport on a
	// workload that ignores it would silently measure the wrong thing,
	// so it is rejected unless this flag is set.
	SupportsTransport bool
	// Run executes the workload.
	Run func(Params) (Result, error)
}

var registry = map[string]Workload{}

// Register adds a workload to the registry; duplicate names are a
// programming error.
func Register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: %q registered twice", w.Name))
	}
	registry[w.Name] = w
}

// Get resolves a workload by name.
func Get(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown workload %q (have: %v)", name, Names())
	}
	return w, nil
}

// Names lists the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All lists the registered workloads sorted by name.
func All() []Workload {
	names := Names()
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Grid factors ranks into the most even rows × cols decomposition
// (rows <= cols), used for default torus wirings and the stencil rank
// grid.
func Grid(ranks int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= ranks; r++ {
		if ranks%r == 0 {
			rows = r
		}
	}
	return rows, ranks / rows
}

// DefaultTopology picks a wiring for ranks devices: a 2D torus when the
// rank grid has two real dimensions, otherwise a bus.
func DefaultTopology(ranks int) (*topology.Topology, error) {
	if ranks < 2 {
		return nil, fmt.Errorf("workload: need at least 2 ranks, got %d", ranks)
	}
	rows, cols := Grid(ranks)
	if rows >= 2 && cols >= 2 {
		return topology.Torus2D(rows, cols)
	}
	return topology.Bus(ranks)
}
