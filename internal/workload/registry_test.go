package workload

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"bandwidth", "bcast", "incast", "pingpong", "reduce", "stencil", "summa"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get(nope) succeeded")
	}
}

func TestGrid(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 8: {2, 4},
		16: {4, 4}, 32: {4, 8}, 64: {8, 8}, 7: {1, 7},
	}
	for ranks, want := range cases {
		rows, cols := Grid(ranks)
		if rows != want[0] || cols != want[1] {
			t.Errorf("Grid(%d) = %d×%d, want %d×%d", ranks, rows, cols, want[0], want[1])
		}
	}
}

func TestRunDefaultsAndDeterminism(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := Params{Ranks: 4, Verify: true, Size: quickTestSize(name)}
			a, err := Run(name, p)
			if err != nil {
				t.Fatalf("Run(%s): %v", name, err)
			}
			if a.Cycles <= 0 {
				t.Fatalf("Run(%s): cycles = %d", name, a.Cycles)
			}
			if a.OutputDigest == "" {
				t.Fatalf("Run(%s): empty output digest", name)
			}
			b, err := Run(name, p)
			if err != nil {
				t.Fatalf("Run(%s) again: %v", name, err)
			}
			if a.OutputDigest != b.OutputDigest || a.Cycles != b.Cycles {
				t.Fatalf("Run(%s) not deterministic: (%d, %s) vs (%d, %s)",
					name, a.Cycles, a.OutputDigest, b.Cycles, b.OutputDigest)
			}
		})
	}
}

func quickTestSize(name string) int {
	switch name {
	case "bandwidth":
		return 1024
	case "pingpong":
		return 8
	case "bcast", "reduce":
		return 256
	case "incast":
		return 512
	case "stencil", "summa":
		return 8
	default:
		return 0
	}
}

func TestRunGuards(t *testing.T) {
	if _, err := Run("bandwidth", Params{Ranks: 1}); err == nil {
		t.Fatal("bandwidth at 1 rank succeeded, want MinRanks error")
	}
	// summa registers SupportsFaults=false: a live fault spec must be
	// rejected, a zero one tolerated.
	faulty := &fault.Spec{DropProb: 0.1, Seed: 1}
	if _, err := Run("summa", Params{Ranks: 2, Size: 8, Faults: faulty}); err == nil {
		t.Fatal("summa with faults succeeded, want unsupported error")
	}
	routes := &routing.Routes{}
	if _, err := Run("summa", Params{Ranks: 2, Size: 8, Routes: routes}); err == nil {
		t.Fatal("summa with precomputed routes succeeded, want unsupported error")
	}
}

func TestRunModeKnobs(t *testing.T) {
	// The bandwidth workload honors the transfer-mode knobs: a 4096-int
	// message over a 64-element buffer is the large-message regime, so
	// streaming must cut fragments and beat the credited packet path.
	base := Params{Ranks: 4, Size: 4096, BufferElems: 64}
	byMode := map[string]Result{}
	for _, mode := range []string{"credited", "circuit", "streaming"} {
		p := base
		p.Mode = mode
		res, err := Run("bandwidth", p)
		if err != nil {
			t.Fatalf("bandwidth mode %s: %v", mode, err)
		}
		byMode[mode] = res
		again, err := Run("bandwidth", p)
		if err != nil {
			t.Fatalf("bandwidth mode %s again: %v", mode, err)
		}
		if res.OutputDigest != again.OutputDigest || res.Cycles != again.Cycles {
			t.Fatalf("mode %s not deterministic", mode)
		}
	}
	if s, c := byMode["streaming"], byMode["credited"]; 2*s.Cycles > c.Cycles {
		t.Errorf("streaming (%d cycles) should beat credited (%d) at least 2x", s.Cycles, c.Cycles)
	}
	if frags := byMode["streaming"].Metrics["stream_fragments"]; frags == 0 {
		t.Error("streaming run reported no stream fragments")
	}

	// Typed validation: bad combinations are rejected before any run.
	for name, p := range map[string]Params{
		"unknown mode":              {Ranks: 4, Size: 64, Mode: "teleport"},
		"batch without streaming":   {Ranks: 4, Size: 64, Mode: "circuit", StreamBatch: 8},
		"negative buffer":           {Ranks: 4, Size: 64, Mode: "streaming", BufferElems: -1},
		"oversized batch":           {Ranks: 4, Size: 64, Mode: "streaming", StreamBatch: 1 << 20},
		"mode on mode-less summa":   {Ranks: 4, Size: 8, Mode: "streaming"},
		"buffer on mode-less summa": {Ranks: 4, Size: 8, BufferElems: 64},
	} {
		wl := "bandwidth"
		if name == "mode on mode-less summa" || name == "buffer on mode-less summa" {
			wl = "summa"
		}
		if _, err := Run(wl, p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunTransportKnobs(t *testing.T) {
	// The incast workload honors the transport knob: receiver-driven
	// pacing must issue grants, self-report in Stats, and cut the tail
	// against the credited sender-driven baseline at 3:1.
	base := Params{Ranks: 4, Size: 2000}
	sd, err := Run("incast", base)
	if err != nil {
		t.Fatalf("sender-driven incast: %v", err)
	}
	if sd.Stats.Transport != "sender-driven" {
		t.Errorf("default incast reports transport %q, want sender-driven", sd.Stats.Transport)
	}
	if sd.Stats.Grants != 0 {
		t.Errorf("sender-driven incast reported %d grants", sd.Stats.Grants)
	}
	p := base
	p.Transport = "receiver-driven"
	rd, err := Run("incast", p)
	if err != nil {
		t.Fatalf("receiver-driven incast: %v", err)
	}
	if rd.Stats.Transport != "receiver-driven" {
		t.Errorf("incast reports transport %q, want receiver-driven", rd.Stats.Transport)
	}
	if rd.Stats.Grants == 0 {
		t.Error("receiver-driven incast issued no grants")
	}
	if rd.Metrics["tail_cycles"] >= sd.Metrics["tail_cycles"] {
		t.Errorf("receiver-driven tail %v not below sender-driven credited tail %v",
			rd.Metrics["tail_cycles"], sd.Metrics["tail_cycles"])
	}
	again, err := Run("incast", p)
	if err != nil {
		t.Fatal(err)
	}
	if again.OutputDigest != rd.OutputDigest || again.Cycles != rd.Cycles {
		t.Fatal("receiver-driven incast not deterministic")
	}

	// The arbiter knob is accepted everywhere and changes timing only.
	arb := base
	arb.Arbiter = "skip-idle"
	if _, err := Run("incast", arb); err != nil {
		t.Fatalf("skip-idle incast: %v", err)
	}

	// Typed validation: bad knobs and unsupported selections fail loudly.
	for name, tc := range map[string]struct {
		wl string
		p  Params
	}{
		"unknown transport":              {"incast", Params{Ranks: 4, Size: 64, Transport: "homa"}},
		"unknown arbiter":                {"incast", Params{Ranks: 4, Size: 64, Arbiter: "lru"}},
		"transport on transport-less":    {"summa", Params{Ranks: 4, Size: 8, Transport: "receiver-driven"}},
		"receiver-driven with faults":    {"incast", Params{Ranks: 4, Size: 64, Transport: "receiver-driven", Faults: &fault.Spec{DropProb: 0.01, Seed: 1}}},
		"receiver-driven with streaming": {"incast", Params{Ranks: 4, Size: 64, Transport: "receiver-driven", Mode: "streaming"}},
	} {
		if _, err := Run(tc.wl, tc.p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunWithPrecomputedRoutes(t *testing.T) {
	topo, err := topology.Torus2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	routes, err := routing.Compute(topo, routing.ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	base := Params{Ranks: 4, Size: 512, Topology: topo}
	plain, err := Run("bcast", base)
	if err != nil {
		t.Fatal(err)
	}
	withRoutes := base
	withRoutes.Routes = routes
	cached, err := Run("bcast", withRoutes)
	if err != nil {
		t.Fatal(err)
	}
	if plain.OutputDigest != cached.OutputDigest || plain.Cycles != cached.Cycles {
		t.Fatalf("precomputed routes changed the run: (%d, %s) vs (%d, %s)",
			plain.Cycles, plain.OutputDigest, cached.Cycles, cached.OutputDigest)
	}
}

func TestDefaultTopology(t *testing.T) {
	if _, err := DefaultTopology(1); err == nil {
		t.Fatal("DefaultTopology(1) succeeded")
	}
	topo, err := DefaultTopology(16)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Devices != 16 {
		t.Fatalf("DefaultTopology(16).Devices = %d", topo.Devices)
	}
	bus, err := DefaultTopology(3)
	if err != nil {
		t.Fatal(err)
	}
	if bus.Devices != 3 {
		t.Fatalf("DefaultTopology(3).Devices = %d", bus.Devices)
	}
}
