package packet

import (
	"fmt"
	"math"
)

// Datatype identifies an SMI element type, mirroring the paper's
// SMI_INT, SMI_FLOAT, SMI_DOUBLE, SMI_CHAR, and SMI_SHORT.
type Datatype uint8

const (
	// Invalid is the zero value; it lets API layers detect "datatype not
	// specified" and apply their own default.
	Invalid Datatype = iota
	Char             // 1 byte
	Short            // 2 bytes
	Int              // 4 bytes
	Float            // 4 bytes
	Double           // 8 bytes

	numDatatypes
)

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	switch d {
	case Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	default:
		panic(fmt.Sprintf("packet: invalid datatype %d", d))
	}
}

// ElemsPerPacket returns how many elements of this type fit in one
// 28-byte payload: 28 chars, 14 shorts, 7 ints/floats, 3 doubles.
func (d Datatype) ElemsPerPacket() int { return PayloadSize / d.Size() }

func (d Datatype) String() string {
	switch d {
	case Char:
		return "SMI_CHAR"
	case Short:
		return "SMI_SHORT"
	case Int:
		return "SMI_INT"
	case Float:
		return "SMI_FLOAT"
	case Double:
		return "SMI_DOUBLE"
	default:
		return fmt.Sprintf("Datatype(%d)", uint8(d))
	}
}

// Valid reports whether d is a defined (non-Invalid) datatype.
func (d Datatype) Valid() bool { return d > Invalid && d < numDatatypes }

// Bit-pattern conversion helpers. SMI moves raw element bits; the typed
// views below are used at the application boundary.

// FloatBits returns the bit pattern of a float32 value.
func FloatBits(v float32) uint64 { return uint64(math.Float32bits(v)) }

// BitsFloat returns the float32 value of a bit pattern.
func BitsFloat(b uint64) float32 { return math.Float32frombits(uint32(b)) }

// DoubleBits returns the bit pattern of a float64 value.
func DoubleBits(v float64) uint64 { return math.Float64bits(v) }

// BitsDouble returns the float64 value of a bit pattern.
func BitsDouble(b uint64) float64 { return math.Float64frombits(b) }

// IntBits returns the bit pattern of an int32 value.
func IntBits(v int32) uint64 { return uint64(uint32(v)) }

// BitsInt returns the int32 value of a bit pattern.
func BitsInt(b uint64) int32 { return int32(uint32(b)) }

// ShortBits returns the bit pattern of an int16 value.
func ShortBits(v int16) uint64 { return uint64(uint16(v)) }

// BitsShort returns the int16 value of a bit pattern.
func BitsShort(b uint64) int16 { return int16(uint16(b)) }
