// Package packet defines the SMI network packet format.
//
// A network packet is the minimal unit of routing (paper §4.2). It is 32
// bytes — the width of one BSP I/O channel word — split into a 4-byte
// header and a 28-byte payload:
//
//	byte 0: source rank
//	byte 1: destination rank
//	byte 2: port
//	byte 3: operation type (3 bits) | number of valid elements (5 bits)
//
// Rank and port are truncated to 8 bits on the wire to mitigate the
// header overhead of packet switching, exactly as in the reference
// implementation. The in-memory Packet keeps 16-bit rank fields so the
// simulator can model clusters beyond the 8-bit wire format's 256
// ranks; only the encoded wire form (the reliable link layer's frames)
// is bound to the 8-bit limit, and reliable clusters are capped at
// MaxWireRanks accordingly.
package packet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Wire sizes in bytes.
const (
	Size        = 32
	HeaderSize  = 4
	PayloadSize = Size - HeaderSize // 28
)

// MaxRanks is the largest rank count the simulator addresses (16-bit
// in-memory rank fields, bounded to keep per-rank state small).
const MaxRanks = 1024

// MaxWireRanks is the largest rank count the encoded 32-byte wire form
// can address (8-bit rank field). Paths that serialize packets — the
// reliable link layer — are limited to clusters of this size.
const MaxWireRanks = 256

// MaxPorts is the largest addressable port count (8-bit port field).
const MaxPorts = 256

// Op is the 3-bit packet operation type.
type Op uint8

const (
	// OpData carries message payload elements.
	OpData Op = iota
	// OpSyncReady signals "ready to receive" for one-to-all collectives
	// (Bcast, Scatter) and "your turn" grants for Gather.
	OpSyncReady
	// OpCredit grants one tile of credits in the Reduce flow-control
	// protocol.
	OpCredit
	// OpConfig carries dynamic channel configuration (root rank, element
	// count) from an application endpoint to its collective support
	// kernel. It never crosses the network.
	OpConfig
	// OpOpen establishes a circuit (circuit-switching mode, §4.2): it
	// carries the meta-information of the whole message — source and
	// destination rank, port, and the number of raw payload packets that
	// follow — so those payload packets need no headers of their own.
	OpOpen
	// OpRaw is a headerless circuit payload packet: all 32 bytes carry
	// elements. Its routing is implied by the circuit its OpOpen opened.
	OpRaw
	// OpStream is a stream-fragment header (streaming large-message mode):
	// it carries the fragment's sequence number, the number of headerless
	// OpRaw payload words that follow, and the element count they hold.
	// Communication kernels cut a fragment through as soon as this header
	// resolves the route, pinning the route only for the fragment train —
	// competing channels interleave at fragment boundaries instead of
	// waiting out a whole message as they do under circuit switching.
	OpStream
	// OpStreamCtl is the streaming rendezvous control packet: a sender
	// whose message exceeds the endpoint credit asks the receiver for
	// permission (StreamReq) and streams only after the grant
	// (StreamGrant) — the classic eager/rendezvous switchover.
	OpStreamCtl

	numOps
)

func (o Op) String() string {
	switch o {
	case OpData:
		return "DATA"
	case OpSyncReady:
		return "SYNC"
	case OpCredit:
		return "CREDIT"
	case OpConfig:
		return "CONFIG"
	case OpOpen:
		return "OPEN"
	case OpRaw:
		return "RAW"
	case OpStream:
		return "STREAM"
	case OpStreamCtl:
		return "STREAMCTL"
	case OpGrantReq:
		return "GRANTREQ"
	case OpGrant:
		return "GRANT"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Packet is one 32-byte network packet.
//
// For OpRaw circuit payloads the header bytes are repurposed as four
// extra payload bytes (Extra), giving the full 32-byte wire word to
// data; the Op and Count fields then ride out-of-band in the simulator,
// standing in for the state real circuit-switched hardware keeps per
// established circuit.
type Packet struct {
	Src     uint16
	Dst     uint16
	Port    uint8
	Op      Op
	Count   uint8 // number of valid elements in Payload (5 bits, <= 28)
	Extra   [HeaderSize]byte
	Payload [PayloadSize]byte
}

// Encode serializes the packet into its 32-byte wire form. Ranks are
// truncated to the 8-bit wire fields; callers guarantee they are below
// MaxWireRanks (the reliable link layer only runs in clusters capped at
// that size).
func (p *Packet) Encode() [Size]byte {
	if p.Op >= numOps {
		// In-memory control ops (OpGrantReq/OpGrant) have no wire form:
		// truncating them into the 3-bit field would deliver a forged
		// OpData. The cluster builder rejects the configurations that
		// could route one here; reaching this is a transport bug.
		panic(fmt.Sprintf("packet: op %v has no 3-bit wire encoding", p.Op))
	}
	var w [Size]byte
	w[0] = uint8(p.Src)
	w[1] = uint8(p.Dst)
	w[2] = p.Port
	w[3] = uint8(p.Op)<<5 | p.Count&0x1f
	copy(w[HeaderSize:], p.Payload[:])
	return w
}

// Decode deserializes a 32-byte wire word into a packet.
func Decode(w [Size]byte) Packet {
	var p Packet
	p.Src = uint16(w[0])
	p.Dst = uint16(w[1])
	p.Port = w[2]
	p.Op = Op(w[3] >> 5)
	p.Count = w[3] & 0x1f
	copy(p.Payload[:], w[HeaderSize:])
	return p
}

func (p Packet) String() string {
	return fmt.Sprintf("{%s %d->%d port=%d n=%d}", p.Op, p.Src, p.Dst, p.Port, p.Count)
}

// PutElem stores the raw bits of element i of the given datatype into
// the payload. Values are passed as uint64 bit patterns (see Datatype
// helpers for conversions).
func (p *Packet) PutElem(i int, dt Datatype, bits uint64) {
	s := dt.Size()
	off := i * s
	switch s {
	case 1:
		p.Payload[off] = byte(bits)
	case 2:
		binary.LittleEndian.PutUint16(p.Payload[off:], uint16(bits))
	case 4:
		binary.LittleEndian.PutUint32(p.Payload[off:], uint32(bits))
	case 8:
		binary.LittleEndian.PutUint64(p.Payload[off:], bits)
	}
}

// Elem loads the raw bits of element i of the given datatype.
func (p *Packet) Elem(i int, dt Datatype) uint64 {
	s := dt.Size()
	off := i * s
	switch s {
	case 1:
		return uint64(p.Payload[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(p.Payload[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(p.Payload[off:]))
	case 8:
		return binary.LittleEndian.Uint64(p.Payload[off:])
	}
	return 0
}

// castagnoli is the CRC-32C table used for link-level frame checksums
// (the polynomial hardware link layers typically implement).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the link-level CRC-32C over one wire word plus the
// frame metadata the reliable link layer adds around it (sequence
// number, cumulative acknowledgement, control flags). The physical QSFP
// links the paper relies on carry equivalent protection inside the BSP
// (§5.1); the simulator makes it explicit so injected bit errors are
// detectable.
func Checksum(w [Size]byte, seq, ack uint64, flags byte) uint32 {
	var meta [17]byte
	binary.LittleEndian.PutUint64(meta[0:], seq)
	binary.LittleEndian.PutUint64(meta[8:], ack)
	meta[16] = flags
	crc := crc32.Update(0, castagnoli, w[:])
	return crc32.Update(crc, castagnoli, meta[:])
}

// Config is the dynamic per-channel information a collective support
// kernel needs, delivered in an OpConfig packet on first use: collectives
// can pick their root and message length at run time without rebuilding
// hardware (paper §4.4: "Both the root and non-root behavior is
// instantiated at every rank, to allow the root rank to be specified
// dynamically").
type Config struct {
	Root  uint16
	Count uint32 // message length in elements (per rank)
	Base  uint16 // first global rank of the communicator
	Size  uint16 // communicator size in ranks
}

// EncodeConfig packs a Config into an OpConfig packet for the given
// port. The rank fields are 16-bit: OpConfig never crosses the network,
// so it is not bound to the wire header's 8-bit rank limit and can
// describe communicators up to MaxRanks.
func EncodeConfig(src uint16, port uint8, c Config) Packet {
	p := Packet{Src: src, Dst: src, Port: port, Op: OpConfig}
	binary.LittleEndian.PutUint16(p.Payload[0:], c.Root)
	binary.LittleEndian.PutUint32(p.Payload[2:], c.Count)
	binary.LittleEndian.PutUint16(p.Payload[6:], c.Base)
	binary.LittleEndian.PutUint16(p.Payload[8:], c.Size)
	return p
}

// DecodeConfig extracts a Config from an OpConfig packet.
func DecodeConfig(p Packet) Config {
	return Config{
		Root:  binary.LittleEndian.Uint16(p.Payload[0:]),
		Count: binary.LittleEndian.Uint32(p.Payload[2:]),
		Base:  binary.LittleEndian.Uint16(p.Payload[6:]),
		Size:  binary.LittleEndian.Uint16(p.Payload[8:]),
	}
}

// EncodeCreditElems stores a granted element count in an OpCredit
// packet's payload (credit-based flow control, paper §4.1).
func EncodeCreditElems(p *Packet, elems uint32) {
	binary.LittleEndian.PutUint32(p.Payload[0:], elems)
}

// DecodeCreditElems reads the granted element count from an OpCredit
// packet.
func DecodeCreditElems(p Packet) uint32 {
	return binary.LittleEndian.Uint32(p.Payload[0:])
}

// RawElemsPerPacket returns how many elements of the datatype fit in a
// headerless circuit payload packet (32 bytes, capped at 31 by the
// 5-bit count field): 31 chars, 16 shorts, 8 ints/floats, 4 doubles.
func RawElemsPerPacket(dt Datatype) int {
	n := Size / dt.Size()
	if n > 31 {
		n = 31
	}
	return n
}

// rawByte addresses the 32-byte raw payload: offsets 0-3 live in Extra,
// 4-31 in Payload.
func (p *Packet) rawByte(off int) *byte {
	if off < HeaderSize {
		return &p.Extra[off]
	}
	return &p.Payload[off-HeaderSize]
}

// PutRawElem stores element i of a raw circuit packet.
func (p *Packet) PutRawElem(i int, dt Datatype, bits uint64) {
	s := dt.Size()
	for b := 0; b < s; b++ {
		*p.rawByte(i*s + b) = byte(bits >> (8 * b))
	}
}

// RawElem loads element i of a raw circuit packet.
func (p *Packet) RawElem(i int, dt Datatype) uint64 {
	s := dt.Size()
	var bits uint64
	for b := 0; b < s; b++ {
		bits |= uint64(*p.rawByte(i*s + b)) << (8 * b)
	}
	return bits
}

// OpenInfo is the circuit meta-information an OpOpen packet carries.
type OpenInfo struct {
	RawPackets uint32 // headerless payload packets that follow
	Elems      uint32 // total elements in the message
}

// EncodeOpen builds the circuit-establishment packet.
func EncodeOpen(src, dst uint16, port uint8, info OpenInfo) Packet {
	p := Packet{Src: src, Dst: dst, Port: port, Op: OpOpen}
	binary.LittleEndian.PutUint32(p.Payload[0:], info.RawPackets)
	binary.LittleEndian.PutUint32(p.Payload[4:], info.Elems)
	return p
}

// DecodeOpen extracts the circuit meta-information.
func DecodeOpen(p Packet) OpenInfo {
	return OpenInfo{
		RawPackets: binary.LittleEndian.Uint32(p.Payload[0:]),
		Elems:      binary.LittleEndian.Uint32(p.Payload[4:]),
	}
}

// The op space is 3 bits wide; OpStream and OpStreamCtl fill it exactly.
var _ = [1]struct{}{}[numOps-8]

// In-memory control ops. The 3-bit wire op space is full, so the
// receiver-driven transport's flow-control packets take op values >= 8:
// they exist only inside the simulator's in-memory packet structs and
// ride pristine links (which move Packet values without serializing).
// They must never reach Encode — the reliable link layer is the only
// path that serializes packets, and clusters combining the
// receiver-driven transport with reliable links are rejected at build
// time. A hardware wire format would spend one op (say OpCredit with a
// kind byte, like OpStreamCtl does) and a sub-kind discriminator; see
// DESIGN.md §9 for the would-be encoding.
const (
	// OpGrantReq announces backlog to a receiver: "src has (cumulative)
	// N paced data packets to send on this port". Sent by the
	// receiver-driven pacer when a flow runs out of grant credit.
	OpGrantReq Op = numOps + iota
	// OpGrant paces a sender: the receiver raises the flow's cumulative
	// send allowance to N packets. Issued in SRPT order, bounded by the
	// destination endpoint's free buffer space.
	OpGrant
)

// GrantTotal is the cumulative packet count an OpGrantReq announces
// (demand) or an OpGrant allows (allowance). Cumulative counters make
// the protocol idempotent: a stale announcement or grant is simply a
// no-op under max().
func GrantTotal(p Packet) uint32 { return binary.LittleEndian.Uint32(p.Payload[0:]) }

// EncodeGrantReq builds a backlog announcement for a paced flow.
func EncodeGrantReq(src, dst uint16, port uint8, needTotal uint32) Packet {
	p := Packet{Src: src, Dst: dst, Port: port, Op: OpGrantReq}
	binary.LittleEndian.PutUint32(p.Payload[0:], needTotal)
	return p
}

// EncodeGrant builds a grant raising a flow's cumulative send allowance.
func EncodeGrant(src, dst uint16, port uint8, grantTotal uint32) Packet {
	p := Packet{Src: src, Dst: dst, Port: port, Op: OpGrant}
	binary.LittleEndian.PutUint32(p.Payload[0:], grantTotal)
	return p
}

// EncodeRaw serializes a headerless OpRaw packet into its full-payload
// 32-byte wire word: unlike Encode, all four Extra bytes go on the wire
// and no header is written. The out-of-band Op and Count ride in the
// link-layer frame sideband (see internal/link), standing in for the
// per-circuit state real cut-through hardware keeps.
func (p *Packet) EncodeRaw() [Size]byte {
	var w [Size]byte
	copy(w[:HeaderSize], p.Extra[:])
	copy(w[HeaderSize:], p.Payload[:])
	return w
}

// DecodeRaw rebuilds a headerless OpRaw packet from its full-payload
// wire word and the sideband element count.
func DecodeRaw(w [Size]byte, count uint8) Packet {
	p := Packet{Op: OpRaw, Count: count}
	copy(p.Extra[:], w[:HeaderSize])
	copy(p.Payload[:], w[HeaderSize:])
	return p
}

// MaxStreamWords bounds the payload words of one stream fragment (the
// 16-bit Words field of the fragment header).
const MaxStreamWords = 1 << 16

// StreamFrag is the meta-information an OpStream fragment header
// carries: like a circuit's OpOpen but scoped to one bounded fragment,
// so intermediate kernels release the route between fragments.
type StreamFrag struct {
	Seq   uint32 // fragment sequence number within the message, from 0
	Words uint16 // headerless payload words that follow this header
	Elems uint32 // elements carried by those words
	Last  bool   // final fragment of the message
}

// EncodeStreamFrag builds a fragment header packet.
func EncodeStreamFrag(src, dst uint16, port uint8, f StreamFrag) Packet {
	p := Packet{Src: src, Dst: dst, Port: port, Op: OpStream}
	binary.LittleEndian.PutUint32(p.Payload[0:], f.Seq)
	binary.LittleEndian.PutUint16(p.Payload[4:], f.Words)
	binary.LittleEndian.PutUint32(p.Payload[6:], f.Elems)
	if f.Last {
		p.Payload[10] = 1
	}
	return p
}

// DecodeStreamFrag extracts the fragment meta-information.
func DecodeStreamFrag(p Packet) StreamFrag {
	return StreamFrag{
		Seq:   binary.LittleEndian.Uint32(p.Payload[0:]),
		Words: binary.LittleEndian.Uint16(p.Payload[4:]),
		Elems: binary.LittleEndian.Uint32(p.Payload[6:]),
		Last:  p.Payload[10] != 0,
	}
}

// StreamCtlKind distinguishes the two rendezvous control packets.
type StreamCtlKind uint8

const (
	// StreamReq asks the receiver for permission to stream Elems
	// elements (sender → receiver).
	StreamReq StreamCtlKind = iota + 1
	// StreamGrant acknowledges the request: the receiver is at its
	// channel and ready to drain the stream (receiver → sender).
	StreamGrant
)

func (k StreamCtlKind) String() string {
	switch k {
	case StreamReq:
		return "REQ"
	case StreamGrant:
		return "GRANT"
	default:
		return fmt.Sprintf("StreamCtlKind(%d)", uint8(k))
	}
}

// StreamCtl is the payload of an OpStreamCtl rendezvous packet.
type StreamCtl struct {
	Kind  StreamCtlKind
	Elems uint32 // total message length in elements
}

// EncodeStreamCtl builds a rendezvous control packet.
func EncodeStreamCtl(src, dst uint16, port uint8, c StreamCtl) Packet {
	p := Packet{Src: src, Dst: dst, Port: port, Op: OpStreamCtl}
	p.Payload[0] = uint8(c.Kind)
	binary.LittleEndian.PutUint32(p.Payload[1:], c.Elems)
	return p
}

// DecodeStreamCtl extracts the rendezvous control information.
func DecodeStreamCtl(p Packet) StreamCtl {
	return StreamCtl{
		Kind:  StreamCtlKind(p.Payload[0]),
		Elems: binary.LittleEndian.Uint32(p.Payload[1:]),
	}
}
