package packet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSizes(t *testing.T) {
	if Size != 32 || HeaderSize != 4 || PayloadSize != 28 {
		t.Fatal("wire format must match the paper: 32B packet, 4B header, 28B payload")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	p := Packet{Src: 3, Dst: 200, Port: 17, Op: OpCredit, Count: 28}
	for i := range p.Payload {
		p.Payload[i] = byte(i * 7)
	}
	got := Decode(p.Encode())
	if got != p {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

// Property: every packet with wire-addressable fields (ranks below
// MaxWireRanks — the 8-bit header limit) survives the wire format.
func TestEncodeDecodeQuick(t *testing.T) {
	prop := func(src, dst, port uint8, op uint8, count uint8, payload [PayloadSize]byte) bool {
		p := Packet{
			Src: uint16(src), Dst: uint16(dst), Port: port,
			Op:      Op(op % uint8(numOps)),
			Count:   count % 29,
			Payload: payload,
		}
		return Decode(p.Encode()) == p
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderBitPacking(t *testing.T) {
	// The op (3 bits) and count (5 bits) share header byte 3.
	p := Packet{Op: OpCredit, Count: 28}
	w := p.Encode()
	if w[3] != uint8(OpCredit)<<5|28 {
		t.Fatalf("byte 3 = %08b, want op in high 3 bits, count in low 5", w[3])
	}
}

func TestDatatypeSizes(t *testing.T) {
	cases := []struct {
		dt    Datatype
		size  int
		elems int
	}{
		{Char, 1, 28},
		{Short, 2, 14},
		{Int, 4, 7},
		{Float, 4, 7},
		{Double, 8, 3},
	}
	for _, c := range cases {
		if got := c.dt.Size(); got != c.size {
			t.Errorf("%v size = %d, want %d", c.dt, got, c.size)
		}
		if got := c.dt.ElemsPerPacket(); got != c.elems {
			t.Errorf("%v elems/packet = %d, want %d", c.dt, got, c.elems)
		}
	}
}

func TestInvalidDatatypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Size on invalid datatype should panic")
		}
	}()
	_ = Datatype(99).Size()
}

func TestElemPacking(t *testing.T) {
	var p Packet
	// Fill all 7 int slots and read them back.
	for i := 0; i < Int.ElemsPerPacket(); i++ {
		p.PutElem(i, Int, IntBits(int32(-100*i)))
	}
	for i := 0; i < Int.ElemsPerPacket(); i++ {
		if got := BitsInt(p.Elem(i, Int)); got != int32(-100*i) {
			t.Fatalf("int elem %d = %d, want %d", i, got, -100*i)
		}
	}
}

func TestElemPackingAllTypesQuick(t *testing.T) {
	prop := func(raw uint64, dtRaw uint8, idxRaw uint8) bool {
		dt := Datatype(dtRaw%uint8(numDatatypes-1)) + 1
		i := int(idxRaw) % dt.ElemsPerPacket()
		mask := uint64(1)<<(8*dt.Size()) - 1
		if dt.Size() == 8 {
			mask = ^uint64(0)
		}
		var p Packet
		p.PutElem(i, dt, raw)
		return p.Elem(i, dt) == raw&mask
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElemAdjacencyNoOverlap(t *testing.T) {
	var p Packet
	p.PutElem(0, Double, DoubleBits(math.Pi))
	p.PutElem(1, Double, DoubleBits(math.E))
	p.PutElem(2, Double, DoubleBits(-1.5))
	if BitsDouble(p.Elem(0, Double)) != math.Pi ||
		BitsDouble(p.Elem(1, Double)) != math.E ||
		BitsDouble(p.Elem(2, Double)) != -1.5 {
		t.Fatal("adjacent doubles overlap in payload")
	}
}

func TestFloatConversions(t *testing.T) {
	vals := []float32{0, 1.5, -3.25, float32(math.Inf(1)), math.MaxFloat32}
	for _, v := range vals {
		if got := BitsFloat(FloatBits(v)); got != v {
			t.Errorf("float roundtrip %g -> %g", v, got)
		}
	}
	if BitsShort(ShortBits(-1234)) != -1234 {
		t.Error("short roundtrip failed")
	}
	if BitsInt(IntBits(math.MinInt32)) != math.MinInt32 {
		t.Error("int roundtrip failed")
	}
	if BitsDouble(DoubleBits(math.SmallestNonzeroFloat64)) != math.SmallestNonzeroFloat64 {
		t.Error("double roundtrip failed")
	}
}

func TestConfigRoundtrip(t *testing.T) {
	// Config never crosses the network, so its rank fields cover the
	// full simulator range (MaxRanks), not just the 8-bit wire range —
	// a 1024-rank communicator must survive intact.
	for _, c := range []Config{
		{Root: 7, Count: 123456789, Base: 2, Size: 6},
		{Root: 1000, Count: 1 << 20, Base: 0, Size: MaxRanks},
	} {
		p := EncodeConfig(3, 9, c)
		if p.Op != OpConfig || p.Port != 9 || p.Src != 3 {
			t.Fatalf("bad config packet header: %v", p)
		}
		if got := DecodeConfig(p); got != c {
			t.Fatalf("config roundtrip: got %+v, want %+v", got, c)
		}
	}
}

func TestCreditElemsRoundtrip(t *testing.T) {
	for _, elems := range []uint32{0, 1, 128, 1 << 20, 0xFFFFFFFF} {
		p := Packet{Src: 1, Dst: 2, Port: 3, Op: OpCredit}
		EncodeCreditElems(&p, elems)
		if got := DecodeCreditElems(p); got != elems {
			t.Fatalf("credit roundtrip: got %d, want %d", got, elems)
		}
		if p.Op != OpCredit || p.Src != 1 || p.Dst != 2 || p.Port != 3 {
			t.Fatalf("encoding credits clobbered the header: %v", p)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpData: "DATA", OpSyncReady: "SYNC", OpCredit: "CREDIT", OpConfig: "CONFIG",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestRawElemsPerPacket(t *testing.T) {
	cases := map[Datatype]int{Char: 31, Short: 16, Int: 8, Float: 8, Double: 4}
	for dt, want := range cases {
		if got := RawElemsPerPacket(dt); got != want {
			t.Errorf("%v raw elems = %d, want %d", dt, got, want)
		}
	}
}

func TestRawElemRoundtrip(t *testing.T) {
	// Raw elements span the repurposed header bytes (Extra) and the
	// payload; doubles straddle the boundary.
	for _, dt := range []Datatype{Char, Short, Int, Float, Double} {
		var p Packet
		n := RawElemsPerPacket(dt)
		mask := uint64(1)<<(8*dt.Size()) - 1
		if dt.Size() == 8 {
			mask = ^uint64(0)
		}
		for i := 0; i < n; i++ {
			p.PutRawElem(i, dt, uint64(i)*0x9e3779b97f4a7c15)
		}
		for i := 0; i < n; i++ {
			want := (uint64(i) * 0x9e3779b97f4a7c15) & mask
			if got := p.RawElem(i, dt); got != want {
				t.Fatalf("%v raw elem %d = %x, want %x", dt, i, got, want)
			}
		}
	}
}

func TestRawElemUsesExtraBytes(t *testing.T) {
	var p Packet
	p.PutRawElem(0, Int, 0xDEADBEEF)
	if p.Extra == ([4]byte{}) {
		t.Fatal("raw element 0 should occupy the repurposed header bytes")
	}
	if p.Payload != ([PayloadSize]byte{}) {
		t.Fatal("raw element 0 must not spill into the payload")
	}
}

func TestOpenRoundtrip(t *testing.T) {
	info := OpenInfo{RawPackets: 123456, Elems: 987654}
	p := EncodeOpen(3, 7, 9, info)
	if p.Op != OpOpen || p.Src != 3 || p.Dst != 7 || p.Port != 9 {
		t.Fatalf("bad open header: %v", p)
	}
	if got := DecodeOpen(p); got != info {
		t.Fatalf("open roundtrip: %+v != %+v", got, info)
	}
}

func TestStreamFragRoundtrip(t *testing.T) {
	for _, f := range []StreamFrag{
		{Seq: 0, Words: 1, Elems: 8},
		{Seq: 42, Words: 16, Elems: 128, Last: true},
		{Seq: 0xFFFFFFFF, Words: 0xFFFF, Elems: 0xFFFFFFFF, Last: true},
	} {
		p := EncodeStreamFrag(3, 7, 9, f)
		if p.Op != OpStream || p.Src != 3 || p.Dst != 7 || p.Port != 9 {
			t.Fatalf("bad fragment header: %v", p)
		}
		if got := DecodeStreamFrag(p); got != f {
			t.Fatalf("fragment roundtrip: %+v != %+v", got, f)
		}
	}
}

func TestStreamCtlRoundtrip(t *testing.T) {
	for _, c := range []StreamCtl{
		{Kind: StreamReq, Elems: 1},
		{Kind: StreamGrant, Elems: 1 << 30},
	} {
		p := EncodeStreamCtl(5, 6, 2, c)
		if p.Op != OpStreamCtl || p.Src != 5 || p.Dst != 6 || p.Port != 2 {
			t.Fatalf("bad stream-ctl header: %v", p)
		}
		if got := DecodeStreamCtl(p); got != c {
			t.Fatalf("stream-ctl roundtrip: %+v != %+v", got, c)
		}
	}
}

func TestEncodeRawKeepsExtraBytes(t *testing.T) {
	// Encode drops Extra (it writes the 4-byte header); EncodeRaw must
	// keep all 32 payload bytes, since a raw word has no header at all.
	p := Packet{Op: OpRaw, Count: 8}
	n := RawElemsPerPacket(Int)
	for i := 0; i < n; i++ {
		p.PutRawElem(i, Int, uint64(i+1)*2654435761)
	}
	got := DecodeRaw(p.EncodeRaw(), p.Count)
	if got != p {
		t.Fatalf("raw wire roundtrip:\n got %+v\nwant %+v", got, p)
	}
	if lossy := Decode(p.Encode()); lossy.Extra == p.Extra {
		t.Fatal("sanity: the headered wire form should not preserve Extra")
	}
}

func TestRawCapacityBeatsPacketSwitching(t *testing.T) {
	// The whole point of circuit switching: every datatype packs at
	// least as many elements per wire word, usually more.
	for _, dt := range []Datatype{Char, Short, Int, Float, Double} {
		if RawElemsPerPacket(dt) <= dt.ElemsPerPacket() {
			t.Errorf("%v: raw %d should exceed packet-switched %d",
				dt, RawElemsPerPacket(dt), dt.ElemsPerPacket())
		}
	}
}
