package apps

import (
	"fmt"

	smi "repro/internal/core"
)

// IncastResult reports an N-senders-to-one-receiver congestion
// measurement: the transport ablation's key workload.
type IncastResult struct {
	Senders int   // concurrent senders (ranks 1..Senders)
	Elems   int   // elements per flow
	Cycles  int64 // completion cycle of the aggregator
	// FlowCycles[i] is the cycle sender i's flow finished draining at
	// the aggregator (flows drain in port order).
	FlowCycles []int64
	// TailCycles is the slowest flow's completion — the incast tail the
	// receiver-driven transport is built to cut.
	TailCycles int64
	// MeanCycles averages the per-flow completions.
	MeanCycles float64
	Net        smi.Stats
}

// Incast converges one flow from each of ranks 1..senders onto rank 0,
// each carrying elems 32-bit integers on its own port. The aggregator
// drains the flows sequentially in port order — the pattern that makes
// incast pathological: every undrained flow keeps pushing into buffers
// the receiver is not reading yet, so eager senders head-of-line-block
// shared links (§3.3's motivation for credit flow control), credited
// senders pay a round-trip per credit tile, and receiver-driven pacing
// holds backlogs at the senders until the aggregator's buffer frees.
//
// cfg.Mode selects the per-flow machinery as in Bandwidth (use
// ModeCredited for a sender-driven baseline that cannot deadlock; the
// default eager ModePacket is safe under receiver-driven pacing).
// BufferElems defaults to 256 — small enough that pacing, credits, and
// backpressure all engage at a few thousand elements per flow.
func Incast(cfg NetConfig, senders, elems int) (IncastResult, error) {
	if senders < 1 {
		return IncastResult{}, fmt.Errorf("apps: incast needs at least one sender, got %d", senders)
	}
	if elems < 1 {
		return IncastResult{}, fmt.Errorf("apps: incast needs at least one element per flow, got %d", elems)
	}
	ranks := make([]int, senders+1)
	for i := range ranks {
		ranks[i] = i
	}
	if err := cfg.checkRanks(ranks...); err != nil {
		return IncastResult{}, err
	}
	vec := cfg.VecWidth
	if vec <= 0 {
		vec = 8
	}
	buf := cfg.BufferElems
	if buf <= 0 {
		buf = 256
	}
	specs := make([]smi.PortSpec, senders)
	for i := range specs {
		specs[i] = smi.PortSpec{Port: i, Type: smi.Int, VecWidth: vec, BufferElems: buf}
		cfg.Mode.apply(&specs[i], cfg.StreamBatch)
	}
	c, err := cfg.cluster(smi.ProgramSpec{Ports: specs})
	if err != nil {
		return IncastResult{}, err
	}
	for s := 0; s < senders; s++ {
		s := s
		c.OnRank(s+1, "incast-src", func(x *smi.Ctx) {
			ch, err := x.OpenSend(smi.ChannelOpts{Count: elems, Type: smi.Int, Dst: 0, Port: s})
			if err != nil {
				panic(err)
			}
			data := make([]int32, elems)
			for i := range data {
				data[i] = int32(s*1_000_003 + i)
			}
			if _, err := smi.PushSlice(ch, data); err != nil {
				panic(err)
			}
		})
	}
	flowCycles := make([]int64, senders)
	c.OnRank(0, "incast-sink", func(x *smi.Ctx) {
		for s := 0; s < senders; s++ {
			ch, err := x.OpenRecv(smi.ChannelOpts{Count: elems, Type: smi.Int, Src: s + 1, Port: s})
			if err != nil {
				panic(err)
			}
			got := make([]int32, elems)
			if _, err := smi.PopSlice(ch, got); err != nil {
				panic(err)
			}
			for i := range got {
				if got[i] != int32(s*1_000_003+i) {
					panic(fmt.Sprintf("incast: flow %d element %d corrupted: %d", s, i, got[i]))
				}
			}
			flowCycles[s] = x.Now()
		}
	})
	st, err := c.Run()
	if err != nil {
		return IncastResult{}, err
	}
	res := IncastResult{
		Senders:    senders,
		Elems:      elems,
		Cycles:     st.Cycles,
		FlowCycles: flowCycles,
		Net:        st,
	}
	var sum int64
	for _, fc := range flowCycles {
		if fc > res.TailCycles {
			res.TailCycles = fc
		}
		sum += fc
	}
	res.MeanCycles = float64(sum) / float64(senders)
	return res, nil
}
