package apps

import (
	"fmt"

	smi "repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Stencil (§5.4.2) runs a 4-point 2D stencil over an N x N grid for a
// number of timesteps, decomposed spatially over RanksX x RanksY FPGAs.
// Each rank sweeps its block with perfect on-chip reuse, reading the
// previous timestep from memory at the rate its DDR banks allow, and
// exchanges halo regions with its four neighbors through SMI channels
// opened per timestep on distinct ports (paper Listing 3 and Fig 14).
// Values outside the global grid are fixed at zero (Dirichlet boundary).
//
// Each rank runs one compute kernel and four independent halo-sender
// kernels; the senders stream boundary data of the previous timestep
// while the sweep consumes remote halos, overlapping communication with
// computation exactly as the paper's inequality analysis assumes.
type StencilConfig struct {
	N         int // global grid edge (N x N)
	Timesteps int
	RanksX    int // rank grid rows
	RanksY    int // rank grid columns
	Banks     int // DDR banks used per FPGA (1..4)
	// Verify computes real values for correctness checks; large runs set
	// it false to model timing only.
	Verify bool
	// Topology overrides the interconnect (must have at least
	// RanksX*RanksY devices). Defaults to a 2D torus (or a bus when one
	// rank dimension is 1).
	Topology  *topology.Topology
	MaxCycles int64
	// RoutingPolicy selects the route generator (use routing.UpDown with
	// fault specs that kill cables: failover regenerates up*/down* routes).
	RoutingPolicy routing.Policy
	// Faults attaches a fault-injection schedule to the links.
	Faults *fault.Spec
	// Scheduler selects the simulator's scheduling mode (default
	// sim.SchedEvent); cycle counts are identical in all modes.
	Scheduler sim.SchedulerKind
	// Shards partitions the ranks into engine shards (see
	// smi.Config.Shards); 0 keeps the single-engine build.
	Shards int
	// Routes supplies precomputed routing tables (see smi.Config.Routes).
	Routes *routing.Routes
	// Progress/ProgressEvery install a cycle-progress observer (see
	// smi.Config.Progress).
	Progress      func(cycle int64)
	ProgressEvery int64
}

// StencilResult reports one stencil execution.
type StencilResult struct {
	Cycles     int64
	Micros     float64
	NsPerPoint float64     // time per grid point per timestep
	Grid       [][]float32 // assembled final grid when cfg.Verify
	Net        smi.Stats
}

// Halo ports: the direction names the side the halo arrives from.
const (
	portFromNorth = 1
	portFromSouth = 2
	portFromWest  = 3
	portFromEast  = 4
)

// stencilInit is the deterministic initial condition (exact in float32).
func stencilInit(i, j int) float32 { return float32((i*13+j*7)%17 - 8) }

// StencilReference computes the stencil sequentially.
func StencilReference(n, timesteps int) [][]float32 {
	cur := make([][]float32, n)
	next := make([][]float32, n)
	for i := range cur {
		cur[i] = make([]float32, n)
		next[i] = make([]float32, n)
		for j := range cur[i] {
			cur[i][j] = stencilInit(i, j)
		}
	}
	at := func(g [][]float32, i, j int) float32 {
		if i < 0 || i >= n || j < 0 || j >= n {
			return 0
		}
		return g[i][j]
	}
	for t := 0; t < timesteps; t++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[i][j] = 0.25 * (at(cur, i-1, j) + at(cur, i+1, j) + at(cur, i, j-1) + at(cur, i, j+1))
			}
		}
		cur, next = next, cur
	}
	return cur
}

// stencilRank is the mutable per-rank state shared between the compute
// kernel and its halo senders (they always read the previous-timestep
// array, which only swaps after all five kernels synchronize).
type stencilRank struct {
	cur, next [][]float32
}

// Stencil runs the distributed stencil and reports timing (and the
// final grid under Verify).
func Stencil(cfg StencilConfig) (StencilResult, error) {
	if cfg.RanksX < 1 || cfg.RanksY < 1 {
		return StencilResult{}, fmt.Errorf("stencil: invalid rank grid %dx%d", cfg.RanksX, cfg.RanksY)
	}
	if cfg.N%cfg.RanksX != 0 || cfg.N%cfg.RanksY != 0 {
		return StencilResult{}, fmt.Errorf("stencil: grid %d not divisible by rank grid %dx%d", cfg.N, cfg.RanksX, cfg.RanksY)
	}
	ranks := cfg.RanksX * cfg.RanksY
	topo := cfg.Topology
	if topo == nil {
		var err error
		switch {
		case ranks == 1:
			topo, err = topology.Bus(2)
		case cfg.RanksX >= 2 && cfg.RanksY >= 2:
			topo, err = topology.Torus2D(cfg.RanksX, cfg.RanksY)
		default:
			topo, err = topology.Bus(ranks)
		}
		if err != nil {
			return StencilResult{}, err
		}
	}
	if topo.Devices < ranks {
		return StencilResult{}, fmt.Errorf("stencil: topology has %d devices, need %d", topo.Devices, ranks)
	}

	H := cfg.N / cfg.RanksX // block rows
	W := cfg.N / cfg.RanksY // block cols
	// Halo channels use the eager protocol: the endpoint buffer (the
	// channel's asynchronicity degree k) covers the worst-case
	// outstanding data, so a sender commits its halo to the network and
	// proceeds while the receiving sweep consumes it at its own pace
	// (SS3.3). The go/done synchronization lets a neighbor run at most
	// one timestep ahead, so up to two halos can be in flight per edge;
	// buffering both keeps application backpressure out of the shared
	// transport entirely — a CKR is never head-of-line blocked by a full
	// endpoint, which would otherwise couple unrelated flows and can
	// deadlock when a failover reroutes transit traffic through this
	// rank (message-dependent deadlock).
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program: smi.ProgramSpec{Ports: []smi.PortSpec{
			{Port: portFromNorth, Type: smi.Float, BufferElems: 2*W + 8},
			{Port: portFromSouth, Type: smi.Float, BufferElems: 2*W + 8},
			{Port: portFromWest, Type: smi.Float, BufferElems: 2*H + 8},
			{Port: portFromEast, Type: smi.Float, BufferElems: 2*H + 8},
		}},
		MaxCycles:     cfg.MaxCycles,
		RoutingPolicy: cfg.RoutingPolicy,
		Routes:        cfg.Routes,
		Faults:        cfg.Faults,
		Scheduler:     cfg.Scheduler,
		Shards:        cfg.Shards,
		Progress:      cfg.Progress,
		ProgressEvery: cfg.ProgressEvery,
	})
	if err != nil {
		return StencilResult{}, err
	}
	board := c.Board()
	banks := cfg.Banks
	if banks <= 0 {
		banks = board.MemBanks
	}
	epc := board.ElemsPerCycle(4, banks) // stencil elements per cycle
	rowCycles := int64((W+epc-1)/epc) + int64(board.RowOverheadCycles)

	res := StencilResult{}
	states := make([]*stencilRank, ranks)
	for r := range states {
		st := &stencilRank{}
		if cfg.Verify {
			st.cur = make([][]float32, H)
			st.next = make([][]float32, H)
			rx, ry := r/cfg.RanksY, r%cfg.RanksY
			for i := 0; i < H; i++ {
				st.cur[i] = make([]float32, W)
				st.next[i] = make([]float32, W)
				for j := 0; j < W; j++ {
					st.cur[i][j] = stencilInit(rx*H+i, ry*W+j)
				}
			}
		}
		states[r] = st
	}

	type sender struct {
		name     string
		neighbor int // destination rank
		port     int // destination port
		count    int
		elem     func(st *stencilRank, k int) float32
	}
	for r := 0; r < ranks; r++ {
		r := r
		rx, ry := r/cfg.RanksY, r%cfg.RanksY
		st := states[r]
		var senders []sender
		hasN, hasS, hasW, hasE := rx > 0, rx < cfg.RanksX-1, ry > 0, ry < cfg.RanksY-1
		if hasS {
			senders = append(senders, sender{"southward", r + cfg.RanksY, portFromNorth, W,
				func(st *stencilRank, k int) float32 {
					if st.cur == nil {
						return 0
					}
					return st.cur[H-1][k]
				}})
		}
		if hasN {
			senders = append(senders, sender{"northward", r - cfg.RanksY, portFromSouth, W,
				func(st *stencilRank, k int) float32 {
					if st.cur == nil {
						return 0
					}
					return st.cur[0][k]
				}})
		}
		if hasE {
			senders = append(senders, sender{"eastward", r + 1, portFromWest, H,
				func(st *stencilRank, k int) float32 {
					if st.cur == nil {
						return 0
					}
					return st.cur[k][W-1]
				}})
		}
		if hasW {
			senders = append(senders, sender{"westward", r - 1, portFromEast, H,
				func(st *stencilRank, k int) float32 {
					if st.cur == nil {
						return 0
					}
					return st.cur[k][0]
				}})
		}

		// Per-sender synchronization tokens: "go" at timestep start,
		// "done" once the halo is fully committed to the network.
		goStreams := make([]*smi.Stream, len(senders))
		doneStreams := make([]*smi.Stream, len(senders))
		for si, sd := range senders {
			goStreams[si] = c.NewStreamOn(r, fmt.Sprintf("r%d.%s.go", r, sd.name), 1)
			doneStreams[si] = c.NewStreamOn(r, fmt.Sprintf("r%d.%s.done", r, sd.name), 1)
		}

		for si, sd := range senders {
			si, sd := si, sd
			c.OnRank(r, "send-"+sd.name, func(x *smi.Ctx) {
				halo := make([]float32, sd.count)
				for t := 0; t < cfg.Timesteps; t++ {
					x.PopStream(goStreams[si])
					ch, err := x.OpenSend(smi.ChannelOpts{Count: sd.count, Type: smi.Float, Dst: sd.neighbor, Port: sd.port})
					if err != nil {
						panic(err)
					}
					for k := range halo {
						halo[k] = sd.elem(st, k)
					}
					if _, err := smi.PushSlice(ch, halo); err != nil {
						panic(err)
					}
					x.PushStream(doneStreams[si], 1)
				}
			})
		}

		c.OnRank(r, "compute", func(x *smi.Ctx) {
			northRow := make([]float32, W)
			southRow := make([]float32, W)
			x.Sleep(int64(board.LaunchOverheadCycles))
			for t := 0; t < cfg.Timesteps; t++ {
				for si := range senders {
					x.PushStream(goStreams[si], 1)
				}
				var chN, chS, chW, chE *smi.RecvChannel
				var err error
				if hasN {
					if chN, err = x.OpenRecv(smi.ChannelOpts{Count: W, Type: smi.Float, Src: r - cfg.RanksY, Port: portFromNorth}); err != nil {
						panic(err)
					}
				}
				if hasS {
					if chS, err = x.OpenRecv(smi.ChannelOpts{Count: W, Type: smi.Float, Src: r + cfg.RanksY, Port: portFromSouth}); err != nil {
						panic(err)
					}
				}
				if hasW {
					if chW, err = x.OpenRecv(smi.ChannelOpts{Count: H, Type: smi.Float, Src: r - 1, Port: portFromWest}); err != nil {
						panic(err)
					}
				}
				if hasE {
					if chE, err = x.OpenRecv(smi.ChannelOpts{Count: H, Type: smi.Float, Src: r + 1, Port: portFromEast}); err != nil {
						panic(err)
					}
				}
				for i := 0; i < H; i++ {
					if i == 0 && hasN {
						if _, err := smi.PopSlice(chN, northRow); err != nil {
							panic(err)
						}
					}
					if i == H-1 && hasS {
						if _, err := smi.PopSlice(chS, southRow); err != nil {
							panic(err)
						}
					}
					var westVal, eastVal float32
					if hasW {
						westVal = chW.PopFloat()
					}
					if hasE {
						eastVal = chE.PopFloat()
					}
					// The pipelined sweep of one row: reads at the memory
					// rate, one vector per cycle.
					x.Sleep(rowCycles)
					if cfg.Verify {
						cur, next := st.cur, st.next
						for j := 0; j < W; j++ {
							var up, down, left, right float32
							if i > 0 {
								up = cur[i-1][j]
							} else if hasN {
								up = northRow[j]
							}
							if i < H-1 {
								down = cur[i+1][j]
							} else if hasS {
								down = southRow[j]
							}
							if j > 0 {
								left = cur[i][j-1]
							} else if hasW {
								left = westVal
							}
							if j < W-1 {
								right = cur[i][j+1]
							} else if hasE {
								right = eastVal
							}
							next[i][j] = 0.25 * (up + down + left + right)
						}
					}
				}
				for si := range senders {
					x.PopStream(doneStreams[si])
				}
				if cfg.Verify {
					st.cur, st.next = st.next, st.cur
				}
			}
		})
	}

	stats, err := c.Run()
	if err != nil {
		return StencilResult{}, err
	}
	res.Cycles, res.Micros = stats.Cycles, stats.Micros
	res.Net = stats
	res.NsPerPoint = stats.Micros * 1e3 / (float64(cfg.N) * float64(cfg.N) * float64(cfg.Timesteps))
	if cfg.Verify {
		res.Grid = make([][]float32, cfg.N)
		for i := range res.Grid {
			res.Grid[i] = make([]float32, cfg.N)
		}
		for r := 0; r < ranks; r++ {
			rx, ry := r/cfg.RanksY, r%cfg.RanksY
			for i := 0; i < H; i++ {
				copy(res.Grid[rx*H+i][ry*W:(ry+1)*W], states[r].cur[i])
			}
		}
	}
	return res, nil
}
