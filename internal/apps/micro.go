// Package apps implements the paper's evaluation workloads on top of
// the SMI library: the four microbenchmarks of §5.3 (bandwidth, latency,
// injection rate, collectives) and the two distributed applications of
// §5.4 (GESUMMV and a 4-point stencil).
package apps

import (
	"fmt"

	smi "repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// TransferMode selects the point-to-point transfer machinery a
// microbenchmark's bulk port uses.
type TransferMode uint8

// Transfer modes.
const (
	// ModePacket is the default eager packet-switched path.
	ModePacket TransferMode = iota
	// ModeCredited adds the §3.3 credit-based flow control the paper
	// prescribes when the endpoint buffer is smaller than the message.
	ModeCredited
	// ModeCircuit uses §4.2 circuit switching: whole-message raw-word
	// transfer behind a single route lock.
	ModeCircuit
	// ModeStreaming uses the streaming large-message path: rendezvous
	// handshake, then cut-through fragment trains of raw words.
	ModeStreaming
)

func (m TransferMode) String() string {
	switch m {
	case ModePacket:
		return "packet"
	case ModeCredited:
		return "credited"
	case ModeCircuit:
		return "circuit"
	case ModeStreaming:
		return "streaming"
	default:
		return fmt.Sprintf("TransferMode(%d)", uint8(m))
	}
}

// ParseTransferMode maps a wire name ("packet", "credited", "circuit",
// "streaming"; "" means packet) to a TransferMode.
func ParseTransferMode(s string) (TransferMode, error) {
	switch s {
	case "", "packet":
		return ModePacket, nil
	case "credited":
		return ModeCredited, nil
	case "circuit":
		return ModeCircuit, nil
	case "streaming":
		return ModeStreaming, nil
	default:
		return 0, fmt.Errorf("apps: unknown transfer mode %q (want packet, credited, circuit, or streaming)", s)
	}
}

// apply configures a point-to-point PortSpec for the mode.
func (m TransferMode) apply(spec *smi.PortSpec, streamBatch int) {
	spec.Credited = m == ModeCredited
	spec.Circuit = m == ModeCircuit
	spec.Streaming = m == ModeStreaming
	spec.StreamBatch = streamBatch
}

// NetConfig bundles the cluster knobs the microbenchmarks sweep.
type NetConfig struct {
	Topology  *topology.Topology
	Transport transport.Config
	// RoutingPolicy selects the route generator (default shortest-path).
	RoutingPolicy routing.Policy
	// LinkLatency overrides the link latency in cycles (0 = default).
	LinkLatency int64
	// VecWidth is the application datapath width in elements per cycle.
	VecWidth int
	// BufferElems is the endpoint buffer size (asynchronicity degree).
	BufferElems int
	// Mode selects the P2P transfer machinery for bulk microbenchmarks
	// (default ModePacket).
	Mode TransferMode
	// StreamBatch is the streaming fragment size in raw words
	// (ModeStreaming only; 0 picks the port default).
	StreamBatch int
	// MaxCycles optionally bounds the simulation.
	MaxCycles int64
	// Faults attaches a fault-injection schedule (enables the reliable
	// link layer); Reliable enables the protocol without faults.
	Faults   *fault.Spec
	Reliable bool
	// Scheduler selects the simulator's scheduling mode (default
	// sim.SchedEvent); cycle counts are identical in all modes.
	Scheduler sim.SchedulerKind
	// Shards partitions the ranks into engine shards (see
	// smi.Config.Shards); 0 keeps the single-engine build.
	Shards int
	// Routes supplies precomputed routing tables (see smi.Config.Routes).
	Routes *routing.Routes
	// Progress/ProgressEvery install a cycle-progress observer (see
	// smi.Config.Progress).
	Progress      func(cycle int64)
	ProgressEvery int64
}

// cluster translates the shared NetConfig knobs into an smi.Config with
// the given program.
func (cfg NetConfig) cluster(prog smi.ProgramSpec) (*smi.Cluster, error) {
	return smi.NewCluster(smi.Config{
		Topology:      cfg.Topology,
		Program:       prog,
		Transport:     cfg.Transport,
		RoutingPolicy: cfg.RoutingPolicy,
		Routes:        cfg.Routes,
		LinkLatency:   cfg.LinkLatency,
		MaxCycles:     cfg.MaxCycles,
		Faults:        cfg.Faults,
		Reliable:      cfg.Reliable,
		Scheduler:     cfg.Scheduler,
		Shards:        cfg.Shards,
		Progress:      cfg.Progress,
		ProgressEvery: cfg.ProgressEvery,
	})
}

// checkRanks validates that every named rank exists in the topology and
// that the ranks are pairwise distinct, so a malformed request fails
// with an error instead of deadlocking a run on a never-registered rank
// program.
func (cfg NetConfig) checkRanks(ranks ...int) error {
	if cfg.Topology == nil {
		return fmt.Errorf("apps: config needs a topology")
	}
	for i, r := range ranks {
		if r < 0 || r >= cfg.Topology.Devices {
			return fmt.Errorf("apps: rank %d out of range [0,%d)", r, cfg.Topology.Devices)
		}
		for _, s := range ranks[:i] {
			if s == r {
				return fmt.Errorf("apps: rank %d named twice", r)
			}
		}
	}
	return nil
}

// checkGroup validates a collective over ranks [0, ranks).
func (cfg NetConfig) checkGroup(ranks int) error {
	if cfg.Topology == nil {
		return fmt.Errorf("apps: config needs a topology")
	}
	if ranks < 2 || ranks > cfg.Topology.Devices {
		return fmt.Errorf("apps: collective over %d ranks outside [2,%d]", ranks, cfg.Topology.Devices)
	}
	return nil
}

// BandwidthResult reports one bandwidth measurement.
type BandwidthResult struct {
	Bytes  int64   // payload bytes transferred
	Cycles int64   // completion cycle of the receiver
	Micros float64 // simulated microseconds
	Gbps   float64 // effective payload bandwidth
	Hops   int     // network distance between the endpoints
	Net    smi.Stats
}

// Bandwidth streams elems 32-bit integers from rank src to rank dst and
// reports the achieved payload bandwidth — the §5.3.1 microbenchmark.
// The sender uses a vectorized datapath wide enough to saturate one
// packet per cycle unless cfg.VecWidth says otherwise. cfg.Mode selects
// the transfer machinery (packet, credited, circuit, or streaming); the
// endpoints move data through the bulk PushSlice/PopSlice API.
func Bandwidth(cfg NetConfig, src, dst, elems int) (BandwidthResult, error) {
	vec := cfg.VecWidth
	if vec <= 0 {
		vec = 8 // enough to fill a 7-int packet every cycle
	}
	buf := cfg.BufferElems
	if buf <= 0 {
		buf = 4096
	}
	if err := cfg.checkRanks(src, dst); err != nil {
		return BandwidthResult{}, err
	}
	spec := smi.PortSpec{Port: 0, Type: smi.Int, VecWidth: vec, BufferElems: buf}
	cfg.Mode.apply(&spec, cfg.StreamBatch)
	c, err := cfg.cluster(smi.ProgramSpec{Ports: []smi.PortSpec{spec}})
	if err != nil {
		return BandwidthResult{}, err
	}
	data := make([]int32, elems)
	for i := range data {
		data[i] = int32(i)
	}
	c.OnRank(src, "source", func(x *smi.Ctx) {
		ch, err := x.OpenSend(smi.ChannelOpts{Count: elems, Type: smi.Int, Dst: dst, Port: 0})
		if err != nil {
			panic(err)
		}
		if _, err := smi.PushSlice(ch, data); err != nil {
			panic(err)
		}
	})
	c.OnRank(dst, "sink", func(x *smi.Ctx) {
		ch, err := x.OpenRecv(smi.ChannelOpts{Count: elems, Type: smi.Int, Src: src, Port: 0})
		if err != nil {
			panic(err)
		}
		got := make([]int32, elems)
		if _, err := smi.PopSlice(ch, got); err != nil {
			panic(err)
		}
		for i := range got {
			if got[i] != int32(i) {
				panic(fmt.Sprintf("bandwidth: element %d corrupted: %d", i, got[i]))
			}
		}
	})
	st, err := c.Run()
	if err != nil {
		return BandwidthResult{}, err
	}
	bytes := int64(elems) * 4
	res := BandwidthResult{
		Bytes:  bytes,
		Cycles: st.Cycles,
		Micros: st.Micros,
		Hops:   c.Routes().Hops(src, dst),
		Net:    st,
	}
	res.Gbps = float64(bytes) * 8 / (st.Micros * 1e3)
	return res, nil
}

// PingPongResult reports a latency measurement.
type PingPongResult struct {
	Rounds    int
	Cycles    int64
	LatencyUs float64 // half round-trip time
	Hops      int
}

// PingPong bounces a single-element message between two ranks and
// reports the one-way latency — the §5.3.2 microbenchmark and Table 3.
func PingPong(cfg NetConfig, a, b, rounds int) (PingPongResult, error) {
	if err := cfg.checkRanks(a, b); err != nil {
		return PingPongResult{}, err
	}
	c, err := cfg.cluster(smi.ProgramSpec{Ports: []smi.PortSpec{
		{Port: 0, Type: smi.Int}, // a -> b
		{Port: 1, Type: smi.Int}, // b -> a
	}})
	if err != nil {
		return PingPongResult{}, err
	}
	c.OnRank(a, "ping", func(x *smi.Ctx) {
		for r := 0; r < rounds; r++ {
			s, _ := x.OpenSend(smi.ChannelOpts{Count: 1, Type: smi.Int, Dst: b, Port: 0})
			smi.Push(s, int32(r))
			v, _ := x.OpenRecv(smi.ChannelOpts{Count: 1, Type: smi.Int, Src: b, Port: 1})
			if got := smi.Pop[int32](v); got != int32(r) {
				panic(fmt.Sprintf("pingpong: round %d echoed %d", r, got))
			}
		}
	})
	c.OnRank(b, "pong", func(x *smi.Ctx) {
		for r := 0; r < rounds; r++ {
			v, _ := x.OpenRecv(smi.ChannelOpts{Count: 1, Type: smi.Int, Src: a, Port: 0})
			got := smi.Pop[int32](v)
			s, _ := x.OpenSend(smi.ChannelOpts{Count: 1, Type: smi.Int, Dst: a, Port: 1})
			smi.Push(s, got)
		}
	})
	st, err := c.Run()
	if err != nil {
		return PingPongResult{}, err
	}
	return PingPongResult{
		Rounds:    rounds,
		Cycles:    st.Cycles,
		LatencyUs: st.Micros / float64(2*rounds),
		Hops:      c.Routes().Hops(a, b),
	}, nil
}

// InjectionResult reports an injection-rate measurement.
type InjectionResult struct {
	Messages       int
	Cycles         int64
	CyclesPerMsg   float64
	MsgsPerSecond  float64
	R              int
	ClockFrequency float64
}

// Injection measures how often a CKS accepts a new single-element
// message from the same application endpoint — the §5.3.3
// microbenchmark and Table 4. The sender opens a fresh transient channel
// per message (channel creation is zero-overhead), so every message is
// one network packet.
func Injection(cfg NetConfig, messages int) (InjectionResult, error) {
	if err := cfg.checkRanks(0, 1); err != nil {
		return InjectionResult{}, err
	}
	c, err := cfg.cluster(smi.ProgramSpec{Ports: []smi.PortSpec{{Port: 0, Type: smi.Int, BufferElems: 64}}})
	if err != nil {
		return InjectionResult{}, err
	}
	var start, end int64
	c.OnRank(0, "injector", func(x *smi.Ctx) {
		start = x.Now()
		for i := 0; i < messages; i++ {
			ch, err := x.OpenSend(smi.ChannelOpts{Count: 1, Type: smi.Int, Dst: 1, Port: 0})
			if err != nil {
				panic(err)
			}
			smi.Push(ch, int32(i))
		}
		end = x.Now()
	})
	c.OnRank(1, "sink", func(x *smi.Ctx) {
		for i := 0; i < messages; i++ {
			ch, err := x.OpenRecv(smi.ChannelOpts{Count: 1, Type: smi.Int, Src: 0, Port: 0})
			if err != nil {
				panic(err)
			}
			smi.Pop[int32](ch)
		}
	})
	if _, err := c.Run(); err != nil {
		return InjectionResult{}, err
	}
	cpm := float64(end-start) / float64(messages)
	return InjectionResult{
		Messages:       messages,
		Cycles:         end - start,
		CyclesPerMsg:   cpm,
		MsgsPerSecond:  c.Clock().Hz / cpm,
		R:              cfg.Transport.R,
		ClockFrequency: c.Clock().Hz,
	}, nil
}

// CollectiveResult reports one collective timing.
type CollectiveResult struct {
	Elems  int
	Ranks  int
	Cycles int64
	Micros float64
	Net    smi.Stats
}

// BcastTime broadcasts elems float32 elements from rank 0 to the first
// `ranks` devices of the topology and reports the completion time — one
// point of Fig 10.
func BcastTime(cfg NetConfig, ranks, elems int) (CollectiveResult, error) {
	buf := cfg.BufferElems
	if buf <= 0 {
		buf = 512
	}
	if err := cfg.checkGroup(ranks); err != nil {
		return CollectiveResult{}, err
	}
	c, err := cfg.cluster(smi.ProgramSpec{Ports: []smi.PortSpec{{Port: 0, Kind: smi.Bcast, Type: smi.Float, BufferElems: buf}}})
	if err != nil {
		return CollectiveResult{}, err
	}
	for r := 0; r < ranks; r++ {
		r := r
		c.OnRank(r, "bcast", func(x *smi.Ctx) {
			comm, err := x.CommWorld().Sub(0, ranks)
			if err != nil {
				panic(err)
			}
			ch, err := x.OpenBcastChannel(elems, smi.Float, 0, 0, comm)
			if err != nil {
				panic(err)
			}
			for i := 0; i < elems; i++ {
				v := float32(-1)
				if ch.Root() {
					v = float32(i)
				}
				got := ch.BcastFloat(v)
				if got != float32(i) {
					panic(fmt.Sprintf("bcast: rank %d element %d = %g", r, i, got))
				}
			}
		})
	}
	st, err := c.Run()
	if err != nil {
		return CollectiveResult{}, err
	}
	return CollectiveResult{Elems: elems, Ranks: ranks, Cycles: st.Cycles, Micros: st.Micros, Net: st}, nil
}

// ReduceTime sum-reduces elems float32 elements from the first `ranks`
// devices to rank 0 and reports the completion time — one point of
// Fig 11. creditElems sets the flow-control tile size C (0 = default).
func ReduceTime(cfg NetConfig, ranks, elems, creditElems int) (CollectiveResult, error) {
	buf := cfg.BufferElems
	if buf <= 0 {
		buf = 512
	}
	if err := cfg.checkGroup(ranks); err != nil {
		return CollectiveResult{}, err
	}
	c, err := cfg.cluster(smi.ProgramSpec{Ports: []smi.PortSpec{{
		Port: 0, Kind: smi.Reduce, Type: smi.Float, ReduceOp: smi.Add,
		BufferElems: buf, CreditElems: creditElems,
	}}})
	if err != nil {
		return CollectiveResult{}, err
	}
	for r := 0; r < ranks; r++ {
		r := r
		c.OnRank(r, "reduce", func(x *smi.Ctx) {
			comm, err := x.CommWorld().Sub(0, ranks)
			if err != nil {
				panic(err)
			}
			ch, err := x.OpenReduceChannel(elems, smi.Float, smi.Add, 0, 0, comm)
			if err != nil {
				panic(err)
			}
			for i := 0; i < elems; i++ {
				got, ok := ch.ReduceFloat(float32(r + 1))
				if ok {
					want := float32(ranks * (ranks + 1) / 2)
					if got != want {
						panic(fmt.Sprintf("reduce: element %d = %g, want %g", i, got, want))
					}
				}
			}
		})
	}
	st, err := c.Run()
	if err != nil {
		return CollectiveResult{}, err
	}
	return CollectiveResult{Elems: elems, Ranks: ranks, Cycles: st.Cycles, Micros: st.Micros}, nil
}

// ScatterTime distributes elems float32 elements per rank from rank 0
// over the first `ranks` devices and reports the completion time.
func ScatterTime(cfg NetConfig, ranks, elems int) (CollectiveResult, error) {
	return oneToAllTime(cfg, ranks, elems, smi.Scatter)
}

// GatherTime collects elems float32 elements per rank at rank 0 from the
// first `ranks` devices and reports the completion time.
func GatherTime(cfg NetConfig, ranks, elems int) (CollectiveResult, error) {
	return oneToAllTime(cfg, ranks, elems, smi.Gather)
}

func oneToAllTime(cfg NetConfig, ranks, elems int, kind smi.PortKind) (CollectiveResult, error) {
	buf := cfg.BufferElems
	if buf <= 0 {
		buf = 512
	}
	if err := cfg.checkGroup(ranks); err != nil {
		return CollectiveResult{}, err
	}
	c, err := cfg.cluster(smi.ProgramSpec{Ports: []smi.PortSpec{{Port: 0, Kind: kind, Type: smi.Float, BufferElems: buf}}})
	if err != nil {
		return CollectiveResult{}, err
	}
	for r := 0; r < ranks; r++ {
		r := r
		c.OnRank(r, kind.String(), func(x *smi.Ctx) {
			comm, err := x.CommWorld().Sub(0, ranks)
			if err != nil {
				panic(err)
			}
			switch kind {
			case smi.Scatter:
				ch, err := x.OpenScatterChannel(elems, smi.Float, 0, 0, comm)
				if err != nil {
					panic(err)
				}
				if ch.Root() {
					for i := 0; i < elems*ranks; i++ {
						ch.Push(uint64(i))
					}
				}
				for i := 0; i < elems; i++ {
					ch.Pop()
				}
			case smi.Gather:
				ch, err := x.OpenGatherChannel(elems, smi.Float, 0, 0, comm)
				if err != nil {
					panic(err)
				}
				for i := 0; i < elems; i++ {
					ch.Push(uint64(i))
				}
				if ch.Root() {
					for i := 0; i < elems*ranks; i++ {
						ch.Pop()
					}
				}
			}
		})
	}
	st, err := c.Run()
	if err != nil {
		return CollectiveResult{}, err
	}
	return CollectiveResult{Elems: elems, Ranks: ranks, Cycles: st.Cycles, Micros: st.Micros}, nil
}
