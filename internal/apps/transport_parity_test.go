package apps

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/transport"
)

// TestTransportSchedulerParity extends the four-way scheduler parity
// matrix (dense/event/shard/shard-adaptive) to the receiver-driven
// transport: the pacing kernels keep all state engine-local and read
// only committed FIFO state, so cycle counts, packet counts, grant
// counts, and per-flow completions must be bit-identical under every
// scheduler — and identical between transports wherever no paced P2P
// traffic flows (collectives).
func TestTransportSchedulerParity(t *testing.T) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := NetConfig{Topology: topo, RoutingPolicy: routing.UpDown}
	base.Transport.Kind = transport.ReceiverDrivenKind

	t.Run("incast", func(t *testing.T) {
		results := make([]IncastResult, len(schedVariants))
		for i, sv := range schedVariants {
			cfg := base
			cfg.Scheduler, cfg.Shards = sv.kind, sv.shards
			res, err := Incast(cfg, 4, 2000)
			if err != nil {
				t.Fatalf("%s: %v", sv.name, err)
			}
			results[i] = res
		}
		for i := 1; i < len(results); i++ {
			if results[i].Cycles != results[0].Cycles {
				t.Errorf("%s finished at cycle %d, dense at %d", schedVariants[i].name, results[i].Cycles, results[0].Cycles)
			}
			if results[i].Net.PacketsDelivered != results[0].Net.PacketsDelivered {
				t.Errorf("%s delivered %d packets, dense %d",
					schedVariants[i].name, results[i].Net.PacketsDelivered, results[0].Net.PacketsDelivered)
			}
			if results[i].Net.Grants != results[0].Net.Grants {
				t.Errorf("%s issued %d grants, dense %d",
					schedVariants[i].name, results[i].Net.Grants, results[0].Net.Grants)
			}
			for f := range results[i].FlowCycles {
				if results[i].FlowCycles[f] != results[0].FlowCycles[f] {
					t.Errorf("%s flow %d finished at cycle %d, dense at %d",
						schedVariants[i].name, f, results[i].FlowCycles[f], results[0].FlowCycles[f])
				}
			}
		}
		if results[0].Net.Grants == 0 {
			t.Error("receiver-driven incast issued no grants: pacing never engaged")
		}
		if results[0].Net.Transport != "receiver-driven" {
			t.Errorf("stats report transport %q, want receiver-driven", results[0].Net.Transport)
		}
	})

	t.Run("bandwidth", func(t *testing.T) {
		results := make([]BandwidthResult, len(schedVariants))
		for i, sv := range schedVariants {
			cfg := base
			cfg.Scheduler, cfg.Shards = sv.kind, sv.shards
			cfg.BufferElems = 256 // small buffer: grants must pace the flow
			res, err := Bandwidth(cfg, 0, 5, 20000)
			if err != nil {
				t.Fatalf("%s: %v", sv.name, err)
			}
			results[i] = res
		}
		for i := 1; i < len(results); i++ {
			if results[i].Cycles != results[0].Cycles {
				t.Errorf("%s finished at cycle %d, dense at %d", schedVariants[i].name, results[i].Cycles, results[0].Cycles)
			}
			if results[i].Net.Grants != results[0].Net.Grants {
				t.Errorf("%s issued %d grants, dense %d", schedVariants[i].name, results[i].Net.Grants, results[0].Net.Grants)
			}
		}
		if results[0].Net.Grants == 0 {
			t.Error("20000 elements through a 256-element buffer issued no grants")
		}
		// The shard legs must actually shard.
		if sh := results[2].Net.Sched; sh.Shards != 4 || sh.Syncs == 0 {
			t.Errorf("shard run did not run sharded: shards=%d syncs=%d", sh.Shards, sh.Syncs)
		}
	})

	t.Run("bcast", func(t *testing.T) {
		// Collective traffic is unpaced; receiver-driven must match the
		// sender-driven transport cycle for cycle on it.
		sd := NetConfig{Topology: topo, RoutingPolicy: routing.UpDown}
		ref, err := BcastTime(sd, 8, 2000)
		if err != nil {
			t.Fatal(err)
		}
		for _, sv := range schedVariants {
			cfg := base
			cfg.Scheduler, cfg.Shards = sv.kind, sv.shards
			res, err := BcastTime(cfg, 8, 2000)
			if err != nil {
				t.Fatalf("%s: %v", sv.name, err)
			}
			if res.Cycles != ref.Cycles {
				t.Errorf("%s: receiver-driven bcast at cycle %d, sender-driven at %d", sv.name, res.Cycles, ref.Cycles)
			}
			if res.Net.Grants != 0 {
				t.Errorf("%s: unpaced collective issued %d grants", sv.name, res.Net.Grants)
			}
		}
	})
}

// TestReceiverDrivenRejections pins the typed construction errors: the
// receiver-driven transport must fail loudly, not silently fall back to
// sender-driven, when combined with machinery its in-memory pacing ops
// cannot cross.
func TestReceiverDrivenRejections(t *testing.T) {
	topo, _ := topology.Bus(2)
	base := NetConfig{Topology: topo}
	base.Transport.Kind = transport.ReceiverDrivenKind

	t.Run("reliable", func(t *testing.T) {
		cfg := base
		cfg.Reliable = true
		_, err := Bandwidth(cfg, 0, 1, 100)
		if err == nil || !strings.Contains(err.Error(), "receiver-driven") {
			t.Fatalf("receiver-driven + reliable must be rejected, got %v", err)
		}
	})
	t.Run("faults", func(t *testing.T) {
		cfg := base
		cfg.Faults = &fault.Spec{Seed: 1, DropProb: 0.001}
		_, err := Bandwidth(cfg, 0, 1, 100)
		if err == nil || !strings.Contains(err.Error(), "receiver-driven") {
			t.Fatalf("receiver-driven + faults must be rejected, got %v", err)
		}
	})
	t.Run("circuit", func(t *testing.T) {
		cfg := base
		cfg.Mode = ModeCircuit
		_, err := Bandwidth(cfg, 0, 1, 100)
		if err == nil || !strings.Contains(err.Error(), "receiver-driven") {
			t.Fatalf("receiver-driven + circuit must be rejected, got %v", err)
		}
	})
	t.Run("streaming", func(t *testing.T) {
		cfg := base
		cfg.Mode = ModeStreaming
		_, err := Bandwidth(cfg, 0, 1, 100)
		if err == nil || !strings.Contains(err.Error(), "receiver-driven") {
			t.Fatalf("receiver-driven + streaming must be rejected, got %v", err)
		}
	})
	t.Run("credited-allowed", func(t *testing.T) {
		cfg := base
		cfg.Mode = ModeCredited
		cfg.BufferElems = 64
		if _, err := Bandwidth(cfg, 0, 1, 500); err != nil {
			t.Fatalf("credited mode composes with receiver-driven pacing: %v", err)
		}
	})
}

// TestIncastEagerDeadlockMotivation documents why the ablation exists:
// the same eager incast that deadlocks under the sender-driven
// transport (receiver drains flows in order, undrained flows
// head-of-line-block the fabric — §3.3's motivating pathology) runs to
// completion under receiver-driven pacing with no application-level
// credit protocol.
func TestIncastEagerDeadlockMotivation(t *testing.T) {
	topo, _ := topology.Bus(5)
	sd := NetConfig{Topology: topo, MaxCycles: 500_000}
	if _, err := Incast(sd, 4, 3000); err == nil {
		t.Fatal("eager sender-driven 4:1 incast should deadlock on sequential drain")
	}
	rd := NetConfig{Topology: topo, MaxCycles: 500_000}
	rd.Transport.Kind = transport.ReceiverDrivenKind
	res, err := Incast(rd, 4, 3000)
	if err != nil {
		t.Fatalf("receiver-driven eager incast must complete: %v", err)
	}
	if res.Net.Grants == 0 {
		t.Error("incast completed without grants: pacing never engaged")
	}
}
