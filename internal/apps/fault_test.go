package apps

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestMicrobenchZeroFaultParity guards the paper's headline numbers:
// enabling the reliability layer with an empty fault schedule must leave
// the bandwidth (Fig 9) and ping-pong latency (Table 3) measurements
// cycle-identical to the pristine simulator.
func TestMicrobenchZeroFaultParity(t *testing.T) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := NetConfig{Topology: topo, RoutingPolicy: routing.UpDown}
	withSpec := base
	withSpec.Faults = &fault.Spec{Seed: 7}

	bw0, err := Bandwidth(base, 0, 5, 20000)
	if err != nil {
		t.Fatal(err)
	}
	bw1, err := Bandwidth(withSpec, 0, 5, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if bw0.Cycles != bw1.Cycles {
		t.Fatalf("bandwidth run perturbed by idle fault layer: %d vs %d cycles", bw0.Cycles, bw1.Cycles)
	}

	pp0, err := PingPong(base, 0, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	pp1, err := PingPong(withSpec, 0, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if pp0.Cycles != pp1.Cycles {
		t.Fatalf("ping-pong perturbed by idle fault layer: %d vs %d cycles", pp0.Cycles, pp1.Cycles)
	}

	bc0, err := BcastTime(base, 8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	bc1, err := BcastTime(withSpec, 8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if bc0.Cycles != bc1.Cycles {
		t.Fatalf("bcast perturbed by idle fault layer: %d vs %d cycles", bc0.Cycles, bc1.Cycles)
	}
	if bc1.Net.Retransmits != 0 || bc1.Net.CrcErrors != 0 {
		t.Fatalf("zero-fault run did repair work: %+v", bc1.Net)
	}
}

// TestStencilSurvivesLinkDeath is the end-to-end failover acceptance
// test: a cable of the 8-FPGA torus dies permanently while a verified
// stencil halo exchange is in progress. The failover must regenerate
// deadlock-free routes and the final grid must still match the
// sequential reference bit for bit.
func TestStencilSurvivesLinkDeath(t *testing.T) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the cable between ranks 0 and 1 (they exchange east/west
	// halos every timestep, so the death hits live channel traffic).
	var dead *topology.Connection
	for i, conn := range topo.Connections {
		if (conn.A.Device == 0 && conn.B.Device == 1) || (conn.A.Device == 1 && conn.B.Device == 0) {
			dead = &topo.Connections[i]
			break
		}
	}
	if dead == nil {
		t.Fatal("no cable between ranks 0 and 1 in the torus")
	}
	cfg := StencilConfig{
		N: 32, Timesteps: 8, RanksX: 2, RanksY: 4, Verify: true,
		Topology:      topo,
		RoutingPolicy: routing.UpDown,
		Faults: &fault.Spec{Events: []fault.Event{
			{Link: fmt.Sprintf("%s->%s", dead.A, dead.B), Kind: fault.Kill, At: 1500},
		}},
	}
	res, err := Stencil(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Failovers != 1 {
		t.Fatalf("link death did not trigger exactly one failover (run of %d cycles): %+v", res.Cycles, res.Net)
	}
	want := StencilReference(cfg.N, cfg.Timesteps)
	for i := range want {
		for j := range want[i] {
			if res.Grid[i][j] != want[i][j] {
				t.Fatalf("grid[%d][%d] = %g, want %g: halo exchange corrupted by failover", i, j, res.Grid[i][j], want[i][j])
			}
		}
	}
	if res.Net.PacketsDropped != 0 {
		t.Fatalf("failover dropped packets: %+v", res.Net)
	}
}
