package apps

import (
	"math"
	"testing"

	"repro/internal/topology"
	"repro/internal/transport"
)

func netCfg(t *testing.T, build func() (*topology.Topology, error)) NetConfig {
	t.Helper()
	topo, err := build()
	if err != nil {
		t.Fatal(err)
	}
	return NetConfig{Topology: topo, Transport: transport.DefaultConfig()}
}

func TestBandwidthSaturatesLink(t *testing.T) {
	cfg := netCfg(t, func() (*topology.Topology, error) { return topology.Bus(8) })
	res, err := Bandwidth(cfg, 0, 1, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 1 {
		t.Fatalf("hops = %d, want 1", res.Hops)
	}
	// Payload peak is 35 Gbit/s (28 of 32 bytes per cycle at 156.25 MHz).
	if res.Gbps < 15 || res.Gbps > 35 {
		t.Fatalf("bandwidth = %.1f Gbit/s, expected a large fraction of the 35 Gbit/s payload peak", res.Gbps)
	}
}

func TestBandwidthIndependentOfHops(t *testing.T) {
	// "larger network distance (in the absence of contention) does not
	// affect the achieved bandwidth" (§5.3.1).
	cfg := netCfg(t, func() (*topology.Topology, error) { return topology.Bus(8) })
	r1, err := Bandwidth(cfg, 0, 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := Bandwidth(cfg, 0, 7, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r7.Hops != 7 {
		t.Fatalf("hops = %d, want 7", r7.Hops)
	}
	if math.Abs(r7.Gbps-r1.Gbps)/r1.Gbps > 0.05 {
		t.Fatalf("bandwidth varies with distance: %.2f at 1 hop vs %.2f at 7 hops", r1.Gbps, r7.Gbps)
	}
}

func TestPingPongLatencyScalesWithHops(t *testing.T) {
	cfg := netCfg(t, func() (*topology.Topology, error) { return topology.Bus(8) })
	var prev float64
	for _, hops := range []int{1, 4, 7} {
		res, err := PingPong(cfg, 0, hops, 4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops != hops {
			t.Fatalf("hops = %d, want %d", res.Hops, hops)
		}
		if res.LatencyUs <= prev {
			t.Fatalf("latency must grow with distance: %f at %d hops after %f", res.LatencyUs, hops, prev)
		}
		prev = res.LatencyUs
	}
	// Table 3 anchor: ~0.8 us at one hop.
	one, _ := PingPong(cfg, 0, 1, 4)
	if one.LatencyUs < 0.3 || one.LatencyUs > 1.6 {
		t.Fatalf("1-hop latency = %.3f us, want ~0.8 (Table 3)", one.LatencyUs)
	}
}

func TestInjectionRateTable4(t *testing.T) {
	topo, _ := topology.Bus(2)
	var prev float64 = 99
	for _, r := range []int{1, 4, 8, 16} {
		cfg := NetConfig{Topology: topo, Transport: transport.Config{R: r}}
		res, err := Injection(cfg, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if r == 1 && (res.CyclesPerMsg < 4.8 || res.CyclesPerMsg > 5.2) {
			t.Fatalf("R=1 injection = %.2f cycles, want ~5 (Table 4)", res.CyclesPerMsg)
		}
		if res.CyclesPerMsg >= prev {
			t.Fatalf("injection latency should fall with R: R=%d gave %.2f", r, res.CyclesPerMsg)
		}
		prev = res.CyclesPerMsg
	}
}

func TestBcastTimeGrowsWithRanksAndSize(t *testing.T) {
	cfg := netCfg(t, func() (*topology.Topology, error) { return topology.Torus2D(2, 4) })
	small4, err := BcastTime(cfg, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	small8, err := BcastTime(cfg, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	big8, err := BcastTime(cfg, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if small8.Micros <= small4.Micros {
		t.Fatalf("bcast with more ranks should take longer: %f vs %f", small8.Micros, small4.Micros)
	}
	if big8.Micros <= small8.Micros {
		t.Fatalf("bcast with more data should take longer: %f vs %f", big8.Micros, small8.Micros)
	}
}

func TestReduceTimeTopologySensitivity(t *testing.T) {
	// §5.3.4: the credit-based Reduce is latency sensitive, so its time
	// grows with the network diameter (bus slower than torus).
	torus := netCfg(t, func() (*topology.Topology, error) { return topology.Torus2D(2, 4) })
	bus := netCfg(t, func() (*topology.Topology, error) { return topology.Bus(8) })
	rt, err := ReduceTime(torus, 8, 8192, 256)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ReduceTime(bus, 8, 8192, 256)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Micros <= rt.Micros {
		t.Fatalf("reduce on a bus (diameter 7) should be slower than on a torus: %.1f vs %.1f", rb.Micros, rt.Micros)
	}
}

func TestGesummvMatchesReference(t *testing.T) {
	cfg := GesummvConfig{Rows: 48, Cols: 40, Alpha: 1.5, Beta: -0.5, Verify: true}
	want := GesummvReference(cfg)

	single, err := GesummvSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := GesummvDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if single.Y[i] != want[i] {
			t.Fatalf("single y[%d] = %g, want %g", i, single.Y[i], want[i])
		}
		if dist.Y[i] != want[i] {
			t.Fatalf("distributed y[%d] = %g, want %g", i, dist.Y[i], want[i])
		}
	}
}

func TestGesummvSpeedupNearTwo(t *testing.T) {
	// Fig 13: the distributed version doubles the available memory
	// bandwidth, for a ~2x speedup.
	sp, single, dist, err := GesummvSpeedup(GesummvConfig{Rows: 2048, Cols: 2048, Alpha: 1, Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1.6 || sp > 2.4 {
		t.Fatalf("speedup = %.2f (single %d, dist %d cycles), want ~2 (Fig 13)", sp, single.Cycles, dist.Cycles)
	}
}

func TestStencilMatchesReferenceSingleRank(t *testing.T) {
	cfg := StencilConfig{N: 16, Timesteps: 3, RanksX: 1, RanksY: 1, Banks: 1, Verify: true}
	res, err := Stencil(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := StencilReference(16, 3)
	for i := range want {
		for j := range want[i] {
			if res.Grid[i][j] != want[i][j] {
				t.Fatalf("grid[%d][%d] = %g, want %g", i, j, res.Grid[i][j], want[i][j])
			}
		}
	}
}

func TestStencilMatchesReferenceDistributed(t *testing.T) {
	for _, rg := range [][2]int{{2, 2}, {1, 4}, {4, 2}} {
		cfg := StencilConfig{N: 24, Timesteps: 4, RanksX: rg[0], RanksY: rg[1], Banks: 1, Verify: true}
		res, err := Stencil(cfg)
		if err != nil {
			t.Fatalf("%dx%d: %v", rg[0], rg[1], err)
		}
		want := StencilReference(24, 4)
		for i := range want {
			for j := range want[i] {
				if res.Grid[i][j] != want[i][j] {
					t.Fatalf("%dx%d ranks: grid[%d][%d] = %g, want %g", rg[0], rg[1], i, j, res.Grid[i][j], want[i][j])
				}
			}
		}
	}
}

func TestStencilScaling(t *testing.T) {
	// Fig 15's qualitative shape: more banks and more FPGAs both help,
	// and communication overlaps with computation.
	base, err := Stencil(StencilConfig{N: 512, Timesteps: 4, RanksX: 1, RanksY: 1, Banks: 1})
	if err != nil {
		t.Fatal(err)
	}
	banks4, err := Stencil(StencilConfig{N: 512, Timesteps: 4, RanksX: 1, RanksY: 1, Banks: 4})
	if err != nil {
		t.Fatal(err)
	}
	fpga4, err := Stencil(StencilConfig{N: 512, Timesteps: 4, RanksX: 2, RanksY: 2, Banks: 1})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Stencil(StencilConfig{N: 512, Timesteps: 4, RanksX: 2, RanksY: 2, Banks: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := func(r StencilResult) float64 { return float64(base.Cycles) / float64(r.Cycles) }
	if s(banks4) < 2.2 {
		t.Fatalf("4-bank speedup = %.2f, want > 2.2", s(banks4))
	}
	if s(fpga4) < 2.2 {
		t.Fatalf("4-FPGA speedup = %.2f, want > 2.2", s(fpga4))
	}
	if s(both) < 1.5*s(banks4) {
		t.Fatalf("banks+FPGAs should multiply: %.2f vs %.2f", s(both), s(banks4))
	}
}

func TestStencilRejectsBadConfig(t *testing.T) {
	if _, err := Stencil(StencilConfig{N: 10, Timesteps: 1, RanksX: 3, RanksY: 1}); err == nil {
		t.Fatal("non-divisible grid accepted")
	}
	if _, err := Stencil(StencilConfig{N: 8, Timesteps: 1, RanksX: 0, RanksY: 1}); err == nil {
		t.Fatal("zero rank grid accepted")
	}
	small, _ := topology.Bus(2)
	if _, err := Stencil(StencilConfig{N: 16, Timesteps: 1, RanksX: 2, RanksY: 2, Topology: small}); err == nil {
		t.Fatal("undersized topology accepted")
	}
}

func TestSummaMatchesReference(t *testing.T) {
	for _, tree := range []bool{false, true} {
		cfg := SummaConfig{N: 24, Ranks: 4, Tree: tree, Verify: true}
		res, err := Summa(cfg)
		if err != nil {
			t.Fatalf("tree=%v: %v", tree, err)
		}
		want := SummaReference(24)
		for i := range want {
			for j := range want[i] {
				if res.C[i][j] != want[i][j] {
					t.Fatalf("tree=%v: C[%d][%d] = %g, want %g", tree, i, j, res.C[i][j], want[i][j])
				}
			}
		}
	}
}

func TestSummaTreeFasterAtScale(t *testing.T) {
	linear, err := Summa(SummaConfig{N: 256, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Summa(SummaConfig{N: 256, Ranks: 8, Tree: true})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cycles >= linear.Cycles {
		t.Fatalf("tree bcast SUMMA (%d cycles) should beat linear (%d)", tree.Cycles, linear.Cycles)
	}
}

func TestSummaRejectsBadConfig(t *testing.T) {
	if _, err := Summa(SummaConfig{N: 10, Ranks: 4}); err == nil {
		t.Fatal("non-divisible N accepted")
	}
	if _, err := Summa(SummaConfig{N: 8, Ranks: 1}); err == nil {
		t.Fatal("single rank accepted")
	}
	small, _ := topology.Bus(2)
	if _, err := Summa(SummaConfig{N: 8, Ranks: 4, Topology: small}); err == nil {
		t.Fatal("undersized topology accepted")
	}
}
