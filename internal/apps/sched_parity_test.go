package apps

import (
	"os"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// schedVariants is the scheduler matrix every parity workload runs
// under: the dense reference scan, the activity-set event scheduler, the
// fixed-window sharded scheduler (4 shards over 8 ranks), and the
// adaptive-lookahead scheduler (one engine per rank, 4 worker slots,
// deterministic stealing). All four must be bit-identical in cycle
// counts and outputs.
var schedVariants = []struct {
	name   string
	kind   sim.SchedulerKind
	shards int
}{
	{"dense", sim.SchedDense, 0},
	{"event", sim.SchedEvent, 0},
	{"shard", sim.SchedShard, 4},
	{"shard-adaptive", sim.SchedShardAdaptive, 4},
}

// TestSchedulerParity is the scheduler acceptance gate: every workload
// must finish at the identical cycle under the dense reference scan, the
// activity-set scheduler, and the sharded parallel scheduler, with
// bit-identical outputs where the workload produces data. The event runs
// must also actually skip cycles, and the shard runs must actually run
// sharded (shards recorded, barriers counted) — schedulers that
// degenerate to dense would pass the equality checks while delivering
// none of the speedup.
func TestSchedulerParity(t *testing.T) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := NetConfig{Topology: topo, RoutingPolicy: routing.UpDown}

	t.Run("ping-pong", func(t *testing.T) {
		for _, variant := range []struct {
			name string
			mod  func(*NetConfig)
		}{
			{"pristine", func(*NetConfig) {}},
			{"reliable", func(c *NetConfig) { c.Reliable = true }},
			{"faulty", func(c *NetConfig) {
				c.Faults = &fault.Spec{Seed: 11, DropProb: 0.002}
			}},
		} {
			cycles := make([]int64, len(schedVariants))
			for i, sv := range schedVariants {
				cfg := base
				variant.mod(&cfg)
				cfg.Scheduler, cfg.Shards = sv.kind, sv.shards
				res, err := PingPong(cfg, 0, 1, 50)
				if err != nil {
					t.Fatalf("%s %s: %v", variant.name, sv.name, err)
				}
				cycles[i] = res.Cycles
			}
			for i := 1; i < len(cycles); i++ {
				if cycles[i] != cycles[0] {
					t.Errorf("%s: %s finished at cycle %d, %s at %d",
						variant.name, schedVariants[i].name, cycles[i], schedVariants[0].name, cycles[0])
				}
			}
		}
	})

	t.Run("bandwidth", func(t *testing.T) {
		results := make([]BandwidthResult, len(schedVariants))
		for i, sv := range schedVariants {
			cfg := base
			cfg.Scheduler, cfg.Shards = sv.kind, sv.shards
			res, err := Bandwidth(cfg, 0, 5, 20000)
			if err != nil {
				t.Fatalf("%s: %v", sv.name, err)
			}
			results[i] = res
		}
		for i := 1; i < len(results); i++ {
			if results[i].Cycles != results[0].Cycles {
				t.Errorf("%s finished at cycle %d, dense at %d", schedVariants[i].name, results[i].Cycles, results[0].Cycles)
			}
		}
		for i, want := range []string{"dense", "event", "shard", "shard-adaptive"} {
			if got := results[i].Net.Sched.Scheduler; got != want {
				t.Errorf("scheduler label %d: %q, want %q", i, got, want)
			}
		}
		if sh := results[2].Net.Sched; sh.Shards != 4 || sh.Syncs == 0 || len(sh.PerShard) != 4 {
			t.Errorf("shard run did not run sharded: shards=%d syncs=%d pershard=%d", sh.Shards, sh.Syncs, len(sh.PerShard))
		}
		// The adaptive run reports one row per worker slot and counts the
		// per-engine windows it executed.
		if sh := results[3].Net.Sched; sh.Shards != 4 || sh.Syncs == 0 || len(sh.PerShard) != 4 || sh.Windows == 0 {
			t.Errorf("adaptive run did not run sharded: shards=%d syncs=%d pershard=%d windows=%d",
				sh.Shards, sh.Syncs, len(sh.PerShard), sh.Windows)
		}
	})

	t.Run("bandwidth-modes", func(t *testing.T) {
		// Every P2P transfer machinery — credited flow control, circuit
		// switching, and the streaming rendezvous path — must be
		// bit-identical across schedulers, pristine and under fault
		// injection (where raw words cross the reliable layer's frame
		// sideband). 500 ints over a 64-element buffer forces credit
		// round-trips and the streaming rendezvous alike.
		for _, mode := range []TransferMode{ModeCredited, ModeCircuit, ModeStreaming} {
			for _, variant := range []struct {
				name string
				mod  func(*NetConfig)
			}{
				{"pristine", func(*NetConfig) {}},
				{"faulty", func(c *NetConfig) {
					c.Faults = &fault.Spec{Seed: 11, DropProb: 0.002}
				}},
			} {
				results := make([]BandwidthResult, len(schedVariants))
				for i, sv := range schedVariants {
					cfg := base
					variant.mod(&cfg)
					cfg.Scheduler, cfg.Shards = sv.kind, sv.shards
					cfg.Mode, cfg.BufferElems = mode, 64
					res, err := Bandwidth(cfg, 0, 5, 500)
					if err != nil {
						t.Fatalf("%s %s %s: %v", mode, variant.name, sv.name, err)
					}
					results[i] = res
				}
				for i := 1; i < len(results); i++ {
					if results[i].Cycles != results[0].Cycles {
						t.Errorf("%s %s: %s finished at cycle %d, dense at %d",
							mode, variant.name, schedVariants[i].name, results[i].Cycles, results[0].Cycles)
					}
					if results[i].Net.PacketsDelivered != results[0].Net.PacketsDelivered {
						t.Errorf("%s %s: %s delivered %d packets, dense %d",
							mode, variant.name, schedVariants[i].name, results[i].Net.PacketsDelivered, results[0].Net.PacketsDelivered)
					}
				}
				if mode == ModeStreaming && results[0].Net.StreamFragments == 0 {
					t.Errorf("%s: streaming run cut no fragments through the transport", variant.name)
				}
				if variant.name == "faulty" {
					// The PR 5 reliable-forces-one-shard guard is gone:
					// fault-injected clusters must actually shard.
					for _, i := range []int{2, 3} {
						if sh := results[i].Net.Sched; sh.Shards != 4 || sh.Syncs == 0 {
							t.Errorf("%s %s: reliable cluster fell back to one shard: shards=%d syncs=%d",
								mode, schedVariants[i].name, sh.Shards, sh.Syncs)
						}
					}
				}
			}
		}
	})

	t.Run("bcast", func(t *testing.T) {
		results := make([]CollectiveResult, len(schedVariants))
		for i, sv := range schedVariants {
			cfg := base
			cfg.Scheduler, cfg.Shards = sv.kind, sv.shards
			res, err := BcastTime(cfg, 8, 2000)
			if err != nil {
				t.Fatalf("%s: %v", sv.name, err)
			}
			results[i] = res
		}
		for i := 1; i < len(results); i++ {
			if results[i].Cycles != results[0].Cycles {
				t.Errorf("%s finished at cycle %d, dense at %d", schedVariants[i].name, results[i].Cycles, results[0].Cycles)
			}
			if results[i].Net.PacketsDelivered != results[0].Net.PacketsDelivered {
				t.Errorf("%s delivered %d packets, dense %d",
					schedVariants[i].name, results[i].Net.PacketsDelivered, results[0].Net.PacketsDelivered)
			}
		}
		if results[1].Net.Sched.CyclesSkipped == 0 {
			t.Error("event run skipped no cycles: the activity sets never fast-forwarded")
		}
	})

	t.Run("summa", func(t *testing.T) {
		results := make([]SummaResult, len(schedVariants))
		for i, sv := range schedVariants {
			res, err := Summa(SummaConfig{
				N: 32, Ranks: 8, Verify: true,
				Scheduler: sv.kind, Shards: sv.shards,
			})
			if err != nil {
				t.Fatalf("%s: %v", sv.name, err)
			}
			results[i] = res
		}
		ref := SummaReference(32)
		for i, res := range results {
			if res.Cycles != results[0].Cycles {
				t.Errorf("%s finished at cycle %d, dense at %d", schedVariants[i].name, res.Cycles, results[0].Cycles)
			}
			for r := range ref {
				for c := range ref[r] {
					if res.C[r][c] != ref[r][c] {
						t.Fatalf("%s C[%d][%d] = %v, reference %v", schedVariants[i].name, r, c, res.C[r][c], ref[r][c])
					}
				}
			}
		}
	})

	t.Run("stencil", func(t *testing.T) {
		ref := StencilReference(24, 4)
		for _, faults := range []*fault.Spec{
			nil,
			// The fault-injected leg of the matrix: drops force the
			// retransmission protocol to do real repair work, and all
			// three schedulers must still produce the reference grid at
			// the same cycle.
			{Seed: 7, DropProb: 0.001},
		} {
			label := "pristine"
			if faults != nil {
				label = "faulty"
			}
			results := make([]StencilResult, len(schedVariants))
			for i, sv := range schedVariants {
				cfg := StencilConfig{
					N: 24, Timesteps: 4, RanksX: 2, RanksY: 4, Verify: true,
					Faults: faults, Scheduler: sv.kind, Shards: sv.shards,
				}
				res, err := Stencil(cfg)
				if err != nil {
					t.Fatalf("%s %s: %v", label, sv.name, err)
				}
				results[i] = res
			}
			for i, res := range results {
				if res.Cycles != results[0].Cycles {
					t.Errorf("%s: %s finished at cycle %d, dense at %d",
						label, schedVariants[i].name, res.Cycles, results[0].Cycles)
				}
				for r := range ref {
					for c := range ref[r] {
						if res.Grid[r][c] != ref[r][c] {
							t.Fatalf("%s %s grid[%d][%d] = %v, reference %v",
								label, schedVariants[i].name, r, c, res.Grid[r][c], ref[r][c])
						}
					}
				}
			}
		}
	})
}

// TestShardSmoke64 is the CI race-detector gate: a 64-rank torus split
// into 4 parallel shards must match the dense single-engine run cycle
// for cycle. Gated behind SMI_SHARD_SMOKE=1 because 64 ranks is slow
// under -race; the shard-smoke CI job enables it.
func TestShardSmoke64(t *testing.T) {
	if os.Getenv("SMI_SHARD_SMOKE") != "1" {
		t.Skip("set SMI_SHARD_SMOKE=1 to run the 64-rank shard smoke test")
	}
	shardSmoke64(t, sim.SchedShard)
}

// TestStealSmoke64 is the adaptive twin of TestShardSmoke64: 64 engines
// (one per rank) multiplexed onto 4 worker slots with deterministic
// work-stealing, under fault injection so the reliable links' repair
// machinery runs while ranks migrate between workers. Digest (cycles +
// delivered packets) must match the dense reference bit for bit.
func TestStealSmoke64(t *testing.T) {
	if os.Getenv("SMI_SHARD_SMOKE") != "1" {
		t.Skip("set SMI_SHARD_SMOKE=1 to run the 64-rank steal smoke test")
	}
	shardSmoke64(t, sim.SchedShardAdaptive)
}

func shardSmoke64(t *testing.T, kind sim.SchedulerKind) {
	topo, err := topology.Torus2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := NetConfig{Topology: topo, RoutingPolicy: routing.UpDown,
		Faults: &fault.Spec{Seed: 11, DropProb: 0.0005}}

	sh := base
	sh.Scheduler, sh.Shards = kind, 4
	shard, err := BcastTime(sh, 64, 1000)
	if err != nil {
		t.Fatal(err)
	}
	de := base
	de.Scheduler = sim.SchedDense
	dense, err := BcastTime(de, 64, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if dense.Net.Retransmits == 0 {
		t.Error("fault spec injected nothing; the repair machinery never ran")
	}
	if shard.Cycles != dense.Cycles {
		t.Errorf("shard run finished at cycle %d, dense at %d", shard.Cycles, dense.Cycles)
	}
	if shard.Net.PacketsDelivered != dense.Net.PacketsDelivered {
		t.Errorf("shard run delivered %d packets, dense %d", shard.Net.PacketsDelivered, dense.Net.PacketsDelivered)
	}
	if st := shard.Net.Sched; st.Shards != 4 || st.Syncs == 0 {
		t.Errorf("shard run did not run sharded: shards=%d syncs=%d", st.Shards, st.Syncs)
	}
	if kind == sim.SchedShardAdaptive {
		st := shard.Net.Sched
		if st.Windows == 0 {
			t.Errorf("adaptive run executed no windows: %+v", st)
		}
		t.Logf("adaptive 64-rank run: syncs=%d windows=%d steals=%d", st.Syncs, st.Windows, st.Steals)
		if st.Steals == 0 {
			t.Error("64 engines on 4 workers under a broadcast hotspot rebalanced nothing: the stealing rule never fired")
		}
	}
}

// TestAdaptiveHorizonProperty drives the adaptive scheduler across shard
// counts and workload shapes. Safety — no per-engine window ever runs
// past a boundary's advertised safe horizon — is enforced by the flush
// panic in sim.Boundary (an entry published behind the consumer's clock
// crashes the run), so every clean completion doubles as a proof the
// adaptive windows stayed within bounds; the cycle digests must then
// match the dense reference exactly.
func TestAdaptiveHorizonProperty(t *testing.T) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, faults := range []*fault.Spec{nil, {Seed: 3, DropProb: 0.002}} {
		base := NetConfig{Topology: topo, RoutingPolicy: routing.UpDown, Faults: faults}
		de := base
		de.Scheduler = sim.SchedDense
		dense, err := Bandwidth(de, 0, 5, 4000)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 4, 5, 8} {
			cfg := base
			cfg.Scheduler, cfg.Shards = sim.SchedShardAdaptive, workers
			res, err := Bandwidth(cfg, 0, 5, 4000)
			if err != nil {
				t.Fatalf("workers=%d faults=%v: %v", workers, faults != nil, err)
			}
			if res.Cycles != dense.Cycles {
				t.Errorf("workers=%d faults=%v: finished at cycle %d, dense at %d",
					workers, faults != nil, res.Cycles, dense.Cycles)
			}
			if res.Net.PacketsDelivered != dense.Net.PacketsDelivered {
				t.Errorf("workers=%d faults=%v: delivered %d packets, dense %d",
					workers, faults != nil, res.Net.PacketsDelivered, dense.Net.PacketsDelivered)
			}
		}
	}
}
