package apps

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestSchedulerParity is the event-scheduler acceptance gate: every
// workload must finish at the identical cycle under the dense reference
// scan and the activity-set scheduler, with bit-identical outputs where
// the workload produces data. The event runs must also actually skip
// cycles — a scheduler that degenerates to dense would pass the equality
// checks while delivering none of the speedup.
func TestSchedulerParity(t *testing.T) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := NetConfig{Topology: topo, RoutingPolicy: routing.UpDown}

	t.Run("ping-pong", func(t *testing.T) {
		for _, variant := range []struct {
			name string
			mod  func(*NetConfig)
		}{
			{"pristine", func(*NetConfig) {}},
			{"reliable", func(c *NetConfig) { c.Reliable = true }},
			{"faulty", func(c *NetConfig) {
				c.Faults = &fault.Spec{Seed: 11, DropProb: 0.002}
			}},
		} {
			cfg := base
			variant.mod(&cfg)
			ev, err := PingPong(cfg, 0, 1, 50)
			if err != nil {
				t.Fatalf("%s event: %v", variant.name, err)
			}
			cfg.Scheduler = sim.SchedDense
			de, err := PingPong(cfg, 0, 1, 50)
			if err != nil {
				t.Fatalf("%s dense: %v", variant.name, err)
			}
			if ev.Cycles != de.Cycles {
				t.Errorf("%s: event finished at cycle %d, dense at %d", variant.name, ev.Cycles, de.Cycles)
			}
		}
	})

	t.Run("bandwidth", func(t *testing.T) {
		ev, err := Bandwidth(base, 0, 5, 20000)
		if err != nil {
			t.Fatal(err)
		}
		dcfg := base
		dcfg.Scheduler = sim.SchedDense
		de, err := Bandwidth(dcfg, 0, 5, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Cycles != de.Cycles {
			t.Errorf("event finished at cycle %d, dense at %d", ev.Cycles, de.Cycles)
		}
		if ev.Net.Sched.Scheduler != "event" || de.Net.Sched.Scheduler != "dense" {
			t.Errorf("scheduler labels: event=%q dense=%q", ev.Net.Sched.Scheduler, de.Net.Sched.Scheduler)
		}
	})

	t.Run("bcast", func(t *testing.T) {
		ev, err := BcastTime(base, 8, 2000)
		if err != nil {
			t.Fatal(err)
		}
		dcfg := base
		dcfg.Scheduler = sim.SchedDense
		de, err := BcastTime(dcfg, 8, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Cycles != de.Cycles {
			t.Errorf("event finished at cycle %d, dense at %d", ev.Cycles, de.Cycles)
		}
		if ev.Net.Sched.CyclesSkipped == 0 {
			t.Error("event run skipped no cycles: the activity sets never fast-forwarded")
		}
	})

	t.Run("stencil", func(t *testing.T) {
		cfg := StencilConfig{N: 24, Timesteps: 4, RanksX: 2, RanksY: 4, Verify: true}
		ev, err := Stencil(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheduler = sim.SchedDense
		de, err := Stencil(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Cycles != de.Cycles {
			t.Errorf("event finished at cycle %d, dense at %d", ev.Cycles, de.Cycles)
		}
		ref := StencilReference(cfg.N, cfg.Timesteps)
		for _, run := range []struct {
			name string
			res  StencilResult
		}{{"event", ev}, {"dense", de}} {
			for i := range ref {
				for j := range ref[i] {
					if run.res.Grid[i][j] != ref[i][j] {
						t.Fatalf("%s grid[%d][%d] = %v, reference %v", run.name, i, j, run.res.Grid[i][j], ref[i][j])
					}
				}
			}
		}
	})
}
