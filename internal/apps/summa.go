package apps

import (
	"fmt"

	smi "repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Summa is a distributed dense matrix multiply C = A x B built on SMI's
// streaming broadcast — the kind of collective-driven kernel the paper's
// Bcast support kernels target. It uses the 1-D SUMMA decomposition:
// rank j owns the block column j of A, B, and C; in step k, rank k
// broadcasts its block column of A while every rank multiplies it
// against the local block of B, accumulating its block column of C.
// Broadcast and computation overlap: elements stream into the multiply
// pipeline as they arrive.
type SummaConfig struct {
	// N is the matrix dimension (N x N); must be divisible by Ranks.
	N int
	// Ranks is the number of FPGAs (block columns).
	Ranks int
	// Tree selects tree-based broadcasts.
	Tree bool
	// Verify computes real values against a sequential reference.
	Verify bool
	// Topology overrides the interconnect (defaults to a bus).
	Topology *topology.Topology
	// MaxCycles optionally bounds the simulation.
	MaxCycles int64
	// Scheduler selects the simulator's scheduling mode (default
	// sim.SchedEvent); cycle counts are identical in all modes.
	Scheduler sim.SchedulerKind
	// Shards partitions the ranks into engine shards (see
	// smi.Config.Shards); 0 keeps the single-engine build.
	Shards int
}

// SummaResult reports one distributed matrix multiply.
type SummaResult struct {
	Cycles int64
	Micros float64
	C      [][]float32 // assembled result when Verify
}

// Deterministic synthetic inputs, exact in float32.
func summaA(i, j int) float32 { return float32((i*7+j*3)%5 - 2) }
func summaB(i, j int) float32 { return float32((i*11+j*13)%7 - 3) }

// SummaReference computes C = A x B sequentially.
func SummaReference(n int) [][]float32 {
	c := make([][]float32, n)
	for i := range c {
		c[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc += summaA(i, k) * summaB(k, j)
			}
			c[i][j] = acc
		}
	}
	return c
}

// Summa runs the distributed multiply and reports timing (and the
// assembled result under Verify).
func Summa(cfg SummaConfig) (SummaResult, error) {
	if cfg.Ranks < 2 {
		return SummaResult{}, fmt.Errorf("summa: need at least 2 ranks, got %d", cfg.Ranks)
	}
	if cfg.N%cfg.Ranks != 0 {
		return SummaResult{}, fmt.Errorf("summa: N=%d not divisible by %d ranks", cfg.N, cfg.Ranks)
	}
	topo := cfg.Topology
	if topo == nil {
		var err error
		topo, err = topology.Bus(cfg.Ranks)
		if err != nil {
			return SummaResult{}, err
		}
	}
	if topo.Devices < cfg.Ranks {
		return SummaResult{}, fmt.Errorf("summa: topology has %d devices, need %d", topo.Devices, cfg.Ranks)
	}
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program: smi.ProgramSpec{Ports: []smi.PortSpec{
			{Port: 0, Kind: smi.Bcast, Type: smi.Float, Tree: cfg.Tree, BufferElems: 1024},
		}},
		MaxCycles: cfg.MaxCycles,
		Scheduler: cfg.Scheduler,
		Shards:    cfg.Shards,
	})
	if err != nil {
		return SummaResult{}, err
	}
	board := c.Board()
	w := cfg.N / cfg.Ranks // block column width
	res := SummaResult{}

	// Per-rank accumulators for the owned block column of C.
	acc := make([][][]float32, cfg.Ranks)
	if cfg.Verify {
		for r := range acc {
			acc[r] = make([][]float32, cfg.N)
			for i := range acc[r] {
				acc[r][i] = make([]float32, w)
			}
		}
	}

	// The multiply pipeline processes one broadcast element per cycle,
	// feeding a w-wide vector MAC array (the block column of B stays
	// on-chip): cycle cost = elements received. The broadcast overlaps
	// with this consumption, so each step costs about N*w cycles plus
	// the rendezvous.
	for r := 0; r < cfg.Ranks; r++ {
		r := r
		c.OnRank(r, "summa", func(x *smi.Ctx) {
			x.Sleep(int64(board.LaunchOverheadCycles))
			count := cfg.N * w // elements of one block column of A
			for k := 0; k < cfg.Ranks; k++ {
				ch, err := x.OpenBcastChannel(count, smi.Float, 0, k, x.CommWorld())
				if err != nil {
					panic(err)
				}
				// The owner streams its block column (row-major over the
				// block) while every rank folds it into the local MACs.
				for i := 0; i < cfg.N; i++ {
					for jj := 0; jj < w; jj++ {
						var v float32
						if ch.Root() {
							v = summaA(i, k*w+jj)
						}
						v = ch.BcastFloat(v)
						if cfg.Verify {
							// A[i][k*w+jj] contributes to C[i][*] via
							// B[k*w+jj][r*w..r*w+w-1] — a w-wide MAC per
							// element, one element per cycle.
							row := acc[r][i]
							bRow := k*w + jj
							for jc := 0; jc < w; jc++ {
								row[jc] += v * summaB(bRow, r*w+jc)
							}
						}
					}
				}
			}
		})
	}
	stats, err := c.Run()
	if err != nil {
		return SummaResult{}, err
	}
	res.Cycles, res.Micros = stats.Cycles, stats.Micros
	if cfg.Verify {
		res.C = make([][]float32, cfg.N)
		for i := range res.C {
			res.C[i] = make([]float32, cfg.N)
			for r := 0; r < cfg.Ranks; r++ {
				copy(res.C[i][r*w:(r+1)*w], acc[r][i])
			}
		}
	}
	return res, nil
}
