package apps

import (
	"fmt"

	smi "repro/internal/core"
	"repro/internal/topology"
)

// GESUMMV (§5.4.1) computes y = alpha*A*x + beta*B*x, where A and B are
// Rows x Cols matrices. The routine is memory bound: performance is
// dictated by how fast the two matrices stream from DRAM.
//
// The single-FPGA version runs two GEMV kernels in parallel, each
// reading its matrix from half the device's memory banks, feeding an
// AXPY kernel through intra-FPGA streams (paper Fig 12, left). The
// distributed version decomposes by function: rank 0 computes alpha*A*x
// with all of its banks and streams the result elements to rank 1 over
// an SMI channel; rank 1 computes beta*B*x with all of its banks and
// performs the addition — doubling the aggregate memory bandwidth
// (Fig 12, right). Adapting between the two only retargets one stream:
// the same minimal-code-change property the paper reports (8 lines).
type GesummvConfig struct {
	Rows, Cols  int
	Alpha, Beta float32
	// Verify computes real values (synthetic deterministic matrices) so
	// results can be checked; when false only timing is modeled.
	Verify bool
}

// GesummvResult reports one GESUMMV execution.
type GesummvResult struct {
	Cycles int64
	Micros float64
	Y      []float32 // populated when cfg.Verify
}

// Synthetic deterministic inputs: cheap integer-derived values that are
// exactly representable in float32, so all implementations agree
// bit-for-bit.
func gesummvA(i, j int) float32 { return float32((i*31+j*17)%13 - 6) }
func gesummvB(i, j int) float32 { return float32((i*23+j*29)%11 - 5) }
func gesummvX(j int) float32    { return float32((j*7)%5 - 2) }

// GesummvReference computes y = alpha*A*x + beta*B*x sequentially.
func GesummvReference(cfg GesummvConfig) []float32 {
	y := make([]float32, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		var a, b float32
		for j := 0; j < cfg.Cols; j++ {
			x := gesummvX(j)
			a += gesummvA(i, j) * x
			b += gesummvB(i, j) * x
		}
		y[i] = cfg.Alpha*a + cfg.Beta*b
	}
	return y
}

// gemv streams one matrix row per iteration: the row load from memory
// dominates (Cols elements from the given banks), after which the dot
// product result is pushed downstream.
func gemv(x *smi.Ctx, cfg GesummvConfig, banks int, elem func(i, j int) float32,
	push func(i int, v float32)) {
	board := x.Board()
	rowBytes := int64(cfg.Cols) * 4
	x.Sleep(int64(board.LaunchOverheadCycles))
	// The x vector is loaded once into on-chip memory.
	x.StreamMem(rowBytes, banks)
	// The matrix streams contiguously row-major, so rows do not break
	// DRAM bursts: only the raw stream time is charged per row (the
	// downstream push costs its own cycle).
	for i := 0; i < cfg.Rows; i++ {
		x.Sleep(board.StreamCycles(rowBytes, banks))
		var acc float32
		if cfg.Verify {
			for j := 0; j < cfg.Cols; j++ {
				acc += elem(i, j) * gesummvX(j)
			}
		}
		push(i, acc)
	}
}

// GesummvSingle runs GESUMMV on one FPGA: both GEMV kernels share the
// device, so each uses half the memory banks.
func GesummvSingle(cfg GesummvConfig) (GesummvResult, error) {
	topo, err := topology.Bus(2) // minimal cluster; rank 1 stays idle
	if err != nil {
		return GesummvResult{}, err
	}
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program:  smi.ProgramSpec{Ports: []smi.PortSpec{{Port: 0, Type: smi.Float}}},
	})
	if err != nil {
		return GesummvResult{}, err
	}
	banks := c.Board().MemBanks / 2
	ya := c.NewStream("ya", 64)
	yb := c.NewStream("yb", 64)
	res := GesummvResult{}
	if cfg.Verify {
		res.Y = make([]float32, cfg.Rows)
	}
	c.OnRank(0, "gemvA", func(x *smi.Ctx) {
		gemv(x, cfg, banks, gesummvA, func(i int, v float32) {
			x.PushStream(ya, uint64(floatBits(v)))
		})
	})
	c.OnRank(0, "gemvB", func(x *smi.Ctx) {
		gemv(x, cfg, banks, gesummvB, func(i int, v float32) {
			x.PushStream(yb, uint64(floatBits(v)))
		})
	})
	c.OnRank(0, "axpy", func(x *smi.Ctx) {
		for i := 0; i < cfg.Rows; i++ {
			a := bitsFloat(uint32(x.PopStream(ya)))
			b := bitsFloat(uint32(x.PopStream(yb)))
			if cfg.Verify {
				res.Y[i] = cfg.Alpha*a + cfg.Beta*b
			}
		}
	})
	st, err := c.Run()
	if err != nil {
		return GesummvResult{}, err
	}
	res.Cycles, res.Micros = st.Cycles, st.Micros
	return res, nil
}

// GesummvDistributed runs the two-rank MPMD decomposition: each GEMV
// gets a full device's memory bandwidth, and the intermediate vector
// streams across the network during computation.
func GesummvDistributed(cfg GesummvConfig) (GesummvResult, error) {
	topo, err := topology.Bus(2)
	if err != nil {
		return GesummvResult{}, err
	}
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program:  smi.ProgramSpec{Ports: []smi.PortSpec{{Port: 0, Type: smi.Float, BufferElems: 256}}},
	})
	if err != nil {
		return GesummvResult{}, err
	}
	banks := c.Board().MemBanks
	yb := c.NewStream("yb", 64)
	res := GesummvResult{}
	if cfg.Verify {
		res.Y = make([]float32, cfg.Rows)
	}
	// Rank 0: GEMV over A; the only code change from the single-chip
	// version is pushing into an SMI channel instead of a local stream.
	c.OnRank(0, "gemvA", func(x *smi.Ctx) {
		ch, err := x.OpenSend(smi.ChannelOpts{Count: cfg.Rows, Type: smi.Float, Dst: 1, Port: 0})
		if err != nil {
			panic(err)
		}
		gemv(x, cfg, banks, gesummvA, func(i int, v float32) {
			smi.Push(ch, v)
		})
	})
	c.OnRank(1, "gemvB", func(x *smi.Ctx) {
		gemv(x, cfg, banks, gesummvB, func(i int, v float32) {
			x.PushStream(yb, uint64(floatBits(v)))
		})
	})
	// Rank 1: AXPY reads one input from the network, one from the local
	// GEMV.
	c.OnRank(1, "axpy", func(x *smi.Ctx) {
		ch, err := x.OpenRecv(smi.ChannelOpts{Count: cfg.Rows, Type: smi.Float, Src: 0, Port: 0})
		if err != nil {
			panic(err)
		}
		for i := 0; i < cfg.Rows; i++ {
			a := smi.Pop[float32](ch)
			b := bitsFloat(uint32(x.PopStream(yb)))
			if cfg.Verify {
				res.Y[i] = cfg.Alpha*a + cfg.Beta*b
			}
		}
	})
	st, err := c.Run()
	if err != nil {
		return GesummvResult{}, err
	}
	res.Cycles, res.Micros = st.Cycles, st.Micros
	return res, nil
}

// Speedup returns single-FPGA time divided by distributed time for the
// same problem (one bar of Fig 13).
func GesummvSpeedup(cfg GesummvConfig) (speedup float64, single, dist GesummvResult, err error) {
	single, err = GesummvSingle(cfg)
	if err != nil {
		return 0, single, dist, fmt.Errorf("single: %w", err)
	}
	dist, err = GesummvDistributed(cfg)
	if err != nil {
		return 0, single, dist, fmt.Errorf("distributed: %w", err)
	}
	return float64(single.Cycles) / float64(dist.Cycles), single, dist, nil
}
