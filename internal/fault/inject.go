package fault

import (
	"hash/fnv"
	"sort"
	"sync"
)

// WordSize is the wire word the injector mutates: one 32-byte network
// packet as serialized by internal/packet.
const WordSize = 32

// Injector instantiates a Spec over a set of links. Each link obtains
// its own deterministic fault stream via ForLink.
type Injector struct {
	spec Spec

	mu    sync.Mutex
	links map[string]*LinkInjector
}

// NewInjector builds an injector for the spec (nil spec = no faults).
func NewInjector(spec *Spec) *Injector {
	inj := &Injector{links: make(map[string]*LinkInjector)}
	if spec != nil {
		inj.spec = *spec
	}
	return inj
}

// ForLink returns the per-link fault stream for the named directed link,
// creating it on first use. Streams are independent of creation order.
func (inj *Injector) ForLink(name string) *LinkInjector {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if li, ok := inj.links[name]; ok {
		return li
	}
	li := &LinkInjector{
		name:   name,
		rng:    splitmix64(uint64(inj.spec.Seed) ^ hashName(name)),
		drop:   inj.spec.DropProb,
		corr:   inj.spec.CorruptProb,
		events: inj.spec.eventsFor(name),
	}
	inj.links[name] = li
	return li
}

// ForLinkExit returns a second fault stream of the named directed link
// for use at the wire exit, which in sharded runs lives on the receiver
// rank's engine. It shares the link's scripted events but carries its
// own down/kill cache and counters, so the receive half never touches
// state the transmit half mutates on another engine. Exit-side callers
// use only Down and LoseOnWire, which never draw from the random
// stream; probabilistic faults stay exclusive to the entry stream.
func (inj *Injector) ForLinkExit(name string) *LinkInjector {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	key := name + "\x00exit"
	if li, ok := inj.links[key]; ok {
		return li
	}
	li := &LinkInjector{
		name:   name,
		events: inj.spec.eventsFor(name),
	}
	inj.links[key] = li
	return li
}

// TimedFault records one injected fault occurrence, for Chrome-trace
// annotation and logs.
type TimedFault struct {
	Cycle int64
	Link  string
	Kind  string
}

// maxTimeline bounds the per-link fault log so a high-probability spec
// cannot grow memory without bound; counters remain exact.
const maxTimeline = 4096

// Timeline returns every recorded fault occurrence across all links,
// sorted by cycle then link name.
func (inj *Injector) Timeline() []TimedFault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var out []TimedFault
	for _, li := range inj.links {
		out = append(out, li.timeline...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		if out[i].Link != out[j].Link {
			return out[i].Link < out[j].Link
		}
		// The entry and exit streams of one link share its name; the
		// kind tiebreak keeps their merged timeline deterministic.
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Counters aggregates injected-fault statistics across all links.
type Counters struct {
	Dropped   uint64 `json:"dropped"`   // packets silently discarded on the wire
	Corrupted uint64 `json:"corrupted"` // packets with a flipped bit
	FlapLost  uint64 `json:"flap_lost"` // packets lost to a down (flapped or killed) link
}

// Counters sums the per-link fault counters (deterministic order).
func (inj *Injector) Counters() Counters {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	names := make([]string, 0, len(inj.links))
	for n := range inj.links {
		names = append(names, n)
	}
	sort.Strings(names)
	var c Counters
	for _, n := range names {
		li := inj.links[n]
		c.Dropped += li.dropped
		c.Corrupted += li.corrupted
		c.FlapLost += li.flapLost
	}
	return c
}

// LinkInjector is the fault stream of one directed link. It is consulted
// by the reliable link layer from the single simulation goroutine, so it
// needs no locking of its own.
type LinkInjector struct {
	name   string
	rng    *splitmix
	drop   float64
	corr   float64
	events []Event
	next   int // first unconsumed scripted event

	killedAt  int64 // cycle the link died (-1 while alive)
	killedSet bool

	dropped   uint64
	corrupted uint64
	flapLost  uint64

	timeline []TimedFault
}

func (li *LinkInjector) record(now int64, kind string) {
	if len(li.timeline) < maxTimeline {
		li.timeline = append(li.timeline, TimedFault{Cycle: now, Link: li.name, Kind: kind})
	}
}

// Down reports whether the link is unusable at the given cycle: inside a
// scripted flap window or at/after a kill.
func (li *LinkInjector) Down(now int64) bool {
	if li == nil {
		return false
	}
	if li.killedSet && now >= li.killedAt {
		return true
	}
	for _, ev := range li.events {
		switch ev.Kind {
		case Flap:
			if now >= ev.At && now < ev.Until {
				return true
			}
		case Kill:
			if now >= ev.At {
				li.killedAt, li.killedSet = ev.At, true
				return true
			}
		}
	}
	return false
}

// Killed reports whether the link is permanently dead at the given cycle.
func (li *LinkInjector) Killed(now int64) bool {
	if li == nil {
		return false
	}
	if li.killedSet && now >= li.killedAt {
		return true
	}
	for _, ev := range li.events {
		if ev.Kind == Kill && now >= ev.At {
			li.killedAt, li.killedSet = ev.At, true
			return true
		}
	}
	return false
}

// LoseOnWire records a packet lost because the link was down when the
// packet entered or would have exited the wire.
func (li *LinkInjector) LoseOnWire(now int64) {
	if li != nil {
		li.flapLost++
		li.record(now, "wire-loss")
	}
}

// Transmit passes one wire word through the fault model at wire entry.
// It returns the (possibly corrupted) word and whether the packet was
// dropped outright. Scripted one-shot events (Drop, Corrupt) consume
// themselves on the first packet at or after their cycle; probabilistic
// faults draw from the link's seeded stream.
func (li *LinkInjector) Transmit(now int64, w [WordSize]byte) ([WordSize]byte, bool) {
	if li == nil {
		return w, false
	}
	// Scripted one-shots, in cycle order.
	for li.next < len(li.events) {
		ev := li.events[li.next]
		if ev.Kind == Flap || ev.Kind == Kill {
			// Window faults are handled by Down; skip past them once
			// their arming cycle is reached so one-shots behind them in
			// the schedule still fire.
			if now >= ev.At {
				li.next++
				continue
			}
			break
		}
		if now < ev.At {
			break
		}
		li.next++
		switch ev.Kind {
		case Drop:
			li.dropped++
			li.record(now, "drop")
			return w, true
		case Corrupt:
			w[ev.Bit/8] ^= 1 << (ev.Bit % 8)
			li.corrupted++
			li.record(now, "corrupt")
			return w, false
		}
	}
	// Probabilistic background noise.
	if li.drop > 0 && li.rng.float64() < li.drop {
		li.dropped++
		li.record(now, "drop")
		return w, true
	}
	if li.corr > 0 && li.rng.float64() < li.corr {
		bit := int(li.rng.next() % (WordSize * 8))
		w[bit/8] ^= 1 << (bit % 8)
		li.corrupted++
		li.record(now, "corrupt")
	}
	return w, false
}

// Dropped returns the packets this link's stream discarded.
func (li *LinkInjector) Dropped() uint64 { return li.dropped }

// Corrupted returns the packets this link's stream bit-flipped.
func (li *LinkInjector) Corrupted() uint64 { return li.corrupted }

// hashName derives a stable 64-bit stream id from a link name.
func hashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// splitmix is the splitmix64 generator: tiny, fast, and fully
// deterministic from its seed, with no global state.
type splitmix struct{ s uint64 }

func splitmix64(seed uint64) *splitmix { return &splitmix{s: seed} }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0,1).
func (r *splitmix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
