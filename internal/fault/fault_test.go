package fault

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	s := &Spec{
		Seed:        7,
		DropProb:    0.01,
		CorruptProb: 0.001,
		Events: []Event{
			{Link: "0:1->1:3", Kind: Drop, At: 1000},
			{Link: "0:1->1:3", Kind: Corrupt, At: 2000, Bit: 17},
			{Link: "1:3->0:1", Kind: Flap, At: 3000, Until: 3500},
			{Kind: Kill, At: 9000},
		},
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != s.Seed || got.DropProb != s.DropProb || got.CorruptProb != s.CorruptProb {
		t.Fatalf("scalars did not round-trip: %+v", got)
	}
	if len(got.Events) != len(s.Events) {
		t.Fatalf("events did not round-trip: %+v", got.Events)
	}
	for i := range s.Events {
		if got.Events[i] != s.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], s.Events[i])
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{DropProb: 1.5},
		{CorruptProb: -0.1},
		{Events: []Event{{Kind: "melt", At: 1}}},
		{Events: []Event{{Kind: Drop, At: -1}}},
		{Events: []Event{{Kind: Flap, At: 100, Until: 100}}},
		{Events: []Event{{Kind: Corrupt, At: 1, Bit: 256}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("spec %d should not validate: %+v", i, bad[i])
		}
	}
	good := Spec{Seed: 1, DropProb: 0.5, Events: []Event{{Kind: Flap, At: 1, Until: 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if _, err := ReadJSON(strings.NewReader(`{"drop_prob": 2}`)); err == nil {
		t.Error("ReadJSON must validate")
	}
}

func TestSpecZero(t *testing.T) {
	var nilSpec *Spec
	if !nilSpec.Zero() {
		t.Error("nil spec is zero")
	}
	if !(&Spec{Seed: 99}).Zero() {
		t.Error("seed alone schedules nothing")
	}
	if (&Spec{DropProb: 0.1}).Zero() || (&Spec{Events: []Event{{Kind: Drop}}}).Zero() {
		t.Error("spec with faults reported zero")
	}
}

// TestStreamsIndependentOfCreationOrder: the per-link RNG streams are
// keyed on (seed, link name) only, so the order links are registered in
// cannot change the fault sequence.
func TestStreamsIndependentOfCreationOrder(t *testing.T) {
	spec := &Spec{Seed: 5, DropProb: 0.2}
	sample := func(li *LinkInjector) []bool {
		var out []bool
		for i := 0; i < 64; i++ {
			_, dropped := li.Transmit(int64(i), [WordSize]byte{})
			out = append(out, dropped)
		}
		return out
	}
	a1 := sample(NewInjector(spec).ForLink("a"))
	inj := NewInjector(spec)
	inj.ForLink("zz")
	inj.ForLink("b")
	a2 := sample(inj.ForLink("a"))
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("drop sequence diverged at packet %d", i)
		}
	}
}

func TestScriptedEventsOneShot(t *testing.T) {
	spec := &Spec{Events: []Event{
		{Link: "l", Kind: Drop, At: 10},
		{Link: "l", Kind: Corrupt, At: 20, Bit: 0},
	}}
	li := NewInjector(spec).ForLink("l")
	if _, dropped := li.Transmit(5, [WordSize]byte{}); dropped {
		t.Fatal("drop fired before its cycle")
	}
	if _, dropped := li.Transmit(12, [WordSize]byte{}); !dropped {
		t.Fatal("drop did not fire at/after its cycle")
	}
	if _, dropped := li.Transmit(13, [WordSize]byte{}); dropped {
		t.Fatal("drop fired twice")
	}
	w, _ := li.Transmit(25, [WordSize]byte{})
	if w[0] != 1 {
		t.Fatalf("corrupt did not flip bit 0: %v", w[0])
	}
	w, _ = li.Transmit(26, [WordSize]byte{})
	if w[0] != 0 {
		t.Fatal("corrupt fired twice")
	}
	if li.Dropped() != 1 || li.Corrupted() != 1 {
		t.Fatalf("counters: dropped=%d corrupted=%d", li.Dropped(), li.Corrupted())
	}
}

func TestFlapAndKillWindows(t *testing.T) {
	spec := &Spec{Events: []Event{
		{Link: "l", Kind: Flap, At: 100, Until: 200},
		{Link: "l", Kind: Kill, At: 1000},
	}}
	li := NewInjector(spec).ForLink("l")
	if li.Down(99) {
		t.Fatal("down before the flap window")
	}
	if !li.Down(100) || !li.Down(199) {
		t.Fatal("not down inside the flap window")
	}
	if li.Down(200) {
		t.Fatal("down after the flap window")
	}
	if li.Killed(999) {
		t.Fatal("killed early")
	}
	if !li.Killed(1000) || !li.Down(5000) {
		t.Fatal("kill is permanent")
	}
}

func TestTimelineRecordsFaults(t *testing.T) {
	spec := &Spec{Events: []Event{{Link: "l", Kind: Drop, At: 10}}}
	inj := NewInjector(spec)
	li := inj.ForLink("l")
	li.Transmit(15, [WordSize]byte{})
	li.LoseOnWire(30)
	tl := inj.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline has %d entries, want 2: %+v", len(tl), tl)
	}
	if tl[0].Cycle != 15 || tl[0].Kind != "drop" || tl[1].Cycle != 30 || tl[1].Kind != "wire-loss" {
		t.Fatalf("timeline wrong: %+v", tl)
	}
}
