// Package fault implements a deterministic, replayable fault model for
// the simulated inter-FPGA links.
//
// The paper assumes lossless serial links: the BSP's QSFP interfaces
// "implement error correction, flow control, and handle backpressure"
// (§5.1), so the baseline simulator's links are perfect delay lines.
// This package supplies the machinery that assumption hides. A Spec — a
// JSON artifact like the topology file — describes a schedule of faults:
//
//   - scripted events: drop one packet, corrupt one packet, flap a link
//     for a cycle window, or kill a cable permanently, each pinned to a
//     cycle and a link;
//   - probabilistic background noise: per-link drop and bit-corruption
//     probabilities driven by a seeded splitmix64 stream.
//
// Everything is deterministic: the same Spec (including its seed)
// replays the exact same fault sequence cycle for cycle, because each
// link derives an independent RNG stream from the spec seed and the
// link's name, independent of map iteration or scheduling order.
//
// The injector is consulted by the reliable link layer (internal/link)
// at wire entry and wire exit; it never reaches into higher layers, so
// SMI semantics are preserved purely by the retransmission protocol and
// the failover machinery built on top.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind enumerates the fault classes of the model.
type Kind string

const (
	// Drop discards a single packet entering the wire at or after the
	// event cycle.
	Drop Kind = "drop"
	// Corrupt flips one bit of a single packet entering the wire at or
	// after the event cycle (header or payload, selected by Bit).
	Corrupt Kind = "corrupt"
	// Flap takes the link down for the window [At, Until): packets on
	// the wire during the outage are lost, and nothing new gets across.
	Flap Kind = "flap"
	// Kill takes the link down permanently from cycle At. The cluster's
	// failover machinery is expected to detect it and reroute.
	Kill Kind = "kill"
)

// Event is one scripted fault.
type Event struct {
	// Link names the directed link the fault applies to, in the cluster's
	// "dev:iface->dev:iface" form. An empty Link applies to every link.
	Link string `json:"link,omitempty"`
	// Kind is the fault class.
	Kind Kind `json:"kind"`
	// At is the cycle the fault arms (Drop/Corrupt hit the first packet
	// entering the wire at or after At; Flap/Kill take the link down at
	// At).
	At int64 `json:"at"`
	// Until ends a Flap window (exclusive). Ignored for other kinds.
	Until int64 `json:"until,omitempty"`
	// Bit selects which bit of the 32-byte wire word a Corrupt event
	// flips (0..255). Ignored for other kinds.
	Bit int `json:"bit,omitempty"`
}

// Spec is a complete, replayable fault schedule.
type Spec struct {
	// Seed drives the probabilistic faults. Two runs with the same seed
	// and schedule are cycle-for-cycle identical.
	Seed int64 `json:"seed"`
	// DropProb is the per-packet probability of a silent drop on every
	// link (0 disables).
	DropProb float64 `json:"drop_prob,omitempty"`
	// CorruptProb is the per-packet probability of a single-bit flip on
	// every link (0 disables).
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	// Events is the scripted schedule.
	Events []Event `json:"events,omitempty"`
}

// Validate checks the spec for structural errors.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.DropProb < 0 || s.DropProb > 1 {
		return fmt.Errorf("fault: drop_prob %g outside [0,1]", s.DropProb)
	}
	if s.CorruptProb < 0 || s.CorruptProb > 1 {
		return fmt.Errorf("fault: corrupt_prob %g outside [0,1]", s.CorruptProb)
	}
	for i, ev := range s.Events {
		switch ev.Kind {
		case Drop, Corrupt, Flap, Kill:
		default:
			return fmt.Errorf("fault: event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d: negative cycle %d", i, ev.At)
		}
		if ev.Kind == Flap && ev.Until <= ev.At {
			return fmt.Errorf("fault: event %d: flap window [%d,%d) is empty", i, ev.At, ev.Until)
		}
		if ev.Kind == Corrupt && (ev.Bit < 0 || ev.Bit >= 256) {
			return fmt.Errorf("fault: event %d: bit %d outside the 256-bit wire word", i, ev.Bit)
		}
	}
	return nil
}

// Zero reports whether the spec schedules no faults at all. A zero spec
// attached to a cluster enables the reliability layer but must not
// change any measured cycle count.
func (s *Spec) Zero() bool {
	return s == nil || (s.DropProb == 0 && s.CorruptProb == 0 && len(s.Events) == 0)
}

// WriteJSON serializes the spec (the replayable artifact, mirroring the
// topology and routing-table JSON files of the Fig 8 workflow).
func (s *Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses and validates a spec written by WriteJSON.
func ReadJSON(r io.Reader) (*Spec, error) {
	var s Spec
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: parsing JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// eventsFor returns the scripted events applying to one link, sorted by
// arming cycle (stably, preserving spec order for equal cycles).
func (s *Spec) eventsFor(link string) []Event {
	var out []Event
	for _, ev := range s.Events {
		if ev.Link == "" || ev.Link == link {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
