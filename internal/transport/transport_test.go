package transport

import (
	"fmt"
	"testing"

	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// testNet is a cluster of transport layers wired per a topology, with
// one send and one receive endpoint per (device, port).
type testNet struct {
	eng     *sim.Engine
	devices []Transport
	send    map[[2]int]*sim.Fifo[packet.Packet] // [rank, port] -> app->CKS fifo
	recv    map[[2]int]*sim.Fifo[packet.Packet] // [rank, port] -> CKR->app fifo
}

func buildNet(t *testing.T, topo *topology.Topology, ports []int, cfg Config, linkLatency int64) *testNet {
	t.Helper()
	routes, err := routing.Compute(topo, routing.ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	n := &testNet{
		eng:  sim.NewEngine(),
		send: make(map[[2]int]*sim.Fifo[packet.Packet]),
		recv: make(map[[2]int]*sim.Fifo[packet.Packet]),
	}
	for r := 0; r < topo.Devices; r++ {
		var bindings []PortBinding
		for i, p := range ports {
			s := sim.NewFifo[packet.Packet](n.eng, fmt.Sprintf("app%d.%d.send", r, p), 8)
			v := sim.NewFifo[packet.Packet](n.eng, fmt.Sprintf("app%d.%d.recv", r, p), 8)
			bindings = append(bindings, PortBinding{Port: p, Iface: i % topo.Ifaces, Send: s, Recv: v, Paced: true})
			n.send[[2]int{r, p}] = s
			n.recv[[2]int{r, p}] = v
		}
		d, err := New(n.eng, r, topo.Ifaces, routes, bindings, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.devices = append(n.devices, d)
	}
	for _, c := range topo.Connections {
		a, b := c.A, c.B
		link.New(n.eng, n.eng, fmt.Sprintf("%s->%s", a, b),
			n.devices[a.Device].NetOut(a.Iface), n.devices[b.Device].NetIn(b.Iface), linkLatency)
		link.New(n.eng, n.eng, fmt.Sprintf("%s->%s", b, a),
			n.devices[b.Device].NetOut(b.Iface), n.devices[a.Device].NetIn(a.Iface), linkLatency)
	}
	return n
}

func dataPacket(src, dst, port, seq int) packet.Packet {
	p := packet.Packet{Src: uint16(src), Dst: uint16(dst), Port: uint8(port), Op: packet.OpData, Count: 7}
	p.PutElem(0, packet.Int, packet.IntBits(int32(seq)))
	return p
}

// stream pushes n sequenced packets from (src,port) to (dst,port) and
// pops them at the destination, failing on order or payload mismatch.
func (n *testNet) stream(t *testing.T, src, dst, port, count int) {
	t.Helper()
	sf := n.send[[2]int{src, port}]
	rf := n.recv[[2]int{dst, port}]
	sim.NewProc(n.eng, fmt.Sprintf("sender%d", src), func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			sf.PushProc(p, dataPacket(src, dst, port, i))
		}
	})
	sim.NewProc(n.eng, fmt.Sprintf("receiver%d", dst), func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			pkt := rf.PopProc(p)
			if got := packet.BitsInt(pkt.Elem(0, packet.Int)); got != int32(i) {
				t.Errorf("packet %d out of order: got seq %d", i, got)
				return
			}
			if int(pkt.Src) != src {
				t.Errorf("packet %d has src %d, want %d", i, pkt.Src, src)
				return
			}
		}
	})
}

func TestPointToPointDirectLink(t *testing.T) {
	topo, _ := topology.Bus(2)
	n := buildNet(t, topo, []int{0}, DefaultConfig(), 10)
	n.stream(t, 0, 1, 0, 100)
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiHopForwarding(t *testing.T) {
	topo, _ := topology.Bus(4)
	n := buildNet(t, topo, []int{0}, DefaultConfig(), 10)
	n.stream(t, 0, 3, 0, 50)
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Intermediate devices 1 and 2 must have forwarded the traffic.
	for _, mid := range []int{1, 2} {
		cks, ckr := n.devices[mid].Forwarded()
		if cks == 0 || ckr == 0 {
			t.Errorf("device %d did not forward (cks=%d ckr=%d)", mid, cks, ckr)
		}
	}
}

func TestIntraRankLoopback(t *testing.T) {
	// "Channels can also be used to communicate between two applications
	// that exist within the same rank using matching ports."
	topo, _ := topology.Bus(2)
	n := buildNet(t, topo, []int{0, 1}, DefaultConfig(), 10)
	n.stream(t, 0, 0, 1, 25) // rank 0 to itself on port 1
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossIfacePortDelivery(t *testing.T) {
	// Port 2 is bound to iface 2, but traffic between adjacent bus
	// devices arrives on iface East/West: delivery requires CKR->CKR
	// (and app->CKS_2->CKS_exit) crossbar hops.
	topo, _ := topology.Bus(2)
	n := buildNet(t, topo, []int{0, 1, 2}, DefaultConfig(), 10)
	n.stream(t, 0, 1, 2, 40)
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTorusAllPairs(t *testing.T) {
	topo, _ := topology.Torus2D(2, 4)
	n := buildNet(t, topo, []int{0}, DefaultConfig(), 5)
	// Every rank streams to the diagonal opposite under a shifted
	// pattern so that all devices send and receive concurrently.
	for r := 0; r < 8; r++ {
		n.stream(t, r, (r+3)%8, 0, 30)
	}
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBidirectionalSimultaneous(t *testing.T) {
	topo, _ := topology.Bus(2)
	n := buildNet(t, topo, []int{0, 1}, DefaultConfig(), 10)
	n.stream(t, 0, 1, 0, 60)
	n.stream(t, 1, 0, 1, 60)
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownPortDropped(t *testing.T) {
	topo, _ := topology.Bus(2)
	n := buildNet(t, topo, []int{0}, DefaultConfig(), 10)
	sf := n.send[[2]int{0, 0}]
	sim.NewProc(n.eng, "sender", func(p *sim.Proc) {
		pkt := dataPacket(0, 1, 0, 0)
		pkt.Port = 99 // unbound port at the destination
		sf.PushProc(p, pkt)
		// Also exercise the recoverability: a valid packet after the bad one.
		sf.PushProc(p, dataPacket(0, 1, 0, 1))
	})
	rf := n.recv[[2]int{1, 0}]
	sim.NewProc(n.eng, "receiver", func(p *sim.Proc) {
		pkt := rf.PopProc(p)
		if got := packet.BitsInt(pkt.Elem(0, packet.Int)); got != 1 {
			t.Errorf("expected the valid packet (seq 1), got seq %d", got)
		}
	})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.devices[1].Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", n.devices[1].Dropped())
	}
}

func TestInvalidBindingRejected(t *testing.T) {
	topo, _ := topology.Bus(2)
	routes, _ := routing.Compute(topo, routing.ShortestPath)
	e := sim.NewEngine()
	_, err := New(e, 0, 4, routes, []PortBinding{{Port: 0, Iface: 9}}, DefaultConfig())
	if err == nil {
		t.Fatal("out-of-range iface must be rejected")
	}
	f := sim.NewFifo[packet.Packet](e, "f", 4)
	_, err = New(e, 0, 4, routes, []PortBinding{
		{Port: 0, Iface: 0, Send: f},
		{Port: 0, Iface: 1, Send: f},
	}, DefaultConfig())
	if err == nil {
		t.Fatal("duplicate port binding must be rejected")
	}
}

// TestInjectionRateR1 pins the Table 4 anchor: with 4 CKS/CKR pairs and
// one application endpoint, a CKS has 5 inputs (1 app + 1 paired CKR +
// 3 other CKS); at R=1 it serves the application once every 5 cycles.
func TestInjectionRateR1(t *testing.T) {
	got := measureInjection(t, 1, 2000)
	if got < 4.8 || got > 5.2 {
		t.Fatalf("injection latency at R=1 = %.2f cycles/packet, want ~5 (paper Table 4)", got)
	}
}

func TestInjectionRateDecreasesWithR(t *testing.T) {
	prev := measureInjection(t, 1, 2000)
	for _, r := range []int{4, 8, 16} {
		cur := measureInjection(t, r, 2000)
		if cur >= prev {
			t.Fatalf("injection latency should fall with R: R=%d gave %.2f >= %.2f", r, cur, prev)
		}
		prev = cur
	}
	if prev < 1.0 {
		t.Fatalf("injection latency cannot beat 1 cycle/packet, got %.2f", prev)
	}
}

// measureInjection returns cycles per packet sustained by a single
// sender through a 4-interface transport layer.
func measureInjection(t *testing.T, r int, packets int) float64 {
	t.Helper()
	topo, _ := topology.Bus(2)
	cfg := DefaultConfig()
	cfg.R = r
	n := buildNet(t, topo, []int{0}, cfg, 10)
	sf := n.send[[2]int{0, 0}]
	rf := n.recv[[2]int{1, 0}]

	var start, end int64
	sim.NewProc(n.eng, "sender", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < packets; i++ {
			sf.PushProc(p, dataPacket(0, 1, 0, i))
		}
		end = p.Now()
	})
	sim.NewProc(n.eng, "receiver", func(p *sim.Proc) {
		for i := 0; i < packets; i++ {
			rf.PopProc(p)
		}
	})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return float64(end-start) / float64(packets)
}

func TestSkipIdleArbiterInjection(t *testing.T) {
	// With the priority-encoder arbiter a single sender is served almost
	// every cycle even at R=1, instead of every 5th.
	topo, _ := topology.Bus(2)
	cfg := Config{R: 1, Arbiter: ArbiterSkipIdle}
	n := buildNet(t, topo, []int{0}, cfg, 10)
	sf := n.send[[2]int{0, 0}]
	rf := n.recv[[2]int{1, 0}]
	const packets = 2000
	var start, end int64
	sim.NewProc(n.eng, "sender", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < packets; i++ {
			sf.PushProc(p, dataPacket(0, 1, 0, i))
		}
		end = p.Now()
	})
	sim.NewProc(n.eng, "receiver", func(p *sim.Proc) {
		for i := 0; i < packets; i++ {
			rf.PopProc(p)
		}
	})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	perMsg := float64(end-start) / packets
	if perMsg > 1.6 {
		t.Fatalf("skip-idle injection = %.2f cycles/msg, want near 1", perMsg)
	}
}

func TestCircuitLockAtTransportLevel(t *testing.T) {
	// An OpOpen followed by raw packets must arrive intact and in order
	// across an intermediate hop (two CK lockings along the path).
	topo, _ := topology.Bus(3)
	n := buildNet(t, topo, []int{0}, DefaultConfig(), 10)
	sf := n.send[[2]int{0, 0}]
	rf := n.recv[[2]int{2, 0}]
	const raws = 40
	sim.NewProc(n.eng, "sender", func(p *sim.Proc) {
		open := packet.EncodeOpen(0, 2, 0, packet.OpenInfo{RawPackets: raws, Elems: raws * 8})
		sf.PushProc(p, open)
		for i := 0; i < raws; i++ {
			raw := packet.Packet{Op: packet.OpRaw, Count: 8}
			raw.PutRawElem(0, packet.Int, packet.IntBits(int32(i)))
			sf.PushProc(p, raw)
		}
	})
	sim.NewProc(n.eng, "receiver", func(p *sim.Proc) {
		first := rf.PopProc(p)
		if first.Op != packet.OpOpen {
			t.Errorf("expected OPEN first, got %v", first.Op)
			return
		}
		for i := 0; i < raws; i++ {
			raw := rf.PopProc(p)
			if raw.Op != packet.OpRaw {
				t.Errorf("packet %d: expected RAW, got %v", i, raw.Op)
				return
			}
			if got := packet.BitsInt(raw.RawElem(0, packet.Int)); got != int32(i) {
				t.Errorf("raw packet %d out of order: %d", i, got)
				return
			}
		}
	})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
}
