package transport

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
)

// device is the transport core shared by every implementation: Q
// CKS/CKR pairs plus the FIFO fabric between them. It implements all of
// the Transport interface except Kind; concrete transports embed it.
type device struct {
	rank   int
	ifaces int

	// netOut[q] is written by CKS_q and drained by the outgoing link on
	// interface q; netIn[q] is filled by the incoming link and read by
	// CKR_q.
	netOut []*sim.Fifo[packet.Packet]
	netIn  []*sim.Fifo[packet.Packet]

	cks []*ck
	ckr []*ck

	eng    *sim.Engine
	cksIDs []sim.KernelID
	ckrIDs []sim.KernelID

	// interCKS[a][b] carries packets CKS_a -> CKS_b (nil on the
	// diagonal); retained for the failover drain.
	interCKS [][]*sim.Fifo[packet.Packet]

	numFifos int // internal FIFOs instantiated (excluding app endpoints)

	dropped uint64 // packets addressed to unbound ports

	// Failover controls (see internal/core's fault manager): paused
	// freezes every CK of the device (host quiescing the shell during
	// reconfiguration); sendPaused freezes only the CKS kernels so
	// rescued packets can be injected ahead of new traffic without
	// reordering, while inbound delivery continues.
	paused     bool
	sendPaused bool
}

// SenderDriven is the paper's CKS/CKR transport (§4.2–4.3): senders
// inject eagerly; flow control is buffering, link backpressure, and the
// §3.3 application-level credit protocol. It is the device core with no
// additions.
type SenderDriven struct {
	device
}

// Kind reports SenderDrivenKind.
func (d *SenderDriven) Kind() Kind { return SenderDrivenKind }

// NewSenderDriven builds the sender-driven transport for one rank. Most
// callers should go through New.
func NewSenderDriven(e *sim.Engine, rank, ifaces int, routes *routing.Routes, bindings []PortBinding, cfg Config) (*SenderDriven, error) {
	cfg.fill()
	d := &SenderDriven{}
	if err := d.build(e, rank, ifaces, routes, bindings, cfg, nil); err != nil {
		return nil, err
	}
	return d, nil
}

// Rank echoes the construction rank.
func (d *device) Rank() int { return d.rank }

// Ifaces echoes the construction interface count.
func (d *device) Ifaces() int { return d.ifaces }

// NetOut returns the outgoing network-port FIFO of interface q.
func (d *device) NetOut(q int) *sim.Fifo[packet.Packet] { return d.netOut[q] }

// NetIn returns the incoming network-port FIFO of interface q.
func (d *device) NetIn(q int) *sim.Fifo[packet.Packet] { return d.netIn[q] }

// SetPaused freezes (or thaws) every communication kernel of the device.
// Freezing wakes parked kernels so they observe the reset cycle by cycle
// — a frozen span must not be mistaken for idle polling time.
func (d *device) SetPaused(v bool) {
	d.paused = v
	d.wakeAll(d.cksIDs)
	d.wakeAll(d.ckrIDs)
}

// SetSendPaused freezes (or thaws) only the CKS kernels.
func (d *device) SetSendPaused(v bool) {
	d.sendPaused = v
	d.wakeAll(d.cksIDs)
}

func (d *device) wakeAll(ids []sim.KernelID) {
	for _, id := range ids {
		d.eng.WakeKernel(id)
	}
}

// Grants reports pacing grants issued; the shared core issues none.
func (d *device) Grants() uint64 { return 0 }

// Shape returns the device's structural footprint.
func (d *device) Shape() Shape {
	s := Shape{Fifos: d.numFifos}
	for _, k := range d.cks {
		s.CKPorts = append(s.CKPorts, len(k.inputs)+k.nOut)
	}
	for _, k := range d.ckr {
		s.CKPorts = append(s.CKPorts, len(k.inputs)+k.nOut)
	}
	return s
}

// build constructs the CKS/CKR fabric and registers its kernels with
// the engine. intercept, when non-nil, is consulted by CKR_q for
// locally addressed packets before the port lookup; returning a non-nil
// FIFO diverts the packet there (the receiver-driven transport uses it
// to capture its in-memory pacing ops).
func (d *device) build(e *sim.Engine, rank, ifaces int, routes *routing.Routes, bindings []PortBinding, cfg Config, intercept func(q int, p packet.Packet) *sim.Fifo[packet.Packet]) error {
	if ifaces <= 0 {
		return fmt.Errorf("transport: device %d needs at least one interface", rank)
	}
	d.rank = rank
	d.ifaces = ifaces
	d.eng = e
	skipIdle := cfg.Arbiter == ArbiterSkipIdle

	nf := func(kind string, q int) *sim.Fifo[packet.Packet] {
		d.numFifos++
		return sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.%s%d", rank, kind, q), cfg.CKDepth)
	}

	// Network port FIFOs.
	for q := 0; q < ifaces; q++ {
		d.netOut = append(d.netOut, nf("netout", q))
		d.netIn = append(d.netIn, nf("netin", q))
	}

	// Pairwise FIFOs.
	cksToCkr := make([]*sim.Fifo[packet.Packet], ifaces) // CKS_q -> CKR_q
	ckrToCks := make([]*sim.Fifo[packet.Packet], ifaces) // CKR_q -> CKS_q
	for q := 0; q < ifaces; q++ {
		cksToCkr[q] = nf("cks2ckr", q)
		ckrToCks[q] = nf("ckr2cks", q)
	}
	// Inter-kernel crossbars: interCKS[a][b] carries packets CKS_a ->
	// CKS_b, likewise for CKR.
	interCKS := make([][]*sim.Fifo[packet.Packet], ifaces)
	interCKR := make([][]*sim.Fifo[packet.Packet], ifaces)
	for a := 0; a < ifaces; a++ {
		interCKS[a] = make([]*sim.Fifo[packet.Packet], ifaces)
		interCKR[a] = make([]*sim.Fifo[packet.Packet], ifaces)
		for b := 0; b < ifaces; b++ {
			if a == b {
				continue
			}
			interCKS[a][b] = sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.cks%d-cks%d", rank, a, b), cfg.CKDepth)
			interCKR[a][b] = sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.ckr%d-ckr%d", rank, a, b), cfg.CKDepth)
			d.numFifos += 2
		}
	}

	d.interCKS = interCKS

	// Port lookup tables.
	portIface := make(map[int]int)
	portRecv := make(map[int]*sim.Fifo[packet.Packet])
	for _, b := range bindings {
		if b.Iface < 0 || b.Iface >= ifaces {
			return fmt.Errorf("transport: device %d port %d bound to invalid interface %d", rank, b.Port, b.Iface)
		}
		if _, dup := portIface[b.Port]; dup {
			return fmt.Errorf("transport: device %d port %d bound twice", rank, b.Port)
		}
		portIface[b.Port] = b.Iface
		if b.Recv != nil {
			portRecv[b.Port] = b.Recv
		}
	}

	// Build the CKS kernels.
	for q := 0; q < ifaces; q++ {
		q := q
		var inputs []*sim.Fifo[packet.Packet]
		var names []string
		for _, b := range bindings {
			if b.Iface == q && b.Send != nil {
				inputs = append(inputs, b.Send)
				names = append(names, fmt.Sprintf("app:%d", b.Port))
			}
		}
		inputs = append(inputs, ckrToCks[q])
		names = append(names, "pair-ckr")
		for j := 0; j < ifaces; j++ {
			if j != q {
				inputs = append(inputs, interCKS[j][q])
				names = append(names, fmt.Sprintf("cks%d", j))
			}
		}
		route := func(p packet.Packet) *sim.Fifo[packet.Packet] {
			if int(p.Dst) == rank {
				return cksToCkr[q]
			}
			exit := routes.At(rank, int(p.Dst))
			if exit < 0 {
				d.dropped++
				return nil
			}
			if exit == q {
				return d.netOut[q]
			}
			return interCKS[q][exit]
		}
		// Outputs: the network port, the paired CKR, and every other CKS.
		k := newCK(fmt.Sprintf("dev%d.cks%d", rank, q), inputs, names, 1+1+(ifaces-1), cfg.R, skipIdle, route)
		k.frozen = func() bool { return d.paused || d.sendPaused }
		d.cks = append(d.cks, k)
		id := e.AddKernel(k)
		d.cksIDs = append(d.cksIDs, id)
		for _, in := range inputs {
			in.WakesKernel(id)
		}
		// Pops on the output FIFOs resume a parked held-packet retry.
		d.netOut[q].WakesKernel(id)
		cksToCkr[q].WakesKernel(id)
		for j := 0; j < ifaces; j++ {
			if j != q {
				interCKS[q][j].WakesKernel(id)
			}
		}
	}

	// Build the CKR kernels.
	for q := 0; q < ifaces; q++ {
		q := q
		inputs := []*sim.Fifo[packet.Packet]{d.netIn[q], cksToCkr[q]}
		names := []string{"net", "pair-cks"}
		for j := 0; j < ifaces; j++ {
			if j != q {
				inputs = append(inputs, interCKR[j][q])
				names = append(names, fmt.Sprintf("ckr%d", j))
			}
		}
		route := func(p packet.Packet) *sim.Fifo[packet.Packet] {
			if int(p.Dst) != rank {
				// This rank is an intermediate hop: hand the packet to
				// the paired CKS for re-routing.
				return ckrToCks[q]
			}
			if intercept != nil {
				if f := intercept(q, p); f != nil {
					return f
				}
			}
			target, ok := portIface[int(p.Port)]
			if !ok {
				d.dropped++
				return nil
			}
			if target == q {
				f := portRecv[int(p.Port)]
				if f == nil {
					d.dropped++
				}
				return f
			}
			return interCKR[q][target]
		}
		// Outputs: receive endpoints bound to q, the paired CKS, and
		// every other CKR.
		nApps := 0
		for _, b := range bindings {
			if b.Iface == q && b.Recv != nil {
				nApps++
			}
		}
		k := newCK(fmt.Sprintf("dev%d.ckr%d", rank, q), inputs, names, nApps+1+(ifaces-1), cfg.R, skipIdle, route)
		k.frozen = func() bool { return d.paused }
		d.ckr = append(d.ckr, k)
		id := e.AddKernel(k)
		d.ckrIDs = append(d.ckrIDs, id)
		for _, in := range inputs {
			in.WakesKernel(id)
		}
		// Pops on the output FIFOs resume a parked held-packet retry.
		ckrToCks[q].WakesKernel(id)
		for _, b := range bindings {
			if b.Iface == q && b.Recv != nil {
				b.Recv.WakesKernel(id)
			}
		}
		for j := 0; j < ifaces; j++ {
			if j != q {
				interCKR[q][j].WakesKernel(id)
			}
		}
	}
	return nil
}

// Dropped returns the number of packets discarded because they addressed
// an unbound port or unreachable rank.
func (d *device) Dropped() uint64 { return d.dropped }

// CountDropped adds externally discarded packets (the fault manager's
// unroutable rescues) to the device's drop counter.
func (d *device) CountDropped(n uint64) { d.dropped += n }

// DrainExit empties and returns, oldest first, every packet already
// routed toward the given exit interface: the network-port FIFO, the
// CKS held registers targeting it, and the inter-CKS crossbar columns
// feeding it. The fault manager calls it (with the device paused) after
// a permanent link death, so stranded traffic can be re-injected on the
// regenerated routes in its original per-flow order.
func (d *device) DrainExit(exit int) []packet.Packet {
	var out []packet.Packet
	drainFifo := func(f *sim.Fifo[packet.Packet]) {
		for {
			p, ok := f.TryPop()
			if !ok {
				return
			}
			out = append(out, p)
		}
	}
	drainHeld := func(k *ck, target *sim.Fifo[packet.Packet]) {
		if k.hasHeld && k.heldOut == target {
			out = append(out, k.held)
			k.hasHeld = false
		}
	}
	// Oldest first: the port FIFO, then the packet that failed to enter
	// it, then each crossbar column followed by its feeder's held slot.
	drainFifo(d.netOut[exit])
	drainHeld(d.cks[exit], d.netOut[exit])
	for a := 0; a < d.ifaces; a++ {
		if a == exit || d.interCKS[a][exit] == nil {
			continue
		}
		drainFifo(d.interCKS[a][exit])
		drainHeld(d.cks[a], d.interCKS[a][exit])
	}
	return out
}

// Forwarded returns the total packets forwarded by all CKS and CKR
// kernels of this device.
func (d *device) Forwarded() (cks, ckr uint64) {
	for _, k := range d.cks {
		cks += k.forwarded
	}
	for _, k := range d.ckr {
		ckr += k.forwarded
	}
	return
}

// StreamFragments returns the total stream fragments cut through the
// device's kernels (each fragment counted once per kernel it crossed).
func (d *device) StreamFragments() uint64 {
	var n uint64
	for _, k := range d.cks {
		n += k.fragments
	}
	for _, k := range d.ckr {
		n += k.fragments
	}
	return n
}
