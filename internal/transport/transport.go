// Package transport implements SMI's transport layer: the send (CKS)
// and receive (CKR) communication kernels that move network packets
// between application endpoints and the device's network interfaces
// (paper §4.2–4.3).
//
// One CKS/CKR pair manages each network interface, avoiding any single
// centralization point. The kernels are interconnected as in the paper's
// Fig 7:
//
//	CKS_q inputs:  application send endpoints bound to q, the paired
//	               CKR_q, and every other CKS_j (j != q).
//	CKS_q outputs: network port q, the paired CKR_q (local delivery),
//	               and every other CKS_j.
//	CKR_q inputs:  network port q, the paired CKS_q, and every other
//	               CKR_j.
//	CKR_q outputs: application receive endpoints bound to q, the paired
//	               CKS_q (forwarding when this rank is an intermediate
//	               hop), and every other CKR_j.
//
// Inputs are served with the configurable polling scheme of §4.3: a
// kernel keeps reading from the same connection up to R times while data
// is available before moving on; advancing to the next connection costs
// one cycle.
//
// Two implementations live behind the Transport interface:
// SenderDriven is the paper-faithful transport above (senders push
// eagerly, flow control is the application-level credit protocol), and
// ReceiverDriven is a Homa-style ablation where receivers observe
// backlog announcements and pace senders with priority-ordered grants
// (see receiver.go).
package transport

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Kind selects a transport implementation.
type Kind uint8

const (
	// SenderDrivenKind is the paper's CKS/CKR transport: senders inject
	// eagerly and rely on buffering, backpressure, and the §3.3
	// application-level credit protocol.
	SenderDrivenKind Kind = iota
	// ReceiverDrivenKind is the Homa-style ablation: receivers grant
	// send allowances in smallest-remaining-first order, bounded by
	// their endpoint buffer space; an unscheduled first window keeps
	// short-message latency.
	ReceiverDrivenKind
)

func (k Kind) String() string {
	switch k {
	case SenderDrivenKind:
		return "sender-driven"
	case ReceiverDrivenKind:
		return "receiver-driven"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Parse maps a wire name ("sender-driven", "receiver-driven"; "" means
// sender-driven) to a transport kind — the transport analog of
// apps.ParseTransferMode.
func Parse(s string) (Kind, error) {
	switch s {
	case "", "sender-driven":
		return SenderDrivenKind, nil
	case "receiver-driven":
		return ReceiverDrivenKind, nil
	default:
		return 0, fmt.Errorf("transport: unknown transport %q (want sender-driven or receiver-driven)", s)
	}
}

// Arbiter selects the CK input-arbitration scheme.
type Arbiter uint8

const (
	// ArbiterRoundRobin is the literal round-robin poller: advancing
	// over an idle input costs one cycle. It reproduces the paper's
	// Table 4 injection numbers exactly.
	ArbiterRoundRobin Arbiter = iota
	// ArbiterSkipIdle is a priority-encoder arbiter that jumps straight
	// to the next input holding data. It reproduces the paper's Fig 9
	// bandwidth (91% of payload peak) instead — the published RTL
	// evidently behaves in between (see EXPERIMENTS.md D1).
	ArbiterSkipIdle
)

func (a Arbiter) String() string {
	switch a {
	case ArbiterRoundRobin:
		return "round-robin"
	case ArbiterSkipIdle:
		return "skip-idle"
	default:
		return fmt.Sprintf("Arbiter(%d)", uint8(a))
	}
}

// ParseArbiter maps a wire name ("round-robin", "skip-idle"; "" means
// round-robin) to an arbiter.
func ParseArbiter(s string) (Arbiter, error) {
	switch s {
	case "", "round-robin":
		return ArbiterRoundRobin, nil
	case "skip-idle":
		return ArbiterSkipIdle, nil
	default:
		return 0, fmt.Errorf("transport: unknown arbiter %q (want round-robin or skip-idle)", s)
	}
}

// Config tunes the transport layer of one device.
type Config struct {
	// R is the polling factor: consecutive reads from one input while
	// data is available. The paper's microbenchmarks use R = 8.
	R int
	// CKDepth is the depth of the FIFOs between communication kernels
	// and of the network-port FIFOs.
	CKDepth int
	// Kind selects the transport implementation (default SenderDriven).
	Kind Kind
	// Arbiter selects the CK input-arbitration scheme (default
	// ArbiterRoundRobin).
	Arbiter Arbiter
	// SkipIdle selects the skip-idle arbiter.
	//
	// Deprecated: set Arbiter to ArbiterSkipIdle instead. The shim maps
	// SkipIdle=true onto Arbiter when Arbiter is left at its zero value
	// and will be removed next release.
	SkipIdle bool

	// Unscheduled is the receiver-driven first window: packets each
	// paced flow may send before its first grant. It is what keeps
	// short messages at eager latency (default 8 packets).
	Unscheduled int
	// GrantBatch is the largest allowance one OpGrant raises a flow by
	// (default 4 packets). Smaller batches track receiver buffer space
	// more tightly; larger ones amortize grant traffic.
	GrantBatch int
	// ReqInterval is the minimum cycle gap between repeated backlog
	// announcements of one credit-blocked flow (default 64 cycles).
	ReqInterval int64
}

// DefaultConfig mirrors the paper's experimental configuration.
func DefaultConfig() Config { return Config{R: 8, CKDepth: 8} }

func (c *Config) fill() {
	if c.R <= 0 {
		c.R = 8
	}
	if c.CKDepth <= 0 {
		c.CKDepth = 8
	}
	if c.SkipIdle && c.Arbiter == ArbiterRoundRobin {
		// Deprecated-field shim: honor the old boolean for one release.
		c.Arbiter = ArbiterSkipIdle
	}
	if c.Unscheduled <= 0 {
		c.Unscheduled = 8
	}
	if c.GrantBatch <= 0 {
		c.GrantBatch = 4
	}
	if c.ReqInterval <= 0 {
		c.ReqInterval = 64
	}
}

// PortBinding wires one application endpoint (one SMI port) to the
// transport layer. Ports must be known when the device is built — "all
// ports must be known at compile time, such that, within each rank, the
// necessary hardware connections ... can be instantiated" (§2.2).
type PortBinding struct {
	Port  int
	Iface int // CKS/CKR pair the endpoint's FIFOs attach to

	// Send carries packets from the application to CKS_Iface; Recv
	// carries packets from CKR_Iface to the application. Either may be
	// nil for one-directional endpoints.
	Send *sim.Fifo[packet.Packet]
	Recv *sim.Fifo[packet.Packet]

	// Paced marks the binding's plain OpData traffic as subject to
	// receiver-driven pacing (point-to-point data ports). Collective
	// support-kernel bindings and circuit/streaming ports run their own
	// flow-control protocols and stay unpaced. Ignored by the
	// sender-driven transport.
	Paced bool
}

// Transport is the device-level transport abstraction internal/core
// builds against: constructed from a Config and the rank's
// PortBindings, it registers its communication kernels on the rank's
// engine and exposes the network-port FIFOs the links wire up, the
// failover control surface, and the stats counters. Implementations
// must keep all mutable state engine-local to the rank (state crosses
// shards only via the netOut/netIn link boundaries) and behave as a
// deterministic function of simulated time and FIFO state, so every
// scheduler produces bit-identical runs (see DESIGN.md §9).
type Transport interface {
	// Kind reports which implementation was built — the self-report the
	// loud-fallback check in the benches verifies against the request.
	Kind() Kind
	// Rank and Ifaces echo the construction geometry.
	Rank() int
	Ifaces() int
	// NetOut(q) is written by CKS_q and drained by the outgoing link on
	// interface q; NetIn(q) is filled by the incoming link and read by
	// CKR_q.
	NetOut(q int) *sim.Fifo[packet.Packet]
	NetIn(q int) *sim.Fifo[packet.Packet]
	// SetPaused freezes (or thaws) every communication kernel;
	// SetSendPaused only the send side (the failover rescue window).
	SetPaused(v bool)
	SetSendPaused(v bool)
	// Dropped counts packets discarded for unbound ports or unreachable
	// ranks; CountDropped adds externally discarded packets.
	Dropped() uint64
	CountDropped(n uint64)
	// DrainExit empties and returns, oldest first, every packet already
	// routed toward the given exit interface (failover rescue).
	DrainExit(exit int) []packet.Packet
	// Forwarded returns total packets forwarded by the CKS and CKR
	// kernels; StreamFragments the stream fragments cut through; Grants
	// the pacing grants issued (0 for sender-driven).
	Forwarded() (cks, ckr uint64)
	StreamFragments() uint64
	Grants() uint64
	// Shape returns the structural footprint for the resource model.
	Shape() Shape
}

// New builds the transport selected by cfg.Kind for one rank and
// registers its kernels with the engine. routes must cover the
// destination ranks this device will see; bindings list every
// application endpoint.
func New(e *sim.Engine, rank, ifaces int, routes *routing.Routes, bindings []PortBinding, cfg Config) (Transport, error) {
	cfg.fill()
	switch cfg.Kind {
	case SenderDrivenKind:
		return NewSenderDriven(e, rank, ifaces, routes, bindings, cfg)
	case ReceiverDrivenKind:
		return NewReceiverDriven(e, rank, ifaces, routes, bindings, cfg)
	default:
		return nil, fmt.Errorf("transport: unknown transport kind %d", cfg.Kind)
	}
}

// Shape describes the structural footprint of a device's transport
// layer, the input to the resource model (internal/resources).
type Shape struct {
	// Fifos is the number of internal FIFOs (network ports, CKS/CKR
	// pairs, inter-kernel crossbars, pacing control queues), excluding
	// application endpoints.
	Fifos int
	// CKPorts lists, for each hardware kernel of the transport, its
	// input+output port count (CKS kernels first, then CKR, then any
	// implementation-specific kernels such as the receiver-driven pacer
	// and granter).
	CKPorts []int
}
