// Package transport implements SMI's transport layer: the send (CKS)
// and receive (CKR) communication kernels that move network packets
// between application endpoints and the device's network interfaces
// (paper §4.2–4.3).
//
// One CKS/CKR pair manages each network interface, avoiding any single
// centralization point. The kernels are interconnected as in the paper's
// Fig 7:
//
//	CKS_q inputs:  application send endpoints bound to q, the paired
//	               CKR_q, and every other CKS_j (j != q).
//	CKS_q outputs: network port q, the paired CKR_q (local delivery),
//	               and every other CKS_j.
//	CKR_q inputs:  network port q, the paired CKS_q, and every other
//	               CKR_j.
//	CKR_q outputs: application receive endpoints bound to q, the paired
//	               CKS_q (forwarding when this rank is an intermediate
//	               hop), and every other CKR_j.
//
// Inputs are served with the configurable polling scheme of §4.3: a
// kernel keeps reading from the same connection up to R times while data
// is available before moving on; advancing to the next connection costs
// one cycle.
package transport

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Config tunes the transport layer of one device.
type Config struct {
	// R is the polling factor: consecutive reads from one input while
	// data is available. The paper's microbenchmarks use R = 8.
	R int
	// CKDepth is the depth of the FIFOs between communication kernels
	// and of the network-port FIFOs.
	CKDepth int
	// SkipIdle selects a priority-encoder arbiter that jumps straight to
	// the next input holding data instead of scanning idle inputs one
	// per cycle. The default literal round-robin poller reproduces the
	// paper's Table 4 injection numbers exactly; the skip-idle arbiter
	// reproduces its Fig 9 bandwidth (91% of payload peak) instead — the
	// published RTL evidently behaves in between (see EXPERIMENTS.md D1).
	SkipIdle bool
}

// DefaultConfig mirrors the paper's experimental configuration.
func DefaultConfig() Config { return Config{R: 8, CKDepth: 8} }

func (c *Config) fill() {
	if c.R <= 0 {
		c.R = 8
	}
	if c.CKDepth <= 0 {
		c.CKDepth = 8
	}
}

// PortBinding wires one application endpoint (one SMI port) to the
// transport layer. Ports must be known when the device is built — "all
// ports must be known at compile time, such that, within each rank, the
// necessary hardware connections ... can be instantiated" (§2.2).
type PortBinding struct {
	Port  int
	Iface int // CKS/CKR pair the endpoint's FIFOs attach to

	// Send carries packets from the application to CKS_Iface; Recv
	// carries packets from CKR_Iface to the application. Either may be
	// nil for one-directional endpoints.
	Send *sim.Fifo[packet.Packet]
	Recv *sim.Fifo[packet.Packet]
}

// Device is the transport layer of one FPGA: Q CKS/CKR pairs plus the
// FIFO fabric between them.
type Device struct {
	Rank   int
	Ifaces int

	// NetOut[q] is written by CKS_q and drained by the outgoing link on
	// interface q; NetIn[q] is filled by the incoming link and read by
	// CKR_q.
	NetOut []*sim.Fifo[packet.Packet]
	NetIn  []*sim.Fifo[packet.Packet]

	cks []*ck
	ckr []*ck

	eng    *sim.Engine
	cksIDs []sim.KernelID
	ckrIDs []sim.KernelID

	// interCKS[a][b] carries packets CKS_a -> CKS_b (nil on the
	// diagonal); retained for the failover drain.
	interCKS [][]*sim.Fifo[packet.Packet]

	numFifos int // internal FIFOs instantiated (excluding app endpoints)

	dropped uint64 // packets addressed to unbound ports

	// Failover controls (see internal/core's fault manager): paused
	// freezes every CK of the device (host quiescing the shell during
	// reconfiguration); sendPaused freezes only the CKS kernels so
	// rescued packets can be injected ahead of new traffic without
	// reordering, while inbound delivery continues.
	paused     bool
	sendPaused bool
}

// SetPaused freezes (or thaws) every communication kernel of the device.
// Freezing wakes parked kernels so they observe the reset cycle by cycle
// — a frozen span must not be mistaken for idle polling time.
func (d *Device) SetPaused(v bool) {
	d.paused = v
	d.wakeAll(d.cksIDs)
	d.wakeAll(d.ckrIDs)
}

// SetSendPaused freezes (or thaws) only the CKS kernels.
func (d *Device) SetSendPaused(v bool) {
	d.sendPaused = v
	d.wakeAll(d.cksIDs)
}

func (d *Device) wakeAll(ids []sim.KernelID) {
	for _, id := range ids {
		d.eng.WakeKernel(id)
	}
}

// Shape describes the structural footprint of a device's transport
// layer, the input to the resource model (internal/resources).
type Shape struct {
	// Fifos is the number of internal FIFOs (network ports, CKS/CKR
	// pairs, inter-kernel crossbars), excluding application endpoints.
	Fifos int
	// CKPorts lists, for each communication kernel, its input+output
	// port count (CKS kernels first, then CKR).
	CKPorts []int
}

// Shape returns the device's structural footprint.
func (d *Device) Shape() Shape {
	s := Shape{Fifos: d.numFifos}
	for _, k := range d.cks {
		s.CKPorts = append(s.CKPorts, len(k.inputs)+k.nOut)
	}
	for _, k := range d.ckr {
		s.CKPorts = append(s.CKPorts, len(k.inputs)+k.nOut)
	}
	return s
}

// NewDevice builds the transport layer for one rank and registers its
// kernels with the engine. routes must cover the destination ranks this
// device will see; bindings list every application endpoint.
func NewDevice(e *sim.Engine, rank, ifaces int, routes *routing.Routes, bindings []PortBinding, cfg Config) (*Device, error) {
	cfg.fill()
	if ifaces <= 0 {
		return nil, fmt.Errorf("transport: device %d needs at least one interface", rank)
	}
	d := &Device{Rank: rank, Ifaces: ifaces, eng: e}

	nf := func(kind string, q int) *sim.Fifo[packet.Packet] {
		d.numFifos++
		return sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.%s%d", rank, kind, q), cfg.CKDepth)
	}

	// Network port FIFOs.
	for q := 0; q < ifaces; q++ {
		d.NetOut = append(d.NetOut, nf("netout", q))
		d.NetIn = append(d.NetIn, nf("netin", q))
	}

	// Pairwise FIFOs.
	cksToCkr := make([]*sim.Fifo[packet.Packet], ifaces) // CKS_q -> CKR_q
	ckrToCks := make([]*sim.Fifo[packet.Packet], ifaces) // CKR_q -> CKS_q
	for q := 0; q < ifaces; q++ {
		cksToCkr[q] = nf("cks2ckr", q)
		ckrToCks[q] = nf("ckr2cks", q)
	}
	// Inter-kernel crossbars: interCKS[a][b] carries packets CKS_a ->
	// CKS_b, likewise for CKR.
	interCKS := make([][]*sim.Fifo[packet.Packet], ifaces)
	interCKR := make([][]*sim.Fifo[packet.Packet], ifaces)
	for a := 0; a < ifaces; a++ {
		interCKS[a] = make([]*sim.Fifo[packet.Packet], ifaces)
		interCKR[a] = make([]*sim.Fifo[packet.Packet], ifaces)
		for b := 0; b < ifaces; b++ {
			if a == b {
				continue
			}
			interCKS[a][b] = sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.cks%d-cks%d", rank, a, b), cfg.CKDepth)
			interCKR[a][b] = sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.ckr%d-ckr%d", rank, a, b), cfg.CKDepth)
			d.numFifos += 2
		}
	}

	d.interCKS = interCKS

	// Port lookup tables.
	portIface := make(map[int]int)
	portRecv := make(map[int]*sim.Fifo[packet.Packet])
	for _, b := range bindings {
		if b.Iface < 0 || b.Iface >= ifaces {
			return nil, fmt.Errorf("transport: device %d port %d bound to invalid interface %d", rank, b.Port, b.Iface)
		}
		if _, dup := portIface[b.Port]; dup {
			return nil, fmt.Errorf("transport: device %d port %d bound twice", rank, b.Port)
		}
		portIface[b.Port] = b.Iface
		if b.Recv != nil {
			portRecv[b.Port] = b.Recv
		}
	}

	// Build the CKS kernels.
	for q := 0; q < ifaces; q++ {
		q := q
		var inputs []*sim.Fifo[packet.Packet]
		var names []string
		for _, b := range bindings {
			if b.Iface == q && b.Send != nil {
				inputs = append(inputs, b.Send)
				names = append(names, fmt.Sprintf("app:%d", b.Port))
			}
		}
		inputs = append(inputs, ckrToCks[q])
		names = append(names, "pair-ckr")
		for j := 0; j < ifaces; j++ {
			if j != q {
				inputs = append(inputs, interCKS[j][q])
				names = append(names, fmt.Sprintf("cks%d", j))
			}
		}
		route := func(p packet.Packet) *sim.Fifo[packet.Packet] {
			if int(p.Dst) == rank {
				return cksToCkr[q]
			}
			exit := routes.At(rank, int(p.Dst))
			if exit < 0 {
				d.dropped++
				return nil
			}
			if exit == q {
				return d.NetOut[q]
			}
			return interCKS[q][exit]
		}
		// Outputs: the network port, the paired CKR, and every other CKS.
		k := newCK(fmt.Sprintf("dev%d.cks%d", rank, q), inputs, names, 1+1+(ifaces-1), cfg.R, cfg.SkipIdle, route)
		k.frozen = func() bool { return d.paused || d.sendPaused }
		d.cks = append(d.cks, k)
		id := e.AddKernel(k)
		d.cksIDs = append(d.cksIDs, id)
		for _, in := range inputs {
			in.WakesKernel(id)
		}
		// Pops on the output FIFOs resume a parked held-packet retry.
		d.NetOut[q].WakesKernel(id)
		cksToCkr[q].WakesKernel(id)
		for j := 0; j < ifaces; j++ {
			if j != q {
				interCKS[q][j].WakesKernel(id)
			}
		}
	}

	// Build the CKR kernels.
	for q := 0; q < ifaces; q++ {
		q := q
		inputs := []*sim.Fifo[packet.Packet]{d.NetIn[q], cksToCkr[q]}
		names := []string{"net", "pair-cks"}
		for j := 0; j < ifaces; j++ {
			if j != q {
				inputs = append(inputs, interCKR[j][q])
				names = append(names, fmt.Sprintf("ckr%d", j))
			}
		}
		route := func(p packet.Packet) *sim.Fifo[packet.Packet] {
			if int(p.Dst) != rank {
				// This rank is an intermediate hop: hand the packet to
				// the paired CKS for re-routing.
				return ckrToCks[q]
			}
			target, ok := portIface[int(p.Port)]
			if !ok {
				d.dropped++
				return nil
			}
			if target == q {
				f := portRecv[int(p.Port)]
				if f == nil {
					d.dropped++
				}
				return f
			}
			return interCKR[q][target]
		}
		// Outputs: receive endpoints bound to q, the paired CKS, and
		// every other CKR.
		nApps := 0
		for _, b := range bindings {
			if b.Iface == q && b.Recv != nil {
				nApps++
			}
		}
		k := newCK(fmt.Sprintf("dev%d.ckr%d", rank, q), inputs, names, nApps+1+(ifaces-1), cfg.R, cfg.SkipIdle, route)
		k.frozen = func() bool { return d.paused }
		d.ckr = append(d.ckr, k)
		id := e.AddKernel(k)
		d.ckrIDs = append(d.ckrIDs, id)
		for _, in := range inputs {
			in.WakesKernel(id)
		}
		// Pops on the output FIFOs resume a parked held-packet retry.
		ckrToCks[q].WakesKernel(id)
		for _, b := range bindings {
			if b.Iface == q && b.Recv != nil {
				b.Recv.WakesKernel(id)
			}
		}
		for j := 0; j < ifaces; j++ {
			if j != q {
				interCKR[q][j].WakesKernel(id)
			}
		}
	}
	return d, nil
}

// Dropped returns the number of packets discarded because they addressed
// an unbound port or unreachable rank.
func (d *Device) Dropped() uint64 { return d.dropped }

// CountDropped adds externally discarded packets (the fault manager's
// unroutable rescues) to the device's drop counter.
func (d *Device) CountDropped(n uint64) { d.dropped += n }

// DrainExit empties and returns, oldest first, every packet already
// routed toward the given exit interface: the network-port FIFO, the
// CKS held registers targeting it, and the inter-CKS crossbar columns
// feeding it. The fault manager calls it (with the device paused) after
// a permanent link death, so stranded traffic can be re-injected on the
// regenerated routes in its original per-flow order.
func (d *Device) DrainExit(exit int) []packet.Packet {
	var out []packet.Packet
	drainFifo := func(f *sim.Fifo[packet.Packet]) {
		for {
			p, ok := f.TryPop()
			if !ok {
				return
			}
			out = append(out, p)
		}
	}
	drainHeld := func(k *ck, target *sim.Fifo[packet.Packet]) {
		if k.hasHeld && k.heldOut == target {
			out = append(out, k.held)
			k.hasHeld = false
		}
	}
	// Oldest first: the port FIFO, then the packet that failed to enter
	// it, then each crossbar column followed by its feeder's held slot.
	drainFifo(d.NetOut[exit])
	drainHeld(d.cks[exit], d.NetOut[exit])
	for a := 0; a < d.Ifaces; a++ {
		if a == exit || d.interCKS[a][exit] == nil {
			continue
		}
		drainFifo(d.interCKS[a][exit])
		drainHeld(d.cks[a], d.interCKS[a][exit])
	}
	return out
}

// Forwarded returns the total packets forwarded by all CKS and CKR
// kernels of this device.
func (d *Device) Forwarded() (cks, ckr uint64) {
	for _, k := range d.cks {
		cks += k.forwarded
	}
	for _, k := range d.ckr {
		ckr += k.forwarded
	}
	return
}

// StreamFragments returns the total stream fragments cut through the
// device's kernels (each fragment counted once per kernel it crossed).
func (d *Device) StreamFragments() uint64 {
	var n uint64
	for _, k := range d.cks {
		n += k.fragments
	}
	for _, k := range d.ckr {
		n += k.fragments
	}
	return n
}
