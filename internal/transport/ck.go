package transport

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// ck is one communication kernel (CKS or CKR). It polls its inputs with
// the paper's R scheme and forwards each packet to the FIFO selected by
// the route function. A packet whose output FIFO is full is held in a
// register until space frees (hardware stall), backpressuring the input
// side.
type ck struct {
	name     string
	inputs   []*sim.Fifo[packet.Packet]
	inName   []string
	r        int
	skipIdle bool
	route    func(packet.Packet) *sim.Fifo[packet.Packet]
	// frozen reports whether the kernel is held in reset by the host
	// (failover reconfiguration); nil means never frozen.
	frozen func() bool

	nOut int // output FIFO count (structural metadata for resources)

	cur     int   // input currently polled
	reads   int   // consecutive reads from cur
	lastNow int64 // cycle of the previous Tick (-1 before the first)
	pinned  bool  // last Tick ended held/circuit/frozen: pointer does not free-run

	held      packet.Packet
	heldOut   *sim.Fifo[packet.Packet]
	hasHeld   bool
	heldSince int64 // cycle the held register was loaded

	// Circuit switching state (§4.2, the multiplexing-free alternative):
	// after forwarding an OpOpen the kernel locks onto its input and
	// routes the announced number of headerless OpRaw packets to the same
	// output, ignoring every other input until the circuit closes.
	//
	// Stream cut-through reuses the same lock with a bounded horizon: an
	// OpStream fragment header pins the route only for its announced word
	// train, so the kernel returns to fair polling at every fragment
	// boundary instead of holding the path for the whole message.
	circuitOut  *sim.Fifo[packet.Packet]
	circuitLeft int

	forwarded uint64
	stalls    uint64
	fragments uint64 // stream fragments cut through this kernel
}

func newCK(name string, inputs []*sim.Fifo[packet.Packet], inNames []string, nOut, r int, skipIdle bool, route func(packet.Packet) *sim.Fifo[packet.Packet]) *ck {
	return &ck{name: name, inputs: inputs, inName: inNames, nOut: nOut, r: r, skipIdle: skipIdle, route: route, lastNow: -1}
}

func (c *ck) Name() string { return c.name }

// Tick performs one cycle of the polling state machine:
//
//   - If a packet is held (output was full), retry the push.
//   - Else if the current input has data and the read budget R is not
//     exhausted, pop one packet and route it.
//   - Else advance to the next input; advancing consumes the cycle, so
//     with R=1 and one active input among k, a packet is injected every
//     k cycles — the behaviour Table 4 measures.
func (c *ck) Tick(now int64) bool {
	active := c.tick(now)
	c.pinned = c.hasHeld || c.circuitLeft > 0 || (c.frozen != nil && c.frozen())
	return active
}

func (c *ck) tick(now int64) bool {
	if len(c.inputs) == 0 {
		return false
	}
	// The polling multiplexer is free-running hardware: it advances every
	// clock cycle whether or not the simulator executed the cycle, except
	// in the states that pin it (held packet, open circuit, host reset).
	// Cycles this kernel did not tick (parked, or skipped by a
	// fast-forward) from an unpinned state were by construction empty
	// polls, so catch up with one modular jump. This makes the polling
	// schedule a function of simulated time alone, identical under the
	// dense and event schedulers.
	if c.lastNow >= 0 && now > c.lastNow+1 && !c.pinned {
		gap := int((now - c.lastNow - 1) % int64(len(c.inputs)))
		c.cur = (c.cur + gap) % len(c.inputs)
		c.reads = 0
	}
	c.lastNow = now
	if c.frozen != nil && c.frozen() {
		// Held in reset during a failover repair: no packet moves, and
		// the stall is externally resolved (the fault manager reports
		// activity while it runs), so the kernel reports idle.
		return false
	}
	if c.hasHeld {
		if c.heldOut.TryPush(c.held) {
			// Close the stall window: the opening cycle was counted when
			// the register was loaded.
			c.stalls += uint64(now - c.heldSince - 1)
			c.hasHeld = false
			c.forwarded++
			return true
		}
		// A failed retry makes no progress: report inactivity so the
		// engine can distinguish a jammed transport (whose resolution
		// depends on some process draining an endpoint) from live
		// traffic, and diagnose application deadlocks instead of
		// spinning.
		return false
	}
	if c.circuitLeft > 0 {
		return c.tickCircuit(now)
	}
	in := c.inputs[c.cur]
	if c.skipIdle && !in.CanPop() {
		// Priority-encoder arbiter: select the next input holding data
		// combinationally and serve it this very cycle.
		for off := 1; off < len(c.inputs); off++ {
			cand := (c.cur + off) % len(c.inputs)
			if c.inputs[cand].CanPop() {
				c.cur, c.reads = cand, 0
				in = c.inputs[cand]
				break
			}
		}
	}
	if p, ok := in.TryPop(); ok {
		c.reads++
		if c.reads >= c.r {
			// The R-th read and the pointer advance share a cycle: with
			// R=1 the kernel "polls a different connection every cycle".
			c.advance()
		}
		out := c.route(p)
		if out == nil {
			// Undeliverable packet: dropped (counted by the device).
			return true
		}
		switch p.Op {
		case packet.OpOpen:
			// Establish the circuit: the announced raw packets follow on
			// this same input and go to this same output, exclusively.
			c.circuitOut = out
			c.circuitLeft = int(packet.DecodeOpen(p).RawPackets)
			// Stay locked on this input (undo any pointer advance).
			c.cur, c.reads = indexOf(c.inputs, in), 0
		case packet.OpStream:
			// Cut a stream fragment through: the header resolved the
			// route, so its word train follows on the locked path — but
			// only until the fragment ends, when polling resumes and
			// competing channels get their turn (fair release).
			c.circuitOut = out
			c.circuitLeft = int(packet.DecodeStreamFrag(p).Words)
			c.fragments++
			c.cur, c.reads = indexOf(c.inputs, in), 0
		}
		if !out.TryPush(p) {
			c.hold(p, out, now)
		} else {
			c.forwarded++
		}
		return true
	}
	// Empty input: advancing to the next connection consumes the cycle.
	c.advance()
	// Advancing over idle inputs is not "work": report activity only if
	// some input actually has data waiting (so the engine can fast-forward
	// fully idle transport layers).
	for _, f := range c.inputs {
		if f.CanPop() {
			return true
		}
	}
	return false
}

// IdleUntil parks the kernel whenever its next action depends on an
// external event rather than time: a held packet waits for a pop on its
// jammed output, an idle circuit waits for a commit on its locked input,
// and the plain polling state with every input empty waits for any input
// commit (the free-running pointer is reconstructed on wake from the
// elapsed time). Parking instead of polling is what lets the engine
// diagnose a jammed transport as a deadlock. A host reset is the one
// state held hot: the fault manager that resolves it runs every cycle
// anyway, and the pinned pointer must observe the span tick by tick.
func (c *ck) IdleUntil(now int64) int64 {
	if len(c.inputs) == 0 {
		return sim.Never
	}
	if c.frozen != nil && c.frozen() {
		return now + 1
	}
	if c.hasHeld || c.circuitLeft > 0 {
		return sim.Never
	}
	for _, f := range c.inputs {
		if f.CanPop() {
			return now
		}
	}
	return sim.Never
}

func (c *ck) advance() {
	c.cur = (c.cur + 1) % len(c.inputs)
	c.reads = 0
}

// hold loads the stall register with a packet whose output was full and
// opens its stall window: one stall is credited up front so an open
// window is visible in the stats, the remainder when the retry succeeds.
func (c *ck) hold(p packet.Packet, out *sim.Fifo[packet.Packet], now int64) {
	c.held, c.heldOut, c.hasHeld = p, out, true
	c.heldSince = now
	c.stalls++
}

// tickCircuit services an established circuit: one raw packet per cycle
// from the locked input to the locked output, blind to every other
// input — the multiplexing cost of circuit switching.
func (c *ck) tickCircuit(now int64) bool {
	in := c.inputs[c.cur]
	p, ok := in.TryPop()
	if !ok {
		// The circuit is idle until its sender provides data; other
		// inputs stay blocked behind the lock either way.
		return false
	}
	if p.Op != packet.OpRaw {
		// Protocol violation: close the circuit and fall back to normal
		// routing next cycle rather than misroute data.
		c.circuitLeft = 0
		out := c.route(p)
		if out == nil {
			return true
		}
		if !out.TryPush(p) {
			c.hold(p, out, now)
		} else {
			c.forwarded++
		}
		return true
	}
	if !c.circuitOut.TryPush(p) {
		c.hold(p, c.circuitOut, now)
		c.circuitLeft--
		if c.circuitLeft == 0 {
			c.advance()
		}
		return true
	}
	c.forwarded++
	c.circuitLeft--
	if c.circuitLeft == 0 {
		// Fair release: the lock expired (for a stream, at the fragment
		// boundary), so move the polling pointer on — a competing channel
		// gets served before the next header can re-lock this input.
		c.advance()
	}
	return true
}

// indexOf returns the position of f in inputs (it is always present).
func indexOf(inputs []*sim.Fifo[packet.Packet], f *sim.Fifo[packet.Packet]) int {
	for i, in := range inputs {
		if in == f {
			return i
		}
	}
	return 0
}
