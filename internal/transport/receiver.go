package transport

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
)

// ReceiverDriven is the Homa-style transport ablation: the CKS/CKR
// fabric is unchanged, but paced point-to-point flows pass a per-port
// pacing gate before reaching their CKS. Each sender may inject an
// unscheduled first window eagerly; beyond it the flow announces its
// backlog (OpGrantReq) and waits for the destination's granter, which
// serves announcements smallest-remaining-first (SRPT) and only grants
// what fits in the destination endpoint's free buffer space. Incast
// senders therefore take turns filling the receiver instead of piling
// into the network, while short messages never wait for a grant.
//
// The pacing ops are in-memory control packets (no 3-bit wire encoding
// — the wire op space is full, see internal/packet), so the
// receiver-driven transport composes with pristine links only; core
// rejects it for reliable/faulty clusters, which serialize frames.
type ReceiverDriven struct {
	device
	pacer   *rdPacer
	granter *rdGranter
}

// Kind reports ReceiverDrivenKind.
func (d *ReceiverDriven) Kind() Kind { return ReceiverDrivenKind }

// Grants returns the pacing grants this device's granter issued.
func (d *ReceiverDriven) Grants() uint64 {
	if d.granter == nil {
		return 0
	}
	return d.granter.grants
}

// Shape extends the core footprint with the pacer and granter kernels.
func (d *ReceiverDriven) Shape() Shape {
	s := d.device.Shape()
	if d.pacer != nil {
		if n := d.pacer.portCount(); n > 0 {
			s.CKPorts = append(s.CKPorts, n)
		}
	}
	if d.granter != nil {
		s.CKPorts = append(s.CKPorts, d.granter.portCount())
	}
	return s
}

// grantExitPort is the synthetic port the granter's output FIFO binds
// to. It only exists to attach the FIFO as a CKS input; grants are
// addressed by (Dst, Port) of the paced flow and are intercepted at the
// destination CKR before any port lookup, so the value never collides
// with application ports (which are non-negative).
const grantExitPort = -1

// NewReceiverDriven builds the receiver-driven transport for one rank.
// Most callers should go through New.
func NewReceiverDriven(e *sim.Engine, rank, ifaces int, routes *routing.Routes, bindings []PortBinding, cfg Config) (*ReceiverDriven, error) {
	cfg.fill()
	d := &ReceiverDriven{}

	// A rank with no paced bindings (pure-collective programs) needs no
	// pacing hardware at all; building none keeps such programs
	// bit-identical to the sender-driven transport — the granter's exit
	// FIFO would otherwise lengthen CKS_0's polling round.
	hasPaced := false
	for _, b := range bindings {
		if b.Paced && (b.Send != nil || b.Recv != nil) {
			hasPaced = true
			break
		}
	}
	if !hasPaced {
		if err := d.build(e, rank, ifaces, routes, bindings, cfg, nil); err != nil {
			return nil, err
		}
		return d, nil
	}

	// Interpose a pacing gate on every paced send side: the application
	// FIFO now feeds the pacer, and the gate (holding only packets
	// cleared to send) feeds the CKS. Unpaced bindings attach directly.
	eff := make([]PortBinding, len(bindings))
	copy(eff, bindings)
	var ports []*rdPacerPort
	recvOf := make(map[int]*sim.Fifo[packet.Packet])
	extraFifos := 0
	for i, b := range bindings {
		if !b.Paced {
			continue
		}
		if b.Recv != nil {
			recvOf[b.Port] = b.Recv
		}
		if b.Send == nil {
			continue
		}
		gate := sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.gate%d", rank, b.Port), cfg.CKDepth)
		extraFifos++
		eff[i].Send = gate
		ports = append(ports, &rdPacerPort{
			port:  b.Port,
			app:   b.Send,
			gate:  gate,
			flows: make(map[uint16]*rdFlow),
		})
	}

	// Per-interface control queues: CKR_q diverts locally addressed
	// pacing ops here (single writer per FIFO), the pacer and granter
	// drain them every tick.
	reqIn := make([]*sim.Fifo[packet.Packet], ifaces)
	grantIn := make([]*sim.Fifo[packet.Packet], ifaces)
	for q := 0; q < ifaces; q++ {
		reqIn[q] = sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.rdreq%d", rank, q), cfg.CKDepth)
		grantIn[q] = sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.rdgrant%d", rank, q), cfg.CKDepth)
		extraFifos += 2
	}

	// The granter's outgoing grants enter the fabric through CKS_0 like
	// any application traffic (routing and backpressure apply).
	grantOut := sim.NewFifo[packet.Packet](e, fmt.Sprintf("dev%d.grantout", rank), cfg.CKDepth)
	extraFifos++
	eff = append(eff, PortBinding{Port: grantExitPort, Iface: 0, Send: grantOut})

	intercept := func(q int, p packet.Packet) *sim.Fifo[packet.Packet] {
		switch p.Op {
		case packet.OpGrantReq:
			return reqIn[q]
		case packet.OpGrant:
			return grantIn[q]
		}
		return nil
	}
	if err := d.build(e, rank, ifaces, routes, eff, cfg, intercept); err != nil {
		return nil, err
	}
	d.numFifos += extraFifos

	// The control queues are popped by the pacer/granter; a pop must
	// resume a CKR parked on a full control queue (held-packet retry).
	for q := 0; q < ifaces; q++ {
		reqIn[q].WakesKernel(d.ckrIDs[q])
		grantIn[q].WakesKernel(d.ckrIDs[q])
	}

	d.pacer = &rdPacer{
		rank:        rank,
		ports:       ports,
		grantIn:     grantIn,
		unscheduled: uint64(cfg.Unscheduled),
		reqInterval: cfg.ReqInterval,
	}
	pacerID := e.AddKernel(d.pacer)
	for _, pp := range ports {
		pp.app.WakesKernel(pacerID)  // new application packets
		pp.gate.WakesKernel(pacerID) // CKS drained the gate: space freed
	}
	for q := 0; q < ifaces; q++ {
		grantIn[q].WakesKernel(pacerID)
	}

	d.granter = &rdGranter{
		rank:        rank,
		reqIn:       reqIn,
		grantOut:    grantOut,
		recvOf:      recvOf,
		flows:       make(map[rdFlowKey]*rdDemand),
		batch:       uint64(cfg.GrantBatch),
		unscheduled: uint64(cfg.Unscheduled),
	}
	granterID := e.AddKernel(d.granter)
	for q := 0; q < ifaces; q++ {
		reqIn[q].WakesKernel(granterID)
	}
	grantOut.WakesKernel(granterID) // CKS drained a grant: slot freed
	for _, rf := range recvOf {
		rf.WakesKernel(granterID) // app pops free endpoint buffer space
	}
	return d, nil
}

// rdFlow is the sender-side pacing state of one (port, destination)
// flow. All counters are cumulative packet counts, so a lost or
// reordered control packet can only delay a flow, never corrupt it.
type rdFlow struct {
	sent      uint64 // OpData packets passed to the gate
	granted   uint64 // allowance from the latest grant
	announced uint64 // demand last announced
	lastReq   int64  // cycle of the last announcement
}

// rdPacerPort is one paced send port: the application FIFO it drains
// and the gate FIFO feeding the port's CKS.
type rdPacerPort struct {
	port  int
	app   *sim.Fifo[packet.Packet]
	gate  *sim.Fifo[packet.Packet]
	flows map[uint16]*rdFlow // by destination rank
}

func (pp *rdPacerPort) flow(dst uint16) *rdFlow {
	f := pp.flows[dst]
	if f == nil {
		// Far enough in the past that the first announcement is never
		// rate-limited.
		f = &rdFlow{lastReq: -(int64(1) << 62)}
		pp.flows[dst] = f
	}
	return f
}

// rdPacer is the per-device sender pacing kernel. Each tick it applies
// incoming grants, then serves every paced port once — modelling one
// gate register per port, all clocked in parallel. Decisions depend
// only on committed FIFO state, its own counters, and simulated time,
// so every scheduler sees identical behaviour.
type rdPacer struct {
	rank        int
	ports       []*rdPacerPort
	grantIn     []*sim.Fifo[packet.Packet]
	unscheduled uint64
	reqInterval int64
}

func (k *rdPacer) Name() string { return fmt.Sprintf("dev%d.rdpacer", k.rank) }

func (k *rdPacer) portCount() int {
	// app + gate per paced port, plus the grant inputs.
	return 2*len(k.ports) + len(k.grantIn)
}

func (k *rdPacer) Tick(now int64) bool {
	active := false
	for _, g := range k.grantIn {
		for {
			p, ok := g.TryPop()
			if !ok {
				break
			}
			active = true
			pp := k.portByID(int(p.Port))
			if pp == nil {
				continue // grant for a port that is not paced here
			}
			// The grant's source is the flow's destination rank.
			f := pp.flow(p.Src)
			if t := uint64(packet.GrantTotal(p)); t > f.granted {
				f.granted = t
			}
		}
	}
	for _, pp := range k.ports {
		head, ok := pp.app.Peek()
		if !ok {
			continue
		}
		if head.Op != packet.OpData {
			// Control traffic (application-level credits, sync) is
			// never paced: pass it through as soon as the gate has room.
			if pp.gate.TryPush(head) {
				pp.app.TryPop()
				active = true
			}
			continue
		}
		f := pp.flow(head.Dst)
		if f.sent < f.granted+k.unscheduled {
			if pp.gate.TryPush(head) {
				pp.app.TryPop()
				f.sent++
				active = true
			}
			continue
		}
		// Credit-blocked: announce the cumulative backlog, rate-limited
		// per flow. Announcements travel through the gate and fabric
		// like data, so ordering with already-cleared packets holds.
		need := f.sent + uint64(pp.app.Len())
		if need > f.announced && now-f.lastReq >= k.reqInterval {
			req := packet.EncodeGrantReq(uint16(k.rank), head.Dst, uint8(pp.port), uint32(need))
			if pp.gate.TryPush(req) {
				f.announced = need
				f.lastReq = now
				active = true
			}
		}
	}
	return active
}

func (k *rdPacer) portByID(port int) *rdPacerPort {
	for _, pp := range k.ports {
		if pp.port == port {
			return pp
		}
	}
	return nil
}

func (k *rdPacer) IdleUntil(now int64) int64 {
	w := sim.Never
	for _, g := range k.grantIn {
		if g.CanPop() {
			return now
		}
	}
	for _, pp := range k.ports {
		head, ok := pp.app.Peek()
		if !ok {
			continue
		}
		if !pp.gate.CanPush() {
			continue // gate pops wake us
		}
		if head.Op != packet.OpData {
			return now
		}
		f := pp.flow(head.Dst)
		if f.sent < f.granted+k.unscheduled {
			return now
		}
		if need := f.sent + uint64(pp.app.Len()); need > f.announced {
			t := f.lastReq + k.reqInterval
			if t <= now {
				return now
			}
			if t < w {
				w = t
			}
		}
	}
	return w
}

// rdFlowKey identifies a paced flow at its receiver.
type rdFlowKey struct {
	src  uint16
	port int
}

// rdDemand is the receiver-side view of one flow.
type rdDemand struct {
	need    uint64 // latest announced cumulative demand
	granted uint64 // cumulative allowance issued
}

// rdGranter is the per-device receiver scheduling kernel. It folds
// backlog announcements into per-flow demand and issues at most one
// grant per cycle, picking the flow with the smallest remaining demand
// (SRPT — Homa's preemptive shortest-message-first policy) whose
// destination endpoint has free buffer space. Space is computed from
// committed FIFO state only: capacity minus occupancy minus allowance
// already granted but not yet arrived (arrivals read via
// PushesCommitted, which is phase-stable across schedulers).
type rdGranter struct {
	rank        int
	reqIn       []*sim.Fifo[packet.Packet]
	grantOut    *sim.Fifo[packet.Packet]
	recvOf      map[int]*sim.Fifo[packet.Packet]
	flows       map[rdFlowKey]*rdDemand
	order       []rdFlowKey // deterministic iteration (first-announcement order)
	batch       uint64
	unscheduled uint64
	grants      uint64
}

func (g *rdGranter) Name() string { return fmt.Sprintf("dev%d.rdgranter", g.rank) }

func (g *rdGranter) portCount() int { return len(g.reqIn) + 1 + len(g.recvOf) }

func (g *rdGranter) flow(key rdFlowKey) *rdDemand {
	f := g.flows[key]
	if f == nil {
		f = &rdDemand{}
		g.flows[key] = f
		g.order = append(g.order, key)
	}
	return f
}

// space returns how many more packets may be granted toward the given
// port without overcommitting its endpoint buffer. Every announced flow
// reserves granted + unscheduled slots — a sender may legally overshoot
// its allowance by the unscheduled window, and an overfilled port FIFO
// head-of-line-blocks the CKR for every other port, which can deadlock
// a receiver draining its ports in order. Arrivals (read via the
// phase-stable PushesCommitted) pay the reservation back, so the
// pessimism is transient per flow and bounded by one window plus one
// grant batch. Ports without a local receive endpoint are granted
// freely — the CKR will drop the data and count it, exactly as the
// sender-driven transport does.
func (g *rdGranter) space(port int) uint64 {
	rf := g.recvOf[port]
	if rf == nil {
		return g.batch
	}
	reserved := uint64(0)
	for key, f := range g.flows {
		if key.port == port {
			reserved += f.granted + g.unscheduled
		}
	}
	outstanding := uint64(0)
	if arrived := rf.PushesCommitted(); reserved > arrived {
		outstanding = reserved - arrived
	}
	free := uint64(rf.Cap()) - uint64(rf.Len())
	if outstanding >= free {
		return 0
	}
	return free - outstanding
}

func (g *rdGranter) Tick(now int64) bool {
	active := false
	for _, rq := range g.reqIn {
		for {
			p, ok := rq.TryPop()
			if !ok {
				break
			}
			active = true
			f := g.flow(rdFlowKey{src: p.Src, port: int(p.Port)})
			if t := uint64(packet.GrantTotal(p)); t > f.need {
				f.need = t
			}
		}
	}
	if g.grantOut.CanPush() {
		bestIdx := -1
		var bestRem, bestSpace uint64
		for i, key := range g.order {
			f := g.flows[key]
			if f.need <= f.granted {
				continue
			}
			rem := f.need - f.granted
			sp := g.space(key.port)
			if sp == 0 {
				continue
			}
			better := bestIdx < 0 || rem < bestRem
			if !better && rem == bestRem {
				bk := g.order[bestIdx]
				better = key.src < bk.src || (key.src == bk.src && key.port < bk.port)
			}
			if better {
				bestIdx, bestRem, bestSpace = i, rem, sp
			}
		}
		if bestIdx >= 0 {
			key := g.order[bestIdx]
			f := g.flows[key]
			n := bestRem
			if n > g.batch {
				n = g.batch
			}
			if n > bestSpace {
				n = bestSpace
			}
			f.granted += n
			g.grantOut.TryPush(packet.EncodeGrant(uint16(g.rank), key.src, uint8(key.port), uint32(f.granted)))
			g.grants++
			active = true
		}
	}
	return active
}

func (g *rdGranter) IdleUntil(now int64) int64 {
	for _, rq := range g.reqIn {
		if rq.CanPop() {
			return now
		}
	}
	if g.grantOut.CanPush() {
		for _, key := range g.order {
			f := g.flows[key]
			if f.need > f.granted && g.space(key.port) > 0 {
				return now
			}
		}
	}
	return sim.Never
}
