package transport

import (
	"fmt"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The transport-conformance suite: one table of invariants every
// Transport implementation must satisfy, executed against both kinds.
//
//   - per-channel integrity: no loss, duplication, or reordering of the
//     packets of one (src, dst, port) flow, for direct links, multi-hop
//     forwarding, bidirectional traffic, and incast;
//   - credit conservation (receiver-driven): every flow ends with
//     sent <= granted + unscheduled window, and allowances never exceed
//     announced demand by more than one grant batch;
//   - stats consistency: Kind matches the requested configuration,
//     Grants is zero iff sender-driven, drops stay zero on clean runs.

func conformanceKinds() []Kind { return []Kind{SenderDrivenKind, ReceiverDrivenKind} }

func conformanceConfig(k Kind) Config {
	cfg := DefaultConfig()
	cfg.Kind = k
	return cfg
}

func TestConformance(t *testing.T) {
	type scenario struct {
		name  string
		topo  func() *topology.Topology
		ports []int
		// flows: src, dst, port, count
		flows [][4]int
	}
	scenarios := []scenario{
		{
			name:  "direct",
			topo:  func() *topology.Topology { tp, _ := topology.Bus(2); return tp },
			ports: []int{0},
			flows: [][4]int{{0, 1, 0, 200}},
		},
		{
			name:  "multi-hop",
			topo:  func() *topology.Topology { tp, _ := topology.Bus(4); return tp },
			ports: []int{0},
			flows: [][4]int{{0, 3, 0, 120}},
		},
		{
			name:  "bidirectional",
			topo:  func() *topology.Topology { tp, _ := topology.Bus(2); return tp },
			ports: []int{0, 1},
			flows: [][4]int{{0, 1, 0, 150}, {1, 0, 1, 150}},
		},
		{
			name:  "incast-4to1",
			topo:  func() *topology.Topology { tp, _ := topology.Bus(5); return tp },
			ports: []int{0, 1, 2, 3},
			flows: [][4]int{{1, 0, 0, 90}, {2, 0, 1, 90}, {3, 0, 2, 90}, {4, 0, 3, 90}},
		},
	}
	for _, kind := range conformanceKinds() {
		for _, sc := range scenarios {
			t.Run(fmt.Sprintf("%s/%s", kind, sc.name), func(t *testing.T) {
				n := buildNet(t, sc.topo(), sc.ports, conformanceConfig(kind), 5)
				for _, fl := range sc.flows {
					n.stream(t, fl[0], fl[1], fl[2], fl[3])
				}
				if err := n.eng.Run(); err != nil {
					t.Fatal(err)
				}
				var grants uint64
				for r, d := range n.devices {
					if got := d.Kind(); got != kind {
						t.Errorf("device %d built %v, requested %v", r, got, kind)
					}
					if d.Dropped() != 0 {
						t.Errorf("device %d dropped %d packets on a clean run", r, d.Dropped())
					}
					grants += d.Grants()
				}
				if kind == SenderDrivenKind && grants != 0 {
					t.Errorf("sender-driven transport reported %d grants", grants)
				}
			})
		}
	}
}

// TestConformanceCreditConservation drives a long receiver-driven flow
// whose receiver drains slowly (forcing pacing to engage) and checks
// the sender/receiver counter invariants afterwards.
func TestConformanceCreditConservation(t *testing.T) {
	topo, _ := topology.Bus(2)
	cfg := conformanceConfig(ReceiverDrivenKind)
	n := buildNet(t, topo, []int{0}, cfg, 5)
	const count = 400
	sf := n.send[[2]int{0, 0}]
	rf := n.recv[[2]int{1, 0}]
	sim.NewProc(n.eng, "sender", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			sf.PushProc(p, dataPacket(0, 1, 0, i))
		}
	})
	sim.NewProc(n.eng, "receiver", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			pkt := rf.PopProc(p)
			if got := packet.BitsInt(pkt.Elem(0, packet.Int)); got != int32(i) {
				t.Fatalf("packet %d out of order: seq %d", i, got)
			}
			p.Sleep(6) // slow consumer: backlog forms, grants pace the flow
		}
	})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	src := n.devices[0].(*ReceiverDriven)
	dst := n.devices[1].(*ReceiverDriven)
	if dst.Grants() == 0 {
		t.Fatal("slow-consumer flow finished without a single grant: pacing never engaged")
	}
	u := uint64(0)
	for _, pp := range src.pacer.ports {
		for dstRank, f := range pp.flows {
			if f.sent > f.granted+src.pacer.unscheduled {
				t.Errorf("flow to %d overspent: sent %d > granted %d + unscheduled %d",
					dstRank, f.sent, f.granted, src.pacer.unscheduled)
			}
			u += f.sent
		}
	}
	if u != count {
		t.Errorf("pacer accounted %d sent packets, want %d", u, count)
	}
	for key, f := range dst.granter.flows {
		if f.granted > f.need+dst.granter.batch {
			t.Errorf("flow %v overgranted: granted %d > need %d + batch %d",
				key, f.granted, f.need, dst.granter.batch)
		}
	}
}

// TestConformanceSkipIdleShim pins the deprecated SkipIdle boolean to
// the Arbiter enum for the one-release compatibility window.
func TestConformanceSkipIdleShim(t *testing.T) {
	c := Config{SkipIdle: true}
	c.fill()
	if c.Arbiter != ArbiterSkipIdle {
		t.Fatalf("SkipIdle=true must map to ArbiterSkipIdle, got %v", c.Arbiter)
	}
	c = Config{}
	c.fill()
	if c.Arbiter != ArbiterRoundRobin {
		t.Fatalf("zero config must keep ArbiterRoundRobin, got %v", c.Arbiter)
	}
}

func TestParseTransport(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", SenderDrivenKind, false},
		{"sender-driven", SenderDrivenKind, false},
		{"receiver-driven", ReceiverDrivenKind, false},
		{"homa", 0, true},
	}
	for _, tc := range cases {
		got, err := Parse(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("Parse(%q) error = %v, want error %v", tc.in, err, tc.err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("Parse(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseArbiter(t *testing.T) {
	cases := []struct {
		in   string
		want Arbiter
		err  bool
	}{
		{"", ArbiterRoundRobin, false},
		{"round-robin", ArbiterRoundRobin, false},
		{"skip-idle", ArbiterSkipIdle, false},
		{"lru", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseArbiter(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseArbiter(%q) error = %v, want error %v", tc.in, err, tc.err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseArbiter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestReceiverDrivenShortMessageLatency checks the unscheduled window:
// a message shorter than it must complete without waiting for any
// grant (same first-packet latency as the sender-driven transport).
func TestReceiverDrivenShortMessageLatency(t *testing.T) {
	measure := func(kind Kind) int64 {
		topo, _ := topology.Bus(2)
		n := buildNet(t, topo, []int{0}, conformanceConfig(kind), 10)
		sf := n.send[[2]int{0, 0}]
		rf := n.recv[[2]int{1, 0}]
		var done int64
		sim.NewProc(n.eng, "sender", func(p *sim.Proc) {
			for i := 0; i < 4; i++ { // under the default 8-packet window
				sf.PushProc(p, dataPacket(0, 1, 0, i))
			}
		})
		sim.NewProc(n.eng, "receiver", func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				rf.PopProc(p)
			}
			done = p.Now()
		})
		if err := n.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	sd := measure(SenderDrivenKind)
	rd := measure(ReceiverDrivenKind)
	// The pacing gate adds one registered FIFO per hop out; allow a few
	// cycles of slack but no grant round-trip (tens of cycles).
	if rd > sd+6 {
		t.Fatalf("short message under receiver-driven took %d cycles vs %d sender-driven: unscheduled window not honored", rd, sd)
	}
	if n := rd; n == 0 {
		t.Fatal("receiver-driven run recorded no completion")
	}
}
