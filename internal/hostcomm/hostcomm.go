// Package hostcomm models the host-based communication baseline the
// paper compares SMI against: "the application writes the message into
// off-chip DRAM on the device, transfers it across PCIe to the host,
// sends it to the remote host using an MPI_Send primitive. On the
// receiving host, symmetric operations are performed" (§5.3.1).
//
// The model is a store-and-forward pipeline of stages, each with a
// bandwidth and a latency, plus fixed OpenCL enqueue overheads and the
// MPI eager/rendezvous protocol switch. Its parameters are calibrated to
// the paper's measured baseline: ≈36.6 µs ping-pong latency (Table 3)
// and roughly one third of SMI's bandwidth for large messages despite
// the faster host interconnect (Fig 9) — the cost of "the long sequence
// of copies through local device memory, local PCIe, host network,
// remote PCIe, and remote device memory".
//
// Host collectives are modeled after the paper's measured baseline
// curves, which grow linearly in both message size and rank count: the
// root serializes its sends/receives (Figs 10-11). See BcastUs and
// ReduceUs for details.
package hostcomm

import "math"

// Params describe the host communication path of one cluster node.
type Params struct {
	// OpenCLOverheadUs is the fixed cost of one OpenCL transfer
	// enqueue + completion (host-device synchronization).
	OpenCLOverheadUs float64
	// DevDRAMGBs is the device DRAM streaming bandwidth used by the
	// buffer copies on the FPGA board.
	DevDRAMGBs float64
	// DevDRAMLatUs is the device DRAM access latency.
	DevDRAMLatUs float64
	// PCIeGBs / PCIeLatUs describe one PCIe direction.
	PCIeGBs   float64
	PCIeLatUs float64
	// HostMemGBs is the host staging-buffer copy bandwidth (MPI packs
	// and unpacks through host memory).
	HostMemGBs float64
	// NetGBs / NetLatUs describe the host network (Omni-Path,
	// 100 Gbit/s on the Noctua cluster).
	NetGBs   float64
	NetLatUs float64
	// EagerLimit is the MPI eager/rendezvous protocol threshold in
	// bytes; rendezvous adds one network round trip.
	EagerLimit int64
	// ReduceGBs is the host-side bandwidth of the element-wise reduction
	// loop (memory-bound vector op).
	ReduceGBs float64
}

// Default returns parameters calibrated to the paper's testbed (Noctua:
// Nallatech 520N over PCIe gen3 x8, Intel Omni-Path 100 Gbit/s,
// OpenMPI 3.1).
func Default() Params {
	return Params{
		OpenCLOverheadUs: 15.4,
		DevDRAMGBs:       19.2,
		DevDRAMLatUs:     0.2,
		PCIeGBs:          8.0,
		PCIeLatUs:        0.9,
		HostMemGBs:       8.0,
		NetGBs:           12.5, // 100 Gbit/s
		NetLatUs:         1.5,
		EagerLimit:       64 << 10,
		ReduceGBs:        8.0,
	}
}

// stage is one hop of the store-and-forward path.
type stage struct {
	gbs   float64
	latUs float64
}

// transferUs returns the store-and-forward time of bytes through the
// stages: every stage fully receives the message before the next starts
// (the un-pipelined host path the baseline actually takes).
func transferUs(stages []stage, bytes int64) float64 {
	t := 0.0
	for _, s := range stages {
		t += s.latUs + float64(bytes)/(s.gbs*1e3) // GB/s = B/ns = 1e3 B/us
	}
	return t
}

// devicePath returns the stages from FPGA memory to the local host
// (or back): device DRAM read/write plus one PCIe crossing.
func (p Params) devicePath() []stage {
	return []stage{
		{p.DevDRAMGBs, p.DevDRAMLatUs},
		{p.PCIeGBs, p.PCIeLatUs},
	}
}

// hostSendUs is the host-to-host MPI send time: staging copy, wire
// time, and the rendezvous round trip above the eager limit.
func (p Params) hostSendUs(bytes int64) float64 {
	t := transferUs([]stage{
		{p.HostMemGBs, 0},
		{p.NetGBs, p.NetLatUs},
		{p.HostMemGBs, 0},
	}, bytes)
	if bytes > p.EagerLimit {
		t += 2 * p.NetLatUs // rendezvous handshake
	}
	return t
}

// SendUs returns the one-way device-to-device transfer time in
// microseconds: OpenCL readback, MPI send, OpenCL write.
func (p Params) SendUs(bytes int64) float64 {
	t := 2 * p.OpenCLOverheadUs // device->host and host->device enqueues
	t += transferUs(p.devicePath(), bytes)
	t += p.hostSendUs(bytes)
	t += transferUs(p.devicePath(), bytes)
	return t
}

// LatencyUs returns the ping-pong half-round-trip latency for a small
// message, the quantity Table 3 reports (36.61 µs measured).
func (p Params) LatencyUs() float64 { return p.SendUs(4) }

// BandwidthGbps returns the effective payload bandwidth of a one-way
// transfer of the given size.
func (p Params) BandwidthGbps(bytes int64) float64 {
	us := p.SendUs(bytes)
	return float64(bytes) * 8 / (us * 1e3) // bits / ns = Gbit/s
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// BcastUs returns the time to broadcast bytes from one device to n-1
// others through the hosts: a device-to-host leg, host-level sends to
// each receiver, and the receivers' host-to-device legs. The host sends
// are modeled as serialized at the root (linear scheme): the paper's
// measured MPI+OpenCL broadcast grows linearly in message size with an
// effective rate far below one tree stage of the 100 Gbit/s network
// (Fig 10), matching a root-serialized baseline rather than an ideal
// binomial tree.
func (p Params) BcastUs(n int, bytes int64) float64 {
	if n <= 1 {
		return 0
	}
	t := p.OpenCLOverheadUs + transferUs(p.devicePath(), bytes) // root readback
	t += float64(n-1) * p.hostSendUs(bytes)                     // serialized sends
	t += p.OpenCLOverheadUs + transferUs(p.devicePath(), bytes) // last leaf write
	return t
}

// ReduceUs returns the time to reduce bytes from n devices to one root
// through the hosts: parallel device-to-host legs, host-level receives
// and element-wise combines serialized at the root (matching the same
// root-serialized baseline style the measured broadcast exhibits), and
// the root's host-to-device leg.
func (p Params) ReduceUs(n int, bytes int64) float64 {
	if n <= 1 {
		return 0
	}
	t := p.OpenCLOverheadUs + transferUs(p.devicePath(), bytes)
	combine := float64(bytes) / (p.ReduceGBs * 1e3)
	t += float64(n-1) * (p.hostSendUs(bytes) + combine)
	t += p.OpenCLOverheadUs + transferUs(p.devicePath(), bytes)
	return t
}

// GatherUs returns the time to gather bytes-per-rank from n devices at
// one root via the hosts (linear at the root network port, as the root's
// ingest serializes).
func (p Params) GatherUs(n int, bytes int64) float64 {
	if n <= 1 {
		return 0
	}
	t := p.OpenCLOverheadUs + transferUs(p.devicePath(), bytes)
	t += float64(n-1) * p.hostSendUs(bytes)
	t += p.OpenCLOverheadUs + transferUs(p.devicePath(), int64(n)*bytes)
	return t
}

// ScatterUs returns the time to scatter bytes-per-rank from the root to
// n devices via the hosts.
func (p Params) ScatterUs(n int, bytes int64) float64 {
	if n <= 1 {
		return 0
	}
	t := p.OpenCLOverheadUs + transferUs(p.devicePath(), int64(n)*bytes)
	t += float64(n-1) * p.hostSendUs(bytes)
	t += p.OpenCLOverheadUs + transferUs(p.devicePath(), bytes)
	return t
}
