package hostcomm

import (
	"testing"
	"testing/quick"
)

func TestLatencyMatchesTable3(t *testing.T) {
	// Table 3 measures 36.61 us for the MPI+OpenCL ping-pong.
	got := Default().LatencyUs()
	if got < 34 || got > 39 {
		t.Fatalf("host latency = %.2f us, want ~36.6 (Table 3)", got)
	}
}

func TestLargeMessageBandwidthMatchesFig9(t *testing.T) {
	// Fig 9: the host path reaches roughly one third of SMI's ~32 Gbit/s
	// despite the 100 Gbit/s Omni-Path, due to the copy chain.
	got := Default().BandwidthGbps(64 << 20)
	if got < 9 || got > 15 {
		t.Fatalf("host bandwidth = %.1f Gbit/s, want ~10-14 (Fig 9)", got)
	}
}

func TestBandwidthMonotonicInSize(t *testing.T) {
	p := Default()
	prev := 0.0
	for _, b := range []int64{64, 1 << 10, 32 << 10, 1 << 20, 32 << 20} {
		bw := p.BandwidthGbps(b)
		if bw <= prev {
			t.Fatalf("bandwidth not increasing with size: %d bytes -> %.2f", b, bw)
		}
		prev = bw
	}
}

func TestSendTimeComponents(t *testing.T) {
	p := Default()
	small := p.SendUs(4)
	if small <= 2*p.OpenCLOverheadUs {
		t.Fatal("send time must include both OpenCL overheads")
	}
	// Doubling a large message should roughly double the transfer part.
	t1 := p.SendUs(8<<20) - small
	t2 := p.SendUs(16<<20) - small
	if t2 < 1.8*t1 || t2 > 2.2*t1 {
		t.Fatalf("large-message scaling off: %f vs %f", t1, t2)
	}
}

func TestRendezvousKicksIn(t *testing.T) {
	p := Default()
	below := p.SendUs(p.EagerLimit)
	above := p.SendUs(p.EagerLimit + 1)
	if above-below < 2*p.NetLatUs {
		t.Fatalf("rendezvous handshake missing: %.3f -> %.3f", below, above)
	}
}

func TestBcastLinearInRanks(t *testing.T) {
	// Calibrated to Fig 10: the measured baseline broadcast serializes
	// at the root, so time grows linearly with the receiver count.
	p := Default()
	const bytes = 1 << 20
	d1 := p.BcastUs(3, bytes) - p.BcastUs(2, bytes)
	d2 := p.BcastUs(8, bytes) - p.BcastUs(7, bytes)
	if d1 <= 0 || d2 <= 0 {
		t.Fatal("bcast must grow with rank count")
	}
	if d2 < 0.99*d1 || d2 > 1.01*d1 {
		t.Fatalf("bcast per-rank increments not uniform: %f vs %f", d1, d2)
	}
}

func TestReduceCostsMoreThanBcast(t *testing.T) {
	// Both collectives serialize at the root; reduce additionally pays
	// the element-wise combine per contribution.
	p := Default()
	const n, bytes = 8, 4 << 20
	r := p.ReduceUs(n, bytes)
	b := p.BcastUs(n, bytes)
	if r <= b {
		t.Fatalf("reduce (%.1f) should exceed bcast (%.1f): it pays the combine", r, b)
	}
	if r <= p.SendUs(bytes) {
		t.Fatal("reduce cannot be cheaper than a single send")
	}
}

func TestCollectiveEdgeCases(t *testing.T) {
	p := Default()
	for _, f := range []func(int, int64) float64{p.BcastUs, p.ReduceUs, p.GatherUs, p.ScatterUs} {
		if f(1, 1024) != 0 {
			t.Fatal("single-rank collectives are free")
		}
		if f(0, 1024) != 0 {
			t.Fatal("degenerate rank counts are free")
		}
	}
}

func TestGatherLinearInRanks(t *testing.T) {
	p := Default()
	const bytes = 256 << 10
	d1 := p.GatherUs(4, bytes) - p.GatherUs(3, bytes)
	d2 := p.GatherUs(8, bytes) - p.GatherUs(7, bytes)
	if d1 <= 0 || d2 <= 0 {
		t.Fatal("gather must grow with rank count")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: all times are positive and increase with message size.
func TestTimesPositiveMonotonicQuick(t *testing.T) {
	p := Default()
	prop := func(kb uint16, nRaw uint8) bool {
		bytes := int64(kb)*1024 + 4
		n := int(nRaw%15) + 2
		if p.SendUs(bytes) <= 0 || p.BcastUs(n, bytes) <= 0 || p.ReduceUs(n, bytes) <= 0 {
			return false
		}
		return p.SendUs(bytes+4096) > p.SendUs(bytes) &&
			p.BcastUs(n, bytes+4096) > p.BcastUs(n, bytes)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
