// Package vistrace renders a simulation's activity as a Chrome
// trace-event file (the JSON format chrome://tracing, Perfetto, and
// speedscope load), one lane per application kernel and hardware kernel.
// Timestamps are simulated clock cycles reported as microseconds, so one
// trace microsecond equals one cycle.
//
// Usage:
//
//	tr := vistrace.New()
//	engine.SetRecorder(tr)   // or smi.Config plumbing
//	engine.Run()
//	tr.Write(file)
package vistrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// event is one Chrome trace "complete" or "instant" event.
type event struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`
	Dur   int64  `json:"dur,omitempty"`
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
	Scope string `json:"s,omitempty"`
}

// Tracer collects activity intervals (implements sim.Recorder).
type Tracer struct {
	events []event
	lanes  map[string]int
	end    int64
	done   bool
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{lanes: make(map[string]int)}
}

func (t *Tracer) lane(name string) int {
	if id, ok := t.lanes[name]; ok {
		return id
	}
	id := len(t.lanes)
	t.lanes[name] = id
	return id
}

// ProcInterval implements sim.Recorder. Idle states ("sleep", "blocked")
// are recorded too: stalls are usually what the viewer is hunting.
func (t *Tracer) ProcInterval(name, state string, start, end int64) {
	if end <= start {
		return
	}
	t.events = append(t.events, event{
		Name: state, Cat: "proc", Phase: "X",
		TS: start, Dur: end - start, PID: 0, TID: t.lane("proc:" + name),
	})
}

// KernelInterval implements sim.Recorder.
func (t *Tracer) KernelInterval(name string, start, end int64) {
	if end <= start {
		return
	}
	t.events = append(t.events, event{
		Name: "active", Cat: "kernel", Phase: "X",
		TS: start, Dur: end - start, PID: 0, TID: t.lane("kernel:" + name),
	})
}

// Instant records a point event on a named lane (Chrome trace "instant"
// events render as markers). The fault-injection machinery uses it to
// make drops, retransmission rounds, and failover phases visible next to
// the kernel activity lanes.
func (t *Tracer) Instant(lane, name string, ts int64) {
	t.events = append(t.events, event{
		Name: name, Cat: "fault", Phase: "i",
		TS: ts, PID: 0, TID: t.lane(lane), Scope: "t",
	})
}

// Done implements sim.Recorder.
func (t *Tracer) Done(now int64) {
	t.end = now
	t.done = true
}

// Events returns the number of recorded intervals.
func (t *Tracer) Events() int { return len(t.events) }

// End returns the final cycle reported via Done.
func (t *Tracer) End() int64 { return t.end }

// Write emits the Chrome trace JSON (an object with traceEvents plus
// thread-name metadata so lanes are labeled).
func (t *Tracer) Write(w io.Writer) error {
	type metaArgs struct {
		Name string `json:"name"`
	}
	type metaEvent struct {
		Name  string   `json:"name"`
		Phase string   `json:"ph"`
		PID   int      `json:"pid"`
		TID   int      `json:"tid"`
		Args  metaArgs `json:"args"`
	}
	names := make([]string, 0, len(t.lanes))
	for n := range t.lanes {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return t.lanes[names[i]] < t.lanes[names[j]] })

	out := struct {
		TraceEvents []any  `json:"traceEvents"`
		TimeUnit    string `json:"displayTimeUnit"`
	}{TimeUnit: "ms"}
	for _, n := range names {
		out.TraceEvents = append(out.TraceEvents, metaEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: t.lanes[n], Args: metaArgs{Name: n},
		})
	}
	for _, ev := range t.events {
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary returns a one-line description, useful for logs.
func (t *Tracer) Summary() string {
	return fmt.Sprintf("%d intervals over %d lanes, %d cycles", len(t.events), len(t.lanes), t.end)
}
