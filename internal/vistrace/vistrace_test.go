package vistrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTracerRecordsIntervals(t *testing.T) {
	tr := New()
	e := sim.NewEngine()
	e.SetRecorder(tr)
	f := sim.NewFifo[int](e, "f", 2)
	sim.NewProc(e, "writer", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			f.PushProc(p, i)
		}
	})
	sim.NewProc(e, "reader", func(p *sim.Proc) {
		p.Sleep(50) // guarantees a visible blocked interval for the writer
		for i := 0; i < 20; i++ {
			f.PopProc(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() == 0 {
		t.Fatal("no intervals recorded")
	}
	if tr.End() <= 0 {
		t.Fatal("Done not called with final cycle")
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must be valid JSON with labeled lanes and both procs.
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(out.TraceEvents) < 3 {
		t.Fatalf("too few events: %d", len(out.TraceEvents))
	}
	s := buf.String()
	for _, want := range []string{"proc:writer", "proc:reader", "thread_name", `"ph":"X"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace missing %q", want)
		}
	}
}

func TestTracerIgnoresEmptyIntervals(t *testing.T) {
	tr := New()
	tr.ProcInterval("p", "run", 5, 5)
	tr.KernelInterval("k", 9, 3)
	if tr.Events() != 0 {
		t.Fatal("zero/negative-length intervals should be dropped")
	}
}

func TestTracerSummary(t *testing.T) {
	tr := New()
	tr.ProcInterval("p", "run", 0, 10)
	tr.Done(10)
	if !strings.Contains(tr.Summary(), "1 intervals") {
		t.Fatalf("summary = %q", tr.Summary())
	}
}
