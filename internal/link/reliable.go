package link

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/sim"
)

// This file adds the reliability layer the BSP abstracts away: a
// link-level retransmission protocol (go-back-N with per-frame CRC-32C,
// sequence numbers, cumulative acks, nacks, and a retransmit timeout)
// running over a faultable wire. The paper's QSFP interfaces "implement
// error correction, flow control, and handle backpressure" (§5.1)
// inside the shell; ReliableLink models that shell logic cycle for
// cycle, so injected faults cost real bandwidth and latency.
//
// Frames and acknowledgements:
//
//   - Every data frame carries (seq, crc) plus a piggybacked cumulative
//     ack for the opposite direction of the same cable.
//   - When a direction has no data to send, it spends otherwise idle
//     wire slots on pure control frames carrying the ack/nack state, so
//     acknowledgements never delay payload traffic. With zero faults
//     the data path is cycle-identical to the lossless Link.
//   - The receiver accepts frames strictly in order. A CRC error or a
//     sequence gap raises a nack; the sender rewinds to the first
//     unacknowledged frame and retransmits (go-back-N), which occupies
//     real forward wire slots.
//   - A retransmit timeout (RTO) covers tail losses; it only runs while
//     the wire has room, so pure backpressure never masquerades as
//     loss. DeadAfter consecutive fruitless timeouts declare the link
//     dead, handing control to the cluster's failover machinery.
//
// Like the pristine Link, each direction is split into a transmit half
// (on the sender rank's engine) and a receive half (on the receiver's),
// joined by a frame-carrying wire boundary and a same-latency credit
// return boundary. All the protocol's cross-direction couplings are
// engine-local by construction: the A->B transmitter piggybacks the
// ack state of the B->A *receiver*, which also lives on device A, and
// the A->B receiver applies acks to the B->A *transmitter*, which also
// lives on device B. CRC, go-back-N, and retransmission state therefore
// never needs same-cycle agreement across engines, which is what lets
// reliable clusters shard.

// ReliableParams tunes the retransmission protocol of one link.
type ReliableParams struct {
	// Window is the maximum number of unacknowledged frames the sender
	// buffers (default 4*latency+64, comfortably above the
	// bandwidth-delay product so it never binds in fault-free runs).
	Window int
	// RTO is the retransmit timeout in cycles (default 2*latency+64).
	RTO int64
	// DeadAfter is the number of consecutive timeout-triggered
	// retransmission rounds with zero ack progress after which the link
	// is declared dead (default 10).
	DeadAfter int
}

func (p *ReliableParams) fill(latency int64) {
	if p.Window <= 0 {
		p.Window = int(4*latency) + 64
	}
	if p.RTO <= 0 {
		p.RTO = 2*latency + 64
	}
	if p.DeadAfter <= 0 {
		p.DeadAfter = 10
	}
}

// frame is one wire transfer: a 32-byte word plus the link-layer
// sideband (sequence number, cumulative ack for the opposite direction,
// control flags, CRC). Real hardware carries the sideband in the
// inter-frame gap / control symbols of the serial encoding.
type frame struct {
	word  [packet.Size]byte
	seq   uint64
	ack   uint64 // receiver's next expected seq for the opposite direction
	nack  bool   // ask the opposite sender to rewind
	data  bool   // false: pure control frame (ack/nack only)
	raw   bool   // word is a headerless raw word (all 32 bytes payload)
	count uint8  // element count of a raw word (rides the sideband)
	crc   uint32
}

// flags packs the link-layer sideband into one byte: nack (bit 0), data
// (bit 1), raw (bit 2), and the raw element count (bits 3-7; counts are
// at most 31, so five bits suffice). A raw word has no in-band header —
// its op and count must cross the wire in the sideband, CRC-protected
// like the rest, or circuit and stream payloads would be corrupted by
// the header bytes a normal Encode writes.
func (f *frame) flags() byte {
	var b byte
	if f.nack {
		b |= 1
	}
	if f.data {
		b |= 2
	}
	if f.raw {
		b |= 4
	}
	b |= (f.count & 0x1f) << 3
	return b
}

func (f *frame) seal() { f.crc = packet.Checksum(f.word, f.seq, f.ack, f.flags()) }

func (f *frame) intact() bool {
	return f.crc == packet.Checksum(f.word, f.seq, f.ack, f.flags())
}

// txFrame is one unacknowledged entry of the retransmit buffer.
type txFrame struct {
	word  [packet.Size]byte
	seq   uint64
	raw   bool
	count uint8
}

// encodeWord serializes a packet for the wire, routing headerless raw
// words through the lossless EncodeRaw form with their op/count moved to
// the frame sideband.
func encodeWord(p packet.Packet) (word [packet.Size]byte, raw bool, count uint8) {
	if p.Op == packet.OpRaw {
		return p.EncodeRaw(), true, p.Count
	}
	return p.Encode(), false, 0
}

// decodeWord is the inverse of encodeWord.
func decodeWord(word [packet.Size]byte, raw bool, count uint8) packet.Packet {
	if raw {
		return packet.DecodeRaw(word, raw2count(count))
	}
	return packet.Decode(word)
}

// raw2count exists only to keep the call above greppable; counts pass
// through unchanged.
func raw2count(c uint8) uint8 { return c }

// relTx is the transmit half of one direction, living on the sender
// rank's engine: retransmit buffer, go-back-N cursor, RTO, and the
// credit-window admission gate.
type relTx struct {
	name    string
	eng     *sim.Engine
	id      sim.KernelID
	in      *sim.Fifo[packet.Packet] // sender-side transport FIFO
	latency int64
	par     ReliableParams
	inj     *fault.LinkInjector // wire-entry injector (consumes the rng stream)
	wire    *sim.Boundary[frame]
	credits *sim.Boundary[struct{}]
	// peerRx is the opposite direction's receive half — on this same
	// engine, since the B->A receiver sits on device A — whose ack/nack
	// state this transmitter piggybacks and clears.
	peerRx *relRx

	// outstanding counts frames on the wire plus drained frames whose
	// credit has not matured: the sender admits a frame only while this
	// is below 2*latency, the same round-trip window the lossless Link
	// uses, so fault-free timing stays bit-identical between the two.
	outstanding int64

	buf        []txFrame // unacked frames, seq order
	cursor     int       // next buf entry to put on the wire
	nextSeq    uint64    // seq assigned to the next fresh frame
	ackedSeq   uint64    // all seqs below this are acknowledged
	maxSent    uint64    // highest seq ever placed on the wire + 1
	timerBase  int64     // RTO reference: last send/progress/rewind
	timerArmed bool
	timeouts   int // consecutive fruitless RTO rounds
	rewindOk   int64
	dead       bool
	parked     bool

	retransmits uint64
	acksSent    uint64
}

// relRx is the receive half of one direction, living on the receiver
// rank's engine: in-order delivery, duplicate rejection, CRC checks,
// and ack/nack bookkeeping for the opposite transmitter to send.
type relRx struct {
	name    string
	eng     *sim.Engine
	id      sim.KernelID
	out     *sim.Fifo[packet.Packet] // receiver-side transport FIFO
	latency int64
	inj     *fault.LinkInjector // wire-exit injector (Down/LoseOnWire only; no rng)
	wire    *sim.Boundary[frame]
	credits *sim.Boundary[struct{}]
	// peerTx is the opposite direction's transmit half — on this same
	// engine — to which received cumulative acks and rewind requests
	// are applied.
	peerTx *relTx

	rxExpected uint64 // next in-order seq to deliver
	ackOwed    bool   // delivered (or re-ack-worthy) frames not yet acked
	nackOwed   bool
	held       *frame // in-order frame waiting for space in out
	parked     bool

	delivered  uint64
	stalls     uint64
	stallSince int64 // cycle the current held-frame window opened, -1 if none
	crcErrors  uint64
	duplicates uint64
}

// ReliableLink is one direction of a cable running the retransmission
// protocol: a facade over the split transmit/receive kernels. The two
// directions are created together by NewReliablePair and cross-linked:
// acknowledgements for this direction's data travel on the peer
// direction's wire.
type ReliableLink struct {
	name    string
	latency int64
	par     ReliableParams
	tx      *relTx
	rx      *relRx
}

// NewReliablePair registers both directions of a cable and cross-links
// them for acknowledgement traffic. The A->B transmit half and the B->A
// receive half live on engA; the A->B receive half and B->A transmit
// half on engB (one engine may serve both roles in unsharded runs).
// inAB/outAB are the transmit/receive FIFOs of the A->B direction,
// inBA/outBA of B->A. latency <= 0 selects DefaultLatency; the entry
// injectors injAB/injBA consume the per-link random stream at the wire
// entry, the exit injectors model carrier loss at the wire exit without
// touching the stream (they live on the far engine), and any of the
// four may be nil.
func NewReliablePair(engA, engB *sim.Engine, nameAB, nameBA string,
	inAB, outAB, inBA, outBA *sim.Fifo[packet.Packet],
	latency int64, par ReliableParams,
	injAB, injBA, injABExit, injBAExit *fault.LinkInjector) (*ReliableLink, *ReliableLink) {
	if latency <= 0 {
		latency = DefaultLatency
	}
	par.fill(latency)
	txAB := &relTx{name: nameAB, eng: engA, in: inAB, latency: latency, par: par, inj: injAB}
	rxAB := &relRx{name: nameAB, eng: engB, out: outAB, latency: latency, inj: injABExit, stallSince: -1}
	txBA := &relTx{name: nameBA, eng: engB, in: inBA, latency: latency, par: par, inj: injBA}
	rxBA := &relRx{name: nameBA, eng: engA, out: outBA, latency: latency, inj: injBAExit, stallSince: -1}
	txAB.peerRx, rxAB.peerTx = rxBA, txBA
	txBA.peerRx, rxBA.peerTx = rxAB, txAB
	// Registration order reproduces the monolithic kernel's intra-cycle
	// order on a single engine — receive(AB), transmit(AB), receive(BA),
	// transmit(BA) — and its per-engine projection on two: every
	// same-engine coupling (piggyback reads, processAck applications)
	// then observes state at exactly the dense cycle phase it used to.
	rxAB.id = engB.AddKernel(rxAB)
	txAB.id = engA.AddKernel(txAB)
	rxBA.id = engA.AddKernel(rxBA)
	txBA.id = engB.AddKernel(txBA)
	wireAB := sim.NewBoundary[frame](engA, engB, rxAB.id, latency)
	creditsAB := sim.NewBoundary[struct{}](engB, engA, txAB.id, latency)
	wireBA := sim.NewBoundary[frame](engB, engA, rxBA.id, latency)
	creditsBA := sim.NewBoundary[struct{}](engA, engB, txBA.id, latency)
	txAB.wire, txAB.credits, rxAB.wire, rxAB.credits = wireAB, creditsAB, wireAB, creditsAB
	txBA.wire, txBA.credits, rxBA.wire, rxBA.credits = wireBA, creditsBA, wireBA, creditsBA
	// A parked transmit half resumes on new transmit data (in commit) or
	// maturing credits; a parked receive half on freed receiver space
	// (out pop) or wire arrivals. Ack-driven transmit state changes
	// arrive via explicit engine-local wakes from the receive halves.
	inAB.WakesKernel(txAB.id)
	outAB.WakesKernel(rxAB.id)
	inBA.WakesKernel(txBA.id)
	outBA.WakesKernel(rxBA.id)
	ab := &ReliableLink{name: nameAB, latency: latency, par: par, tx: txAB, rx: rxAB}
	ba := &ReliableLink{name: nameBA, latency: latency, par: par, tx: txBA, rx: rxBA}
	return ab, ba
}

// Name returns the link's name.
func (l *ReliableLink) Name() string { return l.name }

// Delivered returns in-order data packets delivered to the receiver
// (duplicates excluded).
func (l *ReliableLink) Delivered() uint64 { return l.rx.delivered }

// Stalls returns cycles the in-order head frame waited on a full
// receiver FIFO.
func (l *ReliableLink) Stalls() uint64 { return l.rx.stalls }

// Retransmits returns data frames sent more than once.
func (l *ReliableLink) Retransmits() uint64 { return l.tx.retransmits }

// CrcErrors returns frames discarded by the receiver's CRC check.
func (l *ReliableLink) CrcErrors() uint64 { return l.rx.crcErrors }

// AcksSent returns pure control frames spent on acknowledgements.
func (l *ReliableLink) AcksSent() uint64 { return l.tx.acksSent }

// Duplicates returns already-delivered data frames rejected by the
// receiver's sequence check.
func (l *ReliableLink) Duplicates() uint64 { return l.rx.duplicates }

// Dead reports whether the sender has declared this direction dead
// (DeadAfter consecutive fruitless retransmission rounds).
func (l *ReliableLink) Dead() bool { return l.tx.dead }

// RxExpected returns the receiver's next expected sequence number: every
// frame below it has been delivered exactly once. The failover
// controller reads it over the host control plane (PCIe survives cable
// failure) to rescue unacknowledged frames without duplication.
func (l *ReliableLink) RxExpected() uint64 { return l.rx.rxExpected }

// Unacked decodes the retransmit-buffer frames the peer has not
// delivered (seq >= peerDelivered), in order. Combined with RxExpected
// of the same direction this is the exact loss set of a dead cable.
func (l *ReliableLink) Unacked(peerDelivered uint64) []packet.Packet {
	var out []packet.Packet
	for _, t := range l.tx.buf {
		if t.seq >= peerDelivered {
			out = append(out, decodeWord(t.word, t.raw, t.count))
		}
	}
	return out
}

// Park permanently disables the link (failover has taken over): both
// boundary queues are cleared — in-flight traffic is lost, as on a real
// dead cable — and both halves' Ticks become no-ops reporting
// inactivity. The retransmit buffer is kept for Unacked. Called with
// both engines at a common stopped point (a kernel tick in unsharded
// runs, a group barrier otherwise).
func (l *ReliableLink) Park() {
	l.tx.parked = true
	l.tx.dead = true
	l.tx.outstanding = 0
	l.rx.parked = true
	l.rx.held = nil
	l.tx.wire.Clear()
	l.tx.credits.Clear()
}

// ForgiveTimeouts resets the death counter and rebases the retransmit
// timer. The failover controller calls it on surviving links after a
// repair, since a global pause can legitimately starve them of acks for
// longer than the RTO.
func (l *ReliableLink) ForgiveTimeouts(now int64) {
	t := l.tx
	if t.parked {
		return
	}
	t.timeouts = 0
	t.dead = false
	if len(t.buf) > 0 {
		t.timerArmed = true
		t.timerBase = now
	} else {
		t.timerArmed = false
	}
	// The timer was rebased; if the transmit half is parked on the old
	// deadline, have it tick once and re-park on the new one. now+1 is
	// when a dense manager-kernel tick at `now` would be observed.
	t.eng.WakeKernelAt(t.id, now+1)
}

// DeathBound returns a conservative lower bound on the earliest cycle
// this direction's transmitter could declare itself dead, given the
// transmit state visible at the group barrier clock `base`. Fruitless
// RTO rounds are at least RTO cycles apart and death needs
// DeadAfter-timeouts more of them; ack progress and timer resets only
// push the bound later, so a cap derived from it stays safe until the
// next barrier recomputes it.
func (l *ReliableLink) DeathBound(base int64) int64 {
	t := l.tx
	if t.parked {
		return sim.Never
	}
	if t.dead {
		return base // already dead: the manager must observe it now
	}
	if !t.timerArmed {
		// An unarmed timer has timeouts == 0 and can first fire one RTO
		// after it arms, which cannot happen before base.
		return base + int64(t.par.DeadAfter)*t.par.RTO
	}
	left := int64(t.par.DeadAfter - 1 - t.timeouts)
	if left < 0 {
		left = 0
	}
	first := t.timerBase + t.par.RTO
	if first < base {
		first = base
	}
	return first + left*t.par.RTO
}

func (l *ReliableLink) String() string {
	return fmt.Sprintf("rlink %s (lat=%d, delivered=%d, rexmit=%d)", l.name, l.latency, l.rx.delivered, l.tx.retransmits)
}

func (r *relRx) Name() string { return r.name + ".rx" }

// Tick advances the receive half one cycle: deliver the head-of-wire
// frame if its flight time has elapsed — CRC check, ack/nack processing
// for the opposite direction's transmitter, strict in-order delivery
// with duplicate rejection.
func (r *relRx) Tick(now int64) bool {
	if r.parked {
		return false
	}
	// A held in-order frame retries its push before the wire moves.
	if r.held != nil {
		if r.out.TryPush(decodeWord(r.held.word, r.held.raw, r.held.count)) {
			r.rxExpected = r.held.seq + 1
			r.oweAck()
			r.delivered++
			r.held = nil
			if r.stallSince >= 0 {
				// Close the held-frame window; its opening cycle was
				// counted when the frame was first held.
				r.stalls += uint64(now - r.stallSince - 1)
				r.stallSince = -1
			}
			return true
		}
		return false
	}
	f, ok := r.wire.PopReady(now)
	if !ok {
		return false
	}
	// Return one credit per drained wire slot regardless of the frame's
	// fate: the slot itself is free again after the feedback latency.
	r.credits.Put(now, struct{}{})
	if r.inj.Down(now) {
		// The link dropped carrier while the frame was in flight.
		r.inj.LoseOnWire(now)
		return true
	}
	if !f.intact() {
		r.crcErrors++
		r.oweNack()
		return true
	}
	// The sideband acknowledges the opposite direction's data.
	r.peerTx.processAck(f.ack, f.nack, now)
	if !f.data {
		return true
	}
	switch {
	case f.seq == r.rxExpected:
		if r.out.TryPush(decodeWord(f.word, f.raw, f.count)) {
			r.rxExpected = f.seq + 1
			r.oweAck()
			r.delivered++
		} else {
			// Receiver FIFO full: hold the frame (hardware stall), do
			// not nack — backpressure is not loss.
			held := f
			r.held = &held
			if r.stallSince < 0 {
				r.stallSince = now
				r.stalls++
			}
		}
	case f.seq < r.rxExpected:
		// Duplicate of a delivered frame (retransmission raced the
		// ack): discard and re-advertise the cumulative ack.
		r.duplicates++
		r.oweAck()
	default:
		// Gap: an earlier frame was lost. Go-back-N discards
		// out-of-order frames and asks for a rewind.
		r.oweNack()
	}
	return true
}

// IdleUntil promises the receive half does nothing before its oldest
// in-flight frame finishes serializing. Head-ready-but-blocked and
// empty states park until a wake (receive-FIFO pop or wire arrival).
func (r *relRx) IdleUntil(now int64) int64 {
	if r.parked {
		return sim.Never
	}
	if next := r.wire.NextReadyAt(); next > now {
		return next // Never when the wire is empty
	}
	return sim.Never
}

// oweAck flags acknowledgement state for this receiver and wakes the
// opposite direction's transmitter — on this same engine — which sends
// the ack on its wire. The wake is timed by the engine so the peer
// observes the flag exactly when the dense scan would (same cycle if it
// ticks later, next cycle otherwise).
func (r *relRx) oweAck() {
	r.ackOwed = true
	r.eng.WakeKernel(r.peerTx.id)
}

func (r *relRx) oweNack() {
	r.nackOwed = true
	r.eng.WakeKernel(r.peerTx.id)
}

func (t *relTx) Name() string { return t.name + ".tx" }

// drainCredits discards matured credits, shrinking the outstanding
// count the admission window is charged against.
func (t *relTx) drainCredits(now int64) {
	for {
		if _, ok := t.credits.PopReady(now); !ok {
			return
		}
		t.outstanding--
	}
}

// Tick advances the transmit half one cycle: handle the retransmit
// timeout, then place at most one frame — backlog retransmission, fresh
// data, or a pure control frame — on the wire.
func (t *relTx) Tick(now int64) bool {
	if t.parked {
		return false
	}
	t.drainCredits(now)
	if t.dead {
		return false
	}
	// Retransmit timeout. The timer only runs while the wire has room:
	// a wire jammed by receiver backpressure proves the path is alive
	// but congested, and retransmitting into it would be both futile
	// and unfaithful.
	if t.timerArmed && now-t.timerBase >= t.par.RTO {
		if t.outstanding >= 2*t.latency {
			t.timerBase = now
		} else {
			t.cursor = 0 // go-back-N rewind
			t.rewindOk = now + t.par.RTO
			t.timerBase = now
			t.timeouts++
			if t.timeouts >= t.par.DeadAfter {
				t.dead = true
				return true
			}
		}
	}
	if t.outstanding >= 2*t.latency {
		return false
	}
	// Backlog first: frames already accepted but not yet (re)sent.
	if t.cursor < len(t.buf) {
		tf := t.buf[t.cursor]
		t.cursor++
		t.sendData(now, tf)
		return true
	}
	// Fresh data, popped and transmitted in the same cycle — identical
	// admission timing to the lossless Link.
	if len(t.buf) < t.par.Window {
		if p, ok := t.in.TryPop(); ok {
			word, raw, count := encodeWord(p)
			tf := txFrame{word: word, seq: t.nextSeq, raw: raw, count: count}
			t.nextSeq++
			t.buf = append(t.buf, tf)
			t.cursor = len(t.buf)
			t.sendData(now, tf)
			return true
		}
	}
	// Idle slot: spend it on acknowledgement state if any is owed for
	// the opposite direction's receiver (engine-local).
	if t.peerRx.ackOwed || t.peerRx.nackOwed {
		f := frame{ack: t.peerRx.rxExpected, nack: t.peerRx.nackOwed}
		f.seal()
		t.peerRx.ackOwed, t.peerRx.nackOwed = false, false
		t.acksSent++
		t.putOnWire(now, f)
		return true
	}
	return false
}

// IdleUntil promises the transmit half does nothing before its next
// scheduled event: a credit maturing (which can reopen the admission
// window; harmless extra wake otherwise) or the retransmit timeout
// firing. Everything else arrives as a wake — transmit-FIFO commits and
// ack/nack state changes applied by the engine-local receive halves.
func (t *relTx) IdleUntil(now int64) int64 {
	if t.parked {
		return sim.Never
	}
	next := sim.Never
	if c := t.credits.NextReadyAt(); c > now && c < next {
		next = c
	}
	if !t.dead && t.timerArmed {
		if d := t.timerBase + t.par.RTO; d < next {
			next = d
		}
	}
	return next
}

// sendData places one data frame on the wire with the current
// piggybacked ack state for the opposite direction.
func (t *relTx) sendData(now int64, tf txFrame) {
	if tf.seq < t.maxSent {
		t.retransmits++
	} else {
		t.maxSent = tf.seq + 1
	}
	f := frame{word: tf.word, seq: tf.seq, data: true, raw: tf.raw, count: tf.count, ack: t.peerRx.rxExpected, nack: t.peerRx.nackOwed}
	f.seal()
	t.peerRx.ackOwed, t.peerRx.nackOwed = false, false
	if !t.timerArmed {
		t.timerArmed = true
		t.timerBase = now
	}
	t.putOnWire(now, f)
}

// putOnWire passes a frame through the fault injector and, if it
// survives, puts it on the wire boundary.
func (t *relTx) putOnWire(now int64, f frame) {
	if t.inj.Down(now) {
		t.inj.LoseOnWire(now)
		return
	}
	word, dropped := t.inj.Transmit(now, f.word)
	if dropped {
		return
	}
	f.word = word // a corrupted word no longer matches f.crc
	t.wire.Put(now, f)
	t.outstanding++
}

// processAck applies a cumulative ack (and optional rewind request)
// received on the opposite direction's wire to this direction's
// transmit state. Called by the opposite receive half, which lives on
// this transmitter's engine.
func (t *relTx) processAck(ack uint64, nack bool, now int64) {
	// This runs inside the peer direction's receive tick but mutates
	// this transmit half's state; if this half is parked, the freed
	// window (or a rewind) is work it must wake for.
	defer t.eng.WakeKernel(t.id)
	if ack > t.ackedSeq {
		drop := int(ack - t.ackedSeq)
		if drop > len(t.buf) {
			drop = len(t.buf)
		}
		t.buf = t.buf[drop:]
		t.cursor -= drop
		if t.cursor < 0 {
			t.cursor = 0
		}
		t.ackedSeq = ack
		t.timeouts = 0
		t.timerBase = now
		if len(t.buf) == 0 && t.cursor == 0 {
			t.timerArmed = false
		}
	}
	if nack && now >= t.rewindOk && len(t.buf) > 0 {
		// Rewind to the first unacked frame; guard so the burst of
		// nacks a single loss provokes triggers only one rewind.
		t.cursor = 0
		t.rewindOk = now + 2*t.latency
		t.timerBase = now
	}
}
