package link

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/sim"
)

// This file adds the reliability layer the BSP abstracts away: a
// link-level retransmission protocol (go-back-N with per-frame CRC-32C,
// sequence numbers, cumulative acks, nacks, and a retransmit timeout)
// running over a faultable wire. The paper's QSFP interfaces "implement
// error correction, flow control, and handle backpressure" (§5.1)
// inside the shell; ReliableLink models that shell logic cycle for
// cycle, so injected faults cost real bandwidth and latency.
//
// Frames and acknowledgements:
//
//   - Every data frame carries (seq, crc) plus a piggybacked cumulative
//     ack for the opposite direction of the same cable.
//   - When a direction has no data to send, it spends otherwise idle
//     wire slots on pure control frames carrying the ack/nack state, so
//     acknowledgements never delay payload traffic. With zero faults
//     the data path is cycle-identical to the lossless Link.
//   - The receiver accepts frames strictly in order. A CRC error or a
//     sequence gap raises a nack; the sender rewinds to the first
//     unacknowledged frame and retransmits (go-back-N), which occupies
//     real forward wire slots.
//   - A retransmit timeout (RTO) covers tail losses; it only runs while
//     the wire has room, so pure backpressure never masquerades as
//     loss. DeadAfter consecutive fruitless timeouts declare the link
//     dead, handing control to the cluster's failover machinery.

// ReliableParams tunes the retransmission protocol of one link.
type ReliableParams struct {
	// Window is the maximum number of unacknowledged frames the sender
	// buffers (default 4*latency+64, comfortably above the
	// bandwidth-delay product so it never binds in fault-free runs).
	Window int
	// RTO is the retransmit timeout in cycles (default 2*latency+64).
	RTO int64
	// DeadAfter is the number of consecutive timeout-triggered
	// retransmission rounds with zero ack progress after which the link
	// is declared dead (default 10).
	DeadAfter int
}

func (p *ReliableParams) fill(latency int64) {
	if p.Window <= 0 {
		p.Window = int(4*latency) + 64
	}
	if p.RTO <= 0 {
		p.RTO = 2*latency + 64
	}
	if p.DeadAfter <= 0 {
		p.DeadAfter = 10
	}
}

// frame is one wire transfer: a 32-byte word plus the link-layer
// sideband (sequence number, cumulative ack for the opposite direction,
// control flags, CRC). Real hardware carries the sideband in the
// inter-frame gap / control symbols of the serial encoding.
type frame struct {
	word  [packet.Size]byte
	seq   uint64
	ack   uint64 // receiver's next expected seq for the opposite direction
	nack  bool   // ask the opposite sender to rewind
	data  bool   // false: pure control frame (ack/nack only)
	raw   bool   // word is a headerless raw word (all 32 bytes payload)
	count uint8  // element count of a raw word (rides the sideband)
	crc   uint32
}

// flags packs the link-layer sideband into one byte: nack (bit 0), data
// (bit 1), raw (bit 2), and the raw element count (bits 3-7; counts are
// at most 31, so five bits suffice). A raw word has no in-band header —
// its op and count must cross the wire in the sideband, CRC-protected
// like the rest, or circuit and stream payloads would be corrupted by
// the header bytes a normal Encode writes.
func (f *frame) flags() byte {
	var b byte
	if f.nack {
		b |= 1
	}
	if f.data {
		b |= 2
	}
	if f.raw {
		b |= 4
	}
	b |= (f.count & 0x1f) << 3
	return b
}

func (f *frame) seal() { f.crc = packet.Checksum(f.word, f.seq, f.ack, f.flags()) }

func (f *frame) intact() bool {
	return f.crc == packet.Checksum(f.word, f.seq, f.ack, f.flags())
}

type wireFrame struct {
	f       frame
	readyAt int64
}

// txFrame is one unacknowledged entry of the retransmit buffer.
type txFrame struct {
	word  [packet.Size]byte
	seq   uint64
	raw   bool
	count uint8
}

// encodeWord serializes a packet for the wire, routing headerless raw
// words through the lossless EncodeRaw form with their op/count moved to
// the frame sideband.
func encodeWord(p packet.Packet) (word [packet.Size]byte, raw bool, count uint8) {
	if p.Op == packet.OpRaw {
		return p.EncodeRaw(), true, p.Count
	}
	return p.Encode(), false, 0
}

// decodeWord is the inverse of encodeWord.
func decodeWord(word [packet.Size]byte, raw bool, count uint8) packet.Packet {
	if raw {
		return packet.DecodeRaw(word, count)
	}
	return packet.Decode(word)
}

// ReliableLink is one direction of a cable running the retransmission
// protocol. The two directions are created together by NewReliablePair
// and cross-linked: acknowledgements for this direction's data travel on
// the peer direction's wire.
type ReliableLink struct {
	name    string
	eng     *sim.Engine
	id      sim.KernelID
	in      *sim.Fifo[packet.Packet] // sender-side transport FIFO
	out     *sim.Fifo[packet.Packet] // receiver-side transport FIFO
	latency int64
	par     ReliableParams
	inj     *fault.LinkInjector
	peer    *ReliableLink

	wire []wireFrame // delay line, oldest first
	// credits models the receiver's credit return path: one entry per
	// frame drained from the wire, maturing at drain+latency. The sender
	// admits a frame only while outstanding (wire + unmatured credits) is
	// below 2*latency — the same round-trip window the lossless Link
	// uses, so fault-free timing stays bit-identical between the two.
	credits []int64

	// Transmit state (lives at the source device).
	buf        []txFrame // unacked frames, seq order
	cursor     int       // next buf entry to put on the wire
	nextSeq    uint64    // seq assigned to the next fresh frame
	ackedSeq   uint64    // all seqs below this are acknowledged
	maxSent    uint64    // highest seq ever placed on the wire + 1
	timerBase  int64     // RTO reference: last send/progress/rewind
	timerArmed bool
	timeouts   int // consecutive fruitless RTO rounds
	rewindOk   int64
	dead       bool
	parked     bool

	// Receive state (lives at the destination device).
	rxExpected uint64 // next in-order seq to deliver
	ackOwed    bool   // delivered (or re-ack-worthy) frames not yet acked
	nackOwed   bool
	held       *frame // in-order frame waiting for space in out

	// Stats.
	delivered   uint64
	stalls      uint64
	stallSince  int64 // cycle the current held-frame window opened, -1 if none
	retransmits uint64
	crcErrors   uint64
	acksSent    uint64
	duplicates  uint64
}

// NewReliablePair registers both directions of a cable with the engine
// and cross-links them for acknowledgement traffic. inAB/outAB are the
// transmit/receive FIFOs of the A->B direction, inBA/outBA of B->A.
// latency <= 0 selects DefaultLatency; inj may be nil per direction.
func NewReliablePair(e *sim.Engine, nameAB, nameBA string,
	inAB, outAB, inBA, outBA *sim.Fifo[packet.Packet],
	latency int64, par ReliableParams,
	injAB, injBA *fault.LinkInjector) (*ReliableLink, *ReliableLink) {
	if latency <= 0 {
		latency = DefaultLatency
	}
	par.fill(latency)
	ab := &ReliableLink{name: nameAB, eng: e, in: inAB, out: outAB, latency: latency, par: par, inj: injAB, stallSince: -1}
	ba := &ReliableLink{name: nameBA, eng: e, in: inBA, out: outBA, latency: latency, par: par, inj: injBA, stallSince: -1}
	ab.peer, ba.peer = ba, ab
	ab.id = e.AddKernel(ab)
	ba.id = e.AddKernel(ba)
	// A parked direction resumes on new transmit data (in commit) or on
	// freed receiver space (out pop); acknowledgement-driven transmit
	// state changes arrive via explicit WakeKernel calls from the peer.
	inAB.WakesKernel(ab.id)
	outAB.WakesKernel(ab.id)
	inBA.WakesKernel(ba.id)
	outBA.WakesKernel(ba.id)
	return ab, ba
}

// Name returns the link's name.
func (l *ReliableLink) Name() string { return l.name }

// Delivered returns in-order data packets delivered to the receiver
// (duplicates excluded).
func (l *ReliableLink) Delivered() uint64 { return l.delivered }

// Stalls returns cycles the in-order head frame waited on a full
// receiver FIFO.
func (l *ReliableLink) Stalls() uint64 { return l.stalls }

// Retransmits returns data frames sent more than once.
func (l *ReliableLink) Retransmits() uint64 { return l.retransmits }

// CrcErrors returns frames discarded by the receiver's CRC check.
func (l *ReliableLink) CrcErrors() uint64 { return l.crcErrors }

// AcksSent returns pure control frames spent on acknowledgements.
func (l *ReliableLink) AcksSent() uint64 { return l.acksSent }

// Duplicates returns already-delivered data frames rejected by the
// receiver's sequence check.
func (l *ReliableLink) Duplicates() uint64 { return l.duplicates }

// Dead reports whether the sender has declared this direction dead
// (DeadAfter consecutive fruitless retransmission rounds).
func (l *ReliableLink) Dead() bool { return l.dead }

// RxExpected returns the receiver's next expected sequence number: every
// frame below it has been delivered exactly once. The failover
// controller reads it over the host control plane (PCIe survives cable
// failure) to rescue unacknowledged frames without duplication.
func (l *ReliableLink) RxExpected() uint64 { return l.rxExpected }

// Unacked decodes the retransmit-buffer frames the peer has not
// delivered (seq >= peerDelivered), in order. Combined with RxExpected
// of the same direction this is the exact loss set of a dead cable.
func (l *ReliableLink) Unacked(peerDelivered uint64) []packet.Packet {
	var out []packet.Packet
	for _, t := range l.buf {
		if t.seq >= peerDelivered {
			out = append(out, decodeWord(t.word, t.raw, t.count))
		}
	}
	return out
}

// Park permanently disables the link (failover has taken over): the wire
// is cleared and Tick becomes a no-op reporting inactivity.
func (l *ReliableLink) Park() {
	l.parked = true
	l.dead = true
	l.wire = nil
	l.credits = nil
	l.held = nil
}

// ForgiveTimeouts resets the death counter and rebases the retransmit
// timer. The failover controller calls it on surviving links after a
// repair, since a global pause can legitimately starve them of acks for
// longer than the RTO.
func (l *ReliableLink) ForgiveTimeouts(now int64) {
	if l.parked {
		return
	}
	l.timeouts = 0
	l.dead = false
	if len(l.buf) > 0 {
		l.timerArmed = true
		l.timerBase = now
	} else {
		l.timerArmed = false
	}
	// The timer was rebased; if this direction is parked on the old
	// deadline, have it tick once and re-park on the new one.
	l.eng.WakeKernel(l.id)
}

// Tick advances one cycle: deliver at most one frame (receive side),
// then place at most one frame on the wire (transmit side), mirroring
// the lossless Link's deliver-then-accept order so fault-free timing is
// bit-identical.
func (l *ReliableLink) Tick(now int64) bool {
	if l.parked {
		return false
	}
	active := l.tickReceive(now)
	if l.tickTransmit(now) {
		active = true
	}
	// Frames still serializing and a pending retransmit timeout are
	// future events, reported to the engine as a scheduled wake via
	// IdleUntil rather than as per-cycle activity.
	return active
}

// IdleUntil promises the link does nothing before its next scheduled
// event: the oldest in-flight frame finishing serialization, or the
// retransmit timeout firing. Everything else that can give a parked
// direction work arrives as a wake — transmit-FIFO commits, receive-FIFO
// pops, and ack/nack state changes applied by the peer direction.
func (l *ReliableLink) IdleUntil(now int64) int64 {
	if l.parked {
		return sim.Never
	}
	next := sim.Never
	if len(l.wire) > 0 && l.wire[0].readyAt > now {
		next = l.wire[0].readyAt
	}
	if len(l.credits) > 0 && l.credits[0] > now && l.credits[0] < next {
		// A maturing credit can reopen the admission window for a sender
		// blocked on it (harmless extra wake otherwise).
		next = l.credits[0]
	}
	if !l.dead && l.timerArmed {
		if d := l.timerBase + l.par.RTO; d < next {
			next = d
		}
	}
	return next
}

// tickReceive delivers the head-of-wire frame if its flight time has
// elapsed: CRC check, ack/nack processing for the opposite direction,
// and strict in-order delivery with duplicate rejection.
func (l *ReliableLink) tickReceive(now int64) bool {
	// A held in-order frame retries its push before the wire moves.
	if l.held != nil {
		if l.out.TryPush(decodeWord(l.held.word, l.held.raw, l.held.count)) {
			l.rxExpected = l.held.seq + 1
			l.oweAck()
			l.delivered++
			l.held = nil
			if l.stallSince >= 0 {
				// Close the held-frame window; its opening cycle was
				// counted when the frame was first held.
				l.stalls += uint64(now - l.stallSince - 1)
				l.stallSince = -1
			}
			return true
		}
		return false
	}
	if len(l.wire) == 0 || l.wire[0].readyAt > now {
		return false
	}
	f := l.wire[0].f
	l.wire = l.wire[1:]
	// Return one credit per drained wire slot regardless of the frame's
	// fate: the slot itself is free again after the feedback latency.
	l.credits = append(l.credits, now+l.latency)
	if l.inj.Down(now) {
		// The link dropped carrier while the frame was in flight.
		l.inj.LoseOnWire(now)
		return true
	}
	if !f.intact() {
		l.crcErrors++
		l.oweNack()
		return true
	}
	// The sideband acknowledges the opposite direction's data.
	l.peer.processAck(f.ack, f.nack, now)
	if !f.data {
		return true
	}
	switch {
	case f.seq == l.rxExpected:
		if l.out.TryPush(decodeWord(f.word, f.raw, f.count)) {
			l.rxExpected = f.seq + 1
			l.oweAck()
			l.delivered++
		} else {
			// Receiver FIFO full: hold the frame (hardware stall), do
			// not nack — backpressure is not loss.
			held := f
			l.held = &held
			if l.stallSince < 0 {
				l.stallSince = now
				l.stalls++
			}
		}
	case f.seq < l.rxExpected:
		// Duplicate of a delivered frame (retransmission raced the
		// ack): discard and re-advertise the cumulative ack.
		l.duplicates++
		l.oweAck()
	default:
		// Gap: an earlier frame was lost. Go-back-N discards
		// out-of-order frames and asks for a rewind.
		l.oweNack()
	}
	return true
}

// oweAck flags acknowledgement state for this receiver and wakes the
// opposite direction, which transmits the ack on its wire. The wake is
// timed by the engine so the peer observes the flag exactly when the
// dense scan would (same cycle if it ticks later, next cycle otherwise).
func (l *ReliableLink) oweAck() {
	l.ackOwed = true
	l.eng.WakeKernel(l.peer.id)
}

func (l *ReliableLink) oweNack() {
	l.nackOwed = true
	l.eng.WakeKernel(l.peer.id)
}

// wireOutstanding counts frames charged against the credit window:
// frames still on the wire plus drained frames whose credit has not
// matured. Matured credits are discarded as a side effect.
func (l *ReliableLink) wireOutstanding(now int64) int64 {
	for len(l.credits) > 0 && l.credits[0] <= now {
		l.credits = l.credits[1:]
	}
	return int64(len(l.wire) + len(l.credits))
}

// tickTransmit handles the retransmit timeout and places at most one
// frame — backlog retransmission, fresh data, or a pure control frame —
// on the wire.
func (l *ReliableLink) tickTransmit(now int64) bool {
	if l.dead {
		return false
	}
	// Retransmit timeout. The timer only runs while the wire has room:
	// a wire jammed by receiver backpressure proves the path is alive
	// but congested, and retransmitting into it would be both futile
	// and unfaithful.
	if l.timerArmed && now-l.timerBase >= l.par.RTO {
		if l.wireOutstanding(now) >= 2*l.latency {
			l.timerBase = now
		} else {
			l.cursor = 0 // go-back-N rewind
			l.rewindOk = now + l.par.RTO
			l.timerBase = now
			l.timeouts++
			if l.timeouts >= l.par.DeadAfter {
				l.dead = true
				return true
			}
		}
	}
	if l.wireOutstanding(now) >= 2*l.latency {
		return false
	}
	// Backlog first: frames already accepted but not yet (re)sent.
	if l.cursor < len(l.buf) {
		t := l.buf[l.cursor]
		l.cursor++
		l.sendData(now, t)
		return true
	}
	// Fresh data, popped and transmitted in the same cycle — identical
	// admission timing to the lossless Link.
	if len(l.buf) < l.par.Window {
		if p, ok := l.in.TryPop(); ok {
			word, raw, count := encodeWord(p)
			t := txFrame{word: word, seq: l.nextSeq, raw: raw, count: count}
			l.nextSeq++
			l.buf = append(l.buf, t)
			l.cursor = len(l.buf)
			l.sendData(now, t)
			return true
		}
	}
	// Idle slot: spend it on acknowledgement state if any is owed for
	// the opposite direction's receiver.
	if l.peer.ackOwed || l.peer.nackOwed {
		f := frame{ack: l.peer.rxExpected, nack: l.peer.nackOwed}
		f.seal()
		l.peer.ackOwed, l.peer.nackOwed = false, false
		l.acksSent++
		l.putOnWire(now, f)
		return true
	}
	return false
}

// sendData places one data frame on the wire with the current
// piggybacked ack state for the opposite direction.
func (l *ReliableLink) sendData(now int64, t txFrame) {
	if t.seq < l.maxSent {
		l.retransmits++
	} else {
		l.maxSent = t.seq + 1
	}
	f := frame{word: t.word, seq: t.seq, data: true, raw: t.raw, count: t.count, ack: l.peer.rxExpected, nack: l.peer.nackOwed}
	f.seal()
	l.peer.ackOwed, l.peer.nackOwed = false, false
	if !l.timerArmed {
		l.timerArmed = true
		l.timerBase = now
	}
	l.putOnWire(now, f)
}

// putOnWire passes a frame through the fault injector and, if it
// survives, appends it to the delay line.
func (l *ReliableLink) putOnWire(now int64, f frame) {
	if l.inj.Down(now) {
		l.inj.LoseOnWire(now)
		return
	}
	word, dropped := l.inj.Transmit(now, f.word)
	if dropped {
		return
	}
	f.word = word // a corrupted word no longer matches f.crc
	l.wire = append(l.wire, wireFrame{f: f, readyAt: now + l.latency})
}

// processAck applies a cumulative ack (and optional rewind request)
// received on the opposite direction's wire to this direction's
// transmit state.
func (l *ReliableLink) processAck(ack uint64, nack bool, now int64) {
	// This runs inside the peer direction's Tick but mutates this
	// direction's transmit state; if this direction is parked, the freed
	// window (or a rewind) is work it must wake for.
	defer l.eng.WakeKernel(l.id)
	if ack > l.ackedSeq {
		drop := int(ack - l.ackedSeq)
		if drop > len(l.buf) {
			drop = len(l.buf)
		}
		l.buf = l.buf[drop:]
		l.cursor -= drop
		if l.cursor < 0 {
			l.cursor = 0
		}
		l.ackedSeq = ack
		l.timeouts = 0
		l.timerBase = now
		if len(l.buf) == 0 && l.cursor == 0 {
			l.timerArmed = false
		}
	}
	if nack && now >= l.rewindOk && len(l.buf) > 0 {
		// Rewind to the first unacked frame; guard so the burst of
		// nacks a single loss provokes triggers only one rewind.
		l.cursor = 0
		l.rewindOk = now + 2*l.latency
		l.timerBase = now
	}
}

func (l *ReliableLink) String() string {
	return fmt.Sprintf("rlink %s (lat=%d, delivered=%d, rexmit=%d)", l.name, l.latency, l.delivered, l.retransmits)
}
