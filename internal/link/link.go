// Package link models the dedicated serial connections between FPGA
// network interfaces (QSFP transceivers on the experimental platform).
//
// A link moves one 32-byte network packet per clock cycle per direction
// — 40 Gbit/s raw at the default 156.25 MHz clock — after a fixed
// propagation/serialization latency. Links are lossless: the BSP's QSFP
// interfaces "implement error correction, flow control, and handle
// backpressure" (paper §5.1), which the simulation reflects by stalling
// the head of the delay line when the receiver FIFO is full and by
// refusing new packets when the in-flight window is exhausted.
package link

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// DefaultLatency is the one-way link latency in cycles. At 156.25 MHz,
// 110 cycles ≈ 0.7 µs, consistent with the ~0.8 µs single-hop latency
// the paper measures end to end (Table 3).
const DefaultLatency = 110

// Link is a unidirectional packet pipe between two devices. A physical
// cable is modeled as two Links, one per direction.
type Link struct {
	name    string
	in      *sim.Fifo[packet.Packet] // transmit side (CKS "network port")
	out     *sim.Fifo[packet.Packet] // receive side (CKR "network port")
	latency int64

	q []inFlight // delay line, oldest first

	// Stats.
	delivered  uint64
	stalls     uint64 // cycles the head packet waited on a full receiver
	stallSince int64  // cycle the current blocked-head window opened, -1 if none
}

type inFlight struct {
	p       packet.Packet
	readyAt int64
}

// New registers a unidirectional link between in (sender side) and out
// (receiver side) on the engine. latency <= 0 selects DefaultLatency.
func New(e *sim.Engine, name string, in, out *sim.Fifo[packet.Packet], latency int64) *Link {
	if latency <= 0 {
		latency = DefaultLatency
	}
	l := &Link{name: name, in: in, out: out, latency: latency, stallSince: -1}
	id := e.AddKernel(l)
	// Commits on the transmit FIFO and pops on the receive FIFO are the
	// only external events that can give a parked link work.
	in.WakesKernel(id)
	out.WakesKernel(id)
	return l
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Delivered returns the number of packets delivered to the receiver.
func (l *Link) Delivered() uint64 { return l.delivered }

// Stalls returns the number of cycles the link head spent blocked on a
// full receiver FIFO (backpressure pressure gauge).
func (l *Link) Stalls() uint64 { return l.stalls }

// Tick advances the link one cycle: deliver at most one arrived packet,
// then accept at most one new packet if the in-flight window allows.
func (l *Link) Tick(now int64) bool {
	active := false
	if len(l.q) > 0 && l.q[0].readyAt <= now {
		if l.out.TryPush(l.q[0].p) {
			if l.stallSince >= 0 {
				// Close the blocked-head window: the opening cycle was
				// counted when the window opened.
				l.stalls += uint64(now - l.stallSince - 1)
				l.stallSince = -1
			}
			l.q = l.q[1:]
			l.delivered++
			active = true
		} else if l.stallSince < 0 {
			l.stallSince = now
			l.stalls++
		}
	}
	// The in-flight window equals the latency: one packet can be "on the
	// wire" per cycle of flight time. This bounds buffering to what the
	// physical serialization pipeline holds.
	if int64(len(l.q)) < l.latency {
		if p, ok := l.in.TryPop(); ok {
			l.q = append(l.q, inFlight{p: p, readyAt: now + l.latency})
			active = true
		}
	}
	// Packets still serializing arrive by the passage of time alone; that
	// is a scheduled wake (IdleUntil), not per-cycle activity. A delay
	// line whose every packet is ready but blocked on a full receiver
	// depends on external progress and reports idle (so jams are
	// diagnosable as deadlocks).
	return active
}

// IdleUntil promises the link does nothing before its oldest in-flight
// packet finishes serializing. Head-ready-but-blocked and empty states
// park until a FIFO wake (transmit commit or receive pop).
func (l *Link) IdleUntil(now int64) int64 {
	if len(l.q) > 0 && l.q[0].readyAt > now {
		return l.q[0].readyAt
	}
	return sim.Never
}

func (l *Link) String() string {
	return fmt.Sprintf("link %s (lat=%d, delivered=%d)", l.name, l.latency, l.delivered)
}
