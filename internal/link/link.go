// Package link models the dedicated serial connections between FPGA
// network interfaces (QSFP transceivers on the experimental platform).
//
// A link moves one 32-byte network packet per clock cycle per direction
// — 40 Gbit/s raw at the default 156.25 MHz clock — after a fixed
// propagation/serialization latency. Links are lossless: the BSP's QSFP
// interfaces "implement error correction, flow control, and handle
// backpressure" (paper §5.1), which the simulation reflects by stalling
// delivery when the receiver FIFO is full and by refusing new packets
// when the credit window is exhausted.
//
// Each direction is split into a transmit half (living on the sender
// rank's engine shard) and a receive half (on the receiver's shard),
// joined by two sim.Boundary delay lines: the wire carrying packets
// forward and a same-latency credit return path. The transmit half
// admits a packet only while fewer than 2×latency packets are
// outstanding (sent but no credit back) — the round-trip window that
// sustains one packet per cycle at saturation, like a credit-based
// serial protocol. Crucially, admission depends only on sender-local
// state plus credits that are at least one link latency old, so the two
// halves never need same-cycle agreement: exactly the decoupling the
// sharded scheduler's lookahead window requires.
package link

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// DefaultLatency is the one-way link latency in cycles. At 156.25 MHz,
// 110 cycles ≈ 0.7 µs, consistent with the ~0.8 µs single-hop latency
// the paper measures end to end (Table 3).
const DefaultLatency = 110

// Link is a unidirectional packet pipe between two devices. A physical
// cable is modeled as two Links, one per direction. The struct is a
// facade over the split transmit/receive kernels.
type Link struct {
	name    string
	latency int64
	tx      *linkTx
	rx      *linkRx
}

// linkTx is the sender-side half: it pops the transport's network-out
// FIFO and puts packets on the wire, gated by the credit window.
type linkTx struct {
	name    string
	in      *sim.Fifo[packet.Packet] // transmit side (CKS "network port")
	wire    *sim.Boundary[packet.Packet]
	credits *sim.Boundary[struct{}]
	window  int64 // max outstanding packets: 2×latency (the round trip)
	// outstanding counts packets sent whose credits have not matured.
	outstanding int64
}

// linkRx is the receiver-side half: it delivers matured wire entries to
// the transport's network-in FIFO and returns one credit per delivery.
type linkRx struct {
	name    string
	out     *sim.Fifo[packet.Packet] // receive side (CKR "network port")
	wire    *sim.Boundary[packet.Packet]
	credits *sim.Boundary[struct{}]

	delivered  uint64
	stalls     uint64 // cycles the head packet waited on a full receiver
	stallSince int64  // cycle the current blocked-head window opened, -1 if none
}

// New registers a unidirectional link between in (sender side, on the
// src engine) and out (receiver side, on the dst engine). src and dst
// are the same engine in single-shard runs. latency <= 0 selects
// DefaultLatency.
func New(src, dst *sim.Engine, name string, in, out *sim.Fifo[packet.Packet], latency int64) *Link {
	if latency <= 0 {
		latency = DefaultLatency
	}
	rx := &linkRx{name: name, out: out, stallSince: -1}
	tx := &linkTx{name: name, in: in, window: 2 * latency}
	// The receive half registers before the transmit half, mirroring the
	// deliver-then-accept order of a single-kernel link.
	rxID := dst.AddKernel(rx)
	txID := src.AddKernel(tx)
	wire := sim.NewBoundary[packet.Packet](src, dst, rxID, latency)
	credits := sim.NewBoundary[struct{}](dst, src, txID, latency)
	tx.wire, tx.credits = wire, credits
	rx.wire, rx.credits = wire, credits
	// Commits on the transmit FIFO and pops on the receive FIFO are the
	// only external events (besides boundary arrivals, which wake the
	// halves directly) that can give a parked half work.
	in.WakesKernel(txID)
	out.WakesKernel(rxID)
	return &Link{name: name, latency: latency, tx: tx, rx: rx}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Delivered returns the number of packets delivered to the receiver.
func (l *Link) Delivered() uint64 { return l.rx.delivered }

// Stalls returns the number of cycles the link head spent blocked on a
// full receiver FIFO (backpressure pressure gauge).
func (l *Link) Stalls() uint64 { return l.rx.stalls }

func (l *Link) String() string {
	return fmt.Sprintf("link %s (lat=%d, delivered=%d)", l.name, l.latency, l.rx.delivered)
}

func (t *linkTx) Name() string { return t.name + ".tx" }

// Tick advances the transmit half one cycle: collect matured credits,
// then accept at most one new packet if the window allows.
func (t *linkTx) Tick(now int64) bool {
	for {
		if _, ok := t.credits.PopReady(now); !ok {
			break
		}
		t.outstanding--
	}
	if t.outstanding < t.window {
		if p, ok := t.in.TryPop(); ok {
			t.wire.Put(now, p)
			t.outstanding++
			return true
		}
	}
	// Credit maturation alone is not activity: it changes no state any
	// other component can observe, so an otherwise idle sender must not
	// delay quiescence detection while residual credits drain.
	return false
}

// IdleUntil parks the transmit half until the next credit matures when
// it is window-blocked with data waiting; everything else that can give
// it work arrives as a wake (transmit-FIFO commit, credit flush).
func (t *linkTx) IdleUntil(now int64) int64 {
	if t.in.CanPop() && t.outstanding >= t.window {
		return t.credits.NextReadyAt()
	}
	return sim.Never
}

func (r *linkRx) Name() string { return r.name + ".rx" }

// Tick advances the receive half one cycle: deliver at most one matured
// packet and return its credit.
func (r *linkRx) Tick(now int64) bool {
	p, ok := r.wire.PeekReady(now)
	if !ok {
		return false
	}
	if !r.out.TryPush(p) {
		if r.stallSince < 0 {
			r.stallSince = now
			r.stalls++
		}
		return false
	}
	if r.stallSince >= 0 {
		// Close the blocked-head window: the opening cycle was counted
		// when the window opened.
		r.stalls += uint64(now - r.stallSince - 1)
		r.stallSince = -1
	}
	r.wire.PopReady(now)
	r.credits.Put(now, struct{}{})
	r.delivered++
	return true
}

// IdleUntil promises the receive half does nothing before its oldest
// in-flight packet finishes serializing. Head-ready-but-blocked and
// empty states park until a wake (receive-FIFO pop or wire arrival).
func (r *linkRx) IdleUntil(now int64) int64 {
	if next := r.wire.NextReadyAt(); next > now {
		return next // Never when the wire is empty
	}
	return sim.Never
}
