package link

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func pkt(seq int) packet.Packet {
	p := packet.Packet{Op: packet.OpData, Count: 1}
	p.PutElem(0, packet.Int, packet.IntBits(int32(seq)))
	return p
}

func seqOf(p packet.Packet) int32 { return packet.BitsInt(p.Elem(0, packet.Int)) }

func TestLinkLatency(t *testing.T) {
	e := sim.NewEngine()
	in := sim.NewFifo[packet.Packet](e, "in", 4)
	out := sim.NewFifo[packet.Packet](e, "out", 4)
	l := New(e, e, "l", in, out, 50)
	var sent, got int64
	sim.NewProc(e, "tx", func(p *sim.Proc) {
		in.PushProc(p, pkt(1))
		sent = p.Now()
	})
	sim.NewProc(e, "rx", func(p *sim.Proc) {
		out.PopProc(p)
		got = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d := got - sent; d < 50 || d > 56 {
		t.Fatalf("delivery took %d cycles, want latency 50 plus small pipeline overhead", d)
	}
	if l.Delivered() != 1 {
		t.Fatalf("delivered = %d", l.Delivered())
	}
}

func TestLinkThroughputOnePacketPerCycle(t *testing.T) {
	const n = 2000
	e := sim.NewEngine()
	in := sim.NewFifo[packet.Packet](e, "in", 8)
	out := sim.NewFifo[packet.Packet](e, "out", 8)
	New(e, e, "l", in, out, 20)
	var done int64
	sim.NewProc(e, "tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			in.PushProc(p, pkt(i))
		}
	})
	sim.NewProc(e, "rx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			got := out.PopProc(p)
			if seqOf(got) != int32(i) {
				t.Errorf("packet %d out of order: %d", i, seqOf(got))
				return
			}
		}
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Steady state one packet per cycle: n packets in ~n cycles plus
	// latency and pipeline fill.
	if done > n+100 {
		t.Fatalf("throughput below one packet/cycle: %d packets in %d cycles", n, done)
	}
}

func TestLinkBackpressure(t *testing.T) {
	// A receiver that never pops: the link may hold at most its in-flight
	// window plus the output FIFO, and the rest backpressures the sender.
	e := sim.NewEngine()
	e.SetMaxCycles(5000)
	in := sim.NewFifo[packet.Packet](e, "in", 2)
	out := sim.NewFifo[packet.Packet](e, "out", 2)
	l := New(e, e, "l", in, out, 10)
	pushed := 0
	sim.NewProc(e, "tx", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			in.PushProc(p, pkt(i))
			pushed++
		}
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected the run to stall (deadlock or cycle limit)")
	}
	// Maximum absorbed: the credit window admits 2×latency (20) packets
	// with no credits back, deliveries into the output fifo (2) return
	// two more credits, and the input fifo buffers 2 beyond that.
	if pushed > 24 {
		t.Fatalf("backpressure failed: sender pushed %d packets into a dead sink", pushed)
	}
	if l.Stalls() == 0 {
		t.Fatal("link should have recorded head-of-line stalls")
	}
}

func TestLinkDefaultLatency(t *testing.T) {
	e := sim.NewEngine()
	in := sim.NewFifo[packet.Packet](e, "in", 2)
	out := sim.NewFifo[packet.Packet](e, "out", 2)
	l := New(e, e, "l", in, out, 0)
	if l.latency != DefaultLatency {
		t.Fatalf("latency = %d, want default %d", l.latency, DefaultLatency)
	}
	if l.Name() != "l" || l.String() == "" {
		t.Fatal("accessors broken")
	}
}
