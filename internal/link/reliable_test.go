package link

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/sim"
)

// rig is one reliable cable with a unidirectional A->B workload attached.
type rig struct {
	eng    *sim.Engine
	ab, ba *ReliableLink
	done   int64 // rx completion cycle
	order  []int32
}

func reliableRig(t *testing.T, n int, latency int64, spec *fault.Spec) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine()}
	r.eng.SetMaxCycles(500_000)
	inAB := sim.NewFifo[packet.Packet](r.eng, "inAB", 8)
	outAB := sim.NewFifo[packet.Packet](r.eng, "outAB", 8)
	inBA := sim.NewFifo[packet.Packet](r.eng, "inBA", 8)
	outBA := sim.NewFifo[packet.Packet](r.eng, "outBA", 8)
	inj := fault.NewInjector(spec)
	r.ab, r.ba = NewReliablePair(r.eng, r.eng, "a->b", "b->a",
		inAB, outAB, inBA, outBA, latency, ReliableParams{},
		inj.ForLink("a->b"), inj.ForLink("b->a"),
		inj.ForLinkExit("a->b"), inj.ForLinkExit("b->a"))
	sim.NewProc(r.eng, "tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			inAB.PushProc(p, pkt(i))
		}
	})
	sim.NewProc(r.eng, "rx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.order = append(r.order, seqOf(outAB.PopProc(p)))
		}
		r.done = p.Now()
	})
	return r
}

func (r *rig) checkPayload(t *testing.T, n int) {
	t.Helper()
	if len(r.order) != n {
		t.Fatalf("received %d packets, want %d", len(r.order), n)
	}
	for i, v := range r.order {
		if v != int32(i) {
			t.Fatalf("packet %d carries %d: lost, duplicated or reordered", i, v)
		}
	}
}

// TestReliableZeroFaultParity is the headline property: with no faults
// scheduled, the retransmission protocol is invisible — the workload
// finishes on exactly the same cycle as over the lossless Link.
func TestReliableZeroFaultParity(t *testing.T) {
	const n, latency = 3000, 110

	// Baseline: the paper's lossless link.
	be := sim.NewEngine()
	bin := sim.NewFifo[packet.Packet](be, "in", 8)
	bout := sim.NewFifo[packet.Packet](be, "out", 8)
	New(be, be, "l", bin, bout, latency)
	var baseDone int64
	sim.NewProc(be, "tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			bin.PushProc(p, pkt(i))
		}
	})
	sim.NewProc(be, "rx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			bout.PopProc(p)
		}
		baseDone = p.Now()
	})
	if err := be.Run(); err != nil {
		t.Fatal(err)
	}

	r := reliableRig(t, n, latency, nil)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	r.checkPayload(t, n)
	if r.done != baseDone {
		t.Fatalf("fault-free reliable link finished at cycle %d, lossless link at %d: protocol is not timing-transparent", r.done, baseDone)
	}
	if r.ab.Retransmits() != 0 || r.ab.CrcErrors() != 0 || r.ab.Duplicates() != 0 {
		t.Fatalf("fault-free run did repair work: %s", r.ab)
	}
}

func TestReliableScriptedDrop(t *testing.T) {
	const n = 1000
	spec := &fault.Spec{Events: []fault.Event{
		{Link: "a->b", Kind: fault.Drop, At: 300},
		{Link: "a->b", Kind: fault.Drop, At: 700},
	}}
	r := reliableRig(t, n, 110, spec)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	r.checkPayload(t, n)
	if r.ab.Retransmits() == 0 {
		t.Fatal("recovering from a drop must retransmit")
	}
	if r.ab.Delivered() != n {
		t.Fatalf("delivered %d, want %d", r.ab.Delivered(), n)
	}
}

// TestReliableDropDuringIdleSpan pins the event scheduler's treatment
// of retransmission timers: a frame dropped at the start of a long
// quiescent stretch (every process asleep, nothing on any wire) must be
// retransmitted when the RTO expires, at exactly the cycle the dense
// reference scan produces — not when the fast-forward would otherwise
// next wake the simulation.
func TestReliableDropDuringIdleSpan(t *testing.T) {
	const latency = 110
	const idle = 200_000
	spec := &fault.Spec{Events: []fault.Event{
		{Link: "a->b", Kind: fault.Drop, At: 0},
	}}
	run := func(kind sim.SchedulerKind) (done int64, retx uint64, end int64) {
		eng := sim.NewEngine()
		eng.SetScheduler(kind)
		eng.SetMaxCycles(500_000)
		inAB := sim.NewFifo[packet.Packet](eng, "inAB", 8)
		outAB := sim.NewFifo[packet.Packet](eng, "outAB", 8)
		inBA := sim.NewFifo[packet.Packet](eng, "inBA", 8)
		outBA := sim.NewFifo[packet.Packet](eng, "outBA", 8)
		inj := fault.NewInjector(spec)
		ab, _ := NewReliablePair(eng, eng, "a->b", "b->a",
			inAB, outAB, inBA, outBA, latency, ReliableParams{},
			inj.ForLink("a->b"), inj.ForLink("b->a"),
			inj.ForLinkExit("a->b"), inj.ForLinkExit("b->a"))
		sim.NewProc(eng, "tx", func(p *sim.Proc) {
			inAB.PushProc(p, pkt(0))
			p.Sleep(idle) // the cluster has nothing else to do meanwhile
		})
		sim.NewProc(eng, "rx", func(p *sim.Proc) {
			outAB.PopProc(p)
			done = p.Now()
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return done, ab.Retransmits(), eng.Now()
	}
	evDone, evRetx, evEnd := run(sim.SchedEvent)
	deDone, deRetx, deEnd := run(sim.SchedDense)
	if evRetx == 0 {
		t.Fatal("the dropped frame was never retransmitted")
	}
	if evDone != deDone || evRetx != deRetx || evEnd != deEnd {
		t.Fatalf("event (done=%d retx=%d end=%d) diverges from dense (done=%d retx=%d end=%d)",
			evDone, evRetx, evEnd, deDone, deRetx, deEnd)
	}
	// The RTO fires one timeout past the original send; delivery must
	// land within a few timeouts, far inside the idle span.
	if evDone >= idle {
		t.Fatalf("retransmit delivered at cycle %d, after the idle span: the timer was jumped over", evDone)
	}
	if evEnd < idle {
		t.Fatalf("run ended at cycle %d: the scheduler never fast-forwarded the idle span", evEnd)
	}
}

func TestReliableScriptedCorrupt(t *testing.T) {
	const n = 1000
	spec := &fault.Spec{Events: []fault.Event{
		{Link: "a->b", Kind: fault.Corrupt, At: 400, Bit: 13},
	}}
	r := reliableRig(t, n, 110, spec)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	r.checkPayload(t, n)
	if r.ab.CrcErrors() == 0 {
		t.Fatal("the corrupted frame must fail its CRC check")
	}
	if r.ab.Retransmits() == 0 {
		t.Fatal("recovering from corruption must retransmit")
	}
}

func TestReliableFlap(t *testing.T) {
	const n = 2000
	// A 150-cycle carrier loss mid-transfer: everything sent or in
	// flight during the window is lost and must be retransmitted.
	spec := &fault.Spec{Events: []fault.Event{
		{Link: "a->b", Kind: fault.Flap, At: 500, Until: 650},
	}}
	r := reliableRig(t, n, 110, spec)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	r.checkPayload(t, n)
	if r.ab.Retransmits() == 0 {
		t.Fatal("flap recovery must retransmit")
	}
	if r.ab.Dead() {
		t.Fatal("a transient flap must not kill the link")
	}
}

func TestReliableProbabilisticLossDeterministic(t *testing.T) {
	const n = 2000
	run := func() (int64, uint64) {
		spec := &fault.Spec{Seed: 42, DropProb: 0.01, CorruptProb: 0.002}
		r := reliableRig(t, n, 110, spec)
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		r.checkPayload(t, n)
		return r.done, r.ab.Retransmits()
	}
	d1, rx1 := run()
	d2, rx2 := run()
	if d1 != d2 || rx1 != rx2 {
		t.Fatalf("same seed diverged: cycles %d vs %d, retransmits %d vs %d", d1, d2, rx1, rx2)
	}
	if rx1 == 0 {
		t.Fatal("1% drop probability over 2000 packets should have forced retransmissions")
	}
}

// TestReliableKill checks a permanently dead link is detected as dead
// rather than retried forever. Without a failover controller the
// transfer cannot complete, so the run ends in an error.
func TestReliableKill(t *testing.T) {
	const n = 500
	spec := &fault.Spec{Events: []fault.Event{
		{Link: "a->b", Kind: fault.Kill, At: 300},
	}}
	r := reliableRig(t, n, 110, spec)
	r.eng.SetMaxCycles(100_000)
	if err := r.eng.Run(); err == nil {
		t.Fatal("a killed link with no failover must not complete")
	}
	if !r.ab.Dead() {
		t.Fatalf("sender never declared the killed link dead (timeouts observed: %s)", r.ab)
	}
}

// TestReliableBackpressureIsNotLoss parks a receiver for a long time:
// the RTO must not fire (the wire is jammed, not lossy) and nothing may
// be retransmitted or declared dead.
func TestReliableBackpressureIsNotLoss(t *testing.T) {
	const n = 200
	e := sim.NewEngine()
	e.SetMaxCycles(200_000)
	inAB := sim.NewFifo[packet.Packet](e, "inAB", 8)
	outAB := sim.NewFifo[packet.Packet](e, "outAB", 2)
	inBA := sim.NewFifo[packet.Packet](e, "inBA", 2)
	outBA := sim.NewFifo[packet.Packet](e, "outBA", 2)
	ab, _ := NewReliablePair(e, e, "a->b", "b->a",
		inAB, outAB, inBA, outBA, 50, ReliableParams{}, nil, nil, nil, nil)
	sim.NewProc(e, "tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			inAB.PushProc(p, pkt(i))
		}
	})
	var got []int32
	sim.NewProc(e, "rx", func(p *sim.Proc) {
		p.Sleep(10_000) // receiver busy elsewhere for far longer than the RTO
		for i := 0; i < n; i++ {
			got = append(got, seqOf(outAB.PopProc(p)))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("packet %d carries %d", i, v)
		}
	}
	if ab.Retransmits() != 0 {
		t.Fatalf("backpressure provoked %d retransmits: the RTO must pause while the wire is full", ab.Retransmits())
	}
	if ab.Dead() {
		t.Fatal("backpressure killed the link")
	}
}
