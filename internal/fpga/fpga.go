// Package fpga models the FPGA accelerator board an SMI rank runs on:
// its network interfaces and its off-chip memory banks.
//
// Application kernels in the paper's evaluation are memory bound, so the
// property that matters is the sustained streaming rate per DDR bank in
// elements per cycle. The Nallatech 520N used on the Noctua cluster has
// four independent DDR4 banks; a vectorized kernel reads 16 float32
// elements (64 bytes) per cycle from one bank, 64 elements per cycle
// from all four — exactly the configurations Fig 15 sweeps.
package fpga

import "fmt"

// Board describes one FPGA accelerator card.
type Board struct {
	Name string
	// Ifaces is the number of QSFP network interfaces.
	Ifaces int
	// MemBanks is the number of independent off-chip memory banks.
	MemBanks int
	// BankBytesPerCycle is the sustained streaming bandwidth of one bank
	// in bytes per clock cycle.
	BankBytesPerCycle int
	// RowOverheadCycles models per-burst inefficiency (pipeline drains,
	// DDR row switches) charged once per streamed row/burst by kernels
	// that process 2D data. It is the main reason real designs reach
	// ~87% rather than 100% of nominal scaling (Fig 15's 3.5x instead of
	// 4x per 4x bandwidth).
	RowOverheadCycles int
	// LaunchOverheadCycles models kernel launch latency (OpenCL enqueue,
	// pipeline fill) charged once per kernel execution.
	LaunchOverheadCycles int
}

// Nallatech520N returns the board used in the paper's evaluation.
func Nallatech520N() Board {
	return Board{
		Name:                 "Nallatech 520N (Stratix 10 GX2800)",
		Ifaces:               4,
		MemBanks:             4,
		BankBytesPerCycle:    64,
		RowOverheadCycles:    10,
		LaunchOverheadCycles: 2000,
	}
}

// StreamCycles returns the cycles needed to stream the given number of
// bytes using the given number of memory banks (no per-row overhead).
func (b Board) StreamCycles(bytes int64, banks int) int64 {
	if banks <= 0 || banks > b.MemBanks {
		panic(fmt.Sprintf("fpga: invalid bank count %d (board has %d)", banks, b.MemBanks))
	}
	bw := int64(banks * b.BankBytesPerCycle)
	return (bytes + bw - 1) / bw
}

// ElemsPerCycle returns how many elements of the given size a kernel can
// stream per cycle from the given number of banks.
func (b Board) ElemsPerCycle(elemSize, banks int) int {
	if banks <= 0 || banks > b.MemBanks {
		panic(fmt.Sprintf("fpga: invalid bank count %d (board has %d)", banks, b.MemBanks))
	}
	n := banks * b.BankBytesPerCycle / elemSize
	if n < 1 {
		n = 1
	}
	return n
}
