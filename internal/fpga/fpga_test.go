package fpga

import "testing"

func TestNallatech520N(t *testing.T) {
	b := Nallatech520N()
	if b.Ifaces != 4 || b.MemBanks != 4 {
		t.Fatalf("520N has 4 QSFPs and 4 banks, got %d/%d", b.Ifaces, b.MemBanks)
	}
	// One bank streams 16 float32 elements per cycle (Fig 15's "16
	// elements per cycle from a single DDR bank").
	if got := b.ElemsPerCycle(4, 1); got != 16 {
		t.Fatalf("1-bank float rate = %d elems/cycle, want 16", got)
	}
	if got := b.ElemsPerCycle(4, 4); got != 64 {
		t.Fatalf("4-bank float rate = %d elems/cycle, want 64", got)
	}
}

func TestStreamCycles(t *testing.T) {
	b := Nallatech520N()
	if got := b.StreamCycles(64, 1); got != 1 {
		t.Fatalf("one bank-width transfer = %d cycles, want 1", got)
	}
	if got := b.StreamCycles(65, 1); got != 2 {
		t.Fatalf("rounding up failed: %d", got)
	}
	if got := b.StreamCycles(1<<20, 4); got != (1<<20)/256 {
		t.Fatalf("4-bank 1MiB = %d cycles", got)
	}
	// More banks strictly help.
	if b.StreamCycles(1<<20, 4) >= b.StreamCycles(1<<20, 1) {
		t.Fatal("more banks should reduce stream time")
	}
}

func TestInvalidBankCountsPanic(t *testing.T) {
	b := Nallatech520N()
	for _, banks := range []int{0, -1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("banks=%d should panic", banks)
				}
			}()
			b.StreamCycles(100, banks)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ElemsPerCycle banks=%d should panic", banks)
				}
			}()
			b.ElemsPerCycle(4, banks)
		}()
	}
}

func TestElemsPerCycleMinimumOne(t *testing.T) {
	// Even exotic element sizes never stall the pipeline completely.
	b := Board{Name: "tiny", Ifaces: 1, MemBanks: 1, BankBytesPerCycle: 4}
	if got := b.ElemsPerCycle(8, 1); got != 1 {
		t.Fatalf("rate floor = %d, want 1", got)
	}
}
