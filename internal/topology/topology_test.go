package topology

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTorus2x4MatchesPaperSetup(t *testing.T) {
	// "8 FPGAs connected in a 2D torus, such that all the 4 QSFP ports
	// in each FPGA are wired to 4 distinct other FPGAs."
	topo, err := Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Devices != 8 {
		t.Fatalf("devices = %d, want 8", topo.Devices)
	}
	adj := topo.Adjacent()
	for d := 0; d < 8; d++ {
		if topo.Degree(d) != 4 {
			t.Errorf("device %d degree = %d, want 4", d, topo.Degree(d))
		}
		neighbors := map[int]bool{}
		for _, e := range adj[d] {
			if e.Device < 0 {
				t.Errorf("device %d has an uncabled interface", d)
				continue
			}
			if e.Device == d {
				t.Errorf("device %d cabled to itself", d)
			}
			neighbors[e.Device] = true
		}
		// In a 2-row torus the north and south cables reach the same
		// device, so 3 distinct neighbors; >= 3x3 tori give 4.
		if len(neighbors) != 3 {
			t.Errorf("device %d has %d distinct neighbors, want 3 in a 2x4 torus", d, len(neighbors))
		}
	}
}

func TestTorusRejectsDegenerate(t *testing.T) {
	if _, err := Torus2D(1, 4); err == nil {
		t.Fatal("1-row torus should be rejected (self-cabling)")
	}
	if _, err := Torus2D(4, 1); err == nil {
		t.Fatal("1-column torus should be rejected")
	}
}

func TestBusEndpoints(t *testing.T) {
	topo, err := Bus(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Connections) != 7 {
		t.Fatalf("bus-8 should have 7 cables, got %d", len(topo.Connections))
	}
	if topo.Degree(0) != 1 || topo.Degree(7) != 1 {
		t.Fatal("bus ends must have degree 1")
	}
	for d := 1; d < 7; d++ {
		if topo.Degree(d) != 2 {
			t.Fatalf("interior bus device %d degree = %d, want 2", d, topo.Degree(d))
		}
	}
	if !topo.Connected() {
		t.Fatal("bus must be connected")
	}
}

func TestRingStarFull(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo *Topology
		err  error
	}{} {
		_ = tc
	}
	ring, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 5; d++ {
		if ring.Degree(d) != 2 {
			t.Fatalf("ring degree %d, want 2", ring.Degree(d))
		}
	}
	star, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	if star.Degree(0) != 5 {
		t.Fatalf("star hub degree = %d, want 5", star.Degree(0))
	}
	full, err := FullyConnected(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Connections) != 10 {
		t.Fatalf("K5 has 10 edges, got %d", len(full.Connections))
	}
	for d := 0; d < 5; d++ {
		if full.Degree(d) != 4 {
			t.Fatalf("K5 degree = %d, want 4", full.Degree(d))
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	topo, _ := Torus2D(2, 4)
	for d := 0; d < topo.Devices; d++ {
		for i := 0; i < topo.Ifaces; i++ {
			remote, ok := topo.Neighbor(d, i)
			if !ok {
				t.Fatalf("torus interface %d:%d uncabled", d, i)
			}
			back, ok := topo.Neighbor(remote.Device, remote.Iface)
			if !ok || back.Device != d || back.Iface != i {
				t.Fatalf("cable not symmetric: %d:%d -> %s -> %s", d, i, remote, back)
			}
		}
	}
}

func TestValidateRejectsBadWiring(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
	}{
		{"no devices", Topology{Devices: 0, Ifaces: 4}},
		{"no ifaces", Topology{Devices: 2, Ifaces: 0}},
		{"device out of range", Topology{Devices: 2, Ifaces: 4, Connections: []Connection{
			{A: Endpoint{0, 0}, B: Endpoint{5, 0}}}}},
		{"iface out of range", Topology{Devices: 2, Ifaces: 4, Connections: []Connection{
			{A: Endpoint{0, 9}, B: Endpoint{1, 0}}}}},
		{"endpoint reused", Topology{Devices: 3, Ifaces: 4, Connections: []Connection{
			{A: Endpoint{0, 0}, B: Endpoint{1, 0}},
			{A: Endpoint{0, 0}, B: Endpoint{2, 0}}}}},
		{"self loop", Topology{Devices: 2, Ifaces: 4, Connections: []Connection{
			{A: Endpoint{0, 0}, B: Endpoint{0, 1}}}}},
	}
	for _, c := range cases {
		if err := c.topo.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestConnectedDetectsPartition(t *testing.T) {
	topo := Topology{Devices: 4, Ifaces: 4, Connections: []Connection{
		{A: Endpoint{0, 0}, B: Endpoint{1, 0}},
		{A: Endpoint{2, 0}, B: Endpoint{3, 0}},
	}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Connected() {
		t.Fatal("partitioned topology reported as connected")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	orig, _ := Torus2D(2, 4)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Devices != orig.Devices || got.Ifaces != orig.Ifaces || len(got.Connections) != len(orig.Connections) {
		t.Fatalf("JSON roundtrip mismatch: %+v vs %+v", got, orig)
	}
	for i := range orig.Connections {
		if got.Connections[i] != orig.Connections[i] {
			t.Fatalf("connection %d differs", i)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"devices": -1}`)); err == nil {
		t.Fatal("invalid topology should fail to parse")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed JSON should fail to parse")
	}
}

// Property: all torus sizes produce valid, connected, 4-regular wirings.
func TestTorusAlwaysValidQuick(t *testing.T) {
	prop := func(r, c uint8) bool {
		rows := int(r%6) + 2
		cols := int(c%6) + 2
		topo, err := Torus2D(rows, cols)
		if err != nil {
			return false
		}
		if !topo.Connected() {
			return false
		}
		for d := 0; d < topo.Devices; d++ {
			if topo.Degree(d) != 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHypercube(t *testing.T) {
	for dim := 1; dim <= 4; dim++ {
		topo, err := Hypercube(dim)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << dim
		if topo.Devices != n {
			t.Fatalf("dim %d: devices = %d, want %d", dim, topo.Devices, n)
		}
		if len(topo.Connections) != n*dim/2 {
			t.Fatalf("dim %d: %d cables, want %d", dim, len(topo.Connections), n*dim/2)
		}
		if !topo.Connected() {
			t.Fatalf("dim %d: not connected", dim)
		}
		for d := 0; d < n; d++ {
			if topo.Degree(d) != dim {
				t.Fatalf("dim %d: device %d degree %d", dim, d, topo.Degree(d))
			}
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Fatal("dimension 0 accepted")
	}
	if _, err := Hypercube(9); err == nil {
		t.Fatal("dimension 9 accepted")
	}
}
