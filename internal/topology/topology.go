// Package topology describes the physical interconnect of a multi-FPGA
// cluster: which QSFP network interface of which device is cabled to
// which interface of which other device.
//
// A topology is pure wiring. It is consumed by the route generator
// (internal/routing) to produce routing tables, and by the cluster
// builder (internal/core) to instantiate links. Changing the topology
// never requires "rebuilding the bitstream": the same compiled program
// runs on any wiring once new routing tables are uploaded (paper §4.3).
package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// DefaultIfaces is the number of QSFP network interfaces per device on
// the experimental platform (Nallatech 520N: 4 × 40 Gbit/s).
const DefaultIfaces = 4

// Endpoint identifies one side of a cable: a device and one of its
// network interfaces.
type Endpoint struct {
	Device int `json:"device"`
	Iface  int `json:"iface"`
}

func (e Endpoint) String() string { return fmt.Sprintf("%d:%d", e.Device, e.Iface) }

// Connection is a full-duplex cable between two endpoints.
type Connection struct {
	A Endpoint `json:"a"`
	B Endpoint `json:"b"`
}

// Topology is the wiring of a cluster.
type Topology struct {
	Devices     int          `json:"devices"`
	Ifaces      int          `json:"ifaces_per_device"`
	Connections []Connection `json:"connections"`
	Name        string       `json:"name,omitempty"`
}

// Validate checks structural well-formedness: indices in range, each
// interface used by at most one cable, and no device cabled to itself.
func (t *Topology) Validate() error {
	if t.Devices <= 0 {
		return fmt.Errorf("topology: device count %d must be positive", t.Devices)
	}
	if t.Ifaces <= 0 {
		return fmt.Errorf("topology: interface count %d must be positive", t.Ifaces)
	}
	used := make(map[Endpoint]bool)
	for i, c := range t.Connections {
		for _, e := range [2]Endpoint{c.A, c.B} {
			if e.Device < 0 || e.Device >= t.Devices {
				return fmt.Errorf("topology: connection %d: device %d out of range [0,%d)", i, e.Device, t.Devices)
			}
			if e.Iface < 0 || e.Iface >= t.Ifaces {
				return fmt.Errorf("topology: connection %d: iface %d out of range [0,%d)", i, e.Iface, t.Ifaces)
			}
			if used[e] {
				return fmt.Errorf("topology: connection %d: endpoint %s already cabled", i, e)
			}
			used[e] = true
		}
		if c.A.Device == c.B.Device {
			return fmt.Errorf("topology: connection %d: device %d cabled to itself", i, c.A.Device)
		}
	}
	return nil
}

// Neighbor returns the endpoint cabled to (device, iface), if any.
func (t *Topology) Neighbor(device, iface int) (Endpoint, bool) {
	e := Endpoint{Device: device, Iface: iface}
	for _, c := range t.Connections {
		if c.A == e {
			return c.B, true
		}
		if c.B == e {
			return c.A, true
		}
	}
	return Endpoint{}, false
}

// Adjacent lists, for each device, its cabled neighbors as
// (local interface -> remote endpoint). The returned slice is indexed by
// device, then by local interface; entries without a cable have
// Device == -1.
func (t *Topology) Adjacent() [][]Endpoint {
	adj := make([][]Endpoint, t.Devices)
	for d := range adj {
		adj[d] = make([]Endpoint, t.Ifaces)
		for i := range adj[d] {
			adj[d][i] = Endpoint{Device: -1, Iface: -1}
		}
	}
	for _, c := range t.Connections {
		adj[c.A.Device][c.A.Iface] = c.B
		adj[c.B.Device][c.B.Iface] = c.A
	}
	return adj
}

// Without returns a copy of the topology with the given cable removed
// (matched in either endpoint order). Used by the failover machinery to
// derive the surviving wiring after a permanent link death, and by
// degraded-topology tests.
func (t *Topology) Without(c Connection) *Topology {
	out := &Topology{Devices: t.Devices, Ifaces: t.Ifaces, Name: t.Name}
	for _, o := range t.Connections {
		if (o.A == c.A && o.B == c.B) || (o.A == c.B && o.B == c.A) {
			continue
		}
		out.Connections = append(out.Connections, o)
	}
	return out
}

// Degree returns the number of cabled interfaces of a device.
func (t *Topology) Degree(device int) int {
	n := 0
	for _, c := range t.Connections {
		if c.A.Device == device || c.B.Device == device {
			n++
		}
	}
	return n
}

// Connected reports whether every device can reach every other device.
func (t *Topology) Connected() bool {
	if t.Devices == 0 {
		return false
	}
	adj := t.Adjacent()
	seen := make([]bool, t.Devices)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[d] {
			if e.Device >= 0 && !seen[e.Device] {
				seen[e.Device] = true
				count++
				stack = append(stack, e.Device)
			}
		}
	}
	return count == t.Devices
}

// WriteJSON serializes the topology in the JSON interchange format
// consumed by cmd/routegen (the paper's "topology provided as a JSON
// file", §4.5).
func (t *Topology) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON parses a topology from its JSON form and validates it.
func ReadJSON(r io.Reader) (*Topology, error) {
	var t Topology
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("topology: parsing JSON: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
