package topology

import "fmt"

// Interface direction conventions used by the builders. Applications do
// not depend on these: routing tables abstract the wiring away.
const (
	IfaceNorth = 0
	IfaceEast  = 1
	IfaceSouth = 2
	IfaceWest  = 3
)

// Torus2D builds a rows × cols 2D torus. Every device has its four
// interfaces wired to four distinct neighbors, matching the 8-FPGA 2×4
// torus of the paper's experimental setup. Both dimensions must be at
// least 2 (a 1-wide torus would cable a device to itself).
func Torus2D(rows, cols int) (*Topology, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("topology: torus dimensions %dx%d must both be >= 2", rows, cols)
	}
	t := &Topology{
		Devices: rows * cols,
		Ifaces:  DefaultIfaces,
		Name:    fmt.Sprintf("torus-%dx%d", rows, cols),
	}
	dev := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Southward cable: (r,c).South <-> (r+1,c).North.
			t.Connections = append(t.Connections, Connection{
				A: Endpoint{Device: dev(r, c), Iface: IfaceSouth},
				B: Endpoint{Device: dev((r+1)%rows, c), Iface: IfaceNorth},
			})
			// Eastward cable: (r,c).East <-> (r,c+1).West.
			t.Connections = append(t.Connections, Connection{
				A: Endpoint{Device: dev(r, c), Iface: IfaceEast},
				B: Endpoint{Device: dev(r, (c+1)%cols), Iface: IfaceWest},
			})
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Bus builds a linear bus of n devices: device i's East interface is
// cabled to device i+1's West interface. This is the topology the paper
// uses to measure bandwidth and latency at controlled hop distances
// (§5.3.1: "the 8 FPGAs are treated as being organized along a linear
// bus").
func Bus(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: bus needs at least 2 devices, got %d", n)
	}
	t := &Topology{Devices: n, Ifaces: DefaultIfaces, Name: fmt.Sprintf("bus-%d", n)}
	for i := 0; i < n-1; i++ {
		t.Connections = append(t.Connections, Connection{
			A: Endpoint{Device: i, Iface: IfaceEast},
			B: Endpoint{Device: i + 1, Iface: IfaceWest},
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Ring builds a ring of n devices (a bus with the ends joined).
func Ring(n int) (*Topology, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs at least 3 devices, got %d", n)
	}
	t := &Topology{Devices: n, Ifaces: DefaultIfaces, Name: fmt.Sprintf("ring-%d", n)}
	for i := 0; i < n; i++ {
		t.Connections = append(t.Connections, Connection{
			A: Endpoint{Device: i, Iface: IfaceEast},
			B: Endpoint{Device: (i + 1) % n, Iface: IfaceWest},
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Star builds a star: device 0 is the hub, devices 1..n-1 are leaves on
// consecutive hub interfaces. The hub's interface count grows with n.
func Star(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs at least 2 devices, got %d", n)
	}
	ifaces := DefaultIfaces
	if n-1 > ifaces {
		ifaces = n - 1
	}
	t := &Topology{Devices: n, Ifaces: ifaces, Name: fmt.Sprintf("star-%d", n)}
	for i := 1; i < n; i++ {
		t.Connections = append(t.Connections, Connection{
			A: Endpoint{Device: 0, Iface: i - 1},
			B: Endpoint{Device: i, Iface: 0},
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// FullyConnected builds an all-to-all wiring of n devices. Each device
// needs n-1 interfaces.
func FullyConnected(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: full mesh needs at least 2 devices, got %d", n)
	}
	ifaces := n - 1
	if ifaces < DefaultIfaces {
		ifaces = DefaultIfaces
	}
	t := &Topology{Devices: n, Ifaces: ifaces, Name: fmt.Sprintf("full-%d", n)}
	// Device d talks to device e (e != d) on local interface e adjusted
	// for the skipped self slot.
	localIface := func(d, e int) int {
		if e < d {
			return e
		}
		return e - 1
	}
	for d := 0; d < n; d++ {
		for e := d + 1; e < n; e++ {
			t.Connections = append(t.Connections, Connection{
				A: Endpoint{Device: d, Iface: localIface(d, e)},
				B: Endpoint{Device: e, Iface: localIface(e, d)},
			})
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Hypercube builds a d-dimensional hypercube of 2^d devices: device v is
// cabled to v^(1<<k) for every dimension k, using local interface k on
// both sides. Hypercubes give logarithmic diameter with d interfaces per
// device.
func Hypercube(dim int) (*Topology, error) {
	if dim < 1 || dim > 8 {
		return nil, fmt.Errorf("topology: hypercube dimension %d outside [1,8]", dim)
	}
	n := 1 << dim
	ifaces := dim
	if ifaces < DefaultIfaces {
		ifaces = DefaultIfaces
	}
	t := &Topology{Devices: n, Ifaces: ifaces, Name: fmt.Sprintf("hypercube-%d", dim)}
	for v := 0; v < n; v++ {
		for k := 0; k < dim; k++ {
			w := v ^ (1 << k)
			if v < w {
				t.Connections = append(t.Connections, Connection{
					A: Endpoint{Device: v, Iface: k},
					B: Endpoint{Device: w, Iface: k},
				})
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
