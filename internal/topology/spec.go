package topology

import "fmt"

// Spec is a declarative description of a topology, the JSON-friendly
// form a job submission names instead of carrying an explicit wiring
// list. Build resolves it through the same builders the command-line
// tools use, so a spec-built topology is identical to a hand-built one.
type Spec struct {
	// Kind selects the builder: "torus", "bus", "ring", "star", "full",
	// or "hypercube".
	Kind string `json:"kind"`
	// Rows and Cols size a torus.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Devices sizes a bus, ring, star, or fully connected mesh.
	Devices int `json:"devices,omitempty"`
	// Dim sizes a hypercube (2^dim devices).
	Dim int `json:"dim,omitempty"`
}

// Build constructs and validates the described topology.
func (s Spec) Build() (*Topology, error) {
	switch s.Kind {
	case "torus":
		return Torus2D(s.Rows, s.Cols)
	case "bus":
		return Bus(s.Devices)
	case "ring":
		return Ring(s.Devices)
	case "star":
		return Star(s.Devices)
	case "full":
		return FullyConnected(s.Devices)
	case "hypercube":
		return Hypercube(s.Dim)
	default:
		return nil, fmt.Errorf("topology: unknown kind %q (have torus, bus, ring, star, full, hypercube)", s.Kind)
	}
}

// Ranks returns the device count the spec will build, without building
// it (0 if the spec is malformed).
func (s Spec) Ranks() int {
	switch s.Kind {
	case "torus":
		return s.Rows * s.Cols
	case "bus", "ring", "star", "full":
		return s.Devices
	case "hypercube":
		if s.Dim < 1 || s.Dim > 8 {
			return 0
		}
		return 1 << s.Dim
	default:
		return 0
	}
}
