package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func awaitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPEndToEnd drives the full API surface the CI smoke test
// exercises: health, workload catalog, two concurrent submissions,
// status polling, the event stream, replay, and stats.
func TestHTTPEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL

	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var workloads []WorkloadInfo
	if code := getJSON(t, base+"/v1/workloads", &workloads); code != http.StatusOK || len(workloads) == 0 {
		t.Fatalf("workloads: code %d, %d entries", code, len(workloads))
	}

	// Two concurrent identical-topology jobs: the second must reuse the
	// first's routing tables.
	spec := `{"workload":"stencil","ranks":16,"verify":true}`
	var a, b JobStatus
	if code := postJSON(t, base+"/v1/jobs", spec, &a); code != http.StatusAccepted {
		t.Fatalf("submit a: %d", code)
	}
	if code := postJSON(t, base+"/v1/jobs", spec, &b); code != http.StatusAccepted {
		t.Fatalf("submit b: %d", code)
	}
	stA, stB := awaitDone(t, base, a.ID), awaitDone(t, base, b.ID)
	if stA.State != StateDone || stB.State != StateDone {
		t.Fatalf("jobs ended %s/%s", stA.State, stB.State)
	}
	if stA.Result.OutputDigest != stB.Result.OutputDigest {
		t.Fatalf("identical jobs diverged: %s vs %s", stA.Result.OutputDigest, stB.Result.OutputDigest)
	}
	var stats Stats
	getJSON(t, base+"/v1/stats", &stats)
	if stats.RouteCache.Hits < 1 {
		t.Fatalf("no route-cache hit after identical jobs: %+v", stats.RouteCache)
	}

	// Event stream: the replayed log of a finished job ends in a
	// completed event and terminates the stream.
	resp, err := http.Get(base + "/v1/jobs/" + a.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	resp.Body.Close()
	if len(kinds) < 3 || kinds[0] != "queued" || kinds[len(kinds)-1] != "completed" {
		t.Fatalf("event kinds = %v", kinds)
	}

	// Replay through the API and check the service's verdict.
	var rep JobStatus
	if code := postJSON(t, base+"/v1/jobs/"+a.ID+"/replay", "", &rep); code != http.StatusAccepted {
		t.Fatalf("replay: %d", code)
	}
	repSt := awaitDone(t, base, rep.ID)
	if repSt.State != StateDone || repSt.ReplayMatch == nil || !*repSt.ReplayMatch {
		t.Fatalf("replay not verified bit-identical: %+v", repSt)
	}

	var listing []JobStatus
	if code := getJSON(t, base+"/v1/jobs", &listing); code != http.StatusOK || len(listing) != 3 {
		t.Fatalf("jobs listing: code %d, %d entries, want 3", code, len(listing))
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL

	check := func(code int, wantCode int, body map[string]string, wantKind string) {
		t.Helper()
		if code != wantCode {
			t.Fatalf("status = %d, want %d (%v)", code, wantCode, body)
		}
		if body["kind"] != wantKind {
			t.Fatalf("kind = %q, want %q", body["kind"], wantKind)
		}
	}

	var body map[string]string
	code := postJSON(t, base+"/v1/jobs", `{"workload":"nope","ranks":4}`, &body)
	check(code, http.StatusBadRequest, body, "invalid-spec")

	body = nil
	code = postJSON(t, base+"/v1/jobs", `{not json`, &body)
	check(code, http.StatusBadRequest, body, "invalid-spec")

	body = nil
	code = postJSON(t, base+"/v1/jobs", `{"workload":"bcast","ranks":4,"bogus_field":1}`, &body)
	check(code, http.StatusBadRequest, body, "invalid-spec")

	body = nil
	code = getJSON(t, base+"/v1/jobs/j9999", &body)
	check(code, http.StatusNotFound, body, "not-found")

	body = nil
	code = postJSON(t, base+"/v1/jobs/j9999/replay", "", &body)
	check(code, http.StatusNotFound, body, "not-found")
}

// TestHTTPOverload maps queue exhaustion onto 429.
func TestHTTPOverload(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	long := `{"workload":"pingpong","ranks":4,"size":20000}`
	var first JobStatus
	if code := postJSON(t, ts.URL+"/v1/jobs", long, &first); code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	job, err := svc.Job(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, job)
	if code := postJSON(t, ts.URL+"/v1/jobs", long, nil); code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	var body map[string]string
	code := postJSON(t, ts.URL+"/v1/jobs", long, &body)
	if code != http.StatusTooManyRequests || body["kind"] != "overloaded" {
		t.Fatalf("third submit: code %d, body %v; want 429 overloaded", code, body)
	}
}
