package service

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/topology"
)

// waitTerminal blocks until the job reaches a terminal state.
func waitTerminal(t *testing.T, j *Job) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, changed, terminal := j.EventsSince(0)
		if terminal {
			return j.Status()
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", j.ID(), j.State())
		}
		select {
		case <-changed:
		case <-time.After(time.Second):
		}
	}
}

func mustDone(t *testing.T, j *Job) JobStatus {
	t.Helper()
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return st
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc
}

func TestSubmitRunsJob(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	job, err := svc.Submit(JobSpec{Workload: "bcast", Ranks: 4, Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	st := mustDone(t, job)
	if st.Result == nil || st.Result.Cycles <= 0 {
		t.Fatalf("done job has no result: %+v", st)
	}
	if st.Result.OutputDigest == "" {
		t.Fatal("done job has no output digest")
	}
	if st.Started == nil || st.Finished == nil {
		t.Fatal("done job missing timestamps")
	}
}

// TestShardJobMatchesEvent admits a sharded job and checks it against
// the same spec under the default scheduler: identical cycles and
// output digest, with the shard layout visible in the returned stats.
func TestShardJobMatchesEvent(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	shard, err := svc.Submit(JobSpec{Workload: "bcast", Ranks: 8, Size: 256, Scheduler: "shard", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	event, err := svc.Submit(JobSpec{Workload: "bcast", Ranks: 8, Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	stS, stE := mustDone(t, shard), mustDone(t, event)
	if stS.Result.Cycles != stE.Result.Cycles {
		t.Fatalf("shard job finished at cycle %d, event at %d", stS.Result.Cycles, stE.Result.Cycles)
	}
	if stS.Result.OutputDigest != stE.Result.OutputDigest {
		t.Fatalf("shard digest %s != event digest %s", stS.Result.OutputDigest, stE.Result.OutputDigest)
	}
	if got := stS.Result.Stats.Sched.Shards; got != 4 {
		t.Fatalf("shard job reports %d shards, want 4", got)
	}
	if stS.Result.Stats.Sched.Syncs <= 0 {
		t.Fatal("shard job reports no boundary synchronizations")
	}
}

// TestAdaptiveShardJobWithFaults admits a fault-injected job under the
// adaptive scheduler — the combination the service used to reject —
// and checks it against the event-scheduled run: same digest, same
// cycles, with the adaptive window and per-shard effort counters
// surfaced in the job's stats and aggregated into /v1/stats.
func TestAdaptiveShardJobWithFaults(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	faults := &fault.Spec{Seed: 7, DropProb: 0.002}
	adaptive, err := svc.Submit(JobSpec{
		Workload: "bcast", Ranks: 8, Size: 256,
		Scheduler: "shard-adaptive", Shards: 4, Faults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	event, err := svc.Submit(JobSpec{Workload: "bcast", Ranks: 8, Size: 256, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	stA, stE := mustDone(t, adaptive), mustDone(t, event)
	if stA.Result.Cycles != stE.Result.Cycles {
		t.Fatalf("adaptive job finished at cycle %d, event at %d", stA.Result.Cycles, stE.Result.Cycles)
	}
	if stA.Result.OutputDigest != stE.Result.OutputDigest {
		t.Fatalf("adaptive digest %s != event digest %s", stA.Result.OutputDigest, stE.Result.OutputDigest)
	}
	sc := stA.Result.Stats.Sched
	if sc.Shards != 4 || sc.Syncs <= 0 {
		t.Fatalf("adaptive job reports shards=%d syncs=%d, want 4 shards with syncs", sc.Shards, sc.Syncs)
	}
	if sc.Windows <= 0 {
		t.Fatal("adaptive job reports no lookahead windows")
	}
	if len(sc.PerShard) != 4 {
		t.Fatalf("adaptive job reports %d per-shard rows, want 4", len(sc.PerShard))
	}
	agg := svc.Stats().Sched
	if agg.ShardedJobs == 0 || agg.Syncs < sc.Syncs || agg.Windows < sc.Windows {
		t.Fatalf("service stats did not aggregate scheduler effort: %+v (job: %+v)", agg, sc)
	}
}

// TestStreamingJob admits a large-message bandwidth job on the
// streaming path and checks it against the credited packet path: the
// streaming knobs must survive the spec round trip, cut fragments, and
// finish at least 2x sooner in simulated cycles.
func TestStreamingJob(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	stream, err := svc.Submit(JobSpec{
		Workload: "bandwidth", Ranks: 4, Size: 4096,
		Mode: "streaming", BufferElems: 64, StreamBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	credited, err := svc.Submit(JobSpec{
		Workload: "bandwidth", Ranks: 4, Size: 4096,
		Mode: "credited", BufferElems: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	stS, stC := mustDone(t, stream), mustDone(t, credited)
	if stS.Result.Stats.StreamFragments == 0 {
		t.Fatal("streaming job cut no fragments")
	}
	if stC.Result.Stats.StreamFragments != 0 {
		t.Fatalf("credited job cut %d fragments", stC.Result.Stats.StreamFragments)
	}
	if 2*stS.Result.Cycles > stC.Result.Cycles {
		t.Fatalf("streaming job took %d cycles, credited %d; want at least 2x win",
			stS.Result.Cycles, stC.Result.Cycles)
	}
}

// TestTransportJob admits an incast job under each transport and checks
// the selection survives the spec round trip: the receiver-driven run
// self-reports its transport, issues grants, and cuts the incast tail
// against the credited sender-driven baseline.
func TestTransportJob(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	rd, err := svc.Submit(JobSpec{
		Workload: "incast", Ranks: 4, Size: 2000, Transport: "receiver-driven",
	})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := svc.Submit(JobSpec{Workload: "incast", Ranks: 4, Size: 2000})
	if err != nil {
		t.Fatal(err)
	}
	stR, stS := mustDone(t, rd), mustDone(t, sd)
	if got := stR.Result.Stats.Transport; got != "receiver-driven" {
		t.Fatalf("receiver-driven job reports transport %q", got)
	}
	if stR.Result.Stats.Grants == 0 {
		t.Fatal("receiver-driven job issued no grants")
	}
	if got := stS.Result.Stats.Transport; got != "sender-driven" {
		t.Fatalf("default job reports transport %q", got)
	}
	if stS.Result.Stats.Grants != 0 {
		t.Fatalf("sender-driven job reports %d grants", stS.Result.Stats.Grants)
	}
	if stR.Result.Metrics["tail_cycles"] >= stS.Result.Metrics["tail_cycles"] {
		t.Fatalf("receiver-driven tail %v not below sender-driven %v",
			stR.Result.Metrics["tail_cycles"], stS.Result.Metrics["tail_cycles"])
	}
}

func TestInvalidSpecsRejectedAtSubmit(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	cases := []JobSpec{
		{Workload: "nope", Ranks: 4},
		{Workload: "bcast", Ranks: 1},
		{Workload: "bcast", Ranks: -3},
		{Workload: "bcast", Ranks: 4, RoutingPolicy: "bogus"},
		{Workload: "bcast", Ranks: 4, Scheduler: "bogus"},
		{Workload: "bcast", Ranks: 4, Size: -1},
		{Workload: "bcast", Ranks: 9, Topology: &topology.Spec{Kind: "torus", Rows: 2, Cols: 2}},
		{Workload: "bcast", Ranks: 4, Faults: &fault.Spec{DropProb: 2}},
		{Workload: "summa", Ranks: 4, Faults: &fault.Spec{DropProb: 0.5}},
		{Workload: "bcast", Ranks: 4, Scheduler: "shard"},                      // shards missing
		{Workload: "bcast", Ranks: 4, Scheduler: "shard", Shards: -2},          // negative
		{Workload: "bcast", Ranks: 4, Scheduler: "shard", Shards: 8},           // > ranks
		{Workload: "bcast", Ranks: 4, Shards: 2},                               // shards without shard scheduler
		{Workload: "bcast", Ranks: 4, Scheduler: "shard-adaptive"},             // worker slots missing
		{Workload: "bandwidth", Ranks: 4, Mode: "teleport"},                    // unknown mode
		{Workload: "bcast", Ranks: 4, Mode: "streaming"},                       // mode-less workload
		{Workload: "bcast", Ranks: 4, BufferElems: 64},                         // knob on mode-less workload
		{Workload: "bandwidth", Ranks: 4, Mode: "circuit", StreamBatch: 8},     // batch without streaming
		{Workload: "bandwidth", Ranks: 4, Mode: "streaming", BufferElems: -1},  // negative buffer
		{Workload: "bandwidth", Ranks: 4, Mode: "streaming", StreamBatch: 1e7}, // oversized batch
		{Workload: "incast", Ranks: 4, Transport: "homa"},                      // unknown transport
		{Workload: "incast", Ranks: 4, Arbiter: "lru"},                         // unknown arbiter
		{Workload: "summa", Ranks: 4, Transport: "receiver-driven"},            // transport-less workload
		{Workload: "incast", Ranks: 4, Transport: "receiver-driven", // pacing ops have no wire form
			Faults: &fault.Spec{DropProb: 0.01, Seed: 1}},
		{Workload: "bandwidth", Ranks: 4, Transport: "receiver-driven", Mode: "streaming"}, // bypasses pacing
	}
	for i, spec := range cases {
		if _, err := svc.Submit(spec); !IsKind(err, InvalidSpec) {
			t.Errorf("case %d (%+v): err = %v, want InvalidSpec", i, spec, err)
		}
	}
	if got := svc.Stats().Jobs; len(got) != 0 {
		t.Fatalf("rejected submissions leaked jobs: %v", got)
	}
}

func TestConcurrentIdenticalJobsShareRoutes(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	spec := JobSpec{Workload: "stencil", Ranks: 16}
	a, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stA, stB := mustDone(t, a), mustDone(t, b)
	cs := svc.Stats().RouteCache
	if cs.Misses != 1 || cs.Hits != 1 {
		t.Fatalf("route cache: %d misses, %d hits; want exactly 1 and 1", cs.Misses, cs.Hits)
	}
	if !stA.CacheHit && !stB.CacheHit {
		t.Fatal("neither job observed the cache hit")
	}
	if stA.Result.OutputDigest != stB.Result.OutputDigest {
		t.Fatalf("identical jobs diverged: %s vs %s", stA.Result.OutputDigest, stB.Result.OutputDigest)
	}
	if !reflect.DeepEqual(stA.Result.Stats, stB.Result.Stats) {
		t.Fatal("identical jobs produced different stats")
	}
}

// TestReplayDeterminism is the headline replay guarantee: a faulty run
// replayed from its stored spec reproduces cycles, stats, and output
// digest bit for bit, and the service's own verification agrees.
func TestReplayDeterminism(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	spec := JobSpec{
		Workload: "bcast", Ranks: 8, Size: 512,
		Faults: &fault.Spec{
			Seed:     42,
			DropProb: 0.01,
			Events:   []fault.Event{{Kind: fault.Drop, At: 100}},
		},
	}
	orig, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	origSt := mustDone(t, orig)
	if origSt.Result.Stats.FaultsInjected.Dropped == 0 && origSt.Result.Stats.Retransmits == 0 {
		t.Fatalf("fault spec had no observable effect: %+v", origSt.Result.Stats)
	}

	replay, err := svc.Replay(orig.ID())
	if err != nil {
		t.Fatal(err)
	}
	repSt := mustDone(t, replay)
	if repSt.ReplayOf != orig.ID() {
		t.Fatalf("replay_of = %q, want %q", repSt.ReplayOf, orig.ID())
	}
	if !reflect.DeepEqual(*origSt.Result, *repSt.Result) {
		t.Fatalf("replay diverged:\n orig: %+v\n replay: %+v", *origSt.Result, *repSt.Result)
	}
	if repSt.ReplayMatch == nil || !*repSt.ReplayMatch {
		t.Fatalf("service did not verify the replay as bit-identical: %+v", repSt.ReplayMatch)
	}
	events, _, _ := replay.EventsSince(0)
	verified := false
	for _, ev := range events {
		if ev.Kind == "replay-verified" {
			verified = true
		}
	}
	if !verified {
		t.Fatalf("no replay-verified event in %v", events)
	}
}

func TestReplayErrors(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	if _, err := svc.Replay("j9999"); !IsKind(err, NotFound) {
		t.Fatalf("replay of unknown job: %v, want NotFound", err)
	}
}

// TestOverloadAndShutdown drives admission control and the drain path:
// with one worker pinned on a long job and the depth-1 queue holding a
// second, a third submission must be rejected with Overloaded; shutdown
// then cancels the queued job, drains the running one, and rejects new
// work with ShuttingDown.
func TestOverloadAndShutdown(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1})
	long := JobSpec{Workload: "pingpong", Ranks: 4, Size: 20000}
	running, err := svc.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// Give the single worker a moment to take the first job off the
	// queue so the next submission occupies the only queue slot.
	waitRunning(t, running)
	queued, err := svc.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(long); !IsKind(err, Overloaded) {
		t.Fatalf("third submission: %v, want Overloaded", err)
	}
	if st := svc.Stats(); st.QueueDepth != 1 || st.QueueCapacity != 1 {
		t.Fatalf("queue stats = %d/%d, want 1/1", st.QueueDepth, st.QueueCapacity)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := waitTerminal(t, running); st.State != StateDone {
		t.Fatalf("running job after drain: %s (%s), want done", st.State, st.Error)
	}
	if st := queued.Status(); st.State != StateCanceled || st.ErrorKind != ShuttingDown.String() {
		t.Fatalf("queued job after drain: %+v, want canceled/shutting-down", st)
	}
	if _, err := svc.Submit(long); !IsKind(err, ShuttingDown) {
		t.Fatalf("submit after shutdown: %v, want ShuttingDown", err)
	}
	if _, err := svc.Replay(queued.ID()); !IsKind(err, Conflict) {
		t.Fatalf("replay of canceled job: %v, want Conflict", err)
	}
	// Idempotent.
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for j.State() == StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", j.ID())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobFailureIsIsolated(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	// A fault schedule that kills a bus link partitions the topology;
	// the run fails, the service does not.
	bad, err := svc.Submit(JobSpec{
		Workload: "bandwidth", Ranks: 2, Size: 4096,
		Topology: &topology.Spec{Kind: "bus", Devices: 2},
		Faults:   &fault.Spec{Events: []fault.Event{{Kind: fault.Kill, At: 10}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, bad); st.State != StateFailed {
		t.Fatalf("partitioned run ended %s, want failed", st.State)
	}
	good, err := svc.Submit(JobSpec{Workload: "bcast", Ranks: 4, Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	mustDone(t, good)
}
