package service

import (
	"sync"
	"time"

	"repro/internal/workload"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress record of a job, streamed by
// GET /v1/jobs/{id}/events as newline-delimited JSON.
type Event struct {
	Seq  int       `json:"seq"`
	Kind string    `json:"kind"` // queued, started, progress, completed, failed, canceled, replay-verified, replay-mismatch
	Time time.Time `json:"time"`
	// Cycle is the simulated cycle for progress events (0 otherwise).
	Cycle int64 `json:"cycle,omitempty"`
	// Msg carries error text and replay verdicts.
	Msg string `json:"msg,omitempty"`
}

// Job is one submitted simulation. All fields behind mu; reads go
// through Status and EventsSince.
type Job struct {
	id   string
	spec JobSpec

	mu          sync.Mutex
	state       State
	result      *workload.Result
	errMsg      string
	errKind     string
	cacheHit    bool
	replayOf    string
	replayMatch *bool
	submitted   time.Time
	started     time.Time
	finished    time.Time
	events      []Event
	changed     chan struct{} // closed and replaced on every mutation
}

func newJob(id string, spec JobSpec, replayOf string) *Job {
	j := &Job{
		id: id, spec: spec, state: StateQueued, replayOf: replayOf,
		submitted: time.Now(), changed: make(chan struct{}),
	}
	j.appendEventLocked("queued", 0, "")
	return j
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the stored submission document (the replay source).
func (j *Job) Spec() JobSpec { return j.spec }

// notifyLocked wakes every event-stream follower. Callers hold mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *Job) appendEventLocked(kind string, cycle int64, msg string) {
	j.events = append(j.events, Event{
		Seq: len(j.events), Kind: kind, Time: time.Now(), Cycle: cycle, Msg: msg,
	})
	j.notifyLocked()
}

func (j *Job) event(kind string, cycle int64, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(kind, cycle, msg)
}

// JobStatus is the JSON view of a job served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID       string  `json:"id"`
	State    State   `json:"state"`
	Spec     JobSpec `json:"spec"`
	CacheHit bool    `json:"route_cache_hit"`
	ReplayOf string  `json:"replay_of,omitempty"`
	// ReplayMatch, set on completed replay jobs, reports whether the
	// replay reproduced the original job's result bit for bit.
	ReplayMatch *bool            `json:"replay_match,omitempty"`
	Error       string           `json:"error,omitempty"`
	ErrorKind   string           `json:"error_kind,omitempty"`
	Result      *workload.Result `json:"result,omitempty"`
	Submitted   time.Time        `json:"submitted"`
	Started     *time.Time       `json:"started,omitempty"`
	Finished    *time.Time       `json:"finished,omitempty"`
	Events      int              `json:"events"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, Spec: j.spec, CacheHit: j.cacheHit,
		ReplayOf: j.replayOf, ReplayMatch: j.replayMatch,
		Error: j.errMsg, ErrorKind: j.errKind, Result: j.result,
		Submitted: j.submitted, Events: len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the run result (nil until done).
func (j *Job) Result() *workload.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// EventsSince returns the events at sequence >= seq, a channel that
// closes on the next mutation, and whether the job has reached a
// terminal state (so followers know no further events will come once
// they have drained the returned slice).
func (j *Job) EventsSince(seq int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	if seq < len(j.events) {
		out = append(out, j.events[seq:]...)
	}
	return out, j.changed, j.state.Terminal()
}

// start marks the job running.
func (j *Job) start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
	j.appendEventLocked("started", 0, "")
}

// finish records the outcome.
func (j *Job) finish(res *workload.Result, runErr error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if runErr != nil {
		j.state = StateFailed
		j.errMsg = runErr.Error()
		j.appendEventLocked("failed", 0, j.errMsg)
		return
	}
	j.state = StateDone
	j.result = res
	j.appendEventLocked("completed", res.Cycles, "")
}

// cancel marks a queued job canceled (shutdown drains the queue).
func (j *Job) cancel(reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = StateCanceled
	j.finished = time.Now()
	j.errMsg = reason
	j.errKind = ShuttingDown.String()
	j.appendEventLocked("canceled", 0, reason)
}
