// Package service implements smid, the long-running multi-tenant
// simulation service: a bounded pool of simulation workers fed by an
// admission-controlled queue, a warm cache of topology-keyed routing
// tables shared across jobs, streamed per-job progress events, and
// deterministic replay of any completed job from its stored spec.
//
// The design exploits the split the paper builds its whole workflow
// around (Fig 8): the communication topology and its routing tables are
// compiled artifacts independent of the per-run program, so a server
// can keep them warm and stream many programs through them. The
// simulator is deterministic end to end, which turns replay into a
// service-level guarantee: re-running a stored JobSpec reproduces
// cycle counts, outputs, and stats bit for bit — and the service checks
// that on every replay.
package service

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"

	"repro/internal/workload"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent simulation workers (default
	// GOMAXPROCS, capped at 8).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// rejected with an Overloaded error (default 64).
	QueueDepth int
	// CacheCapacity bounds the routing-table cache entries (default 32).
	CacheCapacity int
	// ProgressEvery is the simulated-cycle interval between streamed
	// progress events (default 250_000; negative disables).
	ProgressEvery int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 32
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 250_000
	}
	return c
}

// Service is a running smid instance.
type Service struct {
	cfg   Config
	cache *RouteCache

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listings
	nextID int
	closed bool

	queue chan *Job
	wg    sync.WaitGroup
}

// New starts a service with cfg.Workers simulation workers.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		cache: NewRouteCache(cfg.CacheCapacity),
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s
}

// Submit validates the spec and enqueues a job. It returns a typed
// error — InvalidSpec, Overloaded, or ShuttingDown — without side
// effects when admission fails, so overload never leaks job state.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	if _, err := spec.resolve(); err != nil {
		return nil, err
	}
	return s.enqueue(spec, "")
}

// Replay re-executes a completed job from its stored spec as a new job.
// Determinism makes the new run bit-identical to the original; the
// service verifies that when the replay finishes and records the
// verdict in the replay job's status.
func (s *Service) Replay(id string) (*Job, error) {
	s.mu.Lock()
	orig, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, errf(NotFound, "no job %q", id)
	}
	if orig.State() != StateDone {
		return nil, errf(Conflict, "job %s is %s; only completed jobs can be replayed", id, orig.State())
	}
	return s.enqueue(orig.Spec(), id)
}

// enqueue registers and queues a job under admission control.
func (s *Service) enqueue(spec JobSpec, replayOf string) (*Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errf(ShuttingDown, "server is draining; not accepting jobs")
	}
	s.nextID++
	job := newJob(fmt.Sprintf("j%04d", s.nextID), spec, replayOf)
	// Reserve the queue slot while holding the lock: the job becomes
	// visible only if admission succeeds, and a concurrent Shutdown
	// cannot close the queue between the check above and the send.
	select {
	case s.queue <- job:
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
		s.mu.Unlock()
		return job, nil
	default:
		s.nextID--
		s.mu.Unlock()
		return nil, errf(Overloaded, "admission queue full (%d jobs queued); retry later", s.cfg.QueueDepth)
	}
}

// runJob executes one job on a worker. A panicking run (a protocol
// violation inside a rank program, say) fails the job, never the
// server.
func (s *Service) runJob(job *Job) {
	if job.State() == StateCanceled {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			job.finish(nil, fmt.Errorf("job panicked: %v", r))
		}
	}()
	job.start()

	spec := job.Spec()
	r, err := spec.resolve()
	if err != nil {
		job.finish(nil, err)
		return
	}

	params := workload.Params{
		Ranks: spec.Ranks, Size: spec.Size, Steps: spec.Steps,
		Verify:        spec.Verify,
		Topology:      r.topo,
		RoutingPolicy: r.policy,
		Scheduler:     r.sched,
		Shards:        r.shards,
		Faults:        r.faults,
		MaxCycles:     spec.MaxCycles,
		Mode:          spec.Mode,
		BufferElems:   spec.BufferElems,
		StreamBatch:   spec.StreamBatch,
		Transport:     spec.Transport,
		Arbiter:       spec.Arbiter,
	}
	if r.workload.SupportsRoutes && r.topo != nil {
		routes, hit, err := s.cache.Get(r.topo, r.policy)
		if err != nil {
			job.finish(nil, err)
			return
		}
		params.Routes = routes
		job.mu.Lock()
		job.cacheHit = hit
		job.mu.Unlock()
	}
	if s.cfg.ProgressEvery > 0 {
		params.Progress = func(cycle int64) { job.event("progress", cycle, "") }
		params.ProgressEvery = s.cfg.ProgressEvery
	}

	res, err := workload.Run(spec.Workload, params)
	if err != nil {
		job.finish(nil, err)
		return
	}
	job.finish(&res, nil)

	if job.replayOf != "" {
		s.verifyReplay(job)
	}
}

// verifyReplay compares a finished replay against its original job and
// records the bit-identity verdict.
func (s *Service) verifyReplay(job *Job) {
	s.mu.Lock()
	orig := s.jobs[job.replayOf]
	s.mu.Unlock()
	if orig == nil {
		return
	}
	origRes, replayRes := orig.Result(), job.Result()
	match := origRes != nil && replayRes != nil && reflect.DeepEqual(*origRes, *replayRes)
	job.mu.Lock()
	job.replayMatch = &match
	if match {
		job.appendEventLocked("replay-verified", replayRes.Cycles, "bit-identical to "+job.replayOf)
	} else {
		job.appendEventLocked("replay-mismatch", 0, "replay diverged from "+job.replayOf)
	}
	job.mu.Unlock()
}

// Job returns a job by ID.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, errf(NotFound, "no job %q", id)
	}
	return j, nil
}

// Jobs lists all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Stats is the service-level counter document served by GET /v1/stats.
type Stats struct {
	Jobs          map[State]int `json:"jobs"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Workers       int           `json:"workers"`
	RouteCache    CacheStats    `json:"route_cache"`
	Draining      bool          `json:"draining"`
	// Sched aggregates scheduler effort over every completed job; the
	// per-job breakdown (including Sched.PerShard rows) lives in each
	// job's status document under result.stats.sched.
	Sched SchedTotals `json:"sched"`
}

// SchedTotals sums the sharded-scheduler effort counters across
// completed jobs: how many ran sharded, and the barrier/window/steal
// work their groups performed.
type SchedTotals struct {
	ShardedJobs int   `json:"sharded_jobs"`
	Syncs       int64 `json:"syncs"`
	Windows     int64 `json:"windows"`
	Steals      int64 `json:"steals"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Jobs:          make(map[State]int),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		Draining:      s.closed,
	}
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		st.Jobs[j.State()]++
		if res := j.Result(); res != nil {
			sc := res.Stats.Sched
			if sc.Shards > 1 {
				st.Sched.ShardedJobs++
			}
			st.Sched.Syncs += sc.Syncs
			st.Sched.Windows += sc.Windows
			st.Sched.Steals += sc.Steals
		}
	}
	st.RouteCache = s.cache.Stats()
	return st
}

// Shutdown drains the service: no new submissions are accepted, queued
// jobs are canceled with a typed error, and running jobs are allowed to
// finish. It returns when every worker has exited or ctx expires.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	// Drain the queue: anything still waiting is canceled. Workers may
	// race us for entries; whoever gets an entry owns it (a worker skips
	// canceled jobs).
	for {
		select {
		case job := <-s.queue:
			job.cancel("server shutting down before the job started")
			continue
		default:
		}
		break
	}
	// No submitter can be mid-send: enqueue checks closed and sends
	// under the same lock acquisition we flipped it in.
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown interrupted with jobs still running: %w", ctx.Err())
	}
}
