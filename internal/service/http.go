package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/workload"
)

// Handler returns the smid HTTP API:
//
//	GET  /healthz              liveness probe
//	GET  /v1/workloads         registered workloads
//	GET  /v1/stats             service + route-cache counters
//	POST /v1/jobs              submit a JobSpec -> 202 + JobStatus
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         job status, spec, result
//	GET  /v1/jobs/{id}/events  NDJSON event stream (follows until the
//	                           job is terminal; ?follow=0 dumps and
//	                           returns)
//	POST /v1/jobs/{id}/replay  re-run a completed job -> 202 + JobStatus
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, availableWorkloads())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, errf(InvalidSpec, "bad JSON: %v", err))
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Status())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]JobStatus, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, j.Status())
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		s.streamEvents(w, r, job)
	})
	mux.HandleFunc("POST /v1/jobs/{id}/replay", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Replay(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Status())
	})
	return mux
}

// streamEvents writes the job's event log as NDJSON and, unless
// ?follow=0, keeps following new events until the job reaches a
// terminal state or the client goes away.
func (s *Service) streamEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	follow := true
	if v := r.URL.Query().Get("follow"); v != "" {
		follow, _ = strconv.ParseBool(v)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	seq := 0
	for {
		events, changed, terminal := job.EventsSince(seq)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
			seq = ev.Seq + 1
		}
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal || !follow {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// WorkloadInfo is the catalog entry served by GET /v1/workloads.
type WorkloadInfo struct {
	Name           string `json:"name"`
	Description    string `json:"description"`
	MinRanks       int    `json:"min_ranks"`
	DefaultSize    int    `json:"default_size"`
	DefaultSteps   int    `json:"default_steps,omitempty"`
	SupportsFaults bool   `json:"supports_faults"`
	SupportsRoutes bool   `json:"supports_routes"`
}

func availableWorkloads() []WorkloadInfo {
	all := workload.All()
	out := make([]WorkloadInfo, 0, len(all))
	for _, w := range all {
		out = append(out, WorkloadInfo{
			Name: w.Name, Description: w.Description, MinRanks: w.MinRanks,
			DefaultSize: w.DefaultSize, DefaultSteps: w.DefaultSteps,
			SupportsFaults: w.SupportsFaults, SupportsRoutes: w.SupportsRoutes,
		})
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps typed service errors onto transport status codes and
// a machine-readable body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	kind := "internal"
	var se *Error
	if errors.As(err, &se) {
		status = se.HTTPStatus()
		kind = se.Kind.String()
	}
	writeJSON(w, status, map[string]string{"error": err.Error(), "kind": kind})
}
