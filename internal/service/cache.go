package service

import (
	"sync"

	"repro/internal/routing"
	"repro/internal/topology"
)

// RouteCache keeps computed (and, under up*/down*, deadlock-free-
// verified) routing tables warm across jobs, keyed by the exact wiring
// plus policy (routing.Key — a canonical description, so distinct
// topologies can never collide). Entries are immutable masters: they
// are handed to clusters through smi.Config.Routes, which clones them,
// so failover re-routing inside one job can never corrupt the cache.
//
// This is the split the paper's workflow makes explicit (Fig 8): route
// generation is a host-side artifact independent of the program, so a
// long-running server computes it once per topology and streams many
// jobs through it.
type RouteCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*routing.Routes
	order    []string // LRU order, most recently used last
	hits     uint64
	misses   uint64
}

// CacheStats is the observable cache behavior, served under /v1/stats.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// NewRouteCache returns a cache bounded to capacity entries (minimum 1).
func NewRouteCache(capacity int) *RouteCache {
	if capacity < 1 {
		capacity = 1
	}
	return &RouteCache{capacity: capacity, entries: make(map[string]*routing.Routes)}
}

// Get returns the routing tables for the topology under the policy,
// computing (and verifying, for up*/down*) them on first use. The
// second return reports whether the tables came from the cache. The
// returned Routes are a shared master — callers must not mutate them
// (smi.NewCluster clones its Config.Routes).
func (c *RouteCache) Get(t *topology.Topology, p routing.Policy) (*routing.Routes, bool, error) {
	key := routing.Key(t, p)
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.entries[key]; ok {
		c.hits++
		c.touch(key)
		return r, true, nil
	}
	// Compute under the lock: concurrent identical-topology jobs then
	// pay for one computation, not one each, and the second job is a
	// cache hit by construction.
	r, err := routing.Compute(t, p)
	if err != nil {
		return nil, false, err
	}
	if p == routing.UpDown {
		// Verify once here; every cache hit reuses the verified tables.
		if err := routing.VerifyDeadlockFree(r); err != nil {
			return nil, false, err
		}
	}
	c.misses++
	if len(c.order) >= c.capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = r
	c.order = append(c.order, key)
	return r, false, nil
}

// touch moves key to the most-recently-used position.
func (c *RouteCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

// Stats returns the hit/miss counters and current size.
func (c *RouteCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}
