package service

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// JobSpec is the JSON document a client submits to run one simulation
// job. It is the complete, self-contained description of the run: the
// stored spec alone is enough to re-execute the job bit-identically,
// which is what the replay endpoint does.
type JobSpec struct {
	// Workload names a registered workload (GET /v1/workloads lists
	// them).
	Workload string `json:"workload"`
	// Ranks is the number of participating devices.
	Ranks int `json:"ranks"`
	// Size and Steps are the workload's problem-size knobs (0 picks the
	// workload default).
	Size  int `json:"size,omitempty"`
	Steps int `json:"steps,omitempty"`
	// Verify enables output verification where supported.
	Verify bool `json:"verify,omitempty"`
	// Seed overrides the fault spec's seed when nonzero, so one stored
	// fault schedule can be replayed under different noise streams.
	Seed int64 `json:"seed,omitempty"`
	// Topology describes the wiring declaratively; nil picks the
	// workload's default wiring for Ranks devices.
	Topology *topology.Spec `json:"topology,omitempty"`
	// RoutingPolicy is "shortest-path" (default) or "updown".
	RoutingPolicy string `json:"routing_policy,omitempty"`
	// Scheduler is "event" (default), "dense", "shard" (conservative
	// parallel simulation, one engine per shard of ranks), or
	// "shard-adaptive" (one engine per rank multiplexed onto Shards
	// worker slots with per-boundary lookahead and deterministic work
	// stealing).
	Scheduler string `json:"scheduler,omitempty"`
	// Shards is the parallelism for the sharded schedulers: required to
	// be in [1, ranks] when Scheduler is "shard" or "shard-adaptive"
	// (engine count for "shard", worker-slot count for
	// "shard-adaptive"), and must be left zero otherwise. Fault-injected
	// jobs shard like any other: the reliable links split into
	// per-engine transmit/receive halves.
	Shards int `json:"shards,omitempty"`
	// Faults attaches a deterministic fault-injection schedule.
	Faults *fault.Spec `json:"faults,omitempty"`
	// MaxCycles bounds the simulation (0 = workload default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// Mode selects the point-to-point transfer machinery for workloads
	// that support it (bandwidth): "packet" (default), "credited",
	// "circuit", or "streaming" (rendezvous + cut-through fragments).
	Mode string `json:"mode,omitempty"`
	// BufferElems sizes the endpoint buffer in elements (0 = workload
	// default); with mode "streaming" it is also the eager/rendezvous
	// switchover threshold.
	BufferElems int `json:"buffer_elems,omitempty"`
	// StreamBatch is the streaming fragment length in 32-byte wire
	// words (mode "streaming" only; 0 = port default).
	StreamBatch int `json:"stream_batch,omitempty"`
	// Transport selects the flow-control transport for workloads that
	// support it: "sender-driven" (default) or "receiver-driven"
	// (Homa-style grant pacing; composes with mode "packet" or
	// "credited" only, and not with faults — its pacing ops have no
	// wire encoding to protect).
	Transport string `json:"transport,omitempty"`
	// Arbiter selects the CK input arbiter: "round-robin" (default) or
	// "skip-idle".
	Arbiter string `json:"arbiter,omitempty"`
}

// parsePolicy maps the wire name to a routing policy.
func parsePolicy(s string) (routing.Policy, error) {
	switch s {
	case "", "shortest", "shortest-path":
		return routing.ShortestPath, nil
	case "updown", "up-down", "up*/down*":
		return routing.UpDown, nil
	default:
		return 0, fmt.Errorf("unknown routing policy %q (have shortest-path, updown)", s)
	}
}

// parseScheduler maps the wire name to a scheduler kind.
func parseScheduler(s string) (sim.SchedulerKind, error) {
	switch s {
	case "", "event":
		return sim.SchedEvent, nil
	case "dense":
		return sim.SchedDense, nil
	case "shard":
		return sim.SchedShard, nil
	case "shard-adaptive":
		return sim.SchedShardAdaptive, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (have event, dense, shard, shard-adaptive)", s)
	}
}

// resolved is a JobSpec with every declarative field constructed: the
// worker's run plan. Resolution is deterministic, so resolving the same
// spec twice (submit and replay) yields identical plans.
type resolved struct {
	workload workload.Workload
	topo     *topology.Topology
	policy   routing.Policy
	sched    sim.SchedulerKind
	shards   int
	faults   *fault.Spec
}

// resolve validates the spec and constructs the run plan. Every failure
// is an InvalidSpec service error: a malformed submission fails the
// request, it never reaches (or kills) a worker.
func (s *JobSpec) resolve() (resolved, error) {
	var r resolved
	w, err := workload.Get(s.Workload)
	if err != nil {
		return r, errf(InvalidSpec, "%v", err)
	}
	r.workload = w
	if s.Ranks < w.MinRanks {
		return r, errf(InvalidSpec, "workload %s needs at least %d ranks, got %d", w.Name, w.MinRanks, s.Ranks)
	}
	if s.Size < 0 || s.Steps < 0 || s.MaxCycles < 0 {
		return r, errf(InvalidSpec, "negative size, steps, or max_cycles")
	}
	if err := workload.ValidateModeKnobs(w, workload.Params{
		Mode: s.Mode, BufferElems: s.BufferElems, StreamBatch: s.StreamBatch,
	}); err != nil {
		return r, errf(InvalidSpec, "%v", err)
	}
	if err := workload.ValidateTransportKnobs(w, workload.Params{
		Transport: s.Transport, Arbiter: s.Arbiter,
	}); err != nil {
		return r, errf(InvalidSpec, "%v", err)
	}
	if kind, _ := transport.Parse(s.Transport); kind == transport.ReceiverDrivenKind {
		// Reject at admission what the cluster would reject at build
		// time, so the combination fails the request, not the worker.
		if s.Faults != nil && !s.Faults.Zero() {
			return r, errf(InvalidSpec, "the receiver-driven transport does not compose with fault injection (its pacing ops have no wire encoding)")
		}
		if s.Mode == "circuit" || s.Mode == "streaming" {
			return r, errf(InvalidSpec, "the receiver-driven transport does not compose with mode %q (circuit and streaming bypass pacing)", s.Mode)
		}
	}
	if r.policy, err = parsePolicy(s.RoutingPolicy); err != nil {
		return r, errf(InvalidSpec, "%v", err)
	}
	if r.sched, err = parseScheduler(s.Scheduler); err != nil {
		return r, errf(InvalidSpec, "%v", err)
	}
	if r.sched == sim.SchedShard || r.sched == sim.SchedShardAdaptive {
		switch {
		case s.Shards <= 0:
			return r, errf(InvalidSpec, "scheduler %q needs a positive shard count, got %d", s.Scheduler, s.Shards)
		case s.Shards > s.Ranks:
			return r, errf(InvalidSpec, "%d shards exceed the job's %d ranks", s.Shards, s.Ranks)
		}
		r.shards = s.Shards
	} else if s.Shards != 0 {
		return r, errf(InvalidSpec, "shards is only valid with scheduler \"shard\" or \"shard-adaptive\", got shards=%d with scheduler %q", s.Shards, s.Scheduler)
	}
	if s.Topology != nil {
		if r.topo, err = s.Topology.Build(); err != nil {
			return r, errf(InvalidSpec, "%v", err)
		}
		if r.topo.Devices < s.Ranks {
			return r, errf(InvalidSpec, "topology has %d devices, job needs %d ranks", r.topo.Devices, s.Ranks)
		}
		if !r.topo.Connected() {
			return r, errf(InvalidSpec, "topology is not connected")
		}
	} else if s.Ranks >= 2 {
		if r.topo, err = workload.DefaultTopology(s.Ranks); err != nil {
			return r, errf(InvalidSpec, "%v", err)
		}
	}
	if s.Faults != nil {
		if !r.workload.SupportsFaults && !s.Faults.Zero() {
			return r, errf(InvalidSpec, "workload %s does not support fault injection", w.Name)
		}
		if err := s.Faults.Validate(); err != nil {
			return r, errf(InvalidSpec, "%v", err)
		}
		// Copy before overriding the seed: the stored spec must stay
		// exactly what the client submitted.
		f := *s.Faults
		if s.Seed != 0 {
			f.Seed = s.Seed
		}
		f.Events = append([]fault.Event(nil), s.Faults.Events...)
		r.faults = &f
	}
	return r, nil
}
