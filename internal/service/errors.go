package service

import (
	"errors"
	"fmt"
	"net/http"
)

// ErrorKind classifies service errors so callers (and the HTTP layer)
// can react without string matching — the service-level mirror of the
// smi.ChannelError surface.
type ErrorKind uint8

const (
	// InvalidSpec rejects a malformed or unsatisfiable JobSpec.
	InvalidSpec ErrorKind = iota
	// Overloaded rejects a submission because the admission queue is
	// full — the typed 429 backpressure signal; the server never buffers
	// unboundedly.
	Overloaded
	// NotFound reports an unknown job ID.
	NotFound
	// ShuttingDown rejects work arriving after shutdown began.
	ShuttingDown
	// Conflict rejects an operation illegal in the job's current state
	// (e.g. replaying a job that has not completed).
	Conflict
)

func (k ErrorKind) String() string {
	switch k {
	case InvalidSpec:
		return "invalid-spec"
	case Overloaded:
		return "overloaded"
	case NotFound:
		return "not-found"
	case ShuttingDown:
		return "shutting-down"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("ErrorKind(%d)", uint8(k))
	}
}

// Error is a typed service error.
type Error struct {
	Kind ErrorKind
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("service: %s: %s", e.Kind, e.Msg) }

// HTTPStatus maps the error kind to its transport status code.
func (e *Error) HTTPStatus() int {
	switch e.Kind {
	case InvalidSpec:
		return http.StatusBadRequest
	case Overloaded:
		return http.StatusTooManyRequests
	case NotFound:
		return http.StatusNotFound
	case ShuttingDown:
		return http.StatusServiceUnavailable
	case Conflict:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func errf(kind ErrorKind, format string, args ...any) *Error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// IsKind reports whether err is a service error of the given kind.
func IsKind(err error, kind ErrorKind) bool {
	var se *Error
	return errors.As(err, &se) && se.Kind == kind
}
