package service

import (
	"sync"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func mustTorus(t *testing.T, rows, cols int) *topology.Topology {
	t.Helper()
	topo, err := topology.Torus2D(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestCacheHitReturnsIdenticalRoutes(t *testing.T) {
	c := NewRouteCache(4)
	topo := mustTorus(t, 4, 4)

	first, hit, err := c.Get(topo, routing.ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Get reported a cache hit")
	}
	// An identically-specified topology (fresh object, same wiring) must
	// hit and return bit-identical tables.
	again, hit, err := c.Get(mustTorus(t, 4, 4), routing.ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("identical topology missed the cache")
	}
	if again != first {
		t.Fatal("cache hit returned a different Routes object than it stored")
	}
	fresh, err := routing.Compute(topo, routing.ShortestPath)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(fresh) {
		t.Fatal("cached routes differ from freshly computed routes")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestCacheDistinctTopologiesNeverCollide(t *testing.T) {
	c := NewRouteCache(16)
	shapes := []*topology.Topology{}
	build := func(topo *topology.Topology, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		shapes = append(shapes, topo)
	}
	build(topology.Torus2D(2, 4))
	build(topology.Torus2D(4, 2)) // same device count, different wiring
	build(topology.Ring(8))
	build(topology.Bus(8))
	build(topology.Star(8))
	build(topology.Hypercube(3))

	keys := map[string]bool{}
	for _, topo := range shapes {
		key := routing.Key(topo, routing.ShortestPath)
		if keys[key] {
			t.Fatalf("key collision: %q", key)
		}
		keys[key] = true
		if _, hit, err := c.Get(topo, routing.ShortestPath); err != nil {
			t.Fatal(err)
		} else if hit {
			t.Fatalf("distinct topology reported a cache hit (key %q)", key)
		}
	}
	// Same wiring under a different policy is a different entry too.
	if keys[routing.Key(shapes[0], routing.UpDown)] {
		t.Fatal("policy not part of the cache key")
	}
	if st := c.Stats(); st.Entries != len(shapes) {
		t.Fatalf("entries = %d, want %d", st.Entries, len(shapes))
	}
}

func TestCacheUpDownRoutesStayDeadlockFree(t *testing.T) {
	c := NewRouteCache(4)
	topo := mustTorus(t, 4, 4)
	r, _, err := c.Get(topo, routing.UpDown)
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.VerifyDeadlockFree(r); err != nil {
		t.Fatalf("cached up*/down* routes: %v", err)
	}
	cached, hit, err := c.Get(topo, routing.UpDown)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second up*/down* lookup missed")
	}
	if err := routing.VerifyDeadlockFree(cached); err != nil {
		t.Fatalf("cache-hit up*/down* routes: %v", err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewRouteCache(2)
	a, b, d := mustTorus(t, 2, 2), mustTorus(t, 2, 3), mustTorus(t, 2, 4)
	c.Get(a, routing.ShortestPath)
	c.Get(b, routing.ShortestPath)
	c.Get(a, routing.ShortestPath) // touch a: b becomes LRU
	c.Get(d, routing.ShortestPath) // evicts b
	if _, hit, _ := c.Get(a, routing.ShortestPath); !hit {
		t.Fatal("recently used entry was evicted")
	}
	if _, hit, _ := c.Get(b, routing.ShortestPath); hit {
		t.Fatal("LRU entry survived past capacity")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want capacity 2", st.Entries)
	}
}

func TestCacheConcurrentIdenticalLookups(t *testing.T) {
	c := NewRouteCache(4)
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			topo, err := topology.Torus2D(4, 4)
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := c.Get(topo, routing.ShortestPath); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("concurrent identical lookups: %d misses, %d hits; want 1 miss, %d hits", st.Misses, st.Hits, n-1)
	}
}
