package bench

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestFaultsBenchHonorsShards is the regression test for the smibench
// -shards fallback: reliable workloads used to accept a shard count and
// silently run on one engine. The experiment now threads the count into
// the fault scenarios and fails hard when the simulator reports fewer
// shards than requested, so a reappearing fallback breaks this test
// instead of quietly producing serial measurements.
func TestFaultsBenchHonorsShards(t *testing.T) {
	e, err := ByID("ablate-faults")
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(Options{Quick: true, Shards: 4})
	if err != nil {
		t.Fatalf("ablate-faults with -shards 4: %v", err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("sharded ablate-faults produced no rows")
	}
}

// TestScalingRowsRecordHost checks the provenance fields of the
// BENCH_scaling.json document: every row must say what parallel
// hardware produced it, and the sharded schedulers must cover the
// GOMAXPROCS axis.
func TestScalingRowsRecordHost(t *testing.T) {
	r := runQuick(t, "scaling")
	var doc scalingJSON
	if err := json.Unmarshal(r.JSON, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.HostCPUs < 1 {
		t.Fatalf("document host_cpus = %d", doc.HostCPUs)
	}
	gmps := map[string]map[int]bool{}
	for _, row := range doc.Rows {
		if row.HostCPUs < 1 || row.GoMaxProcs < 1 {
			t.Fatalf("row %s/%s missing host provenance: host_cpus=%d gomaxprocs=%d",
				row.Workload, row.Scheduler, row.HostCPUs, row.GoMaxProcs)
		}
		if gmps[row.Scheduler] == nil {
			gmps[row.Scheduler] = map[int]bool{}
		}
		gmps[row.Scheduler][row.GoMaxProcs] = true
		if row.Scheduler == sim.SchedShardAdaptive.String() && row.Windows == 0 {
			t.Errorf("adaptive row %s/%d opened no lookahead windows", row.Workload, row.Ranks)
		}
	}
	for _, kind := range []string{sim.SchedShard.String(), sim.SchedShardAdaptive.String()} {
		for _, gmp := range scalingGoMaxProcs {
			if !gmps[kind][gmp] {
				t.Errorf("no %s row measured at GOMAXPROCS=%d (have %v)", kind, gmp, gmps[kind])
			}
		}
	}
}

// TestTransportIncastGuard is the transport ablation's CI gate: with
// SMI_BENCH_GUARD=1 it re-measures the 8:1 incast under both transports
// and fails if the receiver-driven tail win disappears or the measured
// tails drift from the committed BENCH_transport.json (the runs are
// simulated cycles, so they must reproduce exactly, not within a
// tolerance).
func TestTransportIncastGuard(t *testing.T) {
	if os.Getenv("SMI_BENCH_GUARD") != "1" {
		t.Skip("set SMI_BENCH_GUARD=1 to run the benchmark regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_transport.json")
	if err != nil {
		t.Fatalf("no committed baseline: %v", err)
	}
	var doc transportJSON
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed BENCH_transport.json: %v", err)
	}
	for n, sp := range doc.TailSpeedup {
		senders, err := strconv.Atoi(n)
		if err != nil {
			t.Fatalf("committed tail speedup key %q not a sender count", n)
		}
		if senders >= 8 && sp <= 1 {
			t.Errorf("committed tail speedup at %s:1 = %f, want > 1", n, sp)
		}
	}
	// Cycle counts are deterministic: re-running the committed 8:1 rows
	// with their recorded parameters must reproduce them exactly, and
	// the tail win must still be there.
	tails := map[string]int64{}
	checked := 0
	for _, base := range doc.Rows {
		if base.Workload != "incast" || base.Senders != 8 {
			continue
		}
		topo, err := topology.Bus(9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := workload.Run("incast", workload.Params{
			Ranks: 9, Size: base.Elems, Topology: topo, Transport: base.Transport,
		})
		if err != nil {
			t.Fatalf("8:1 incast under %s: %v", base.Transport, err)
		}
		tail := int64(res.Metrics["tail_cycles"])
		if res.Cycles != base.Cycles || tail != base.TailCycles {
			t.Errorf("%s 8:1 incast drifted: committed (cycles %d, tail %d), measured (%d, %d)",
				base.Transport, base.Cycles, base.TailCycles, res.Cycles, tail)
		}
		tails[base.Transport] = tail
		checked++
	}
	if checked != 2 {
		t.Fatalf("committed BENCH_transport.json has %d 8:1 incast rows, want both transports", checked)
	}
	if tails["receiver-driven"] >= tails["sender-driven"] {
		t.Errorf("re-measured receiver-driven tail %d not below sender-driven %d",
			tails["receiver-driven"], tails["sender-driven"])
	}
}

// TestScalingRegressionGuard is the CI benchmark gate: with
// SMI_BENCH_GUARD=1 it re-measures the 64-rank points and fails if
// ns_per_simulated_cycle regressed more than 20% against the committed
// BENCH_scaling.json. Each point gets two attempts and keeps the
// faster, so a single scheduling hiccup on a shared runner does not
// fail the build.
func TestScalingRegressionGuard(t *testing.T) {
	if os.Getenv("SMI_BENCH_GUARD") != "1" {
		t.Skip("set SMI_BENCH_GUARD=1 to run the benchmark regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_scaling.json")
	if err != nil {
		t.Fatalf("no committed baseline: %v", err)
	}
	var doc scalingJSON
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed BENCH_scaling.json: %v", err)
	}
	kinds := map[string]sim.SchedulerKind{
		sim.SchedEvent.String():         sim.SchedEvent,
		sim.SchedShard.String():         sim.SchedShard,
		sim.SchedShardAdaptive.String(): sim.SchedShardAdaptive,
	}
	checked := 0
	for _, base := range doc.Rows {
		kind, ok := kinds[base.Scheduler]
		if !ok || base.Ranks != 64 || base.NsPerCycle <= 0 {
			continue
		}
		best := 0.0
		for attempt := 0; attempt < 2; attempt++ {
			row, err := scalingRun(base.Workload, 64, kind, base.Shards, base.GoMaxProcs)
			if err != nil {
				t.Fatalf("%s/%s: %v", base.Workload, base.Scheduler, err)
			}
			if best == 0 || row.NsPerCycle < best {
				best = row.NsPerCycle
			}
		}
		checked++
		if best > 1.2*base.NsPerCycle {
			t.Errorf("%s/%s@64 ranks (gomaxprocs %d): %.1f ns/cycle, committed baseline %.1f — regressed more than 20%%",
				base.Workload, base.Scheduler, base.GoMaxProcs, best, base.NsPerCycle)
		} else {
			t.Logf("%s/%s@64 ranks: %.1f ns/cycle vs baseline %.1f", base.Workload, base.Scheduler, best, base.NsPerCycle)
		}
	}
	if checked == 0 {
		t.Fatal("committed BENCH_scaling.json has no 64-rank rows to guard")
	}
}
