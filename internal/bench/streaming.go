package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/topology"
)

func init() {
	register("streaming", "Large-message ablation: packet vs circuit vs streaming across message sizes", runStreaming)
}

// streamingModes are the transfer machineries the ablation compares on
// the same multi-hop path with the same (small) endpoint buffer. The
// "packet" row is the credit-based packet path — what §3.3 prescribes
// when the buffer is smaller than the message; "packet-eager" shows the
// same packet format with backpressure-only flow control, which is fast
// but lets large transfers squat in the shared transport.
var streamingModes = []struct {
	name string
	mode apps.TransferMode
}{
	{"packet", apps.ModeCredited},
	{"packet-eager", apps.ModePacket},
	{"circuit", apps.ModeCircuit},
	{"streaming", apps.ModeStreaming},
}

type streamingRow struct {
	Mode            string  `json:"mode"`
	Bytes           int64   `json:"bytes"`
	Elems           int     `json:"elems"`
	HostCPUs        int     `json:"host_cpus"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	Cycles          int64   `json:"cycles"`
	Gbps            float64 `json:"gbps"`
	WallMs          float64 `json:"wall_ms"`
	SpeedupVsPacket float64 `json:"speedup_vs_packet"`
	StreamFragments uint64  `json:"stream_fragments,omitempty"`
}

// runStreaming sweeps message sizes over a 4-device bus (rank 0 to rank
// 3: three hops, two intermediate cut-through kernels) with a
// 64-element endpoint buffer, so every size beyond 256 B dwarfs the
// buffer — the large-message regime the streaming path exists for.
func runStreaming(o Options) (*Report, error) {
	sizes := []int{256, 1024, 8192, 65536} // ints: 1 KiB .. 256 KiB
	if o.Quick {
		sizes = []int{256, 1024, 8192}
	}
	const bufferElems = 64

	r := &Report{
		ID:     "streaming",
		Title:  "Large-message transfer ablation (bus of 4, rank 0 -> rank 3, 64-element buffer)",
		Header: []string{"mode", "size", "cycles", "Gbit/s", "wall ms", "speedup"},
	}

	doc := struct {
		Topology    string         `json:"topology"`
		Hops        int            `json:"hops"`
		BufferElems int            `json:"buffer_elems"`
		Rows        []streamingRow `json:"rows"`
		Notes       []string       `json:"notes"`
	}{Topology: "bus(4)", BufferElems: bufferElems}

	for _, elems := range sizes {
		packetCycles := int64(0)
		for _, m := range streamingModes {
			topo, err := topology.Bus(4)
			if err != nil {
				return nil, err
			}
			cfg := apps.NetConfig{
				Topology:    topo,
				VecWidth:    8,
				BufferElems: bufferElems,
				Mode:        m.mode,
			}
			start := time.Now()
			res, err := apps.Bandwidth(cfg, 0, 3, elems)
			if err != nil {
				return nil, fmt.Errorf("streaming: %s/%d: %w", m.name, elems, err)
			}
			wall := time.Since(start)
			if m.name == "packet" {
				packetCycles = res.Cycles
			}
			speedup := float64(packetCycles) / float64(res.Cycles)
			row := streamingRow{
				Mode:            m.name,
				Bytes:           res.Bytes,
				Elems:           elems,
				HostCPUs:        runtime.NumCPU(),
				GoMaxProcs:      runtime.GOMAXPROCS(0),
				Cycles:          res.Cycles,
				Gbps:            res.Gbps,
				WallMs:          float64(wall.Microseconds()) / 1e3,
				SpeedupVsPacket: speedup,
				StreamFragments: res.Net.StreamFragments,
			}
			doc.Rows = append(doc.Rows, row)
			doc.Hops = res.Hops
			r.Rows = append(r.Rows, []string{
				m.name, human(res.Bytes), fmt.Sprint(res.Cycles),
				f2(res.Gbps), f3(row.WallMs), f2(speedup) + "x",
			})
			if m.name == "streaming" {
				r.metric(fmt.Sprintf("streaming_speedup_%s", human(res.Bytes)), speedup)
			}
		}
	}

	doc.Notes = []string{
		"packet = credit-based flow control, the paper's §3.3 prescription when the endpoint buffer is smaller than the message: every buffer's worth of data costs a grant round-trip across the full path.",
		"packet-eager = the default eager packet path (backpressure-only): fast, but a large message occupies the shared transport for its whole duration.",
		"streaming = rendezvous handshake, then OpStream fragment trains of full 32-byte raw words cut through intermediate kernels; the rendezvous round-trip is why small messages lose and the eager/rendezvous switchover exists.",
		"speedup is cycles(packet)/cycles(mode) at the same size; the >=2x acceptance gate for >=4 KiB messages is measured against the packet (credited) row.",
	}
	r.Notes = append(r.Notes,
		"packet = credited (§3.3's prescription for messages larger than the buffer); packet-eager shown for honesty — it wins on raw cycles but squats in the shared transport (see TestStreamingFairerThanCircuit).",
		"streaming pays one rendezvous round-trip up front, so its advantage grows with message size.",
	)

	js, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.JSON = append(js, '\n')
	return r, nil
}
