package bench

import (
	"fmt"
	"runtime"
	"strings"

	"encoding/json"

	"repro/internal/fault"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

func init() {
	register("ablate-transport", "Ablation: sender-driven vs receiver-driven (Homa-style) transport under incast", ablateTransport)
}

// TransportRow is one (workload, senders, transport) measurement of the
// transport ablation.
type TransportRow struct {
	Workload  string `json:"workload"`
	Senders   int    `json:"senders,omitempty"`
	Transport string `json:"transport"`
	Mode      string `json:"mode"`
	// Elems is the problem size in elements (per flow for incast) — the
	// regression guard re-runs rows with exactly these parameters.
	Elems  int   `json:"elems"`
	Cycles int64 `json:"cycles"`
	// TailCycles/MeanCycles are the incast per-flow completion spread —
	// the numbers receiver-driven pacing exists to cut.
	TailCycles int64   `json:"tail_cycles,omitempty"`
	MeanCycles float64 `json:"mean_cycles,omitempty"`
	Grants     uint64  `json:"grants"`
	Delivered  uint64  `json:"packets_delivered"`
	// HostCPUs and GoMaxProcs record the machine behind the measurement,
	// as in BENCH_scaling.json. The numbers here are simulated cycles
	// (host-independent), so these fields are provenance, not a caveat.
	HostCPUs   int `json:"host_cpus"`
	GoMaxProcs int `json:"gomaxprocs"`
}

// transportJSON is the BENCH_transport.json document.
type transportJSON struct {
	Description string         `json:"description"`
	HostCPUs    int            `json:"host_cpus"`
	Rows        []TransportRow `json:"rows"`
	// TailSpeedup maps the sender count to sender-driven-credited tail
	// cycles / receiver-driven tail cycles on the N:1 incast — the
	// ablation's headline. Must exceed 1 at every measured N >= 8.
	TailSpeedup map[string]float64 `json:"incast_tail_speedup"`
	// FaultLegRejected records that the receiver-driven + faults
	// combination failed loudly (its pacing ops have no wire encoding),
	// while the sender-driven fault leg ran.
	FaultLegRejected bool `json:"receiver_driven_fault_leg_rejected"`
}

// ablateTransport compares the two transports the cluster can build:
// the paper's sender-driven CKS/CKR pipeline (with application-level
// credit flow control as the incast-safe baseline) and the
// receiver-driven ablation, where receivers observe announced demand
// and pace senders with grant packets, SRPT-ordered by remaining
// message size with an unscheduled first window.
//
// The key workload is the N:1 incast with a sequentially-draining
// aggregator: eager sender-driven traffic deadlocks on it (§3.3's
// pathology — documented, not measured), credited traffic pays a
// round-trip per credit tile, and receiver-driven pacing holds the
// backlog at the senders. The bandwidth leg shows grants pacing a
// single deep flow; the bcast leg pins the zero-overhead claim:
// collective traffic is unpaced and must match sender-driven cycle for
// cycle. The fault leg asserts the loud-failure contract — a job asking
// for receiver-driven pacing over lossy links is rejected, never
// silently downgraded.
func ablateTransport(opts Options) (*Report, error) {
	sendersSet := []int{4, 8, 16}
	elems := 3000
	if opts.Quick {
		sendersSet = []int{8}
		elems = 2000
	}
	kinds := []transport.Kind{transport.SenderDrivenKind, transport.ReceiverDrivenKind}
	if opts.Transport != "" {
		k, err := transport.Parse(opts.Transport)
		if err != nil {
			return nil, fmt.Errorf("ablate-transport: %v", err)
		}
		kinds = []transport.Kind{k}
	}
	both := len(kinds) == 2

	r := &Report{
		ID:       "ablate-transport",
		JSONName: "BENCH_transport.json",
		Title:    "Transport ablation: sender-driven (credited) vs receiver-driven (Homa-style grants)",
		Header:   []string{"workload", "senders", "transport", "mode", "cycles", "tail", "mean", "grants", "delivered"},
		Notes: []string{
			"incast drains flows sequentially: eager sender-driven traffic deadlocks on it,",
			"credited traffic pays a round-trip per tile, receiver-driven grants (SRPT order,",
			"unscheduled first window) hold the backlog at the senders; the solo bandwidth",
			"flow shows the cost side (grant round-trips throttle a single deep flow); bcast",
			"is unpaced and must match the sender-driven transport cycle for cycle",
		},
	}
	doc := transportJSON{
		Description: "smibench transport ablation: N:1 incast, deep single-flow bandwidth, and unpaced broadcast under the sender-driven and receiver-driven transports; tail/mean are per-flow completion cycles at the sequentially-draining aggregator",
		HostCPUs:    runtime.NumCPU(),
		TailSpeedup: map[string]float64{},
	}

	// run dispatches through the workload registry (the same resolution
	// path smid uses) and enforces the loud-failure contract: the stats
	// must name the transport that was requested — a silent fallback to
	// sender-driven fails the experiment, it never produces a row.
	run := func(name string, p workload.Params, kind transport.Kind) (workload.Result, error) {
		p.Transport = kind.String()
		res, err := workload.Run(name, p)
		if err != nil {
			return res, fmt.Errorf("ablate-transport: %s under %s: %w", name, kind, err)
		}
		if res.Stats.Transport != kind.String() {
			return res, fmt.Errorf("ablate-transport: asked for the %s transport, cluster built %q — silent fallback",
				kind, res.Stats.Transport)
		}
		if kind == transport.ReceiverDrivenKind && res.Stats.Grants == 0 && name != "bcast" {
			return res, fmt.Errorf("ablate-transport: receiver-driven %s issued no grants — pacing never engaged", name)
		}
		if kind == transport.SenderDrivenKind && res.Stats.Grants != 0 {
			return res, fmt.Errorf("ablate-transport: sender-driven %s reported %d grants", name, res.Stats.Grants)
		}
		return res, nil
	}
	row := func(name string, senders, elems int, kind transport.Kind, mode string, res workload.Result) {
		tr := TransportRow{
			Workload: name, Senders: senders, Transport: kind.String(), Mode: mode,
			Elems:      elems,
			Cycles:     res.Cycles,
			TailCycles: int64(res.Metrics["tail_cycles"]),
			MeanCycles: res.Metrics["mean_cycles"],
			Grants:     res.Stats.Grants,
			Delivered:  res.Stats.PacketsDelivered,
			HostCPUs:   runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
		}
		doc.Rows = append(doc.Rows, tr)
		sd := "-"
		if senders > 0 {
			sd = fmt.Sprint(senders)
		}
		tail, mean := "-", "-"
		if tr.TailCycles > 0 {
			tail, mean = fmt.Sprint(tr.TailCycles), f1(tr.MeanCycles)
		}
		r.Rows = append(r.Rows, []string{
			name, sd, kind.String(), mode, fmt.Sprint(res.Cycles), tail, mean,
			fmt.Sprint(tr.Grants), fmt.Sprint(tr.Delivered),
		})
	}

	// N:1 incast on a bus (every flow shares the aggregator's cable —
	// the congestion is at the endpoint, not the fabric).
	for _, n := range sendersSet {
		topo, err := topology.Bus(n + 1)
		if err != nil {
			return nil, err
		}
		p := workload.Params{Ranks: n + 1, Size: elems, Topology: topo}
		tails := map[transport.Kind]int64{}
		for _, kind := range kinds {
			mode := "credited" // the registry's safe sender-driven default
			if kind == transport.ReceiverDrivenKind {
				mode = "packet" // eager is safe under pacing
			}
			res, err := run("incast", p, kind)
			if err != nil {
				return nil, err
			}
			row("incast", n, elems, kind, mode, res)
			tails[kind] = int64(res.Metrics["tail_cycles"])
		}
		if both {
			sp := float64(tails[transport.SenderDrivenKind]) / float64(tails[transport.ReceiverDrivenKind])
			doc.TailSpeedup[fmt.Sprint(n)] = sp
			r.metric(fmt.Sprintf("incast_tail_speedup_%d", n), sp)
			if n >= 8 && sp <= 1 {
				return nil, fmt.Errorf("ablate-transport: receiver-driven tail at %d:1 is %d cycles, sender-driven credited %d — no tail win",
					n, tails[transport.ReceiverDrivenKind], tails[transport.SenderDrivenKind])
			}
		}
	}

	// Deep single flow through a small buffer: the cost side of the
	// trade-off. Pacing a solo flow buys nothing (there is no incast to
	// defuse) and the grant round-trips throttle it — the cycle ratio
	// metric records how much.
	bwElems := 20000
	if opts.Quick {
		bwElems = 8000
	}
	bwCycles := map[transport.Kind]int64{}
	for _, kind := range kinds {
		p := workload.Params{Ranks: 4, Size: bwElems, BufferElems: 256}
		res, err := run("bandwidth", p, kind)
		if err != nil {
			return nil, err
		}
		row("bandwidth", 0, bwElems, kind, "packet", res)
		bwCycles[kind] = res.Cycles
	}
	if both {
		r.metric("bandwidth_cycle_ratio",
			float64(bwCycles[transport.ReceiverDrivenKind])/float64(bwCycles[transport.SenderDrivenKind]))
	}

	// Unpaced collective: the receiver-driven transport builds no pacing
	// hardware on pure-collective ranks and must match cycle for cycle.
	bcCycles := map[transport.Kind]int64{}
	for _, kind := range kinds {
		p := workload.Params{Ranks: 8, Size: 2000}
		res, err := run("bcast", p, kind)
		if err != nil {
			return nil, err
		}
		row("bcast", 0, 2000, kind, "packet", res)
		bcCycles[kind] = res.Cycles
	}
	if both && bcCycles[transport.SenderDrivenKind] != bcCycles[transport.ReceiverDrivenKind] {
		return nil, fmt.Errorf("ablate-transport: unpaced bcast diverged: sender-driven %d cycles, receiver-driven %d",
			bcCycles[transport.SenderDrivenKind], bcCycles[transport.ReceiverDrivenKind])
	}

	// Fault leg: the sender-driven transport runs over lossy links; the
	// receiver-driven transport must be rejected loudly (its pacing ops
	// have no wire encoding), never silently downgraded.
	flap := &fault.Spec{Seed: 3, DropProb: 1e-3}
	sdFault, err := run("incast", workload.Params{Ranks: 5, Size: 1000, Faults: flap}, transport.SenderDrivenKind)
	if err != nil {
		return nil, err
	}
	row("incast+faults", 4, 1000, transport.SenderDrivenKind, "credited", sdFault)
	if _, err := workload.Run("incast", workload.Params{
		Ranks: 5, Size: 1000, Faults: flap, Transport: transport.ReceiverDrivenKind.String(),
	}); err == nil {
		return nil, fmt.Errorf("ablate-transport: receiver-driven + faults was accepted — the loud-failure contract is broken")
	} else if !strings.Contains(err.Error(), "receiver-driven") {
		return nil, fmt.Errorf("ablate-transport: receiver-driven + faults rejected with an unrelated error: %v", err)
	}
	doc.FaultLegRejected = true
	r.Notes = append(r.Notes,
		"receiver-driven + faults is rejected at admission (pacing ops have no wire",
		"encoding to protect); the sender-driven fault leg ran in its place")

	if r.JSON, err = json.MarshalIndent(doc, "", "  "); err != nil {
		return nil, err
	}
	return r, nil
}
