package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/hostcomm"
	"repro/internal/topology"
	"repro/internal/transport"
)

func init() {
	register("fig9", "Bandwidth vs message size: SMI (1/4/7 hops) vs MPI+OpenCL", fig9)
	register("fig10", "Bcast time vs message size: SMI torus/bus vs MPI+OpenCL", fig10)
	register("fig11", "Reduce time vs message size: SMI torus/bus vs MPI+OpenCL", fig11)
	register("fig13", "GESUMMV distributed speedup over single FPGA", fig13)
	register("fig15", "Stencil strong scaling across banks and FPGAs", fig15)
	register("fig16", "Stencil weak scaling: time per point vs grid size", fig16)
}

// fig9 sweeps the message size and reports the achieved bandwidth for
// SMI at three hop distances and for the host baseline. The sweep is
// capped at 16 MiB (the paper goes to 256 MiB, but both curves are flat
// well before 16 MiB).
func fig9(opts Options) (*Report, error) {
	topo, err := topology.Bus(8)
	if err != nil {
		return nil, err
	}
	cfg := apps.NetConfig{Topology: topo, Transport: transport.DefaultConfig()}
	sizes := []int64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	if opts.Quick {
		sizes = []int64{256, 4 << 10, 64 << 10, 256 << 10}
	}
	host := hostcomm.Default()
	r := &Report{
		ID:     "fig9",
		Title:  "Bandwidth [Gbit/s] vs message size",
		Header: []string{"bytes", "SMI-1hop", "SMI-4hops", "SMI-7hops", "MPI+OpenCL", "QSFP peak", "PCIe peak"},
		Notes: []string{
			"payload peak is 35 Gbit/s (28 of 32 bytes per cycle); the paper reaches 91% of it,",
			"this model's round-robin poller sustains about two thirds (see EXPERIMENTS.md)",
		},
	}
	for _, bytes := range sizes {
		elems := int(bytes / 4)
		row := []string{human(bytes)}
		for _, dst := range []int{1, 4, 7} {
			res, err := apps.Bandwidth(cfg, 0, dst, elems)
			if err != nil {
				return nil, fmt.Errorf("fig9 %d bytes %d hops: %w", bytes, dst, err)
			}
			row = append(row, f2(res.Gbps))
		}
		row = append(row, f2(host.BandwidthGbps(bytes)), "35.00", "63.04")
		r.Rows = append(r.Rows, row)
		if bytes == sizes[len(sizes)-1] {
			r.metric("smi_1hop_gbps", parseF(row[1]))
			r.metric("host_gbps", host.BandwidthGbps(bytes))
		}
	}
	return r, nil
}

// collectiveSweep produces the Fig 10 / Fig 11 series: SMI on a torus
// and a bus with 4 and 8 ranks, plus the host baseline at 8 ranks.
func collectiveSweep(id, title string, opts Options,
	smiTime func(cfg apps.NetConfig, ranks, elems int) (apps.CollectiveResult, error),
	hostTime func(n int, bytes int64) float64) (*Report, error) {

	torus, err := topology.Torus2D(2, 4)
	if err != nil {
		return nil, err
	}
	bus, err := topology.Bus(8)
	if err != nil {
		return nil, err
	}
	tcfg := apps.NetConfig{Topology: torus, Transport: transport.DefaultConfig()}
	bcfg := apps.NetConfig{Topology: bus, Transport: transport.DefaultConfig()}

	sizes := []int{1, 16, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}
	if opts.Quick {
		sizes = []int{1, 256, 4 << 10}
	}
	r := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"elems", "SMI torus 8", "SMI torus 4", "SMI bus 8", "SMI bus 4", "MPI+OpenCL 8"},
		Notes: []string{
			"times in microseconds; paper sweeps 1..1M elements — the shape (SMI ~10x faster",
			"at small sizes, host competitive only at large Reduce sizes) is established here",
		},
	}
	for _, elems := range sizes {
		row := []string{fmt.Sprint(elems)}
		for _, series := range []struct {
			cfg   apps.NetConfig
			ranks int
		}{
			{tcfg, 8}, {tcfg, 4}, {bcfg, 8}, {bcfg, 4},
		} {
			res, err := smiTime(series.cfg, series.ranks, elems)
			if err != nil {
				return nil, fmt.Errorf("%s %d elems %d ranks: %w", id, elems, series.ranks, err)
			}
			row = append(row, f1(res.Micros))
		}
		row = append(row, f1(hostTime(8, int64(elems)*4)))
		r.Rows = append(r.Rows, row)
		if elems == sizes[len(sizes)-1] {
			last := len(r.Rows) - 1
			_ = last
			r.metric("smi_torus8_large_us", parseF(row[1]))
			r.metric("host8_large_us", parseF(row[5]))
		}
	}
	return r, nil
}

func fig10(opts Options) (*Report, error) {
	host := hostcomm.Default()
	return collectiveSweep("fig10", "Bcast time [us] vs message size [elements]", opts,
		func(cfg apps.NetConfig, ranks, elems int) (apps.CollectiveResult, error) {
			return apps.BcastTime(cfg, ranks, elems)
		},
		host.BcastUs)
}

func fig11(opts Options) (*Report, error) {
	host := hostcomm.Default()
	return collectiveSweep("fig11", "Reduce time [us] vs message size [elements]", opts,
		func(cfg apps.NetConfig, ranks, elems int) (apps.CollectiveResult, error) {
			return apps.ReduceTime(cfg, ranks, elems, 0)
		},
		host.ReduceUs)
}

// fig13 reports GESUMMV speedups for square and rectangular matrices.
func fig13(opts Options) (*Report, error) {
	type shape struct {
		label      string
		rows, cols int
	}
	shapes := []shape{
		{"2048x2048", 2048, 2048},
		{"4096x4096", 4096, 4096},
		{"8192x8192", 8192, 8192},
		{"16384x16384", 16384, 16384},
		{"2048x4096", 2048, 4096},
		{"2048x8192", 2048, 8192},
		{"2048x16384", 2048, 16384},
		{"4096x2048", 4096, 2048},
		{"8192x2048", 8192, 2048},
		{"16384x2048", 16384, 2048},
	}
	if opts.Quick {
		shapes = shapes[:2]
	}
	r := &Report{
		ID:     "fig13",
		Title:  "GESUMMV speedup over single FPGA",
		Header: []string{"size", "single (ms)", "distributed (ms)", "speedup", "paper speedup"},
		Notes:  []string{"paper reports ~2x for all sizes (distributed doubles memory bandwidth)"},
	}
	for _, s := range shapes {
		sp, single, dist, err := apps.GesummvSpeedup(apps.GesummvConfig{
			Rows: s.rows, Cols: s.cols, Alpha: 1.5, Beta: -0.5,
		})
		if err != nil {
			return nil, fmt.Errorf("fig13 %s: %w", s.label, err)
		}
		r.Rows = append(r.Rows, []string{
			s.label, f3(single.Micros / 1e3), f3(dist.Micros / 1e3), f2(sp), "~2",
		})
		r.metric("speedup_"+s.label, sp)
	}
	return r, nil
}

// fig15 reports strong scaling of the stencil at a fixed 4096^2 domain
// (32 timesteps) across bank and FPGA counts.
func fig15(opts Options) (*Report, error) {
	n, steps := 4096, 32
	if opts.Quick {
		n, steps = 1024, 8
	}
	type config struct {
		label        string
		banks        int
		rx, ry       int
		paperSpeedup string
	}
	configs := []config{
		{"1 bank / 1 FPGA", 1, 1, 1, "1.0"},
		{"4 banks / 1 FPGA", 4, 1, 1, "3.5"},
		{"1 bank / 4 FPGAs", 1, 2, 2, "3.5"},
		{"4 banks / 4 FPGAs", 4, 2, 2, "12.3"},
		{"4 banks / 8 FPGAs", 4, 4, 2, "23.1"},
	}
	r := &Report{
		ID:     "fig15",
		Title:  fmt.Sprintf("Stencil strong scaling, %dx%d grid, %d timesteps", n, n, steps),
		Header: []string{"config", "time (ms)", "speedup", "paper speedup"},
	}
	var base int64
	for _, cfg := range configs {
		res, err := apps.Stencil(apps.StencilConfig{
			N: n, Timesteps: steps, RanksX: cfg.rx, RanksY: cfg.ry, Banks: cfg.banks,
		})
		if err != nil {
			return nil, fmt.Errorf("fig15 %s: %w", cfg.label, err)
		}
		if base == 0 {
			base = res.Cycles
		}
		speedup := float64(base) / float64(res.Cycles)
		r.Rows = append(r.Rows, []string{
			cfg.label, f3(res.Micros / 1e3), f2(speedup), cfg.paperSpeedup,
		})
		r.metric("speedup_"+cfg.label, speedup)
	}
	return r, nil
}

// fig16 reports weak scaling: time per grid point for growing domains
// on 4 and 8 FPGAs (the paper sweeps to 16384^2; capped at 8192^2).
func fig16(opts Options) (*Report, error) {
	steps := 32
	grids := []int{1024, 2048, 4096, 8192}
	if opts.Quick {
		steps = 8
		grids = []int{512, 1024}
	}
	r := &Report{
		ID:     "fig16",
		Title:  fmt.Sprintf("Stencil time per point [ns], %d timesteps, 4 banks per FPGA", steps),
		Header: []string{"grid", "4 ranks (ns)", "8 ranks (ns)", "ratio"},
		Notes:  []string{"paper: at large grids 8 FPGAs achieve ~2x over 4 FPGAs"},
	}
	for _, n := range grids {
		r4, err := apps.Stencil(apps.StencilConfig{N: n, Timesteps: steps, RanksX: 2, RanksY: 2, Banks: 4})
		if err != nil {
			return nil, fmt.Errorf("fig16 %d/4: %w", n, err)
		}
		r8, err := apps.Stencil(apps.StencilConfig{N: n, Timesteps: steps, RanksX: 4, RanksY: 2, Banks: 4})
		if err != nil {
			return nil, fmt.Errorf("fig16 %d/8: %w", n, err)
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%dx%d", n, n), f3(r4.NsPerPoint), f3(r8.NsPerPoint),
			f2(r4.NsPerPoint / r8.NsPerPoint),
		})
		r.metric(fmt.Sprintf("ratio_%d", n), r4.NsPerPoint/r8.NsPerPoint)
	}
	return r, nil
}
