package bench

import (
	"fmt"

	"repro/internal/apps"
	smi "repro/internal/core"
	"repro/internal/hostcomm"
	"repro/internal/packet"
	"repro/internal/resources"
	"repro/internal/topology"
	"repro/internal/transport"
)

func init() {
	register("table1", "SMI resource consumption (1 vs 4 QSFPs)", table1)
	register("table2", "Collective support kernel resource consumption", table2)
	register("table3", "Point-to-point latency: SMI vs MPI+OpenCL", table3)
	register("table4", "Injection rate vs polling factor R", table4)
}

// oneQSFPTopology is the Table 1 single-network-port scenario: two
// devices joined by one cable, one interface each.
func oneQSFPTopology() *topology.Topology {
	return &topology.Topology{
		Devices: 2,
		Ifaces:  1,
		Name:    "pair-1qsfp",
		Connections: []topology.Connection{
			{A: topology.Endpoint{Device: 0, Iface: 0}, B: topology.Endpoint{Device: 1, Iface: 0}},
		},
	}
}

// table1 instantiates the two measured design points — one and four
// QSFPs, one application endpoint per CKS/CKR pair — and reports the
// estimated interconnect and communication kernel resources next to the
// paper's synthesis results.
func table1(Options) (*Report, error) {
	build := func(topo *topology.Topology, ports int) (smi.RankResources, error) {
		var specs []smi.PortSpec
		for p := 0; p < ports; p++ {
			specs = append(specs, smi.PortSpec{Port: p, Type: smi.Int})
		}
		c, err := smi.NewCluster(smi.Config{Topology: topo, Program: smi.ProgramSpec{Ports: specs}})
		if err != nil {
			return smi.RankResources{}, err
		}
		return c.RankResources(0), nil
	}
	one, err := build(oneQSFPTopology(), 1)
	if err != nil {
		return nil, err
	}
	torus, err := topology.Torus2D(2, 4)
	if err != nil {
		return nil, err
	}
	four, err := build(torus, 4)
	if err != nil {
		return nil, err
	}
	chip := resources.StratixGX2800()
	pct := func(u resources.Usage) string {
		l, f, m, _ := u.Percent(chip)
		return fmt.Sprintf("%.1f%%/%.1f%%/%.1f%%", l, f, m)
	}
	r := &Report{
		ID:     "table1",
		Title:  "SMI resource consumption",
		Header: []string{"component", "LUTs", "FFs", "M20Ks", "paper LUTs", "paper FFs", "paper M20Ks"},
		Rows: [][]string{
			{"1 QSFP interconnect", fmt.Sprint(one.Interconnect.LUTs), fmt.Sprint(one.Interconnect.FFs), fmt.Sprint(one.Interconnect.M20Ks), "144", "4872", "0"},
			{"1 QSFP comm kernels", fmt.Sprint(one.Kernels.LUTs), fmt.Sprint(one.Kernels.FFs), fmt.Sprint(one.Kernels.M20Ks), "6186", "7189", "10"},
			{"4 QSFP interconnect", fmt.Sprint(four.Interconnect.LUTs), fmt.Sprint(four.Interconnect.FFs), fmt.Sprint(four.Interconnect.M20Ks), "1152", "39264", "0"},
			{"4 QSFP comm kernels", fmt.Sprint(four.Kernels.LUTs), fmt.Sprint(four.Kernels.FFs), fmt.Sprint(four.Kernels.M20Ks), "30960", "31072", "40"},
		},
		Notes: []string{
			fmt.Sprintf("4-QSFP total is %s of the Stratix 10 GX2800 (paper: 1.7%%/1.9%%/0.3%%; 'less than 2%%')",
				pct(four.Interconnect.Add(four.Kernels))),
		},
	}
	r.metric("luts_4qsfp", float64(four.Interconnect.Add(four.Kernels).LUTs))
	r.metric("ffs_4qsfp", float64(four.Interconnect.Add(four.Kernels).FFs))
	return r, nil
}

func table2(Options) (*Report, error) {
	b := resources.BcastSupport()
	rd := resources.ReduceSupport(packet.Float)
	return &Report{
		ID:     "table2",
		Title:  "Collective support kernel resources",
		Header: []string{"kernel", "LUTs", "FFs", "M20Ks", "DSPs", "paper LUTs", "paper FFs", "paper DSPs"},
		Rows: [][]string{
			{"Broadcast", fmt.Sprint(b.LUTs), fmt.Sprint(b.FFs), fmt.Sprint(b.M20Ks), fmt.Sprint(b.DSPs), "2560", "3593", "0"},
			{"Reduce (FP32 SUM)", fmt.Sprint(rd.LUTs), fmt.Sprint(rd.FFs), fmt.Sprint(rd.M20Ks), fmt.Sprint(rd.DSPs), "10268", "14648", "6"},
		},
	}, nil
}

// table3 measures ping-pong latency at 1, 4 and 7 hops over a linear
// bus, plus the host-based baseline.
func table3(opts Options) (*Report, error) {
	topo, err := topology.Bus(8)
	if err != nil {
		return nil, err
	}
	cfg := apps.NetConfig{Topology: topo, Transport: transport.DefaultConfig()}
	rounds := 16
	if opts.Quick {
		rounds = 4
	}
	r := &Report{
		ID:     "table3",
		Title:  "Measured latency in microseconds",
		Header: []string{"path", "latency (us)", "paper (us)"},
	}
	host := hostcomm.Default().LatencyUs()
	r.Rows = append(r.Rows, []string{"MPI+OpenCL", f3(host), "36.61"})
	paper := map[int]string{1: "0.801", 4: "2.896", 7: "5.103"}
	for _, hops := range []int{1, 4, 7} {
		res, err := apps.PingPong(cfg, 0, hops, rounds)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{fmt.Sprintf("SMI-%d", hops), f3(res.LatencyUs), paper[hops]})
		r.metric(fmt.Sprintf("smi_%dhop_us", hops), res.LatencyUs)
	}
	r.metric("host_us", host)
	return r, nil
}

// table4 measures the injection latency for R in {1, 4, 8, 16}.
func table4(opts Options) (*Report, error) {
	topo, err := topology.Bus(2)
	if err != nil {
		return nil, err
	}
	msgs := 5000
	if opts.Quick {
		msgs = 1000
	}
	r := &Report{
		ID:     "table4",
		Title:  "Average injection rate in cycles per message",
		Header: []string{"R", "cycles/msg", "paper cycles/msg"},
		Notes: []string{
			"the model's poller pays one cycle per empty input scanned, giving (R+4)/R for",
			"5 inputs; the paper's measured values carry extra pipeline overheads at high R",
		},
	}
	paper := map[int]string{1: "5", 4: "2.5", 8: "1.8", 16: "1.69"}
	for _, rr := range []int{1, 4, 8, 16} {
		cfg := apps.NetConfig{Topology: topo, Transport: transport.Config{R: rr}}
		res, err := apps.Injection(cfg, msgs)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{fmt.Sprint(rr), f2(res.CyclesPerMsg), paper[rr]})
		r.metric(fmt.Sprintf("cycles_per_msg_r%d", rr), res.CyclesPerMsg)
	}
	return r, nil
}
