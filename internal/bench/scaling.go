package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

func init() {
	register("scaling", "Simulator scaling: event scheduler vs dense scan at 8..64 ranks", scaling)
}

// scalingGrids maps a rank count to its 2D torus decomposition.
var scalingGrids = map[int][2]int{
	8:  {2, 4},
	16: {4, 4},
	32: {4, 8},
	64: {8, 8},
}

// ScalingRow is one (workload, ranks, scheduler) measurement.
type ScalingRow struct {
	Workload       string  `json:"workload"`
	Ranks          int     `json:"ranks"`
	Scheduler      string  `json:"scheduler"`
	Cycles         int64   `json:"cycles"`
	CyclesExecuted int64   `json:"cycles_executed"`
	CyclesSkipped  int64   `json:"cycles_skipped"`
	KernelTicks    int64   `json:"kernel_ticks"`
	WallMs         float64 `json:"wall_ms"`
	NsPerCycle     float64 `json:"ns_per_simulated_cycle"`
}

// scalingJSON is the BENCH_scaling.json document: every row of the
// sweep (the dense baseline rows included, so the improvement and its
// reference live in the same file) plus the headline ratio.
type scalingJSON struct {
	Description string       `json:"description"`
	Rows        []ScalingRow `json:"rows"`
	// SpeedupAtMax is dense wall-clock / event wall-clock per workload
	// at the largest rank count measured.
	SpeedupAtMax map[string]float64 `json:"wall_clock_speedup_at_max_ranks"`
	MaxRanks     int                `json:"max_ranks"`
}

// scalingRun executes one workload at one rank count under one
// scheduler and reports the measurement.
func scalingRun(workload string, ranks int, kind sim.SchedulerKind) (ScalingRow, error) {
	grid := scalingGrids[ranks]
	label := "event"
	if kind == sim.SchedDense {
		label = "dense"
	}
	row := ScalingRow{Workload: workload, Ranks: ranks, Scheduler: label}
	start := time.Now()
	var net = struct {
		cycles int64
		sched  sim.SchedStats
	}{}
	switch workload {
	case "stencil":
		res, err := apps.Stencil(apps.StencilConfig{
			N: 8 * grid[1], Timesteps: 4, RanksX: grid[0], RanksY: grid[1],
			Scheduler: kind,
		})
		if err != nil {
			return row, err
		}
		net.cycles, net.sched = res.Cycles, res.Net.Sched
	case "bcast":
		topo, err := topology.Torus2D(grid[0], grid[1])
		if err != nil {
			return row, err
		}
		res, err := apps.BcastTime(apps.NetConfig{
			Topology: topo, Transport: transport.DefaultConfig(),
			RoutingPolicy: routing.UpDown, Scheduler: kind,
		}, ranks, 4096)
		if err != nil {
			return row, err
		}
		net.cycles, net.sched = res.Cycles, res.Net.Sched
	default:
		return row, fmt.Errorf("scaling: unknown workload %q (have stencil, bcast)", workload)
	}
	wall := time.Since(start)
	row.Cycles = net.cycles
	row.CyclesExecuted = net.sched.CyclesExecuted
	row.CyclesSkipped = net.sched.CyclesSkipped
	row.KernelTicks = net.sched.KernelTicks
	row.WallMs = float64(wall.Nanoseconds()) / 1e6
	if net.cycles > 0 {
		row.NsPerCycle = float64(wall.Nanoseconds()) / float64(net.cycles)
	}
	return row, nil
}

// scaling sweeps stencil and broadcast over growing rank counts, running
// each point under both schedulers. The dense scan is the reference the
// event scheduler must match cycle for cycle — the sweep fails on any
// divergence — and the baseline its wall-clock improvement is quoted
// against.
func scaling(opts Options) (*Report, error) {
	rankSet := opts.Ranks
	if len(rankSet) == 0 {
		rankSet = []int{8, 16, 32, 64}
		if opts.Quick {
			rankSet = []int{8}
		}
	}
	workloads := []string{"stencil", "bcast"}
	if opts.Workload != "" {
		workloads = []string{opts.Workload}
	}

	r := &Report{
		ID:     "scaling",
		Title:  "Wall-clock per simulated cycle: event scheduler vs dense scan",
		Header: []string{"workload", "ranks", "cycles", "skipped%", "dense ms", "event ms", "speedup", "ns/cycle"},
		Notes: []string{
			"both schedulers must (and do) finish every run on the identical cycle;",
			"'skipped%' is the share of simulated cycles the event scheduler fast-forwarded",
		},
	}
	doc := scalingJSON{
		Description:  "smibench scaling: identical workloads under the dense reference scan and the event scheduler; dense rows are the baseline for the wall-clock comparison",
		SpeedupAtMax: map[string]float64{},
	}
	for _, w := range workloads {
		for _, ranks := range rankSet {
			if _, ok := scalingGrids[ranks]; !ok {
				return nil, fmt.Errorf("scaling: unsupported rank count %d (have 8, 16, 32, 64)", ranks)
			}
			dense, err := scalingRun(w, ranks, sim.SchedDense)
			if err != nil {
				return nil, fmt.Errorf("scaling %s/%d dense: %w", w, ranks, err)
			}
			event, err := scalingRun(w, ranks, sim.SchedEvent)
			if err != nil {
				return nil, fmt.Errorf("scaling %s/%d event: %w", w, ranks, err)
			}
			if dense.Cycles != event.Cycles {
				return nil, fmt.Errorf("scaling %s/%d: dense finished at cycle %d, event at %d — scheduler parity broken",
					w, ranks, dense.Cycles, event.Cycles)
			}
			doc.Rows = append(doc.Rows, dense, event)
			speedup := 0.0
			if event.WallMs > 0 {
				speedup = dense.WallMs / event.WallMs
			}
			skipped := 100 * float64(event.CyclesSkipped) / float64(event.Cycles)
			r.Rows = append(r.Rows, []string{
				w, fmt.Sprintf("%d", ranks), fmt.Sprintf("%d", event.Cycles),
				f1(skipped), f2(dense.WallMs), f2(event.WallMs), f2(speedup), f2(event.NsPerCycle),
			})
			if ranks == rankSet[len(rankSet)-1] {
				doc.SpeedupAtMax[w] = speedup
				doc.MaxRanks = ranks
				r.metric(fmt.Sprintf("%s_%dranks_speedup", w, ranks), speedup)
			}
		}
	}
	js, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.JSON = append(js, '\n')
	return r, nil
}
