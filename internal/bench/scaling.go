package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register("scaling", "Simulator scaling: event scheduler vs dense scan at 8..64 ranks", scaling)
}

// scalingRanks are the supported sweep points; workload.Grid decomposes
// each into the same 2D torus the sweep has always used.
var scalingRanks = map[int]bool{8: true, 16: true, 32: true, 64: true}

// ScalingRow is one (workload, ranks, scheduler) measurement.
type ScalingRow struct {
	Workload       string  `json:"workload"`
	Ranks          int     `json:"ranks"`
	Scheduler      string  `json:"scheduler"`
	Cycles         int64   `json:"cycles"`
	CyclesExecuted int64   `json:"cycles_executed"`
	CyclesSkipped  int64   `json:"cycles_skipped"`
	KernelTicks    int64   `json:"kernel_ticks"`
	WallMs         float64 `json:"wall_ms"`
	NsPerCycle     float64 `json:"ns_per_simulated_cycle"`
}

// scalingJSON is the BENCH_scaling.json document: every row of the
// sweep (the dense baseline rows included, so the improvement and its
// reference live in the same file) plus the headline ratio.
type scalingJSON struct {
	Description string       `json:"description"`
	Rows        []ScalingRow `json:"rows"`
	// SpeedupAtMax is dense wall-clock / event wall-clock per workload
	// at the largest rank count measured.
	SpeedupAtMax map[string]float64 `json:"wall_clock_speedup_at_max_ranks"`
	MaxRanks     int                `json:"max_ranks"`
}

// scalingRun executes one workload at one rank count under one
// scheduler and reports the measurement. Dispatch goes through the
// workload registry — the same resolution path smid uses — with the
// registry defaults reproducing the sweep's historical problem sizes.
func scalingRun(name string, ranks int, kind sim.SchedulerKind) (ScalingRow, error) {
	label := "event"
	if kind == sim.SchedDense {
		label = "dense"
	}
	row := ScalingRow{Workload: name, Ranks: ranks, Scheduler: label}
	params := workload.Params{Ranks: ranks, Scheduler: kind}
	if name == "bcast" {
		params.RoutingPolicy = routing.UpDown
	}
	start := time.Now()
	res, err := workload.Run(name, params)
	if err != nil {
		return row, err
	}
	wall := time.Since(start)
	row.Cycles = res.Cycles
	row.CyclesExecuted = res.Stats.Sched.CyclesExecuted
	row.CyclesSkipped = res.Stats.Sched.CyclesSkipped
	row.KernelTicks = res.Stats.Sched.KernelTicks
	row.WallMs = float64(wall.Nanoseconds()) / 1e6
	if res.Cycles > 0 {
		row.NsPerCycle = float64(wall.Nanoseconds()) / float64(res.Cycles)
	}
	return row, nil
}

// scaling sweeps stencil and broadcast over growing rank counts, running
// each point under both schedulers. The dense scan is the reference the
// event scheduler must match cycle for cycle — the sweep fails on any
// divergence — and the baseline its wall-clock improvement is quoted
// against.
func scaling(opts Options) (*Report, error) {
	rankSet := opts.Ranks
	if len(rankSet) == 0 {
		rankSet = []int{8, 16, 32, 64}
		if opts.Quick {
			rankSet = []int{8}
		}
	}
	workloads := []string{"stencil", "bcast"}
	if opts.Workload != "" {
		workloads = []string{opts.Workload}
	}

	r := &Report{
		ID:     "scaling",
		Title:  "Wall-clock per simulated cycle: event scheduler vs dense scan",
		Header: []string{"workload", "ranks", "cycles", "skipped%", "dense ms", "event ms", "speedup", "ns/cycle"},
		Notes: []string{
			"both schedulers must (and do) finish every run on the identical cycle;",
			"'skipped%' is the share of simulated cycles the event scheduler fast-forwarded",
		},
	}
	doc := scalingJSON{
		Description:  "smibench scaling: identical workloads under the dense reference scan and the event scheduler; dense rows are the baseline for the wall-clock comparison",
		SpeedupAtMax: map[string]float64{},
	}
	for _, w := range workloads {
		for _, ranks := range rankSet {
			if !scalingRanks[ranks] {
				return nil, fmt.Errorf("scaling: unsupported rank count %d (have 8, 16, 32, 64)", ranks)
			}
			dense, err := scalingRun(w, ranks, sim.SchedDense)
			if err != nil {
				return nil, fmt.Errorf("scaling %s/%d dense: %w", w, ranks, err)
			}
			event, err := scalingRun(w, ranks, sim.SchedEvent)
			if err != nil {
				return nil, fmt.Errorf("scaling %s/%d event: %w", w, ranks, err)
			}
			if dense.Cycles != event.Cycles {
				return nil, fmt.Errorf("scaling %s/%d: dense finished at cycle %d, event at %d — scheduler parity broken",
					w, ranks, dense.Cycles, event.Cycles)
			}
			doc.Rows = append(doc.Rows, dense, event)
			speedup := 0.0
			if event.WallMs > 0 {
				speedup = dense.WallMs / event.WallMs
			}
			skipped := 100 * float64(event.CyclesSkipped) / float64(event.Cycles)
			r.Rows = append(r.Rows, []string{
				w, fmt.Sprintf("%d", ranks), fmt.Sprintf("%d", event.Cycles),
				f1(skipped), f2(dense.WallMs), f2(event.WallMs), f2(speedup), f2(event.NsPerCycle),
			})
			if ranks == rankSet[len(rankSet)-1] {
				doc.SpeedupAtMax[w] = speedup
				doc.MaxRanks = ranks
				r.metric(fmt.Sprintf("%s_%dranks_speedup", w, ranks), speedup)
			}
		}
	}
	js, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.JSON = append(js, '\n')
	return r, nil
}
