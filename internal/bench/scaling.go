package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register("scaling", "Simulator scaling: dense scan vs event scheduler vs sharded parallel at 8..1024 ranks", scaling)
}

// scalingRanks are the supported sweep points; workload.Grid decomposes
// each into the same 2D torus the sweep has always used. The dense
// reference scan is only run up to denseRankLimit — its per-cycle
// full-component sweep makes the big points prohibitively slow, and the
// event scheduler (verified against dense at every small point) serves
// as the baseline beyond it.
var scalingRanks = map[int]bool{8: true, 16: true, 32: true, 64: true, 256: true, 1024: true}

const denseRankLimit = 64

// scalingGoMaxProcs is the GOMAXPROCS axis for the sharded rows: the
// serial baselines (dense, event) run pinned at 1, the parallel
// schedulers at both points so the JSON records what parallelism the
// host actually granted each measurement.
var scalingGoMaxProcs = []int{1, 4}

// ScalingRow is one (workload, ranks, scheduler, shards, gomaxprocs)
// measurement.
type ScalingRow struct {
	Workload  string `json:"workload"`
	Ranks     int    `json:"ranks"`
	Scheduler string `json:"scheduler"`
	Shards    int    `json:"shards"`
	// HostCPUs and GoMaxProcs record the parallel hardware behind the
	// wall-clock number: the machine's logical CPU count and the Go
	// scheduler's processor limit during this run. A shard row measured
	// with host_cpus=1 documents barrier overhead, not speedup.
	HostCPUs   int   `json:"host_cpus"`
	GoMaxProcs int   `json:"gomaxprocs"`
	Syncs      int64 `json:"syncs,omitempty"`
	// Windows and Steals are the adaptive scheduler's effort counters:
	// per-boundary lookahead windows opened, and ranks moved between
	// worker slots by the deterministic rebalance rule.
	Windows int64 `json:"windows,omitempty"`
	Steals  int64 `json:"steals,omitempty"`
	// PerShard carries each shard's effort counters (including its sync
	// count) for sharded rows — the load-balance signal.
	PerShard       []sim.ShardEffort `json:"per_shard,omitempty"`
	Cycles         int64             `json:"cycles"`
	CyclesExecuted int64             `json:"cycles_executed"`
	CyclesSkipped  int64             `json:"cycles_skipped"`
	KernelTicks    int64             `json:"kernel_ticks"`
	WallMs         float64           `json:"wall_ms"`
	NsPerCycle     float64           `json:"ns_per_simulated_cycle"`
}

// scalingJSON is the BENCH_scaling.json document: every row of the
// sweep (the baseline rows included, so the improvement and its
// reference live in the same file) plus the headline ratios.
type scalingJSON struct {
	Description string `json:"description"`
	// HostCPUs is the logical CPU count of the machine that produced the
	// document (every row repeats it alongside its own gomaxprocs).
	HostCPUs int          `json:"host_cpus"`
	Rows     []ScalingRow `json:"rows"`
	// SpeedupAtMax is baseline wall-clock / event wall-clock per workload
	// at the largest rank count measured (baseline = dense where it ran,
	// event otherwise).
	SpeedupAtMax map[string]float64 `json:"wall_clock_speedup_at_max_ranks"`
	// ShardSpeedupAtMax is event wall-clock / fixed-shard wall-clock per
	// workload at the largest rank count measured, taken at the highest
	// GOMAXPROCS point. Without real cores behind GOMAXPROCS this hovers
	// around 1 or below (barrier overhead with no parallel hardware).
	ShardSpeedupAtMax map[string]float64 `json:"shard_wall_clock_speedup_at_max_ranks"`
	// AdaptiveSpeedupAtMax is event wall-clock / shard-adaptive
	// wall-clock per workload at the largest rank count, highest
	// GOMAXPROCS point.
	AdaptiveSpeedupAtMax map[string]float64 `json:"adaptive_wall_clock_speedup_at_max_ranks"`
	MaxRanks             int                `json:"max_ranks"`
}

// scalingRun executes one workload at one rank count under one
// scheduler, pinned at the given GOMAXPROCS, and reports the
// measurement. Dispatch goes through the workload registry — the same
// resolution path smid uses — with the registry defaults reproducing
// the sweep's historical problem sizes.
func scalingRun(name string, ranks int, kind sim.SchedulerKind, shards, gomaxprocs int) (ScalingRow, error) {
	row := ScalingRow{Workload: name, Ranks: ranks, Scheduler: kind.String(), Shards: shards}
	if gomaxprocs > 0 {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
	}
	row.HostCPUs = runtime.NumCPU()
	row.GoMaxProcs = runtime.GOMAXPROCS(0)
	params := workload.Params{Ranks: ranks, Scheduler: kind}
	if shards > 1 {
		params.Shards = shards
	}
	if name == "bcast" {
		params.RoutingPolicy = routing.UpDown
	}
	start := time.Now()
	res, err := workload.Run(name, params)
	if err != nil {
		return row, err
	}
	wall := time.Since(start)
	row.Syncs = res.Stats.Sched.Syncs
	row.Windows = res.Stats.Sched.Windows
	row.Steals = res.Stats.Sched.Steals
	row.PerShard = res.Stats.Sched.PerShard
	row.Cycles = res.Cycles
	row.CyclesExecuted = res.Stats.Sched.CyclesExecuted
	row.CyclesSkipped = res.Stats.Sched.CyclesSkipped
	row.KernelTicks = res.Stats.Sched.KernelTicks
	row.WallMs = float64(wall.Nanoseconds()) / 1e6
	if res.Cycles > 0 {
		row.NsPerCycle = float64(wall.Nanoseconds()) / float64(res.Cycles)
	}
	return row, nil
}

// scaling sweeps stencil and broadcast over growing rank counts, running
// each point under the event scheduler, the fixed-window sharded
// scheduler, and the adaptive-lookahead scheduler (the latter two at
// GOMAXPROCS 1 and 4), plus the dense reference scan at the small
// points. Every scheduler must finish every run on the identical cycle —
// the sweep fails on any divergence — and the slowest available
// scheduler is the baseline the wall-clock improvements are quoted
// against.
func scaling(opts Options) (*Report, error) {
	rankSet := opts.Ranks
	if len(rankSet) == 0 {
		rankSet = []int{8, 16, 32, 64, 256, 1024}
		if opts.Quick {
			rankSet = []int{8}
		}
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 4
	}
	workloads := []string{"stencil", "bcast"}
	if opts.Workload != "" {
		workloads = []string{opts.Workload}
	}

	r := &Report{
		ID:     "scaling",
		Title:  "Wall-clock per simulated cycle: dense scan vs event scheduler vs sharded parallel",
		Header: []string{"workload", "ranks", "cycles", "skipped%", "dense ms", "event ms", "shard ms", "adapt ms", "shards", "syncs", "windows", "steals", "speedup"},
		Notes: []string{
			"all schedulers must (and do) finish every run on the identical cycle;",
			"'skipped%' is the share of simulated cycles the event scheduler fast-forwarded;",
			"dense rows stop at 64 ranks (the reference scan is too slow beyond);",
			"'speedup' is dense/event wall clock where dense ran, else event/best-sharded;",
			"shard and adapt columns are the GOMAXPROCS=4 measurements (the JSON also",
			"carries the GOMAXPROCS=1 rows); wall-clock wins need host_cpus > 1",
		},
	}
	doc := scalingJSON{
		Description:          "smibench scaling: identical workloads under the dense reference scan, the event scheduler, the fixed-window sharded scheduler, and the adaptive-lookahead scheduler with work stealing; sharded rows are measured at GOMAXPROCS 1 and 4",
		HostCPUs:             runtime.NumCPU(),
		SpeedupAtMax:         map[string]float64{},
		ShardSpeedupAtMax:    map[string]float64{},
		AdaptiveSpeedupAtMax: map[string]float64{},
	}
	for _, w := range workloads {
		for _, ranks := range rankSet {
			if !scalingRanks[ranks] {
				return nil, fmt.Errorf("scaling: unsupported rank count %d (have 8, 16, 32, 64, 256, 1024)", ranks)
			}
			sh := shards
			if sh > ranks {
				sh = ranks
			}
			var dense ScalingRow
			haveDense := ranks <= denseRankLimit
			if haveDense {
				var err error
				dense, err = scalingRun(w, ranks, sim.SchedDense, 1, 1)
				if err != nil {
					return nil, fmt.Errorf("scaling %s/%d dense: %w", w, ranks, err)
				}
			}
			event, err := scalingRun(w, ranks, sim.SchedEvent, 1, 1)
			if err != nil {
				return nil, fmt.Errorf("scaling %s/%d event: %w", w, ranks, err)
			}
			if haveDense && dense.Cycles != event.Cycles {
				return nil, fmt.Errorf("scaling %s/%d: dense finished at cycle %d, event at %d — scheduler parity broken",
					w, ranks, dense.Cycles, event.Cycles)
			}
			if haveDense {
				doc.Rows = append(doc.Rows, dense)
			}
			doc.Rows = append(doc.Rows, event)

			// The parallel schedulers sweep the GOMAXPROCS axis; the last
			// point (the widest) feeds the table and headline ratios.
			var shard, adaptive ScalingRow
			for _, gmp := range scalingGoMaxProcs {
				shard, err = scalingRun(w, ranks, sim.SchedShard, sh, gmp)
				if err != nil {
					return nil, fmt.Errorf("scaling %s/%d shard: %w", w, ranks, err)
				}
				adaptive, err = scalingRun(w, ranks, sim.SchedShardAdaptive, sh, gmp)
				if err != nil {
					return nil, fmt.Errorf("scaling %s/%d shard-adaptive: %w", w, ranks, err)
				}
				if shard.Cycles != event.Cycles || adaptive.Cycles != event.Cycles {
					return nil, fmt.Errorf("scaling %s/%d: shard finished at cycle %d, adaptive at %d, event at %d — scheduler parity broken",
						w, ranks, shard.Cycles, adaptive.Cycles, event.Cycles)
				}
				doc.Rows = append(doc.Rows, shard, adaptive)
			}

			bestShardMs := shard.WallMs
			if adaptive.WallMs < bestShardMs {
				bestShardMs = adaptive.WallMs
			}
			speedup, denseMs := 0.0, "-"
			if haveDense {
				denseMs = f2(dense.WallMs)
				if event.WallMs > 0 {
					speedup = dense.WallMs / event.WallMs
				}
			} else if bestShardMs > 0 {
				speedup = event.WallMs / bestShardMs
			}
			skipped := 100 * float64(event.CyclesSkipped) / float64(event.Cycles)
			r.Rows = append(r.Rows, []string{
				w, fmt.Sprintf("%d", ranks), fmt.Sprintf("%d", event.Cycles),
				f1(skipped), denseMs, f2(event.WallMs), f2(shard.WallMs), f2(adaptive.WallMs),
				fmt.Sprintf("%d", sh), fmt.Sprintf("%d", adaptive.Syncs),
				fmt.Sprintf("%d", adaptive.Windows), fmt.Sprintf("%d", adaptive.Steals),
				f2(speedup),
			})
			if ranks == rankSet[len(rankSet)-1] {
				doc.SpeedupAtMax[w] = speedup
				if shard.WallMs > 0 {
					doc.ShardSpeedupAtMax[w] = event.WallMs / shard.WallMs
				}
				if adaptive.WallMs > 0 {
					doc.AdaptiveSpeedupAtMax[w] = event.WallMs / adaptive.WallMs
				}
				doc.MaxRanks = ranks
				r.metric(fmt.Sprintf("%s_%dranks_speedup", w, ranks), speedup)
			}
		}
	}
	js, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.JSON = append(js, '\n')
	return r, nil
}
