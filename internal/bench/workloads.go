package bench

import (
	"encoding/json"
	"fmt"

	"repro/internal/workload"
)

func init() {
	register("workloads", "Registry sweep: every registered workload once, emitting smid's Result schema", workloadSweep)
}

// workloadSweep runs every registered workload once at its default
// problem size and reports the normalized workload.Result documents —
// byte-for-byte the schema smid serves for a job, so `smibench -json
// workloads` output is directly diffable against `GET /v1/jobs/{id}`
// results.
func workloadSweep(opts Options) (*Report, error) {
	ranks := 8
	if len(opts.Ranks) > 0 {
		ranks = opts.Ranks[0]
	}
	names := workload.Names()
	if opts.Workload != "" {
		names = []string{opts.Workload}
	}

	r := &Report{
		ID:     "workloads",
		Title:  fmt.Sprintf("Registered workloads at %d ranks (default sizes)", ranks),
		Header: []string{"workload", "ranks", "size", "cycles", "us", "digest"},
		Notes: []string{
			"rows are workload.Result documents — the same schema smid serves per job;",
			"digests are deterministic: rerunning this sweep must reproduce them exactly",
		},
	}
	var results []workload.Result
	for _, name := range names {
		p := workload.Params{Ranks: ranks, Verify: true}
		if opts.Quick {
			p.Size = quickSize(name)
		}
		res, err := workload.Run(name, p)
		if err != nil {
			return nil, fmt.Errorf("workloads %s: %w", name, err)
		}
		results = append(results, res)
		r.Rows = append(r.Rows, []string{
			res.Workload, fmt.Sprintf("%d", res.Ranks), fmt.Sprintf("%d", res.Size),
			fmt.Sprintf("%d", res.Cycles), f1(res.Micros), res.OutputDigest,
		})
		r.metric(name+"_cycles", float64(res.Cycles))
	}
	js, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return nil, err
	}
	r.JSON = append(js, '\n')
	return r, nil
}

// quickSize trims a workload's problem size for fast runs.
func quickSize(name string) int {
	switch name {
	case "bandwidth":
		return 2048
	case "pingpong":
		return 16
	case "bcast", "reduce":
		return 512
	case "stencil":
		return 16
	case "summa":
		return 16
	default:
		return 0
	}
}
