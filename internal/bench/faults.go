package bench

import (
	"fmt"

	"repro/internal/apps"
	smi "repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

func init() {
	register("ablate-faults", "Fault injection: retransmission cost and route failover", ablateFaults)
}

// ablateFaults quantifies what the reliability extension costs and what
// it buys. Three scenarios share the table: a point-to-point stream
// under increasing packet-drop probability (the go-back-N retransmission
// cost paid in real wire cycles), an 8-rank Bcast across a scripted link
// flap, and a verified stencil surviving a permanent cable death through
// route regeneration. The drop=0 row is the timing-transparency claim:
// the protocol's acks ride the inter-frame gap, so cycle counts match
// the pristine links exactly.
//
// -shards applies to the multi-rank scenarios: the reliable links split
// into per-engine tx/rx halves, and the experiment fails loudly if a
// run reports fewer shards than requested (the old behaviour was a
// silent fallback to one engine). Scheduler parity keeps every cycle
// count — including the timing-transparency check — identical.
func ablateFaults(opts Options) (*Report, error) {
	bus, err := topology.Bus(2)
	if err != nil {
		return nil, err
	}
	torus, err := topology.Torus2D(2, 4)
	if err != nil {
		return nil, err
	}
	elems := 100_000
	bcastElems := 4000
	stencilN := 32
	if opts.Quick {
		elems, bcastElems = 20_000, 1000
	}
	// -shards: run the 8-rank scenarios sharded. shardedStats verifies
	// the simulator honored the request instead of silently falling back
	// to a single engine (the pre-split behaviour on reliable links).
	shards := opts.Shards
	sched := sim.SchedEvent
	if shards > 1 {
		sched = sim.SchedShard
	}
	shardedStats := func(label string, st smi.Stats) error {
		if shards > 1 && (st.Sched.Shards != shards || st.Sched.Syncs == 0) {
			return fmt.Errorf("ablate-faults: %s ran %d shards with %d syncs, asked for %d — reliable cluster fell back to a single engine",
				label, st.Sched.Shards, st.Sched.Syncs, shards)
		}
		return nil
	}
	r := &Report{
		ID:     "ablate-faults",
		Title:  "Reliability under injected faults (seeded, replayable schedules)",
		Header: []string{"scenario", "cycles", "delivered", "retransmits", "crc err", "lost on wire", "failovers", "rescued"},
		Notes: []string{
			"drop=0 matches the pristine baseline cycle for cycle: acks piggyback on reverse",
			"data and pure control frames only use idle wire slots, so an idle fault layer is",
			"timing-transparent; under loss the go-back-N recovery cost is paid in real wire",
			"cycles; a killed cable triggers route regeneration (up*/down* on the surviving",
			"wiring, CDG-verified) and a control-plane rescue of the unacknowledged packets",
		},
	}
	row := func(label string, cycles int64, net smi.Stats) {
		r.Rows = append(r.Rows, []string{
			label, fmt.Sprint(cycles), fmt.Sprint(net.PacketsDelivered),
			fmt.Sprint(net.Retransmits), fmt.Sprint(net.CrcErrors),
			fmt.Sprint(net.FaultsInjected.Dropped + net.FaultsInjected.FlapLost),
			fmt.Sprint(net.Failovers), fmt.Sprint(net.RescuedPackets),
		})
	}

	// Point-to-point stream vs drop probability.
	base, err := apps.Bandwidth(apps.NetConfig{Topology: bus, Transport: transport.DefaultConfig()}, 0, 1, elems)
	if err != nil {
		return nil, err
	}
	row("p2p pristine links", base.Cycles, base.Net)
	for _, p := range []float64{0, 1e-4, 1e-3, 1e-2} {
		bw, err := apps.Bandwidth(apps.NetConfig{
			Topology: bus, Transport: transport.DefaultConfig(),
			Faults: &fault.Spec{Seed: 1, DropProb: p},
		}, 0, 1, elems)
		if err != nil {
			return nil, fmt.Errorf("drop=%g: %w", p, err)
		}
		row(fmt.Sprintf("p2p drop=%g", p), bw.Cycles, bw.Net)
		r.metric(fmt.Sprintf("p2p_cycles_drop%g", p), float64(bw.Cycles))
		if p == 0 && bw.Cycles != base.Cycles {
			return nil, fmt.Errorf("ablate-faults: drop=0 run took %d cycles, pristine %d — reliability layer is not timing-transparent",
				bw.Cycles, base.Cycles)
		}
	}

	// 8-rank Bcast across a transient link flap.
	bc0, err := apps.BcastTime(apps.NetConfig{Topology: torus, Transport: transport.DefaultConfig(), RoutingPolicy: routing.UpDown}, 8, bcastElems)
	if err != nil {
		return nil, err
	}
	row("bcast-8 pristine links", bc0.Cycles, bc0.Net)
	flap := &fault.Spec{Events: []fault.Event{
		{Link: linkName(torus, 0, 1), Kind: fault.Flap, At: 500, Until: 1100},
	}}
	bc1, err := apps.BcastTime(apps.NetConfig{
		Topology: torus, Transport: transport.DefaultConfig(), RoutingPolicy: routing.UpDown, Faults: flap,
		Scheduler: sched, Shards: shards,
	}, 8, bcastElems)
	if err != nil {
		return nil, fmt.Errorf("bcast under flap: %w", err)
	}
	if err := shardedStats("bcast under flap", bc1.Net); err != nil {
		return nil, err
	}
	row("bcast-8 flap@500-1100", bc1.Cycles, bc1.Net)
	r.metric("bcast_flap_extra_cycles", float64(bc1.Cycles-bc0.Cycles))

	// Verified stencil across a permanent cable death.
	st0, err := apps.Stencil(apps.StencilConfig{
		N: stencilN, Timesteps: 8, RanksX: 2, RanksY: 4,
		Topology: torus, RoutingPolicy: routing.UpDown,
	})
	if err != nil {
		return nil, err
	}
	row("stencil-8 pristine links", st0.Cycles, st0.Net)
	kill := &fault.Spec{Events: []fault.Event{
		{Link: linkName(torus, 0, 1), Kind: fault.Kill, At: 1500},
	}}
	st1, err := apps.Stencil(apps.StencilConfig{
		N: stencilN, Timesteps: 8, RanksX: 2, RanksY: 4, Verify: true,
		Topology: torus, RoutingPolicy: routing.UpDown, Faults: kill,
		Scheduler: sched, Shards: shards,
	})
	if err != nil {
		return nil, fmt.Errorf("stencil under kill: %w", err)
	}
	if err := shardedStats("stencil under kill", st1.Net); err != nil {
		return nil, err
	}
	want := apps.StencilReference(stencilN, 8)
	for i := range want {
		for j := range want[i] {
			if st1.Grid[i][j] != want[i][j] {
				return nil, fmt.Errorf("ablate-faults: stencil grid diverged at [%d][%d] after failover", i, j)
			}
		}
	}
	row("stencil-8 cable kill@1500", st1.Cycles, st1.Net)
	r.metric("failover_cycles", float64(st1.Net.FailoverCycles))
	r.metric("rescued_packets", float64(st1.Net.RescuedPackets))
	r.Notes = append(r.Notes,
		fmt.Sprintf("the killed-cable stencil still matches the sequential reference bit for bit; "+
			"detection+repair+rescue took %d cycles", st1.Net.FailoverCycles))
	return r, nil
}

// linkName formats the injector's name for the directed link a -> b,
// failing loudly if the topology has no such cable.
func linkName(topo *topology.Topology, a, b int) string {
	for _, conn := range topo.Connections {
		if conn.A.Device == a && conn.B.Device == b {
			return fmt.Sprintf("%s->%s", conn.A, conn.B)
		}
		if conn.A.Device == b && conn.B.Device == a {
			return fmt.Sprintf("%s->%s", conn.B, conn.A)
		}
	}
	panic(fmt.Sprintf("bench: no cable between %d and %d", a, b))
}
