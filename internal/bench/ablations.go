package bench

import (
	"fmt"

	"repro/internal/apps"
	smi "repro/internal/core"
	"repro/internal/hostcomm"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/transport"
)

func init() {
	register("ablate-r", "Ablation: polling factor R vs bandwidth and injection", ablateR)
	register("ablate-credit", "Ablation: Reduce flow-control tile size C", ablateCredit)
	register("ablate-routing", "Ablation: shortest-path vs up*/down* routing", ablateRouting)
	register("ablate-buffer", "Ablation: endpoint buffer size (asynchronicity degree k)", ablateBuffer)
}

// ablateR sweeps the CK polling factor and reports both the dense-stream
// bandwidth and the injection latency: higher R favors a single busy
// connection, lower R favors fairness across many (§4.3).
func ablateR(opts Options) (*Report, error) {
	topo, err := topology.Bus(8)
	if err != nil {
		return nil, err
	}
	elems := 200_000
	msgs := 4000
	if opts.Quick {
		elems, msgs = 40_000, 1000
	}
	r := &Report{
		ID:     "ablate-r",
		Title:  "Polling factor R: single-stream bandwidth vs injection latency",
		Header: []string{"R", "bandwidth (Gbit/s)", "injection (cycles/msg)"},
		Notes: []string{
			"higher R lets a CK burst from one busy input (bandwidth up) at the cost of",
			"per-connection latency when many inputs compete; packet switching spends 4 of",
			"32 bytes on headers, so payload efficiency caps at 87.5% regardless of R",
		},
	}
	for _, rr := range []int{1, 2, 4, 8, 16, 32} {
		cfg := apps.NetConfig{Topology: topo, Transport: transport.Config{R: rr}}
		bw, err := apps.Bandwidth(cfg, 0, 1, elems)
		if err != nil {
			return nil, err
		}
		inj, err := apps.Injection(cfg, msgs)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{fmt.Sprint(rr), f2(bw.Gbps), f2(inj.CyclesPerMsg)})
		r.metric(fmt.Sprintf("gbps_r%d", rr), bw.Gbps)
	}
	return r, nil
}

// ablateCredit sweeps the Reduce credit tile size C: larger tiles
// amortize the credit round trip but cost proportional on-chip buffer at
// the root (§4.4).
func ablateCredit(opts Options) (*Report, error) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		return nil, err
	}
	cfg := apps.NetConfig{Topology: topo, Transport: transport.DefaultConfig()}
	elems := 65536
	if opts.Quick {
		elems = 8192
	}
	r := &Report{
		ID:     "ablate-credit",
		Title:  fmt.Sprintf("Reduce time vs credit tile size C (%d float32 elements, 8 ranks)", elems),
		Header: []string{"C (elems)", "time (us)", "root buffer (bytes)"},
		Notes: []string{
			"the tile size trades root buffer space against credit round-trip stalls;",
			"beyond ~4K elements the reduction is ingest-bound and larger tiles stop helping",
		},
	}
	for _, c := range []int{64, 256, 1024, 4096, 16384} {
		res, err := apps.ReduceTime(cfg, 8, elems, c)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{fmt.Sprint(c), f1(res.Micros), fmt.Sprint(c * 4)})
		r.metric(fmt.Sprintf("us_c%d", c), res.Micros)
	}
	return r, nil
}

// ablateRouting compares the two route generators on the torus: path
// dilation and end-to-end latency, plus the deadlock-freedom verdict of
// the channel dependency graph.
func ablateRouting(opts Options) (*Report, error) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		return nil, err
	}
	rounds := 8
	if opts.Quick {
		rounds = 3
	}
	r := &Report{
		ID:     "ablate-routing",
		Title:  "Routing policy on the 2x4 torus",
		Header: []string{"policy", "avg hops", "max hops", "deadlock-free (CDG)", "0->5 latency (us)"},
		Notes: []string{
			"on the 2x4 torus the wrap-around shortest paths create a channel dependency",
			"cycle (a potential deadlock); up*/down* provably breaks it, here without any",
			"path dilation - the safe policy costs nothing on this wiring",
		},
	}
	for _, pol := range []routing.Policy{routing.ShortestPath, routing.UpDown} {
		routes, err := routing.Compute(topo, pol)
		if err != nil {
			return nil, err
		}
		sum, max, pairs := 0, 0, 0
		for s := 0; s < topo.Devices; s++ {
			for d := 0; d < topo.Devices; d++ {
				if s == d {
					continue
				}
				h := routes.Hops(s, d)
				sum += h
				pairs++
				if h > max {
					max = h
				}
			}
		}
		verdict := "yes"
		if routing.VerifyDeadlockFree(routes) != nil {
			verdict = "NO"
		}
		pp, err := apps.PingPong(apps.NetConfig{
			Topology: topo, Transport: transport.DefaultConfig(), RoutingPolicy: pol,
		}, 0, 5, rounds)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			pol.String(), f2(float64(sum) / float64(pairs)), fmt.Sprint(max), verdict, f3(pp.LatencyUs),
		})
	}
	return r, nil
}

// ablateBuffer sweeps the endpoint buffer (the channel's asynchronicity
// degree k, §3.3) against a bursty consumer that pauses periodically:
// "by increasing the buffer size, a sending rank can commit more data to
// the network while continuing computations" (§4.2). With small k every
// consumer pause backpressures the sender; once k covers a pause,
// throughput recovers to the steady rate.
func ablateBuffer(opts Options) (*Report, error) {
	topo, err := topology.Bus(2)
	if err != nil {
		return nil, err
	}
	elems := 100_000
	if opts.Quick {
		elems = 20_000
	}
	const pauseEvery, pauseCycles = 512, 512
	r := &Report{
		ID: "ablate-buffer",
		Title: fmt.Sprintf("Completion vs endpoint buffer size (%d int32 elements, consumer pauses %d cycles every %d elements)",
			elems, pauseCycles, pauseEvery),
		Header: []string{"k (elems)", "sender done (cycles)", "relative"},
		Notes: []string{
			"k is the channel's asynchronicity degree: the sender may run ahead of the",
			"receiver by up to k elements; a larger buffer lets the sending rank commit",
			"its message and return to computation sooner (paper SS4.2)",
		},
	}
	var base int64
	for _, k := range []int{7, 112, 448, 1792, 7168} {
		cycles, err := burstyTransfer(topo, k, elems, pauseEvery, pauseCycles)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = cycles
		}
		r.Rows = append(r.Rows, []string{fmt.Sprint(k), fmt.Sprint(cycles), f2(float64(cycles) / float64(base))})
		r.metric(fmt.Sprintf("cycles_k%d", k), float64(cycles))
	}
	return r, nil
}

// burstyTransfer streams elems integers to a consumer that sleeps
// pauseCycles every pauseEvery elements and returns the cycle at which
// the sender finished committing the message.
func burstyTransfer(topo *topology.Topology, k, elems, pauseEvery, pauseCycles int) (int64, error) {
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program: smi.ProgramSpec{Ports: []smi.PortSpec{
			{Port: 0, Type: smi.Int, VecWidth: 8, BufferElems: k},
		}},
	})
	if err != nil {
		return 0, err
	}
	var senderDone int64
	c.OnRank(0, "source", func(x *smi.Ctx) {
		ch, err := x.OpenSendChannel(elems, smi.Int, 1, 0, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < elems; i++ {
			ch.PushInt(int32(i))
		}
		senderDone = x.Now()
	})
	c.OnRank(1, "bursty-sink", func(x *smi.Ctx) {
		ch, err := x.OpenRecvChannel(elems, smi.Int, 0, 0, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < elems; i++ {
			ch.PopInt()
			if (i+1)%pauseEvery == 0 {
				x.Sleep(int64(pauseCycles))
			}
		}
	})
	if _, err := c.Run(); err != nil {
		return 0, err
	}
	return senderDone, nil
}

func init() {
	register("ablate-flowcontrol", "Ablation: eager vs credit-based point-to-point flow control", ablateFlowControl)
}

// ablateFlowControl reproduces the motivating scenario of §3.3: a bulk
// message whose buffer is far smaller than the message shares one
// CKS/CKR pair with a latency-sensitive control channel. Under the eager
// protocol the bulk stream jams the shared transport FIFOs (with a small
// buffer the run deadlocks); under credit-based flow control the sender
// never commits more than the receiver can buffer, and the control
// exchange stays fast.
func ablateFlowControl(opts Options) (*Report, error) {
	bulk := 20000
	if opts.Quick {
		bulk = 4000
	}
	r := &Report{
		ID:     "ablate-flowcontrol",
		Title:  fmt.Sprintf("Shared-transport interference: %d-element bulk message + 4-element control exchange", bulk),
		Header: []string{"protocol", "buffer (elems)", "outcome", "control done (cycles)", "bulk done (cycles)"},
		Notes: []string{
			"paper SS3.3: with buffers smaller than the message, 'a transmission protocol",
			"with credit-based flow control must be used ... to guarantee that the",
			"communication occurring on a transient channel will not block the",
			"transmission of other streaming messages'",
		},
	}
	for _, cfg := range []struct {
		label    string
		credited bool
		buffer   int
	}{
		{"eager", false, 28},
		{"eager", false, bulk},
		{"credited", true, 28},
		{"credited", true, 448},
	} {
		ctl, bulkDone, err := contendedTransfer(cfg.credited, cfg.buffer, bulk)
		outcome := "ok"
		if err != nil {
			outcome = "DEADLOCK"
		}
		row := []string{cfg.label, fmt.Sprint(cfg.buffer), outcome, "-", "-"}
		if err == nil {
			row[3] = fmt.Sprint(ctl)
			row[4] = fmt.Sprint(bulkDone)
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// contendedTransfer runs the shared-pair bulk + control scenario and
// returns the completion cycles of the control exchange and of the bulk
// message.
func contendedTransfer(credited bool, buffer, bulk int) (ctlDone, bulkDone int64, err error) {
	topo, err := topology.Bus(2)
	if err != nil {
		return 0, 0, err
	}
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program: smi.ProgramSpec{Ports: []smi.PortSpec{
			{Port: 0, Type: smi.Int, Credited: credited, BufferElems: buffer, Iface: 0, PinIface: true},
			{Port: 1, Type: smi.Int, BufferElems: 28, Iface: 0, PinIface: true},
		}},
		MaxCycles: 50_000_000,
	})
	if err != nil {
		return 0, 0, err
	}
	c.OnRank(0, "bulk", func(x *smi.Ctx) {
		ch, err := x.OpenSendChannel(bulk, smi.Int, 1, 0, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < bulk; i++ {
			ch.PushInt(int32(i))
		}
	})
	c.OnRank(0, "ctl", func(x *smi.Ctx) {
		x.Sleep(2000)
		ch, err := x.OpenSendChannel(4, smi.Int, 1, 1, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < 4; i++ {
			ch.PushInt(int32(i))
		}
	})
	c.OnRank(1, "consumer", func(x *smi.Ctx) {
		ctl, err := x.OpenRecvChannel(4, smi.Int, 0, 1, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < 4; i++ {
			ctl.PopInt()
		}
		ctlDone = x.Now()
		bc, err := x.OpenRecvChannel(bulk, smi.Int, 0, 0, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < bulk; i++ {
			bc.PopInt()
		}
		bulkDone = x.Now()
	})
	_, err = c.Run()
	return ctlDone, bulkDone, err
}

func init() {
	register("ablate-tree", "Ablation: linear vs binomial-tree collectives", ablateTree)
}

// ablateTree compares the paper's linear collective scheme against the
// binomial-tree support kernels (the extension the paper names but does
// not implement). The tree bounds each node's fan-out/fan-in by
// log2(ranks), relieving the root congestion that makes the linear
// Reduce lose to the host baseline at large sizes (§5.3.4).
func ablateTree(opts Options) (*Report, error) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		return nil, err
	}
	elems := 65536
	if opts.Quick {
		elems = 8192
	}
	r := &Report{
		ID:     "ablate-tree",
		Title:  fmt.Sprintf("Collective scheme comparison (%d float32 elements, 8 ranks, torus)", elems),
		Header: []string{"collective", "linear (us)", "tree (us)", "tree speedup"},
		Notes: []string{
			"with 8 ranks the root touches 7 streams under the linear scheme but only",
			"log2(8)=3 under the binomial tree; inner nodes combine/replicate in parallel",
		},
	}
	timeCollective := func(kind smi.PortKind, tree bool) (float64, error) {
		c, err := smi.NewCluster(smi.Config{
			Topology: topo,
			Program: smi.ProgramSpec{Ports: []smi.PortSpec{{
				Port: 0, Kind: kind, Type: smi.Float, ReduceOp: smi.Add,
				Tree: tree, BufferElems: 512,
			}}},
			Transport: transport.DefaultConfig(),
		})
		if err != nil {
			return 0, err
		}
		c.SPMD("coll", func(x *smi.Ctx) {
			switch kind {
			case smi.Bcast:
				ch, err := x.OpenBcastChannel(elems, smi.Float, 0, 0, x.CommWorld())
				if err != nil {
					panic(err)
				}
				for i := 0; i < elems; i++ {
					ch.BcastFloat(float32(i))
				}
			case smi.Reduce:
				ch, err := x.OpenReduceChannel(elems, smi.Float, smi.Add, 0, 0, x.CommWorld())
				if err != nil {
					panic(err)
				}
				for i := 0; i < elems; i++ {
					ch.ReduceFloat(1)
				}
			}
		})
		st, err := c.Run()
		if err != nil {
			return 0, err
		}
		return st.Micros, nil
	}
	for _, kind := range []smi.PortKind{smi.Bcast, smi.Reduce} {
		linear, err := timeCollective(kind, false)
		if err != nil {
			return nil, fmt.Errorf("linear %v: %w", kind, err)
		}
		tree, err := timeCollective(kind, true)
		if err != nil {
			return nil, fmt.Errorf("tree %v: %w", kind, err)
		}
		r.Rows = append(r.Rows, []string{kind.String(), f1(linear), f1(tree), f2(linear / tree)})
		r.metric("speedup_"+kind.String(), linear/tree)
	}
	return r, nil
}

func init() {
	register("ablate-arbiter", "Ablation: round-robin poller vs skip-idle arbiter", ablateArbiter)
}

// ablateArbiter compares the two CK input arbiters: the literal
// round-robin poller (which reproduces Table 4's injection numbers) and
// a priority encoder that skips idle inputs (which reproduces Fig 9's
// 91%-of-peak bandwidth). The published RTL behaves between the two;
// this is deviation D1 of EXPERIMENTS.md made explicit.
func ablateArbiter(opts Options) (*Report, error) {
	topo, err := topology.Bus(8)
	if err != nil {
		return nil, err
	}
	elems := 400_000
	msgs := 4000
	if opts.Quick {
		elems, msgs = 50_000, 1000
	}
	r := &Report{
		ID:     "ablate-arbiter",
		Title:  "CK input arbiter: bandwidth vs injection trade-off (R=8)",
		Header: []string{"arbiter", "bandwidth (Gbit/s)", "% of 35 payload peak", "injection (cycles/msg)"},
		Notes: []string{
			"the round-robin poller reproduces Table 4 exactly; skip-idle reproduces the",
			"paper's 91%-of-peak Fig 9 bandwidth; the published RTL sits between the two",
		},
	}
	for _, arb := range []struct {
		label string
		kind  transport.Arbiter
	}{
		{"round-robin poll", transport.ArbiterRoundRobin},
		{"skip-idle", transport.ArbiterSkipIdle},
	} {
		cfg := apps.NetConfig{Topology: topo, Transport: transport.Config{R: 8, Arbiter: arb.kind}}
		bw, err := apps.Bandwidth(cfg, 0, 1, elems)
		if err != nil {
			return nil, err
		}
		inj, err := apps.Injection(cfg, msgs)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			arb.label, f2(bw.Gbps), f1(100 * bw.Gbps / 35.0), f2(inj.CyclesPerMsg),
		})
		r.metric("gbps_"+arb.label, bw.Gbps)
	}
	return r, nil
}

func init() {
	register("ablate-switching", "Ablation: packet switching vs circuit switching", ablateSwitching)
}

// ablateSwitching quantifies the §4.2 design decision. Packet switching
// spends 4 of every 32 bytes on headers but multiplexes freely; circuit
// switching sends one meta-information packet then headerless payload,
// recovering the full wire for data at the price of locking every
// communication kernel on the path until the message completes.
func ablateSwitching(opts Options) (*Report, error) {
	bulk := 56000
	if opts.Quick {
		bulk = 14000
	}
	r := &Report{
		ID:     "ablate-switching",
		Title:  fmt.Sprintf("Switching mode: %d-element bulk transfer + concurrent 4-element message", bulk),
		Header: []string{"mode", "bulk payload (Gbit/s)", "concurrent msg done (cycles)"},
		Notes: []string{
			"circuit payload packets use all 32 wire bytes (40 Gbit/s ceiling vs 35), but",
			"the concurrent message waits for the whole circuit; the paper chose packet",
			"switching because it can 'easily multiplex different channels, avoiding",
			"temporary stalls due to the transmission of long messages'",
		},
	}
	for _, mode := range []struct {
		label   string
		circuit bool
	}{
		{"packet switching", false},
		{"circuit switching", true},
	} {
		gbps, ctl, err := switchingRun(mode.circuit, bulk)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode.label, err)
		}
		r.Rows = append(r.Rows, []string{mode.label, f2(gbps), fmt.Sprint(ctl)})
		r.metric("gbps_"+mode.label, gbps)
	}
	return r, nil
}

// switchingRun measures a saturated bulk transfer's payload bandwidth
// and the completion cycle of a small concurrent message sharing the
// same CKS/CKR pair.
func switchingRun(circuit bool, bulk int) (gbps float64, ctlDone int64, err error) {
	topo, err := topology.Bus(2)
	if err != nil {
		return 0, 0, err
	}
	c, err := smi.NewCluster(smi.Config{
		Topology: topo,
		Program: smi.ProgramSpec{Ports: []smi.PortSpec{
			{Port: 0, Type: smi.Int, Circuit: circuit, VecWidth: 8, BufferElems: 4096, Iface: 0, PinIface: true},
			{Port: 1, Type: smi.Int, Iface: 0, PinIface: true},
		}},
		Transport: transport.DefaultConfig(),
	})
	if err != nil {
		return 0, 0, err
	}
	c.OnRank(0, "bulk", func(x *smi.Ctx) {
		ch, err := x.OpenSendChannel(bulk, smi.Int, 1, 0, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < bulk; i++ {
			ch.PushInt(int32(i))
		}
	})
	c.OnRank(0, "ctl", func(x *smi.Ctx) {
		x.Sleep(200)
		ch, err := x.OpenSendChannel(4, smi.Int, 1, 1, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < 4; i++ {
			ch.PushInt(int32(i))
		}
	})
	var bulkDone int64
	c.OnRank(1, "rbulk", func(x *smi.Ctx) {
		ch, err := x.OpenRecvChannel(bulk, smi.Int, 0, 0, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < bulk; i++ {
			ch.PopInt()
		}
		bulkDone = x.Now()
	})
	c.OnRank(1, "rctl", func(x *smi.Ctx) {
		ch, err := x.OpenRecvChannel(4, smi.Int, 0, 1, x.CommWorld())
		if err != nil {
			panic(err)
		}
		for i := 0; i < 4; i++ {
			ch.PopInt()
		}
		ctlDone = x.Now()
	})
	if _, err := c.Run(); err != nil {
		return 0, 0, err
	}
	bits := float64(bulk) * 4 * 8
	gbps = bits / (c.Clock().Micros(bulkDone) * 1e3)
	return gbps, ctlDone, nil
}

func init() {
	register("ext-scattergather", "Extension: Scatter/Gather timing (collectives the paper defines but does not evaluate)", extScatterGather)
}

// extScatterGather times the two collectives SMI specifies (§3.2) whose
// performance the paper leaves unevaluated, against the host baseline,
// completing the collective coverage of Figs 10-11.
func extScatterGather(opts Options) (*Report, error) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		return nil, err
	}
	cfg := apps.NetConfig{Topology: topo, Transport: transport.DefaultConfig()}
	host := hostcomm.Default()
	sizes := []int{16, 1 << 10, 16 << 10}
	if opts.Quick {
		sizes = []int{16, 1 << 10}
	}
	r := &Report{
		ID:     "ext-scattergather",
		Title:  "Scatter/Gather time [us] per rank chunk, 8 ranks, torus",
		Header: []string{"elems/rank", "SMI scatter", "SMI gather", "host scatter", "host gather"},
		Notes: []string{
			"both use the Fig 5 sequential per-rank protocol (rendezvous for scatter,",
			"grants for gather); like Bcast, SMI wins on rendezvous cost at small sizes",
		},
	}
	for _, elems := range sizes {
		sc, err := apps.ScatterTime(cfg, 8, elems)
		if err != nil {
			return nil, fmt.Errorf("scatter %d: %w", elems, err)
		}
		ga, err := apps.GatherTime(cfg, 8, elems)
		if err != nil {
			return nil, fmt.Errorf("gather %d: %w", elems, err)
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(elems), f1(sc.Micros), f1(ga.Micros),
			f1(host.ScatterUs(8, int64(elems)*4)), f1(host.GatherUs(8, int64(elems)*4)),
		})
	}
	return r, nil
}
