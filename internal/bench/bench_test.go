package bench

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != id || len(r.Rows) == 0 || len(r.Header) == 0 {
		t.Fatalf("malformed report: %+v", r)
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("row width %d != header width %d: %v", len(row), len(r.Header), row)
		}
	}
	return r
}

func cell(t *testing.T, r *Report, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell [%d][%d] = %q not numeric: %v", row, col, r.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig10", "fig11", "fig13", "fig15", "fig16", "fig9",
		"scaling", "streaming", "table1", "table2", "table3", "table4"}
	got := Experiments()
	var ids []string
	for _, e := range got {
		ids = append(ids, e.ID)
	}
	for _, w := range want {
		found := false
		for _, id := range ids {
			if id == w {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %s not registered (have %v)", w, ids)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r := runQuick(t, "table1")
	// The calibrated model reproduces the paper's interconnect LUT count
	// exactly in both scenarios.
	if r.Rows[0][1] != r.Rows[0][4] {
		t.Errorf("1-QSFP interconnect LUTs %s != paper %s", r.Rows[0][1], r.Rows[0][4])
	}
	if r.Rows[2][1] != r.Rows[2][4] {
		t.Errorf("4-QSFP interconnect LUTs %s != paper %s", r.Rows[2][1], r.Rows[2][4])
	}
	if r.Rows[3][1] != r.Rows[3][4] || r.Rows[3][2] != r.Rows[3][5] {
		t.Errorf("4-QSFP CK row %v != paper", r.Rows[3])
	}
}

func TestTable3Shape(t *testing.T) {
	r := runQuick(t, "table3")
	host := cell(t, r, 0, 1)
	smi1 := cell(t, r, 1, 1)
	smi4 := cell(t, r, 2, 1)
	smi7 := cell(t, r, 3, 1)
	if !(smi1 < smi4 && smi4 < smi7) {
		t.Fatalf("latency must grow with hops: %f %f %f", smi1, smi4, smi7)
	}
	// Paper ratio: 36.61 / 5.103 ~ 7x at seven hops, ~46x at one hop.
	if host < 5*smi7 || host < 20*smi1 {
		t.Fatalf("host latency (%f) should dwarf SMI (%f / %f)", host, smi1, smi7)
	}
	// Near-linear growth with hops, as in the paper.
	perHop1 := smi1
	perHop47 := (smi7 - smi4) / 3
	if perHop47 < 0.5*perHop1 || perHop47 > 2*perHop1 {
		t.Fatalf("latency not linear in hops: %f vs %f per hop", perHop1, perHop47)
	}
}

func TestTable4Shape(t *testing.T) {
	r := runQuick(t, "table4")
	prev := 1e9
	for i := range r.Rows {
		v := cell(t, r, i, 1)
		if v >= prev {
			t.Fatalf("injection latency must fall with R: row %d = %f", i, v)
		}
		prev = v
	}
	if first := cell(t, r, 0, 1); first < 4.8 || first > 5.2 {
		t.Fatalf("R=1 = %f, want ~5 (Table 4 anchor)", first)
	}
}

func TestFig9Shape(t *testing.T) {
	r := runQuick(t, "fig9")
	last := len(r.Rows) - 1
	smi1 := cell(t, r, last, 1)
	smi7 := cell(t, r, last, 3)
	host := cell(t, r, last, 4)
	// Bandwidth independent of hops; SMI beats the host path.
	if diff := (smi1 - smi7) / smi1; diff > 0.05 || diff < -0.05 {
		t.Fatalf("bandwidth varies with hops: %f vs %f", smi1, smi7)
	}
	if smi1 < 1.4*host {
		t.Fatalf("SMI (%f) should clearly beat host (%f) at large sizes", smi1, host)
	}
	// Bandwidth grows with size.
	if cell(t, r, 0, 1) >= smi1 {
		t.Fatal("bandwidth should grow with message size")
	}
}

func TestFig10Fig11Shape(t *testing.T) {
	b := runQuick(t, "fig10")
	rd := runQuick(t, "fig11")
	// At the smallest size, SMI beats the host by an order of magnitude.
	smiSmall := cell(t, b, 0, 1)
	hostSmall := cell(t, b, 0, 5)
	if hostSmall < 5*smiSmall {
		t.Fatalf("small bcast: host %f should dwarf SMI %f", hostSmall, smiSmall)
	}
	// Reduce costs at least as much as bcast at the same size on SMI.
	if cell(t, rd, len(rd.Rows)-1, 1) < cell(t, b, len(b.Rows)-1, 1) {
		t.Fatal("large reduce should not be cheaper than bcast")
	}
	// 8 ranks cost more than 4 ranks for the same collective.
	lastB := len(b.Rows) - 1
	if cell(t, b, lastB, 1) <= cell(t, b, lastB, 2) {
		t.Fatal("bcast to 8 ranks should exceed 4 ranks")
	}
}

func TestFig13Shape(t *testing.T) {
	r := runQuick(t, "fig13")
	for i := range r.Rows {
		sp := cell(t, r, i, 3)
		if sp < 1.6 || sp > 2.4 {
			t.Fatalf("row %v speedup %f outside ~2x band", r.Rows[i], sp)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r := runQuick(t, "fig15")
	// Speedups must be ordered: base < 4-bank ~ 4-FPGA < 4x4 < 8 FPGA.
	s := make([]float64, len(r.Rows))
	for i := range r.Rows {
		s[i] = cell(t, r, i, 2)
	}
	if s[0] != 1.0 {
		t.Fatalf("baseline speedup = %f", s[0])
	}
	if !(s[1] > 2 && s[2] > 2) {
		t.Fatalf("single-resource scaling too weak: %v", s)
	}
	if !(s[3] > 1.5*s[1]) {
		t.Fatalf("banks+FPGAs should multiply: %v", s)
	}
	if !(s[4] > 1.3*s[3]) {
		t.Fatalf("8 FPGAs should extend scaling: %v", s)
	}
	// "1 bank/4 FPGAs" and "4 banks/1 FPGA" should be within ~25% of
	// each other (paper: both 3.5x).
	if ratio := s[2] / s[1]; ratio < 0.75 || ratio > 1.33 {
		t.Fatalf("bank vs FPGA equivalence broken: %v", s)
	}
}

func TestFig16Shape(t *testing.T) {
	r := runQuick(t, "fig16")
	last := len(r.Rows) - 1
	ratio := cell(t, r, last, 3)
	if ratio < 1.5 {
		t.Fatalf("8 ranks should approach 2x over 4 ranks at large grids, got %f", ratio)
	}
	// Time per point falls (or at least does not grow) with grid size as
	// fixed overheads amortize.
	if cell(t, r, last, 1) > cell(t, r, 0, 1)*1.05 {
		t.Fatal("per-point time should amortize with grid size")
	}
}

func TestScalingShape(t *testing.T) {
	r := runQuick(t, "scaling") // Quick: 8 ranks only, both workloads
	if len(r.Rows) != 2 {
		t.Fatalf("quick scaling should have 2 rows (stencil, bcast at 8 ranks), got %d", len(r.Rows))
	}
	for i := range r.Rows {
		if skipped := cell(t, r, i, 3); skipped <= 0 {
			t.Errorf("%s run fast-forwarded no cycles", r.Rows[i][0])
		}
	}
	if r.JSON == nil {
		t.Fatal("scaling must carry its machine-readable BENCH_scaling.json payload")
	}
	if !strings.Contains(string(r.JSON), `"scheduler": "dense"`) {
		t.Error("the JSON payload must record the dense baseline rows alongside the event rows")
	}
}

func TestReportPrint(t *testing.T) {
	r := &Report{
		ID: "x", Title: "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed report missing %q:\n%s", want, out)
		}
	}
}

func TestAblateRShape(t *testing.T) {
	r := runQuick(t, "ablate-r")
	// Bandwidth grows with R; injection latency falls with R.
	for i := 1; i < len(r.Rows); i++ {
		if cell(t, r, i, 1) <= cell(t, r, i-1, 1) {
			t.Fatalf("bandwidth should grow with R: %v", r.Rows)
		}
		if cell(t, r, i, 2) >= cell(t, r, i-1, 2) {
			t.Fatalf("injection latency should fall with R: %v", r.Rows)
		}
	}
}

func TestAblateCreditShape(t *testing.T) {
	r := runQuick(t, "ablate-credit")
	for i := 1; i < len(r.Rows); i++ {
		if cell(t, r, i, 1) >= cell(t, r, i-1, 1) {
			t.Fatalf("reduce time should fall with larger credit tiles: %v", r.Rows)
		}
	}
	// Diminishing returns: the last doubling helps far less than the first.
	first := cell(t, r, 0, 1) - cell(t, r, 1, 1)
	last := cell(t, r, len(r.Rows)-2, 1) - cell(t, r, len(r.Rows)-1, 1)
	if last >= first {
		t.Fatalf("credit benefit should diminish: first %f, last %f", first, last)
	}
}

func TestAblateRoutingShape(t *testing.T) {
	r := runQuick(t, "ablate-routing")
	if r.Rows[0][3] != "NO" {
		t.Fatalf("shortest-path on the torus should have a CDG cycle: %v", r.Rows[0])
	}
	if r.Rows[1][3] != "yes" {
		t.Fatalf("up*/down* must be deadlock-free: %v", r.Rows[1])
	}
	// On the 2x4 torus up*/down* should not dilate paths by more than 2x.
	if cell(t, r, 1, 1) > 2*cell(t, r, 0, 1) {
		t.Fatalf("excessive up*/down* dilation: %v", r.Rows)
	}
}

func TestAblateBufferShape(t *testing.T) {
	r := runQuick(t, "ablate-buffer")
	first := cell(t, r, 0, 1)
	last := cell(t, r, len(r.Rows)-1, 1)
	if last >= first {
		t.Fatalf("larger buffers should let the sender finish earlier: %v", r.Rows)
	}
	if last > 0.5*first {
		t.Fatalf("a message-sized buffer should cut sender time at least 2x: %v", r.Rows)
	}
}

func TestAblateTreeShape(t *testing.T) {
	r := runQuick(t, "ablate-tree")
	for i := range r.Rows {
		if sp := cell(t, r, i, 3); sp <= 1.0 {
			t.Fatalf("tree should beat linear for %s: %v", r.Rows[i][0], r.Rows[i])
		}
	}
}

func TestAblateFlowControlShape(t *testing.T) {
	r := runQuick(t, "ablate-flowcontrol")
	if r.Rows[0][2] != "DEADLOCK" {
		t.Fatalf("eager with a tiny buffer should deadlock: %v", r.Rows[0])
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i][2] != "ok" {
			t.Fatalf("row %v should complete", r.Rows[i])
		}
	}
	// Credited with a small buffer trades bulk throughput for safety; a
	// moderate buffer recovers most of it.
	small := cell(t, r, 2, 4)
	moderate := cell(t, r, 3, 4)
	if moderate >= small {
		t.Fatalf("larger credited buffer should speed the bulk transfer: %v", r.Rows)
	}
}

func TestAblateArbiterShape(t *testing.T) {
	r := runQuick(t, "ablate-arbiter")
	rrBW, skipBW := cell(t, r, 0, 1), cell(t, r, 1, 1)
	if skipBW <= rrBW {
		t.Fatalf("skip-idle should raise bandwidth: %f vs %f", skipBW, rrBW)
	}
	// Skip-idle should approach the 35 Gbit/s payload peak.
	if skipBW < 30 {
		t.Fatalf("skip-idle bandwidth = %f, want near the payload peak", skipBW)
	}
	if cell(t, r, 1, 3) >= cell(t, r, 0, 3) {
		t.Fatal("skip-idle should also lower injection latency")
	}
}

func TestAblateSwitchingShape(t *testing.T) {
	r := runQuick(t, "ablate-switching")
	pktBW, circBW := cell(t, r, 0, 1), cell(t, r, 1, 1)
	if circBW <= pktBW {
		t.Fatalf("circuit switching should raise payload bandwidth: %f vs %f", circBW, pktBW)
	}
	pktCtl, circCtl := cell(t, r, 0, 2), cell(t, r, 1, 2)
	if circCtl <= pktCtl {
		t.Fatalf("circuit switching should delay the concurrent message: %f vs %f", circCtl, pktCtl)
	}
}

func TestStreamingShape(t *testing.T) {
	r := runQuick(t, "streaming") // Quick: 3 sizes x 4 modes
	if len(r.Rows) != 12 {
		t.Fatalf("quick streaming should have 12 rows (3 sizes x 4 modes), got %d", len(r.Rows))
	}
	// The acceptance gate: at >=4 KiB the streaming path must finish in
	// at most half the cycles of the credited packet path on the 3-hop bus.
	for _, m := range []string{"streaming_speedup_4K", "streaming_speedup_32K"} {
		if sp, ok := r.Metrics[m]; !ok || sp < 2 {
			t.Errorf("%s = %f, want >= 2 (metrics %v)", m, sp, r.Metrics)
		}
	}
	// The switchover rationale: the advantage must grow with message size.
	if r.Metrics["streaming_speedup_32K"] <= r.Metrics["streaming_speedup_1K"] {
		t.Errorf("streaming advantage should grow with size: %v", r.Metrics)
	}
	if r.JSON == nil {
		t.Fatal("streaming must carry its machine-readable BENCH_streaming.json payload")
	}
	for _, want := range []string{`"mode": "packet"`, `"mode": "circuit"`, `"mode": "streaming"`, `"stream_fragments"`} {
		if !strings.Contains(string(r.JSON), want) {
			t.Errorf("JSON payload missing %s", want)
		}
	}
}

func TestMetricNameSanitization(t *testing.T) {
	r := &Report{}
	r.metric("speedup_1 bank / 1 FPGA", 1.5)
	if _, ok := r.Metrics["speedup_1_bank_1_FPGA"]; !ok {
		t.Fatalf("metric name not sanitized: %v", r.Metrics)
	}
	for name := range r.Metrics {
		if strings.ContainsAny(name, " \t/") {
			t.Fatalf("metric %q contains forbidden characters", name)
		}
	}
}

func TestExtScatterGatherShape(t *testing.T) {
	r := runQuick(t, "ext-scattergather")
	// SMI beats the host at small sizes for both collectives.
	if cell(t, r, 0, 1) >= cell(t, r, 0, 3) || cell(t, r, 0, 2) >= cell(t, r, 0, 4) {
		t.Fatalf("SMI should win small scatter/gather: %v", r.Rows[0])
	}
	// Time grows with size.
	last := len(r.Rows) - 1
	if cell(t, r, last, 1) <= cell(t, r, 0, 1) || cell(t, r, last, 2) <= cell(t, r, 0, 2) {
		t.Fatalf("collective time should grow with size: %v", r.Rows)
	}
}

func TestAblateTransportShape(t *testing.T) {
	r := runQuick(t, "ablate-transport") // Quick: 8:1 incast only
	// Row 0/1 are the 8:1 incast pair: receiver-driven must cut the tail.
	sdTail, rdTail := cell(t, r, 0, 5), cell(t, r, 1, 5)
	if rdTail >= sdTail {
		t.Fatalf("receiver-driven tail %f not below sender-driven credited %f", rdTail, sdTail)
	}
	if sp := r.Metrics["incast_tail_speedup_8"]; sp <= 1 {
		t.Fatalf("incast_tail_speedup_8 = %f, want > 1", sp)
	}
	// Grants: zero on every sender-driven row, nonzero on paced
	// receiver-driven rows, zero on the unpaced receiver-driven bcast.
	for i, row := range r.Rows {
		grants := cell(t, r, i, 7)
		switch {
		case row[2] == "sender-driven" && grants != 0:
			t.Errorf("sender-driven row %v reports grants", row)
		case row[2] == "receiver-driven" && row[0] != "bcast" && grants == 0:
			t.Errorf("receiver-driven row %v issued no grants", row)
		case row[2] == "receiver-driven" && row[0] == "bcast" && grants != 0:
			t.Errorf("unpaced bcast row %v issued grants", row)
		}
	}
	// The unpaced bcast pair must agree cycle for cycle.
	var bcast []float64
	for i, row := range r.Rows {
		if row[0] == "bcast" {
			bcast = append(bcast, cell(t, r, i, 4))
		}
	}
	if len(bcast) != 2 || bcast[0] != bcast[1] {
		t.Fatalf("bcast rows diverged: %v", bcast)
	}
	if r.JSON == nil {
		t.Fatal("ablate-transport must carry its machine-readable BENCH_transport.json payload")
	}
	if r.JSONName != "BENCH_transport.json" {
		t.Fatalf("ablate-transport writes %q, want BENCH_transport.json", r.JSONName)
	}
	var doc transportJSON
	if err := json.Unmarshal(r.JSON, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.FaultLegRejected {
		t.Fatal("receiver-driven fault leg was not recorded as rejected")
	}
	for _, row := range doc.Rows {
		if row.HostCPUs < 1 || row.GoMaxProcs < 1 {
			t.Fatalf("row %s/%s missing host provenance", row.Workload, row.Transport)
		}
	}
}

func TestAblateFaults(t *testing.T) {
	rep := runQuick(t, "ablate-faults")
	// Row 1 is the drop=0 run; it must match the pristine row 0 cycle
	// for cycle (the experiment itself also enforces this).
	if cell(t, rep, 0, 1) != cell(t, rep, 1, 1) {
		t.Errorf("drop=0 run not timing-transparent: %v vs %v", rep.Rows[0][1], rep.Rows[1][1])
	}
	last := len(rep.Rows) - 1
	if rep.Rows[last][6] != "1" {
		t.Errorf("killed-cable stencil reported %s failovers, want 1", rep.Rows[last][6])
	}
	if cell(t, rep, last, 7) == 0 {
		t.Error("failover rescued no packets")
	}
}
