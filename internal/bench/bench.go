// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment produces a Report with the same rows
// or series the paper presents, alongside the paper's published numbers
// where applicable, so EXPERIMENTS.md can compare shape (who wins, by
// what factor, where crossovers fall) directly.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options control an experiment run.
type Options struct {
	// Quick trims sweeps for fast runs (unit tests, -short benches).
	Quick bool
	// Ranks restricts rank-count sweeps (the scaling experiment) to the
	// listed sizes; empty means the experiment's default sweep.
	Ranks []int
	// Workload restricts multi-workload experiments (the scaling
	// experiment) to one workload; empty means all.
	Workload string
	// Shards overrides the shard count of the sharded-scheduler rows in
	// rank sweeps (0 = the experiment's default of 4).
	Shards int
	// Transport restricts the transport ablation to one transport
	// ("sender-driven" or "receiver-driven"); empty measures both.
	Transport string
}

// Report is the regenerated form of one table or figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics carries headline numbers for benchmark reporting
	// (go test -bench surfaces them via b.ReportMetric).
	Metrics map[string]float64
	// JSON, when non-nil, is a machine-readable form of the report;
	// smibench writes it next to the working directory as
	// BENCH_<id>.json, or as JSONName when set. Tests never write it.
	JSON []byte
	// JSONName overrides the file name smibench writes JSON to.
	JSONName string
}

// metric records a headline number. Names are sanitized to be legal
// benchmark metric units (no whitespace).
func (r *Report) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	clean := strings.Map(func(c rune) rune {
		switch c {
		case ' ', '\t', '/':
			return '_'
		default:
			return c
		}
	}, name)
	for strings.Contains(clean, "__") {
		clean = strings.ReplaceAll(clean, "__", "_")
	}
	r.Metrics[clean] = v
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Options) (*Report, error)) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// Experiments lists all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		var ids []string
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have: %s)", id, strings.Join(ids, ", "))
	}
	return e, nil
}

// formatting helpers

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func human(bytes int64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%dM", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%dK", bytes>>10)
	default:
		return fmt.Sprintf("%d", bytes)
	}
}

// parseF parses a formatted cell back into a float (0 on failure).
func parseF(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%g", &v)
	return v
}
