package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/service"
)

func init() {
	register("service", "smid throughput: concurrent identical-topology jobs through the worker pool and route cache", serviceBench)
}

// waitDone blocks until the job completes (an error state fails the
// batch).
func waitDone(job *service.Job, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		_, changed, terminal := job.EventsSince(0)
		if terminal {
			st := job.Status()
			if st.State != service.StateDone {
				return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in state %s", job.ID(), job.State())
		}
		select {
		case <-changed:
		case <-time.After(time.Second):
		}
	}
}

// serviceRow is one (workers, jobs) measurement of the in-process smid
// service.
type serviceRow struct {
	Workers      int     `json:"workers"`
	Jobs         int     `json:"jobs"`
	HostCPUs     int     `json:"host_cpus"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	WallMs       float64 `json:"wall_ms"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	CacheHits    uint64  `json:"route_cache_hits"`
	CacheMisses  uint64  `json:"route_cache_misses"`
	CacheHitRate float64 `json:"route_cache_hit_rate"`
}

type serviceJSON struct {
	Description string       `json:"description"`
	Workload    string       `json:"workload"`
	Ranks       int          `json:"ranks"`
	Rows        []serviceRow `json:"rows"`
}

// serviceBench drives batches of identical-topology stencil jobs through
// an in-process smid service at growing worker counts. Every job after
// the first reuses the cached routing tables, so the hit rate must be
// (jobs-1)/jobs; throughput quantifies what the worker pool adds over
// serial execution.
func serviceBench(opts Options) (*Report, error) {
	ranks := 16
	jobs := 16
	size, steps := 64, 8 // heavy enough that the pool, not setup, dominates
	workerSet := []int{1, 2, 4}
	if opts.Quick {
		jobs = 6
		size, steps = 0, 0 // workload defaults
		workerSet = []int{1, 2}
	}

	r := &Report{
		ID:     "service",
		Title:  "smid service throughput: identical-topology jobs sharing one cached routing table",
		Header: []string{"workers", "jobs", "wall ms", "jobs/s", "cache hits", "hit rate"},
		Notes: []string{
			"every batch submits identical stencil jobs; the first computes the routing tables,",
			"every later job must be a route-cache hit (the batch fails otherwise)",
		},
	}
	doc := serviceJSON{
		Description: "smibench service: batches of identical stencil jobs through an in-process smid service; route tables are computed once per batch and shared",
		Workload:    "stencil",
		Ranks:       ranks,
	}

	spec := service.JobSpec{Workload: "stencil", Ranks: ranks, Size: size, Steps: steps}
	for _, workers := range workerSet {
		svc := service.New(service.Config{
			Workers: workers, QueueDepth: jobs, ProgressEvery: -1,
		})
		start := time.Now()
		submitted := make([]*service.Job, 0, jobs)
		for i := 0; i < jobs; i++ {
			job, err := svc.Submit(spec)
			if err != nil {
				return nil, fmt.Errorf("service bench: submit %d: %w", i, err)
			}
			submitted = append(submitted, job)
		}
		for _, job := range submitted {
			if err := waitDone(job, 5*time.Minute); err != nil {
				return nil, fmt.Errorf("service bench: %w", err)
			}
		}
		wall := time.Since(start)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := svc.Shutdown(ctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("service bench: %w", err)
		}
		cs := svc.Stats().RouteCache
		if want := uint64(jobs - 1); cs.Hits != want {
			return nil, fmt.Errorf("service bench: %d workers: want %d route-cache hits for %d identical jobs, got %d (misses %d)",
				workers, want, jobs, cs.Hits, cs.Misses)
		}
		row := serviceRow{
			Workers: workers, Jobs: jobs,
			HostCPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
			WallMs:      float64(wall.Nanoseconds()) / 1e6,
			JobsPerSec:  float64(jobs) / wall.Seconds(),
			CacheHits:   cs.Hits,
			CacheMisses: cs.Misses,
		}
		row.CacheHitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
		doc.Rows = append(doc.Rows, row)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", workers), fmt.Sprintf("%d", jobs),
			f2(row.WallMs), f2(row.JobsPerSec),
			fmt.Sprintf("%d", cs.Hits), f2(row.CacheHitRate),
		})
		r.metric(fmt.Sprintf("jobs_per_sec_%dw", workers), row.JobsPerSec)
	}
	if len(doc.Rows) >= 2 {
		first, last := doc.Rows[0], doc.Rows[len(doc.Rows)-1]
		if first.JobsPerSec > 0 {
			r.metric("pool_speedup", last.JobsPerSec/first.JobsPerSec)
		}
	}
	js, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.JSON = append(js, '\n')
	return r, nil
}
