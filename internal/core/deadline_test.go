package smi

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", what)
		}
	}()
	f()
}

// TestPopDeadlineTimesOutAndRetries starves a receiver whose sender
// sleeps past the pop deadline: PopE must return a Timeout ChannelError,
// consume nothing, and deliver the full intact stream once retried.
func TestPopDeadlineTimesOutAndRetries(t *testing.T) {
	topo, err := topology.Bus(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Topology: topo,
		Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	const patience = 400
	const senderDelay = 3000
	c.OnRank(0, "tx", func(x *Ctx) {
		x.Sleep(senderDelay) // long enough that early pops must time out
		ch, err := x.OpenSend(ChannelOpts{Count: n, Type: Int, Dst: 1, Port: 0})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			Push(ch, int32(i))
		}
	})
	var got []int32
	timeouts := 0
	c.OnRank(1, "rx", func(x *Ctx) {
		ch, err := x.OpenRecv(ChannelOpts{
			Count: n, Type: Int, Src: 0, Port: 0,
			Opts: []ChannelOption{WithDeadline(patience)},
		})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			for {
				v, err := PopE[int32](ch)
				if err == nil {
					got = append(got, v)
					break
				}
				if !IsTimeout(err) {
					t.Errorf("pop %d: want timeout, got %v", i, err)
					return
				}
				var ce *ChannelError
				if !errors.As(err, &ce) || ce.Op != "pop" || ce.Rank != 1 || ce.Peer != 0 {
					t.Errorf("pop %d: malformed error %+v", i, err)
					return
				}
				timeouts++
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	checkStream(t, got, n)
	if timeouts == 0 {
		t.Fatalf("sender slept %d cycles but a %d-cycle pop deadline never fired", senderDelay, patience)
	}
}

// TestPushDeadlineTimesOut fills the transport toward an absent receiver
// until a deadlined PushE reports Timeout instead of blocking forever.
func TestPushDeadlineTimesOut(t *testing.T) {
	topo, err := topology.Bus(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Topology: topo,
		Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int, BufferElems: 8}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var timedOut bool
	c.OnRank(0, "tx", func(x *Ctx) {
		const n = 4000
		ch, err := x.OpenSend(ChannelOpts{
			Count: n, Type: Int, Dst: 1, Port: 0,
			Opts: []ChannelOption{WithDeadline(1000)},
		})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if err := ch.PushE(int64AsBits(i)); err != nil {
				if !IsTimeout(err) {
					t.Errorf("push %d: want timeout, got %v", i, err)
				}
				timedOut = true
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("pushed an unbounded stream into a sink-less network without timing out")
	}
}

func int64AsBits(i int) uint64 { return uint64(uint32(int32(i))) }

// TestPeerUnreachableFailsFast opens channels across a cut network: the
// open succeeds (it is zero-overhead bookkeeping) but the first
// operation returns PeerUnreachable instead of blocking.
func TestPeerUnreachableFailsFast(t *testing.T) {
	topo, err := topology.Bus(2)
	if err != nil {
		t.Fatal(err)
	}
	cut := topo.Without(topo.Connections[0]) // two devices, zero cables
	c, err := NewCluster(Config{
		Topology: cut,
		Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.OnRank(0, "tx", func(x *Ctx) {
		ch, err := x.OpenSend(ChannelOpts{Count: 4, Type: Int, Dst: 1, Port: 0})
		if err != nil {
			t.Error(err)
			return
		}
		if err := ch.PushE(1); !IsPeerUnreachable(err) {
			t.Errorf("push across a cut: want PeerUnreachable, got %v", err)
		}
	})
	c.OnRank(1, "rx", func(x *Ctx) {
		ch, err := x.OpenRecv(ChannelOpts{Count: 4, Type: Int, Src: 0, Port: 0})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := ch.PopE(); !IsPeerUnreachable(err) {
			t.Errorf("pop across a cut: want PeerUnreachable, got %v", err)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMisusePanicsVsErrors pins down the API contract split: conditions
// a correct program cannot hit panic (programming errors), conditions a
// correct program can observe at runtime return errors.
func TestMisusePanicsVsErrors(t *testing.T) {
	t.Run("double open is an error", func(t *testing.T) {
		c := twoRankCluster(t, PortSpec{Port: 0, Type: Int})
		c.OnRank(0, "t", func(x *Ctx) {
			if _, err := x.OpenSend(ChannelOpts{Count: 2, Type: Int, Dst: 1, Port: 0}); err != nil {
				t.Error(err)
				return
			}
			if _, err := x.OpenSend(ChannelOpts{Count: 2, Type: Int, Dst: 1, Port: 0}); err == nil {
				t.Error("second open of a busy port succeeded")
			}
		})
		drainRank1(c, 0)
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("push past count panics", func(t *testing.T) {
		c := twoRankCluster(t, PortSpec{Port: 0, Type: Int})
		c.OnRank(0, "t", func(x *Ctx) {
			ch, err := x.OpenSend(ChannelOpts{Count: 1, Type: Int, Dst: 1, Port: 0})
			if err != nil {
				t.Error(err)
				return
			}
			Push(ch, int32(7))
			mustPanic(t, "push past count", func() { Push(ch, int32(8)) })
		})
		drainRank1(c, 1)
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("pop past count panics", func(t *testing.T) {
		c := twoRankCluster(t, PortSpec{Port: 0, Type: Int})
		c.OnRank(0, "t", func(x *Ctx) {
			ch, err := x.OpenSend(ChannelOpts{Count: 1, Type: Int, Dst: 1, Port: 0})
			if err != nil {
				t.Error(err)
				return
			}
			Push(ch, int32(7))
		})
		c.OnRank(1, "r", func(x *Ctx) {
			ch, err := x.OpenRecv(ChannelOpts{Count: 1, Type: Int, Src: 0, Port: 0})
			if err != nil {
				t.Error(err)
				return
			}
			Pop[int32](ch)
			mustPanic(t, "pop past count", func() { Pop[int32](ch) })
		})
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("credited half duplex violation is an error", func(t *testing.T) {
		c := twoRankCluster(t, PortSpec{Port: 0, Type: Int, Credited: true, BufferElems: 16})
		c.OnRank(0, "t", func(x *Ctx) {
			if _, err := x.OpenSend(ChannelOpts{Count: 64, Type: Int, Dst: 1, Port: 0}); err != nil {
				t.Error(err)
				return
			}
			// The reverse direction carries credits; claiming it is misuse.
			if _, err := x.OpenRecv(ChannelOpts{Count: 64, Type: Int, Src: 1, Port: 0}); err == nil {
				t.Error("recv open on the credit return path succeeded")
			}
		})
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("wrong source packet panics the run", func(t *testing.T) {
		topo, err := topology.Bus(3)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCluster(Config{
			Topology: topo,
			Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.OnRank(0, "imposter", func(x *Ctx) {
			ch, err := x.OpenSend(ChannelOpts{Count: 1, Type: Int, Dst: 1, Port: 0})
			if err != nil {
				t.Error(err)
				return
			}
			Push(ch, int32(1))
		})
		c.OnRank(1, "victim", func(x *Ctx) {
			// Expects traffic from rank 2; rank 0's packet is a program bug.
			ch, err := x.OpenRecv(ChannelOpts{Count: 1, Type: Int, Src: 2, Port: 0})
			if err != nil {
				t.Error(err)
				return
			}
			Pop[int32](ch)
		})
		_, err = c.Run()
		if err == nil || !strings.Contains(err.Error(), "expected") {
			t.Fatalf("mismatched source must fail the run with a diagnostic, got %v", err)
		}
	})
}

func twoRankCluster(t *testing.T, ports ...PortSpec) *Cluster {
	t.Helper()
	topo, err := topology.Bus(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{Topology: topo, Program: ProgramSpec{Ports: ports}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// drainRank1 registers a rank-1 program popping n ints from rank 0 (or
// an empty program for n == 0) so two-rank misuse tests terminate.
func drainRank1(c *Cluster, n int) {
	c.OnRank(1, "drain", func(x *Ctx) {
		if n == 0 {
			return
		}
		ch, err := x.OpenRecv(ChannelOpts{Count: n, Type: Int, Src: 0, Port: 0})
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			Pop[int32](ch)
		}
	})
}

// TestClusterFailedUnblocksChannelOps is the fault-surface acceptance
// test: killing the only cable of a two-rank bus makes the repair
// impossible (the surviving topology is disconnected), which must wake
// both blocked channel operations with a ClusterFailed ChannelError —
// promptly, well before their deadlines — rather than quiescing the
// cluster into a deadlock report. The rank programs recover, so the run
// finishes cleanly with the failure recorded in Stats.
func TestClusterFailedUnblocksChannelOps(t *testing.T) {
	topo, err := topology.Bus(2)
	if err != nil {
		t.Fatal(err)
	}
	conn := topo.Connections[0]
	const killAt = 2000
	const patience = 1_000_000 // generous: failure must beat this, not ride it
	c, err := NewCluster(Config{
		Topology: topo,
		Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
		Faults: &fault.Spec{Events: []fault.Event{
			{Link: fmt.Sprintf("%s->%s", conn.A, conn.B), Kind: fault.Kill, At: killAt},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000 // far more traffic than fits before the kill
	var sendErr, recvErr error
	var sendErrAt, recvErrAt int64
	c.OnRank(0, "tx", func(x *Ctx) {
		ch, err := x.OpenSend(ChannelOpts{
			Count: n, Type: Int, Dst: 1, Port: 0,
			Opts: []ChannelOption{WithDeadline(patience)},
		})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if err := ch.PushE(uint64(uint32(i))); err != nil {
				sendErr, sendErrAt = err, x.Now()
				return // recover: abandon the transfer
			}
		}
	})
	c.OnRank(1, "rx", func(x *Ctx) {
		ch, err := x.OpenRecv(ChannelOpts{
			Count: n, Type: Int, Src: 0, Port: 0,
			Opts: []ChannelOption{WithDeadline(patience)},
		})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if _, err := ch.PopE(); err != nil {
				recvErr, recvErrAt = err, x.Now()
				return
			}
		}
	})
	st, err := c.Run()
	if err != nil {
		t.Fatalf("recovering rank programs must finish cleanly, got %v", err)
	}
	if !st.ClusterFailed {
		t.Fatalf("stats must record the cluster failure: %+v", st)
	}
	for side, e := range map[string]error{"send": sendErr, "recv": recvErr} {
		if !IsClusterFailed(e) {
			t.Fatalf("%s: want ClusterFailed, got %v", side, e)
		}
	}
	// The abort wake is immediate; it must not wait out the deadline.
	for side, at := range map[string]int64{"send": sendErrAt, "recv": recvErrAt} {
		if at < killAt || at > killAt+patience/2 {
			t.Fatalf("%s: failure observed at cycle %d, kill was at %d (deadline %d)", side, at, killAt, patience)
		}
	}
	if c.FailureCause() == nil || !strings.Contains(c.FailureCause().Error(), "disconnected") {
		t.Fatalf("FailureCause = %v", c.FailureCause())
	}
}

// TestClusterFailedSurfacesCauseNotDeadlock runs the same impossible
// repair without any recovery code or deadlines: the blocking Push/Pop
// wrappers panic with the ChannelError, and Run must surface the repair
// failure as the cause instead of a deadlock diagnosis.
func TestClusterFailedSurfacesCauseNotDeadlock(t *testing.T) {
	topo, err := topology.Bus(2)
	if err != nil {
		t.Fatal(err)
	}
	conn := topo.Connections[0]
	c, err := NewCluster(Config{
		Topology: topo,
		Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
		Faults: &fault.Spec{Events: []fault.Event{
			{Link: fmt.Sprintf("%s->%s", conn.A, conn.B), Kind: fault.Kill, At: 2000},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	c.OnRank(0, "tx", func(x *Ctx) {
		ch, err := x.OpenSend(ChannelOpts{Count: n, Type: Int, Dst: 1, Port: 0})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			Push(ch, int32(i))
		}
	})
	c.OnRank(1, "rx", func(x *Ctx) {
		ch, err := x.OpenRecv(ChannelOpts{Count: n, Type: Int, Src: 0, Port: 0})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			Pop[int32](ch)
		}
	})
	_, err = c.Run()
	if err == nil {
		t.Fatal("an unrepairable cluster with unrecovered ranks must fail the run")
	}
	var dl *sim.DeadlockError
	if errors.As(err, &dl) {
		t.Fatalf("cluster failure misdiagnosed as deadlock: %v", err)
	}
	if !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("run error must carry the repair failure, got %v", err)
	}
}

// TestArmedDeadlineTimingParity is the determinism acceptance test: a
// fault-free run whose channels carry (never-firing) deadlines must be
// cycle-identical to the same run without them, under both the event
// and the dense scheduler — armed deadlines are scheduled wakes, not
// per-cycle polls, and a stale wake must not perturb fast-forwarding.
func TestArmedDeadlineTimingParity(t *testing.T) {
	topo, err := topology.Torus2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	run := func(kind sim.SchedulerKind, patience int64) (Stats, []int32) {
		t.Helper()
		c, err := NewCluster(Config{
			Topology:      topo,
			Program:       ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
			RoutingPolicy: routing.UpDown,
			Scheduler:     kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		var opts []ChannelOption
		if patience > 0 {
			opts = append(opts, WithDeadline(patience))
		}
		c.OnRank(0, "tx", func(x *Ctx) {
			ch, err := x.OpenSend(ChannelOpts{Count: n, Type: Int, Dst: 3, Port: 0, Opts: opts})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				Push(ch, int32(i))
			}
		})
		var got []int32
		c.OnRank(3, "rx", func(x *Ctx) {
			ch, err := x.OpenRecv(ChannelOpts{Count: n, Type: Int, Src: 0, Port: 0, Opts: opts})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				got = append(got, Pop[int32](ch))
			}
		})
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st, got
	}

	const patience = 5_000_000 // armed on every op, never fires
	base, got := run(sim.SchedEvent, 0)
	checkStream(t, got, n)
	for name, st := range map[string]Stats{
		"event+deadline": first(run(sim.SchedEvent, patience)),
		"dense":          first(run(sim.SchedDense, 0)),
		"dense+deadline": first(run(sim.SchedDense, patience)),
	} {
		if st.Cycles != base.Cycles {
			t.Errorf("%s: %d cycles, want %d — armed deadlines perturbed timing", name, st.Cycles, base.Cycles)
		}
	}
	// Stronger than end-to-end cycles: the event scheduler must also do
	// the same amount of work (stale deadline wakes never execute).
	evD, _ := run(sim.SchedEvent, patience)
	if evD.Sched.CyclesExecuted != base.Sched.CyclesExecuted {
		t.Errorf("armed deadlines changed executed cycles: %d vs %d",
			evD.Sched.CyclesExecuted, base.Sched.CyclesExecuted)
	}
}

func first(st Stats, _ []int32) Stats { return st }
