package smi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"repro/internal/packet"
	"repro/internal/topology"
)

func TestReduceDoublePrecision(t *testing.T) {
	const n, ranks = 30, 3
	c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Reduce, Type: Double, ReduceOp: Add})
	c.SPMD("dreduce", func(x *Ctx) {
		ch, err := x.OpenReduceChannel(n, Double, Add, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			contrib := float64(x.Rank()) + float64(i)*0.125
			bits, ok := ch.Reduce(packet.DoubleBits(contrib))
			if ok {
				want := 3*(float64(i)*0.125) + 3 // 0+1+2
				if got := packet.BitsDouble(bits); math.Abs(got-want) > 1e-12 {
					t.Errorf("element %d = %g, want %g", i, got, want)
					return
				}
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	// Scatter chunks out, transform locally, gather back: the classic
	// distributed map pattern, exercising both collectives in sequence
	// on the same cluster run.
	const chunk, ranks = 9, 4
	c := busCluster(t, ranks,
		PortSpec{Port: 0, Kind: Scatter, Type: Int},
		PortSpec{Port: 1, Kind: Gather, Type: Int},
	)
	var got []uint64
	c.SPMD("maproundtrip", func(x *Ctx) {
		w := x.CommWorld()
		sc, err := x.OpenScatterChannel(chunk, Int, 0, 0, w)
		if err != nil {
			t.Error(err)
			return
		}
		if sc.Root() {
			for i := 0; i < chunk*ranks; i++ {
				sc.Push(uint64(i))
			}
		}
		local := make([]uint64, chunk)
		for i := range local {
			local[i] = sc.Pop() * 10 // transform
		}
		gc, err := x.OpenGatherChannel(chunk, Int, 1, 0, w)
		if err != nil {
			t.Error(err)
			return
		}
		for _, v := range local {
			gc.Push(v)
		}
		if gc.Root() {
			for i := 0; i < chunk*ranks; i++ {
				got = append(got, gc.Pop())
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint64(i*10) {
			t.Fatalf("element %d = %d, want %d", i, v, i*10)
		}
	}
}

func TestScatterNonRootPushPanics(t *testing.T) {
	c := busCluster(t, 2, PortSpec{Port: 0, Kind: Scatter, Type: Int})
	c.SPMD("bad", func(x *Ctx) {
		ch, _ := x.OpenScatterChannel(2, Int, 0, 0, x.CommWorld())
		if !ch.Root() {
			ch.Push(1) // must panic
		}
		_ = ch
	})
	if _, err := c.Run(); err == nil {
		t.Fatal("non-root scatter push should fail the run")
	}
}

func TestVecWidthSpeedsUpTransfer(t *testing.T) {
	run := func(vec int) int64 {
		topo, _ := topology.Bus(2)
		c, err := NewCluster(Config{
			Topology: topo,
			Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int, VecWidth: vec, BufferElems: 1024}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 7000
		c.OnRank(0, "s", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(n, Int, 1, 0, x.CommWorld())
			for i := 0; i < n; i++ {
				ch.PushInt(1)
			}
		})
		c.OnRank(1, "r", func(x *Ctx) {
			ch, _ := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
			for i := 0; i < n; i++ {
				ch.PopInt()
			}
		})
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	narrow := run(1)
	wide := run(8)
	// A scalar kernel pays one cycle per element; an 8-wide kernel is
	// limited by the transport (~1.5 cycles/packet of 7 elements).
	if float64(narrow) < 2.5*float64(wide) {
		t.Fatalf("vectorization speedup too small: %d vs %d cycles", narrow, wide)
	}
}

func TestRankResourcesAccounting(t *testing.T) {
	c := busCluster(t, 2,
		PortSpec{Port: 0, Type: Int},
		PortSpec{Port: 1, Kind: Bcast, Type: Float},
		PortSpec{Port: 2, Kind: Reduce, Type: Float, ReduceOp: Add},
	)
	rr := c.RankResources(0)
	if rr.Interconnect.LUTs <= 0 || rr.Kernels.LUTs <= 0 {
		t.Fatalf("transport resources missing: %+v", rr)
	}
	if rr.Supports.DSPs != 6 {
		t.Fatalf("FP32 SUM support should use 6 DSPs, got %d", rr.Supports.DSPs)
	}
	total := rr.Total()
	if total.LUTs != rr.Interconnect.LUTs+rr.Kernels.LUTs+rr.Supports.LUTs {
		t.Fatal("total does not add up")
	}
}

func TestPinIface(t *testing.T) {
	topo, _ := topology.Torus2D(2, 4)
	c, err := NewCluster(Config{
		Topology: topo,
		Program: ProgramSpec{Ports: []PortSpec{
			{Port: 0, Type: Int, Iface: 3, PinIface: true},
			{Port: 1, Type: Int}, // auto
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ranks[0].eps[0].spec.Iface; got != 3 {
		t.Fatalf("pinned port on iface %d, want 3", got)
	}
	if got := c.ranks[0].eps[1].spec.Iface; got != 1 {
		t.Fatalf("auto port on iface %d, want 1 (round-robin index)", got)
	}
}

func TestTraceOutput(t *testing.T) {
	topo, _ := topology.Bus(2)
	var buf bytes.Buffer
	c, err := NewCluster(Config{
		Topology: topo,
		Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
		Trace:    &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.OnRank(0, "s", func(x *Ctx) {
		ch, _ := x.OpenSendChannel(1, Int, 1, 0, x.CommWorld())
		ch.PushInt(42)
	})
	c.OnRank(1, "r", func(x *Ctx) {
		ch, _ := x.OpenRecvChannel(1, Int, 0, 0, x.CommWorld())
		ch.PopInt()
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Tracing is optional plumbing; the run must simply not break with
	// it enabled.
}

func TestStatsTraffic(t *testing.T) {
	const n = 700 // 100 packets
	c := busCluster(t, 4, PortSpec{Port: 0, Type: Int})
	c.OnRank(0, "s", func(x *Ctx) {
		ch, _ := x.OpenSendChannel(n, Int, 3, 0, x.CommWorld())
		for i := 0; i < n; i++ {
			ch.PushInt(0)
		}
	})
	c.OnRank(3, "r", func(x *Ctx) {
		ch, _ := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
		for i := 0; i < n; i++ {
			ch.PopInt()
		}
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 100 packets crossing 3 links each = 300 link deliveries.
	if st.PacketsDelivered != 300 {
		t.Fatalf("delivered = %d, want 300", st.PacketsDelivered)
	}
	if st.Micros <= 0 {
		t.Fatal("missing time stats")
	}
}

func TestManyRanksLargeCluster(t *testing.T) {
	// A 4x4 torus (16 ranks) all-to-neighbor exchange: scale smoke test.
	topo, err := topology.Torus2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Topology: topo,
		Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	c.SPMD("shift", func(x *Ctx) {
		next := (x.Rank() + 5) % x.Size()
		prev := (x.Rank() + x.Size() - 5) % x.Size()
		chs, err := x.OpenSendChannel(n, Int, next, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			chs.PushInt(int32(x.Rank()))
		}
		chr, err := x.OpenRecvChannel(n, Int, prev, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if got := chr.PopInt(); got != int32(prev) {
				t.Errorf("rank %d got %d, want %d", x.Rank(), got, prev)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGatherFromManyRanksOrdering(t *testing.T) {
	// Gather enforces rank order at the root even when later ranks are
	// "ready" earlier (the Fig 5 sequencing).
	const chunk, ranks = 5, 6
	c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Gather, Type: Int})
	c.SPMD("gather", func(x *Ctx) {
		// Higher ranks push immediately; rank 1 is artificially slow.
		if x.Rank() == 1 {
			x.Sleep(2000)
		}
		ch, err := x.OpenGatherChannel(chunk, Int, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < chunk; i++ {
			ch.Push(uint64(x.Rank()*100 + i))
		}
		if ch.Root() {
			for i := 0; i < chunk*ranks; i++ {
				want := uint64((i/chunk)*100 + i%chunk)
				if got := ch.Pop(); got != want {
					t.Errorf("gathered %d = %d, want %d", i, got, want)
					return
				}
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[PortKind]string{
		P2P: "p2p", Bcast: "bcast", Reduce: "reduce", Scatter: "scatter", Gather: "gather",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	for o, want := range map[Op]string{Add: "SMI_ADD", Max: "SMI_MAX", Min: "SMI_MIN"} {
		if o.String() != want {
			t.Errorf("%v = %q", o, o.String())
		}
	}
	if fmt.Sprint(Comm{base: 1, size: 3}) != "comm[1..4)" {
		t.Error("comm string format")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Ranks enter the barrier at very different times; none may leave
	// before the last one entered.
	c := busCluster(t, 4,
		PortSpec{Port: 0, Kind: Reduce, Type: Int, ReduceOp: Add},
		PortSpec{Port: 1, Kind: Bcast, Type: Int},
	)
	var lastEnter, firstLeave int64
	c.SPMD("barrier", func(x *Ctx) {
		x.Sleep(int64(x.Rank()) * 1000) // staggered arrival
		enter := x.Now()
		if enter > lastEnter {
			lastEnter = enter
		}
		if err := Barrier(x, 0, 1, x.CommWorld()); err != nil {
			t.Error(err)
			return
		}
		leave := x.Now()
		if firstLeave == 0 || leave < firstLeave {
			firstLeave = leave
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if firstLeave < lastEnter {
		t.Fatalf("rank left the barrier at %d before the last entered at %d", firstLeave, lastEnter)
	}
}

func TestBarrierRepeated(t *testing.T) {
	c := busCluster(t, 3,
		PortSpec{Port: 0, Kind: Reduce, Type: Int, ReduceOp: Add},
		PortSpec{Port: 1, Kind: Bcast, Type: Int},
	)
	c.SPMD("barriers", func(x *Ctx) {
		for i := 0; i < 5; i++ {
			if err := Barrier(x, 0, 1, x.CommWorld()); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	const n, ranks = 40, 4
	c := busCluster(t, ranks,
		PortSpec{Port: 0, Kind: Reduce, Type: Int, ReduceOp: Add},
		PortSpec{Port: 1, Kind: Bcast, Type: Int},
	)
	c.SPMD("allreduce", func(x *Ctx) {
		err := AllReduce(x, n, Int, Add, 0, 1, x.CommWorld(),
			func(i int) uint64 { return uint64(uint32(int32(x.Rank()*100 + i))) },
			func(i int, bits uint64) {
				want := int32(ranks*(ranks-1)/2*100 + ranks*i)
				if got := packet.BitsInt(bits); got != want {
					t.Errorf("rank %d element %d = %d, want %d", x.Rank(), i, got, want)
				}
			})
		if err != nil {
			t.Error(err)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceTreePorts(t *testing.T) {
	// AllReduce composes with tree-based collective ports unchanged.
	const n, ranks = 25, 8
	c := busCluster(t, ranks,
		PortSpec{Port: 0, Kind: Reduce, Type: Float, ReduceOp: Max, Tree: true},
		PortSpec{Port: 1, Kind: Bcast, Type: Float, Tree: true},
	)
	c.SPMD("allreduce", func(x *Ctx) {
		err := AllReduce(x, n, Float, Max, 0, 1, x.CommWorld(),
			func(i int) uint64 { return uint64(packet.FloatBits(float32(x.Rank()) - float32(i))) },
			func(i int, bits uint64) {
				want := float32(ranks-1) - float32(i)
				if got := packet.BitsFloat(bits); got != want {
					t.Errorf("rank %d element %d = %g, want %g", x.Rank(), i, got, want)
				}
			})
		if err != nil {
			t.Error(err)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkStats(t *testing.T) {
	const n = 7000 // 1000 packets over one hop
	c := busCluster(t, 3, PortSpec{Port: 0, Type: Int, VecWidth: 8, BufferElems: 1024})
	c.OnRank(0, "s", func(x *Ctx) {
		ch, _ := x.OpenSendChannel(n, Int, 1, 0, x.CommWorld())
		for i := 0; i < n; i++ {
			ch.PushInt(0)
		}
	})
	c.OnRank(1, "r", func(x *Ctx) {
		ch, _ := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
		for i := 0; i < n; i++ {
			ch.PopInt()
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	stats := c.LinkStats()
	if len(stats) != 4 { // 2 cables x 2 directions
		t.Fatalf("links = %d, want 4", len(stats))
	}
	var busiest LinkStats
	for _, s := range stats {
		if s.Delivered > busiest.Delivered {
			busiest = s
		}
	}
	if busiest.Delivered != 1000 {
		t.Fatalf("hot link carried %d packets, want 1000", busiest.Delivered)
	}
	if busiest.Utilization <= 0 || busiest.Utilization > 1 {
		t.Fatalf("utilization = %f", busiest.Utilization)
	}
}

func TestChromeTraceOutput(t *testing.T) {
	topo, _ := topology.Bus(2)
	var buf bytes.Buffer
	c, err := NewCluster(Config{
		Topology:    topo,
		Program:     ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
		ChromeTrace: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.OnRank(0, "s", func(x *Ctx) {
		ch, _ := x.OpenSendChannel(50, Int, 1, 0, x.CommWorld())
		for i := 0; i < 50; i++ {
			ch.PushInt(int32(i))
		}
	})
	c.OnRank(1, "r", func(x *Ctx) {
		ch, _ := x.OpenRecvChannel(50, Int, 0, 0, x.CommWorld())
		for i := 0; i < 50; i++ {
			ch.PopInt()
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if _, ok := out["traceEvents"]; !ok {
		t.Fatal("traceEvents missing")
	}
}

func TestCtxHelpers(t *testing.T) {
	c := busCluster(t, 4, PortSpec{Port: 0, Type: Int})
	c.OnRank(2, "helpers", func(x *Ctx) {
		if x.Rank() != 2 || x.Size() != 4 {
			t.Errorf("identity wrong: %d/%d", x.Rank(), x.Size())
		}
		if x.CommRank(x.CommWorld()) != 2 {
			t.Error("world comm rank wrong")
		}
		sub, _ := x.CommWorld().Sub(0, 2)
		if x.CommRank(sub) != -1 {
			t.Error("non-member comm rank should be -1")
		}
		start := x.Now()
		x.Tick()
		if x.Now() != start+1 {
			t.Error("Tick should cost one cycle")
		}
		// Streaming 256 bytes from one 64B/cycle bank costs 4 cycles.
		before := x.Now()
		x.StreamMem(256, 1)
		if x.Now()-before != 4 {
			t.Errorf("StreamMem cost %d cycles, want 4", x.Now()-before)
		}
		if x.Board().MemBanks != 4 {
			t.Error("board accessor wrong")
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCyclesSurfacesFromCluster(t *testing.T) {
	topo, _ := topology.Bus(2)
	c, err := NewCluster(Config{
		Topology:  topo,
		Program:   ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
		MaxCycles: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.OnRank(0, "spin", func(x *Ctx) {
		for i := 0; i < 10000; i++ {
			x.Tick()
		}
	})
	if _, err := c.Run(); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}
