package smi

import (
	"repro/internal/resources"
)

// RankResources is the estimated FPGA resource footprint of the SMI
// infrastructure on one rank, split as in the paper's Tables 1 and 2.
type RankResources struct {
	// Interconnect covers the FIFOs between applications, communication
	// kernels, and network ports (Table 1 row "Interconn.").
	Interconnect resources.Usage
	// Kernels covers the CKS/CKR communication kernels (Table 1 row
	// "C. K.").
	Kernels resources.Usage
	// Supports covers the collective support kernels (Table 2).
	Supports resources.Usage
}

// Total returns the combined usage.
func (r RankResources) Total() resources.Usage {
	return r.Interconnect.Add(r.Kernels).Add(r.Supports)
}

// RankResources estimates the SMI resource footprint at the given rank
// from the hardware the cluster builder actually instantiated.
func (c *Cluster) RankResources(rank int) RankResources {
	rs := c.ranks[rank]
	appFifos := 0
	var sup resources.Usage
	for _, ep := range rs.eps {
		switch ep.spec.Kind {
		case P2P:
			appFifos += 2 // app send + app recv
		default:
			appFifos += 4 // app pair + support kernel's CK-side pair
		}
		switch ep.spec.Kind {
		case Bcast:
			sup = sup.Add(resources.BcastSupport())
		case Reduce:
			sup = sup.Add(resources.ReduceSupport(ep.spec.Type))
		case Scatter:
			sup = sup.Add(resources.ScatterSupport())
		case Gather:
			sup = sup.Add(resources.GatherSupport())
		}
	}
	inter, ck := resources.Transport(rs.dev.Shape(), appFifos)
	return RankResources{Interconnect: inter, Kernels: ck, Supports: sup}
}
