package smi

import "fmt"

// Barrier synchronizes every rank of the communicator: no rank returns
// before all ranks have entered. It is composed from the streaming
// collectives — a one-element Reduce into the communicator's first rank
// followed by a one-element Bcast from it — so it needs one Reduce port
// (Int, Add) and one Bcast port (Int) declared in the program.
//
// SMI programs are responsible for their own phase coordination: §3.3
// leaves correctness "even if the system provides no buffering" to the
// user, and a rank that runs far ahead can fill shared transport FIFOs
// with a later phase's eager traffic that earlier phases then deadlock
// behind. A barrier between phases bounds that skew.
func Barrier(x *Ctx, reducePort, bcastPort int, comm Comm) error {
	rc, err := x.OpenReduceChannel(1, Int, Add, reducePort, 0, comm)
	if err != nil {
		return fmt.Errorf("smi: barrier reduce: %w", err)
	}
	rc.ReduceInt(1)
	bc, err := x.OpenBcastChannel(1, Int, bcastPort, 0, comm)
	if err != nil {
		return fmt.Errorf("smi: barrier bcast: %w", err)
	}
	bc.BcastInt(1)
	return nil
}

// AllReduce reduces count elements contributed through contribute and
// delivers the combined result to every rank through consume, composed
// from a Reduce into the communicator's first rank and a Bcast back out.
// It needs one Reduce port (matching dt and op) and one Bcast port
// (matching dt).
//
// contribute(i) supplies this rank's i-th element; consume(i, bits)
// receives the i-th combined element. Elements move in lockstep — every
// rank holds its (i+1)-th contribution until it has consumed the i-th
// result — which is provably deadlock-free for any buffer size but pays
// a network round trip per element. Applications that need bulk
// all-reduce throughput should run the reduce and broadcast phases in
// separate kernels, as a hardware design would.
func AllReduce(x *Ctx, count int, dt Datatype, op Op, reducePort, bcastPort int, comm Comm,
	contribute func(i int) uint64, consume func(i int, bits uint64)) error {
	rc, err := x.OpenReduceChannel(count, dt, op, reducePort, 0, comm)
	if err != nil {
		return fmt.Errorf("smi: allreduce reduce: %w", err)
	}
	bc, err := x.OpenBcastChannel(count, dt, bcastPort, 0, comm)
	if err != nil {
		return fmt.Errorf("smi: allreduce bcast: %w", err)
	}
	// Lockstep at packet granularity: the broadcast flushes on packet
	// boundaries, so element-wise lockstep would strand results inside a
	// partially-packed packet and deadlock.
	chunk := dt.ElemsPerPacket()
	for i := 0; i < count; i += chunk {
		m := chunk
		if count-i < m {
			m = count - i
		}
		if rc.Root() {
			for j := 0; j < m; j++ {
				bits, _ := rc.Reduce(contribute(i + j))
				bc.Bcast(bits)
				consume(i+j, bits)
			}
		} else {
			for j := 0; j < m; j++ {
				rc.Reduce(contribute(i + j))
			}
			for j := 0; j < m; j++ {
				consume(i+j, bc.Bcast(0))
			}
		}
	}
	return nil
}
