package smi

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// streamRun executes a src->dst stream of n ints and returns the stats
// and the received values.
func streamRun(t *testing.T, cfg Config, src, dst, n int) (Stats, []int32) {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.OnRank(src, "tx", func(x *Ctx) {
		ch, err := x.OpenSendChannel(n, Int, dst, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			ch.PushInt(int32(i))
		}
	})
	var got []int32
	c.OnRank(dst, "rx", func(x *Ctx) {
		ch, err := x.OpenRecvChannel(n, Int, src, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			got = append(got, ch.PopInt())
		}
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st, got
}

func checkStream(t *testing.T, got []int32, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("received %d elements, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("element %d = %d: lost, duplicated or reordered data", i, v)
		}
	}
}

// TestZeroFaultSpecTimingParity is the acceptance bar for the fault
// subsystem: attaching a fault spec that schedules nothing (and thereby
// enabling CRCs, sequence numbers, acks and timers on every link) must
// reproduce the pristine cluster's cycle counts bit for bit.
func TestZeroFaultSpecTimingParity(t *testing.T) {
	topo, err := topology.Torus2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Topology: topo, Program: ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
		RoutingPolicy: routing.UpDown}

	const n = 4000
	pristine, got := streamRun(t, base, 0, 3, n)
	checkStream(t, got, n)

	zeroSpec := base
	zeroSpec.Faults = &fault.Spec{Seed: 12345} // seed alone schedules nothing
	withSpec, got2 := streamRun(t, zeroSpec, 0, 3, n)
	checkStream(t, got2, n)

	forced := base
	forced.Reliable = true
	withProto, got3 := streamRun(t, forced, 0, 3, n)
	checkStream(t, got3, n)

	if withSpec.Cycles != pristine.Cycles || withProto.Cycles != pristine.Cycles {
		t.Fatalf("reliability layer perturbed fault-free timing: pristine=%d zero-spec=%d reliable=%d cycles",
			pristine.Cycles, withSpec.Cycles, withProto.Cycles)
	}
	if withSpec.Retransmits != 0 || withSpec.CrcErrors != 0 {
		t.Fatalf("zero-fault run did repair work: %+v", withSpec)
	}
	if withSpec.PacketsDelivered != pristine.PacketsDelivered {
		t.Fatalf("delivered %d packets with the protocol, %d without", withSpec.PacketsDelivered, pristine.PacketsDelivered)
	}
}

// TestP2PRecoversFromDropAndFlap runs a point-to-point transfer through
// a scripted packet drop and a transient link flap: the payload must
// arrive complete, in order and duplicate-free, with the repair cost
// visible in the counters.
func TestP2PRecoversFromDropAndFlap(t *testing.T) {
	topo, err := topology.Bus(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topology: topo,
		Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
		Faults: &fault.Spec{Events: []fault.Event{
			{Kind: fault.Drop, At: 500},              // every link drops one packet
			{Kind: fault.Flap, At: 900, Until: 1100}, // and loses carrier for 200 cycles
		}},
	}
	const n = 5000
	st, got := streamRun(t, cfg, 0, 1, n)
	checkStream(t, got, n)
	if st.Retransmits == 0 {
		t.Fatalf("faults were injected but nothing was retransmitted: %+v", st)
	}
	if st.FaultsInjected.Dropped == 0 {
		t.Fatalf("scripted drop never fired: %+v", st.FaultsInjected)
	}
	if st.FaultsInjected.FlapLost == 0 {
		t.Fatalf("flap lost nothing (no traffic in the window?): %+v", st.FaultsInjected)
	}
	if st.Failovers != 0 {
		t.Fatalf("transient faults must not trigger failover: %+v", st)
	}
}

// TestBcastUnderScriptedFaults checks an 8-rank broadcast survives drops
// and a flap with every rank observing the exact root payload.
func TestBcastUnderScriptedFaults(t *testing.T) {
	topo, err := topology.Bus(8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Topology: topo,
		Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Kind: Bcast, Type: Int}}},
		Faults: &fault.Spec{Events: []fault.Event{
			{Kind: fault.Drop, At: 400},
			{Kind: fault.Flap, At: 1200, Until: 1400},
			{Kind: fault.Drop, At: 2500},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	c.SPMD("bcast", func(x *Ctx) {
		ch, err := x.OpenBcastChannel(n, Int, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			v := int32(-1)
			if ch.Root() {
				v = int32(i * 7)
			}
			if got := ch.BcastInt(v); got != int32(i*7) {
				t.Errorf("rank %d element %d = %d, want %d", x.Rank(), i, got, i*7)
				return
			}
		}
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retransmits == 0 {
		t.Fatalf("faulted broadcast did not retransmit: %+v", st)
	}
}

// TestFailoverReroutesAndRescues kills a cable on the routed path of an
// in-progress bulk transfer on a 2x4 torus. The failover controller
// must detect the death, regenerate CDG-verified up*/down* routes on the
// surviving topology, rescue the in-flight window, and complete the
// transfer without loss or duplication.
func TestFailoverReroutesAndRescues(t *testing.T) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	const src, dst = 0, 5
	// Find the first cable on the fault-free route so the kill is
	// guaranteed to hit live traffic.
	pre, err := routing.Compute(topo, routing.UpDown)
	if err != nil {
		t.Fatal(err)
	}
	exit := pre.At(src, dst)
	if exit < 0 {
		t.Fatalf("no route %d->%d", src, dst)
	}
	nb, ok := topo.Neighbor(src, exit)
	if !ok {
		t.Fatal("routed exit interface is not cabled")
	}
	deadLink := fmt.Sprintf("%d:%d->%d:%d", src, exit, nb.Device, nb.Iface)

	cfg := Config{
		Topology:      topo,
		Program:       ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
		RoutingPolicy: routing.UpDown,
		Faults: &fault.Spec{Events: []fault.Event{
			{Link: deadLink, Kind: fault.Kill, At: 3000},
		}},
	}
	const n = 30000
	st, got := streamRun(t, cfg, src, dst, n)
	checkStream(t, got, n)
	if st.Failovers != 1 {
		t.Fatalf("want exactly one failover, got %+v", st)
	}
	if st.RescuedPackets == 0 {
		t.Fatalf("a kill mid-stream must strand packets to rescue: %+v", st)
	}
	if st.FailoverCycles <= 0 {
		t.Fatalf("failover must charge repair time: %+v", st)
	}
	if st.PacketsDropped != 0 {
		t.Fatalf("failover dropped packets on a still-connected topology: %+v", st)
	}
}

// TestFailoverShardParity runs the kill-mid-stream failover under the
// sharded schedulers: the barrier-stepped coordinator must reproduce the
// dense fault manager cycle for cycle — death detection, route
// regeneration, barrier-time packet rescue, and resume — with the stream
// delivered intact and identical failover accounting.
func TestFailoverShardParity(t *testing.T) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	const src, dst, n = 0, 5, 30000
	pre, err := routing.Compute(topo, routing.UpDown)
	if err != nil {
		t.Fatal(err)
	}
	exit := pre.At(src, dst)
	nb, ok := topo.Neighbor(src, exit)
	if !ok {
		t.Fatal("routed exit interface is not cabled")
	}
	deadLink := fmt.Sprintf("%d:%d->%d:%d", src, exit, nb.Device, nb.Iface)

	run := func(kind sim.SchedulerKind, shards int) Stats {
		cfg := Config{
			Topology:      topo,
			Program:       ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
			RoutingPolicy: routing.UpDown,
			Scheduler:     kind,
			Shards:        shards,
			Faults: &fault.Spec{Events: []fault.Event{
				{Link: deadLink, Kind: fault.Kill, At: 3000},
			}},
		}
		st, got := streamRun(t, cfg, src, dst, n)
		checkStream(t, got, n)
		return st
	}
	dense := run(sim.SchedDense, 0)
	if dense.Failovers != 1 || dense.RescuedPackets == 0 {
		t.Fatalf("reference run did not exercise the failover: %+v", dense)
	}
	for _, v := range []struct {
		name   string
		kind   sim.SchedulerKind
		shards int
	}{
		{"shard", sim.SchedShard, 4},
		{"shard-adaptive", sim.SchedShardAdaptive, 4},
	} {
		st := run(v.kind, v.shards)
		if st.Cycles != dense.Cycles {
			t.Errorf("%s finished at cycle %d, dense at %d", v.name, st.Cycles, dense.Cycles)
		}
		if st.Failovers != dense.Failovers || st.RescuedPackets != dense.RescuedPackets ||
			st.FailoverCycles != dense.FailoverCycles {
			t.Errorf("%s failover accounting (failovers=%d rescued=%d cycles=%d) diverges from dense (%d/%d/%d)",
				v.name, st.Failovers, st.RescuedPackets, st.FailoverCycles,
				dense.Failovers, dense.RescuedPackets, dense.FailoverCycles)
		}
		if st.Sched.Shards != 4 || st.Sched.Syncs == 0 {
			t.Errorf("%s did not run sharded: shards=%d syncs=%d", v.name, st.Sched.Shards, st.Sched.Syncs)
		}
	}
}

// TestFailoverSurvivesOnEveryTorusCable repeats the kill for every cable
// of the torus (whether or not it carries the stream), checking route
// regeneration always yields a connected, deadlock-free result and the
// transfer always completes.
func TestFailoverSurvivesOnEveryTorusCable(t *testing.T) {
	topo, err := topology.Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	const src, dst, n = 0, 5, 8000
	for i, conn := range topo.Connections {
		i, conn := i, conn
		t.Run(fmt.Sprintf("cable%d", i), func(t *testing.T) {
			deadLink := fmt.Sprintf("%s->%s", conn.A, conn.B)
			cfg := Config{
				Topology:      topo,
				Program:       ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int}}},
				RoutingPolicy: routing.UpDown,
				Faults: &fault.Spec{Events: []fault.Event{
					{Link: deadLink, Kind: fault.Kill, At: 2000},
				}},
			}
			st, got := streamRun(t, cfg, src, dst, n)
			checkStream(t, got, n)
			if st.PacketsDropped != 0 {
				t.Fatalf("dropped packets: %+v", st)
			}
		})
	}
}
