package smi

import (
	"fmt"

	"repro/internal/packet"
)

// collectiveBase holds the state shared by all collective channel types:
// packing toward the support kernel and unpacking from it, with the same
// cycle accounting as point-to-point channels.
type collectiveBase struct {
	x    *Ctx
	ep   *endpoint
	dt   Datatype
	epp  int
	vec  int
	port int

	comm   Comm
	root   int // global root rank
	isRoot bool

	// Packing state (toward support kernel).
	cur packet.Packet
	n   int

	// Unpacking state (from support kernel).
	rcv  packet.Packet
	have int
	pos  int
}

func (x *Ctx) openCollective(kind PortKind, count int, dt Datatype, port, root int, comm Comm) (*collectiveBase, error) {
	ep, err := x.endpointFor(port, kind, dt, count, comm)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= comm.size {
		return nil, fmt.Errorf("smi: root %d outside %v", root, comm)
	}
	if comm.size > packet.MaxRanks {
		return nil, fmt.Errorf("smi: communicator of %d ranks exceeds packet header limit", comm.size)
	}
	if ep.inUseSend || ep.inUseRecv {
		return nil, fmt.Errorf("smi: rank %d port %d already has an open channel", x.rank, port)
	}
	ep.inUseSend, ep.inUseRecv = true, true
	b := &collectiveBase{
		x: x, ep: ep, dt: dt, epp: dt.ElemsPerPacket(), vec: ep.spec.VecWidth,
		port: port, comm: comm, root: comm.Global(root), isRoot: comm.Global(root) == x.rank,
	}
	// Deliver the dynamic channel configuration to the support kernel.
	cfg := packet.EncodeConfig(uint8(x.rank), uint8(port), packet.Config{
		Root:  uint8(b.root),
		Count: uint32(count),
		Base:  uint8(comm.base),
		Size:  uint8(comm.size),
	})
	ep.appSend.PushProc(x.proc, cfg)
	return b, nil
}

func (b *collectiveBase) close() {
	b.ep.inUseSend, b.ep.inUseRecv = false, false
}

// pushElem packs one element toward the support kernel, flushing on
// packet boundaries and at flushAfter (total elements after which the
// current packet must flush even if partial, e.g. a scatter chunk end).
func (b *collectiveBase) pushElem(bits uint64, flushAfter bool) {
	b.cur.PutElem(b.n, b.dt, bits)
	b.n++
	if b.n == b.epp || flushAfter {
		b.flush()
	}
}

func (b *collectiveBase) flush() {
	if b.n == 0 {
		return
	}
	b.cur.Src = uint8(b.x.rank)
	b.cur.Dst = uint8(b.x.rank) // the support kernel retargets
	b.cur.Port = uint8(b.port)
	b.cur.Op = packet.OpData
	b.cur.Count = uint8(b.n)
	cycles := int64((b.n + b.vec - 1) / b.vec)
	if cycles > 1 {
		b.x.proc.Sleep(cycles - 1)
	}
	b.ep.appSend.PushProc(b.x.proc, b.cur)
	b.cur = packet.Packet{}
	b.n = 0
}

// popElemPaired unpacks one element delivered by the support kernel
// without consuming a cycle: the caller's matching push already paid for
// the loop iteration (the SMI_Reduce root path, where contribution and
// result move through independent ports in one pipelined iteration).
func (b *collectiveBase) popElemPaired() uint64 {
	if b.have == 0 {
		pkt := b.ep.appRecv.PopProcPaired(b.x.proc)
		if pkt.Op != packet.OpData || pkt.Count == 0 {
			panic(fmt.Sprintf("smi: rank %d port %d: unexpected %v packet from support kernel", b.x.rank, b.port, pkt.Op))
		}
		b.rcv = pkt
		b.have = int(pkt.Count)
		b.pos = 0
	}
	bits := b.rcv.Elem(b.pos, b.dt)
	b.pos++
	b.have--
	return bits
}

// popElem unpacks one element delivered by the support kernel.
func (b *collectiveBase) popElem() uint64 {
	if b.have == 0 {
		pkt := b.ep.appRecv.PopProc(b.x.proc)
		if pkt.Op != packet.OpData || pkt.Count == 0 {
			panic(fmt.Sprintf("smi: rank %d port %d: unexpected %v packet from support kernel", b.x.rank, b.port, pkt.Op))
		}
		cycles := int64((int(pkt.Count) + b.vec - 1) / b.vec)
		if cycles > 1 {
			b.x.proc.Sleep(cycles - 1)
		}
		b.rcv = pkt
		b.have = int(pkt.Count)
		b.pos = 0
	}
	bits := b.rcv.Elem(b.pos, b.dt)
	b.pos++
	b.have--
	return bits
}

// BcastChannel is a broadcast channel (SMI_Open_bcast_channel /
// SMI_Bcast). The root streams count elements; every other member of the
// communicator receives them.
type BcastChannel struct {
	b     *collectiveBase
	count int
	used  int
}

// OpenBcastChannel opens a broadcast channel for count elements of type
// dt on the given port. root is relative to comm and may be chosen at
// run time: both root and non-root hardware exist at every rank.
func (x *Ctx) OpenBcastChannel(count int, dt Datatype, port, root int, comm Comm) (*BcastChannel, error) {
	b, err := x.openCollective(Bcast, count, dt, port, root, comm)
	if err != nil {
		return nil, err
	}
	return &BcastChannel{b: b, count: count}, nil
}

// Root reports whether this rank is the broadcast root.
func (ch *BcastChannel) Root() bool { return ch.b.isRoot }

// Bcast participates in the broadcast for one element: the root pushes
// bits toward the other ranks (and gets them back unchanged); non-root
// ranks ignore bits and return the received element.
func (ch *BcastChannel) Bcast(bits uint64) uint64 {
	if ch.used >= ch.count {
		panic(fmt.Sprintf("smi: Bcast beyond message size %d on port %d", ch.count, ch.b.port))
	}
	ch.used++
	var out uint64
	if ch.b.isRoot {
		ch.b.pushElem(bits, ch.used == ch.count)
		out = bits
	} else {
		out = ch.b.popElem()
	}
	if ch.used == ch.count {
		ch.b.close()
	}
	return out
}

// BcastFloat broadcasts one float32 element.
func (ch *BcastChannel) BcastFloat(v float32) float32 {
	return packet.BitsFloat(ch.Bcast(packet.FloatBits(v)))
}

// BcastInt broadcasts one int32 element.
func (ch *BcastChannel) BcastInt(v int32) int32 {
	return packet.BitsInt(ch.Bcast(packet.IntBits(v)))
}

// ReduceChannel is a reduction channel (SMI_Open_reduce_channel /
// SMI_Reduce). Every member contributes count elements; the reduced
// result is produced at the root.
type ReduceChannel struct {
	b     *collectiveBase
	count int
	sent  int
}

// OpenReduceChannel opens a reduce channel for count elements of type dt
// with the declared reduction operation of the port. op must match the
// port's declared operation (the combinational logic is fixed hardware).
func (x *Ctx) OpenReduceChannel(count int, dt Datatype, op Op, port, root int, comm Comm) (*ReduceChannel, error) {
	ep, ok := x.c.ranks[x.rank].eps[port]
	if ok && ep.spec.Kind == Reduce && ep.spec.ReduceOp != op {
		return nil, fmt.Errorf("smi: port %d implements %v, not %v", port, ep.spec.ReduceOp, op)
	}
	b, err := x.openCollective(Reduce, count, dt, port, root, comm)
	if err != nil {
		return nil, err
	}
	return &ReduceChannel{b: b, count: count}, nil
}

// Root reports whether this rank is the reduction root.
func (ch *ReduceChannel) Root() bool { return ch.b.isRoot }

// Reduce contributes one element; at the root it returns the fully
// reduced element (ok=true), elsewhere ok=false. Elements are reduced in
// order: the i-th result combines the i-th contribution of every rank.
func (ch *ReduceChannel) Reduce(bits uint64) (result uint64, ok bool) {
	if ch.sent >= ch.count {
		panic(fmt.Sprintf("smi: Reduce beyond message size %d on port %d", ch.count, ch.b.port))
	}
	ch.sent++
	// At the root every element flushes immediately: SMI_Reduce pushes a
	// contribution and pops the result of the same element in one call,
	// so the contribution must reach the support kernel (a local-only
	// hop) before the pop. Non-root contributions pack normally.
	ch.b.pushElem(bits, ch.b.isRoot || ch.sent == ch.count)
	if ch.b.isRoot {
		result, ok = ch.b.popElemPaired(), true
	}
	if ch.sent == ch.count {
		ch.b.close()
	}
	return result, ok
}

// ReduceFloat contributes one float32 element.
func (ch *ReduceChannel) ReduceFloat(v float32) (float32, bool) {
	bits, ok := ch.Reduce(packet.FloatBits(v))
	return packet.BitsFloat(bits), ok
}

// ReduceInt contributes one int32 element.
func (ch *ReduceChannel) ReduceInt(v int32) (int32, bool) {
	bits, ok := ch.Reduce(packet.IntBits(v))
	return packet.BitsInt(bits), ok
}

// ScatterChannel distributes count elements to each member of the
// communicator from the root (SMI-style streaming Scatter). The root
// pushes comm.Size()*count elements in member-rank order; every member
// (including the root) pops its count-element chunk.
type ScatterChannel struct {
	b     *collectiveBase
	count int // per-member chunk size
	sent  int
	rcvd  int
	local []uint64 // root's own chunk, kept application-local
	lpos  int
}

// OpenScatterChannel opens a scatter channel with a per-member chunk of
// count elements of type dt.
func (x *Ctx) OpenScatterChannel(count int, dt Datatype, port, root int, comm Comm) (*ScatterChannel, error) {
	b, err := x.openCollective(Scatter, count, dt, port, root, comm)
	if err != nil {
		return nil, err
	}
	return &ScatterChannel{b: b, count: count}, nil
}

// Root reports whether this rank is the scatter root.
func (ch *ScatterChannel) Root() bool { return ch.b.isRoot }

// Push streams the next element of the root's send buffer (member-rank
// order, comm.Size()*count elements total). Only the root may push.
func (ch *ScatterChannel) Push(bits uint64) {
	if !ch.b.isRoot {
		panic(fmt.Sprintf("smi: Scatter push on non-root rank %d", ch.b.x.rank))
	}
	total := ch.count * ch.b.comm.size
	if ch.sent >= total {
		panic(fmt.Sprintf("smi: Scatter push beyond %d elements on port %d", total, ch.b.port))
	}
	member := ch.sent / ch.count
	if ch.b.comm.Global(member) == ch.b.x.rank {
		// The root's own chunk stays local; it never crosses the
		// support kernel (one cycle of datapath time still passes).
		ch.local = append(ch.local, bits)
		ch.b.x.proc.Tick()
	} else {
		chunkEnd := (ch.sent+1)%ch.count == 0
		ch.b.pushElem(bits, chunkEnd)
	}
	ch.sent++
	ch.maybeClose()
}

// Pop returns the next element of this rank's chunk.
func (ch *ScatterChannel) Pop() uint64 {
	if ch.rcvd >= ch.count {
		panic(fmt.Sprintf("smi: Scatter pop beyond chunk size %d on port %d", ch.count, ch.b.port))
	}
	ch.rcvd++
	var bits uint64
	if ch.b.isRoot {
		if ch.lpos >= len(ch.local) {
			panic("smi: Scatter root must push its own chunk before popping it")
		}
		bits = ch.local[ch.lpos]
		ch.lpos++
		ch.b.x.proc.Tick()
	} else {
		bits = ch.b.popElem()
	}
	ch.maybeClose()
	return bits
}

func (ch *ScatterChannel) maybeClose() {
	done := ch.rcvd == ch.count
	if ch.b.isRoot {
		done = done && ch.sent == ch.count*ch.b.comm.size
	}
	if done {
		ch.b.close()
	}
}

// GatherChannel collects count elements from each member at the root.
// Every member (including the root) pushes count elements; the root pops
// comm.Size()*count elements in member-rank order.
type GatherChannel struct {
	b     *collectiveBase
	count int
	sent  int
	rcvd  int
	local []uint64 // root's own contribution, kept application-local
	lpos  int
}

// OpenGatherChannel opens a gather channel with a per-member
// contribution of count elements of type dt.
func (x *Ctx) OpenGatherChannel(count int, dt Datatype, port, root int, comm Comm) (*GatherChannel, error) {
	b, err := x.openCollective(Gather, count, dt, port, root, comm)
	if err != nil {
		return nil, err
	}
	return &GatherChannel{b: b, count: count}, nil
}

// Root reports whether this rank is the gather root.
func (ch *GatherChannel) Root() bool { return ch.b.isRoot }

// Push streams the next element of this rank's contribution.
func (ch *GatherChannel) Push(bits uint64) {
	if ch.sent >= ch.count {
		panic(fmt.Sprintf("smi: Gather push beyond contribution size %d on port %d", ch.count, ch.b.port))
	}
	ch.sent++
	if ch.b.isRoot {
		ch.local = append(ch.local, bits)
		ch.b.x.proc.Tick()
	} else {
		ch.b.pushElem(bits, ch.sent == ch.count)
	}
	ch.maybeClose()
}

// Pop returns the next gathered element at the root (member-rank order).
func (ch *GatherChannel) Pop() uint64 {
	if !ch.b.isRoot {
		panic(fmt.Sprintf("smi: Gather pop on non-root rank %d", ch.b.x.rank))
	}
	total := ch.count * ch.b.comm.size
	if ch.rcvd >= total {
		panic(fmt.Sprintf("smi: Gather pop beyond %d elements on port %d", total, ch.b.port))
	}
	member := ch.rcvd / ch.count
	ch.rcvd++
	var bits uint64
	if ch.b.comm.Global(member) == ch.b.x.rank {
		if ch.lpos >= len(ch.local) {
			panic("smi: Gather root must push its contribution before popping it")
		}
		bits = ch.local[ch.lpos]
		ch.lpos++
		ch.b.x.proc.Tick()
	} else {
		bits = ch.b.popElem()
	}
	ch.maybeClose()
	return bits
}

func (ch *GatherChannel) maybeClose() {
	done := ch.sent == ch.count
	if ch.b.isRoot {
		done = done && ch.rcvd == ch.count*ch.b.comm.size
	}
	if done {
		ch.b.close()
	}
}
