package smi

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// collectiveBase holds the state shared by all collective channel types:
// packing toward the support kernel and unpacking from it, with the same
// cycle accounting as point-to-point channels.
type collectiveBase struct {
	x    *Ctx
	ep   *endpoint
	dt   Datatype
	epp  int
	vec  int
	port int

	comm   Comm
	root   int // global root rank
	isRoot bool

	// patience is the per-operation deadline in cycles (0 = none).
	patience int64

	// Packing state (toward support kernel).
	cur packet.Packet
	n   int

	// Unpacking state (from support kernel).
	rcv  packet.Packet
	have int
	pos  int
}

func (x *Ctx) openCollective(kind PortKind, count int, dt Datatype, port, root int, comm Comm, opts []ChannelOption) (*collectiveBase, error) {
	ep, err := x.endpointFor(port, kind, dt, count, comm)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= comm.size {
		return nil, fmt.Errorf("smi: root %d outside %v", root, comm)
	}
	if comm.size > packet.MaxRanks {
		return nil, fmt.Errorf("smi: communicator of %d ranks exceeds packet header limit", comm.size)
	}
	if ep.inUseSend || ep.inUseRecv {
		return nil, fmt.Errorf("smi: rank %d port %d already has an open channel", x.rank, port)
	}
	if err := x.runtimeErr("open", port, -1); err != nil {
		return nil, err
	}
	o := x.resolveOpts(opts)
	b := &collectiveBase{
		x: x, ep: ep, dt: dt, epp: dt.ElemsPerPacket(), vec: ep.spec.VecWidth,
		port: port, comm: comm, root: comm.Global(root), isRoot: comm.Global(root) == x.rank,
		patience: o.patience,
	}
	// Deliver the dynamic channel configuration to the support kernel.
	// This is the one collective open step that blocks, so it honors the
	// channel deadline; a failed open leaves the port reusable.
	cfg := packet.EncodeConfig(uint16(x.rank), uint8(port), packet.Config{
		Root:  uint16(b.root),
		Count: uint32(count),
		Base:  uint16(comm.base),
		Size:  uint16(comm.size),
	})
	ep.inUseSend, ep.inUseRecv = true, true
	if res := ep.appSend.PushProcE(x.proc, cfg, b.opDeadline()); res != sim.WaitOK {
		ep.inUseSend, ep.inUseRecv = false, false
		return nil, x.waitErr(res, "open", port, -1)
	}
	return b, nil
}

func (b *collectiveBase) close() {
	b.ep.inUseSend, b.ep.inUseRecv = false, false
}

// opDeadline converts the channel's patience into an absolute deadline
// for one operation starting now.
func (b *collectiveBase) opDeadline() int64 {
	if b.patience <= 0 {
		return sim.Never
	}
	return b.x.Now() + b.patience
}

// pushElemE packs one element toward the support kernel, flushing on
// packet boundaries and at flushAfter (total elements after which the
// current packet must flush even if partial, e.g. a scatter chunk end).
// A failed flush un-stages the element so the caller can retry.
func (b *collectiveBase) pushElemE(bits uint64, flushAfter bool, deadline int64, op string) error {
	b.cur.PutElem(b.n, b.dt, bits)
	b.n++
	if b.n == b.epp || flushAfter {
		if err := b.flushE(deadline, op); err != nil {
			b.n--
			return err
		}
	}
	return nil
}

func (b *collectiveBase) flushE(deadline int64, op string) error {
	if b.n == 0 {
		return nil
	}
	b.cur.Src = uint16(b.x.rank)
	b.cur.Dst = uint16(b.x.rank) // the support kernel retargets
	b.cur.Port = uint8(b.port)
	b.cur.Op = packet.OpData
	b.cur.Count = uint8(b.n)
	cycles := int64((b.n + b.vec - 1) / b.vec)
	if cycles > 1 {
		b.x.proc.Sleep(cycles - 1)
	}
	if res := b.ep.appSend.PushProcE(b.x.proc, b.cur, deadline); res != sim.WaitOK {
		return b.x.waitErr(res, op, b.port, -1)
	}
	b.cur = packet.Packet{}
	b.n = 0
	return nil
}

// popElemE unpacks one element delivered by the support kernel. paired
// pops consume no cycle of their own (the caller's matching push already
// paid for the loop iteration — the SMI_Reduce root path).
func (b *collectiveBase) popElemE(deadline int64, op string, paired bool) (uint64, error) {
	if b.have == 0 {
		var pkt packet.Packet
		var res sim.WaitResult
		if paired {
			pkt, res = b.ep.appRecv.PopProcPairedE(b.x.proc, deadline)
		} else {
			pkt, res = b.ep.appRecv.PopProcE(b.x.proc, deadline)
		}
		if res != sim.WaitOK {
			return 0, b.x.waitErr(res, op, b.port, -1)
		}
		if pkt.Op != packet.OpData || pkt.Count == 0 {
			panic(fmt.Sprintf("smi: rank %d port %d: unexpected %v packet from support kernel", b.x.rank, b.port, pkt.Op))
		}
		if !paired {
			cycles := int64((int(pkt.Count) + b.vec - 1) / b.vec)
			if cycles > 1 {
				b.x.proc.Sleep(cycles - 1)
			}
		}
		b.rcv = pkt
		b.have = int(pkt.Count)
		b.pos = 0
	}
	bits := b.rcv.Elem(b.pos, b.dt)
	b.pos++
	b.have--
	return bits, nil
}

// BcastChannel is a broadcast channel (SMI_Open_bcast_channel /
// SMI_Bcast). The root streams count elements; every other member of the
// communicator receives them.
type BcastChannel struct {
	b     *collectiveBase
	count int
	used  int
}

// OpenBcastChannel opens a broadcast channel for count elements of type
// dt on the given port. root is relative to comm and may be chosen at
// run time: both root and non-root hardware exist at every rank.
func (x *Ctx) OpenBcastChannel(count int, dt Datatype, port, root int, comm Comm, opts ...ChannelOption) (*BcastChannel, error) {
	b, err := x.openCollective(Bcast, count, dt, port, root, comm, opts)
	if err != nil {
		return nil, err
	}
	return &BcastChannel{b: b, count: count}, nil
}

// Root reports whether this rank is the broadcast root.
func (ch *BcastChannel) Root() bool { return ch.b.isRoot }

// Bcast participates in the broadcast for one element: the root pushes
// bits toward the other ranks (and gets them back unchanged); non-root
// ranks ignore bits and return the received element. A runtime failure
// panics with the ChannelError that BcastE would return.
func (ch *BcastChannel) Bcast(bits uint64) uint64 {
	out, err := ch.BcastE(bits)
	if err != nil {
		panic(err)
	}
	return out
}

// BcastE is Bcast with a recoverable error surface: each member returns
// the first runtime error its own operation sequence observes. A failed
// call consumes nothing and may be retried.
func (ch *BcastChannel) BcastE(bits uint64) (uint64, error) {
	if ch.used >= ch.count {
		panic(fmt.Sprintf("smi: Bcast beyond message size %d on port %d", ch.count, ch.b.port))
	}
	if err := ch.b.x.runtimeErr("bcast", ch.b.port, -1); err != nil {
		return 0, err
	}
	deadline := ch.b.opDeadline()
	ch.used++
	var out uint64
	if ch.b.isRoot {
		if err := ch.b.pushElemE(bits, ch.used == ch.count, deadline, "bcast"); err != nil {
			ch.used--
			return 0, err
		}
		out = bits
	} else {
		v, err := ch.b.popElemE(deadline, "bcast", false)
		if err != nil {
			ch.used--
			return 0, err
		}
		out = v
	}
	if ch.used == ch.count {
		ch.b.close()
	}
	return out, nil
}

// BcastFloat broadcasts one float32 element.
func (ch *BcastChannel) BcastFloat(v float32) float32 {
	return packet.BitsFloat(ch.Bcast(packet.FloatBits(v)))
}

// BcastInt broadcasts one int32 element.
func (ch *BcastChannel) BcastInt(v int32) int32 {
	return packet.BitsInt(ch.Bcast(packet.IntBits(v)))
}

// ReduceChannel is a reduction channel (SMI_Open_reduce_channel /
// SMI_Reduce). Every member contributes count elements; the reduced
// result is produced at the root.
type ReduceChannel struct {
	b     *collectiveBase
	count int
	sent  int
	// pendingPop is set at the root when a contribution was flushed but
	// the matching result pop failed: a ReduceE retry must not push the
	// contribution again.
	pendingPop bool
}

// OpenReduceChannel opens a reduce channel for count elements of type dt
// with the declared reduction operation of the port. op must match the
// port's declared operation (the combinational logic is fixed hardware).
func (x *Ctx) OpenReduceChannel(count int, dt Datatype, op Op, port, root int, comm Comm, opts ...ChannelOption) (*ReduceChannel, error) {
	ep, ok := x.c.ranks[x.rank].eps[port]
	if ok && ep.spec.Kind == Reduce && ep.spec.ReduceOp != op {
		return nil, fmt.Errorf("smi: port %d implements %v, not %v", port, ep.spec.ReduceOp, op)
	}
	b, err := x.openCollective(Reduce, count, dt, port, root, comm, opts)
	if err != nil {
		return nil, err
	}
	return &ReduceChannel{b: b, count: count}, nil
}

// Root reports whether this rank is the reduction root.
func (ch *ReduceChannel) Root() bool { return ch.b.isRoot }

// Reduce contributes one element; at the root it returns the fully
// reduced element (ok=true), elsewhere ok=false. Elements are reduced in
// order: the i-th result combines the i-th contribution of every rank.
// A runtime failure panics with the ChannelError that ReduceE would
// return.
func (ch *ReduceChannel) Reduce(bits uint64) (result uint64, ok bool) {
	result, ok, err := ch.ReduceE(bits)
	if err != nil {
		panic(err)
	}
	return result, ok
}

// ReduceE is Reduce with a recoverable error surface. A failed call may
// be retried with the same element: if the root's contribution was
// already flushed when the result pop failed, the retry skips the push
// and only re-attempts the pop.
func (ch *ReduceChannel) ReduceE(bits uint64) (result uint64, ok bool, err error) {
	if ch.sent >= ch.count && !ch.pendingPop {
		panic(fmt.Sprintf("smi: Reduce beyond message size %d on port %d", ch.count, ch.b.port))
	}
	if err := ch.b.x.runtimeErr("reduce", ch.b.port, -1); err != nil {
		return 0, false, err
	}
	deadline := ch.b.opDeadline()
	if !ch.pendingPop {
		ch.sent++
		// At the root every element flushes immediately: SMI_Reduce pushes
		// a contribution and pops the result of the same element in one
		// call, so the contribution must reach the support kernel (a
		// local-only hop) before the pop. Non-root contributions pack
		// normally.
		if err := ch.b.pushElemE(bits, ch.b.isRoot || ch.sent == ch.count, deadline, "reduce"); err != nil {
			ch.sent--
			return 0, false, err
		}
		if ch.b.isRoot {
			ch.pendingPop = true
		}
	}
	if ch.b.isRoot {
		v, perr := ch.b.popElemE(deadline, "reduce", true)
		if perr != nil {
			return 0, false, perr
		}
		ch.pendingPop = false
		result, ok = v, true
	}
	if ch.sent == ch.count {
		ch.b.close()
	}
	return result, ok, nil
}

// ReduceFloat contributes one float32 element.
func (ch *ReduceChannel) ReduceFloat(v float32) (float32, bool) {
	bits, ok := ch.Reduce(packet.FloatBits(v))
	return packet.BitsFloat(bits), ok
}

// ReduceInt contributes one int32 element.
func (ch *ReduceChannel) ReduceInt(v int32) (int32, bool) {
	bits, ok := ch.Reduce(packet.IntBits(v))
	return packet.BitsInt(bits), ok
}

// ScatterChannel distributes count elements to each member of the
// communicator from the root (SMI-style streaming Scatter). The root
// pushes comm.Size()*count elements in member-rank order; every member
// (including the root) pops its count-element chunk.
type ScatterChannel struct {
	b     *collectiveBase
	count int // per-member chunk size
	sent  int
	rcvd  int
	local []uint64 // root's own chunk, kept application-local
	lpos  int
}

// OpenScatterChannel opens a scatter channel with a per-member chunk of
// count elements of type dt.
func (x *Ctx) OpenScatterChannel(count int, dt Datatype, port, root int, comm Comm, opts ...ChannelOption) (*ScatterChannel, error) {
	b, err := x.openCollective(Scatter, count, dt, port, root, comm, opts)
	if err != nil {
		return nil, err
	}
	return &ScatterChannel{b: b, count: count}, nil
}

// Root reports whether this rank is the scatter root.
func (ch *ScatterChannel) Root() bool { return ch.b.isRoot }

// Push streams the next element of the root's send buffer (member-rank
// order, comm.Size()*count elements total). Only the root may push. A
// runtime failure panics with the ChannelError that PushE would return.
func (ch *ScatterChannel) Push(bits uint64) {
	if err := ch.PushE(bits); err != nil {
		panic(err)
	}
}

// PushE is Push with a recoverable error surface; a failed call consumes
// nothing and may be retried.
func (ch *ScatterChannel) PushE(bits uint64) error {
	if !ch.b.isRoot {
		panic(fmt.Sprintf("smi: Scatter push on non-root rank %d", ch.b.x.rank))
	}
	total := ch.count * ch.b.comm.size
	if ch.sent >= total {
		panic(fmt.Sprintf("smi: Scatter push beyond %d elements on port %d", total, ch.b.port))
	}
	if err := ch.b.x.runtimeErr("scatter", ch.b.port, -1); err != nil {
		return err
	}
	member := ch.sent / ch.count
	if ch.b.comm.Global(member) == ch.b.x.rank {
		// The root's own chunk stays local; it never crosses the
		// support kernel (one cycle of datapath time still passes).
		ch.local = append(ch.local, bits)
		ch.b.x.proc.Tick()
	} else {
		chunkEnd := (ch.sent+1)%ch.count == 0
		if err := ch.b.pushElemE(bits, chunkEnd, ch.b.opDeadline(), "scatter"); err != nil {
			return err
		}
	}
	ch.sent++
	ch.maybeClose()
	return nil
}

// Pop returns the next element of this rank's chunk. A runtime failure
// panics with the ChannelError that PopE would return.
func (ch *ScatterChannel) Pop() uint64 {
	bits, err := ch.PopE()
	if err != nil {
		panic(err)
	}
	return bits
}

// PopE is Pop with a recoverable error surface; a failed call consumes
// nothing and may be retried.
func (ch *ScatterChannel) PopE() (uint64, error) {
	if ch.rcvd >= ch.count {
		panic(fmt.Sprintf("smi: Scatter pop beyond chunk size %d on port %d", ch.count, ch.b.port))
	}
	if err := ch.b.x.runtimeErr("scatter", ch.b.port, -1); err != nil {
		return 0, err
	}
	var bits uint64
	if ch.b.isRoot {
		if ch.lpos >= len(ch.local) {
			panic("smi: Scatter root must push its own chunk before popping it")
		}
		bits = ch.local[ch.lpos]
		ch.lpos++
		ch.b.x.proc.Tick()
	} else {
		v, err := ch.b.popElemE(ch.b.opDeadline(), "scatter", false)
		if err != nil {
			return 0, err
		}
		bits = v
	}
	ch.rcvd++
	ch.maybeClose()
	return bits, nil
}

func (ch *ScatterChannel) maybeClose() {
	done := ch.rcvd == ch.count
	if ch.b.isRoot {
		done = done && ch.sent == ch.count*ch.b.comm.size
	}
	if done {
		ch.b.close()
	}
}

// GatherChannel collects count elements from each member at the root.
// Every member (including the root) pushes count elements; the root pops
// comm.Size()*count elements in member-rank order.
type GatherChannel struct {
	b     *collectiveBase
	count int
	sent  int
	rcvd  int
	local []uint64 // root's own contribution, kept application-local
	lpos  int
}

// OpenGatherChannel opens a gather channel with a per-member
// contribution of count elements of type dt.
func (x *Ctx) OpenGatherChannel(count int, dt Datatype, port, root int, comm Comm, opts ...ChannelOption) (*GatherChannel, error) {
	b, err := x.openCollective(Gather, count, dt, port, root, comm, opts)
	if err != nil {
		return nil, err
	}
	return &GatherChannel{b: b, count: count}, nil
}

// Root reports whether this rank is the gather root.
func (ch *GatherChannel) Root() bool { return ch.b.isRoot }

// Push streams the next element of this rank's contribution. A runtime
// failure panics with the ChannelError that PushE would return.
func (ch *GatherChannel) Push(bits uint64) {
	if err := ch.PushE(bits); err != nil {
		panic(err)
	}
}

// PushE is Push with a recoverable error surface; a failed call consumes
// nothing and may be retried.
func (ch *GatherChannel) PushE(bits uint64) error {
	if ch.sent >= ch.count {
		panic(fmt.Sprintf("smi: Gather push beyond contribution size %d on port %d", ch.count, ch.b.port))
	}
	if err := ch.b.x.runtimeErr("gather", ch.b.port, -1); err != nil {
		return err
	}
	if ch.b.isRoot {
		ch.local = append(ch.local, bits)
		ch.b.x.proc.Tick()
	} else {
		if err := ch.b.pushElemE(bits, ch.sent+1 == ch.count, ch.b.opDeadline(), "gather"); err != nil {
			return err
		}
	}
	ch.sent++
	ch.maybeClose()
	return nil
}

// Pop returns the next gathered element at the root (member-rank order).
// A runtime failure panics with the ChannelError that PopE would return.
func (ch *GatherChannel) Pop() uint64 {
	bits, err := ch.PopE()
	if err != nil {
		panic(err)
	}
	return bits
}

// PopE is Pop with a recoverable error surface; a failed call consumes
// nothing and may be retried.
func (ch *GatherChannel) PopE() (uint64, error) {
	if !ch.b.isRoot {
		panic(fmt.Sprintf("smi: Gather pop on non-root rank %d", ch.b.x.rank))
	}
	total := ch.count * ch.b.comm.size
	if ch.rcvd >= total {
		panic(fmt.Sprintf("smi: Gather pop beyond %d elements on port %d", total, ch.b.port))
	}
	if err := ch.b.x.runtimeErr("gather", ch.b.port, -1); err != nil {
		return 0, err
	}
	member := ch.rcvd / ch.count
	var bits uint64
	if ch.b.comm.Global(member) == ch.b.x.rank {
		if ch.lpos >= len(ch.local) {
			panic("smi: Gather root must push its contribution before popping it")
		}
		bits = ch.local[ch.lpos]
		ch.lpos++
		ch.b.x.proc.Tick()
	} else {
		v, err := ch.b.popElemE(ch.b.opDeadline(), "gather", false)
		if err != nil {
			return 0, err
		}
		bits = v
	}
	ch.rcvd++
	ch.maybeClose()
	return bits, nil
}

func (ch *GatherChannel) maybeClose() {
	done := ch.sent == ch.count
	if ch.b.isRoot {
		done = done && ch.rcvd == ch.count*ch.b.comm.size
	}
	if done {
		ch.b.close()
	}
}
