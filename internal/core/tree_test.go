package smi

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestBinomialTreeStructure(t *testing.T) {
	// Classic binomial tree over 8 nodes rooted at 0:
	// 0 -> {1,2,4}, 2 -> {3}, 4 -> {5,6}, 6 -> {7}.
	cases := []struct {
		self     int
		parent   int
		children []int
	}{
		{0, -1, []int{1, 2, 4}},
		{1, 0, nil},
		{2, 0, []int{3}},
		{3, 2, nil},
		{4, 0, []int{5, 6}},
		{5, 4, nil},
		{6, 4, []int{7}},
		{7, 6, nil},
	}
	for _, c := range cases {
		p, ch := binomialTree(8, 0, c.self)
		if p != c.parent {
			t.Errorf("node %d parent = %d, want %d", c.self, p, c.parent)
		}
		if fmt.Sprint(ch) != fmt.Sprint(c.children) {
			t.Errorf("node %d children = %v, want %v", c.self, ch, c.children)
		}
	}
}

// Property: for any size and root, the binomial tree is a spanning tree:
// every non-root node has exactly one parent, parents agree with child
// lists, and walking up always terminates at the root.
func TestBinomialTreeSpanningQuick(t *testing.T) {
	prop := func(sizeRaw, rootRaw uint8) bool {
		size := int(sizeRaw%16) + 1
		root := int(rootRaw) % size
		childCount := 0
		for v := 0; v < size; v++ {
			p, children := binomialTree(size, root, v)
			childCount += len(children)
			for _, c := range children {
				cp, _ := binomialTree(size, root, c)
				if cp != v {
					return false
				}
			}
			if v == root {
				if p != -1 {
					return false
				}
				continue
			}
			// Walk up to the root in at most depth steps.
			cur, steps := v, 0
			for cur != root {
				cur, _ = binomialTree(size, root, cur)
				if cur < 0 || steps > treeDepth(size)+1 {
					return false
				}
				steps++
			}
		}
		return childCount == size-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDepth(t *testing.T) {
	for size, want := range map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 16: 4} {
		if got := treeDepth(size); got != want {
			t.Errorf("treeDepth(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestTreeBcastCorrectness(t *testing.T) {
	for _, ranks := range []int{2, 5, 8} {
		for _, root := range []int{0, ranks - 1} {
			ranks, root := ranks, root
			t.Run(fmt.Sprintf("ranks=%d root=%d", ranks, root), func(t *testing.T) {
				const n = 60
				c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Bcast, Type: Float, Tree: true})
				c.SPMD("tbcast", func(x *Ctx) {
					ch, err := x.OpenBcastChannel(n, Float, 0, root, x.CommWorld())
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < n; i++ {
						v := float32(-1)
						if ch.Root() {
							v = float32(i) * 0.25
						}
						if got := ch.BcastFloat(v); got != float32(i)*0.25 {
							t.Errorf("rank %d element %d = %g", x.Rank(), i, got)
							return
						}
					}
				})
				if _, err := c.Run(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestTreeReduceCorrectness(t *testing.T) {
	for _, ranks := range []int{2, 5, 8} {
		for _, root := range []int{0, 2 % ranks} {
			ranks, root := ranks, root
			t.Run(fmt.Sprintf("ranks=%d root=%d", ranks, root), func(t *testing.T) {
				const n = 500 // several credit tiles with C=128
				c := busCluster(t, ranks, PortSpec{
					Port: 0, Kind: Reduce, Type: Float, ReduceOp: Add, Tree: true, CreditElems: 128,
				})
				c.SPMD("treduce", func(x *Ctx) {
					ch, err := x.OpenReduceChannel(n, Float, Add, 0, root, x.CommWorld())
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < n; i++ {
						got, ok := ch.ReduceFloat(float32(x.Rank()*n + i))
						if ok != (x.Rank() == root) {
							t.Errorf("rank %d ok=%v", x.Rank(), ok)
							return
						}
						if ok {
							want := float32(n*(ranks*(ranks-1)/2) + ranks*i)
							if got != want {
								t.Errorf("element %d = %g, want %g", i, got, want)
								return
							}
						}
					}
				})
				if _, err := c.Run(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestTreeReduceMaxMin(t *testing.T) {
	const n, ranks = 50, 6
	for _, tc := range []struct {
		op   Op
		want func(i int) int32
	}{
		{Max, func(i int) int32 { return int32((ranks-1)*10 - i) }},
		{Min, func(i int) int32 { return int32(-i) }},
	} {
		tc := tc
		t.Run(tc.op.String(), func(t *testing.T) {
			c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Reduce, Type: Int, ReduceOp: tc.op, Tree: true})
			c.SPMD("treduce", func(x *Ctx) {
				ch, err := x.OpenReduceChannel(n, Int, tc.op, 0, 1, x.CommWorld())
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					got, ok := ch.ReduceInt(int32(x.Rank()*10 - i))
					if ok && got != tc.want(i) {
						t.Errorf("element %d = %d, want %d", i, got, tc.want(i))
						return
					}
				}
			})
			if _, err := c.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTreeCollectivesRepeatedRounds(t *testing.T) {
	const n, rounds = 40, 3
	c := busCluster(t, 4,
		PortSpec{Port: 0, Kind: Bcast, Type: Int, Tree: true},
		PortSpec{Port: 1, Kind: Reduce, Type: Int, ReduceOp: Add, Tree: true},
	)
	c.SPMD("rounds", func(x *Ctx) {
		for r := 0; r < rounds; r++ {
			root := r % x.Size()
			bc, err := x.OpenBcastChannel(n, Int, 0, root, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if got := bc.BcastInt(int32(root + i)); got != int32(root+i) {
					t.Errorf("round %d rank %d element %d = %d", r, x.Rank(), i, got)
					return
				}
			}
			rc, err := x.OpenReduceChannel(n, Int, Add, 1, root, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				got, ok := rc.ReduceInt(int32(i))
				if ok && got != int32(4*i) {
					t.Errorf("round %d reduce %d = %d", r, i, got)
					return
				}
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSubCommunicator(t *testing.T) {
	const n = 30
	c := busCluster(t, 8, PortSpec{Port: 0, Kind: Bcast, Type: Int, Tree: true})
	c.SPMD("sub", func(x *Ctx) {
		comm, err := x.CommWorld().Sub(3, 5)
		if err != nil {
			t.Error(err)
			return
		}
		if !comm.Contains(x.Rank()) {
			return
		}
		ch, err := x.OpenBcastChannel(n, Int, 0, 2, comm) // root = global rank 5
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if got := ch.BcastInt(int32(9 * i)); got != int32(9*i) {
				t.Errorf("rank %d element %d = %d", x.Rank(), i, got)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeOnlyForBcastReduce(t *testing.T) {
	spec := ProgramSpec{Ports: []PortSpec{{Port: 0, Kind: Gather, Type: Int, Tree: true}}}
	if err := spec.Validate(); err == nil {
		t.Fatal("tree gather should be rejected")
	}
}

// TestTreeBcastFasterAtScale checks the point of the extension: with 8
// ranks the root's fan-out drops from 7 sequential copies to 3, so a
// large broadcast completes faster.
func TestTreeBcastFasterAtScale(t *testing.T) {
	run := func(tree bool) int64 {
		const n, ranks = 8192, 8
		c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Bcast, Type: Float, Tree: tree, BufferElems: 512})
		c.SPMD("bcast", func(x *Ctx) {
			ch, err := x.OpenBcastChannel(n, Float, 0, 0, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				ch.BcastFloat(float32(i))
			}
		})
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	linear := run(false)
	tree := run(true)
	if float64(tree) > 0.75*float64(linear) {
		t.Fatalf("tree bcast (%d cycles) should clearly beat linear (%d cycles)", tree, linear)
	}
}
