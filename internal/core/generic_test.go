package smi

import (
	"testing"

	"repro/internal/topology"
)

// TestGenericPushPopAllTypes round-trips every supported element type
// through the generic Push[T]/Pop[T] pair and checks the legacy typed
// method aliases agree with them.
func TestGenericPushPopAllTypes(t *testing.T) {
	run := func(name string, dt Datatype, send func(*SendChannel, int), recv func(*RecvChannel, int) bool) {
		t.Run(name, func(t *testing.T) {
			topo, err := topology.Bus(2)
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewCluster(Config{
				Topology: topo,
				Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: dt}}},
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 50
			c.OnRank(0, "tx", func(x *Ctx) {
				ch, err := x.OpenSend(ChannelOpts{Count: n, Type: dt, Dst: 1, Port: 0})
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					send(ch, i)
				}
			})
			c.OnRank(1, "rx", func(x *Ctx) {
				ch, err := x.OpenRecv(ChannelOpts{Count: n, Type: dt, Src: 0, Port: 0})
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					if !recv(ch, i) {
						t.Errorf("element %d corrupted", i)
						return
					}
				}
			})
			if _, err := c.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}

	run("char", Char,
		func(ch *SendChannel, i int) { Push(ch, byte(i)) },
		func(ch *RecvChannel, i int) bool { return Pop[byte](ch) == byte(i) })
	run("short", Short,
		func(ch *SendChannel, i int) { Push(ch, int16(i-25)) },
		func(ch *RecvChannel, i int) bool { return Pop[int16](ch) == int16(i-25) })
	run("int", Int,
		func(ch *SendChannel, i int) { ch.PushInt(int32(i * 3)) }, // legacy alias
		func(ch *RecvChannel, i int) bool { return Pop[int32](ch) == int32(i*3) })
	run("float", Float,
		func(ch *SendChannel, i int) { Push(ch, float32(i)/4) },
		func(ch *RecvChannel, i int) bool { return ch.PopFloat() == float32(i)/4 }) // legacy alias
	run("double", Double,
		func(ch *SendChannel, i int) { Push(ch, float64(i)*1.5) },
		func(ch *RecvChannel, i int) bool { return Pop[float64](ch) == float64(i)*1.5 })
}
