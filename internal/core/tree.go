package smi

// binomialTree computes a node's parent and children in the binomial
// tree the tree-based collectives use (the "tree-based schema for Bcast
// and Reduce" the paper names as the natural extension of its linear
// support kernels, §4.4).
//
// Ranks are communicator-relative; the tree is rooted at rootRel by
// virtually renumbering ranks so the root is 0. In virtual numbering,
// node v's parent clears v's lowest set bit, and its children are
// v + 2^j for every 2^j below that bit (all powers of two for the
// root). The returned parent is -1 for the root.
func binomialTree(size, rootRel, selfRel int) (parentRel int, childrenRel []int) {
	v := (selfRel - rootRel + size) % size
	unvirtual := func(u int) int { return (u + rootRel) % size }

	if v == 0 {
		parentRel = -1
	} else {
		parentRel = unvirtual(v & (v - 1))
	}
	// Highest child step: for the root, every power of two below size;
	// otherwise every power of two below the lowest set bit of v.
	limit := v & (-v)
	if v == 0 {
		limit = size // all powers of two below size
	}
	for step := 1; step < limit && v+step < size; step <<= 1 {
		childrenRel = append(childrenRel, unvirtual(v+step))
	}
	return parentRel, childrenRel
}

// treeDepth returns the depth of the binomial tree over size nodes
// (the number of sequential hops from the root to the deepest leaf).
func treeDepth(size int) int {
	d := 0
	for 1<<d < size {
		d++
	}
	return d
}
