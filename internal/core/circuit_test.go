package smi

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestCircuitChannelDeliversIntact(t *testing.T) {
	const n = 555 // deliberately not a multiple of any raw packing factor
	for _, dt := range []Datatype{Char, Short, Int, Float, Double} {
		dt := dt
		t.Run(dt.String(), func(t *testing.T) {
			c := busCluster(t, 4, PortSpec{Port: 0, Type: dt, Circuit: true, BufferElems: 256})
			mask := uint64(1)<<(8*dt.Size()) - 1
			if dt.Size() == 8 {
				mask = ^uint64(0)
			}
			c.OnRank(0, "s", func(x *Ctx) {
				ch, err := x.OpenSendChannel(n, dt, 3, 0, x.CommWorld())
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					ch.Push(uint64(i) * 2654435761)
				}
			})
			c.OnRank(3, "r", func(x *Ctx) {
				ch, err := x.OpenRecvChannel(n, dt, 0, 0, x.CommWorld())
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					if got := ch.Pop(); got != (uint64(i)*2654435761)&mask {
						t.Errorf("element %d corrupted: %x", i, got)
						return
					}
				}
			})
			if _, err := c.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCircuitBeatsPacketBandwidth(t *testing.T) {
	// The point of circuit switching: headerless payload packets use the
	// full 32-byte wire word, so a saturated link carries 32 bytes of
	// payload per cycle instead of 28.
	run := func(circuit bool) int64 {
		const n = 56000
		topo, _ := topology.Bus(2)
		c, err := NewCluster(Config{
			Topology: topo,
			Program: ProgramSpec{Ports: []PortSpec{
				{Port: 0, Type: Int, Circuit: circuit, VecWidth: 8, BufferElems: 4096},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.OnRank(0, "s", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(n, Int, 1, 0, x.CommWorld())
			for i := 0; i < n; i++ {
				ch.PushInt(int32(i))
			}
		})
		c.OnRank(1, "r", func(x *Ctx) {
			ch, _ := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
			for i := 0; i < n; i++ {
				ch.PopInt()
			}
		})
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	pkt := run(false)
	circ := run(true)
	if float64(circ) > 0.85*float64(pkt) {
		t.Fatalf("circuit (%d cycles) should clearly beat packet switching (%d)", circ, pkt)
	}
}

func TestCircuitBlocksConcurrentChannel(t *testing.T) {
	// The multiplexing cost: while a circuit holds a CKS, a message on a
	// second port bound to the same kernel waits for the whole circuit.
	run := func(circuit bool) int64 {
		const bulk = 14000
		topo, _ := topology.Bus(2)
		c, err := NewCluster(Config{
			Topology: topo,
			Program: ProgramSpec{Ports: []PortSpec{
				{Port: 0, Type: Int, Circuit: circuit, VecWidth: 8, BufferElems: 1024, Iface: 0, PinIface: true},
				{Port: 1, Type: Int, Iface: 0, PinIface: true},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.OnRank(0, "bulk", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(bulk, Int, 1, 0, x.CommWorld())
			for i := 0; i < bulk; i++ {
				ch.PushInt(int32(i))
			}
		})
		var ctlDone int64
		c.OnRank(0, "ctl", func(x *Ctx) {
			x.Sleep(200) // the bulk message is already flowing
			ch, _ := x.OpenSendChannel(4, Int, 1, 1, x.CommWorld())
			for i := 0; i < 4; i++ {
				ch.PushInt(int32(i))
			}
		})
		// Independent consumers: the control consumer must not gate the
		// bulk consumer, or a circuit that outlives all buffering would
		// deadlock the run (the §4.2 hazard of circuit switching).
		c.OnRank(1, "rbulk", func(x *Ctx) {
			bc, _ := x.OpenRecvChannel(bulk, Int, 0, 0, x.CommWorld())
			for i := 0; i < bulk; i++ {
				bc.PopInt()
			}
		})
		c.OnRank(1, "rctl", func(x *Ctx) {
			ctl, _ := x.OpenRecvChannel(4, Int, 0, 1, x.CommWorld())
			for i := 0; i < 4; i++ {
				ctl.PopInt()
			}
			ctlDone = x.Now()
		})
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return ctlDone
	}
	pktCtl := run(false)
	circCtl := run(true)
	// Under packet switching the control message interleaves with the
	// bulk stream; under circuit switching it waits behind the circuit.
	if float64(circCtl) < 2*float64(pktCtl) {
		t.Fatalf("circuit should delay the concurrent channel: ctl done at %d (circuit) vs %d (packet)", circCtl, pktCtl)
	}
}

func TestCircuitValidation(t *testing.T) {
	bad := ProgramSpec{Ports: []PortSpec{{Port: 0, Kind: Bcast, Type: Int, Circuit: true}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("circuit collective accepted")
	}
	bad = ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int, Circuit: true, Credited: true}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("circuit+credited accepted")
	}
}

func TestCircuitRepeatedMessages(t *testing.T) {
	const n, rounds = 100, 5
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Float, Circuit: true, BufferElems: 128})
	c.OnRank(0, "s", func(x *Ctx) {
		for r := 0; r < rounds; r++ {
			ch, err := x.OpenSendChannel(n, Float, 1, 0, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				ch.PushFloat(float32(r*n + i))
			}
		}
	})
	c.OnRank(1, "r", func(x *Ctx) {
		for r := 0; r < rounds; r++ {
			ch, err := x.OpenRecvChannel(n, Float, 0, 0, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if got := ch.PopFloat(); got != float32(r*n+i) {
					t.Errorf("round %d element %d = %g", r, i, got)
					return
				}
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCircuitShardFaultDelivery closes a long-standing coverage gap:
// circuit channels under the shard scheduler, with fault injection
// forcing the reliable layer to carry headerless raw words (whose
// op/count ride the frame sideband — see link.encodeWord). The full
// cross-scheduler parity matrix for circuit and streaming channels is
// TestStreamingSchedulerParity.
func TestCircuitShardFaultDelivery(t *testing.T) {
	const n = 1500
	topo, err := topology.Bus(4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Topology:  topo,
		Program:   ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int, Circuit: true, BufferElems: 256}}},
		Scheduler: sim.SchedShard,
		Shards:    4, // reliable clusters shard for real now: split tx/rx halves per engine
		Faults:    &fault.Spec{Seed: 23, DropProb: 0.003, CorruptProb: 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.OnRank(0, "s", func(x *Ctx) {
		ch, err := x.OpenSendChannel(n, Int, 3, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			ch.PushInt(int32(i * 7))
		}
	})
	c.OnRank(3, "r", func(x *Ctx) {
		ch, err := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if got := ch.PopInt(); got != int32(i*7) {
				t.Errorf("element %d = %d, want %d", i, got, i*7)
				return
			}
		}
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retransmits == 0 && st.CrcErrors == 0 {
		t.Fatal("fault spec injected nothing; raw words never crossed a lossy wire")
	}
	if st.Sched.Shards != 4 || st.Sched.Syncs == 0 {
		t.Fatalf("reliable cluster fell back to one shard: shards=%d syncs=%d", st.Sched.Shards, st.Sched.Syncs)
	}
}

// Property: circuit channels preserve arbitrary messages across hop
// counts and buffer sizes.
func TestCircuitIntegrityQuick(t *testing.T) {
	prop := func(countRaw uint16, bufRaw, dstRaw uint8) bool {
		count := int(countRaw%600) + 1
		buf := int(bufRaw%200) + 8
		topo, _ := topology.Bus(4)
		dst := 1 + int(dstRaw)%3
		c, err := NewCluster(Config{
			Topology: topo,
			Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int, Circuit: true, BufferElems: buf}}},
		})
		if err != nil {
			return false
		}
		c.OnRank(0, "s", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(count, Int, dst, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				ch.PushInt(int32(i))
			}
		})
		okAll := true
		c.OnRank(dst, "r", func(x *Ctx) {
			ch, _ := x.OpenRecvChannel(count, Int, 0, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				if ch.PopInt() != int32(i) {
					okAll = false
					return
				}
			}
		})
		if _, err := c.Run(); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
