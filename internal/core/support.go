package smi

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// supportKernel coordinates one collective port at one rank (paper
// §4.4). It sits between the application endpoint FIFOs and the
// CKS/CKR pair the port is bound to, and implements the linear
// collective schemes with their synchronization protocols:
//
//   - Bcast/Scatter (one-to-all): receiving ranks signal readiness with
//     a SYNC packet before the root streams data toward them, once per
//     rank and round.
//   - Gather (all-to-one): the root grants each source rank its turn in
//     rank order.
//   - Reduce (all-to-one): credit-based flow control with a C-element
//     accumulation buffer at the root; contributors may run one tile
//     ahead and receive a new credit each time the root flushes a tile.
//
// Both root and non-root behavior is instantiated at every rank so the
// root can be chosen dynamically; the kernel learns root, count, and
// communicator from an OpConfig packet its local application pushes when
// opening the channel, then returns to idle when the collective
// completes, ready for the next round.
type supportKernel struct {
	name string
	rank int
	spec PortSpec
	epp  int

	appIn  *sim.Fifo[packet.Packet] // application -> support
	appOut *sim.Fifo[packet.Packet] // support -> application
	netOut *sim.Fifo[packet.Packet] // support -> CKS
	netIn  *sim.Fifo[packet.Packet] // CKR -> support

	state supState
	cfg   packet.Config
	root  int // global root rank of the current round
	base  int // communicator base
	size  int // communicator size
	count int // elements (per rank) in the current round

	// Protocol counters, persistent across rounds: early SYNCs/credits
	// for the next round are absorbed here instead of clogging CKR.
	syncCount [packet.MaxRanks]int
	credits   int

	// Streaming state.
	remaining int           // elements left in the current phase
	member    int           // member index being served (root-serve states)
	granted   bool          // gather root: grant sent to current member
	dup       packet.Packet // bcast root: packet being replicated
	dupValid  bool
	dupNext   int // next member index to copy dup to

	// Tree collective state.
	parentG   int   // parent global rank (-1 at the root)
	childrenG []int // child global ranks
	upGranted int   // elements the parent has allowed upward (tree reduce)

	// Reduce state.
	tile      []uint64 // accumulation buffer (C elements)
	pos       []int    // per-member elements contributed to current tile
	tileElems int      // size of the current tile
	done      int      // elements fully reduced so far
	flushPos  int      // elements flushed from the current tile
	creditTo  int      // member index to send the next credit to
	sendAllow int      // non-root reduce: elements allowed to send

	absorbed bool // a protocol packet was consumed this cycle

	bad uint64 // protocol violations observed
}

type supState uint8

const (
	supIdle supState = iota

	supBcastWaitReady
	supBcastStream
	supBcastSendSync
	supBcastForward

	supReduceCollect
	supReduceCredit
	supReduceSend

	supScatterRoot
	supScatterSendSync
	supScatterForward

	supGatherRoot
	supGatherWaitGrant
	supGatherSend

	supTBcastSync
	supTBcastStream
	supTBcastForward
	supTReduceCollect
	supTReduceCredit
)

func newSupportKernel(name string, rank int, spec PortSpec, appIn, appOut, netOut, netIn *sim.Fifo[packet.Packet]) *supportKernel {
	return &supportKernel{
		name: name, rank: rank, spec: spec, epp: spec.Type.ElemsPerPacket(),
		appIn: appIn, appOut: appOut, netOut: netOut, netIn: netIn,
	}
}

func (s *supportKernel) Name() string { return s.name }

// popNet pops one packet from the network side, absorbing protocol
// packets (SYNC, CREDIT) into their counters. It returns a data packet,
// or ok=false if none was consumed this cycle.
func (s *supportKernel) popNet() (packet.Packet, bool) {
	p, ok := s.netIn.TryPop()
	if !ok {
		return packet.Packet{}, false
	}
	switch p.Op {
	case packet.OpSyncReady:
		s.syncCount[p.Src]++
		s.absorbed = true
		return packet.Packet{}, false
	case packet.OpCredit:
		s.credits++
		s.absorbed = true
		return packet.Packet{}, false
	case packet.OpData:
		return p, true
	default:
		s.bad++
		s.absorbed = true
		return packet.Packet{}, false
	}
}

// drainProtocol absorbs any waiting SYNC/CREDIT packet without consuming
// data. Returns true if it popped something.
func (s *supportKernel) drainProtocol() bool {
	p, ok := s.netIn.Peek()
	if !ok || p.Op == packet.OpData {
		return false
	}
	s.netIn.TryPop()
	s.absorbed = true
	switch p.Op {
	case packet.OpSyncReady:
		s.syncCount[p.Src]++
	case packet.OpCredit:
		s.credits++
	default:
		s.bad++
	}
	return true
}

// protocolPacket builds a SYNC or CREDIT packet to dst.
func (s *supportKernel) protocolPacket(op packet.Op, dst int) packet.Packet {
	return packet.Packet{
		Src: uint16(s.rank), Dst: uint16(dst), Port: uint8(s.spec.Port), Op: op,
	}
}

// memberRank maps a member index (0..size-1) to a global rank.
func (s *supportKernel) memberRank(i int) int { return s.base + i }

// Tick advances the support kernel one cycle. At most one packet is
// consumed and one produced per cycle, matching a hardware kernel with
// one input and one output port active per clock. Absorbing a protocol
// packet counts as activity even when the state handler reports none —
// the absorbed credit or sync may enable progress next cycle.
func (s *supportKernel) Tick(now int64) bool {
	s.absorbed = false
	return s.tickState() || s.absorbed
}

// IdleUntil parks the kernel until one of its four FIFOs changes: the
// state machine is a pure function of their contents — it owns no timers
// — so an inactive tick repeats forever until an endpoint push/pop or a
// CKS/CKR transfer arrives, all of which wake it (see NewCluster).
func (s *supportKernel) IdleUntil(now int64) int64 { return sim.Never }

func (s *supportKernel) tickState() bool {
	switch s.state {
	case supIdle:
		return s.tickIdle()
	case supBcastWaitReady:
		return s.tickBcastWaitReady()
	case supBcastStream:
		return s.tickBcastStream()
	case supBcastSendSync, supScatterSendSync:
		return s.tickSendSync()
	case supBcastForward, supScatterForward:
		return s.tickForwardNetToApp()
	case supReduceCollect:
		return s.tickReduceCollect()
	case supReduceCredit:
		return s.tickReduceCredit()
	case supReduceSend:
		return s.tickReduceSend()
	case supScatterRoot:
		return s.tickScatterRoot()
	case supGatherRoot:
		return s.tickGatherRoot()
	case supGatherWaitGrant:
		return s.tickGatherWaitGrant()
	case supGatherSend:
		return s.tickGatherSend()
	case supTBcastSync:
		return s.tickTBcastSync()
	case supTBcastStream:
		return s.tickTBcastStream()
	case supTBcastForward:
		return s.tickTBcastForward()
	case supTReduceCollect:
		return s.tickTReduceCollect()
	case supTReduceCredit:
		return s.tickTReduceCredit()
	default:
		panic(fmt.Sprintf("smi: support kernel %s in invalid state %d", s.name, s.state))
	}
}

func (s *supportKernel) tickIdle() bool {
	// Keep protocol packets from clogging the receive path while the
	// local application has not opened its channel yet.
	if s.drainProtocol() {
		return true
	}
	p, ok := s.appIn.TryPop()
	if !ok {
		return false
	}
	if p.Op != packet.OpConfig {
		s.bad++
		return true
	}
	cfg := packet.DecodeConfig(p)
	s.cfg = cfg
	s.root = int(cfg.Root)
	s.base = int(cfg.Base)
	s.size = int(cfg.Size)
	s.count = int(cfg.Count)
	s.remaining = s.count
	isRoot := s.rank == s.root

	switch s.spec.Kind {
	case Bcast:
		if s.spec.Tree {
			s.setupTree()
			s.state = supTBcastSync
			break
		}
		if isRoot {
			s.state = supBcastWaitReady
		} else {
			s.state = supBcastSendSync
		}
	case Reduce:
		s.done = 0
		if s.spec.Tree {
			s.setupTree()
			if cap(s.tile) < s.spec.CreditElems {
				s.tile = make([]uint64, s.spec.CreditElems)
			}
			s.upGranted = s.nextTileSize(0)
			s.startTreeReduceTile()
			s.state = supTReduceCollect
			break
		}
		if isRoot {
			if cap(s.tile) < s.spec.CreditElems {
				s.tile = make([]uint64, s.spec.CreditElems)
				s.pos = make([]int, s.size)
			}
			s.pos = s.pos[:0]
			for i := 0; i < s.size; i++ {
				s.pos = append(s.pos, 0)
			}
			s.startReduceTile()
			s.state = supReduceCollect
		} else {
			s.sendAllow = s.nextTileSize(0)
			s.state = supReduceSend
		}
	case Scatter:
		if isRoot {
			s.member = 0
			s.granted = false
			s.remaining = s.count
			s.state = supScatterRoot
		} else {
			s.state = supScatterSendSync
		}
	case Gather:
		if isRoot {
			s.member = 0
			s.granted = false
			s.remaining = s.count
			s.state = supGatherRoot
		} else {
			s.state = supGatherWaitGrant
		}
	default:
		s.bad++
		s.state = supIdle
	}
	return true
}

// --- Bcast ---

func (s *supportKernel) tickBcastWaitReady() bool {
	if s.drainProtocol() {
		return true
	}
	for i := 0; i < s.size; i++ {
		m := s.memberRank(i)
		if m != s.root && s.syncCount[m] < 1 {
			return false // still waiting for a ready notification
		}
	}
	for i := 0; i < s.size; i++ {
		m := s.memberRank(i)
		if m != s.root {
			s.syncCount[m]--
		}
	}
	s.dupValid = false
	s.state = supBcastStream
	return true
}

// tickBcastStream replicates each data packet from the root application
// to every other member, one copy per cycle (the linear scheme: root
// egress bandwidth divides by the member count).
func (s *supportKernel) tickBcastStream() bool {
	s.drainProtocol()
	if !s.dupValid {
		p, ok := s.appIn.TryPop()
		if !ok {
			return false
		}
		if p.Op != packet.OpData {
			s.bad++
			return true
		}
		s.dup = p
		s.dupValid = true
		s.dupNext = 0
	}
	// Skip the root's own member slot.
	for s.dupNext < s.size && s.memberRank(s.dupNext) == s.root {
		s.dupNext++
	}
	if s.dupNext >= s.size {
		s.remaining -= int(s.dup.Count)
		s.dupValid = false
		if s.remaining <= 0 {
			s.state = supIdle
		}
		return true
	}
	out := s.dup
	out.Dst = uint16(s.memberRank(s.dupNext))
	out.Src = uint16(s.rank)
	if s.netOut.TryPush(out) {
		s.dupNext++
	}
	return true
}

// tickSendSync sends the readiness notification to the root, then starts
// forwarding incoming data to the application (Bcast and Scatter share
// this non-root behavior).
func (s *supportKernel) tickSendSync() bool {
	if s.netOut.TryPush(s.protocolPacket(packet.OpSyncReady, s.root)) {
		if s.state == supBcastSendSync {
			s.state = supBcastForward
		} else {
			s.state = supScatterForward
		}
	}
	return true
}

// tickForwardNetToApp moves data packets from the network to the local
// application until the message completes.
func (s *supportKernel) tickForwardNetToApp() bool {
	if !s.appOut.CanPush() {
		// Blocked on the application: no progress this cycle.
		return false
	}
	p, ok := s.popNet()
	if !ok {
		return false
	}
	if int(p.Src) != s.root {
		s.bad++
		return true
	}
	s.appOut.TryPush(p)
	s.remaining -= int(p.Count)
	if s.remaining <= 0 {
		s.state = supIdle
	}
	return true
}

// --- Reduce ---

// nextTileSize returns the size in elements of the tile starting after
// `done` reduced elements.
func (s *supportKernel) nextTileSize(done int) int {
	left := s.count - done
	if left > s.spec.CreditElems {
		return s.spec.CreditElems
	}
	return left
}

func (s *supportKernel) startReduceTile() {
	s.tileElems = s.nextTileSize(s.done)
	for i := range s.pos {
		s.pos[i] = 0
	}
	for i := 0; i < s.tileElems; i++ {
		s.tile[i] = 0
	}
	s.flushPos = 0
	s.creditTo = 0
}

// accumulate folds a contribution packet from global rank src into the
// tile buffer.
func (s *supportKernel) accumulate(p packet.Packet, src int) {
	mi := src - s.base
	if mi < 0 || mi >= s.size {
		s.bad++
		return
	}
	n := int(p.Count)
	if s.pos[mi]+n > s.tileElems {
		s.bad++
		n = s.tileElems - s.pos[mi]
	}
	for i := 0; i < n; i++ {
		idx := s.pos[mi] + i
		v := p.Elem(i, s.spec.Type)
		if s.firstContribution(mi, idx) {
			s.tile[idx] = v
		} else {
			s.tile[idx] = reduceBits(s.spec.Type, s.spec.ReduceOp, s.tile[idx], v)
		}
	}
	s.pos[mi] += n
}

// firstContribution reports whether element idx of the tile has received
// no contribution yet (every member's position is past or at idx tells
// us how many have already folded in; we track it cheaply: the element
// has been written iff any member's pos was > idx before this write).
func (s *supportKernel) firstContribution(member, idx int) bool {
	for m := range s.pos {
		if m == member {
			continue
		}
		if s.pos[m] > idx {
			return false
		}
	}
	return true
}

// flushAvail returns how many elements of the current tile are fully
// reduced (every member has contributed them) but not yet flushed.
func (s *supportKernel) flushAvail() int {
	avail := s.tileElems
	for _, p := range s.pos {
		if p < avail {
			avail = p
		}
	}
	return avail - s.flushPos
}

func (s *supportKernel) tickReduceCollect() bool {
	// The reduce support kernel has three independent hardware ports —
	// the network input, the local application's contribution stream,
	// and the result stream — and services all of them every cycle.
	active := false

	// Results stream out incrementally: element i is flushed as soon as
	// every member has contributed it. This keeps the root application —
	// which pushes its own contribution and pops the result of the same
	// element in one SMI_Reduce call — flowing without a full-tile wait.
	if n := s.flushAvail(); n > 0 {
		active = s.flushResults(n)
	} else if s.flushPos >= s.tileElems && s.tileElems > 0 {
		// Tile fully flushed: grant the next round of credits.
		s.done += s.tileElems
		if s.done >= s.count {
			s.state = supIdle // final tile: no more credits needed
			return true
		}
		s.creditTo = 0
		s.state = supReduceCredit
		return true
	}

	// Ingest one packet from the network (remote ranks are gated by
	// credits and latency-sensitive) ...
	if p, ok := s.popNet(); ok {
		s.accumulate(p, int(p.Src))
		active = true
	}
	// ... and one from the local application, never consuming local data
	// beyond the current tile.
	rootMember := s.rank - s.base
	if s.pos[rootMember] < s.tileElems {
		if p, ok := s.appIn.TryPop(); ok {
			if p.Op != packet.OpData {
				s.bad++
				return true
			}
			s.accumulate(p, s.rank)
			active = true
		}
	}
	return active
}

// flushResults emits up to one packet of fully-reduced elements to the
// local application.
func (s *supportKernel) flushResults(n int) bool {
	if n > s.epp {
		n = s.epp
	}
	out := packet.Packet{
		Src: uint16(s.rank), Dst: uint16(s.rank), Port: uint8(s.spec.Port),
		Op: packet.OpData, Count: uint8(n),
	}
	for i := 0; i < n; i++ {
		out.PutElem(i, s.spec.Type, s.tile[s.flushPos+i])
	}
	if s.appOut.TryPush(out) {
		s.flushPos += n
		return true
	}
	return false
}

func (s *supportKernel) tickReduceCredit() bool {
	s.drainProtocol()
	for s.creditTo < s.size && s.memberRank(s.creditTo) == s.root {
		s.creditTo++
	}
	if s.creditTo >= s.size {
		s.startReduceTile()
		s.state = supReduceCollect
		return true
	}
	if s.netOut.TryPush(s.protocolPacket(packet.OpCredit, s.memberRank(s.creditTo))) {
		s.creditTo++
	}
	return true
}

func (s *supportKernel) tickReduceSend() bool {
	// Absorb credits: each grants one further tile.
	if s.drainProtocol() {
		return true
	}
	if s.credits > 0 {
		s.credits--
		s.sendAllow += s.nextTileSize(s.count - s.remaining + s.sendAllow)
		return true
	}
	if s.sendAllow <= 0 {
		return false
	}
	if !s.netOut.CanPush() {
		return s.appIn.CanPop()
	}
	p, ok := s.appIn.TryPop()
	if !ok {
		return false
	}
	if p.Op != packet.OpData {
		s.bad++
		return true
	}
	out := p
	out.Dst = uint16(s.root)
	out.Src = uint16(s.rank)
	s.netOut.TryPush(out)
	s.sendAllow -= int(p.Count)
	s.remaining -= int(p.Count)
	if s.remaining <= 0 {
		s.state = supIdle
	}
	return true
}

// --- Scatter ---

func (s *supportKernel) tickScatterRoot() bool {
	if s.member >= s.size {
		s.state = supIdle
		return true
	}
	m := s.memberRank(s.member)
	if m == s.rank {
		// The root's own chunk never crosses the support kernel: the
		// channel implementation keeps it application-local (the code
		// generator wires the root's slot straight through).
		s.member++
		s.remaining = s.count
		return true
	}
	// Remote member: wait for its readiness, then stream its chunk.
	if s.syncCount[m] < 1 {
		if s.drainProtocol() {
			return true
		}
		return false
	}
	if !s.netOut.CanPush() {
		return true
	}
	p, ok := s.appIn.TryPop()
	if !ok {
		s.drainProtocol()
		return false
	}
	if p.Op != packet.OpData {
		s.bad++
		return true
	}
	out := p
	out.Dst = uint16(m)
	out.Src = uint16(s.rank)
	s.netOut.TryPush(out)
	if s.advanceChunk(int(p.Count)) {
		s.syncCount[m]--
	}
	return true
}

// advanceChunk updates the per-member chunk progress; it returns true
// when the current member's chunk completed and advances to the next.
func (s *supportKernel) advanceChunk(n int) bool {
	s.remaining -= n
	if s.remaining <= 0 {
		s.member++
		s.granted = false
		s.remaining = s.count
		return true
	}
	return false
}

// --- Gather ---

func (s *supportKernel) tickGatherRoot() bool {
	if s.member >= s.size {
		s.state = supIdle
		return true
	}
	m := s.memberRank(s.member)
	if m == s.rank {
		// The root's own contribution stays application-local (see
		// tickScatterRoot); skip this member slot.
		s.member++
		s.granted = false
		s.remaining = s.count
		return true
	}
	if !s.granted {
		if s.netOut.TryPush(s.protocolPacket(packet.OpSyncReady, m)) {
			s.granted = true
		}
		return true
	}
	if !s.appOut.CanPush() {
		return false
	}
	p, ok := s.popNet()
	if !ok {
		return false
	}
	if int(p.Src) != m {
		s.bad++
		return true
	}
	s.appOut.TryPush(p)
	s.advanceChunk(int(p.Count))
	return true
}

func (s *supportKernel) tickGatherWaitGrant() bool {
	if s.drainProtocol() {
		return true
	}
	if s.syncCount[s.root] < 1 {
		return false
	}
	s.syncCount[s.root]--
	s.state = supGatherSend
	return true
}

func (s *supportKernel) tickGatherSend() bool {
	if !s.netOut.CanPush() {
		return true
	}
	p, ok := s.appIn.TryPop()
	if !ok {
		s.drainProtocol()
		return false
	}
	if p.Op != packet.OpData {
		s.bad++
		return true
	}
	out := p
	out.Dst = uint16(s.root)
	out.Src = uint16(s.rank)
	s.netOut.TryPush(out)
	s.remaining -= int(p.Count)
	if s.remaining <= 0 {
		s.state = supIdle
	}
	return true
}
