package smi

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestCreditedChannelDeliversIntact(t *testing.T) {
	// Message far exceeds the buffer: the credited protocol must cycle
	// grants many times and still deliver in order.
	const n = 2000
	c := busCluster(t, 3, PortSpec{Port: 0, Type: Int, Credited: true, BufferElems: 56})
	c.OnRank(0, "s", func(x *Ctx) {
		ch, err := x.OpenSendChannel(n, Int, 2, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			ch.PushInt(int32(i * 7))
		}
	})
	c.OnRank(2, "r", func(x *Ctx) {
		ch, err := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if got := ch.PopInt(); got != int32(i*7) {
				t.Errorf("element %d = %d", i, got)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreditedSenderNeverOverrunsBuffer(t *testing.T) {
	// The receiver stalls for a long time mid-message; a credited sender
	// must stop after committing at most the buffer (plus what is in
	// flight), instead of jamming the transport.
	const n, k = 1000, 56
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int, Credited: true, BufferElems: k})
	var pushedBeforeStall int
	c.OnRank(0, "s", func(x *Ctx) {
		ch, _ := x.OpenSendChannel(n, Int, 1, 0, x.CommWorld())
		for i := 0; i < n; i++ {
			ch.PushInt(int32(i))
			if x.Now() < 5000 {
				pushedBeforeStall = i + 1
			}
		}
	})
	c.OnRank(1, "r", func(x *Ctx) {
		x.Sleep(5000) // receiver not ready for a long time
		ch, _ := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
		for i := 0; i < n; i++ {
			ch.PopInt()
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if pushedBeforeStall > k+14 {
		t.Fatalf("credited sender pushed %d elements against a stalled receiver (buffer %d)", pushedBeforeStall, k)
	}
}

func TestCreditedHalfDuplexEnforced(t *testing.T) {
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int, Credited: true, BufferElems: 28})
	c.OnRank(0, "s", func(x *Ctx) {
		ch, err := x.OpenSendChannel(100, Int, 1, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		// The reverse direction is carrying credits: opening a receive
		// channel on the same port must fail.
		if _, err := x.OpenRecvChannel(10, Int, 1, 0, x.CommWorld()); err == nil {
			t.Error("credited port allowed a concurrent recv channel")
		}
		for i := 0; i < 100; i++ {
			ch.PushInt(1)
		}
	})
	c.OnRank(1, "r", func(x *Ctx) {
		ch, _ := x.OpenRecvChannel(100, Int, 0, 0, x.CommWorld())
		for i := 0; i < 100; i++ {
			ch.PopInt()
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreditedLoopbackRejected(t *testing.T) {
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int, Credited: true})
	c.OnRank(0, "s", func(x *Ctx) {
		if _, err := x.OpenSendChannel(10, Int, 0, 0, x.CommWorld()); err == nil {
			t.Error("credited loopback accepted")
		}
	})
	c.OnRank(1, "idle", func(x *Ctx) {})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreditedRepeatedMessages(t *testing.T) {
	// Back-to-back credited messages on the same port: no stale credits
	// may leak between channels.
	const n, rounds = 300, 4
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int, Credited: true, BufferElems: 35})
	c.OnRank(0, "s", func(x *Ctx) {
		for r := 0; r < rounds; r++ {
			ch, err := x.OpenSendChannel(n, Int, 1, 0, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				ch.PushInt(int32(r*n + i))
			}
		}
	})
	c.OnRank(1, "r", func(x *Ctx) {
		for r := 0; r < rounds; r++ {
			ch, err := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if got := ch.PopInt(); got != int32(r*n+i) {
					t.Errorf("round %d element %d = %d", r, i, got)
					return
				}
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCreditedProtectsOtherChannels is the motivating scenario of §3.3:
// a long bulk message on a small buffer must not block other streaming
// messages sharing the transport. With the eager protocol the bulk
// message jams the CKR pipeline (the run deadlocks, which the engine
// diagnoses); with credits it completes.
func TestCreditedProtectsOtherChannels(t *testing.T) {
	run := func(credited bool) error {
		topo, _ := topology.Bus(2)
		c, err := NewCluster(Config{
			Topology: topo,
			Program: ProgramSpec{Ports: []PortSpec{
				// Both ports pinned to one CKS/CKR pair: the worst case,
				// where bulk and control traffic share every FIFO.
				{Port: 0, Type: Int, Credited: credited, BufferElems: 28, Iface: 0, PinIface: true},
				{Port: 1, Type: Int, BufferElems: 28, Iface: 0, PinIface: true},
			}},
		})
		if err != nil {
			return err
		}
		const bulk = 4000
		c.OnRank(0, "bulk+ctl", func(x *Ctx) {
			bc, err := x.OpenSendChannel(bulk, Int, 1, 0, x.CommWorld())
			if err != nil {
				panic(err)
			}
			for i := 0; i < bulk; i++ {
				bc.PushInt(int32(i))
			}
		})
		c.OnRank(1, "consumer", func(x *Ctx) {
			// The consumer first serves a short control exchange on port
			// 1, leaving the bulk message unconsumed meanwhile.
			ctl, err := x.OpenRecvChannel(4, Int, 0, 1, x.CommWorld())
			if err != nil {
				panic(err)
			}
			for i := 0; i < 4; i++ {
				ctl.PopInt()
			}
			bc, err := x.OpenRecvChannel(bulk, Int, 0, 0, x.CommWorld())
			if err != nil {
				panic(err)
			}
			for i := 0; i < bulk; i++ {
				bc.PopInt()
			}
		})
		c.OnRank(0, "ctl-sender", func(x *Ctx) {
			x.Sleep(3000) // the bulk stream is already in full flight
			ctl, err := x.OpenSendChannel(4, Int, 1, 1, x.CommWorld())
			if err != nil {
				panic(err)
			}
			for i := 0; i < 4; i++ {
				ctl.PushInt(int32(i))
			}
		})
		_, err = c.Run()
		return err
	}
	if err := run(true); err != nil {
		t.Fatalf("credited flow control should keep the control channel alive: %v", err)
	}
	if err := run(false); err == nil {
		t.Fatal("eager mode with a tiny buffer should jam the shared transport (this documents why §3.3 prescribes credits)")
	}
}

// Property: credited channels preserve content for arbitrary message and
// buffer sizes.
func TestCreditedIntegrityQuick(t *testing.T) {
	prop := func(countRaw uint16, bufRaw uint8) bool {
		count := int(countRaw%800) + 1
		buf := int(bufRaw%100) + 7
		topo, _ := topology.Bus(2)
		c, err := NewCluster(Config{
			Topology: topo,
			Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int, Credited: true, BufferElems: buf}}},
		})
		if err != nil {
			return false
		}
		c.OnRank(0, "s", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(count, Int, 1, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				ch.PushInt(int32(i))
			}
		})
		okAll := true
		c.OnRank(1, "r", func(x *Ctx) {
			ch, _ := x.OpenRecvChannel(count, Int, 0, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				if ch.PopInt() != int32(i) {
					okAll = false
					return
				}
			}
		})
		if _, err := c.Run(); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
