package smi

import (
	"fmt"

	"repro/internal/packet"
)

// Datatype is an SMI element type. The constants mirror the paper's
// SMI_INT, SMI_FLOAT, SMI_DOUBLE, SMI_CHAR and SMI_SHORT.
type Datatype = packet.Datatype

// Element datatypes.
const (
	Char   = packet.Char
	Short  = packet.Short
	Int    = packet.Int
	Float  = packet.Float
	Double = packet.Double
)

// Op is a reduction operation (SMI_ADD, SMI_MAX, SMI_MIN).
type Op uint8

// Reduction operations.
const (
	Add Op = iota
	Max
	Min

	numOps
)

func (o Op) String() string {
	switch o {
	case Add:
		return "SMI_ADD"
	case Max:
		return "SMI_MAX"
	case Min:
		return "SMI_MIN"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// PortKind declares what kind of communication endpoint a port
// implements. Each collective operation "implies a distinct channel
// type, open channel operation, and communication primitive" (§3.2), and
// the hardware instantiated for a port depends on its kind.
type PortKind uint8

// Port kinds.
const (
	P2P PortKind = iota
	Bcast
	Reduce
	Scatter
	Gather

	numPortKinds
)

func (k PortKind) String() string {
	switch k {
	case P2P:
		return "p2p"
	case Bcast:
		return "bcast"
	case Reduce:
		return "reduce"
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	default:
		return fmt.Sprintf("PortKind(%d)", uint8(k))
	}
}

// PortSpec declares one communication endpoint. Ports must be known when
// the cluster is built — the analog of the paper's requirement that "all
// ports must be known at compile time" so the code generator can lay
// down the FIFOs and support kernels connecting endpoints to the
// transport layer.
type PortSpec struct {
	// Port is the endpoint identifier, unique within the program.
	Port int
	// Kind selects the endpoint hardware (default P2P).
	Kind PortKind
	// Type is the element datatype the endpoint hardware is specialized
	// for (default Int). Channels opened on the port must match it.
	Type Datatype
	// ReduceOp is the reduction operation (Reduce ports only).
	ReduceOp Op
	// BufferElems is the endpoint FIFO capacity in elements — the
	// channel's asynchronicity degree k (§3.3): the sender may run ahead
	// of the receiver by up to k elements. Defaults to 64.
	BufferElems int
	// VecWidth is the datapath width of the attached application kernel
	// in elements per cycle (vectorized HLS kernels push/pop several
	// elements per clock). Defaults to 1.
	VecWidth int
	// CreditElems is the Reduce flow-control tile size C (§4.4): the
	// root holds an accumulation buffer of C elements and grants senders
	// one tile of credits at a time. Rounded up to a whole number of
	// packets. Defaults to 256. Reduce ports only.
	CreditElems int
	// Tree selects binomial-tree support kernels for Bcast and Reduce
	// ports instead of the paper's linear scheme: replication and
	// combining spread over inner nodes, bounding per-node fan-out by
	// log2 of the communicator size. (The paper names tree schemes as
	// the natural extension its reference implementation lacks.)
	Tree bool
	// Circuit selects circuit switching for this point-to-point port
	// (§4.2's alternative to the reference implementation's packet
	// switching): each message first transmits a single packet with all
	// meta-information, then a sequence of headerless payload packets
	// using the full 32-byte wire word. This raises payload efficiency
	// from 28/32 to 32/32 of the wire, but every communication kernel on
	// the path locks onto the message until it completes, stalling other
	// channels that share those kernels.
	Circuit bool
	// Credited selects the credit-based point-to-point flow control of
	// §3.3 for this port: the paper prescribes it when the buffer size
	// is smaller than the message size, "to guarantee that the
	// communication occurring on a transient channel will not block the
	// transmission of other streaming messages". The receiver grants the
	// sender BufferElems of initial credit and tops it up as it drains,
	// so the sender never commits more data than the receiver can
	// buffer, keeping long messages out of the shared transport.
	// Credited ports are half-duplex: while a credited channel is open,
	// the opposite direction of the same port carries its credits.
	// The default (eager, §3.3) relies on buffering and backpressure.
	Credited bool
	// Streaming selects the large-message streaming mode for this
	// point-to-point port: messages that fit the endpoint buffer go eager
	// exactly like the default path, while larger messages first complete
	// a rendezvous handshake (request/grant on the reverse direction) and
	// then travel as batched stream fragments — one OpStream header
	// amortized over StreamBatch full 32-byte raw words, cut through
	// intermediate kernels without store-and-forward. Streaming ports are
	// half-duplex like Credited ports (the reverse direction carries the
	// handshake) and mutually exclusive with Circuit and Credited.
	Streaming bool
	// StreamBatch is the fragment size in raw wire words for Streaming
	// ports: each fragment header pins the route for this many words
	// before competing channels get a polling turn. Larger batches
	// amortize the header further; smaller ones release shared kernels
	// sooner. Defaults to 16.
	StreamBatch int
	// Iface pins the endpoint to a specific CKS/CKR pair when PinIface
	// is set; otherwise ports are assigned round-robin across pairs.
	Iface    int
	PinIface bool
}

func (s *PortSpec) fill(index, ifaces int) {
	if s.Type == packet.Invalid {
		s.Type = Int
	}
	if s.BufferElems <= 0 {
		s.BufferElems = 64
	}
	if s.VecWidth <= 0 {
		s.VecWidth = 1
	}
	epp := s.Type.ElemsPerPacket()
	if s.CreditElems <= 0 {
		s.CreditElems = 256
	}
	// Round the credit tile up to whole packets so tile boundaries align
	// with packet boundaries.
	if rem := s.CreditElems % epp; rem != 0 {
		s.CreditElems += epp - rem
	}
	if s.StreamBatch <= 0 {
		s.StreamBatch = 16
	}
	if s.StreamBatch > packet.MaxStreamWords {
		s.StreamBatch = packet.MaxStreamWords
	}
	if !s.PinIface || s.Iface < 0 || s.Iface >= ifaces {
		s.Iface = index % ifaces
	}
}

// ProgramSpec is the set of SMI operations a program uses: the input the
// paper's metadata extractor produces and its code generator consumes.
type ProgramSpec struct {
	Ports []PortSpec
}

// Validate checks the program for well-formedness.
func (p *ProgramSpec) Validate() error {
	if len(p.Ports) == 0 {
		return fmt.Errorf("smi: program declares no ports")
	}
	seen := make(map[int]bool)
	for _, s := range p.Ports {
		if s.Port < 0 || s.Port >= packet.MaxPorts {
			return fmt.Errorf("smi: port %d out of range [0,%d)", s.Port, packet.MaxPorts)
		}
		if seen[s.Port] {
			return fmt.Errorf("smi: port %d declared twice", s.Port)
		}
		seen[s.Port] = true
		if s.Kind >= numPortKinds {
			return fmt.Errorf("smi: port %d has invalid kind %d", s.Port, s.Kind)
		}
		if s.Type != 0 && !s.Type.Valid() {
			return fmt.Errorf("smi: port %d has invalid datatype %d", s.Port, s.Type)
		}
		if s.Kind == Reduce && s.ReduceOp >= numOps {
			return fmt.Errorf("smi: port %d has invalid reduce op %d", s.Port, s.ReduceOp)
		}
		if s.Tree && s.Kind != Bcast && s.Kind != Reduce {
			return fmt.Errorf("smi: port %d: tree support kernels exist only for bcast and reduce", s.Port)
		}
		if s.Circuit && s.Kind != P2P {
			return fmt.Errorf("smi: port %d: circuit switching applies to point-to-point ports only", s.Port)
		}
		if s.Circuit && s.Credited {
			return fmt.Errorf("smi: port %d: circuit switching and credit-based flow control are mutually exclusive", s.Port)
		}
		if s.Streaming && s.Kind != P2P {
			return fmt.Errorf("smi: port %d: streaming applies to point-to-point ports only", s.Port)
		}
		if s.Streaming && (s.Circuit || s.Credited) {
			return fmt.Errorf("smi: port %d: streaming is mutually exclusive with circuit switching and credit-based flow control", s.Port)
		}
	}
	return nil
}

// Comm is a communicator: a contiguous group of global ranks.
// Communicators "can be established at runtime, and allow communication
// to be further organized into logical groups" (§3.1.1). Rank arguments
// to channel-open calls are relative to the communicator.
type Comm struct {
	base int
	size int
}

// Size returns the number of ranks in the communicator.
func (c Comm) Size() int { return c.size }

// Base returns the first global rank of the communicator.
func (c Comm) Base() int { return c.base }

// Global translates a communicator-relative rank to a global rank.
func (c Comm) Global(rank int) int { return c.base + rank }

// Contains reports whether the global rank belongs to the communicator.
func (c Comm) Contains(global int) bool {
	return global >= c.base && global < c.base+c.size
}

// Sub returns a sub-communicator of the given size starting at the given
// communicator-relative base rank.
func (c Comm) Sub(base, size int) (Comm, error) {
	if base < 0 || size <= 0 || base+size > c.size {
		return Comm{}, fmt.Errorf("smi: sub-communicator [%d,%d) outside parent of size %d", base, base+size, c.size)
	}
	return Comm{base: c.base + base, size: size}, nil
}

func (c Comm) String() string {
	return fmt.Sprintf("comm[%d..%d)", c.base, c.base+c.size)
}
