package smi

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// cable pairs the two reliable directions of one physical connection.
type cable struct {
	conn   topology.Connection
	ab, ba *link.ReliableLink // A->B and B->A directions
	failed bool
}

// faultManager is the host-side failover controller for permanent link
// deaths. The paper computes routes offline and uploads tables without
// touching the bitstream (§4.3); this kernel models the same host loop
// reacting at runtime: when a link layer declares its cable dead, the
// manager quiesces the transport kernels ("held in reset" by the shell),
// recomputes provably deadlock-free up*/down* routes on the surviving
// wiring, verifies the channel dependency graph is acyclic, uploads the
// tables, rescues the dead cable's unacknowledged and stranded packets
// over the control plane (PCIe survives a QSFP cable failure), and
// resumes. The retransmission protocol's cumulative acks make the rescue
// exact: everything below the receiver's RxExpected was delivered once,
// everything at or above it was not — so no packet is lost or duplicated.
//
// Rescued packets are re-routed by their headers; headerless OpRaw
// payloads of an in-flight circuit cannot be re-addressed and are
// counted as drops (circuit switching trades this robustness away, the
// same trade-off §4.2 describes for multiplexing).
type faultManager struct {
	c            *Cluster
	surviving    *topology.Topology
	repairCycles int64
	// barrier marks the sharded build: the manager is not a kernel but a
	// sim.Coordinator the group drives at barriers (see AtBarrier), and
	// its primitives switch to the stopped-world variants.
	barrier bool

	state     int // one of fmIdle/fmRepair/fmRescue/fmFailed
	fail      *cable
	failStart int64
	repairEnd int64
	newRoutes *routing.Routes

	// One rescue queue per endpoint device of the dead cable, injected
	// one packet per device per cycle (the control-plane write rate).
	rescueRank  [2]int
	rescueQueue [2][]packet.Packet

	failovers      int
	failoverCycles int64
	rescued        uint64
	unroutable     uint64
	log            []fault.TimedFault
	err            error
}

const (
	fmIdle = iota
	fmRepair
	fmRescue
	fmFailed
)

func newFaultManager(c *Cluster, repairCycles int64) *faultManager {
	return &faultManager{c: c, surviving: c.cfg.Topology, repairCycles: repairCycles}
}

func (m *faultManager) Name() string { return "fault-manager" }

func (m *faultManager) logEvent(now int64, kind string) {
	m.log = append(m.log, fault.TimedFault{Cycle: now, Link: "manager", Kind: kind})
}

// Tick runs after every link kernel (registration order), so a death
// declared this cycle is handled this cycle.
func (m *faultManager) Tick(now int64) bool {
	switch m.state {
	case fmIdle:
		for _, cb := range m.c.cables {
			if !cb.failed && (cb.ab.Dead() || cb.ba.Dead()) {
				m.begin(now, cb)
				return true
			}
		}
		return false
	case fmRepair:
		if now >= m.repairEnd {
			m.swapAndRescue(now)
		}
		return true
	case fmRescue:
		m.injectRescues(now)
		if len(m.rescueQueue[0]) == 0 && len(m.rescueQueue[1]) == 0 {
			m.finish(now)
		}
		return true
	default: // fmFailed: the cluster stays quiesced; see fail().
		return false
	}
}

// NextAction implements sim.Coordinator: the next cycle the manager may
// need to act at, as an inclusive bound the group turns into a barrier.
// While idle that is the earliest possible link death: DeathBound is
// derived from each live transmitter's timer state and only moves later
// as the simulation progresses, so no engine can observe a death the
// barrier schedule would miss. During a repair the manager sleeps until
// the repair deadline; during a rescue it acts every cycle.
func (m *faultManager) NextAction(base int64) int64 {
	switch m.state {
	case fmIdle:
		bound := sim.Never
		for _, cb := range m.c.cables {
			if cb.failed {
				continue
			}
			if d := cb.ab.DeathBound(base); d < bound {
				bound = d
			}
			if d := cb.ba.DeathBound(base); d < bound {
				bound = d
			}
		}
		if bound >= sim.Never {
			return sim.Never
		}
		// Death at cycle d is observed by the barrier at d+1, which
		// reproduces the dense manager tick of cycle d.
		return bound + 1
	case fmRepair:
		return m.repairEnd + 1
	case fmRescue:
		return base + 1
	default: // fmFailed: quiesced for good
		return sim.Never
	}
}

// AtBarrier implements sim.Coordinator: with every engine stopped at a
// common clock, a tick at clock-1 reproduces exactly what the dense
// manager kernel (registered after every link kernel) did that cycle.
func (m *faultManager) AtBarrier(clock int64) { m.Tick(clock - 1) }

// Quiescent implements sim.Coordinator: in fmIdle and fmFailed the
// manager only ever reacts to engine activity, so a globally idle group
// is a real deadlock; in fmRepair/fmRescue the manager itself is the
// pending work.
func (m *faultManager) Quiescent() bool {
	return m.state == fmIdle || m.state == fmFailed
}

// begin parks the dead cable, freezes every transport kernel, and starts
// the repair clock. Route computation happens up front so an unroutable
// surviving topology fails fast.
func (m *faultManager) begin(now int64, cb *cable) {
	cb.failed = true
	cb.ab.Park()
	cb.ba.Park()
	m.fail = cb
	m.failStart = now
	m.surviving = m.surviving.Without(cb.conn)
	m.logEvent(now, "dead:"+cb.ab.Name())
	for _, rs := range m.c.ranks {
		rs.dev.SetPaused(true)
	}
	if !m.surviving.Connected() {
		m.declareFailed(now, fmt.Errorf("smi: failover after %s died: surviving topology is disconnected", cb.ab.Name()))
		return
	}
	nr, err := routing.Compute(m.surviving, routing.UpDown)
	if err == nil {
		err = routing.VerifyDeadlockFree(nr)
	}
	if err != nil {
		m.declareFailed(now, fmt.Errorf("smi: failover after %s died: %w", cb.ab.Name(), err))
		return
	}
	m.newRoutes = nr
	m.repairEnd = now + m.repairCycles
	m.state = fmRepair
	m.logEvent(now, "repair-start")
}

// declareFailed marks the cluster unrepairable (fmFailed). The transport
// stays quiesced, but every rank program blocked in a channel operation
// is woken with WaitAborted so its PushE/PopE returns ClusterFailed, and
// operations started afterwards fail at entry (Ctx.runtimeErr) — the
// application observes a typed error instead of a deadlock report.
func (m *faultManager) declareFailed(now int64, err error) {
	m.err = err
	m.state = fmFailed
	m.logEvent(now, "failed")
	// Wake every blocked proc at now+1, the cycle a dense-mode kernel's
	// CancelWaits would land on; in the sharded build this spans all
	// engines, stopped at the barrier.
	for _, e := range m.c.engs {
		e.CancelWaitsAt(now + 1)
	}
}

// swapAndRescue uploads the regenerated tables through the shared Routes
// pointer (every CK routes each packet at pop time, so the swap takes
// effect atomically between cycles), collects the dead cable's loss set,
// and resumes everything except the two endpoint devices' send sides —
// those stay quiesced until the rescued (oldest) packets have re-entered
// the network, preserving per-flow order.
func (m *faultManager) swapAndRescue(now int64) {
	m.c.routes.CopyFrom(m.newRoutes)
	m.logEvent(now, "tables-swapped")
	cb := m.fail
	devA := m.c.ranks[cb.conn.A.Device].dev
	devB := m.c.ranks[cb.conn.B.Device].dev
	// Loss set per direction, oldest first: unacknowledged frames in the
	// retransmit buffer (RxExpected bounds what the far side delivered),
	// then packets already routed toward the dead exit but not yet
	// handed to the link.
	qa := cb.ab.Unacked(cb.ab.RxExpected())
	qa = append(qa, devA.DrainExit(cb.conn.A.Iface)...)
	qb := cb.ba.Unacked(cb.ba.RxExpected())
	qb = append(qb, devB.DrainExit(cb.conn.B.Iface)...)
	m.rescueRank = [2]int{cb.conn.A.Device, cb.conn.B.Device}
	m.rescueQueue = [2][]packet.Packet{qa, qb}
	for _, rs := range m.c.ranks {
		rs.dev.SetPaused(false)
	}
	devA.SetSendPaused(true)
	devB.SetSendPaused(true)
	m.state = fmRescue
	m.logEvent(now, fmt.Sprintf("rescue-start:%d+%d", len(qa), len(qb)))
}

// injectRescues feeds one rescued packet per endpoint device per cycle
// into the network-port FIFO its new route selects. A full FIFO retries
// next cycle; an unroutable packet (destination cut off, or a headerless
// raw payload) is dropped and counted.
func (m *faultManager) injectRescues(now int64) {
	for i := 0; i < 2; i++ {
		q := m.rescueQueue[i]
		if len(q) == 0 {
			continue
		}
		p := q[0]
		rank := m.rescueRank[i]
		dev := m.c.ranks[rank].dev
		exit := routing.Unreachable
		if p.Op != packet.OpRaw && int(p.Dst) < m.c.routes.Devices {
			exit = m.c.routes.At(rank, int(p.Dst))
		}
		if exit < 0 {
			dev.CountDropped(1)
			m.unroutable++
			m.rescueQueue[i] = q[1:]
			continue
		}
		if m.push(dev.NetOut(exit), p) {
			m.rescued++
			m.rescueQueue[i] = q[1:]
		}
	}
}

// push injects one rescued packet: a plain registered write from the
// manager's kernel tick, or the barrier-time equivalent when the group
// drives the manager with every engine stopped one cycle later.
func (m *faultManager) push(f *sim.Fifo[packet.Packet], p packet.Packet) bool {
	if m.barrier {
		return f.PushAtBarrier(p)
	}
	return f.TryPush(p)
}

// finish resumes the endpoint devices' send sides and forgives the RTO
// rounds the global pause inflicted on surviving links.
func (m *faultManager) finish(now int64) {
	cb := m.fail
	m.c.ranks[cb.conn.A.Device].dev.SetSendPaused(false)
	m.c.ranks[cb.conn.B.Device].dev.SetSendPaused(false)
	for _, other := range m.c.cables {
		if !other.failed {
			other.ab.ForgiveTimeouts(now)
			other.ba.ForgiveTimeouts(now)
		}
	}
	m.failovers++
	m.failoverCycles += now - m.failStart
	m.fail = nil
	m.state = fmIdle
	m.logEvent(now, "resume")
}
