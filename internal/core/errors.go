package smi

import (
	"errors"
	"fmt"

	"repro/internal/routing"
	"repro/internal/sim"
)

// ErrorKind classifies the runtime failures a channel operation can
// observe. Programming errors (pushing past count, popping on the wrong
// channel kind, protocol violations) still panic: they are bugs in the
// rank program, not conditions a correct program can recover from.
type ErrorKind uint8

const (
	// Timeout: the operation's deadline (WithDeadline / the Ctx default)
	// expired before the transport made progress.
	Timeout ErrorKind = iota + 1
	// PeerUnreachable: the routing tables have no path between this rank
	// and the channel's peer, so the operation can never complete.
	PeerUnreachable
	// ClusterFailed: the fault manager declared the cluster failed (a
	// permanent link death whose repair was impossible); every pending
	// and future channel operation observes this.
	ClusterFailed
)

func (k ErrorKind) String() string {
	switch k {
	case Timeout:
		return "timeout"
	case PeerUnreachable:
		return "peer unreachable"
	case ClusterFailed:
		return "cluster failed"
	default:
		return fmt.Sprintf("ErrorKind(%d)", uint8(k))
	}
}

// ChannelError is the typed, recoverable error surface of the channel
// API: PushE/PopE (and the collective E variants) return it when a
// runtime failure — not a programming error — prevents the operation.
// The blocking wrappers (Push/Pop/...) panic with it instead.
type ChannelError struct {
	Kind  ErrorKind
	Op    string // "push", "pop", "bcast", "reduce", ...
	Rank  int    // rank that observed the failure
	Port  int
	Peer  int   // peer rank, or -1 when not applicable (collectives)
	Cycle int64 // simulation cycle at which the failure was observed
}

func (e *ChannelError) Error() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("smi: rank %d port %d: %s with rank %d failed at cycle %d: %s",
			e.Rank, e.Port, e.Op, e.Peer, e.Cycle, e.Kind)
	}
	return fmt.Sprintf("smi: rank %d port %d: %s failed at cycle %d: %s",
		e.Rank, e.Port, e.Op, e.Cycle, e.Kind)
}

// IsTimeout reports whether err is a ChannelError of kind Timeout.
func IsTimeout(err error) bool { return errKind(err) == Timeout }

// IsPeerUnreachable reports whether err is a ChannelError of kind
// PeerUnreachable.
func IsPeerUnreachable(err error) bool { return errKind(err) == PeerUnreachable }

// IsClusterFailed reports whether err is a ChannelError of kind
// ClusterFailed.
func IsClusterFailed(err error) bool { return errKind(err) == ClusterFailed }

func errKind(err error) ErrorKind {
	var ce *ChannelError
	if errors.As(err, &ce) {
		return ce.Kind
	}
	return 0
}

// chanErr builds a ChannelError stamped with the current cycle.
func (x *Ctx) chanErr(kind ErrorKind, op string, port, peer int) *ChannelError {
	return &ChannelError{Kind: kind, Op: op, Rank: x.rank, Port: port, Peer: peer, Cycle: x.Now()}
}

// runtimeErr performs the entry checks every channel operation makes
// before touching the transport: a failed cluster poisons all traffic,
// and an unroutable peer can never be reached. peer < 0 skips the
// reachability check (collectives route via their support kernels).
func (x *Ctx) runtimeErr(op string, port, peer int) error {
	if x.c.Failed() {
		return x.chanErr(ClusterFailed, op, port, peer)
	}
	if peer >= 0 && peer != x.rank && x.c.routes.At(x.rank, peer) == routing.Unreachable {
		return x.chanErr(PeerUnreachable, op, port, peer)
	}
	return nil
}

// waitErr maps a failed cancellable FIFO wait to the channel error
// surface: a timeout keeps its own kind; an engine-level abort is only
// ever issued by the fault manager on cluster failure.
func (x *Ctx) waitErr(res sim.WaitResult, op string, port, peer int) error {
	switch res {
	case sim.WaitTimeout:
		return x.chanErr(Timeout, op, port, peer)
	case sim.WaitAborted:
		return x.chanErr(ClusterFailed, op, port, peer)
	default:
		return nil
	}
}
