// Package smi implements the Streaming Message Interface (SMI): a
// distributed-memory communication model and API for reconfigurable
// hardware, reproducing De Matteis, de Fine Licht, Beránek and Hoefler,
// "Streaming Message Interface: High-Performance Distributed Memory
// Programming on Reconfigurable Hardware" (SC 2019).
//
// SMI unifies message passing and streaming: instead of bulk buffered
// transfers, messages are transient channels streamed element by element
// during pipelined computation. A send or receive is set up first
// (OpenSendChannel / OpenRecvChannel — zero-overhead, like starting a
// non-blocking MPI operation without implying the data is ready), and
// data is then pushed or popped cycle by cycle. Routing between ranks is
// handled transparently by a transport layer of communication kernels
// (internal/transport) over runtime-configurable routing tables
// (internal/routing), so the interconnect topology is not baked into the
// program: the same "bitstream" (here, the same Cluster program) runs on
// a torus, a bus, or any other wiring, and the set of ranks can change
// without recompilation.
//
// Because the original system is an HLS library synthesized to Stratix
// 10 FPGAs, this reproduction executes programs on a deterministic
// cycle-driven simulator (internal/sim). Rank programs are ordinary Go
// functions run as cooperative processes; every Push and Pop costs clock
// cycles exactly as the hardware pipeline would, and all transport
// behaviour (packet switching, CKS/CKR polling, credit-based collective
// flow control) is modeled at cycle granularity.
//
// A minimal two-rank program (paper Listing 1):
//
//	topo, _ := topology.Bus(2)
//	cluster, _ := smi.NewCluster(smi.Config{
//		Topology: topo,
//		Program:  smi.ProgramSpec{Ports: []smi.PortSpec{{Port: 0}}},
//	})
//	cluster.OnRank(0, "rank0", func(x *smi.Ctx) {
//		ch, _ := x.OpenSendChannel(n, smi.Int, 1, 0, x.CommWorld())
//		for i := 0; i < n; i++ {
//			ch.PushInt(int32(i))
//		}
//	})
//	cluster.OnRank(1, "rank1", func(x *smi.Ctx) {
//		ch, _ := x.OpenRecvChannel(n, smi.Int, 0, 0, x.CommWorld())
//		for i := 0; i < n; i++ {
//			_ = ch.PopInt()
//		}
//	})
//	stats, _ := cluster.Run()
package smi
