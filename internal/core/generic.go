package smi

import "repro/internal/packet"

// Element constrains the Go types that map onto SMI datatypes: byte
// (Char), int16 (Short), int32 (Int), float32 (Float), float64
// (Double).
type Element interface {
	byte | int16 | int32 | float32 | float64
}

// elemBits converts a typed element to its raw wire bits.
func elemBits[T Element](v T) uint64 {
	switch x := any(v).(type) {
	case byte:
		return uint64(x)
	case int16:
		return packet.ShortBits(x)
	case int32:
		return packet.IntBits(x)
	case float32:
		return packet.FloatBits(x)
	default:
		return packet.DoubleBits(any(v).(float64))
	}
}

// bitsElem converts raw wire bits back to a typed element.
func bitsElem[T Element](bits uint64) T {
	var v T
	switch p := any(&v).(type) {
	case *byte:
		*p = byte(bits)
	case *int16:
		*p = packet.BitsShort(bits)
	case *int32:
		*p = packet.BitsInt(bits)
	case *float32:
		*p = packet.BitsFloat(bits)
	case *float64:
		*p = packet.BitsDouble(bits)
	}
	return v
}

// Push streams one typed element into a send channel. Go methods cannot
// be generic, so the typed push is a package-level helper; the legacy
// PushInt/PushFloat/... methods are aliases of it.
func Push[T Element](ch *SendChannel, v T) { ch.Push(elemBits(v)) }

// PushE is Push with the recoverable error surface of SendChannel.PushE.
func PushE[T Element](ch *SendChannel, v T) error { return ch.PushE(elemBits(v)) }

// Pop blocks until the next element arrives and returns it typed.
func Pop[T Element](ch *RecvChannel) T { return bitsElem[T](ch.Pop()) }

// PopE is Pop with the recoverable error surface of RecvChannel.PopE.
func PopE[T Element](ch *RecvChannel) (T, error) {
	bits, err := ch.PopE()
	if err != nil {
		var zero T
		return zero, err
	}
	return bitsElem[T](bits), nil
}

// PushSlice pushes every element of vs in order: the typed face of
// SendChannel.PushN. It returns how many elements were consumed and the
// first error; on error the remainder (vs[n:]) may be retried.
func PushSlice[T Element](ch *SendChannel, vs []T) (int, error) {
	for i, v := range vs {
		if err := ch.PushE(elemBits(v)); err != nil {
			return i, err
		}
	}
	return len(vs), nil
}

// PopSlice fills vs in order: the typed face of RecvChannel.PopN. It
// returns how many elements were delivered and the first error; on
// error the remainder (vs[n:]) may be retried.
func PopSlice[T Element](ch *RecvChannel, vs []T) (int, error) {
	for i := range vs {
		bits, err := ch.PopE()
		if err != nil {
			return i, err
		}
		vs[i] = bitsElem[T](bits)
	}
	return len(vs), nil
}

// PushInt pushes an int32 element.
func (ch *SendChannel) PushInt(v int32) { Push(ch, v) }

// PushFloat pushes a float32 element.
func (ch *SendChannel) PushFloat(v float32) { Push(ch, v) }

// PushDouble pushes a float64 element.
func (ch *SendChannel) PushDouble(v float64) { Push(ch, v) }

// PushShort pushes an int16 element.
func (ch *SendChannel) PushShort(v int16) { Push(ch, v) }

// PushChar pushes a byte element.
func (ch *SendChannel) PushChar(v byte) { Push(ch, v) }

// PopInt pops an int32 element.
func (ch *RecvChannel) PopInt() int32 { return Pop[int32](ch) }

// PopFloat pops a float32 element.
func (ch *RecvChannel) PopFloat() float32 { return Pop[float32](ch) }

// PopDouble pops a float64 element.
func (ch *RecvChannel) PopDouble() float64 { return Pop[float64](ch) }

// PopShort pops an int16 element.
func (ch *RecvChannel) PopShort() int16 { return Pop[int16](ch) }

// PopChar pops a byte element.
func (ch *RecvChannel) PopChar() byte { return Pop[byte](ch) }
