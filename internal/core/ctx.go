package smi

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/sim"
)

// Ctx is the execution context of one application kernel on one rank.
// All channel-open calls and cycle accounting go through it. A Ctx is
// bound to the cooperative process that runs the kernel body and must
// not be shared across kernels.
type Ctx struct {
	c    *Cluster
	rank int
	proc *sim.Proc

	// defPatience is the Ctx-level default per-operation deadline in
	// cycles (SetDefaultDeadline); 0 means operations block forever.
	defPatience int64
}

// Rank returns this kernel's global rank (one rank per FPGA, §2.2).
func (x *Ctx) Rank() int { return x.rank }

// Size returns the total number of ranks.
func (x *Ctx) Size() int { return len(x.c.ranks) }

// CommWorld returns the world communicator spanning all ranks.
func (x *Ctx) CommWorld() Comm { return x.c.world }

// CommRank returns this kernel's rank relative to the communicator, or
// -1 if the kernel's rank is not a member.
func (x *Ctx) CommRank(comm Comm) int {
	if !comm.Contains(x.rank) {
		return -1
	}
	return x.rank - comm.base
}

// Now returns the current simulation cycle.
func (x *Ctx) Now() int64 { return x.proc.Now() }

// Sleep consumes n clock cycles of pipelined computation.
func (x *Ctx) Sleep(n int64) { x.proc.Sleep(n) }

// Tick consumes one clock cycle.
func (x *Ctx) Tick() { x.proc.Tick() }

// Board returns the FPGA board model of this rank.
func (x *Ctx) Board() fpga.Board { return x.c.board }

// StreamMem consumes the cycles needed to stream the given number of
// bytes from or to the given number of local memory banks.
func (x *Ctx) StreamMem(bytes int64, banks int) {
	x.proc.Sleep(x.c.board.StreamCycles(bytes, banks))
}

// Stream is an intra-FPGA element FIFO connecting two application
// kernels on the same device, as HLS kernels are normally composed. SMI
// channels deliberately mirror this interface: "communication is
// programmed in the same way that data is normally streamed between
// intra-FPGA modules" (§3.1.1).
type Stream = sim.Fifo[uint64]

// NewStream creates an intra-FPGA element FIFO of the given capacity on
// rank 0. Streams must be created before Run. Clusters built with more
// than one shard must place streams with NewStreamOn: a stream is
// on-chip wiring and both of its endpoints live on one device.
func (c *Cluster) NewStream(name string, capacity int) *Stream {
	return c.NewStreamOn(0, name, capacity)
}

// NewStreamOn creates an intra-FPGA element FIFO of the given capacity
// on the given rank's device. Only kernels running on that rank may
// touch it — in sharded builds this is enforced structurally, since the
// FIFO lives on the rank's engine shard.
func (c *Cluster) NewStreamOn(rank int, name string, capacity int) *Stream {
	return sim.NewFifo[uint64](c.engFor(rank), "stream."+name, capacity)
}

// PushStream pushes an element onto an intra-FPGA stream (one cycle,
// blocking while full).
func (x *Ctx) PushStream(s *Stream, bits uint64) { s.PushProc(x.proc, bits) }

// PopStream pops an element from an intra-FPGA stream (one cycle,
// blocking while empty).
func (x *Ctx) PopStream(s *Stream) uint64 { return s.PopProc(x.proc) }

// endpointFor resolves and validates a port for a channel open call.
func (x *Ctx) endpointFor(port int, kind PortKind, dt Datatype, count int, comm Comm) (*endpoint, error) {
	if count <= 0 {
		return nil, fmt.Errorf("smi: rank %d port %d: count %d must be positive", x.rank, port, count)
	}
	if comm.size == 0 {
		return nil, fmt.Errorf("smi: rank %d port %d: empty communicator", x.rank, port)
	}
	if !comm.Contains(x.rank) {
		return nil, fmt.Errorf("smi: rank %d is not a member of %v", x.rank, comm)
	}
	ep, ok := x.c.ranks[x.rank].eps[port]
	if !ok {
		return nil, fmt.Errorf("smi: rank %d: port %d not declared in the program spec", x.rank, port)
	}
	if ep.spec.Kind != kind {
		return nil, fmt.Errorf("smi: rank %d port %d is a %v port, not %v", x.rank, port, ep.spec.Kind, kind)
	}
	if dt != ep.spec.Type {
		return nil, fmt.Errorf("smi: rank %d port %d carries %v, not %v", x.rank, port, ep.spec.Type, dt)
	}
	return ep, nil
}
