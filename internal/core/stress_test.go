package smi

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/transport"
)

// stressOp is one randomly generated communication operation. Every op
// gets its own port, so arbitrary interleavings across ops are safe; the
// schedule still exercises heavy multiplexing because all ops of a rank
// run back to back over the shared transport.
type stressOp struct {
	port    int
	kind    PortKind
	tree    bool
	cred    bool
	circuit bool
	count   int
	a, b    int // src/dst for p2p, root for collectives (a)
}

// TestRandomProgramsAgainstGoldenModel generates random multi-rank
// programs mixing every channel type and verifies all delivered data
// against closed-form expected values. Each seed is fully deterministic.
func TestRandomProgramsAgainstGoldenModel(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 42, 1337}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			stressOnce(t, seed)
		})
	}
}

func stressOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	// Random topology.
	var topo *topology.Topology
	var err error
	switch rng.Intn(3) {
	case 0:
		topo, err = topology.Bus(2 + rng.Intn(6))
	case 1:
		topo, err = topology.Torus2D(2, 2+rng.Intn(3))
	default:
		topo, err = topology.Ring(3 + rng.Intn(5))
	}
	if err != nil {
		t.Fatal(err)
	}
	ranks := topo.Devices

	// Random operation schedule, one port per op.
	nops := 6 + rng.Intn(10)
	ops := make([]stressOp, nops)
	var ports []PortSpec
	for i := range ops {
		op := stressOp{port: i, count: 1 + rng.Intn(150)}
		switch rng.Intn(5) {
		case 0:
			op.kind = P2P
			op.a = rng.Intn(ranks)
			op.b = rng.Intn(ranks)
			switch rng.Intn(3) {
			case 0:
				op.cred = op.a != op.b
			case 1:
				op.circuit = true
			}
		case 1:
			op.kind = Bcast
			op.a = rng.Intn(ranks)
			op.tree = rng.Intn(2) == 0
		case 2:
			op.kind = Reduce
			op.a = rng.Intn(ranks)
			op.tree = rng.Intn(2) == 0
		case 3:
			op.kind = Scatter
			op.a = rng.Intn(ranks)
		default:
			op.kind = Gather
			op.a = rng.Intn(ranks)
		}
		ops[i] = op
		ports = append(ports, PortSpec{
			Port: op.port, Kind: op.kind, Type: Int, ReduceOp: Add,
			Tree: op.tree, Credited: op.cred, Circuit: op.circuit,
			BufferElems: 14 + rng.Intn(100),
			CreditElems: 28 + rng.Intn(128),
		})
	}

	// Two extra ports implement the inter-phase barrier: ranks that run
	// far ahead could otherwise jam shared transport FIFOs with a later
	// phase's eager traffic (the §3.3 hazard the paper leaves to the
	// programmer).
	barrierReduce, barrierBcast := nops, nops+1
	ports = append(ports,
		PortSpec{Port: barrierReduce, Kind: Reduce, Type: Int, ReduceOp: Add},
		PortSpec{Port: barrierBcast, Kind: Bcast, Type: Int},
	)

	// Randomize the transport and routing configuration too.
	policy := routing.ShortestPath
	if rng.Intn(2) == 0 {
		policy = routing.UpDown
	}
	c, err := NewCluster(Config{
		Topology:      topo,
		Program:       ProgramSpec{Ports: ports},
		RoutingPolicy: policy,
		Transport: transport.Config{
			R:        1 << rng.Intn(5),
			SkipIdle: rng.Intn(2) == 0,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	elem := func(op stressOp, rank, i int) int32 {
		return int32(op.port*100000 + rank*1000 + i)
	}
	c.SPMD("stress", func(x *Ctx) {
		w := x.CommWorld()
		me := x.Rank()
		for _, op := range ops {
			if err := Barrier(x, barrierReduce, barrierBcast, w); err != nil {
				t.Error(err)
				return
			}
			switch op.kind {
			case P2P:
				if me == op.a {
					ch, err := x.OpenSendChannel(op.count, Int, op.b, op.port, w)
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < op.count; i++ {
						ch.PushInt(elem(op, op.a, i))
					}
				}
				if me == op.b {
					ch, err := x.OpenRecvChannel(op.count, Int, op.a, op.port, w)
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < op.count; i++ {
						if got := ch.PopInt(); got != elem(op, op.a, i) {
							t.Errorf("p2p port %d elem %d = %d", op.port, i, got)
							return
						}
					}
				}
			case Bcast:
				ch, err := x.OpenBcastChannel(op.count, Int, op.port, op.a, w)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < op.count; i++ {
					v := int32(-1)
					if ch.Root() {
						v = elem(op, op.a, i)
					}
					if got := ch.BcastInt(v); got != elem(op, op.a, i) {
						t.Errorf("bcast port %d elem %d = %d", op.port, i, got)
						return
					}
				}
			case Reduce:
				ch, err := x.OpenReduceChannel(op.count, Int, Add, op.port, op.a, w)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < op.count; i++ {
					got, ok := ch.ReduceInt(elem(op, me, i))
					if ok {
						var want int32
						for r := 0; r < ranks; r++ {
							want += elem(op, r, i)
						}
						if got != want {
							t.Errorf("reduce port %d elem %d = %d, want %d", op.port, i, got, want)
							return
						}
					}
				}
			case Scatter:
				ch, err := x.OpenScatterChannel(op.count, Int, op.port, op.a, w)
				if err != nil {
					t.Error(err)
					return
				}
				if ch.Root() {
					for i := 0; i < op.count*ranks; i++ {
						ch.Push(uint64(uint32(elem(op, i/op.count, i%op.count))))
					}
				}
				for i := 0; i < op.count; i++ {
					want := uint64(uint32(elem(op, me, i)))
					if got := ch.Pop(); got != want {
						t.Errorf("scatter port %d elem %d = %d, want %d", op.port, i, got, want)
						return
					}
				}
			case Gather:
				ch, err := x.OpenGatherChannel(op.count, Int, op.port, op.a, w)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < op.count; i++ {
					ch.Push(uint64(uint32(elem(op, me, i))))
				}
				if ch.Root() {
					for i := 0; i < op.count*ranks; i++ {
						want := uint64(uint32(elem(op, i/op.count, i%op.count)))
						if got := ch.Pop(); got != want {
							t.Errorf("gather port %d elem %d = %d, want %d", op.port, i, got, want)
							return
						}
					}
				}
			}
		}
	})
	st, err := c.Run()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if st.PacketsDropped != 0 {
		t.Fatalf("seed %d dropped %d packets", seed, st.PacketsDropped)
	}
}
