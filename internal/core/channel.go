package smi

import (
	"fmt"

	"repro/internal/packet"
)

// SendChannel is a transient point-to-point send channel
// (SMI_Open_send_channel). Data is pushed element by element; elements
// are packed into network packets and handed to the transport layer.
// The channel closes implicitly after count elements.
type SendChannel struct {
	x   *Ctx
	ep  *endpoint
	dt  Datatype
	epp int // elements per packet
	vec int // application datapath width, elements per cycle

	count int
	sent  int
	dst   int // global destination rank
	port  int

	cur packet.Packet
	n   int // elements in cur

	// Credit-based flow control state (nil credits semantics when the
	// port is eager): remaining elements the receiver has granted.
	credited bool
	credits  int

	// Circuit switching state: the leading OpOpen has been sent, and
	// payload packs into headerless 32-byte packets.
	circuit bool
	opened  bool
}

// OpenSendChannel opens a transient channel to stream count elements of
// type dt to rank destination (relative to comm) on the given port.
// Opening is a zero-overhead operation: it only records where data
// should be sent (§3.3).
func (x *Ctx) OpenSendChannel(count int, dt Datatype, destination, port int, comm Comm) (*SendChannel, error) {
	ep, err := x.endpointFor(port, P2P, dt, count, comm)
	if err != nil {
		return nil, err
	}
	if destination < 0 || destination >= comm.size {
		return nil, fmt.Errorf("smi: destination %d outside %v", destination, comm)
	}
	if ep.inUseSend {
		return nil, fmt.Errorf("smi: rank %d port %d already has an open send channel", x.rank, port)
	}
	dstGlobal := comm.Global(destination)
	if ep.spec.Credited {
		// The reverse direction of a credited port carries the credits.
		if ep.inUseRecv {
			return nil, fmt.Errorf("smi: rank %d port %d: credited ports are half-duplex", x.rank, port)
		}
		if dstGlobal == x.rank {
			return nil, fmt.Errorf("smi: rank %d port %d: credited channels cannot target their own rank", x.rank, port)
		}
		ep.inUseRecv = true
	}
	ep.inUseSend = true
	epp := dt.ElemsPerPacket()
	if ep.spec.Circuit {
		epp = packet.RawElemsPerPacket(dt)
	}
	return &SendChannel{
		x: x, ep: ep, dt: dt, epp: epp, vec: ep.spec.VecWidth,
		count: count, dst: dstGlobal, port: port,
		credited: ep.spec.Credited, credits: ep.spec.BufferElems,
		circuit: ep.spec.Circuit,
	}, nil
}

// Push streams one element (as raw bits) into the channel. It blocks —
// consuming simulated cycles — while the endpoint buffer is full, so a
// push "does not return before the data element has been safely sent to
// the network" (§3.1.1). Pushing more than count elements panics.
func (ch *SendChannel) Push(bits uint64) {
	if ch.sent >= ch.count {
		panic(fmt.Sprintf("smi: push beyond message size %d on port %d", ch.count, ch.port))
	}
	if ch.circuit {
		if !ch.opened {
			// Establish the circuit: one packet carries all the message
			// meta-information; the payload that follows is headerless.
			rawPkts := (ch.count + ch.epp - 1) / ch.epp
			open := packet.EncodeOpen(uint8(ch.x.rank), uint8(ch.dst), uint8(ch.port),
				packet.OpenInfo{RawPackets: uint32(rawPkts), Elems: uint32(ch.count)})
			ch.ep.appSend.PushProc(ch.x.proc, open)
			ch.opened = true
		}
		ch.cur.PutRawElem(ch.n, ch.dt, bits)
	} else {
		ch.cur.PutElem(ch.n, ch.dt, bits)
	}
	ch.n++
	ch.sent++
	if ch.n == ch.epp || ch.sent == ch.count {
		ch.flush()
	}
	if ch.sent == ch.count {
		ch.ep.inUseSend = false // channel implicitly closed
		ch.opened = false
		if ch.credited {
			ch.ep.inUseRecv = false
		}
	}
}

// PushInt pushes an int32 element.
func (ch *SendChannel) PushInt(v int32) { ch.Push(packet.IntBits(v)) }

// PushFloat pushes a float32 element.
func (ch *SendChannel) PushFloat(v float32) { ch.Push(packet.FloatBits(v)) }

// PushDouble pushes a float64 element.
func (ch *SendChannel) PushDouble(v float64) { ch.Push(packet.DoubleBits(v)) }

// PushShort pushes an int16 element.
func (ch *SendChannel) PushShort(v int16) { ch.Push(packet.ShortBits(v)) }

// PushChar pushes a byte element.
func (ch *SendChannel) PushChar(v byte) { ch.Push(uint64(v)) }

// Remaining returns how many elements may still be pushed.
func (ch *SendChannel) Remaining() int { return ch.count - ch.sent }

// flush emits the current packet, charging the cycles the application
// pipeline spent producing its elements: a kernel pushing one element
// per cycle (VecWidth 1) pays one cycle per element; a vectorized kernel
// pays proportionally less.
func (ch *SendChannel) flush() {
	if ch.credited {
		// Block until the receiver has granted room for this packet, so
		// the data never queues in the shared transport.
		for ch.credits < ch.n {
			grant := ch.ep.appRecv.PopProc(ch.x.proc)
			if grant.Op != packet.OpCredit || int(grant.Src) != ch.dst {
				panic(fmt.Sprintf("smi: rank %d port %d: expected credit from %d, got %v",
					ch.x.rank, ch.port, ch.dst, grant))
			}
			ch.credits += int(decodeCreditElems(grant))
		}
		ch.credits -= ch.n
	}
	ch.cur.Src = uint8(ch.x.rank)
	ch.cur.Dst = uint8(ch.dst)
	ch.cur.Port = uint8(ch.port)
	if ch.circuit {
		ch.cur.Op = packet.OpRaw
	} else {
		ch.cur.Op = packet.OpData
	}
	ch.cur.Count = uint8(ch.n)
	cycles := int64((ch.n + ch.vec - 1) / ch.vec)
	if cycles > 1 {
		ch.x.proc.Sleep(cycles - 1)
	}
	ch.ep.appSend.PushProc(ch.x.proc, ch.cur)
	ch.cur = packet.Packet{}
	ch.n = 0
}

// RecvChannel is a transient point-to-point receive channel
// (SMI_Open_recv_channel). The channel closes implicitly after count
// elements have been popped.
type RecvChannel struct {
	x   *Ctx
	ep  *endpoint
	dt  Datatype
	vec int

	count    int
	received int
	src      int // expected global source rank
	port     int

	cur  packet.Packet
	have int // unread elements in cur
	pos  int // next element index in cur

	// Credit-based flow control state: elements drained since the last
	// grant, the batch size at which grants are sent, and the total
	// granted so far. Total grants are capped at count minus the initial
	// credit so the sender's budget is exactly count elements and no
	// stale credits outlive the channel.
	credited   bool
	freed      int
	grantBatch int
	granted    int

	// Circuit switching state: the leading OpOpen has been consumed.
	circuit bool
	opened  bool
}

// OpenRecvChannel opens a transient channel to receive count elements of
// type dt from rank source (relative to comm) on the given port.
func (x *Ctx) OpenRecvChannel(count int, dt Datatype, source, port int, comm Comm) (*RecvChannel, error) {
	ep, err := x.endpointFor(port, P2P, dt, count, comm)
	if err != nil {
		return nil, err
	}
	if source < 0 || source >= comm.size {
		return nil, fmt.Errorf("smi: source %d outside %v", source, comm)
	}
	if ep.inUseRecv {
		return nil, fmt.Errorf("smi: rank %d port %d already has an open recv channel", x.rank, port)
	}
	srcGlobal := comm.Global(source)
	ch := &RecvChannel{
		x: x, ep: ep, dt: dt, vec: ep.spec.VecWidth,
		count: count, src: srcGlobal, port: port,
	}
	if ep.spec.Credited {
		if ep.inUseSend {
			return nil, fmt.Errorf("smi: rank %d port %d: credited ports are half-duplex", x.rank, port)
		}
		if srcGlobal == x.rank {
			return nil, fmt.Errorf("smi: rank %d port %d: credited channels cannot target their own rank", x.rank, port)
		}
		ep.inUseSend = true
		ch.credited = true
		ch.grantBatch = ep.spec.BufferElems / 2
		epp := dt.ElemsPerPacket()
		if ch.grantBatch < epp {
			ch.grantBatch = epp
		}
	}
	ch.circuit = ep.spec.Circuit
	ep.inUseRecv = true
	return ch, nil
}

// Pop blocks until the next element arrives and returns its raw bits.
// Popping past count elements panics, as does receiving a packet from an
// unexpected source (a mismatched program).
func (ch *RecvChannel) Pop() uint64 {
	if ch.received >= ch.count {
		panic(fmt.Sprintf("smi: pop beyond message size %d on port %d", ch.count, ch.port))
	}
	if ch.have == 0 {
		ch.fetch()
	}
	var bits uint64
	if ch.circuit {
		bits = ch.cur.RawElem(ch.pos, ch.dt)
	} else {
		bits = ch.cur.Elem(ch.pos, ch.dt)
	}
	ch.pos++
	ch.have--
	ch.received++
	if ch.received == ch.count {
		ch.opened = false
	}
	if ch.credited {
		ch.freed++
		if ch.freed >= ch.grantBatch {
			ch.sendCredit()
		}
	}
	if ch.received == ch.count {
		if ch.credited {
			ch.ep.inUseSend = false
		}
		ch.ep.inUseRecv = false // channel implicitly closed
	}
	return bits
}

// sendCredit returns drained buffer space to the sender, never granting
// more than the sender can still use.
func (ch *RecvChannel) sendCredit() {
	avail := ch.count - ch.ep.spec.BufferElems - ch.granted
	if avail <= 0 {
		ch.freed = 0 // the sender's budget already covers the message
		return
	}
	n := ch.freed
	if n > avail {
		n = avail
	}
	ch.granted += n
	ch.freed = 0
	grant := packet.Packet{
		Src: uint8(ch.x.rank), Dst: uint8(ch.src), Port: uint8(ch.port),
		Op: packet.OpCredit,
	}
	encodeCreditElems(&grant, uint32(n))
	ch.ep.appSend.PushProc(ch.x.proc, grant)
}

// PopInt pops an int32 element.
func (ch *RecvChannel) PopInt() int32 { return packet.BitsInt(ch.Pop()) }

// PopFloat pops a float32 element.
func (ch *RecvChannel) PopFloat() float32 { return packet.BitsFloat(ch.Pop()) }

// PopDouble pops a float64 element.
func (ch *RecvChannel) PopDouble() float64 { return packet.BitsDouble(ch.Pop()) }

// PopShort pops an int16 element.
func (ch *RecvChannel) PopShort() int16 { return packet.BitsShort(ch.Pop()) }

// PopChar pops a byte element.
func (ch *RecvChannel) PopChar() byte { return byte(ch.Pop()) }

// Remaining returns how many elements are still to be popped.
func (ch *RecvChannel) Remaining() int { return ch.count - ch.received }

func (ch *RecvChannel) fetch() {
	pkt := ch.ep.appRecv.PopProc(ch.x.proc)
	if ch.circuit && !ch.opened {
		// The circuit's establishment packet arrives first.
		if pkt.Op != packet.OpOpen {
			panic(fmt.Sprintf("smi: rank %d port %d: expected circuit OPEN, got %v", ch.x.rank, ch.port, pkt.Op))
		}
		if int(pkt.Src) != ch.src {
			panic(fmt.Sprintf("smi: rank %d port %d: circuit from rank %d, expected %d", ch.x.rank, ch.port, pkt.Src, ch.src))
		}
		if got := int(packet.DecodeOpen(pkt).Elems); got != ch.count {
			panic(fmt.Sprintf("smi: rank %d port %d: circuit announces %d elements, channel expects %d", ch.x.rank, ch.port, got, ch.count))
		}
		ch.opened = true
		pkt = ch.ep.appRecv.PopProc(ch.x.proc)
	}
	wantOp := packet.OpData
	if ch.circuit {
		wantOp = packet.OpRaw
	}
	if pkt.Op != wantOp {
		panic(fmt.Sprintf("smi: rank %d port %d: unexpected %v packet on recv channel", ch.x.rank, ch.port, pkt.Op))
	}
	if !ch.circuit && int(pkt.Src) != ch.src {
		panic(fmt.Sprintf("smi: rank %d port %d: packet from rank %d, expected %d", ch.x.rank, ch.port, pkt.Src, ch.src))
	}
	if pkt.Count == 0 {
		panic(fmt.Sprintf("smi: rank %d port %d: empty data packet", ch.x.rank, ch.port))
	}
	// Charge the cycles a pipelined consumer spends draining the packet.
	cycles := int64((int(pkt.Count) + ch.vec - 1) / ch.vec)
	if cycles > 1 {
		ch.x.proc.Sleep(cycles - 1)
	}
	ch.cur = pkt
	ch.have = int(pkt.Count)
	ch.pos = 0
}

// encodeCreditElems stores the granted element count in a credit packet.
func encodeCreditElems(p *packet.Packet, elems uint32) {
	p.Payload[0] = byte(elems)
	p.Payload[1] = byte(elems >> 8)
	p.Payload[2] = byte(elems >> 16)
	p.Payload[3] = byte(elems >> 24)
}

// decodeCreditElems reads the granted element count from a credit packet.
func decodeCreditElems(p packet.Packet) uint32 {
	return uint32(p.Payload[0]) | uint32(p.Payload[1])<<8 |
		uint32(p.Payload[2])<<16 | uint32(p.Payload[3])<<24
}
