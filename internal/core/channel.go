package smi

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// SendChannel is a transient point-to-point send channel
// (SMI_Open_send_channel). Data is pushed element by element; elements
// are packed into network packets and handed to the transport layer.
// The channel closes implicitly after count elements.
type SendChannel struct {
	x   *Ctx
	ep  *endpoint
	dt  Datatype
	epp int // elements per packet
	vec int // application datapath width, elements per cycle

	count int
	sent  int
	dst   int // global destination rank
	port  int

	// patience is the per-operation deadline in cycles (0 = none): each
	// PushE call must complete within patience cycles of starting.
	patience int64

	cur packet.Packet
	n   int // elements in cur

	// Credit-based flow control state (nil credits semantics when the
	// port is eager): remaining elements the receiver has granted.
	credited bool
	credits  int

	// Circuit switching state: the leading OpOpen has been sent, and
	// payload packs into headerless 32-byte packets.
	circuit bool
	opened  bool

	// Streaming state (Streaming ports whose message exceeds the endpoint
	// buffer): the rendezvous handshake, the fragment sequence counter,
	// and the raw words left in the fragment opened by the last header.
	// Both sides derive "this message streams" from the same predicate
	// (count > BufferElems), so no negotiation packet is needed for the
	// eager case.
	streaming bool // this message uses the rendezvous + fragment path
	specPort  bool // the port is declared Streaming (half-duplex held)
	batch     int  // fragment size in raw words
	rvSent    bool // rendezvous request pushed
	rvDone    bool // rendezvous grant received
	seq       uint32
	fragLeft  int
}

// OpenSendChannel opens a transient channel to stream count elements of
// type dt to rank destination (relative to comm) on the given port.
// Opening is a zero-overhead operation: it only records where data
// should be sent (§3.3). Options (e.g. WithDeadline) bound the blocking
// behavior of subsequent operations.
func (x *Ctx) OpenSendChannel(count int, dt Datatype, destination, port int, comm Comm, opts ...ChannelOption) (*SendChannel, error) {
	ep, err := x.endpointFor(port, P2P, dt, count, comm)
	if err != nil {
		return nil, err
	}
	if destination < 0 || destination >= comm.size {
		return nil, fmt.Errorf("smi: destination %d outside %v", destination, comm)
	}
	if ep.inUseSend {
		return nil, fmt.Errorf("smi: rank %d port %d already has an open send channel", x.rank, port)
	}
	dstGlobal := comm.Global(destination)
	if ep.spec.Credited || ep.spec.Streaming {
		// The reverse direction of a credited port carries the credits;
		// of a streaming port, the rendezvous handshake.
		if ep.inUseRecv {
			return nil, fmt.Errorf("smi: rank %d port %d: credited and streaming ports are half-duplex", x.rank, port)
		}
		if dstGlobal == x.rank {
			return nil, fmt.Errorf("smi: rank %d port %d: credited and streaming channels cannot target their own rank", x.rank, port)
		}
		ep.inUseRecv = true
	}
	ep.inUseSend = true
	// Eager-vs-rendezvous switchover: a message that fits the endpoint
	// buffer goes eager on the plain packet path; a larger one streams.
	// Both peers evaluate the same predicate on the same declared count,
	// so they agree without negotiating.
	streaming := ep.spec.Streaming && count > ep.spec.BufferElems
	epp := dt.ElemsPerPacket()
	if ep.spec.Circuit || streaming {
		epp = packet.RawElemsPerPacket(dt)
	}
	o := x.resolveOpts(opts)
	return &SendChannel{
		x: x, ep: ep, dt: dt, epp: epp, vec: ep.spec.VecWidth,
		count: count, dst: dstGlobal, port: port, patience: o.patience,
		credited: ep.spec.Credited, credits: ep.spec.BufferElems,
		circuit:   ep.spec.Circuit,
		streaming: streaming, specPort: ep.spec.Streaming, batch: ep.spec.StreamBatch,
	}, nil
}

// opDeadline converts the channel's patience into an absolute deadline
// for one operation starting now.
func (ch *SendChannel) opDeadline() int64 {
	if ch.patience <= 0 {
		return sim.Never
	}
	return ch.x.Now() + ch.patience
}

// Push streams one element (as raw bits) into the channel. It blocks —
// consuming simulated cycles — while the endpoint buffer is full, so a
// push "does not return before the data element has been safely sent to
// the network" (§3.1.1). Pushing more than count elements panics (a
// programming error); a runtime failure (deadline expiry, unreachable
// peer, failed cluster) panics with the ChannelError that PushE would
// return.
func (ch *SendChannel) Push(bits uint64) {
	if err := ch.PushE(bits); err != nil {
		panic(err)
	}
}

// PushE is Push with a recoverable error surface: runtime failures are
// returned as a *ChannelError (Timeout, PeerUnreachable, ClusterFailed)
// instead of panicking. A failed push consumes no element: the channel
// state is unchanged and the same element may be retried. Pushing more
// than count elements still panics — that is a programming error.
func (ch *SendChannel) PushE(bits uint64) error {
	if ch.sent >= ch.count {
		panic(fmt.Sprintf("smi: push beyond message size %d on port %d", ch.count, ch.port))
	}
	if err := ch.x.runtimeErr("push", ch.port, ch.dst); err != nil {
		return err
	}
	deadline := ch.opDeadline()
	if ch.circuit && !ch.opened {
		// Establish the circuit: one packet carries all the message
		// meta-information; the payload that follows is headerless.
		rawPkts := (ch.count + ch.epp - 1) / ch.epp
		open := packet.EncodeOpen(uint16(ch.x.rank), uint16(ch.dst), uint8(ch.port),
			packet.OpenInfo{RawPackets: uint32(rawPkts), Elems: uint32(ch.count)})
		if res := ch.ep.appSend.PushProcE(ch.x.proc, open, deadline); res != sim.WaitOK {
			return ch.x.waitErr(res, "push", ch.port, ch.dst)
		}
		ch.opened = true
	}
	if ch.streaming && !ch.rvDone {
		// Rendezvous: the receiver must commit buffer before any payload
		// enters the shared transport.
		if err := ch.rendezvousE(deadline); err != nil {
			return err
		}
	}
	if ch.circuit || ch.streaming {
		ch.cur.PutRawElem(ch.n, ch.dt, bits)
	} else {
		ch.cur.PutElem(ch.n, ch.dt, bits)
	}
	ch.n++
	ch.sent++
	if ch.n == ch.epp || ch.sent == ch.count {
		var err error
		if ch.streaming {
			err = ch.flushStreamE(deadline)
		} else {
			err = ch.flushE(deadline)
		}
		if err != nil {
			// Roll back the staged element; a retry re-stages it.
			ch.n--
			ch.sent--
			return err
		}
	}
	if ch.sent == ch.count {
		ch.ep.inUseSend = false // channel implicitly closed
		ch.opened = false
		if ch.credited || ch.specPort {
			ch.ep.inUseRecv = false
		}
	}
	return nil
}

// rendezvousE performs the sender half of the streaming handshake: a
// request announcing the message, then a blocking wait for the
// receiver's grant. The two legs are guarded separately so a failed
// (deadline-expired) wait for the grant does not duplicate the request
// on retry.
func (ch *SendChannel) rendezvousE(deadline int64) error {
	if !ch.rvSent {
		req := packet.EncodeStreamCtl(uint16(ch.x.rank), uint16(ch.dst), uint8(ch.port),
			packet.StreamCtl{Kind: packet.StreamReq, Elems: uint32(ch.count)})
		if res := ch.ep.appSend.PushProcE(ch.x.proc, req, deadline); res != sim.WaitOK {
			return ch.x.waitErr(res, "push", ch.port, ch.dst)
		}
		ch.rvSent = true
	}
	grant, res := ch.ep.appRecv.PopProcE(ch.x.proc, deadline)
	if res != sim.WaitOK {
		return ch.x.waitErr(res, "push", ch.port, ch.dst)
	}
	if grant.Op != packet.OpStreamCtl || int(grant.Src) != ch.dst {
		panic(fmt.Sprintf("smi: rank %d port %d: expected stream grant from %d, got %v",
			ch.x.rank, ch.port, ch.dst, grant))
	}
	if c := packet.DecodeStreamCtl(grant); c.Kind != packet.StreamGrant || int(c.Elems) != ch.count {
		panic(fmt.Sprintf("smi: rank %d port %d: malformed stream grant %+v for %d-element message",
			ch.x.rank, ch.port, c, ch.count))
	}
	ch.rvDone = true
	return nil
}

// flushStreamE emits the staged raw word on the streaming path. At
// fragment boundaries it first emits the OpStream header that pins the
// route for the fragment's word train — one header amortized over up to
// batch full 32-byte words. The header leg and the word leg are guarded
// by fragLeft so a failed push resumes exactly where it left off.
func (ch *SendChannel) flushStreamE(deadline int64) error {
	if ch.fragLeft == 0 {
		flushed := ch.sent - ch.n // elements already on the wire
		elems := ch.count - flushed
		if max := ch.batch * ch.epp; elems > max {
			elems = max
		}
		frag := packet.StreamFrag{
			Seq:   ch.seq,
			Words: uint16((elems + ch.epp - 1) / ch.epp),
			Elems: uint32(elems),
			Last:  flushed+elems == ch.count,
		}
		hdr := packet.EncodeStreamFrag(uint16(ch.x.rank), uint16(ch.dst), uint8(ch.port), frag)
		if res := ch.ep.appSend.PushProcE(ch.x.proc, hdr, deadline); res != sim.WaitOK {
			return ch.x.waitErr(res, "push", ch.port, ch.dst)
		}
		ch.seq++
		ch.fragLeft = int(frag.Words)
	}
	ch.cur.Src = uint16(ch.x.rank)
	ch.cur.Dst = uint16(ch.dst)
	ch.cur.Port = uint8(ch.port)
	ch.cur.Op = packet.OpRaw
	ch.cur.Count = uint8(ch.n)
	cycles := int64((ch.n + ch.vec - 1) / ch.vec)
	if cycles > 1 {
		ch.x.proc.Sleep(cycles - 1)
	}
	if res := ch.ep.appSend.PushProcE(ch.x.proc, ch.cur, deadline); res != sim.WaitOK {
		return ch.x.waitErr(res, "push", ch.port, ch.dst)
	}
	ch.fragLeft--
	ch.cur = packet.Packet{}
	ch.n = 0
	return nil
}

// PushN pushes every element of bits in order, returning how many were
// consumed and the first error. On error the remaining elements
// (bits[n:]) may be retried. On a Streaming port this is the intended
// bulk entry point: the whole slice rides one rendezvous.
func (ch *SendChannel) PushN(bits []uint64) (int, error) {
	for i, b := range bits {
		if err := ch.PushE(b); err != nil {
			return i, err
		}
	}
	return len(bits), nil
}

// Remaining returns how many elements may still be pushed.
func (ch *SendChannel) Remaining() int { return ch.count - ch.sent }

// flushE emits the current packet, charging the cycles the application
// pipeline spent producing its elements: a kernel pushing one element
// per cycle (VecWidth 1) pays one cycle per element; a vectorized kernel
// pays proportionally less. On failure the staged packet is preserved so
// the caller can roll back and retry.
func (ch *SendChannel) flushE(deadline int64) error {
	if ch.credited {
		// Block until the receiver has granted room for this packet, so
		// the data never queues in the shared transport.
		for ch.credits < ch.n {
			grant, res := ch.ep.appRecv.PopProcE(ch.x.proc, deadline)
			if res != sim.WaitOK {
				return ch.x.waitErr(res, "push", ch.port, ch.dst)
			}
			if grant.Op != packet.OpCredit || int(grant.Src) != ch.dst {
				panic(fmt.Sprintf("smi: rank %d port %d: expected credit from %d, got %v",
					ch.x.rank, ch.port, ch.dst, grant))
			}
			ch.credits += int(packet.DecodeCreditElems(grant))
		}
	}
	ch.cur.Src = uint16(ch.x.rank)
	ch.cur.Dst = uint16(ch.dst)
	ch.cur.Port = uint8(ch.port)
	if ch.circuit {
		ch.cur.Op = packet.OpRaw
	} else {
		ch.cur.Op = packet.OpData
	}
	ch.cur.Count = uint8(ch.n)
	cycles := int64((ch.n + ch.vec - 1) / ch.vec)
	if cycles > 1 {
		ch.x.proc.Sleep(cycles - 1)
	}
	if res := ch.ep.appSend.PushProcE(ch.x.proc, ch.cur, deadline); res != sim.WaitOK {
		return ch.x.waitErr(res, "push", ch.port, ch.dst)
	}
	if ch.credited {
		ch.credits -= ch.n
	}
	ch.cur = packet.Packet{}
	ch.n = 0
	return nil
}

// RecvChannel is a transient point-to-point receive channel
// (SMI_Open_recv_channel). The channel closes implicitly after count
// elements have been popped.
type RecvChannel struct {
	x   *Ctx
	ep  *endpoint
	dt  Datatype
	vec int

	count    int
	received int
	src      int // expected global source rank
	port     int

	// patience is the per-operation deadline in cycles (0 = none).
	patience int64

	cur  packet.Packet
	have int // unread elements in cur
	pos  int // next element index in cur

	// Credit-based flow control state: elements drained since the last
	// grant, the batch size at which grants are sent, and the total
	// granted so far. Total grants are capped at count minus the initial
	// credit so the sender's budget is exactly count elements and no
	// stale credits outlive the channel.
	credited   bool
	freed      int
	grantBatch int
	granted    int

	// Circuit switching state: the leading OpOpen has been consumed.
	circuit bool
	opened  bool

	// Streaming state: the rendezvous handshake, the expected fragment
	// sequence number, and the words/elements left in the fragment whose
	// header was last consumed.
	streaming bool
	specPort  bool
	rvSeen    bool // rendezvous request consumed
	rvDone    bool // grant pushed
	seq       uint32
	fragWords int
	fragElems int
}

// OpenRecvChannel opens a transient channel to receive count elements of
// type dt from rank source (relative to comm) on the given port. Options
// (e.g. WithDeadline) bound the blocking behavior of subsequent
// operations.
func (x *Ctx) OpenRecvChannel(count int, dt Datatype, source, port int, comm Comm, opts ...ChannelOption) (*RecvChannel, error) {
	ep, err := x.endpointFor(port, P2P, dt, count, comm)
	if err != nil {
		return nil, err
	}
	if source < 0 || source >= comm.size {
		return nil, fmt.Errorf("smi: source %d outside %v", source, comm)
	}
	if ep.inUseRecv {
		return nil, fmt.Errorf("smi: rank %d port %d already has an open recv channel", x.rank, port)
	}
	srcGlobal := comm.Global(source)
	o := x.resolveOpts(opts)
	ch := &RecvChannel{
		x: x, ep: ep, dt: dt, vec: ep.spec.VecWidth,
		count: count, src: srcGlobal, port: port, patience: o.patience,
	}
	if ep.spec.Credited || ep.spec.Streaming {
		if ep.inUseSend {
			return nil, fmt.Errorf("smi: rank %d port %d: credited and streaming ports are half-duplex", x.rank, port)
		}
		if srcGlobal == x.rank {
			return nil, fmt.Errorf("smi: rank %d port %d: credited and streaming channels cannot target their own rank", x.rank, port)
		}
		ep.inUseSend = true
	}
	if ep.spec.Credited {
		ch.credited = true
		ch.grantBatch = ep.spec.BufferElems / 2
		epp := dt.ElemsPerPacket()
		if ch.grantBatch < epp {
			ch.grantBatch = epp
		}
	}
	ch.circuit = ep.spec.Circuit
	ch.specPort = ep.spec.Streaming
	ch.streaming = ep.spec.Streaming && count > ep.spec.BufferElems
	ep.inUseRecv = true
	return ch, nil
}

// opDeadline converts the channel's patience into an absolute deadline
// for one operation starting now.
func (ch *RecvChannel) opDeadline() int64 {
	if ch.patience <= 0 {
		return sim.Never
	}
	return ch.x.Now() + ch.patience
}

// Pop blocks until the next element arrives and returns its raw bits.
// Popping past count elements panics, as does receiving a packet from an
// unexpected source (a mismatched program). A runtime failure panics
// with the ChannelError that PopE would return.
func (ch *RecvChannel) Pop() uint64 {
	bits, err := ch.PopE()
	if err != nil {
		panic(err)
	}
	return bits
}

// PopE is Pop with a recoverable error surface: runtime failures are
// returned as a *ChannelError instead of panicking. A failed pop
// consumes no element — the same element is delivered by a successful
// retry. Popping past count elements and protocol violations (wrong
// source, wrong op) still panic: those are programming errors.
func (ch *RecvChannel) PopE() (uint64, error) {
	if ch.received >= ch.count {
		panic(fmt.Sprintf("smi: pop beyond message size %d on port %d", ch.count, ch.port))
	}
	if err := ch.x.runtimeErr("pop", ch.port, ch.src); err != nil {
		return 0, err
	}
	deadline := ch.opDeadline()
	if ch.have == 0 {
		var err error
		if ch.streaming {
			err = ch.fetchStreamE(deadline)
		} else {
			err = ch.fetchE(deadline)
		}
		if err != nil {
			return 0, err
		}
	}
	var bits uint64
	if ch.circuit || ch.streaming {
		bits = ch.cur.RawElem(ch.pos, ch.dt)
	} else {
		bits = ch.cur.Elem(ch.pos, ch.dt)
	}
	ch.pos++
	ch.have--
	ch.received++
	if ch.credited {
		ch.freed++
		if ch.freed >= ch.grantBatch {
			if err := ch.sendCreditE(deadline); err != nil {
				// Roll back the consumed element; cur still holds it, so
				// a retry re-delivers it and re-attempts the grant.
				ch.freed--
				ch.received--
				ch.have++
				ch.pos--
				return 0, err
			}
		}
	}
	if ch.received == ch.count {
		ch.opened = false
		if ch.credited || ch.specPort {
			ch.ep.inUseSend = false
		}
		ch.ep.inUseRecv = false // channel implicitly closed
	}
	return bits, nil
}

// PopN fills bits in order, returning how many elements were delivered
// and the first error. On error the remaining elements (bits[n:]) may be
// retried.
func (ch *RecvChannel) PopN(bits []uint64) (int, error) {
	for i := range bits {
		b, err := ch.PopE()
		if err != nil {
			return i, err
		}
		bits[i] = b
	}
	return len(bits), nil
}

// sendCreditE returns drained buffer space to the sender, never granting
// more than the sender can still use. Channel state is only updated
// after the grant packet is accepted, so a failed grant can be retried.
func (ch *RecvChannel) sendCreditE(deadline int64) error {
	avail := ch.count - ch.ep.spec.BufferElems - ch.granted
	if avail <= 0 {
		ch.freed = 0 // the sender's budget already covers the message
		return nil
	}
	n := ch.freed
	if n > avail {
		n = avail
	}
	grant := packet.Packet{
		Src: uint16(ch.x.rank), Dst: uint16(ch.src), Port: uint8(ch.port),
		Op: packet.OpCredit,
	}
	packet.EncodeCreditElems(&grant, uint32(n))
	if res := ch.ep.appSend.PushProcE(ch.x.proc, grant, deadline); res != sim.WaitOK {
		return ch.x.waitErr(res, "pop", ch.port, ch.src)
	}
	ch.granted += n
	ch.freed = 0
	return nil
}

// Remaining returns how many elements are still to be popped.
func (ch *RecvChannel) Remaining() int { return ch.count - ch.received }

// fetchE pops the next data packet from the endpoint. Malformed traffic
// (wrong op, wrong source, empty packets) panics — a mismatched program
// is a bug, not a runtime condition.
func (ch *RecvChannel) fetchE(deadline int64) error {
	pkt, res := ch.ep.appRecv.PopProcE(ch.x.proc, deadline)
	if res != sim.WaitOK {
		return ch.x.waitErr(res, "pop", ch.port, ch.src)
	}
	if ch.circuit && !ch.opened {
		// The circuit's establishment packet arrives first.
		if pkt.Op != packet.OpOpen {
			panic(fmt.Sprintf("smi: rank %d port %d: expected circuit OPEN, got %v", ch.x.rank, ch.port, pkt.Op))
		}
		if int(pkt.Src) != ch.src {
			panic(fmt.Sprintf("smi: rank %d port %d: circuit from rank %d, expected %d", ch.x.rank, ch.port, pkt.Src, ch.src))
		}
		if got := int(packet.DecodeOpen(pkt).Elems); got != ch.count {
			panic(fmt.Sprintf("smi: rank %d port %d: circuit announces %d elements, channel expects %d", ch.x.rank, ch.port, got, ch.count))
		}
		ch.opened = true
		pkt, res = ch.ep.appRecv.PopProcE(ch.x.proc, deadline)
		if res != sim.WaitOK {
			return ch.x.waitErr(res, "pop", ch.port, ch.src)
		}
	}
	wantOp := packet.OpData
	if ch.circuit {
		wantOp = packet.OpRaw
	}
	if pkt.Op != wantOp {
		panic(fmt.Sprintf("smi: rank %d port %d: unexpected %v packet on recv channel", ch.x.rank, ch.port, pkt.Op))
	}
	if !ch.circuit && int(pkt.Src) != ch.src {
		panic(fmt.Sprintf("smi: rank %d port %d: packet from rank %d, expected %d", ch.x.rank, ch.port, pkt.Src, ch.src))
	}
	if pkt.Count == 0 {
		panic(fmt.Sprintf("smi: rank %d port %d: empty data packet", ch.x.rank, ch.port))
	}
	// Charge the cycles a pipelined consumer spends draining the packet.
	cycles := int64((int(pkt.Count) + ch.vec - 1) / ch.vec)
	if cycles > 1 {
		ch.x.proc.Sleep(cycles - 1)
	}
	ch.cur = pkt
	ch.have = int(pkt.Count)
	ch.pos = 0
	return nil
}

// fetchStreamE pops the next raw word on the streaming path. The first
// call completes the receiver half of the rendezvous (consume the
// request, push the grant); fragment headers are consumed and validated
// at fragment boundaries. Each leg is guarded by its own state flag so a
// failed wait resumes exactly where it left off without consuming or
// duplicating protocol packets. Malformed traffic panics — a mismatched
// program is a bug, not a runtime condition.
func (ch *RecvChannel) fetchStreamE(deadline int64) error {
	if !ch.rvDone {
		if !ch.rvSeen {
			req, res := ch.ep.appRecv.PopProcE(ch.x.proc, deadline)
			if res != sim.WaitOK {
				return ch.x.waitErr(res, "pop", ch.port, ch.src)
			}
			if req.Op != packet.OpStreamCtl || int(req.Src) != ch.src {
				panic(fmt.Sprintf("smi: rank %d port %d: expected stream request from %d, got %v",
					ch.x.rank, ch.port, ch.src, req))
			}
			if c := packet.DecodeStreamCtl(req); c.Kind != packet.StreamReq || int(c.Elems) != ch.count {
				panic(fmt.Sprintf("smi: rank %d port %d: stream request %+v mismatches %d-element channel",
					ch.x.rank, ch.port, c, ch.count))
			}
			ch.rvSeen = true
		}
		// Grant the whole message: the rendezvous guarantees this receiver
		// is parked on the channel draining it, which is what bounds the
		// data's residence in the shared transport.
		grant := packet.EncodeStreamCtl(uint16(ch.x.rank), uint16(ch.src), uint8(ch.port),
			packet.StreamCtl{Kind: packet.StreamGrant, Elems: uint32(ch.count)})
		if res := ch.ep.appSend.PushProcE(ch.x.proc, grant, deadline); res != sim.WaitOK {
			return ch.x.waitErr(res, "pop", ch.port, ch.src)
		}
		ch.rvDone = true
	}
	if ch.fragWords == 0 {
		hdr, res := ch.ep.appRecv.PopProcE(ch.x.proc, deadline)
		if res != sim.WaitOK {
			return ch.x.waitErr(res, "pop", ch.port, ch.src)
		}
		if hdr.Op != packet.OpStream || int(hdr.Src) != ch.src {
			panic(fmt.Sprintf("smi: rank %d port %d: expected stream fragment from %d, got %v",
				ch.x.rank, ch.port, ch.src, hdr))
		}
		f := packet.DecodeStreamFrag(hdr)
		if f.Seq != ch.seq {
			panic(fmt.Sprintf("smi: rank %d port %d: stream fragment seq %d, expected %d",
				ch.x.rank, ch.port, f.Seq, ch.seq))
		}
		if f.Words == 0 || f.Elems == 0 || int(f.Elems) > ch.count-ch.received {
			panic(fmt.Sprintf("smi: rank %d port %d: malformed stream fragment %+v", ch.x.rank, ch.port, f))
		}
		if f.Last != (ch.received+int(f.Elems) == ch.count) {
			panic(fmt.Sprintf("smi: rank %d port %d: stream fragment %+v mislabels the message end",
				ch.x.rank, ch.port, f))
		}
		ch.seq++
		ch.fragWords = int(f.Words)
		ch.fragElems = int(f.Elems)
	}
	pkt, res := ch.ep.appRecv.PopProcE(ch.x.proc, deadline)
	if res != sim.WaitOK {
		return ch.x.waitErr(res, "pop", ch.port, ch.src)
	}
	if pkt.Op != packet.OpRaw {
		panic(fmt.Sprintf("smi: rank %d port %d: unexpected %v packet inside a stream fragment", ch.x.rank, ch.port, pkt.Op))
	}
	if pkt.Count == 0 || int(pkt.Count) > ch.fragElems {
		panic(fmt.Sprintf("smi: rank %d port %d: stream word carries %d elements, fragment has %d left",
			ch.x.rank, ch.port, pkt.Count, ch.fragElems))
	}
	ch.fragWords--
	ch.fragElems -= int(pkt.Count)
	if ch.fragWords == 0 && ch.fragElems != 0 {
		panic(fmt.Sprintf("smi: rank %d port %d: stream fragment ended with %d elements missing",
			ch.x.rank, ch.port, ch.fragElems))
	}
	// Charge the cycles a pipelined consumer spends draining the word.
	cycles := int64((int(pkt.Count) + ch.vec - 1) / ch.vec)
	if cycles > 1 {
		ch.x.proc.Sleep(cycles - 1)
	}
	ch.cur = pkt
	ch.have = int(pkt.Count)
	ch.pos = 0
	return nil
}
