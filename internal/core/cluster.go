package smi

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/fpga"
	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/vistrace"
)

// Config assembles an SMI cluster: the wiring, the program's declared
// ports, and the transport parameters.
type Config struct {
	// Topology is the physical interconnect (required).
	Topology *topology.Topology
	// Program declares every SMI port the application uses (required).
	Program ProgramSpec
	// RoutingPolicy selects the route generator algorithm (default
	// ShortestPath; use routing.UpDown for provable deadlock freedom).
	RoutingPolicy routing.Policy
	// Routes, if non-nil, supplies precomputed routing tables instead of
	// running the route generator — the warm-cache hook the smid service
	// uses to reuse one verified table across identical-topology jobs.
	// The tables must match the topology's device and interface counts
	// and the configured RoutingPolicy; the cluster clones them, so the
	// caller's copy is never mutated by failover re-routing.
	Routes *routing.Routes
	// Transport tunes the transport layer: the implementation
	// (Transport.Kind, parse strings with transport.Parse), the CK
	// arbiter (Transport.Arbiter, parse with transport.ParseArbiter),
	// the polling factor R, FIFO depths, and the receiver-driven pacing
	// knobs. The receiver-driven transport's pacing ops have no wire
	// encoding, so it is rejected together with Reliable/Faults and with
	// circuit or streaming ports.
	Transport transport.Config
	// LinkLatency is the one-way serial link latency in cycles
	// (default link.DefaultLatency).
	LinkLatency int64
	// ClockHz is the design clock (default sim.DefaultClockHz,
	// 156.25 MHz: one 32-byte packet per cycle = 40 Gbit/s per link).
	ClockHz float64
	// Board describes the FPGA card at every rank (default the
	// Nallatech 520N used in the paper's evaluation).
	Board fpga.Board
	// MaxCycles bounds the simulation (default 4e9 cycles ≈ 25 s of
	// simulated time).
	MaxCycles int64
	// Trace, if non-nil, receives a per-event text trace (slow).
	Trace io.Writer
	// ChromeTrace, if non-nil, receives a Chrome trace-event JSON file
	// (load in chrome://tracing or Perfetto) with one lane per
	// application kernel and hardware kernel, written when Run finishes.
	// One trace microsecond equals one simulated cycle.
	ChromeTrace io.Writer
	// Faults attaches a deterministic fault-injection schedule to the
	// inter-FPGA links and implies the reliable link layer. nil keeps the
	// paper's pristine links. A spec with no faults scheduled still runs
	// the retransmission protocol, which is timing-transparent: cycle
	// counts match the pristine links bit for bit.
	Faults *fault.Spec
	// Reliable forces the link-level retransmission protocol even
	// without a fault spec.
	Reliable bool
	// LinkParams tunes the retransmission protocol; zero values pick
	// latency-derived defaults.
	LinkParams link.ReliableParams
	// RepairCycles is the simulated host reaction time a failover
	// charges between detecting a dead cable and re-enabling the
	// transport kernels on regenerated routes (default 400 cycles).
	RepairCycles int64
	// Scheduler selects the simulator's scheduling mode: the default
	// sim.SchedEvent activity-set scheduler, sim.SchedDense, the
	// reference dense scan, sim.SchedShard, the fixed-window conservative
	// parallel scheduler, or sim.SchedShardAdaptive, the per-boundary
	// adaptive-lookahead scheduler with deterministic work stealing (see
	// Shards). All modes produce bit-identical runs; dense is kept for
	// parity testing and as a benchmark baseline.
	Scheduler sim.SchedulerKind
	// Shards engages the sharded engine builds. Under sim.SchedShard the
	// cluster's ranks are partitioned into that many self-contained
	// engine shards (contiguous rank ranges) connected only through the
	// link boundaries, advancing on worker goroutines and synchronizing
	// every link-latency lookahead window; under the serial schedulers
	// the same sharded structure runs one shard at a time (the exact
	// comparator). Under sim.SchedShardAdaptive every rank becomes its
	// own engine and Shards sets the worker count: each engine advances
	// to its own per-boundary safe horizon and ownership is rebalanced
	// deterministically between rounds. 0 or 1 keeps the classic
	// single-engine build. Reliable and fault-injected clusters shard
	// too — the split link halves keep the retransmission protocol's
	// couplings engine-local and the failover manager runs as a
	// barrier-stepped coordinator. Tracing (Trace/ChromeTrace) is
	// rejected with Shards > 1.
	Shards int
	// Progress, if non-nil, is called between cycles whenever the clock
	// crosses a multiple of ProgressEvery cycles (default 1_000_000 when
	// a callback is set). Purely observational: it never changes cycle
	// counts, so instrumented and bare runs stay bit-identical.
	Progress      func(cycle int64)
	ProgressEvery int64
}

// Cluster is a multi-FPGA system ready to execute rank programs.
type Cluster struct {
	cfg    Config
	engs   []*sim.Engine // one engine per shard, ranks in contiguous ranges
	group  *sim.Group    // barrier driver, nil when len(engs) == 1
	shards int
	routes *routing.Routes
	world  Comm
	clock  sim.Clock
	board  fpga.Board

	ranks    []*rankState
	links    []*link.Link
	rlinks   []*link.ReliableLink
	cables   []*cable
	injector *fault.Injector
	manager  *faultManager
	procs    int
	ran      bool
	tracer   *vistrace.Tracer
}

type rankState struct {
	rank     int
	dev      transport.Transport
	eps      map[int]*endpoint
	supports []*supportKernel
}

// endpoint is the application-facing side of one port at one rank.
type endpoint struct {
	spec PortSpec
	// appSend carries packets from the application toward the network:
	// directly into CKS for P2P ports, into the support kernel for
	// collective ports. appRecv is the symmetric receive side.
	appSend *sim.Fifo[packet.Packet]
	appRecv *sim.Fifo[packet.Packet]
	// inUseSend/inUseRecv guard against two open channels using the same
	// endpoint direction concurrently (hardware has one wire per side).
	inUseSend bool
	inUseRecv bool
}

// NewCluster validates the configuration, generates routes, and builds
// every rank's endpoint FIFOs, collective support kernels, transport
// layer, and inter-FPGA links — the work the paper splits between its
// code generator, route generator, and host setup (Fig 8).
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("smi: config needs a topology")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topology.Devices > packet.MaxRanks {
		return nil, fmt.Errorf("smi: %d devices exceed the simulator's %d-rank limit",
			cfg.Topology.Devices, packet.MaxRanks)
	}
	if err := cfg.Program.Validate(); err != nil {
		return nil, err
	}
	if cfg.Board.Name == "" {
		cfg.Board = fpga.Nallatech520N()
	}
	if cfg.ClockHz <= 0 {
		cfg.ClockHz = sim.DefaultClockHz
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 4_000_000_000
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.LinkLatency < 0 {
		return nil, fmt.Errorf("smi: negative link latency %d", cfg.LinkLatency)
	}
	if cfg.RepairCycles <= 0 {
		cfg.RepairCycles = 400
	}
	reliable := cfg.Reliable || cfg.Faults != nil
	if cfg.Transport.Kind == transport.ReceiverDrivenKind {
		// The pacing control ops are in-memory packets with no 3-bit wire
		// encoding (the wire op space is full), so they cannot cross the
		// serializing reliable link layer, and circuit/streaming locks
		// would bypass the pacing gates. Fail loudly rather than silently
		// falling back to sender-driven — benches assert on this.
		if reliable {
			return nil, fmt.Errorf("smi: the receiver-driven transport requires pristine links (its pacing ops have no wire encoding); disable Reliable/Faults")
		}
		for i := range cfg.Program.Ports {
			if cfg.Program.Ports[i].Circuit || cfg.Program.Ports[i].Streaming {
				return nil, fmt.Errorf("smi: port %d: circuit/streaming ports bypass receiver-driven pacing; use the sender-driven transport", cfg.Program.Ports[i].Port)
			}
		}
	}
	if reliable && cfg.Topology.Devices > packet.MaxWireRanks {
		// The reliable layer serializes packets into 32-byte wire frames
		// whose rank fields are 8 bits wide (the paper's header format);
		// larger clusters run pristine links only.
		return nil, fmt.Errorf("smi: %d devices exceed the %d-rank limit of the 8-bit wire header required by reliable links",
			cfg.Topology.Devices, packet.MaxWireRanks)
	}
	shards := cfg.Shards
	if shards < 0 {
		return nil, fmt.Errorf("smi: negative shard count %d", cfg.Shards)
	}
	if shards > cfg.Topology.Devices {
		return nil, fmt.Errorf("smi: %d shards exceed the cluster's %d ranks", shards, cfg.Topology.Devices)
	}
	if shards == 0 {
		shards = 1
	}
	if shards > 1 && (cfg.Trace != nil || cfg.ChromeTrace != nil) {
		return nil, fmt.Errorf("smi: tracing records a single global event order and cannot run with %d shards", shards)
	}
	// Adaptive lookahead gives every rank its own engine so horizons are
	// truly per-boundary; Shards then sets the worker-slot count.
	adaptive := cfg.Scheduler == sim.SchedShardAdaptive && shards > 1
	nEng := shards
	if adaptive {
		nEng = cfg.Topology.Devices
	}

	var routes *routing.Routes
	if cfg.Routes != nil {
		if cfg.Routes.Devices != cfg.Topology.Devices || cfg.Routes.Ifaces != cfg.Topology.Ifaces {
			return nil, fmt.Errorf("smi: precomputed routes are for %d devices/%d ifaces, topology has %d/%d",
				cfg.Routes.Devices, cfg.Routes.Ifaces, cfg.Topology.Devices, cfg.Topology.Ifaces)
		}
		if cfg.Routes.Policy != cfg.RoutingPolicy {
			return nil, fmt.Errorf("smi: precomputed routes use policy %v, config asks for %v",
				cfg.Routes.Policy, cfg.RoutingPolicy)
		}
		// Failover overwrites the tables in place; never mutate the
		// caller's (possibly cached and shared) copy.
		routes = cfg.Routes.Clone()
	} else {
		var err error
		routes, err = routing.Compute(cfg.Topology, cfg.RoutingPolicy)
		if err != nil {
			return nil, err
		}
	}

	engs := make([]*sim.Engine, nEng)
	for i := range engs {
		e := sim.NewEngine()
		e.SetScheduler(cfg.Scheduler)
		e.SetMaxCycles(cfg.MaxCycles)
		engs[i] = e
	}
	if cfg.Trace != nil {
		engs[0].SetTrace(cfg.Trace)
	}
	progressEvery := cfg.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 1_000_000
	}
	if cfg.Progress != nil && nEng == 1 {
		engs[0].SetProgress(progressEvery, cfg.Progress)
	}
	var tracer *vistrace.Tracer
	if cfg.ChromeTrace != nil {
		tracer = vistrace.New()
		engs[0].SetRecorder(tracer)
	}

	c := &Cluster{
		cfg:    cfg,
		engs:   engs,
		shards: nEng,
		routes: routes,
		world:  Comm{base: 0, size: cfg.Topology.Devices},
		clock:  sim.Clock{Hz: cfg.ClockHz},
		board:  cfg.Board,
		tracer: tracer,
	}
	engFor := c.engFor

	ifaces := cfg.Topology.Ifaces
	for r := 0; r < cfg.Topology.Devices; r++ {
		eng := engFor(r) // every per-rank component lives on the rank's shard
		rs := &rankState{rank: r, eps: make(map[int]*endpoint)}
		var bindings []transport.PortBinding
		for i := range cfg.Program.Ports {
			spec := cfg.Program.Ports[i] // copy
			spec.fill(i, ifaces)
			epp := spec.Type.ElemsPerPacket()
			depth := (spec.BufferElems + epp - 1) / epp
			if depth < 2 {
				depth = 2
			}
			name := func(side string) string {
				return fmt.Sprintf("r%d.p%d.%s", r, spec.Port, side)
			}
			ep := &endpoint{spec: spec}
			if spec.Kind == P2P {
				ep.appSend = sim.NewFifo[packet.Packet](eng, name("send"), depth)
				ep.appRecv = sim.NewFifo[packet.Packet](eng, name("recv"), depth)
				bindings = append(bindings, transport.PortBinding{
					Port: spec.Port, Iface: spec.Iface, Send: ep.appSend, Recv: ep.appRecv,
					// Plain P2P data ports are subject to receiver-driven
					// pacing; circuit and streaming ports run their own
					// protocols (and are rejected above for that transport).
					Paced: !spec.Circuit && !spec.Streaming,
				})
			} else {
				// Collective port: the support kernel sits between the
				// application FIFOs and the transport layer.
				recvDepth := depth
				if spec.Kind == Reduce {
					// The root must always be able to flush a full credit
					// tile to its application FIFO, or flow control jams.
					tilePkts := spec.CreditElems / epp
					if recvDepth < tilePkts+2 {
						recvDepth = tilePkts + 2
					}
				}
				ep.appSend = sim.NewFifo[packet.Packet](eng, name("app2sup"), depth)
				ep.appRecv = sim.NewFifo[packet.Packet](eng, name("sup2app"), recvDepth)
				supSend := sim.NewFifo[packet.Packet](eng, name("sup.send"), depth)
				supRecv := sim.NewFifo[packet.Packet](eng, name("sup.recv"), depth)
				sup := newSupportKernel(fmt.Sprintf("r%d.p%d.%s", r, spec.Port, spec.Kind),
					r, spec, ep.appSend, ep.appRecv, supSend, supRecv)
				supID := eng.AddKernel(sup)
				// Commits on the inbound FIFOs and pops on the outbound
				// ones are the only events that can unpark the kernel.
				ep.appSend.WakesKernel(supID)
				ep.appRecv.WakesKernel(supID)
				supSend.WakesKernel(supID)
				supRecv.WakesKernel(supID)
				rs.supports = append(rs.supports, sup)
				bindings = append(bindings, transport.PortBinding{
					Port: spec.Port, Iface: spec.Iface, Send: supSend, Recv: supRecv,
				})
			}
			rs.eps[spec.Port] = ep
		}
		dev, err := transport.New(eng, r, ifaces, routes, bindings, cfg.Transport)
		if err != nil {
			return nil, err
		}
		rs.dev = dev
		c.ranks = append(c.ranks, rs)
	}

	if reliable {
		c.injector = fault.NewInjector(cfg.Faults)
	}
	if cfg.Faults != nil {
		// Scripted events must name real directed links, or the schedule
		// silently does nothing — a misspelled link is a spec bug.
		names := make(map[string]bool, 2*len(cfg.Topology.Connections))
		for _, conn := range cfg.Topology.Connections {
			names[fmt.Sprintf("%s->%s", conn.A, conn.B)] = true
			names[fmt.Sprintf("%s->%s", conn.B, conn.A)] = true
		}
		for _, ev := range cfg.Faults.Events {
			if ev.Link == "" { // wildcard: applies to every link
				continue
			}
			if !names[ev.Link] {
				return nil, fmt.Errorf("smi: fault event names unknown link %q (links are \"dev:iface->dev:iface\")", ev.Link)
			}
		}
	}
	for _, conn := range cfg.Topology.Connections {
		a, b := conn.A, conn.B
		nameAB := fmt.Sprintf("%s->%s", a, b)
		nameBA := fmt.Sprintf("%s->%s", b, a)
		outA, inA := c.ranks[a.Device].dev.NetOut(a.Iface), c.ranks[a.Device].dev.NetIn(a.Iface)
		outB, inB := c.ranks[b.Device].dev.NetOut(b.Iface), c.ranks[b.Device].dev.NetIn(b.Iface)
		if reliable {
			ab, ba := link.NewReliablePair(engFor(a.Device), engFor(b.Device), nameAB, nameBA,
				outA, inB, outB, inA, cfg.LinkLatency, cfg.LinkParams,
				c.injector.ForLink(nameAB), c.injector.ForLink(nameBA),
				c.injector.ForLinkExit(nameAB), c.injector.ForLinkExit(nameBA))
			c.rlinks = append(c.rlinks, ab, ba)
			c.cables = append(c.cables, &cable{conn: conn, ab: ab, ba: ba})
		} else {
			c.links = append(c.links,
				link.New(engFor(a.Device), engFor(b.Device), nameAB, outA, inB, cfg.LinkLatency),
				link.New(engFor(b.Device), engFor(a.Device), nameBA, outB, inA, cfg.LinkLatency),
			)
		}
	}
	if reliable {
		c.manager = newFaultManager(c, cfg.RepairCycles)
		if nEng == 1 {
			// Registered after every link so a death declared in cycle t
			// is handled the same cycle.
			engs[0].AddKernel(c.manager)
		} else {
			// Sharded build: the manager is not a kernel (its tick reads
			// every cable's state, which now spans engines) but a
			// coordinator the group drives at barriers, reproducing the
			// dense kernel tick with all engines stopped.
			c.manager.barrier = true
		}
	}
	if nEng > 1 {
		if adaptive {
			c.group = sim.NewAdaptiveGroup(engs, cfg.MaxCycles, shards)
		} else {
			c.group = sim.NewGroup(engs, cfg.MaxCycles, cfg.Scheduler == sim.SchedShard)
		}
		if c.manager != nil {
			c.group.SetCoordinator(c.manager)
		}
		if cfg.Progress != nil {
			c.group.SetProgress(progressEvery, cfg.Progress)
		}
	}
	return c, nil
}

// engFor maps a rank to its engine shard: shard i owns the i-th of
// `shards` contiguous, balanced rank ranges.
func (c *Cluster) engFor(rank int) *sim.Engine {
	return c.engs[rank*c.shards/c.cfg.Topology.Devices]
}

// Size returns the number of ranks in the cluster.
func (c *Cluster) Size() int { return len(c.ranks) }

// Clock returns the cluster's clock for cycle/time conversions.
func (c *Cluster) Clock() sim.Clock { return c.clock }

// Board returns the FPGA board model of every rank.
func (c *Cluster) Board() fpga.Board { return c.board }

// Routes exposes the routing tables (useful for inspecting hop counts).
func (c *Cluster) Routes() *routing.Routes { return c.routes }

// Failed reports whether the fault manager has declared the cluster
// failed (a permanent link death whose repair was impossible). Once
// failed, every channel operation returns ClusterFailed.
func (c *Cluster) Failed() bool {
	return c.manager != nil && c.manager.state == fmFailed
}

// FailureCause returns the error that failed the cluster, or nil.
func (c *Cluster) FailureCause() error {
	if c.manager == nil {
		return nil
	}
	return c.manager.err
}

// OnRank registers a rank program: an application kernel running on the
// given rank. Several kernels may run on one rank (MPMD); each gets its
// own Ctx. Kernels start at cycle 0 when Run is called.
func (c *Cluster) OnRank(rank int, name string, body func(*Ctx)) error {
	if rank < 0 || rank >= len(c.ranks) {
		return fmt.Errorf("smi: rank %d out of range [0,%d)", rank, len(c.ranks))
	}
	if c.ran {
		return fmt.Errorf("smi: cluster already ran")
	}
	x := &Ctx{c: c, rank: rank}
	x.proc = sim.NewProc(c.engFor(rank), fmt.Sprintf("r%d.%s", rank, name), func(p *sim.Proc) {
		body(x)
	})
	c.procs++
	return nil
}

// SPMD registers the same program on every rank (single program,
// multiple data).
func (c *Cluster) SPMD(name string, body func(*Ctx)) error {
	for r := 0; r < len(c.ranks); r++ {
		if err := c.OnRank(r, name, body); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes one cluster execution. The JSON form is the stats
// schema shared by the smid service (job results) and smibench -json
// (bench results), so the two are directly diffable.
type Stats struct {
	// Transport names the transport implementation the cluster actually
	// built ("sender-driven" or "receiver-driven") — the self-report
	// loud-fallback checks verify against the requested transport.
	Transport string `json:"transport"`
	// Cycles is the completion cycle of the slowest rank program.
	Cycles int64 `json:"cycles"`
	// Micros is Cycles converted to simulated microseconds.
	Micros float64 `json:"micros"`
	// PacketsDelivered is the total count of packets moved across all
	// inter-FPGA links.
	PacketsDelivered uint64 `json:"packets_delivered"`
	// PacketsDropped counts undeliverable packets (normally 0).
	PacketsDropped uint64 `json:"packets_dropped"`
	// StreamFragments counts stream fragments cut through communication
	// kernels (each fragment once per kernel it crossed): nonzero iff the
	// streaming large-message path was exercised.
	StreamFragments uint64 `json:"stream_fragments,omitempty"`
	// Grants counts receiver-driven pacing grants issued across all
	// ranks: nonzero iff receiver-driven pacing actually engaged (0
	// under the sender-driven transport).
	Grants uint64 `json:"grants,omitempty"`
	// LinkStalls counts cycles link heads spent blocked on full receiver
	// FIFOs (backpressure).
	LinkStalls uint64 `json:"link_stalls"`
	// Retransmits counts data frames the reliable link layer sent more
	// than once (always 0 in fault-free runs).
	Retransmits uint64 `json:"retransmits"`
	// CrcErrors counts frames receivers discarded as corrupt.
	CrcErrors uint64 `json:"crc_errors"`
	// FaultsInjected aggregates what the fault injector actually did.
	FaultsInjected fault.Counters `json:"faults_injected"`
	// Failovers counts permanent-link-death repairs performed.
	Failovers int `json:"failovers"`
	// FailoverCycles is the total cycles between death detection and
	// traffic resume, across all failovers.
	FailoverCycles int64 `json:"failover_cycles"`
	// RescuedPackets counts packets the failover controller re-injected
	// on regenerated routes.
	RescuedPackets uint64 `json:"rescued_packets"`
	// ClusterFailed reports that the fault manager declared the cluster
	// unrepairable. A run can still complete cleanly in this state if
	// every rank program recovers from the ClusterFailed channel errors
	// and returns.
	ClusterFailed bool `json:"cluster_failed"`
	// Sched reports how the engine spent the run: which scheduler ran,
	// how many cycles were executed versus skipped by fast-forward, and
	// the kernel-tick / proc-step / FIFO-commit work totals.
	Sched sim.SchedStats `json:"sched"`
}

// LinkStats describes the traffic one directed link carried during a
// run: useful for spotting hot links and congestion in a mapping.
type LinkStats struct {
	Name      string
	Delivered uint64
	// Stalls counts cycles the link head spent blocked on a full
	// receiver FIFO (backpressure).
	Stalls uint64
	// Retransmits and CrcErrors are the reliable layer's repair work on
	// this direction (0 on pristine links).
	Retransmits uint64
	CrcErrors   uint64
	// Utilization is Delivered divided by the total cycles of the run.
	Utilization float64
}

// LinkStats reports per-link traffic after Run (sorted by the builder's
// link order: both directions of each cable in topology order).
func (c *Cluster) LinkStats() []LinkStats {
	cycles := c.cycles()
	out := make([]LinkStats, 0, len(c.links)+len(c.rlinks))
	for _, l := range c.links {
		st := LinkStats{Name: l.Name(), Delivered: l.Delivered(), Stalls: l.Stalls()}
		if cycles > 0 {
			st.Utilization = float64(l.Delivered()) / float64(cycles)
		}
		out = append(out, st)
	}
	for _, l := range c.rlinks {
		st := LinkStats{Name: l.Name(), Delivered: l.Delivered(), Stalls: l.Stalls(),
			Retransmits: l.Retransmits(), CrcErrors: l.CrcErrors()}
		if cycles > 0 {
			st.Utilization = float64(l.Delivered()) / float64(cycles)
		}
		out = append(out, st)
	}
	return out
}

// cycles returns the run's quoted cycle count: the group's
// barrier-derived count for sharded builds (invariant under the shard
// count), the engine clock otherwise.
func (c *Cluster) cycles() int64 {
	if c.group != nil {
		return c.group.Cycles()
	}
	return c.engs[0].Now()
}

// schedStats assembles the scheduler-effort report for Stats.
func (c *Cluster) schedStats() sim.SchedStats {
	if c.group != nil {
		return c.group.SchedStats(c.cfg.Scheduler)
	}
	st := c.engs[0].SchedStats()
	if c.cfg.Scheduler == sim.SchedShard || c.cfg.Scheduler == sim.SchedShardAdaptive {
		// A one-shard "shard" run executes on the plain event loop with
		// no barriers to count.
		st.Shards = 1
	}
	return st
}

// Run executes every registered rank program to completion and returns
// timing and traffic statistics. It fails on deadlock (with a diagnostic
// of every blocked operation), on a rank program panic, or if MaxCycles
// is exceeded.
func (c *Cluster) Run() (Stats, error) {
	if c.procs == 0 {
		return Stats{}, fmt.Errorf("smi: no rank programs registered")
	}
	if c.ran {
		return Stats{}, fmt.Errorf("smi: cluster already ran")
	}
	c.ran = true
	var err error
	if c.group != nil {
		err = c.group.Run()
	} else {
		err = c.engs[0].Run()
	}
	if err != nil && c.manager != nil && c.manager.err != nil {
		// A failed repair quiesces whatever the abort wake-up could not
		// reach; a resulting deadlock or panic is a symptom, the repair
		// error is the cause. A clean engine finish is NOT overridden:
		// rank programs that recover from ClusterFailed channel errors
		// complete the run, with the failure recorded in Stats.
		err = c.manager.err
	}
	if c.tracer != nil {
		if c.injector != nil {
			for _, tf := range c.injector.Timeline() {
				c.tracer.Instant("fault:"+tf.Link, tf.Kind, tf.Cycle)
			}
		}
		if c.manager != nil {
			for _, tf := range c.manager.log {
				c.tracer.Instant("fault:manager", tf.Kind, tf.Cycle)
			}
		}
		if werr := c.tracer.Write(c.cfg.ChromeTrace); werr != nil && err == nil {
			err = fmt.Errorf("smi: writing chrome trace: %w", werr)
		}
	}
	st := Stats{Cycles: c.cycles(), Sched: c.schedStats()}
	st.Micros = c.clock.Micros(st.Cycles)
	for _, l := range c.links {
		st.PacketsDelivered += l.Delivered()
		st.LinkStalls += l.Stalls()
	}
	for _, l := range c.rlinks {
		st.PacketsDelivered += l.Delivered()
		st.LinkStalls += l.Stalls()
		st.Retransmits += l.Retransmits()
		st.CrcErrors += l.CrcErrors()
	}
	if c.injector != nil {
		st.FaultsInjected = c.injector.Counters()
	}
	if c.manager != nil {
		st.Failovers = c.manager.failovers
		st.FailoverCycles = c.manager.failoverCycles
		st.RescuedPackets = c.manager.rescued
		st.ClusterFailed = c.manager.state == fmFailed
	}
	for _, rs := range c.ranks {
		st.PacketsDropped += rs.dev.Dropped()
		st.StreamFragments += rs.dev.StreamFragments()
		st.Grants += rs.dev.Grants()
	}
	if len(c.ranks) > 0 {
		st.Transport = c.ranks[0].dev.Kind().String()
	}
	if err != nil {
		return st, err
	}
	for _, rs := range c.ranks {
		for _, sup := range rs.supports {
			if sup.bad > 0 {
				return st, fmt.Errorf("smi: support kernel %s saw %d protocol violations", sup.name, sup.bad)
			}
		}
	}
	return st, nil
}
