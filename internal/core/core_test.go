package smi

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

func busCluster(t *testing.T, n int, ports ...PortSpec) *Cluster {
	t.Helper()
	topo, err := topology.Bus(n)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{Topology: topo, Program: ProgramSpec{Ports: ports}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func torusCluster(t *testing.T, rows, cols int, ports ...PortSpec) *Cluster {
	t.Helper()
	topo, err := topology.Torus2D(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{Topology: topo, Program: ProgramSpec{Ports: ports}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestListing1 reproduces the paper's Listing 1: an MPMD program where
// rank 0 streams N integers to rank 1.
func TestListing1(t *testing.T) {
	const n = 100
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int})
	c.OnRank(0, "rank0", func(x *Ctx) {
		chs, err := x.OpenSendChannel(n, Int, 1, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			chs.PushInt(int32(i * 3))
		}
	})
	var got []int32
	c.OnRank(1, "rank1", func(x *Ctx) {
		chr, err := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			got = append(got, chr.PopInt())
		}
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i*3) {
			t.Fatalf("element %d = %d, want %d", i, v, i*3)
		}
	}
	if st.Cycles <= 0 || st.PacketsDelivered == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.PacketsDropped != 0 {
		t.Fatalf("dropped packets: %+v", st)
	}
}

func TestAllDatatypesRoundtrip(t *testing.T) {
	const n = 37 // deliberately not a multiple of any packing factor
	cases := []struct {
		dt   Datatype
		push func(ch *SendChannel, i int)
		pop  func(ch *RecvChannel, i int) error
	}{
		{Char,
			func(ch *SendChannel, i int) { ch.PushChar(byte(i)) },
			func(ch *RecvChannel, i int) error {
				if got := ch.PopChar(); got != byte(i) {
					return fmt.Errorf("char %d: got %d", i, got)
				}
				return nil
			}},
		{Short,
			func(ch *SendChannel, i int) { ch.PushShort(int16(-i * 7)) },
			func(ch *RecvChannel, i int) error {
				if got := ch.PopShort(); got != int16(-i*7) {
					return fmt.Errorf("short %d: got %d", i, got)
				}
				return nil
			}},
		{Int,
			func(ch *SendChannel, i int) { ch.PushInt(int32(i * 1000003)) },
			func(ch *RecvChannel, i int) error {
				if got := ch.PopInt(); got != int32(i*1000003) {
					return fmt.Errorf("int %d: got %d", i, got)
				}
				return nil
			}},
		{Float,
			func(ch *SendChannel, i int) { ch.PushFloat(float32(i) * 0.5) },
			func(ch *RecvChannel, i int) error {
				if got := ch.PopFloat(); got != float32(i)*0.5 {
					return fmt.Errorf("float %d: got %g", i, got)
				}
				return nil
			}},
		{Double,
			func(ch *SendChannel, i int) { ch.PushDouble(float64(i) * 0.25) },
			func(ch *RecvChannel, i int) error {
				if got := ch.PopDouble(); got != float64(i)*0.25 {
					return fmt.Errorf("double %d: got %g", i, got)
				}
				return nil
			}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dt.String(), func(t *testing.T) {
			c := busCluster(t, 2, PortSpec{Port: 0, Type: tc.dt})
			c.OnRank(0, "send", func(x *Ctx) {
				ch, err := x.OpenSendChannel(n, tc.dt, 1, 0, x.CommWorld())
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					tc.push(ch, i)
				}
			})
			c.OnRank(1, "recv", func(x *Ctx) {
				ch, err := x.OpenRecvChannel(n, tc.dt, 0, 0, x.CommWorld())
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					if err := tc.pop(ch, i); err != nil {
						t.Error(err)
						return
					}
				}
			})
			if _, err := c.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMultiHopMessage(t *testing.T) {
	// Rank 0 to rank 7 over a bus: 7 hops, transparent forwarding.
	const n = 64
	c := busCluster(t, 8, PortSpec{Port: 0, Type: Int})
	c.OnRank(0, "send", func(x *Ctx) {
		ch, _ := x.OpenSendChannel(n, Int, 7, 0, x.CommWorld())
		for i := 0; i < n; i++ {
			ch.PushInt(int32(i))
		}
	})
	c.OnRank(7, "recv", func(x *Ctx) {
		ch, _ := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
		for i := 0; i < n; i++ {
			if got := ch.PopInt(); got != int32(i) {
				t.Errorf("element %d = %d", i, got)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendToSelf(t *testing.T) {
	// Intra-rank channels between two kernels on the same rank.
	const n = 20
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int})
	c.OnRank(0, "producer", func(x *Ctx) {
		ch, err := x.OpenSendChannel(n, Int, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			ch.PushInt(int32(i + 5))
		}
	})
	c.OnRank(0, "consumer", func(x *Ctx) {
		ch, err := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if got := ch.PopInt(); got != int32(i+5) {
				t.Errorf("element %d = %d", i, got)
				return
			}
		}
	})
	c.OnRank(1, "idle", func(x *Ctx) {})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSPMDNeighborExchange(t *testing.T) {
	// Every rank sends to its right neighbor and receives from its left
	// (ring pattern over the torus wiring), SPMD-style.
	const n = 16
	c := torusCluster(t, 2, 4,
		PortSpec{Port: 0, Type: Int}, // send right / recv left
	)
	c.SPMD("ring", func(x *Ctx) {
		world := x.CommWorld()
		right := (x.Rank() + 1) % x.Size()
		left := (x.Rank() + x.Size() - 1) % x.Size()
		chs, err := x.OpenSendChannel(n, Int, right, 0, world)
		if err != nil {
			t.Error(err)
			return
		}
		chr, err := x.OpenRecvChannel(n, Int, left, 0, world)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			chs.PushInt(int32(x.Rank()*100 + i))
		}
		for i := 0; i < n; i++ {
			want := int32(left*100 + i)
			if got := chr.PopInt(); got != want {
				t.Errorf("rank %d element %d = %d, want %d", x.Rank(), i, got, want)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenValidation(t *testing.T) {
	c := busCluster(t, 2,
		PortSpec{Port: 0, Type: Int},
		PortSpec{Port: 1, Kind: Bcast, Type: Float},
	)
	c.OnRank(0, "checks", func(x *Ctx) {
		w := x.CommWorld()
		if _, err := x.OpenSendChannel(0, Int, 1, 0, w); err == nil {
			t.Error("count 0 accepted")
		}
		if _, err := x.OpenSendChannel(10, Int, 1, 42, w); err == nil {
			t.Error("undeclared port accepted")
		}
		if _, err := x.OpenSendChannel(10, Float, 1, 0, w); err == nil {
			t.Error("datatype mismatch accepted")
		}
		if _, err := x.OpenSendChannel(10, Int, 5, 0, w); err == nil {
			t.Error("destination outside communicator accepted")
		}
		if _, err := x.OpenSendChannel(10, Float, 1, 1, w); err == nil {
			t.Error("p2p open on bcast port accepted")
		}
		if _, err := x.OpenBcastChannel(10, Int, 0, 0, w); err == nil {
			t.Error("bcast open on p2p port accepted")
		}
		ch, err := x.OpenSendChannel(10, Int, 1, 0, w)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := x.OpenSendChannel(10, Int, 1, 0, w); err == nil {
			t.Error("double open accepted")
		}
		for i := 0; i < 10; i++ {
			ch.PushInt(1)
		}
		// After the channel closed implicitly, the port is free again.
		ch2, err := x.OpenSendChannel(5, Int, 1, 0, w)
		if err != nil {
			t.Errorf("reopen after close failed: %v", err)
			return
		}
		for i := 0; i < 5; i++ {
			ch2.PushInt(int32(i))
		}
	})
	c.OnRank(1, "recv", func(x *Ctx) {
		ch, _ := x.OpenRecvChannel(10, Int, 0, 0, x.CommWorld())
		for i := 0; i < 10; i++ {
			ch.PopInt()
		}
		ch2, _ := x.OpenRecvChannel(5, Int, 0, 0, x.CommWorld())
		for i := 0; i < 5; i++ {
			ch2.PopInt()
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPushOverrunPanicsAsError(t *testing.T) {
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int})
	c.OnRank(0, "bad", func(x *Ctx) {
		ch, _ := x.OpenSendChannel(1, Int, 1, 0, x.CommWorld())
		ch.PushInt(1)
		ch.PushInt(2) // beyond count: must panic
	})
	c.OnRank(1, "recv", func(x *Ctx) {
		ch, _ := x.OpenRecvChannel(1, Int, 0, 0, x.CommWorld())
		ch.PopInt()
	})
	if _, err := c.Run(); err == nil {
		t.Fatal("expected an error from the overrun")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two ranks that both receive before sending: a protocol deadlock
	// the engine must diagnose.
	const n = 4096 // far beyond any buffering
	c := busCluster(t, 2,
		PortSpec{Port: 0, Type: Int, BufferElems: 14},
		PortSpec{Port: 1, Type: Int, BufferElems: 14},
	)
	body := func(x *Ctx) {
		other := 1 - x.Rank()
		recvPort, sendPort := x.Rank(), other
		chr, _ := x.OpenRecvChannel(n, Int, other, recvPort, x.CommWorld())
		for i := 0; i < n; i++ {
			chr.PopInt()
		}
		chs, _ := x.OpenSendChannel(n, Int, other, sendPort, x.CommWorld())
		for i := 0; i < n; i++ {
			chs.PushInt(0)
		}
	}
	c.OnRank(0, "a", body)
	c.OnRank(1, "b", body)
	_, err := c.Run()
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestBcastCorrectness(t *testing.T) {
	for _, ranks := range []int{2, 4, 8} {
		for _, root := range []int{0, ranks - 1} {
			ranks, root := ranks, root
			t.Run(fmt.Sprintf("ranks=%d root=%d", ranks, root), func(t *testing.T) {
				const n = 50
				c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Bcast, Type: Float})
				c.SPMD("bcast", func(x *Ctx) {
					ch, err := x.OpenBcastChannel(n, Float, 0, root, x.CommWorld())
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < n; i++ {
						v := float32(-1)
						if ch.Root() {
							v = float32(i) * 1.5
						}
						got := ch.BcastFloat(v)
						if got != float32(i)*1.5 {
							t.Errorf("rank %d element %d = %g", x.Rank(), i, got)
							return
						}
					}
				})
				if _, err := c.Run(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestBcastRepeatedRounds(t *testing.T) {
	// The same port must be reusable across successive collective rounds
	// with different dynamically-chosen roots.
	const n, rounds = 10, 4
	c := busCluster(t, 4, PortSpec{Port: 0, Kind: Bcast, Type: Int})
	c.SPMD("rounds", func(x *Ctx) {
		for r := 0; r < rounds; r++ {
			root := r % x.Size()
			ch, err := x.OpenBcastChannel(n, Int, 0, root, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				got := ch.BcastInt(int32(root*1000 + i))
				if got != int32(root*1000+i) {
					t.Errorf("round %d rank %d: element %d = %d", r, x.Rank(), i, got)
					return
				}
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBcastSubCommunicator(t *testing.T) {
	// Broadcast among ranks 2..5 of an 8-rank cluster; others idle.
	const n = 25
	c := busCluster(t, 8, PortSpec{Port: 0, Kind: Bcast, Type: Int})
	sub := func(x *Ctx) (Comm, error) { return x.CommWorld().Sub(2, 4) }
	c.SPMD("subbcast", func(x *Ctx) {
		comm, err := sub(x)
		if err != nil {
			t.Error(err)
			return
		}
		if !comm.Contains(x.Rank()) {
			return // not a member
		}
		ch, err := x.OpenBcastChannel(n, Int, 0, 1, comm) // root = global rank 3
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			got := ch.BcastInt(int32(7 * i))
			if got != int32(7*i) {
				t.Errorf("rank %d element %d = %d", x.Rank(), i, got)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	// count exceeds the credit tile so flow control cycles several times.
	const n = 600
	const ranks = 4
	c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Reduce, Type: Float, ReduceOp: Add, CreditElems: 128})
	c.SPMD("reduce", func(x *Ctx) {
		ch, err := x.OpenReduceChannel(n, Float, Add, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			contrib := float32(x.Rank()*n + i)
			got, ok := ch.ReduceFloat(contrib)
			if ok != (x.Rank() == 0) {
				t.Errorf("rank %d: ok=%v", x.Rank(), ok)
				return
			}
			if ok {
				// sum over r of (r*n + i) = n*sum(r) + ranks*i
				want := float32(n*(ranks*(ranks-1)/2) + ranks*i)
				if got != want {
					t.Errorf("element %d = %g, want %g", i, got, want)
					return
				}
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceMaxMinInt(t *testing.T) {
	for _, tc := range []struct {
		op   Op
		want func(i int, ranks int) int32
	}{
		{Max, func(i, ranks int) int32 { return int32((ranks-1)*10 - i) }},
		{Min, func(i, ranks int) int32 { return int32(0 - i) }},
	} {
		tc := tc
		t.Run(tc.op.String(), func(t *testing.T) {
			const n, ranks = 40, 3
			c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Reduce, Type: Int, ReduceOp: tc.op})
			c.SPMD("reduce", func(x *Ctx) {
				ch, err := x.OpenReduceChannel(n, Int, tc.op, 0, 2, x.CommWorld())
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					contrib := int32(x.Rank()*10 - i)
					got, ok := ch.ReduceInt(contrib)
					if ok {
						if got != tc.want(i, ranks) {
							t.Errorf("element %d = %d, want %d", i, got, tc.want(i, ranks))
							return
						}
					}
				}
			})
			if _, err := c.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReduceOpMismatchRejected(t *testing.T) {
	c := busCluster(t, 2, PortSpec{Port: 0, Kind: Reduce, Type: Float, ReduceOp: Add})
	c.SPMD("check", func(x *Ctx) {
		if _, err := x.OpenReduceChannel(4, Float, Max, 0, 0, x.CommWorld()); err == nil {
			t.Error("mismatched reduce op accepted")
		}
		// The correct op still works.
		ch, err := x.OpenReduceChannel(4, Float, Add, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 4; i++ {
			ch.ReduceFloat(1)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScatterCorrectness(t *testing.T) {
	const chunk, ranks = 21, 4
	c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Scatter, Type: Int})
	c.SPMD("scatter", func(x *Ctx) {
		ch, err := x.OpenScatterChannel(chunk, Int, 0, 1, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		if ch.Root() {
			for i := 0; i < chunk*ranks; i++ {
				ch.Push(uint64(i))
			}
		}
		for i := 0; i < chunk; i++ {
			want := uint64(x.Rank()*chunk + i)
			if got := ch.Pop(); got != want {
				t.Errorf("rank %d element %d = %d, want %d", x.Rank(), i, got, want)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGatherCorrectness(t *testing.T) {
	const chunk, ranks, root = 13, 4, 2
	c := busCluster(t, ranks, PortSpec{Port: 0, Kind: Gather, Type: Int})
	c.SPMD("gather", func(x *Ctx) {
		ch, err := x.OpenGatherChannel(chunk, Int, 0, root, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < chunk; i++ {
			ch.Push(uint64(x.Rank()*chunk + i))
		}
		if ch.Root() {
			for i := 0; i < chunk*ranks; i++ {
				if got := ch.Pop(); got != uint64(i) {
					t.Errorf("gathered element %d = %d", i, got)
					return
				}
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCollectivesOnDistinctPorts(t *testing.T) {
	// "multiple collectives can perform their rendezvous and
	// communication concurrently" when they use separate ports.
	const n = 30
	c := busCluster(t, 4,
		PortSpec{Port: 0, Kind: Bcast, Type: Int},
		PortSpec{Port: 1, Kind: Reduce, Type: Int, ReduceOp: Add},
	)
	c.SPMD("both", func(x *Ctx) {
		bc, err := x.OpenBcastChannel(n, Int, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		rc, err := x.OpenReduceChannel(n, Int, Add, 1, 3, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			got := bc.BcastInt(int32(i))
			if got != int32(i) {
				t.Errorf("rank %d bcast %d = %d", x.Rank(), i, got)
				return
			}
			sum, ok := rc.ReduceInt(int32(i))
			if ok && sum != int32(4*i) {
				t.Errorf("reduce %d = %d, want %d", i, sum, 4*i)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIntraFPGAStreams(t *testing.T) {
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int})
	s := c.NewStream("pipe", 8)
	const n = 50
	c.OnRank(0, "producer", func(x *Ctx) {
		for i := 0; i < n; i++ {
			x.PushStream(s, uint64(i*i))
		}
	})
	c.OnRank(0, "consumer", func(x *Ctx) {
		for i := 0; i < n; i++ {
			if got := x.PopStream(s); got != uint64(i*i) {
				t.Errorf("stream element %d = %d", i, got)
				return
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	topo, _ := topology.Bus(2)
	if _, err := NewCluster(Config{Program: ProgramSpec{Ports: []PortSpec{{Port: 0}}}}); err == nil {
		t.Error("missing topology accepted")
	}
	if _, err := NewCluster(Config{Topology: topo}); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := NewCluster(Config{Topology: topo, Program: ProgramSpec{Ports: []PortSpec{{Port: 0}, {Port: 0}}}}); err == nil {
		t.Error("duplicate ports accepted")
	}
	c, err := NewCluster(Config{Topology: topo, Program: ProgramSpec{Ports: []PortSpec{{Port: 0}}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.OnRank(9, "x", func(*Ctx) {}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := c.Run(); err == nil {
		t.Error("run with no programs accepted")
	}
}

func TestCommSubValidation(t *testing.T) {
	w := Comm{base: 0, size: 8}
	if _, err := w.Sub(6, 4); err == nil {
		t.Error("oversized sub-communicator accepted")
	}
	if _, err := w.Sub(-1, 2); err == nil {
		t.Error("negative base accepted")
	}
	s, err := w.Sub(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Base() != 2 || s.Size() != 4 || !s.Contains(5) || s.Contains(6) {
		t.Fatalf("sub-communicator wrong: %v", s)
	}
	if s.Global(1) != 3 {
		t.Fatal("rank translation wrong")
	}
}

// Property: arbitrary message lengths and buffer depths deliver intact,
// in-order messages for every datatype.
func TestP2PMessageIntegrityQuick(t *testing.T) {
	prop := func(countRaw uint16, dtRaw, bufRaw uint8) bool {
		count := int(countRaw%500) + 1
		dt := Datatype(dtRaw%5) + 1
		buf := int(bufRaw%100) + 1
		topo, _ := topology.Bus(3)
		c, err := NewCluster(Config{
			Topology: topo,
			Program:  ProgramSpec{Ports: []PortSpec{{Port: 0, Type: dt, BufferElems: buf}}},
		})
		if err != nil {
			return false
		}
		mask := uint64(1)<<(8*dt.Size()) - 1
		if dt.Size() == 8 {
			mask = ^uint64(0)
		}
		c.OnRank(0, "s", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(count, dt, 2, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				ch.Push(uint64(i) * 2654435761)
			}
		})
		okAll := true
		c.OnRank(2, "r", func(x *Ctx) {
			ch, _ := x.OpenRecvChannel(count, dt, 0, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				if got := ch.Pop(); got != (uint64(i)*2654435761)&mask {
					okAll = false
					return
				}
			}
		})
		if _, err := c.Run(); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
