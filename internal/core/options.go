package smi

// chanOpts is the resolved option set of one channel open call.
type chanOpts struct {
	patience int64 // per-operation deadline in cycles; <= 0 means none
}

// ChannelOption configures an open channel call (OpenSendChannel,
// OpenRecvChannel, the collective opens, and the ChannelOpts forms).
type ChannelOption func(*chanOpts)

// WithDeadline bounds every blocking operation on the channel to at most
// the given number of cycles: an operation that cannot complete within
// that budget returns a ChannelError of kind Timeout from the E variant
// (PushE/PopE/...), or panics with it from the blocking wrapper.
//
// Deadlines are implemented as scheduled wakes on the simulator's event
// heap, not per-cycle polling: a deadline that is armed but never fires
// leaves the run cycle-identical to one without deadlines, under both
// the event and the dense scheduler.
func WithDeadline(cycles int64) ChannelOption {
	return func(o *chanOpts) { o.patience = cycles }
}

// WithNoDeadline removes any deadline, including a Ctx-level default.
func WithNoDeadline() ChannelOption {
	return func(o *chanOpts) { o.patience = 0 }
}

// SetDefaultDeadline sets a default per-operation deadline (in cycles)
// for every channel subsequently opened through this Ctx. Individual
// opens override it with WithDeadline or WithNoDeadline. cycles <= 0
// clears the default.
func (x *Ctx) SetDefaultDeadline(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	x.defPatience = cycles
}

// resolveOpts folds the Ctx default and the per-open options.
func (x *Ctx) resolveOpts(opts []ChannelOption) chanOpts {
	o := chanOpts{patience: x.defPatience}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// ChannelOpts is the options-struct form of a channel open call. Count,
// Type, and Port are always required; Dst names the destination rank for
// sends, Src the source rank for receives (both relative to Comm). A
// zero Comm means the world communicator.
type ChannelOpts struct {
	Count int
	Type  Datatype
	Dst   int // destination rank (OpenSend)
	Src   int // source rank (OpenRecv)
	Port  int
	Comm  Comm
	Opts  []ChannelOption
}

// comm returns the explicit communicator or the world default.
func (o ChannelOpts) comm(x *Ctx) Comm {
	if o.Comm == (Comm{}) {
		return x.CommWorld()
	}
	return o.Comm
}

// OpenSend opens a transient send channel from an options struct; it is
// equivalent to OpenSendChannel(o.Count, o.Type, o.Dst, o.Port, comm,
// o.Opts...).
func (x *Ctx) OpenSend(o ChannelOpts) (*SendChannel, error) {
	return x.OpenSendChannel(o.Count, o.Type, o.Dst, o.Port, o.comm(x), o.Opts...)
}

// OpenRecv opens a transient receive channel from an options struct; it
// is equivalent to OpenRecvChannel(o.Count, o.Type, o.Src, o.Port, comm,
// o.Opts...).
func (x *Ctx) OpenRecv(o ChannelOpts) (*RecvChannel, error) {
	return x.OpenRecvChannel(o.Count, o.Type, o.Src, o.Port, o.comm(x), o.Opts...)
}
