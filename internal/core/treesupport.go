package smi

import (
	"repro/internal/packet"
)

// Tree-based collective support kernels. The linear schemes of §4.4
// serialize all traffic at the root; the binomial-tree variants spread
// the replication (Bcast) and combining (Reduce) over inner nodes, so
// the per-node fan-out is at most log2(size). The paper names these as
// the natural evolution of its support kernels ("they can also be
// exploited to offer different implementations of collectives, such as
// tree-based schema for Bcast and Reduce"); its reference implementation
// "does not yet implement tree-based collectives", which is why its
// Reduce suffers root congestion at scale (§5.3.4).
//
// Synchronization follows the same rendezvous discipline as the linear
// kernels, applied per tree edge:
//
//   - Tree Bcast: a node signals readiness to its parent only after all
//     its children have signaled, so the root's stream never meets an
//     unready subtree.
//   - Tree Reduce: each parent manages a C-element tile buffer fed by
//     its children and its local application, streams fully-combined
//     elements upward (gated by credits from its own parent), and grants
//     its children one tile of credit whenever a tile completes.

// setupTree initializes the tree-role state for the current round.
func (s *supportKernel) setupTree() {
	rootRel := s.root - s.base
	selfRel := s.rank - s.base
	parentRel, childrenRel := binomialTree(s.size, rootRel, selfRel)
	if parentRel < 0 {
		s.parentG = -1
	} else {
		s.parentG = s.base + parentRel
	}
	s.childrenG = s.childrenG[:0]
	for _, c := range childrenRel {
		s.childrenG = append(s.childrenG, s.base+c)
	}
}

// --- Tree broadcast ---

func (s *supportKernel) tickTBcastSync() bool {
	if s.drainProtocol() {
		return true
	}
	for _, c := range s.childrenG {
		if s.syncCount[c] < 1 {
			return false
		}
	}
	for _, c := range s.childrenG {
		s.syncCount[c]--
	}
	if s.parentG >= 0 {
		// Tell the parent this whole subtree is ready.
		if !s.netOut.TryPush(s.protocolPacket(packet.OpSyncReady, s.parentG)) {
			// Retry next cycle; re-increment so the consume above is not
			// lost (children counters were already decremented, so hold
			// the state in a dedicated flag instead).
			for _, c := range s.childrenG {
				s.syncCount[c]++
			}
			return true
		}
		s.state = supTBcastForward
		s.dupValid = false
		return true
	}
	s.state = supTBcastStream
	s.dupValid = false
	return true
}

// tickTBcastStream replicates root application data to the root's
// children only (at most log2(size) copies per packet).
func (s *supportKernel) tickTBcastStream() bool {
	s.drainProtocol()
	if !s.dupValid {
		p, ok := s.appIn.TryPop()
		if !ok {
			return false
		}
		if p.Op != packet.OpData {
			s.bad++
			return true
		}
		s.dup = p
		s.dupValid = true
		s.dupNext = 0
	}
	if s.dupNext >= len(s.childrenG) {
		s.remaining -= int(s.dup.Count)
		s.dupValid = false
		if s.remaining <= 0 {
			s.state = supIdle
		}
		return true
	}
	out := s.dup
	out.Src = uint16(s.rank)
	out.Dst = uint16(s.childrenG[s.dupNext])
	if s.netOut.TryPush(out) {
		s.dupNext++
	}
	return true
}

// tickTBcastForward receives the stream from the parent, delivers it to
// the local application, and replicates it to the children. dupNext runs
// from -1 (application delivery pending) through the child list.
func (s *supportKernel) tickTBcastForward() bool {
	if !s.dupValid {
		p, ok := s.popNet()
		if !ok {
			return false
		}
		if int(p.Src) != s.parentG {
			s.bad++
			return true
		}
		s.dup = p
		s.dupValid = true
		s.dupNext = -1
	}
	if s.dupNext == -1 {
		out := s.dup
		out.Dst = uint16(s.rank)
		if !s.appOut.TryPush(out) {
			return false // blocked on the application
		}
		s.dupNext = 0
		return true
	}
	if s.dupNext >= len(s.childrenG) {
		s.remaining -= int(s.dup.Count)
		s.dupValid = false
		if s.remaining <= 0 {
			s.state = supIdle
		}
		return true
	}
	out := s.dup
	out.Src = uint16(s.rank)
	out.Dst = uint16(s.childrenG[s.dupNext])
	if s.netOut.TryPush(out) {
		s.dupNext++
	}
	return true
}

// --- Tree reduce ---

// startTreeReduceTile resets per-tile state. The member position array
// covers every child plus the local application (last index).
func (s *supportKernel) startTreeReduceTile() {
	s.tileElems = s.nextTileSize(s.done)
	members := len(s.childrenG) + 1
	if cap(s.pos) < members {
		s.pos = make([]int, members)
	}
	s.pos = s.pos[:members]
	for i := range s.pos {
		s.pos[i] = 0
	}
	for i := 0; i < s.tileElems; i++ {
		s.tile[i] = 0
	}
	s.flushPos = 0
	s.creditTo = 0
}

// treeMemberIndex maps a contribution source to its position slot:
// children in order, the local application last. Returns -1 for unknown
// sources.
func (s *supportKernel) treeMemberIndex(src int) int {
	for i, c := range s.childrenG {
		if c == src {
			return i
		}
	}
	if src == s.rank {
		return len(s.childrenG)
	}
	return -1
}

// accumulateTree folds a contribution packet into the tile buffer.
func (s *supportKernel) accumulateTree(p packet.Packet, src int) {
	mi := s.treeMemberIndex(src)
	if mi < 0 {
		s.bad++
		return
	}
	n := int(p.Count)
	if s.pos[mi]+n > s.tileElems {
		s.bad++
		n = s.tileElems - s.pos[mi]
	}
	for i := 0; i < n; i++ {
		idx := s.pos[mi] + i
		v := p.Elem(i, s.spec.Type)
		if s.firstContribution(mi, idx) {
			s.tile[idx] = v
		} else {
			s.tile[idx] = reduceBits(s.spec.Type, s.spec.ReduceOp, s.tile[idx], v)
		}
	}
	s.pos[mi] += n
}

// tickTReduceCollect is the single state every tree-reduce node runs:
// leaves (no children) degenerate to credit-gated upward streaming of
// the local contribution; the root (no parent) flushes to the
// application and grants credits; inner nodes do both.
func (s *supportKernel) tickTReduceCollect() bool {
	active := false

	// Convert parent credits into upward allowance.
	if s.credits > 0 {
		s.credits--
		s.upGranted += s.nextTileSize(s.upGranted)
		active = true
	}

	// Stream fully-combined elements toward the parent (or the local
	// application at the root).
	if n := s.flushAvail(); n > 0 {
		if s.parentG < 0 {
			active = s.flushResults(n) || active
		} else {
			sent := s.done + s.flushPos
			allow := s.upGranted - sent
			if allow > 0 {
				if n > allow {
					n = allow
				}
				if n > s.epp {
					n = s.epp
				}
				out := packet.Packet{
					Src: uint16(s.rank), Dst: uint16(s.parentG), Port: uint8(s.spec.Port),
					Op: packet.OpData, Count: uint8(n),
				}
				for i := 0; i < n; i++ {
					out.PutElem(i, s.spec.Type, s.tile[s.flushPos+i])
				}
				if s.netOut.TryPush(out) {
					s.flushPos += n
					active = true
				}
			}
		}
	} else if s.flushPos >= s.tileElems && s.tileElems > 0 {
		// Tile complete: grant the children their next tile.
		s.done += s.tileElems
		if s.done >= s.count {
			s.state = supIdle
			return true
		}
		s.creditTo = 0
		s.state = supTReduceCredit
		return true
	}

	// Ingest one packet from the children and one from the local
	// application (independent hardware ports), staying within the tile.
	if p, ok := s.popNet(); ok {
		s.accumulateTree(p, int(p.Src))
		active = true
	}
	self := len(s.childrenG)
	if s.pos[self] < s.tileElems {
		if p, ok := s.appIn.TryPop(); ok {
			if p.Op != packet.OpData {
				s.bad++
				return true
			}
			s.accumulateTree(p, s.rank)
			active = true
		}
	}
	return active
}

func (s *supportKernel) tickTReduceCredit() bool {
	s.drainProtocol()
	if s.creditTo >= len(s.childrenG) {
		s.startTreeReduceTile()
		s.state = supTReduceCollect
		return true
	}
	if s.netOut.TryPush(s.protocolPacket(packet.OpCredit, s.childrenG[s.creditTo])) {
		s.creditTo++
	}
	return true
}
