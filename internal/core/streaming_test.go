package smi

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestStreamingChannelDeliversIntact(t *testing.T) {
	const n = 555 // not a multiple of any raw packing factor or batch size
	for _, dt := range []Datatype{Char, Short, Int, Float, Double} {
		dt := dt
		t.Run(dt.String(), func(t *testing.T) {
			c := busCluster(t, 4, PortSpec{Port: 0, Type: dt, Streaming: true, BufferElems: 64})
			mask := uint64(1)<<(8*dt.Size()) - 1
			if dt.Size() == 8 {
				mask = ^uint64(0)
			}
			c.OnRank(0, "s", func(x *Ctx) {
				ch, err := x.OpenSendChannel(n, dt, 3, 0, x.CommWorld())
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					ch.Push(uint64(i) * 2654435761)
				}
			})
			c.OnRank(3, "r", func(x *Ctx) {
				ch, err := x.OpenRecvChannel(n, dt, 0, 0, x.CommWorld())
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					if got := ch.Pop(); got != (uint64(i)*2654435761)&mask {
						t.Errorf("element %d corrupted: %x", i, got)
						return
					}
				}
			})
			st, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if st.StreamFragments == 0 {
				t.Fatal("a message larger than the buffer should have streamed")
			}
		})
	}
}

func TestStreamingEagerSwitchover(t *testing.T) {
	// A message that fits the endpoint buffer must ride the plain eager
	// packet path: no rendezvous round-trip, no fragments.
	run := func(count int) Stats {
		c := busCluster(t, 2, PortSpec{Port: 0, Type: Int, Streaming: true, BufferElems: 64})
		c.OnRank(0, "s", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(count, Int, 1, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				ch.PushInt(int32(i))
			}
		})
		c.OnRank(1, "r", func(x *Ctx) {
			ch, _ := x.OpenRecvChannel(count, Int, 0, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				if got := ch.PopInt(); got != int32(i) {
					t.Errorf("element %d = %d", i, got)
					return
				}
			}
		})
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := run(64); st.StreamFragments != 0 {
		t.Fatalf("a buffer-sized message went rendezvous: %d fragments", st.StreamFragments)
	}
	if st := run(65); st.StreamFragments == 0 {
		t.Fatal("a message one element past the buffer should stream")
	}
}

func TestStreamingBulkAPI(t *testing.T) {
	// PushN/PopN and the typed PushSlice/PopSlice move whole buffers.
	const n = 1000
	c := busCluster(t, 3, PortSpec{Port: 0, Type: Float, Streaming: true, BufferElems: 64})
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i) * 0.5
	}
	dst := make([]float32, n)
	c.OnRank(0, "s", func(x *Ctx) {
		ch, err := x.OpenSendChannel(n, Float, 2, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		if pushed, err := PushSlice(ch, src); err != nil || pushed != n {
			t.Errorf("PushSlice = %d, %v", pushed, err)
		}
	})
	c.OnRank(2, "r", func(x *Ctx) {
		ch, err := x.OpenRecvChannel(n, Float, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		if popped, err := PopSlice(ch, dst); err != nil || popped != n {
			t.Errorf("PopSlice = %d, %v", popped, err)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("element %d = %g, want %g", i, dst[i], src[i])
		}
	}
}

func TestStreamingBeatsCreditedBandwidth(t *testing.T) {
	// The acceptance gate in miniature: for a message much larger than
	// the endpoint buffer, the paper's §3.3 prescription is credit-based
	// flow control, whose grant round-trips throttle every buffer's worth
	// of data. The rendezvous pays one round-trip up front and then
	// streams full 32-byte words, so it must win by a wide margin.
	run := func(spec PortSpec) int64 {
		const n = 8192
		topo, _ := topology.Bus(4)
		c, err := NewCluster(Config{
			Topology: topo,
			Program:  ProgramSpec{Ports: []PortSpec{spec}},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.OnRank(0, "s", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(n, Int, 3, 0, x.CommWorld())
			for i := 0; i < n; i++ {
				ch.PushInt(int32(i))
			}
		})
		c.OnRank(3, "r", func(x *Ctx) {
			ch, _ := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
			for i := 0; i < n; i++ {
				ch.PopInt()
			}
		})
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	credited := run(PortSpec{Port: 0, Type: Int, Credited: true, VecWidth: 8, BufferElems: 64})
	streaming := run(PortSpec{Port: 0, Type: Int, Streaming: true, VecWidth: 8, BufferElems: 64})
	if float64(streaming) > 0.5*float64(credited) {
		t.Fatalf("streaming (%d cycles) should be at least 2x faster than credited (%d) for buffer-dwarfing messages", streaming, credited)
	}
}

func TestStreamingFairerThanCircuit(t *testing.T) {
	// Fair release: a circuit holds shared kernels for the whole message,
	// a stream only per fragment, so a small concurrent control message
	// finishes much earlier alongside a stream than alongside a circuit.
	run := func(bulkSpec PortSpec) int64 {
		const bulk = 14000
		topo, _ := topology.Bus(2)
		c, err := NewCluster(Config{
			Topology: topo,
			Program: ProgramSpec{Ports: []PortSpec{
				bulkSpec,
				{Port: 1, Type: Int, Iface: 0, PinIface: true},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.OnRank(0, "bulk", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(bulk, Int, 1, 0, x.CommWorld())
			for i := 0; i < bulk; i++ {
				ch.PushInt(int32(i))
			}
		})
		var ctlDone int64
		c.OnRank(0, "ctl", func(x *Ctx) {
			x.Sleep(500) // the bulk message is already flowing
			ch, _ := x.OpenSendChannel(4, Int, 1, 1, x.CommWorld())
			for i := 0; i < 4; i++ {
				ch.PushInt(int32(i))
			}
		})
		c.OnRank(1, "rbulk", func(x *Ctx) {
			bc, _ := x.OpenRecvChannel(bulk, Int, 0, 0, x.CommWorld())
			for i := 0; i < bulk; i++ {
				bc.PopInt()
			}
		})
		c.OnRank(1, "rctl", func(x *Ctx) {
			ctl, _ := x.OpenRecvChannel(4, Int, 0, 1, x.CommWorld())
			for i := 0; i < 4; i++ {
				ctl.PopInt()
			}
			ctlDone = x.Now()
		})
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return ctlDone
	}
	circ := run(PortSpec{Port: 0, Type: Int, Circuit: true, VecWidth: 8, BufferElems: 1024, Iface: 0, PinIface: true})
	strm := run(PortSpec{Port: 0, Type: Int, Streaming: true, VecWidth: 8, BufferElems: 1024, Iface: 0, PinIface: true})
	if float64(strm) > 0.5*float64(circ) {
		t.Fatalf("fragment-bounded locks should release the shared kernel: ctl done at %d (streaming) vs %d (circuit)", strm, circ)
	}
}

func TestStreamingValidation(t *testing.T) {
	bad := ProgramSpec{Ports: []PortSpec{{Port: 0, Kind: Bcast, Type: Int, Streaming: true}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("streaming collective accepted")
	}
	bad = ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int, Streaming: true, Circuit: true}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("streaming+circuit accepted")
	}
	bad = ProgramSpec{Ports: []PortSpec{{Port: 0, Type: Int, Streaming: true, Credited: true}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("streaming+credited accepted")
	}
	// Half-duplex: a streaming port cannot loop back to its own rank.
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int, Streaming: true})
	c.OnRank(0, "s", func(x *Ctx) {
		if _, err := x.OpenSendChannel(10, Int, 0, 0, x.CommWorld()); err == nil {
			t.Error("self-targeted streaming channel accepted")
		}
	})
	c.OnRank(1, "idle", func(x *Ctx) {})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingRepeatedMessages(t *testing.T) {
	// Back-to-back messages on one port, alternating eager and
	// rendezvous, reusing the endpoint cleanly each round.
	const rounds = 4
	counts := []int{300, 16, 200, 64} // stream, eager, stream, eager
	c := busCluster(t, 2, PortSpec{Port: 0, Type: Int, Streaming: true, BufferElems: 64, StreamBatch: 4})
	c.OnRank(0, "s", func(x *Ctx) {
		for r := 0; r < rounds; r++ {
			ch, err := x.OpenSendChannel(counts[r], Int, 1, 0, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < counts[r]; i++ {
				ch.PushInt(int32(r*1000 + i))
			}
		}
	})
	c.OnRank(1, "r", func(x *Ctx) {
		for r := 0; r < rounds; r++ {
			ch, err := x.OpenRecvChannel(counts[r], Int, 0, 0, x.CommWorld())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < counts[r]; i++ {
				if got := ch.PopInt(); got != int32(r*1000+i) {
					t.Errorf("round %d element %d = %d", r, i, got)
					return
				}
			}
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: streaming channels preserve arbitrary messages across hop
// counts, buffer sizes, and batch sizes, eager and rendezvous alike.
func TestStreamingIntegrityQuick(t *testing.T) {
	prop := func(countRaw uint16, bufRaw, batchRaw, dstRaw uint8) bool {
		count := int(countRaw%600) + 1
		buf := int(bufRaw%200) + 8
		batch := int(batchRaw%30) + 1
		topo, _ := topology.Bus(4)
		dst := 1 + int(dstRaw)%3
		c, err := NewCluster(Config{
			Topology: topo,
			Program: ProgramSpec{Ports: []PortSpec{
				{Port: 0, Type: Int, Streaming: true, BufferElems: buf, StreamBatch: batch},
			}},
		})
		if err != nil {
			return false
		}
		c.OnRank(0, "s", func(x *Ctx) {
			ch, _ := x.OpenSendChannel(count, Int, dst, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				ch.PushInt(int32(i))
			}
		})
		okAll := true
		c.OnRank(dst, "r", func(x *Ctx) {
			ch, _ := x.OpenRecvChannel(count, Int, 0, 0, x.CommWorld())
			for i := 0; i < count; i++ {
				if ch.PopInt() != int32(i) {
					okAll = false
					return
				}
			}
		})
		if _, err := c.Run(); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// streamingParityRun executes one multi-hop streaming transfer plus a
// concurrent reverse eager message under the given scheduler and fault
// spec, returning the stats and a digest of everything delivered.
func streamingParityRun(t *testing.T, kind sim.SchedulerKind, shards int, spec *fault.Spec, circuit bool) (Stats, uint64) {
	t.Helper()
	const n = 2000
	topo, err := topology.Bus(4)
	if err != nil {
		t.Fatal(err)
	}
	port := PortSpec{Port: 0, Type: Int, Streaming: !circuit, Circuit: circuit, BufferElems: 64, StreamBatch: 8}
	c, err := NewCluster(Config{
		Topology:  topo,
		Program:   ProgramSpec{Ports: []PortSpec{port, {Port: 1, Type: Int}}},
		Scheduler: kind,
		Shards:    shards,
		Faults:    spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One digest per consumer, combined in a fixed order after the run:
	// the consumers execute concurrently (in different shards under
	// SchedShard), so mixing into a shared accumulator would race.
	var bulkDig, ctlDig uint64 = 14695981039346656037, 14695981039346656037
	mix := func(d *uint64, v uint64) {
		*d ^= v
		*d *= 1099511628211
	}
	c.OnRank(0, "s", func(x *Ctx) {
		ch, err := x.OpenSendChannel(n, Int, 3, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			ch.PushInt(int32(i * 3))
		}
	})
	c.OnRank(3, "r", func(x *Ctx) {
		ch, err := x.OpenRecvChannel(n, Int, 0, 0, x.CommWorld())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			mix(&bulkDig, uint64(uint32(ch.PopInt())))
		}
		mix(&bulkDig, uint64(x.Now()))
	})
	// A concurrent reverse-direction eager message keeps the shared
	// kernels contended, so the parity check covers arbitration too.
	c.OnRank(3, "ctl-s", func(x *Ctx) {
		ch, _ := x.OpenSendChannel(100, Int, 0, 1, x.CommWorld())
		for i := 0; i < 100; i++ {
			ch.PushInt(int32(i))
		}
	})
	c.OnRank(0, "ctl-r", func(x *Ctx) {
		ch, _ := x.OpenRecvChannel(100, Int, 3, 1, x.CommWorld())
		for i := 0; i < 100; i++ {
			mix(&ctlDig, uint64(uint32(ch.PopInt())))
		}
		mix(&ctlDig, uint64(x.Now()))
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	digest := bulkDig
	mix(&digest, ctlDig)
	return st, digest
}

// TestStreamingSchedulerParity pins the determinism contract for the
// streaming and circuit paths: dense, event, and shard schedulers (the
// latter with several shard counts) must agree bit for bit on delivered
// data, completion times, and cycle counts — pristine and under fault
// injection, where the reliable layer's raw-word sideband is on the
// line. (Satellite: circuits previously lacked shard and fault parity
// coverage entirely.)
func TestStreamingSchedulerParity(t *testing.T) {
	specs := map[string]*fault.Spec{
		"pristine": nil,
		"faulty":   {Seed: 11, DropProb: 0.002},
	}
	for _, circuit := range []bool{false, true} {
		mode := "streaming"
		if circuit {
			mode = "circuit"
		}
		for name, spec := range specs {
			t.Run(mode+"/"+name, func(t *testing.T) {
				refSt, refDig := streamingParityRun(t, sim.SchedDense, 0, spec, circuit)
				if !circuit && spec == nil && refSt.StreamFragments == 0 {
					t.Fatal("parity workload did not exercise the streaming path")
				}
				if spec != nil && refSt.Retransmits == 0 {
					t.Fatal("fault spec injected nothing; the parity leg is vacuous")
				}
				for _, v := range []struct {
					name   string
					kind   sim.SchedulerKind
					shards int
				}{
					{"event", sim.SchedEvent, 0},
					{"shard2", sim.SchedShard, 2},
					{"shard4", sim.SchedShard, 4},
				} {
					st, dig := streamingParityRun(t, v.kind, v.shards, spec, circuit)
					if dig != refDig {
						t.Errorf("%s: digest %x, dense %x", v.name, dig, refDig)
					}
					if st.Cycles != refSt.Cycles {
						t.Errorf("%s: cycles %d, dense %d", v.name, st.Cycles, refSt.Cycles)
					}
					if st.PacketsDelivered != refSt.PacketsDelivered {
						t.Errorf("%s: delivered %d, dense %d", v.name, st.PacketsDelivered, refSt.PacketsDelivered)
					}
				}
			})
		}
	}
}
