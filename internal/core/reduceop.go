package smi

import (
	"fmt"

	"repro/internal/packet"
)

// reduceBits applies the reduction op element-wise on two raw bit
// patterns of the given datatype. This is the combinational logic the
// Reduce support kernel instantiates (6 DSPs for FP32 SUM in Table 2).
func reduceBits(dt Datatype, op Op, a, b uint64) uint64 {
	switch dt {
	case Int:
		x, y := packet.BitsInt(a), packet.BitsInt(b)
		return packet.IntBits(combine(op, x, y))
	case Float:
		x, y := packet.BitsFloat(a), packet.BitsFloat(b)
		return packet.FloatBits(combine(op, x, y))
	case Double:
		x, y := packet.BitsDouble(a), packet.BitsDouble(b)
		return packet.DoubleBits(combine(op, x, y))
	case Short:
		x, y := packet.BitsShort(a), packet.BitsShort(b)
		return packet.ShortBits(combine(op, x, y))
	case Char:
		x, y := byte(a), byte(b)
		return uint64(combine(op, x, y))
	default:
		panic(fmt.Sprintf("smi: reduce on invalid datatype %v", dt))
	}
}

// number covers every element type a reduction can combine.
type number interface {
	~int16 | ~int32 | ~byte | ~float32 | ~float64
}

func combine[T number](op Op, a, b T) T {
	switch op {
	case Add:
		return a + b
	case Max:
		if a > b {
			return a
		}
		return b
	case Min:
		if a < b {
			return a
		}
		return b
	default:
		panic(fmt.Sprintf("smi: invalid reduce op %v", op))
	}
}
